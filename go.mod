module twobssd

go 1.22
