// Per-device QoS for the contended 8-entry BA-buffer mapping table.
//
// Every byte-path log on a device needs a pinned BA-buffer window (one
// mapping-table entry) while it commits. A device hosts more log
// streams than table entries once tenants multiply, so the slotManager
// arbitrates: each entry (plus its buffer window) is a *slot* leased to
// one stream at a time. Acquisition is least-attained-service first —
// the stream that has held slots for the least total virtual time wins
// the next free slot — and a holder is evicted (forced to flush its
// window to NAND and release) once it has run burstOps operations
// while others wait. Per-stream wait/hold/eviction metrics and a Jain
// fairness index land in the device's obs registry, so they ride the
// sampler timelines like every other metric.
package fleet

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/histo"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// QoSConfig tunes the mapping-table arbitration.
type QoSConfig struct {
	// Slots is how many mapping-table entries the manager hands out
	// (<= the device's MaxEntries; 0 means all of them). Fewer slots
	// than log streams is what creates contention.
	Slots int

	// BurstOps is how many appends a holder may run before it must
	// yield its slot when others are waiting (0 = 8).
	BurstOps int

	// MaxInflight is the per-tenant admission limit: ops beyond this
	// many unacknowledged ones are rejected (the client retries with
	// backoff per its traffic.Spec — or drops). 0 = 16.
	MaxInflight int
}

func (c QoSConfig) burstOps() int {
	if c.BurstOps <= 0 {
		return 8
	}
	return c.BurstOps
}

func (c QoSConfig) maxInflight() int {
	if c.MaxInflight <= 0 {
		return 16
	}
	return c.MaxInflight
}

// slot is one leasable mapping-table entry + BA-buffer window.
type slot struct {
	eid    core.EID
	bufOff int
	holder *logHandle // nil when free
}

// slotManager arbitrates one device's slots among its log streams.
type slotManager struct {
	env      *sim.Env
	cfg      QoSConfig
	segBytes int
	slots    []slot
	waiters  []*logHandle // arrival order; selection is least-attained
	seq      uint64

	gFairness *obs.Gauge
	cLeases   *obs.Counter
	cEvict    *obs.Counter

	streams []*logHandle // every stream ever seen, for fairness
}

func newSlotManager(env *sim.Env, cfg QoSConfig, maxEntries, segBytes int) *slotManager {
	n := cfg.Slots
	if n <= 0 || n > maxEntries {
		n = maxEntries
	}
	m := &slotManager{env: env, cfg: cfg, segBytes: segBytes}
	for i := 0; i < n; i++ {
		m.slots = append(m.slots, slot{eid: core.EID(i), bufOff: i * segBytes})
	}
	reg := obs.Of(env).Registry()
	m.gFairness = reg.Gauge("fleet.qos.fairness")
	m.cLeases = reg.Counter("fleet.qos.leases")
	m.cEvict = reg.Counter("fleet.qos.evictions")
	return m
}

// contended reports whether any stream is queued for a slot.
func (m *slotManager) contended() bool { return len(m.waiters) > 0 }

// fairness is the Jain index over per-stream attained slot time:
// (Σx)² / (n·Σx²) — 1.0 is perfectly fair, 1/n is one stream hogging.
func (m *slotManager) fairness() float64 {
	var sum, sq float64
	n := 0
	for _, h := range m.streams {
		x := float64(h.attained)
		if h.leases == 0 {
			continue
		}
		sum += x
		sq += x * x
		n++
	}
	if n == 0 || sq == 0 {
		return 1
	}
	return sum * sum / (float64(n) * sq)
}

// acquire leases a slot for h, blocking until one frees up. The wait
// order is least-attained-service first (ties by arrival).
func (m *slotManager) acquire(p *sim.Proc, h *logHandle) int {
	t0 := m.env.Now()
	if h.seq == 0 {
		m.seq++
		h.seq = m.seq
		m.streams = append(m.streams, h)
	}
	si := -1
	for i := range m.slots {
		if m.slots[i].holder == nil {
			si = i
			break
		}
	}
	if si >= 0 {
		m.slots[si].holder = h
	} else {
		m.waiters = append(m.waiters, h)
		h.granted = -1
		for h.granted < 0 {
			h.sig.Wait(p)
		}
		// release() already reserved the slot for us.
		si = h.granted
	}
	h.leases++
	h.leaseStart = m.env.Now()
	m.cLeases.Inc()
	h.hWait.Observe(sim.Duration(m.env.Now() - t0))
	return si
}

// release returns slot si held by h, passing it to the queued stream
// with the least attained service if any.
func (m *slotManager) release(si int, h *logHandle, evicted bool) {
	h.attained += sim.Duration(m.env.Now() - h.leaseStart)
	h.cHold.Add(uint64(m.env.Now() - h.leaseStart))
	if evicted {
		m.cEvict.Inc()
		h.cEvict.Inc()
	}
	if len(m.waiters) > 0 {
		best := 0
		for i := 1; i < len(m.waiters); i++ {
			w, b := m.waiters[i], m.waiters[best]
			if w.attained < b.attained || (w.attained == b.attained && w.seq < b.seq) {
				best = i
			}
		}
		next := m.waiters[best]
		m.waiters = append(m.waiters[:best], m.waiters[best+1:]...)
		next.granted = si
		m.slots[si].holder = next // reserved: nobody else may take it
		next.sig.Fire()
	} else {
		m.slots[si].holder = nil
	}
	m.gFairness.Set(m.fairness())
}

// logHandle is one log stream under slot management: a BA-mode
// segmented WAL (wal.Segmented — the stream rotates through a ring of
// segment files) whose pinned window (EID + buffer offset) is whatever
// slot the stream currently leases. Between leases the log is flushed
// to NAND (so it owns no mapping-table entry) and wal.Rebind moves it
// onto the next leased slot; append offsets carry across leases.
type logHandle struct {
	mgr    *slotManager
	stream string
	ssd    *core.TwoBSSD
	mu     *sim.Resource
	sig    *sim.Signal

	log     *wal.Segmented
	slotIdx int // leased slot, -1 between leases

	// Arbitration state owned by the manager.
	seq        uint64
	granted    int
	leases     uint64
	attained   sim.Duration
	leaseStart sim.Time
	opsInLease int

	hWait  *histo.H
	cHold  *obs.Counter
	cEvict *obs.Counter
}

// newLogHandle opens the stream's segmented log: Ring files of
// logBytes/4 each (so total ring capacity matches the configured log
// size), with the slot window size as the inner BA pin unit.
func newLogHandle(mgr *slotManager, ssd *core.TwoBSSD, fs *vfs.FS, name, stream string, logBytes int64) (*logHandle, error) {
	segFile := logBytes / 4 / int64(mgr.segBytes) * int64(mgr.segBytes)
	if segFile < int64(mgr.segBytes) {
		segFile = int64(mgr.segBytes)
	}
	l, err := wal.OpenSegmented(mgr.env, wal.SegConfig{
		Mode:              wal.BA,
		FS:                fs,
		Name:              name,
		SegmentFileBytes:  segFile,
		Ring:              4,
		InnerSegmentBytes: mgr.segBytes,
		SSD:               ssd,
		EIDs:              []core.EID{0}, // placeholder; Rebind sets the leased entry
	})
	if err != nil {
		return nil, err
	}
	reg := obs.Of(mgr.env).Registry()
	return &logHandle{
		mgr: mgr, stream: stream, ssd: ssd, log: l,
		mu:      mgr.env.NewResource(fmt.Sprintf("fleet.%s.mu", stream), 1),
		sig:     mgr.env.NewSignal(fmt.Sprintf("fleet.%s.slot", stream)),
		slotIdx: -1,
		hWait:   reg.Histo(fmt.Sprintf("fleet.qos.%s.wait_ns", stream)),
		cHold:   reg.Counter(fmt.Sprintf("fleet.qos.%s.hold_ns", stream)),
		cEvict:  reg.Counter(fmt.Sprintf("fleet.qos.%s.evictions", stream)),
	}, nil
}

// ensure leases a slot and rebinds the log onto it. Callers hold h.mu.
func (h *logHandle) ensure(p *sim.Proc) error {
	if h.slotIdx >= 0 {
		return nil
	}
	si := h.mgr.acquire(p, h)
	if err := h.log.Rebind([]core.EID{h.mgr.slots[si].eid}, h.mgr.slots[si].bufOff); err != nil {
		h.mgr.release(si, h, false)
		return err
	}
	h.slotIdx = si
	h.opsInLease = 0
	return nil
}

// append commits one record through the leased window, yielding the
// slot afterwards if the device is contended and the burst quota is
// spent (the eviction policy).
func (h *logHandle) append(p *sim.Proc, payload []byte) error {
	h.mu.Acquire(p)
	defer h.mu.Release()
	if err := h.ensure(p); err != nil {
		return err
	}
	lsn, err := h.log.Append(p, payload)
	if err != nil {
		return err
	}
	if err := h.log.Commit(p, lsn); err != nil {
		return err
	}
	h.opsInLease++
	if h.mgr.contended() && h.opsInLease >= h.mgr.cfg.burstOps() {
		return h.releaseLocked(p, true)
	}
	return nil
}

// releaseLocked flushes the window to NAND and returns the slot.
// Callers hold h.mu. Flush errors (e.g. power loss mid-release) still
// free the slot so waiters never hang on a dead holder.
func (h *logHandle) releaseLocked(p *sim.Proc, evicted bool) error {
	if h.slotIdx < 0 {
		return nil
	}
	err := h.log.FlushToNAND(p)
	h.mgr.release(h.slotIdx, h, evicted)
	h.slotIdx = -1
	return err
}

// release is releaseLocked for external callers.
func (h *logHandle) release(p *sim.Proc) error {
	h.mu.Acquire(p)
	defer h.mu.Release()
	return h.releaseLocked(p, false)
}

// recover flushes everything to NAND and replays the segment chain
// from media into fn — the end-to-end integrity read used by the
// failover verifier and the end-of-run oracle check. The log stays
// leased and positioned after the last durable record, ready for more
// appends.
func (h *logHandle) recover(p *sim.Proc, fn func(lsn wal.LSN, payload []byte) error) error {
	h.mu.Acquire(p)
	defer h.mu.Release()
	if err := h.releaseLocked(p, false); err != nil {
		return err
	}
	if err := h.ensure(p); err != nil {
		return err
	}
	_, err := h.log.Recover(p, fn)
	return err
}
