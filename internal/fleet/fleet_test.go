package fleet

import (
	"reflect"
	"testing"

	"twobssd/internal/sim"
	"twobssd/internal/traffic"
)

func testSpec(name string, seed uint64, ops int) traffic.Spec {
	return traffic.Spec{
		Tenant:       name,
		Seed:         seed,
		Arrival:      traffic.Poisson{RatePerSec: 20000},
		Ops:          ops,
		Keys:         1 << 12,
		Theta:        0.99,
		ReadFraction: 0.25,
		PayloadBytes: 96,
		MaxRetries:   8,
		RetryBackoff: 20 * sim.Microsecond,
	}
}

func testConfig(devices, tenants, ops int) Config {
	cfg := Config{
		Devices: devices,
		Policy:  Hash,
		Seed:    0xF1EE7,
		QoS:     QoSConfig{Slots: 4, BurstOps: 4, MaxInflight: 8},
	}
	for i := 0; i < tenants; i++ {
		cfg.Tenants = append(cfg.Tenants, testSpec(
			"t"+string(rune('a'+i)), 1000+uint64(i)*7, ops))
	}
	return cfg
}

// A healthy small fleet: every scheduled write replicates, acks, and
// survives the end-of-run media scan with zero lost/phantom records.
func TestFleetHealthyRun(t *testing.T) {
	cfg := testConfig(3, 4, 150)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	for _, tr := range res.Tenants {
		writes := tr.Ops - tr.Reads - tr.Dropped
		if tr.Acked+tr.Degraded < writes {
			t.Fatalf("%s: %d writes but only %d acked + %d degraded",
				tr.Name, writes, tr.Acked, tr.Degraded)
		}
		if tr.Applied != tr.Acked {
			t.Fatalf("%s: follower applied %d but primary saw %d acks",
				tr.Name, tr.Applied, tr.Acked)
		}
		if tr.FailedOver {
			t.Fatalf("%s failed over without a crash", tr.Name)
		}
		if tr.LatP50 <= 0 || tr.RepLagP50 <= 0 {
			t.Fatalf("%s: empty latency/lag distributions: %+v", tr.Name, tr)
		}
	}
	for d, dr := range res.Devices {
		if dr.Down {
			t.Fatalf("device %d down without a crash", d)
		}
		if dr.Leases == 0 {
			t.Fatalf("device %d never leased a slot", d)
		}
		if dr.Fairness <= 0 || dr.Fairness > 1.0001 {
			t.Fatalf("device %d fairness %f outside (0,1]", d, dr.Fairness)
		}
	}
}

// Fewer slots than streams must produce contention (evictions) while
// still committing everything — the QoS arbitration at work.
func TestFleetQoSContention(t *testing.T) {
	cfg := testConfig(2, 6, 120)
	cfg.Policy = Range // pack 3 tenants per device: 6 streams on 4 slots
	cfg.QoS = QoSConfig{Slots: 2, BurstOps: 2, MaxInflight: 8}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	var evictions uint64
	for _, dr := range res.Devices {
		evictions += dr.Evictions
	}
	if evictions == 0 {
		t.Fatal("2 slots under 6 streams produced no evictions")
	}
}

// Injected primary power loss: the follower must take over with zero
// lost and zero phantom records, and rerouted traffic must land.
func TestFleetFailover(t *testing.T) {
	cfg := testConfig(3, 3, 200)
	cfg.Crash = &CrashSpec{Device: -1, At: sim.Time(3 * sim.Millisecond)}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v := res.Violations(); len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
	if res.Failover == nil || res.Failover.Tenants == 0 {
		t.Fatal("crash produced no failover")
	}
	if res.Failover.Lost != 0 || res.Failover.Phantom != 0 {
		t.Fatalf("failover lost %d phantom %d records",
			res.Failover.Lost, res.Failover.Phantom)
	}
	if res.Failover.RecoveryMax <= 0 {
		t.Fatal("failover recorded no recovery time")
	}
	if !res.Devices[res.Failover.Device].Down {
		t.Fatalf("crash device %d not marked down", res.Failover.Device)
	}
	sawTakeover := false
	for _, tr := range res.Tenants {
		if tr.FailedOver && tr.Takeover > 0 {
			sawTakeover = true
		}
	}
	if !sawTakeover {
		t.Fatal("no tenant rerouted traffic to its follower")
	}
}

// The whole Result — every counter, percentile, and event count — must
// be byte-identical at any worker count (the partitioned-DES claim).
func TestFleetWorkersInvariance(t *testing.T) {
	base := testConfig(4, 6, 120)
	base.Crash = &CrashSpec{Device: -1, At: sim.Time(2 * sim.Millisecond)}
	var ref *Result
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !reflect.DeepEqual(ref, res) {
			t.Fatalf("workers=%d result diverged from workers=1:\n%+v\nvs\n%+v",
				workers, ref, res)
		}
	}
}

// Run must reject configurations replication cannot serve.
func TestFleetConfigValidation(t *testing.T) {
	if _, err := Run(Config{Devices: 1, Tenants: []traffic.Spec{testSpec("a", 1, 10)}}); err == nil {
		t.Fatal("single-device fleet accepted")
	}
	if _, err := Run(Config{Devices: 2}); err == nil {
		t.Fatal("tenantless fleet accepted")
	}
	cfg := testConfig(2, 1, 10)
	cfg.Crash = &CrashSpec{Device: 5, At: sim.Time(sim.Millisecond)}
	if _, err := Run(cfg); err == nil {
		t.Fatal("out-of-range crash device accepted")
	}
}
