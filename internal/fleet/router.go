// Shard routing: deterministic placement of tenant WALs and engine
// volumes across the fleet's devices.
package fleet

import (
	"fmt"
	"hash/fnv"
)

// Policy selects the placement function.
type Policy int

const (
	// Hash is rendezvous (highest-random-weight) hashing over the
	// tenant name: every tenant scores every device and picks the two
	// best. Adding or removing a device only moves the tenants whose
	// winning device changed — about 1/N of them — which is the
	// rebalance-stability property the tests pin down.
	Hash Policy = iota
	// Range carves the ordered tenant index space into contiguous
	// per-device ranges: tenant i of T goes to device i*N/T. Trivially
	// balanced and sequential-scan friendly, but a device-count change
	// reshuffles most of the map.
	Range
)

func (p Policy) String() string {
	switch p {
	case Hash:
		return "hash"
	case Range:
		return "range"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// Placement is one tenant's device assignment: the primary serves the
// tenant's WAL and volume; the follower hosts the replicated redo log.
type Placement struct {
	Primary  int
	Follower int
}

// Router places tenants on a fleet of n devices.
type Router struct {
	policy Policy
	n      int
}

// NewRouter builds a router over n devices (n >= 1; replication needs
// n >= 2 or follower falls back to the primary's device).
func NewRouter(policy Policy, n int) *Router {
	if n < 1 {
		panic("fleet: router needs at least one device")
	}
	return &Router{policy: policy, n: n}
}

// Devices returns the device count the router was built over.
func (r *Router) Devices() int { return r.n }

// Policy returns the placement policy.
func (r *Router) Policy() Policy { return r.policy }

// score is the rendezvous weight of (tenant, device): an FNV-1a hash
// of the tenant name whitened per device through splitmix64.
func score(tenant string, device int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(tenant))
	s := h.Sum64() ^ (uint64(device)+1)*0x9E3779B97F4A7C15
	s = (s ^ (s >> 30)) * 0xBF58476D1CE4E5B9
	s = (s ^ (s >> 27)) * 0x94D049BB133111EB
	return s ^ (s >> 31)
}

// Place assigns tenant idx (of total tenants) with the given name.
// Hash policy uses only the name; Range uses only (idx, total). The
// follower is always a distinct device when the fleet has one.
func (r *Router) Place(idx int, name string, total int) Placement {
	switch r.policy {
	case Range:
		if total < 1 {
			total = 1
		}
		p := idx * r.n / total
		if p >= r.n {
			p = r.n - 1
		}
		return Placement{Primary: p, Follower: (p + 1) % r.n}
	default:
		best, second := 0, 0
		var bestS, secondS uint64
		for d := 0; d < r.n; d++ {
			s := score(name, d)
			switch {
			case d == 0 || s > bestS:
				second, secondS = best, bestS
				best, bestS = d, s
			case d == 1 || s > secondS:
				second, secondS = d, s
			}
		}
		if r.n == 1 {
			second = best
		}
		return Placement{Primary: best, Follower: second}
	}
}
