// Package fleet hosts N simulated 2B-SSD devices behind a shard
// router and drives multi-tenant traffic across them — the
// "millions of users" layer over the single-device reproduction.
//
// Topology: every device is one partition of a sim.Group, so a fleet
// runs serially (one worker) or partitioned (N workers) with
// byte-identical results — the conservative-lookahead guarantee of
// sim.Group. A tenant's segmented WAL and volume live on its primary
// device (placed by the Router); a per-tenant shipper streams every
// durable record off the WAL's tailing reader (wal.Segmented.Tail)
// and ships it over a latency-modeled sim.Link to a follower device, which redoes the
// record into its own BA-mode log and acks. A tenant op counts as
// committed only when the follower's ack arrives (synchronous
// replication), which is what makes failover lossless: when the
// primary's power is cut (an injected fault.Plan trigger), the client
// reroutes to the follower, which first verifies its redo log from
// NAND — every applied record recovered, nothing phantom — and then
// serves as the new primary.
//
// Per-device QoS on the 8-entry BA mapping table is in qos.go; the
// shard router in router.go; traffic shapes come from
// internal/traffic.
package fleet

import (
	"errors"
	"fmt"
	"hash/crc32"
	"strconv"
	"strings"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/histo"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
	"twobssd/internal/traffic"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// CrashSpec injects a primary power loss: device Device trips at
// virtual time At (a fault.Plan PowerLoss trigger installed on that
// partition). Device < 0 selects the primary of tenant 0, which
// guarantees the crash actually exercises a failover.
type CrashSpec struct {
	Device int
	At     sim.Time
}

// Config describes a fleet run. Zero-valued knobs take defaults.
type Config struct {
	Devices int    // device count (>= 2: replication needs a distinct follower)
	Policy  Policy // shard-router placement policy
	Workers int    // sim.Group workers (0 = 1); results identical at any value

	NetLatency sim.Duration // one-way link latency = group lookahead (0 = 5us)
	ApplyCPU   sim.Duration // follower per-record redo CPU (0 = 2us)

	Device       *core.Config // per-device config (nil = DefaultDeviceConfig)
	QoS          QoSConfig
	SegmentBytes int   // slot window bytes (0 = 4 pages)
	LogBytes     int64 // per-tenant WAL/redo file capacity (0 = 512 KB)
	VolumeBytes  int64 // per-tenant data-volume capacity (0 = 256 KB)

	Tenants []traffic.Spec
	Crash   *CrashSpec
	Seed    uint64
}

func (c *Config) workers() int {
	if c.Workers < 1 {
		return 1
	}
	return c.Workers
}

func (c *Config) netLatency() sim.Duration {
	if c.NetLatency <= 0 {
		return 5 * sim.Microsecond
	}
	return c.NetLatency
}

func (c *Config) applyCPU() sim.Duration {
	if c.ApplyCPU <= 0 {
		return 2 * sim.Microsecond
	}
	return c.ApplyCPU
}

func (c *Config) segmentBytes() int {
	if c.SegmentBytes <= 0 {
		return 4 * 4096
	}
	return c.SegmentBytes
}

func (c *Config) logBytes() int64 {
	if c.LogBytes <= 0 {
		return 512 << 10
	}
	return c.LogBytes
}

func (c *Config) volumeBytes() int64 {
	if c.VolumeBytes <= 0 {
		return 256 << 10
	}
	return c.VolumeBytes
}

// DefaultDeviceConfig scales the 2B-SSD down fleet-style (same
// geometry the crash campaigns use): a 16 MB flash array with a 1 MB
// BA-buffer whose capacitor dump still fits the stock energy budget,
// so a multi-device fleet stays cheap to simulate.
func DefaultDeviceConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 32
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.2
	cfg.Base.WriteBufferPages = 64
	cfg.Base.DrainWorkers = 4
	cfg.BABufferBytes = 256 * 4096 // 1 MB
	return cfg
}

// repMsg travels primary→follower: one committed (or, after failover,
// rerouted) record. fail marks the failover notification the crashed
// node emits. The payload is a string so partitions never share
// mutable bytes.
type repMsg struct {
	seq     int
	at      sim.Time // open-loop arrival instant
	commit  sim.Time // primary commit time (local == true)
	local   bool     // committed on the primary before shipping
	fail    bool     // failover marker (tripAt set)
	tripAt  sim.Time
	payload string
}

// ackMsg travels follower→primary.
type ackMsg struct{ seq int }

// node is one device partition.
type node struct {
	idx   int
	env   *sim.Env
	ssd   *core.TwoBSSD
	fs    *vfs.FS
	slots *slotManager
	inj   *fault.Injector

	down      bool
	downAt    sim.Time
	primaries []*tenantRT // tenants whose primary this node is
	errs      []string
}

// crash cuts the node's power exactly once and notifies the follower
// of every tenant primaried here. Insufficient capacitor energy or a
// torn dump are legitimate modeled outcomes, not harness errors.
func (n *node) crash(p *sim.Proc) {
	if n.down {
		return
	}
	n.down = true
	n.downAt = n.env.Now()
	if _, err := n.ssd.PowerLoss(p); err != nil &&
		!errors.Is(err, core.ErrInsufficient) && !errors.Is(err, core.ErrDumpTorn) {
		n.errs = append(n.errs, fmt.Sprintf("dev%d power loss: %v", n.idx, err))
	}
	for _, t := range n.primaries {
		if !t.dataClosed {
			t.data.Send(p, repMsg{fail: true, tripAt: n.downAt})
		}
		// Wake a shipper parked on the tail signal so it observes the
		// cut and exits instead of waiting for records that never come.
		t.h.log.WakeTail()
	}
}

// tenantRT is one tenant's runtime state. Fields are strictly owned by
// one partition: client-side fields (sched/acked/inflight/...) by the
// primary's env, follower-side fields (applied/recovered/...) by the
// follower's env. The host reads everything only after Group.Run.
type tenantRT struct {
	fr    *fleetRT
	idx   int
	spec  traffic.Spec
	name  string
	place Placement
	pnode *node
	fnode *node

	sched []traffic.Op
	h     *logHandle // tenant WAL on the primary
	vol   *vfs.File  // data volume on the primary
	redo  *logHandle // replicated log on the follower
	data  *sim.Link[repMsg]
	ack   *sim.Link[ackMsg]

	// ---- client side (primary env) ----
	wg          *sim.WaitGroup
	doneSig     *sim.Signal
	shipDone    *sim.Signal
	clientDone  bool
	dataClosed  bool
	ackClosed   bool // follower gone: local-only degraded mode
	produceDone bool // all op procs finished; shipper may drain and exit
	shipperDone bool
	inflight    int
	sent        []bool
	acked       []bool
	committed   []bool // committed on the primary's log
	ackedN      int
	reads       int
	degraded    int
	takeover    int
	throttled   int
	retries     int
	dropped     int
	lostP       int
	phantomP    int
	errsP       []string
	readBuf     []byte
	hLat        *histo.H
	cCommits    *obs.Counter
	cThrottled  *obs.Counter
	cRetries    *obs.Counter
	cDropped    *obs.Counter

	// ---- follower side (follower env) ----
	applied      map[int]uint32 // seq → payload CRC applied to the redo log
	appliedN     int
	failedOver   bool
	failTripAt   sim.Time
	failVerifyAt sim.Time
	lostFail     int
	phantomFail  int
	lostF        int
	phantomF     int
	errsF        []string
	hLag         *histo.H
}

// fleetRT carries run-wide derived values.
type fleetRT struct {
	cfg    *Config
	nodes  []*node
	router *Router
}

func encodePayload(name string, seq int, key int64, size int) string {
	head := fmt.Sprintf("%s|%06d|%08x|", name, seq, uint32(key))
	if size <= len(head) {
		return head
	}
	return head + strings.Repeat("x", size-len(head))
}

// payloadSeq recovers the sequence number stamped by encodePayload.
func payloadSeq(payload []byte) (int, bool) {
	s := string(payload)
	i := strings.IndexByte(s, '|')
	if i < 0 {
		return 0, false
	}
	rest := s[i+1:]
	j := strings.IndexByte(rest, '|')
	if j < 0 {
		return 0, false
	}
	seq, err := strconv.Atoi(rest[:j])
	if err != nil {
		return 0, false
	}
	return seq, true
}

func newNode(g *sim.Group, fr *fleetRT, devCfg core.Config, d int) *node {
	env := g.NewEnv(fmt.Sprintf("dev%d", d))
	crash := fr.cfg.Crash
	if crash != nil && crash.Device == d {
		fault.Install(env, fault.Plan{
			Seed:      fr.cfg.Seed ^ (uint64(d)+1)<<32,
			PowerLoss: fault.Trigger{At: crash.At},
		})
	}
	ssd := core.New(env, devCfg)
	n := &node{
		idx: d, env: env, ssd: ssd,
		fs:  vfs.New(ssd.Device()),
		inj: fault.Of(env),
	}
	n.slots = newSlotManager(env, fr.cfg.QoS, ssd.Config().MaxEntries, fr.cfg.segmentBytes())
	if crash != nil && crash.Device == d {
		// The power watcher is the trigger's "poll at op boundary"
		// moment for the whole node: it cuts power at the trip instant.
		env.GoAt(crash.At, "fleet.powercut", func(p *sim.Proc) { n.crash(p) })
	}
	return n
}

func newTenant(g *sim.Group, fr *fleetRT, idx int, spec traffic.Spec) (*tenantRT, error) {
	cfg := fr.cfg
	name := spec.Tenant
	if name == "" {
		name = fmt.Sprintf("t%d", idx)
		spec.Tenant = name
	}
	place := fr.router.Place(idx, name, len(cfg.Tenants))
	if place.Primary == place.Follower {
		return nil, fmt.Errorf("fleet: tenant %s placed on a single device", name)
	}
	pn, fn := fr.nodes[place.Primary], fr.nodes[place.Follower]
	vol, err := pn.fs.Create("vol-"+name, cfg.volumeBytes())
	if err != nil {
		return nil, err
	}
	t := &tenantRT{
		fr: fr, idx: idx, spec: spec, name: name, place: place,
		pnode: pn, fnode: fn,
		vol:  vol,
		data: sim.NewLink[repMsg](g, pn.env, fn.env, "data-"+name, cfg.netLatency()),
		ack:  sim.NewLink[ackMsg](g, fn.env, pn.env, "ack-"+name, cfg.netLatency()),
	}
	// The segmented logs create their own ring files ("wal-t0.0".."3"
	// plus the checkpoint meta page) on each device's filesystem.
	if t.h, err = newLogHandle(pn.slots, pn.ssd, pn.fs, "wal-"+name, name, cfg.logBytes()); err != nil {
		return nil, err
	}
	if t.redo, err = newLogHandle(fn.slots, fn.ssd, fn.fs, "redo-"+name, name+".redo", cfg.logBytes()); err != nil {
		return nil, err
	}
	t.sched = spec.Gen().Schedule()
	t.wg = pn.env.NewWaitGroup("fleet." + name + ".ops")
	t.doneSig = pn.env.NewSignal("fleet." + name + ".done")
	t.shipDone = pn.env.NewSignal("fleet." + name + ".ship")
	t.sent = make([]bool, len(t.sched))
	t.acked = make([]bool, len(t.sched))
	t.committed = make([]bool, len(t.sched))
	t.readBuf = make([]byte, pn.ssd.PageSize())
	t.applied = make(map[int]uint32, len(t.sched))
	preg := obs.Of(pn.env).Registry()
	t.hLat = preg.Histo(fmt.Sprintf("fleet.%s.latency_ns", name))
	t.cCommits = preg.Counter(fmt.Sprintf("fleet.%s.commits", name))
	t.cThrottled = preg.Counter(fmt.Sprintf("fleet.%s.throttled", name))
	t.cRetries = preg.Counter(fmt.Sprintf("fleet.%s.retries", name))
	t.cDropped = preg.Counter(fmt.Sprintf("fleet.%s.dropped", name))
	t.hLag = obs.Of(fn.env).Registry().Histo(fmt.Sprintf("fleet.%s.rep_lag_ns", name))
	pn.primaries = append(pn.primaries, t)
	return t, nil
}

func (t *tenantRT) spawn() {
	t.pnode.env.Go("fleet.client."+t.name, t.runClient)
	t.pnode.env.Go("fleet.ship."+t.name, t.runShipper)
	t.pnode.env.Go("fleet.acks."+t.name, t.runAckWatch)
	t.fnode.env.Go("fleet.redo."+t.name, t.runFollower)
}

// runShipper streams the primary WAL to the follower through the
// segmented log's tailing reader: every record the log reports durable
// is shipped in LSN order, decoupled from the op procs that committed
// it. The reader hands records straight from the log's retention
// cache, so replication needs no second media read and no op-side
// bookkeeping beyond the commit itself.
func (t *tenantRT) runShipper(p *sim.Proc) {
	defer func() {
		t.shipperDone = true
		t.shipDone.Fire()
	}()
	r := t.h.log.Tail(0)
	defer r.Close()
	for {
		if t.pnode.down || t.ackClosed || t.dataClosed {
			return
		}
		rec, ok, err := r.TryNext()
		if err != nil {
			return // closed or truncated under us: nothing left to ship
		}
		if !ok {
			if t.produceDone && r.Pos() >= t.h.log.DurableLSN() {
				return // drained the final durable frontier
			}
			t.h.log.WaitTail(p)
			continue
		}
		seq, valid := payloadSeq([]byte(rec.Payload))
		if !valid || t.sent[seq] {
			continue
		}
		t.sent[seq] = true
		t.data.Send(p, repMsg{
			seq: seq, at: t.sched[seq].At, commit: rec.At, local: true,
			payload: rec.Payload,
		})
	}
}

// runClient is the open-loop dispatcher: it releases one op proc at
// every scheduled arrival regardless of how far behind service is.
func (t *tenantRT) runClient(p *sim.Proc) {
	for i := range t.sched {
		at := t.sched[i].At
		if at > t.pnode.env.Now() {
			p.Sleep(sim.Duration(at - t.pnode.env.Now()))
		}
		t.wg.Add(1)
		t.pnode.env.GoIdx("fleet.op."+t.name, i, t.opBody)
	}
	t.wg.Wait(p)
	// Let the shipper drain the durable tail before closing the data
	// link: records commit through op procs but ship through the tail
	// reader, so the link must stay open until the reader catches up.
	t.produceDone = true
	t.h.log.WakeTail()
	for !t.shipperDone {
		t.shipDone.Wait(p)
	}
	t.dataClosed = true
	t.data.Close(p)
	t.clientDone = true
	t.doneSig.Fire()
}

// opBody services one arrival: admission (with the tenant's retry
// policy), then either a volume read, a primary commit + replication
// ship, or — with the primary down — a rerouted takeover send.
func (t *tenantRT) opBody(p *sim.Proc, i int) {
	defer t.wg.Done()
	op := t.sched[i]
	env := t.pnode.env
	for attempt := 0; t.inflight >= t.fr.cfg.QoS.maxInflight(); {
		t.throttled++
		t.cThrottled.Inc()
		attempt++
		if attempt > t.spec.MaxRetries {
			t.dropped++
			t.cDropped.Inc()
			return
		}
		t.retries++
		t.cRetries.Inc()
		p.Sleep(t.spec.Backoff(i, attempt))
	}
	t.inflight++
	if op.Read {
		if t.pnode.down {
			t.dropped++
			t.cDropped.Inc()
			t.inflight--
			return
		}
		pageSize := int64(len(t.readBuf))
		pages := t.vol.Capacity() / pageSize
		off := (op.Key % pages) * pageSize
		if err := t.vol.ReadAt(p, off, t.readBuf); err != nil {
			if !errors.Is(err, core.ErrPowerIsOff) {
				t.errsP = append(t.errsP, fmt.Sprintf("%s read: %v", t.name, err))
			}
			t.dropped++
			t.cDropped.Inc()
			t.inflight--
			return
		}
		t.reads++
		t.hLat.Observe(sim.Duration(env.Now() - op.At))
		t.inflight--
		return
	}
	payload := encodePayload(t.name, i, op.Key, t.spec.PayloadBytes)
	if !t.pnode.down {
		err := t.h.append(p, []byte(payload))
		if err == nil {
			t.committed[i] = true
			t.cCommits.Inc()
			if t.ackClosed {
				// Follower is gone: the local commit is the whole story.
				t.degraded++
				t.hLat.Observe(sim.Duration(env.Now() - op.At))
				t.inflight--
				return
			}
			// The tail-reader shipper picks the record up from here; the
			// op completes (inflight--) when the follower's ack arrives.
			return
		}
		if !errors.Is(err, core.ErrPowerIsOff) && !t.pnode.down {
			t.errsP = append(t.errsP, fmt.Sprintf("%s append: %v", t.name, err))
			t.inflight--
			return
		}
		t.pnode.crash(p) // power died under us: make the cut official
	}
	// Primary down: reroute to the follower (the new primary).
	if t.ackClosed || t.dataClosed {
		t.dropped++
		t.cDropped.Inc()
		t.inflight--
		return
	}
	t.takeover++
	t.sent[i] = true
	t.data.Send(p, repMsg{seq: i, at: op.At, payload: payload})
}

// runAckWatch completes ops as follower acks arrive and, once traffic
// has drained, runs the end-of-run media check on a live primary log.
func (t *tenantRT) runAckWatch(p *sim.Proc) {
	env := t.pnode.env
	for {
		a, ok := t.ack.Recv(p)
		if !ok {
			// Follower gone (or clean end): finish outstanding ops that
			// did commit locally as degraded completions — whether or
			// not the shipper got to them before the follower vanished.
			t.ackClosed = true
			t.h.log.WakeTail() // release a parked shipper
			for i := range t.sched {
				if t.committed[i] && !t.acked[i] {
					t.degraded++
					t.hLat.Observe(sim.Duration(env.Now() - t.sched[i].At))
				}
			}
			t.inflight = 0
			break
		}
		if !t.acked[a.seq] {
			t.acked[a.seq] = true
			t.ackedN++
			if t.inflight > 0 {
				t.inflight--
			}
			t.hLat.Observe(sim.Duration(env.Now() - t.sched[a.seq].At))
		}
	}
	for !t.clientDone {
		t.doneSig.Wait(p)
	}
	if t.pnode.down {
		return
	}
	// End-of-run oracle check: everything committed on this primary
	// must be recoverable from NAND, and nothing else may be.
	rec := make(map[int]uint32, len(t.sched))
	err := t.h.recover(p, func(_ wal.LSN, payload []byte) error {
		seq, ok := payloadSeq(payload)
		if !ok {
			t.phantomP++
			return nil
		}
		rec[seq] = crc32.ChecksumIEEE(payload)
		return nil
	})
	if err != nil {
		if !errors.Is(err, core.ErrPowerIsOff) {
			t.errsP = append(t.errsP, fmt.Sprintf("%s end recover: %v", t.name, err))
		}
		return
	}
	for i := range t.sched {
		if !t.committed[i] {
			continue
		}
		want := crc32.ChecksumIEEE([]byte(encodePayload(t.name, i, t.sched[i].Key, t.spec.PayloadBytes)))
		if got, ok := rec[i]; !ok || got != want {
			t.lostP++
		}
	}
	for seq := range rec {
		if seq < 0 || seq >= len(t.sched) || !t.committed[seq] {
			t.phantomP++
		}
	}
	if rerr := t.h.release(p); rerr != nil && !errors.Is(rerr, core.ErrPowerIsOff) {
		t.errsP = append(t.errsP, fmt.Sprintf("%s release: %v", t.name, rerr))
	}
}

// runFollower applies replicated records into the redo log, acks, and
// handles the failover protocol.
func (t *tenantRT) runFollower(p *sim.Proc) {
	env := t.fnode.env
	for {
		m, ok := t.data.Recv(p)
		if !ok {
			break
		}
		if t.fnode.down || t.fnode.inj.Tripped() {
			t.fnode.crash(p)
			t.ack.Close(p)
			return
		}
		if m.fail {
			t.verifyFailover(p, m.tripAt)
			continue
		}
		p.Sleep(t.fr.cfg.applyCPU())
		pay := []byte(m.payload)
		if err := t.redo.append(p, pay); err != nil {
			if errors.Is(err, core.ErrPowerIsOff) || t.fnode.down {
				t.fnode.crash(p)
			} else {
				t.errsF = append(t.errsF, fmt.Sprintf("%s redo: %v", t.name, err))
			}
			t.ack.Close(p)
			return
		}
		t.applied[m.seq] = crc32.ChecksumIEEE(pay)
		t.appliedN++
		if m.local {
			t.hLag.Observe(sim.Duration(env.Now() - m.commit))
		}
		t.ack.Send(p, ackMsg{seq: m.seq})
	}
	// Traffic drained: verify the redo log end to end from media.
	rec := make(map[int]uint32, t.appliedN)
	err := t.redo.recover(p, func(_ wal.LSN, payload []byte) error {
		seq, ok := payloadSeq(payload)
		if !ok {
			t.phantomF++
			return nil
		}
		rec[seq] = crc32.ChecksumIEEE(payload)
		return nil
	})
	if err != nil {
		if !errors.Is(err, core.ErrPowerIsOff) {
			t.errsF = append(t.errsF, fmt.Sprintf("%s redo recover: %v", t.name, err))
		}
		t.ack.Close(p)
		return
	}
	for seq, want := range t.applied {
		if got, ok := rec[seq]; !ok || got != want {
			t.lostF++
		}
	}
	for seq := range rec {
		if _, ok := t.applied[seq]; !ok {
			t.phantomF++
		}
	}
	if rerr := t.redo.release(p); rerr != nil && !errors.Is(rerr, core.ErrPowerIsOff) {
		t.errsF = append(t.errsF, fmt.Sprintf("%s redo release: %v", t.name, rerr))
	}
	t.ack.Close(p)
}

// verifyFailover is the takeover moment: before serving as the new
// primary, the follower re-reads its redo log from NAND and proves it
// holds exactly what was applied — no lost records, no phantoms. The
// verify duration is the tenant's failover recovery time.
func (t *tenantRT) verifyFailover(p *sim.Proc, tripAt sim.Time) {
	pre := make(map[int]uint32, len(t.applied))
	for k, v := range t.applied {
		pre[k] = v
	}
	rec := make(map[int]uint32, len(pre))
	err := t.redo.recover(p, func(_ wal.LSN, payload []byte) error {
		seq, ok := payloadSeq(payload)
		if !ok {
			t.phantomFail++
			return nil
		}
		rec[seq] = crc32.ChecksumIEEE(payload)
		return nil
	})
	if err != nil {
		t.errsF = append(t.errsF, fmt.Sprintf("%s failover recover: %v", t.name, err))
	}
	for seq, want := range pre {
		if got, ok := rec[seq]; !ok || got != want {
			t.lostFail++
		}
	}
	for seq := range rec {
		if _, ok := pre[seq]; !ok {
			t.phantomFail++
		}
	}
	t.failedOver = true
	t.failTripAt = tripAt
	t.failVerifyAt = t.fnode.env.Now()
}

// ---- results ----

// TenantResult is one tenant's deterministic outcome.
type TenantResult struct {
	Name     string
	Primary  int
	Follower int

	Ops       int // scheduled arrivals
	Acked     int // replicated + acked completions
	Reads     int
	Degraded  int // completed local-only (follower gone)
	Takeover  int // rerouted to the follower after primary loss
	Dropped   int
	Throttled int
	Retries   int
	Applied   int // records the follower applied

	LatP50, LatP99, LatMax sim.Duration
	RepLagP50, RepLagMax   sim.Duration
	QoSWaitP99             sim.Duration
	Evictions              uint64

	FailedOver bool
	Recovery   sim.Duration // failover verify duration past the trip
	Lost       int
	Phantom    int
	Errs       []string
}

// DeviceResult is one device's outcome.
type DeviceResult struct {
	Down      bool
	Fairness  float64 // Jain index over per-stream attained slot time
	Leases    uint64
	Evictions uint64
}

// FailoverResult aggregates the injected-crash outcome.
type FailoverResult struct {
	Device      int
	TripAt      sim.Time
	Tenants     int // tenants that failed over
	RecoveryMax sim.Duration
	Lost        int
	Phantom     int
}

// Result is a fleet run's full deterministic outcome.
type Result struct {
	Tenants  []TenantResult
	Devices  []DeviceResult
	Failover *FailoverResult
	Events   uint64
}

// Violations lists every broken invariant: lost or phantom records,
// harness errors, or a configured crash that failed to fail over.
func (r *Result) Violations() []string {
	var v []string
	for i := range r.Tenants {
		t := &r.Tenants[i]
		if t.Lost > 0 {
			v = append(v, fmt.Sprintf("%s: %d lost records", t.Name, t.Lost))
		}
		if t.Phantom > 0 {
			v = append(v, fmt.Sprintf("%s: %d phantom records", t.Name, t.Phantom))
		}
		v = append(v, t.Errs...)
	}
	if r.Failover != nil && r.Failover.Tenants == 0 {
		v = append(v, fmt.Sprintf("crash on dev%d triggered no failover", r.Failover.Device))
	}
	return v
}

// Run executes the fleet and returns its outcome. The error covers
// configuration/build problems only; correctness violations are in
// Result.Violations so callers can report them with full context.
func Run(cfg Config) (*Result, error) {
	if cfg.Devices < 2 {
		return nil, errors.New("fleet: replication needs at least 2 devices")
	}
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("fleet: no tenants configured")
	}
	devCfg := DefaultDeviceConfig()
	if cfg.Device != nil {
		devCfg = *cfg.Device
	}
	fr := &fleetRT{cfg: &cfg, router: NewRouter(cfg.Policy, cfg.Devices)}
	if cfg.Crash != nil {
		if cfg.Crash.At <= 0 {
			return nil, errors.New("fleet: crash needs a positive trip time")
		}
		if cfg.Crash.Device < 0 {
			// Default to tenant 0's primary so the crash provokes failover.
			c := *cfg.Crash
			name := cfg.Tenants[0].Tenant
			if name == "" {
				name = "t0"
			}
			c.Device = fr.router.Place(0, name, len(cfg.Tenants)).Primary
			cfg.Crash = &c
		}
		if cfg.Crash.Device >= cfg.Devices {
			return nil, errors.New("fleet: crash device out of range")
		}
	}
	g := sim.NewGroup()
	g.SetWorkers(cfg.workers())
	fr.nodes = make([]*node, cfg.Devices)
	for d := range fr.nodes {
		fr.nodes[d] = newNode(g, fr, devCfg, d)
	}
	tenants := make([]*tenantRT, len(cfg.Tenants))
	for i, spec := range cfg.Tenants {
		t, err := newTenant(g, fr, i, spec)
		if err != nil {
			g.Shutdown()
			return nil, err
		}
		tenants[i] = t
	}
	for _, t := range tenants {
		t.spawn()
	}
	g.Run()
	res := buildResult(fr, tenants, g.Events())
	g.Shutdown()
	return res, nil
}

func buildResult(fr *fleetRT, tenants []*tenantRT, events uint64) *Result {
	res := &Result{Events: events}
	var fo *FailoverResult
	if fr.cfg.Crash != nil {
		fo = &FailoverResult{Device: fr.cfg.Crash.Device, TripAt: fr.cfg.Crash.At}
	}
	for _, t := range tenants {
		tr := TenantResult{
			Name: t.name, Primary: t.place.Primary, Follower: t.place.Follower,
			Ops: len(t.sched), Acked: t.ackedN, Reads: t.reads,
			Degraded: t.degraded, Takeover: t.takeover, Dropped: t.dropped,
			Throttled: t.throttled, Retries: t.retries, Applied: t.appliedN,
			LatP50: t.hLat.P50(), LatP99: t.hLat.P99(), LatMax: t.hLat.Max(),
			RepLagP50:  t.hLag.P50(),
			RepLagMax:  t.hLag.Max(),
			QoSWaitP99: maxDur(t.h.hWait.P99(), t.redo.hWait.P99()),
			Evictions:  t.h.cEvict.Value() + t.redo.cEvict.Value(),
			FailedOver: t.failedOver,
			Lost:       t.lostP + t.lostF + t.lostFail,
			Phantom:    t.phantomP + t.phantomF + t.phantomFail,
		}
		tr.Errs = append(tr.Errs, t.errsP...)
		tr.Errs = append(tr.Errs, t.errsF...)
		if t.failedOver {
			tr.Recovery = sim.Duration(t.failVerifyAt - t.failTripAt)
			if fo != nil {
				fo.Tenants++
				fo.Lost += t.lostFail
				fo.Phantom += t.phantomFail
				if tr.Recovery > fo.RecoveryMax {
					fo.RecoveryMax = tr.Recovery
				}
			}
		}
		res.Tenants = append(res.Tenants, tr)
	}
	for _, n := range fr.nodes {
		res.Devices = append(res.Devices, DeviceResult{
			Down:      n.down,
			Fairness:  n.slots.fairness(),
			Leases:    n.slots.cLeases.Value(),
			Evictions: n.slots.cEvict.Value(),
		})
		for i := range res.Tenants {
			res.Tenants[i].Errs = append(res.Tenants[i].Errs, n.errs...)
			break // node errors once, on the first tenant
		}
	}
	res.Failover = fo
	return res
}

func maxDur(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
