package fleet

import (
	"fmt"
	"testing"
)

func names(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("tenant-%03d", i)
	}
	return out
}

// Placement must be a pure function of (policy, n, idx, name, total).
func TestRouterDeterministicPlacement(t *testing.T) {
	for _, pol := range []Policy{Hash, Range} {
		t.Run(pol.String(), func(t *testing.T) {
			a, b := NewRouter(pol, 5), NewRouter(pol, 5)
			for idx, name := range names(64) {
				p1 := a.Place(idx, name, 64)
				p2 := b.Place(idx, name, 64)
				if p1 != p2 {
					t.Fatalf("%s/%s: %+v != %+v", pol, name, p1, p2)
				}
				if p1.Primary < 0 || p1.Primary >= 5 || p1.Follower < 0 || p1.Follower >= 5 {
					t.Fatalf("%s/%s: out-of-range placement %+v", pol, name, p1)
				}
				if p1.Primary == p1.Follower {
					t.Fatalf("%s/%s: follower on the primary device: %+v", pol, name, p1)
				}
			}
		})
	}
}

// Every device should get some primaries under either policy.
func TestRouterSpreadsLoad(t *testing.T) {
	const devs, tenants = 4, 200
	for _, pol := range []Policy{Hash, Range} {
		counts := make([]int, devs)
		r := NewRouter(pol, devs)
		for idx, name := range names(tenants) {
			counts[r.Place(idx, name, tenants).Primary]++
		}
		for d, c := range counts {
			if c == 0 {
				t.Fatalf("%s: device %d received no tenants: %v", pol, d, counts)
			}
			if c > tenants/2 {
				t.Fatalf("%s: device %d hogs placement: %v", pol, d, counts)
			}
		}
	}
}

// Rendezvous hashing must be rebalance-stable: growing the fleet from
// n to n+1 devices may only move tenants whose new best device is the
// added one — roughly 1/(n+1) of them — and never shuffles tenants
// between pre-existing devices.
func TestHashRebalanceStability(t *testing.T) {
	const tenants = 500
	old := NewRouter(Hash, 6)
	grown := NewRouter(Hash, 7)
	moved := 0
	for idx, name := range names(tenants) {
		p0 := old.Place(idx, name, tenants)
		p1 := grown.Place(idx, name, tenants)
		if p0.Primary != p1.Primary {
			moved++
			if p1.Primary != 6 {
				t.Fatalf("%s moved %d→%d, not to the new device", name, p0.Primary, p1.Primary)
			}
		}
	}
	// Expect ~tenants/7 ≈ 71 moves; allow generous slack either way.
	if moved == 0 || moved > tenants/3 {
		t.Fatalf("moved %d of %d tenants on grow 6→7 (want ~%d)", moved, tenants, tenants/7)
	}
}

// Range placement must keep contiguous tenant runs on each device.
func TestRangeContiguity(t *testing.T) {
	r := NewRouter(Range, 4)
	last := -1
	for idx, name := range names(100) {
		p := r.Place(idx, name, 100)
		if p.Primary < last {
			t.Fatalf("range placement went backwards at idx %d: %d after %d", idx, p.Primary, last)
		}
		last = p.Primary
	}
	if last != 3 {
		t.Fatalf("last tenant landed on device %d, want 3", last)
	}
}
