package ftl

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"twobssd/internal/nand"
	"twobssd/internal/sim"
)

func testFlash(e *sim.Env) *nand.Flash {
	return nand.New(e, nand.Config{
		Channels:       2,
		DiesPerChannel: 2,
		BlocksPerDie:   16,
		PagesPerBlock:  8,
		PageSize:       4096,
		ReadLatency:    3 * sim.Microsecond,
		ProgramLatency: 50 * sim.Microsecond,
		EraseLatency:   2 * sim.Millisecond,
		ChannelMBps:    1200,
	})
}

func newTestFTL(e *sim.Env) *FTL {
	return New(e, testFlash(e), Config{OverProvision: 0.25})
}

func TestExportedCapacity(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	if f.ExportedPages() == 0 {
		t.Fatal("no exported pages")
	}
	total := uint64(64 * 8) // blocks * pages
	if f.ExportedPages() >= total {
		t.Fatalf("exported %d >= raw %d; over-provisioning missing", f.ExportedPages(), total)
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			data := bytes.Repeat([]byte{byte(i + 1)}, 4096)
			if err := f.WritePage(p, LBA(i), data); err != nil {
				t.Errorf("write %d: %v", i, err)
			}
		}
		for i := 0; i < 10; i++ {
			got, err := f.ReadPage(p, LBA(i))
			if err != nil {
				t.Errorf("read %d: %v", i, err)
			}
			if got[0] != byte(i+1) {
				t.Errorf("lba %d: got %d", i, got[0])
			}
		}
	})
	e.Run()
}

func TestUnmappedReadsZero(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		start := e.Now()
		got, err := f.ReadPage(p, 5)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if e.Now() != start {
			t.Error("unmapped read should not touch flash (no time)")
		}
		for _, b := range got {
			if b != 0 {
				t.Error("unmapped read not zero")
				break
			}
		}
	})
	e.Run()
}

func TestOverwriteInvalidatesOld(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		f.WritePage(p, 0, []byte{1})
		f.WritePage(p, 0, []byte{2})
		got, _ := f.ReadPage(p, 0)
		if got[0] != 2 {
			t.Errorf("got %d, want 2", got[0])
		}
	})
	e.Run()
	st := f.Stats()
	if st.HostPageWrites != 2 || st.NandPagewrites != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestLBARangeEnforced(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		bad := LBA(f.ExportedPages())
		if err := f.WritePage(p, bad, nil); !errors.Is(err, ErrLBAOutOfRange) {
			t.Errorf("write: %v", err)
		}
		if _, err := f.ReadPage(p, bad); !errors.Is(err, ErrLBAOutOfRange) {
			t.Errorf("read: %v", err)
		}
		if err := f.Trim(bad); !errors.Is(err, ErrLBAOutOfRange) {
			t.Errorf("trim: %v", err)
		}
	})
	e.Run()
}

func TestTrim(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		f.WritePage(p, 3, []byte{9})
		if !f.Mapped(3) {
			t.Error("not mapped after write")
		}
		if err := f.Trim(3); err != nil {
			t.Errorf("trim: %v", err)
		}
		if f.Mapped(3) {
			t.Error("still mapped after trim")
		}
		got, _ := f.ReadPage(p, 3)
		if got[0] != 0 {
			t.Error("trimmed page should read zero")
		}
	})
	e.Run()
}

// Fill the device past its raw capacity with overwrites so GC must run,
// then verify all live data survives relocation.
func TestGCPreservesData(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	n := int(f.ExportedPages())
	rng := rand.New(rand.NewSource(7))
	last := make([]int, n)
	e.Go("t", func(p *sim.Proc) {
		// Fill once, then random overwrites (mixed-validity blocks force
		// GC to relocate live pages).
		for i := 0; i < n; i++ {
			if err := f.WritePage(p, LBA(i), []byte(fmt.Sprintf("v0-lba%d", i))); err != nil {
				t.Fatalf("fill %d: %v", i, err)
			}
		}
		for op := 1; op <= 4*n; op++ {
			i := rng.Intn(n)
			last[i] = op
			if err := f.WritePage(p, LBA(i), []byte(fmt.Sprintf("v%d-lba%d", op, i))); err != nil {
				t.Fatalf("overwrite op %d: %v", op, err)
			}
		}
		for i := 0; i < n; i++ {
			got, err := f.ReadPage(p, LBA(i))
			if err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
			want := fmt.Sprintf("v%d-lba%d", last[i], i)
			if !bytes.HasPrefix(got, []byte(want)) {
				t.Fatalf("lba %d corrupted after GC: %q", i, got[:24])
			}
		}
	})
	e.Run()
	st := f.Stats()
	if st.GCRuns == 0 {
		t.Fatal("expected GC to run")
	}
	if st.NandPagewrites <= st.HostPageWrites {
		t.Fatal("GC should amplify writes")
	}
	if st.WAF() < 1.0 {
		t.Fatalf("WAF = %.2f < 1", st.WAF())
	}
}

func TestWAFOneForSequentialFill(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		for i := 0; i < int(f.ExportedPages()); i++ {
			if err := f.WritePage(p, LBA(i), []byte{1}); err != nil {
				t.Fatalf("write %d: %v", i, err)
			}
		}
	})
	e.Run()
	if waf := f.Stats().WAF(); waf != 1.0 {
		t.Fatalf("sequential fill WAF = %.3f, want 1.0", waf)
	}
}

func TestStatsWAFBeforeWrites(t *testing.T) {
	var s Stats
	if s.WAF() != 1.0 {
		t.Fatalf("zero-write WAF = %v", s.WAF())
	}
}

func TestReservedBlocksShrinkCapacity(t *testing.T) {
	e := sim.NewEnv()
	fl := testFlash(e)
	withRes := New(e, fl, Config{OverProvision: 0.25, ReservedPerDie: 2})
	e2 := sim.NewEnv()
	fl2 := testFlash(e2)
	noRes := New(e2, fl2, Config{OverProvision: 0.25})
	if withRes.ExportedPages() >= noRes.ExportedPages() {
		t.Fatalf("reserved blocks did not shrink capacity: %d vs %d",
			withRes.ExportedPages(), noRes.ExportedPages())
	}
}

func TestRandomOverwritesModelConsistency(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	rng := rand.New(rand.NewSource(42))
	n := int(f.ExportedPages())
	shadow := make(map[LBA]byte)
	e.Go("t", func(p *sim.Proc) {
		for op := 0; op < 3*n; op++ {
			lba := LBA(rng.Intn(n))
			v := byte(rng.Intn(255) + 1)
			if err := f.WritePage(p, lba, []byte{v}); err != nil {
				t.Fatalf("write: %v", err)
			}
			shadow[lba] = v
		}
		for lba, v := range shadow {
			got, err := f.ReadPage(p, lba)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got[0] != v {
				t.Fatalf("lba %d: got %d want %d", lba, got[0], v)
			}
		}
	})
	e.Run()
}

// Property: after any sequence of writes/overwrites within capacity,
// every written LBA reads back its last value (FTL is a map).
func TestPropertyLastWriteWins(t *testing.T) {
	prop := func(ops []uint16) bool {
		e := sim.NewEnv()
		f := newTestFTL(e)
		n := int(f.ExportedPages())
		shadow := make(map[LBA]byte)
		ok := true
		e.Go("t", func(p *sim.Proc) {
			for i, raw := range ops {
				lba := LBA(int(raw) % n)
				v := byte(i + 1)
				if err := f.WritePage(p, lba, []byte{v}); err != nil {
					ok = false
					return
				}
				shadow[lba] = v
			}
			for lba, v := range shadow {
				got, err := f.ReadPage(p, lba)
				if err != nil || got[0] != v {
					ok = false
					return
				}
			}
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestWearStatsTrackErases(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	if w := f.Wear(); w.TotalErase != 0 || w.MaxErase != 0 {
		t.Fatalf("fresh wear = %+v", w)
	}
	n := int(f.ExportedPages())
	rng := rand.New(rand.NewSource(3))
	e.Go("t", func(p *sim.Proc) {
		for op := 0; op < 6*n; op++ {
			if err := f.WritePage(p, LBA(rng.Intn(n)), []byte{1}); err != nil {
				t.Fatalf("write: %v", err)
			}
		}
	})
	e.Run()
	w := f.Wear()
	if w.TotalErase == 0 {
		t.Fatal("no erases counted despite GC churn")
	}
	if w.MaxErase < w.MinErase {
		t.Fatalf("wear = %+v", w)
	}
	if w.RetiredBlocks != 0 {
		t.Fatalf("unexpected retirements: %+v", w)
	}
}

func TestWornBlocksRetireAndDeviceKeepsWorking(t *testing.T) {
	e := sim.NewEnv()
	fl := nand.New(e, nand.Config{
		Channels: 2, DiesPerChannel: 2, BlocksPerDie: 16, PagesPerBlock: 8,
		PageSize: 4096, ReadLatency: 3 * sim.Microsecond,
		ProgramLatency: 50 * sim.Microsecond, EraseLatency: 2 * sim.Millisecond,
		ChannelMBps: 1200, EnduranceCycles: 6,
	})
	f := New(e, fl, Config{OverProvision: 0.3})
	n := int(f.ExportedPages())
	rng := rand.New(rand.NewSource(4))
	e.Go("t", func(p *sim.Proc) {
		// Churn hard enough to retire some blocks; writes must still
		// succeed and read back correctly while spares remain.
		for op := 0; op < 10*n; op++ {
			lba := LBA(rng.Intn(n / 2))
			if err := f.WritePage(p, lba, []byte{byte(op)}); err != nil {
				t.Logf("write stopped at op %d: %v", op, err)
				return
			}
		}
	})
	e.Run()
	w := f.Wear()
	if w.RetiredBlocks == 0 {
		t.Fatal("endurance=6 with heavy churn should retire blocks")
	}
	// Live data still correct.
	e.Go("verify", func(p *sim.Proc) {
		for i := 0; i < n/2; i++ {
			if _, err := f.ReadPage(p, LBA(i)); err != nil {
				t.Fatalf("read %d: %v", i, err)
			}
		}
	})
	e.Run()
}
