package ftl

import (
	"bytes"
	"testing"

	"twobssd/internal/integrity"
	"twobssd/internal/sim"
)

// TestTagsSurviveGC writes tagged pages, churns the FTL hard enough to
// force garbage collection (and hence relocation), and checks every
// page still reads back with its original tag intact and matching.
func TestTagsSurviveGC(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	ps := f.PageSize()
	const live = 16
	want := make(map[LBA][]byte, live)
	e.Go("t", func(p *sim.Proc) {
		for round := 0; round < 40; round++ {
			for i := 0; i < live; i++ {
				lba := LBA(i)
				data := bytes.Repeat([]byte{byte(round), byte(i)}, ps/2)
				if err := f.WritePageTagged(p, lba, data, integrity.PageCRC(data)); err != nil {
					t.Fatalf("round %d write %d: %v", round, i, err)
				}
				want[lba] = data
			}
		}
		if f.Stats().GCRuns == 0 {
			t.Fatal("workload did not trigger GC; test proves nothing")
		}
		for lba, data := range want {
			got, tag, tagged, err := f.ReadPageTagged(p, lba)
			if err != nil {
				t.Fatalf("read %d: %v", lba, err)
			}
			if !tagged {
				t.Fatalf("lba %d lost its tag across GC", lba)
			}
			if err := integrity.Check(got, tag); err != nil {
				t.Fatalf("lba %d: %v", lba, err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("lba %d content mismatch", lba)
			}
		}
	})
	e.Run()
}

// TestUntaggedWritesStayUntagged checks the legacy WritePage path does
// not invent tags (so pre-integrity images keep working unverified).
func TestUntaggedWritesStayUntagged(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		if err := f.WritePage(p, 5, []byte("plain")); err != nil {
			t.Fatalf("write: %v", err)
		}
		_, _, tagged, err := f.ReadPageTagged(p, 5)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if tagged {
			t.Fatal("untagged write came back tagged")
		}
		// Unmapped pages are also untagged.
		_, _, tagged, err = f.ReadPageTagged(p, 6)
		if err != nil || tagged {
			t.Fatalf("unmapped read: tagged=%v err=%v", tagged, err)
		}
	})
	e.Run()
}

// TestCorruptionBreaksTagMatch flips bits under the FTL's feet and
// checks the tag no longer matches — the detection the upper layers
// rely on.
func TestCorruptionBreaksTagMatch(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0xAB}, f.PageSize())
		if err := f.WritePageTagged(p, 9, data, integrity.PageCRC(data)); err != nil {
			t.Fatalf("write: %v", err)
		}
		ppa, ok := f.PPAOf(9)
		if !ok {
			t.Fatal("page not mapped")
		}
		if !f.flash.CorruptPage(ppa, 2) {
			t.Fatal("CorruptPage found no stored image")
		}
		got, tag, tagged, err := f.ReadPageTagged(p, 9)
		if err != nil || !tagged {
			t.Fatalf("read: tagged=%v err=%v", tagged, err)
		}
		if integrity.Check(got, tag) == nil {
			t.Fatal("corrupted page still matched its tag")
		}
	})
	e.Run()
}

// TestScrubPageRewritesOnRetries checks the scrub primitive: a clean
// page is left alone; repair only moves the mapping when the LBA still
// points at the patrolled physical page.
func TestScrubPageRewritesOnRetries(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{3}, f.PageSize())
		if err := f.WritePageTagged(p, 4, data, integrity.PageCRC(data)); err != nil {
			t.Fatalf("write: %v", err)
		}
		before, _ := f.PPAOf(4)
		r, err := f.ScrubPage(p, 4)
		if err != nil {
			t.Fatalf("scrub: %v", err)
		}
		if !r.Mapped || r.Repaired || r.Retries != 0 {
			t.Fatalf("clean page scrub = %+v", r)
		}
		if after, _ := f.PPAOf(4); after != before {
			t.Fatal("clean scrub moved the page")
		}
		// Unmapped LBA: a no-op.
		r, err = f.ScrubPage(p, 30)
		if err != nil || r.Mapped {
			t.Fatalf("unmapped scrub = %+v err=%v", r, err)
		}
		if _, err := f.ScrubPage(p, LBA(f.ExportedPages())); err == nil {
			t.Fatal("out-of-range scrub not rejected")
		}
	})
	e.Run()
}

// TestTagsSurviveRetirement forces a block retirement via ErrUncorrectable
// salvage and checks the evacuated pages keep their tags.
func TestTagsSurviveRetirement(t *testing.T) {
	e := sim.NewEnv()
	f := newTestFTL(e)
	e.Go("t", func(p *sim.Proc) {
		var lbas []LBA
		for i := 0; i < 8; i++ {
			lba := LBA(40 + i)
			data := bytes.Repeat([]byte{byte(0xC0 + i)}, f.PageSize())
			if err := f.WritePageTagged(p, lba, data, integrity.PageCRC(data)); err != nil {
				t.Fatalf("write: %v", err)
			}
			lbas = append(lbas, lba)
		}
		ppa, _ := f.PPAOf(lbas[0])
		blk := f.flash.Config().BlockOf(ppa)
		if err := f.retireBlock(p, blk); err != nil {
			t.Fatalf("retire: %v", err)
		}
		for i, lba := range lbas {
			got, tag, tagged, err := f.ReadPageTagged(p, lba)
			if err != nil {
				t.Fatalf("read %d: %v", lba, err)
			}
			if !tagged {
				t.Fatalf("lba %d lost its tag across retirement", lba)
			}
			if err := integrity.Check(got, tag); err != nil {
				t.Fatalf("lba %d: %v", lba, err)
			}
			if got[0] != byte(0xC0+i) {
				t.Fatalf("lba %d content = %x", lba, got[0])
			}
		}
	})
	e.Run()
}
