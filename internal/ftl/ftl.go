// Package ftl implements a page-mapped flash translation layer over a
// nand.Flash: logical-to-physical mapping, out-of-place updates, greedy
// garbage collection, over-provisioning and write-amplification
// accounting.
//
// The FTL is the substrate behind every block device in this
// repository; its WAF counters are what make the paper's
// "BA-WAL reduces write amplification" claim (Section IV-A) measurable
// rather than asserted.
package ftl

import (
	"errors"
	"fmt"
	"sync"

	"twobssd/internal/fault"
	"twobssd/internal/histo"
	"twobssd/internal/nand"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// LBA is a logical page address (page-granular, typically 4 KB units).
type LBA uint64

const invalidLBA = LBA(^uint64(0))

// Config tunes the translation layer.
type Config struct {
	// OverProvision is the fraction of usable blocks hidden from the
	// host to give GC room (e.g. 0.07 for 7 %).
	OverProvision float64
	// ReservedPerDie blocks at the end of every die are removed from
	// FTL accounting; the 2B-SSD recovery manager owns them (a
	// die-parallel dump area for power-loss protection).
	ReservedPerDie int
	// GCFreeTarget triggers garbage collection when the free-block
	// count drops to this value. Zero selects a safe default.
	GCFreeTarget int
}

// Stats captures FTL health and write-amplification counters.
type Stats struct {
	HostPageWrites uint64 // pages written by the host
	HostPageReads  uint64
	NandPagewrites uint64 // pages programmed on flash (host + GC)
	GCRelocations  uint64 // valid pages moved by GC
	GCRuns         uint64
	FreeBlocks     int
}

// WAF returns the write-amplification factor (NAND writes per host
// write). It reports 1.0 before any host write.
func (s Stats) WAF() float64 {
	if s.HostPageWrites == 0 {
		return 1.0
	}
	return float64(s.NandPagewrites) / float64(s.HostPageWrites)
}

// Errors reported by the FTL.
var (
	ErrLBAOutOfRange = errors.New("ftl: LBA out of exported range")
	ErrNoSpace       = errors.New("ftl: no free blocks (device full)")
)

type openBlock struct {
	blk      nand.BlockID
	nextPage int
}

// FTL is a page-mapping translation layer bound to one flash array.
type FTL struct {
	env   *sim.Env
	flash *nand.Flash
	cfg   Config

	exportedPages uint64
	usableBlocks  int

	l2p        map[LBA]nand.PPA
	p2l        map[nand.PPA]LBA
	validCount []int // valid pages per usable block
	free       []nand.BlockID
	open       []openBlock // one open block per die, nil blk = -1
	nextDie    int

	// dieLocks serialize allocate+program per die so concurrent writer
	// processes cannot reorder page programs within a block (the NAND
	// sequential-program rule). gcLock serializes garbage collection.
	// Lock order: gcLock strictly before any dieLock.
	dieLocks []sim.Resource // one backing array; elements never copied
	gcLock   *sim.Resource
	gcBuf    []byte // relocation scratch page; gcLock serializes users

	o                              *obs.Set
	inj                            *fault.Injector
	cHostWrites, cHostReads        *obs.Counter
	cNandWrites, cGCReloc, cGCRuns *obs.Counter
	cRetired, cRetireReloc         *obs.Counter
	hWrite, hGCPause               *histo.H
}

// dieNameTab memoizes "ftl.die%d" strings process-wide: the names are
// identical in every environment, and short-lived benchmark envs
// otherwise pay the formatting on every construction.
var dieNameTab struct {
	sync.Mutex
	names []string
}

func dieNames(n int) []string {
	dieNameTab.Lock()
	defer dieNameTab.Unlock()
	for i := len(dieNameTab.names); i < n; i++ {
		dieNameTab.names = append(dieNameTab.names, fmt.Sprintf("ftl.die%d", i))
	}
	return dieNameTab.names[:n]
}

// New builds an FTL over flash. Panics on impossible configurations
// (construction-time misuse).
func New(env *sim.Env, flash *nand.Flash, cfg Config) *FTL {
	fc := flash.Config()
	if cfg.ReservedPerDie < 0 || cfg.ReservedPerDie >= fc.BlocksPerDie {
		panic("ftl: ReservedPerDie out of range")
	}
	usable := fc.Blocks() - cfg.ReservedPerDie*fc.Dies()
	if usable <= fc.Dies()+2 {
		panic(fmt.Sprintf("ftl: only %d usable blocks; need > dies+2", usable))
	}
	if cfg.OverProvision < 0 || cfg.OverProvision >= 0.9 {
		panic("ftl: OverProvision must be in [0, 0.9)")
	}
	if cfg.GCFreeTarget <= 0 {
		cfg.GCFreeTarget = fc.Dies() + 2
	}
	opBlocks := int(float64(usable) * cfg.OverProvision)
	if opBlocks < cfg.GCFreeTarget+1 {
		opBlocks = cfg.GCFreeTarget + 1
	}
	exported := uint64(usable-opBlocks) * uint64(fc.PagesPerBlock)
	f := &FTL{
		env:           env,
		flash:         flash,
		cfg:           cfg,
		exportedPages: exported,
		usableBlocks:  usable,
		l2p:           make(map[LBA]nand.PPA),
		p2l:           make(map[nand.PPA]LBA),
		validCount:    make([]int, fc.Blocks()),
		open:          make([]openBlock, fc.Dies()),
	}
	for i := range f.open {
		f.open[i] = openBlock{blk: nand.BlockID(0), nextPage: -1}
	}
	f.dieLocks = env.NewResources(dieNames(fc.Dies()), 1)
	f.gcLock = env.NewResource("ftl.gc", 1)
	// All non-reserved blocks start free (the last ReservedPerDie
	// blocks of each die belong to the recovery manager).
	for b := 0; b < fc.Blocks(); b++ {
		if !f.reserved(nand.BlockID(b)) {
			f.free = append(f.free, nand.BlockID(b))
		}
	}
	f.o = obs.Of(env)
	f.inj = fault.Of(env)
	reg := f.o.Registry()
	f.cHostWrites = reg.Counter("ftl.host_page_writes")
	f.cHostReads = reg.Counter("ftl.host_page_reads")
	f.cNandWrites = reg.Counter("ftl.nand_page_writes")
	f.cGCReloc = reg.Counter("ftl.gc_relocations")
	f.cGCRuns = reg.Counter("ftl.gc_runs")
	f.cRetired = reg.Counter("ftl.retired_blocks")
	f.cRetireReloc = reg.Counter("ftl.retire_relocations")
	f.hWrite = reg.Histo("ftl.write_ns")
	f.hGCPause = reg.Histo("ftl.gc_pause_ns")
	reg.GaugeFunc("ftl.free_blocks", func() float64 { return float64(len(f.free)) })
	return f
}

// reserved reports whether a block belongs to the recovery dump area.
func (f *FTL) reserved(blk nand.BlockID) bool {
	if f.cfg.ReservedPerDie == 0 {
		return false
	}
	bpd := f.flash.Config().BlocksPerDie
	return int(uint64(blk)%uint64(bpd)) >= bpd-f.cfg.ReservedPerDie
}

// Config returns the FTL configuration in effect (with defaults filled).
func (f *FTL) Config() Config { return f.cfg }

// WearStats summarizes erase wear across the usable blocks — the
// "SSD lifespan" side of the paper's WAF argument (Section IV-A).
// RetiredBlocks is a scan of blocks the NAND layer marked bad (worn
// out, erase failures or explicit retirement); the relocation counts
// mirror the "ftl.gc_relocations"/"ftl.retire_relocations" metrics.
type WearStats struct {
	MinErase, MaxErase int
	TotalErase         uint64
	RetiredBlocks      int
	GCRelocations      uint64 // valid pages moved by garbage collection
	RetireRelocations  uint64 // valid pages evacuated off retired blocks
}

// Wear scans the usable blocks and reports erase-cycle statistics.
func (f *FTL) Wear() WearStats {
	fc := f.flash.Config()
	w := WearStats{MinErase: int(^uint(0) >> 1)}
	for b := 0; b < fc.Blocks(); b++ {
		blk := nand.BlockID(b)
		if f.reserved(blk) {
			continue
		}
		if f.flash.IsBad(blk) {
			w.RetiredBlocks++
			continue
		}
		ec := f.flash.EraseCount(blk)
		if ec < w.MinErase {
			w.MinErase = ec
		}
		if ec > w.MaxErase {
			w.MaxErase = ec
		}
		w.TotalErase += uint64(ec)
	}
	if w.MinErase == int(^uint(0)>>1) {
		w.MinErase = 0
	}
	w.GCRelocations = f.cGCReloc.Value()
	w.RetireRelocations = f.cRetireReloc.Value()
	return w
}

// ExportedPages reports the number of host-visible logical pages.
func (f *FTL) ExportedPages() uint64 { return f.exportedPages }

// PageSize reports the logical/physical page size in bytes.
func (f *FTL) PageSize() int { return f.flash.Config().PageSize }

// Stats returns a snapshot of FTL counters, sourced from the obs
// registry ("ftl.*" metrics) so reports and this API agree by
// construction.
func (f *FTL) Stats() Stats {
	return Stats{
		HostPageWrites: f.cHostWrites.Value(),
		HostPageReads:  f.cHostReads.Value(),
		NandPagewrites: f.cNandWrites.Value(),
		GCRelocations:  f.cGCReloc.Value(),
		GCRuns:         f.cGCRuns.Value(),
		FreeBlocks:     len(f.free),
	}
}

// Mapped reports whether an LBA currently has a physical mapping.
func (f *FTL) Mapped(lba LBA) bool {
	_, ok := f.l2p[lba]
	return ok
}

// PPAOf reports the physical page currently backing an LBA. Intended
// for fault-injection and integrity tests that need to corrupt or
// inspect a specific page image on flash.
func (f *FTL) PPAOf(lba LBA) (nand.PPA, bool) {
	ppa, ok := f.l2p[lba]
	return ppa, ok
}

func (f *FTL) checkLBA(lba LBA) error {
	if uint64(lba) >= f.exportedPages {
		return fmt.Errorf("%w: %d >= %d", ErrLBAOutOfRange, lba, f.exportedPages)
	}
	return nil
}

// popFree removes and returns a free block, preferring one on the given
// die to preserve program parallelism. Returns false when none remain.
func (f *FTL) popFree(die int) (nand.BlockID, bool) {
	if len(f.free) == 0 {
		return 0, false
	}
	fc := f.flash.Config()
	for i, b := range f.free {
		if int(uint64(b)/uint64(fc.BlocksPerDie)) == die {
			f.free = append(f.free[:i], f.free[i+1:]...)
			return b, true
		}
	}
	b := f.free[0]
	f.free = f.free[1:]
	return b, true
}

// allocPPA returns the next physical page on the preferred die's open
// block, opening a fresh block if needed.
func (f *FTL) allocPPA(p *sim.Proc, die int) (nand.PPA, error) {
	fc := f.flash.Config()
	ob := &f.open[die]
	for {
		if ob.nextPage < 0 || ob.nextPage >= fc.PagesPerBlock {
			blk, ok := f.popFree(die)
			if !ok {
				return 0, ErrNoSpace
			}
			if f.flash.NextPage(blk) != 0 {
				if err := f.flash.EraseBlock(p, blk); err != nil {
					// Worn-out, erase-failed or bad block: drop it
					// and retry with another.
					if errors.Is(err, nand.ErrWornOut) || errors.Is(err, nand.ErrEraseFailed) {
						f.cRetired.Inc()
					}
					continue
				}
			}
			*ob = openBlock{blk: blk, nextPage: 0}
		}
		base := uint64(ob.blk) * uint64(fc.PagesPerBlock)
		ppa := nand.PPA(base + uint64(ob.nextPage))
		ob.nextPage++
		return ppa, nil
	}
}

func (f *FTL) invalidate(ppa nand.PPA) {
	if old, ok := f.p2l[ppa]; ok && old != invalidLBA {
		delete(f.p2l, ppa)
		blk := f.flash.Config().BlockOf(ppa)
		f.validCount[blk]--
	}
}

// program issues one page program, carrying the optional out-of-band
// integrity tag into the flash spare area.
func (f *FTL) program(p *sim.Proc, ppa nand.PPA, data []byte, tag uint32, tagged bool) error {
	if tagged {
		return f.flash.ProgramPageTagged(p, ppa, data, tag)
	}
	return f.flash.ProgramPage(p, ppa, data)
}

// WritePage writes one logical page out of place. The data may be
// shorter than a page (zero padded by the flash layer). A program
// failure (injected grown defect) retires the block — evacuating its
// valid pages — and retries on another block, so callers above the FTL
// never see transient NAND program errors.
func (f *FTL) WritePage(p *sim.Proc, lba LBA, data []byte) error {
	return f.writePage(p, lba, data, 0, false)
}

// WritePageTagged is WritePage plus a host-boundary integrity tag that
// rides out of band with the page through NAND, garbage collection and
// block retirement, and comes back on every read path.
func (f *FTL) WritePageTagged(p *sim.Proc, lba LBA, data []byte, tag uint32) error {
	return f.writePage(p, lba, data, tag, true)
}

func (f *FTL) writePage(p *sim.Proc, lba LBA, data []byte, tag uint32, tagged bool) error {
	if err := f.checkLBA(lba); err != nil {
		return err
	}
	start := f.env.Now()
	for {
		if err := f.maybeGC(p); err != nil {
			return err
		}
		die := f.nextDie
		f.nextDie = (f.nextDie + 1) % len(f.open)
		f.dieLocks[die].Acquire(p)
		ppa, err := f.allocPPA(p, die)
		if err != nil {
			f.dieLocks[die].Release()
			return err
		}
		err = f.program(p, ppa, data, tag, tagged)
		f.dieLocks[die].Release()
		if err == nil {
			if old, ok := f.l2p[lba]; ok {
				f.invalidate(old)
			}
			f.l2p[lba] = ppa
			f.p2l[ppa] = lba
			f.validCount[f.flash.Config().BlockOf(ppa)]++
			f.cHostWrites.Inc()
			f.cNandWrites.Inc()
			// The histogram includes any inline GC pause — the
			// tail-latency effect the paper attributes to fsync-heavy
			// logging.
			f.hWrite.Observe(sim.Duration(f.env.Now() - start))
			return nil
		}
		switch {
		case errors.Is(err, nand.ErrProgramFailed):
			if rerr := f.retireBlock(p, f.flash.Config().BlockOf(ppa)); rerr != nil {
				return fmt.Errorf("ftl: retire after program failure: %w", rerr)
			}
		case errors.Is(err, nand.ErrBadBlock):
			// The open block was retired while we waited on the die
			// lock; drop the stale slot and retry.
			f.open[die] = openBlock{blk: 0, nextPage: -1}
		default:
			return fmt.Errorf("ftl: program failed: %w", err)
		}
	}
}

// ReadPage reads one logical page. Unmapped pages return zeroes without
// touching flash (the controller answers from the map). An
// uncorrectable read (injected BER beyond the ECC budget) is absorbed
// here: the firmware salvages the raw page, relocates the block's
// valid pages elsewhere and retires it via MarkBad — the host sees the
// data, plus the latency of the rescue.
func (f *FTL) ReadPage(p *sim.Proc, lba LBA) ([]byte, error) {
	data, _, _, err := f.ReadPageTagged(p, lba)
	return data, err
}

// ReadPageTagged is ReadPage plus the page's out-of-band integrity tag.
// tagged is false for unmapped pages and for pages written through the
// untagged WritePage path.
func (f *FTL) ReadPageTagged(p *sim.Proc, lba LBA) (data []byte, tag uint32, tagged bool, err error) {
	out := make([]byte, f.PageSize())
	tag, tagged, err = f.ReadPageTaggedInto(p, lba, out)
	if err != nil {
		return nil, 0, false, err
	}
	return out, tag, tagged, nil
}

// ReadPageTaggedInto is ReadPageTagged reading into a caller-provided
// buffer of at least PageSize bytes. Device-level read fan-out uses it
// to land pages directly in the host buffer with zero copies or
// allocations on the fault-free path.
func (f *FTL) ReadPageTaggedInto(p *sim.Proc, lba LBA, dst []byte) (tag uint32, tagged bool, err error) {
	if err := f.checkLBA(lba); err != nil {
		return 0, false, err
	}
	f.cHostReads.Inc()
	ppa, ok := f.l2p[lba]
	if !ok {
		dst = dst[:f.PageSize()]
		for i := range dst {
			dst[i] = 0
		}
		return 0, false, nil
	}
	tag, tagged, _, err = f.flash.ReadPageTaggedInto(p, ppa, dst)
	if err != nil {
		if !errors.Is(err, nand.ErrUncorrectable) {
			return 0, false, err
		}
		var data []byte
		data, tag, tagged, err = f.flash.SalvageReadTagged(p, ppa)
		if err != nil {
			return 0, false, err
		}
		copy(dst, data)
		if rerr := f.retireBlock(p, f.flash.Config().BlockOf(ppa)); rerr != nil {
			return 0, false, fmt.Errorf("ftl: retire after uncorrectable read: %w", rerr)
		}
	}
	return tag, tagged, nil
}

// Trim invalidates a logical page without writing.
func (f *FTL) Trim(lba LBA) error {
	if err := f.checkLBA(lba); err != nil {
		return err
	}
	if ppa, ok := f.l2p[lba]; ok {
		f.invalidate(ppa)
		delete(f.l2p, lba)
	}
	return nil
}

// maybeGC runs greedy garbage collection until the free-block pool is
// back above the target. Inline (foreground) GC: the writing process
// pays the reclamation cost, which is exactly the tail-latency effect
// the paper attributes to fsync-heavy logging. gcLock serializes
// collectors; it is always taken before any die lock.
func (f *FTL) maybeGC(p *sim.Proc) error {
	if len(f.free) > f.cfg.GCFreeTarget {
		return nil
	}
	f.gcLock.Acquire(p)
	defer f.gcLock.Release()
	if len(f.free) > f.cfg.GCFreeTarget {
		// Another process collected while we waited on the lock.
		return nil
	}
	start := f.env.Now()
	sp := f.o.Tracer().Begin("ftl.gc", "ftl", "gc")
	err := f.collect(p)
	sp.End()
	f.hGCPause.Observe(sim.Duration(f.env.Now() - start))
	return err
}

// collect runs greedy reclamation until the pool is above target.
// Called with gcLock held.
func (f *FTL) collect(p *sim.Proc) error {
	fc := f.flash.Config()
	if f.gcBuf == nil {
		f.gcBuf = make([]byte, fc.PageSize)
	}
	for len(f.free) <= f.cfg.GCFreeTarget {
		victim, ok := f.pickVictim()
		if !ok {
			if len(f.free) == 0 {
				return ErrNoSpace
			}
			return nil // nothing reclaimable; still have some room
		}
		f.cGCRuns.Inc()
		base := uint64(victim) * uint64(fc.PagesPerBlock)
		for pg := 0; pg < fc.PagesPerBlock; pg++ {
			ppa := nand.PPA(base + uint64(pg))
			lba, valid := f.p2l[ppa]
			if !valid {
				continue
			}
			data := f.gcBuf
			tag, tagged, _, err := f.flash.ReadPageTaggedInto(p, ppa, data)
			if err != nil {
				// The victim is about to be erased anyway: salvage an
				// uncorrectable page instead of failing the write path.
				if errors.Is(err, nand.ErrUncorrectable) {
					data, tag, tagged, err = f.flash.SalvageReadTagged(p, ppa)
				}
				if err != nil {
					return fmt.Errorf("ftl: gc read: %w", err)
				}
			}
			die := int(uint64(victim)/uint64(fc.BlocksPerDie)+1) % fc.Dies()
			if err := f.relocLocked(p, ppa, lba, data, tag, tagged, die); err != nil {
				return fmt.Errorf("ftl: gc program: %w", err)
			}
			f.cGCReloc.Inc()
		}
		if err := f.flash.EraseBlock(p, victim); err != nil {
			// Worn out or erase-failed: block retired, not returned to
			// the pool.
			if errors.Is(err, nand.ErrWornOut) || errors.Is(err, nand.ErrEraseFailed) {
				f.cRetired.Inc()
			}
			continue
		}
		f.free = append(f.free, victim)
	}
	return nil
}

// relocLocked programs one valid page's data to a fresh location,
// preferring the given die, and rebinds the mapping from src to the new
// physical page. The page's integrity tag (if any) moves with it.
// Destination blocks that fail to program are retired in turn
// (cascade), which terminates because every retirement marks one more
// of the finitely many blocks bad. Called with gcLock held.
func (f *FTL) relocLocked(p *sim.Proc, src nand.PPA, lba LBA, data []byte, tag uint32, tagged bool, die int) error {
	fc := f.flash.Config()
	for {
		f.dieLocks[die].Acquire(p)
		dst, err := f.allocPPA(p, die)
		if err != nil {
			f.dieLocks[die].Release()
			return err
		}
		err = f.program(p, dst, data, tag, tagged)
		f.dieLocks[die].Release()
		if err == nil {
			f.invalidate(src)
			f.l2p[lba] = dst
			f.p2l[dst] = lba
			f.validCount[fc.BlockOf(dst)]++
			f.cNandWrites.Inc()
			return nil
		}
		switch {
		case errors.Is(err, nand.ErrProgramFailed):
			if rerr := f.retireLocked(p, fc.BlockOf(dst)); rerr != nil {
				return rerr
			}
		case errors.Is(err, nand.ErrBadBlock):
			// The open block was retired underneath this die's slot
			// (cascade from another relocation); drop it and retry.
			f.open[die] = openBlock{blk: 0, nextPage: -1}
		default:
			return err
		}
	}
}

// retireBlock takes the block out of service: its valid pages are
// evacuated elsewhere and the block is marked bad, never to be
// allocated again. Public entry point for the write/read paths; GC
// (which already holds gcLock) calls retireLocked directly.
func (f *FTL) retireBlock(p *sim.Proc, blk nand.BlockID) error {
	f.gcLock.Acquire(p)
	defer f.gcLock.Release()
	return f.retireLocked(p, blk)
}

// retireLocked implements retirement with gcLock held. Marking the
// block bad happens first so that any cascading retirement (a
// relocation target failing to program) cannot loop back into this
// block.
func (f *FTL) retireLocked(p *sim.Proc, blk nand.BlockID) error {
	if f.flash.IsBad(blk) {
		return nil // already retired (cascade re-entry)
	}
	fc := f.flash.Config()
	f.flash.MarkBad(blk)
	f.cRetired.Inc()
	for i, b := range f.free {
		if b == blk {
			f.free = append(f.free[:i], f.free[i+1:]...)
			break
		}
	}
	for i := range f.open {
		if f.open[i].nextPage >= 0 && f.open[i].blk == blk {
			f.open[i] = openBlock{blk: 0, nextPage: -1}
		}
	}
	// Evacuate the surviving valid pages. Reads go through SalvageRead:
	// the block is already condemned, so ECC verdicts are moot — the
	// firmware recovers the raw data at full retry latency.
	base := uint64(blk) * uint64(fc.PagesPerBlock)
	homeDie := int(uint64(blk) / uint64(fc.BlocksPerDie))
	for pg := 0; pg < fc.PagesPerBlock; pg++ {
		ppa := nand.PPA(base + uint64(pg))
		lba, valid := f.p2l[ppa]
		if !valid {
			continue
		}
		data, tag, tagged, err := f.flash.SalvageReadTagged(p, ppa)
		if err != nil {
			return fmt.Errorf("ftl: retire salvage: %w", err)
		}
		die := (homeDie + 1) % fc.Dies()
		if err := f.relocLocked(p, ppa, lba, data, tag, tagged, die); err != nil {
			return fmt.Errorf("ftl: retire relocation: %w", err)
		}
		f.cRetireReloc.Inc()
	}
	return nil
}

// pickVictim selects the closed block with the fewest valid pages
// (greedy). Open and free blocks are excluded.
func (f *FTL) pickVictim() (nand.BlockID, bool) {
	fc := f.flash.Config()
	openSet := make(map[nand.BlockID]bool, len(f.open))
	for _, ob := range f.open {
		if ob.nextPage >= 0 {
			openSet[ob.blk] = true
		}
	}
	freeSet := make(map[nand.BlockID]bool, len(f.free))
	for _, b := range f.free {
		freeSet[b] = true
	}
	best := nand.BlockID(0)
	bestValid := fc.PagesPerBlock + 1
	found := false
	for b := 0; b < fc.Blocks(); b++ {
		blk := nand.BlockID(b)
		if f.reserved(blk) || openSet[blk] || freeSet[blk] || f.flash.IsBad(blk) {
			continue
		}
		if f.flash.NextPage(blk) == 0 {
			continue // never programmed since erase; nothing to reclaim
		}
		if v := f.validCount[b]; v < bestValid {
			best, bestValid, found = blk, v, true
		}
	}
	if !found || bestValid >= fc.PagesPerBlock {
		// Only fully-valid blocks left: reclaiming one frees nothing
		// (it would rewrite a whole block to free a whole block).
		return 0, false
	}
	return best, true
}

// ScrubResult reports what one patrol read found and did.
type ScrubResult struct {
	Mapped   bool   // LBA had a physical mapping (unmapped pages are skipped)
	Retries  int    // ECC read-retries the patrol read needed (correctable errors)
	Salvaged bool   // page was uncorrectable; raw salvage + block retirement ran
	Repaired bool   // page was rewritten to a fresh location
	Data     []byte // page contents as read (post-correction)
	Tag      uint32 // out-of-band integrity tag, if Tagged
	Tagged   bool
}

// ScrubPage patrol-reads one logical page on behalf of the background
// scrubber. A page whose read needed ECC retries (accumulated raw bit
// errors still within the correction budget) is rewritten to a fresh
// location so the error count resets before it can grow uncorrectable;
// an already-uncorrectable page takes the salvage + retire path. The
// rewrite is guarded against concurrent host writes and GC: it only
// rebinds the mapping if the LBA still points at the physical page the
// patrol read, and counts as a NAND write, not a host write.
func (f *FTL) ScrubPage(p *sim.Proc, lba LBA) (ScrubResult, error) {
	var r ScrubResult
	if err := f.checkLBA(lba); err != nil {
		return r, err
	}
	ppa, ok := f.l2p[lba]
	if !ok {
		return r, nil
	}
	r.Mapped = true
	data, tag, tagged, retries, err := f.flash.ReadPageTagged(p, ppa)
	if err != nil {
		if !errors.Is(err, nand.ErrUncorrectable) {
			return r, err
		}
		data, tag, tagged, err = f.flash.SalvageReadTagged(p, ppa)
		if err != nil {
			return r, err
		}
		// retireBlock relocates every surviving valid page — including
		// this one — off the condemned block.
		if rerr := f.retireBlock(p, f.flash.Config().BlockOf(ppa)); rerr != nil {
			return r, fmt.Errorf("ftl: scrub retire: %w", rerr)
		}
		r.Salvaged, r.Repaired = true, true
		r.Data, r.Tag, r.Tagged = data, tag, tagged
		return r, nil
	}
	r.Retries = retries
	r.Data, r.Tag, r.Tagged = data, tag, tagged
	if retries == 0 {
		return r, nil
	}
	f.gcLock.Acquire(p)
	defer f.gcLock.Release()
	if cur, ok := f.l2p[lba]; !ok || cur != ppa {
		// The host or GC moved the page while we read it; the fresh copy
		// starts with zero accumulated errors, nothing left to repair.
		return r, nil
	}
	die := int(uint64(ppa)/uint64(f.flash.Config().PagesPerBlock)/uint64(f.flash.Config().BlocksPerDie)+1) % f.flash.Config().Dies()
	if err := f.relocLocked(p, ppa, lba, data, tag, tagged, die); err != nil {
		return r, fmt.Errorf("ftl: scrub rewrite: %w", err)
	}
	r.Repaired = true
	return r, nil
}
