// Package linkbench generates a LinkBench-like workload: the Facebook
// social-graph benchmark the paper runs against PostgreSQL (Fig 9a,
// Fig 10). Nodes and typed links with power-law popularity, and the
// published operation mix (~31 % writes).
package linkbench

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"twobssd/internal/sim"
	"twobssd/internal/ycsb"
)

// OpKind is a LinkBench operation.
type OpKind int

// The LinkBench operation set.
const (
	AddNode OpKind = iota
	UpdateNode
	DeleteNode
	GetNode
	AddLink
	DeleteLink
	UpdateLink
	CountLinks
	GetLink
	GetLinkList
)

func (k OpKind) String() string {
	names := []string{"ADD_NODE", "UPDATE_NODE", "DELETE_NODE", "GET_NODE",
		"ADD_LINK", "DELETE_LINK", "UPDATE_LINK", "COUNT_LINKS", "GET_LINK", "GET_LINK_LIST"}
	if int(k) < len(names) {
		return names[k]
	}
	return fmt.Sprintf("OpKind(%d)", int(k))
}

// mix is the published LinkBench operation distribution (percent).
var mix = []struct {
	kind OpKind
	pct  float64
}{
	{AddNode, 2.6},
	{UpdateNode, 7.4},
	{DeleteNode, 1.0},
	{GetNode, 12.9},
	{AddLink, 9.0},
	{DeleteLink, 3.0},
	{UpdateLink, 8.0},
	{CountLinks, 4.9},
	{GetLink, 0.5},
	{GetLinkList, 50.7},
}

// Graph is the store interface the workload drives — the shape of the
// paper's patched PostgreSQL schema (node table + link table).
type Graph interface {
	AddNode(p *sim.Proc, id uint64, data []byte) error
	UpdateNode(p *sim.Proc, id uint64, data []byte) error
	DeleteNode(p *sim.Proc, id uint64) error
	GetNode(p *sim.Proc, id uint64) ([]byte, bool, error)
	AddLink(p *sim.Proc, id1, id2 uint64, linkType uint32, data []byte) error
	DeleteLink(p *sim.Proc, id1, id2 uint64, linkType uint32) error
	GetLink(p *sim.Proc, id1, id2 uint64, linkType uint32) ([]byte, bool, error)
	GetLinkList(p *sim.Proc, id1 uint64, linkType uint32, limit int) (int, error)
	CountLinks(p *sim.Proc, id1 uint64, linkType uint32) (int, error)
}

// Config shapes a workload.
type Config struct {
	Nodes     int64 // initial graph size
	LinkTypes int   // distinct link types (default 2)
	DataBytes int   // node/link payload size (default 128)
	Seed      int64
}

// Generator produces deterministic LinkBench operations.
type Generator struct {
	cfg    Config
	zipf   *ycsb.Zipfian
	rng    *rand.Rand
	nextID uint64
	data   []byte
	cum    []float64
}

// NewGenerator builds a generator.
func NewGenerator(cfg Config) *Generator {
	if cfg.LinkTypes <= 0 {
		cfg.LinkTypes = 2
	}
	if cfg.DataBytes <= 0 {
		cfg.DataBytes = 128
	}
	g := &Generator{
		cfg:    cfg,
		zipf:   ycsb.NewZipfian(cfg.Nodes, 0.99, cfg.Seed),
		rng:    rand.New(rand.NewSource(cfg.Seed + 13)),
		nextID: uint64(cfg.Nodes),
		data:   make([]byte, cfg.DataBytes),
	}
	for i := range g.data {
		g.data[i] = byte('A' + i%26)
	}
	var cum float64
	for _, m := range mix {
		cum += m.pct
		g.cum = append(g.cum, cum)
	}
	return g
}

func (g *Generator) pick() OpKind {
	r := g.rng.Float64() * g.cum[len(g.cum)-1]
	for i, c := range g.cum {
		if r < c {
			return mix[i].kind
		}
	}
	return GetLinkList
}

func (g *Generator) node() uint64 { return uint64(g.zipf.Next()) }

func (g *Generator) linkType() uint32 { return uint32(g.rng.Intn(g.cfg.LinkTypes)) }

// NodeKey/LinkKey format composite keys for a relational mapping.
func NodeKey(id uint64) []byte {
	k := make([]byte, 9)
	k[0] = 'n'
	binary.BigEndian.PutUint64(k[1:], id)
	return k
}

// LinkKey orders links by (id1, type, id2) so GetLinkList is a range
// scan — the paper's caching-layer-miss pattern.
func LinkKey(id1 uint64, linkType uint32, id2 uint64) []byte {
	k := make([]byte, 21)
	k[0] = 'l'
	binary.BigEndian.PutUint64(k[1:], id1)
	binary.BigEndian.PutUint32(k[9:], linkType)
	binary.BigEndian.PutUint64(k[13:], id2)
	return k
}

// LinkPrefix is the scan start for (id1, linkType).
func LinkPrefix(id1 uint64, linkType uint32) []byte {
	k := make([]byte, 13)
	k[0] = 'l'
	binary.BigEndian.PutUint64(k[1:], id1)
	binary.BigEndian.PutUint32(k[9:], linkType)
	return k
}

// Load populates the initial graph: every node, plus power-law links.
func (g *Generator) Load(p *sim.Proc, gr Graph, linksPerNode int) error {
	for id := int64(0); id < g.cfg.Nodes; id++ {
		if err := gr.AddNode(p, uint64(id), g.data); err != nil {
			return err
		}
	}
	for id := int64(0); id < g.cfg.Nodes; id++ {
		n := g.rng.Intn(2*linksPerNode + 1)
		for j := 0; j < n; j++ {
			dst := g.node()
			if err := gr.AddLink(p, uint64(id), dst, g.linkType(), g.data); err != nil {
				return err
			}
		}
	}
	return nil
}

// Step executes one operation against the graph.
func (g *Generator) Step(p *sim.Proc, gr Graph) (OpKind, error) {
	kind := g.pick()
	switch kind {
	case AddNode:
		id := g.nextID
		g.nextID++
		return kind, gr.AddNode(p, id, g.data)
	case UpdateNode:
		return kind, gr.UpdateNode(p, g.node(), g.data)
	case DeleteNode:
		return kind, gr.DeleteNode(p, g.node())
	case GetNode:
		_, _, err := gr.GetNode(p, g.node())
		return kind, err
	case AddLink:
		return kind, gr.AddLink(p, g.node(), g.node(), g.linkType(), g.data)
	case DeleteLink:
		return kind, gr.DeleteLink(p, g.node(), g.node(), g.linkType())
	case UpdateLink:
		return kind, gr.AddLink(p, g.node(), g.node(), g.linkType(), g.data)
	case CountLinks:
		_, err := gr.CountLinks(p, g.node(), g.linkType())
		return kind, err
	case GetLink:
		_, _, err := gr.GetLink(p, g.node(), g.node(), g.linkType())
		return kind, err
	default: // GetLinkList
		_, err := gr.GetLinkList(p, g.node(), g.linkType(), 10)
		return kind, err
	}
}

// Result summarizes a run.
type Result struct {
	Ops     int64
	Writes  int64
	Reads   int64
	Elapsed sim.Duration
	ByKind  map[OpKind]int64
}

// Throughput returns operations per second of virtual time.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// IsWrite classifies an operation.
func (k OpKind) IsWrite() bool {
	switch k {
	case AddNode, UpdateNode, DeleteNode, AddLink, DeleteLink, UpdateLink:
		return true
	default:
		return false
	}
}

// Run executes ops operations across clients concurrent processes.
func Run(env *sim.Env, gr Graph, cfg Config, clients int, ops int64) (Result, error) {
	if clients <= 0 {
		clients = 1
	}
	perClient := ops / int64(clients)
	res := Result{ByKind: make(map[OpKind]int64)}
	var firstErr error
	start := env.Now()
	var lastDone sim.Time
	for c := 0; c < clients; c++ {
		ccfg := cfg
		ccfg.Seed = cfg.Seed + int64(c)*104729
		g := NewGenerator(ccfg)
		g.nextID = uint64(cfg.Nodes) + uint64(c)<<40 // disjoint id space
		env.Go(fmt.Sprintf("linkbench.c%d", c), func(p *sim.Proc) {
			for i := int64(0); i < perClient; i++ {
				kind, err := g.Step(p, gr)
				if err != nil && firstErr == nil {
					firstErr = err
					return
				}
				res.Ops++
				res.ByKind[kind]++
				if kind.IsWrite() {
					res.Writes++
				} else {
					res.Reads++
				}
			}
			if env.Now() > lastDone {
				lastDone = env.Now()
			}
		})
	}
	env.Run()
	// Elapsed ends at the last client's completion — background flush
	// timers that fire later must not dilate the measurement.
	res.Elapsed = sim.Duration(lastDone - start)
	return res, firstErr
}
