package linkbench

import (
	"bytes"
	"sort"
	"testing"

	"twobssd/internal/sim"
)

func TestMixFractions(t *testing.T) {
	g := NewGenerator(Config{Nodes: 1000, Seed: 3})
	counts := make(map[OpKind]int)
	const n = 50000
	for i := 0; i < n; i++ {
		counts[g.pick()]++
	}
	// GetLinkList dominates (~50.7 %).
	if frac := float64(counts[GetLinkList]) / n; frac < 0.45 || frac > 0.56 {
		t.Fatalf("GET_LINK_LIST fraction = %.3f", frac)
	}
	// Writes ≈ 31 %.
	writes := 0
	for k, c := range counts {
		if k.IsWrite() {
			writes += c
		}
	}
	if frac := float64(writes) / n; frac < 0.26 || frac > 0.36 {
		t.Fatalf("write fraction = %.3f, want ~0.31", frac)
	}
}

func TestKeyEncodingOrders(t *testing.T) {
	// Link keys for one (id1, type) must sort contiguously after the
	// prefix, so GetLinkList is a range scan.
	k1 := LinkKey(5, 1, 10)
	k2 := LinkKey(5, 1, 200)
	k3 := LinkKey(5, 2, 1)
	k4 := LinkKey(6, 0, 0)
	pfx := LinkPrefix(5, 1)
	if !bytes.HasPrefix(k1, pfx) || !bytes.HasPrefix(k2, pfx) {
		t.Fatal("prefix mismatch")
	}
	keys := [][]byte{k4, k3, k2, k1}
	sort.Slice(keys, func(i, j int) bool { return bytes.Compare(keys[i], keys[j]) < 0 })
	if !bytes.Equal(keys[0], k1) || !bytes.Equal(keys[1], k2) || !bytes.Equal(keys[2], k3) {
		t.Fatal("link keys not ordered by (id1, type, id2)")
	}
	if bytes.HasPrefix(k3, pfx) {
		t.Fatal("different type shares prefix")
	}
	n1, n2 := NodeKey(1), NodeKey(2)
	if bytes.Compare(n1, n2) >= 0 {
		t.Fatal("node keys not ordered")
	}
}

// memGraph is a trivial in-memory Graph for runner tests.
type memGraph struct {
	nodes map[uint64][]byte
	links map[string][]byte
}

func newMemGraph() *memGraph {
	return &memGraph{nodes: make(map[uint64][]byte), links: make(map[string][]byte)}
}

func (g *memGraph) AddNode(p *sim.Proc, id uint64, data []byte) error {
	p.Sleep(2 * sim.Microsecond)
	g.nodes[id] = data
	return nil
}
func (g *memGraph) UpdateNode(p *sim.Proc, id uint64, data []byte) error {
	return g.AddNode(p, id, data)
}
func (g *memGraph) DeleteNode(p *sim.Proc, id uint64) error {
	p.Sleep(2 * sim.Microsecond)
	delete(g.nodes, id)
	return nil
}
func (g *memGraph) GetNode(p *sim.Proc, id uint64) ([]byte, bool, error) {
	p.Sleep(sim.Microsecond)
	d, ok := g.nodes[id]
	return d, ok, nil
}
func (g *memGraph) AddLink(p *sim.Proc, id1, id2 uint64, lt uint32, data []byte) error {
	p.Sleep(2 * sim.Microsecond)
	g.links[string(LinkKey(id1, lt, id2))] = data
	return nil
}
func (g *memGraph) DeleteLink(p *sim.Proc, id1, id2 uint64, lt uint32) error {
	p.Sleep(2 * sim.Microsecond)
	delete(g.links, string(LinkKey(id1, lt, id2)))
	return nil
}
func (g *memGraph) GetLink(p *sim.Proc, id1, id2 uint64, lt uint32) ([]byte, bool, error) {
	p.Sleep(sim.Microsecond)
	d, ok := g.links[string(LinkKey(id1, lt, id2))]
	return d, ok, nil
}
func (g *memGraph) GetLinkList(p *sim.Proc, id1 uint64, lt uint32, limit int) (int, error) {
	p.Sleep(sim.Microsecond)
	pfx := LinkPrefix(id1, lt)
	n := 0
	for k := range g.links {
		if bytes.HasPrefix([]byte(k), pfx) {
			n++
			if n >= limit {
				break
			}
		}
	}
	return n, nil
}
func (g *memGraph) CountLinks(p *sim.Proc, id1 uint64, lt uint32) (int, error) {
	return g.GetLinkList(p, id1, lt, 1<<30)
}

func TestLoadAndRun(t *testing.T) {
	env := sim.NewEnv()
	gr := newMemGraph()
	g := NewGenerator(Config{Nodes: 100, Seed: 1})
	env.Go("load", func(p *sim.Proc) {
		if err := g.Load(p, gr, 3); err != nil {
			t.Fatalf("load: %v", err)
		}
	})
	env.Run()
	if len(gr.nodes) != 100 {
		t.Fatalf("nodes = %d", len(gr.nodes))
	}
	if len(gr.links) == 0 {
		t.Fatal("no links loaded")
	}
	res, err := Run(env, gr, Config{Nodes: 100, Seed: 2}, 4, 2000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 2000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Writes == 0 || res.Reads == 0 {
		t.Fatalf("mix: %+v", res)
	}
	wf := float64(res.Writes) / float64(res.Ops)
	if wf < 0.25 || wf > 0.37 {
		t.Fatalf("write fraction = %.3f", wf)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	if len(res.ByKind) < 8 {
		t.Fatalf("op kinds seen = %d", len(res.ByKind))
	}
}

func TestOpKindStrings(t *testing.T) {
	if AddNode.String() != "ADD_NODE" || GetLinkList.String() != "GET_LINK_LIST" {
		t.Fatal("names wrong")
	}
}
