// Package lsm is an embedded log-structured merge-tree key-value store
// in the mold of RocksDB 5.x: a skiplist memtable pair (active +
// immutable) with a write-ahead log each, sorted-string-table (SST)
// files with block indexes and bloom filters, leveled compaction and a
// block cache.
//
// It is the NoSQL engine of the paper's case study (Section IV-B):
// BA-WAL replaces its log-file append path, exactly where the paper
// overrode RocksDB's WritableFile.
package lsm

import (
	"bytes"
	"math/rand"
)

const maxHeight = 12

type memNode struct {
	key   []byte
	seq   uint64
	value []byte // nil means tombstone
	next  [maxHeight]*memNode
}

// memtable is a skiplist ordered by (key asc, seq desc) so the newest
// version of a key is encountered first.
type memtable struct {
	head   *memNode
	height int
	rng    *rand.Rand
	bytes  int
	count  int

	// Arena allocation: nodes and key/value copies are carved from
	// chunks so an add costs ~3 allocations per few hundred entries
	// instead of 3 each. Chunks are never reused — retired chunks stay
	// alive exactly as long as skiplist pointers into them do, and the
	// whole arena dies with the memtable at flush.
	nodes []memNode
	nused int
	arena []byte
}

const (
	memNodeChunk  = 256
	memArenaChunk = 1 << 16
)

func newMemtable(seed int64) *memtable {
	return &memtable{
		head:   &memNode{},
		height: 1,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

func (m *memtable) newNode() *memNode {
	if m.nused == len(m.nodes) {
		m.nodes = make([]memNode, memNodeChunk)
		m.nused = 0
	}
	n := &m.nodes[m.nused]
	m.nused++
	return n
}

var emptyBytes = []byte{}

// copyArena copies b into the memtable's byte arena.
func (m *memtable) copyArena(b []byte) []byte {
	if len(b) == 0 {
		return emptyBytes // non-nil: nil means tombstone
	}
	if len(b) > len(m.arena) {
		size := memArenaChunk
		if len(b) > size {
			size = len(b)
		}
		m.arena = make([]byte, size)
	}
	c := m.arena[:len(b):len(b)]
	m.arena = m.arena[len(b):]
	copy(c, b)
	return c
}

// compare orders by key ascending, then seq descending (newer first).
func compareEntries(aKey []byte, aSeq uint64, bKey []byte, bSeq uint64) int {
	if c := bytes.Compare(aKey, bKey); c != 0 {
		return c
	}
	switch {
	case aSeq > bSeq:
		return -1
	case aSeq < bSeq:
		return 1
	default:
		return 0
	}
}

func (m *memtable) randomHeight() int {
	h := 1
	for h < maxHeight && m.rng.Intn(4) == 0 {
		h++
	}
	return h
}

// add inserts one version. value nil records a tombstone.
func (m *memtable) add(key []byte, seq uint64, value []byte) {
	var prev [maxHeight]*memNode
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && compareEntries(x.next[lvl].key, x.next[lvl].seq, key, seq) < 0 {
			x = x.next[lvl]
		}
		prev[lvl] = x
	}
	h := m.randomHeight()
	if h > m.height {
		for lvl := m.height; lvl < h; lvl++ {
			prev[lvl] = m.head
		}
		m.height = h
	}
	n := m.newNode()
	n.key = m.copyArena(key)
	n.seq = seq
	if value != nil {
		n.value = m.copyArena(value)
	}
	for lvl := 0; lvl < h; lvl++ {
		n.next[lvl] = prev[lvl].next[lvl]
		prev[lvl].next[lvl] = n
	}
	m.bytes += len(key) + len(value) + 32
	m.count++
}

// get returns the newest version of key at or below maxSeq.
// found=false means the memtable has no version; found=true with
// value=nil means the key was deleted.
func (m *memtable) get(key []byte, maxSeq uint64) (value []byte, found bool) {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && compareEntries(x.next[lvl].key, x.next[lvl].seq, key, maxSeq) < 0 {
			x = x.next[lvl]
		}
	}
	n := x.next[0]
	if n == nil || !bytes.Equal(n.key, key) {
		return nil, false
	}
	return n.value, true
}

// first returns the first node (ordered iteration entry point).
func (m *memtable) first() *memNode { return m.head.next[0] }

// seek returns the first node with (key,seq) >= (key, maxSeq).
func (m *memtable) seek(key []byte, maxSeq uint64) *memNode {
	x := m.head
	for lvl := m.height - 1; lvl >= 0; lvl-- {
		for x.next[lvl] != nil && compareEntries(x.next[lvl].key, x.next[lvl].seq, key, maxSeq) < 0 {
			x = x.next[lvl]
		}
	}
	return x.next[0]
}

// sizeBytes approximates memory use (flush trigger).
func (m *memtable) sizeBytes() int { return m.bytes }

// len returns the number of stored versions.
func (m *memtable) len() int { return m.count }
