package lsm

import (
	"bytes"
	"sort"

	"twobssd/internal/sim"
)

// targetSSTBytes is the output table size compaction aims for.
const targetSSTBytes = 1 << 20

// levelLimit returns the max total bytes allowed at a level
// (L1 = LevelBase, each level below x10).
func (db *DB) levelLimit(lvl int) int64 {
	limit := db.cfg.LevelBase
	for i := 1; i < lvl; i++ {
		limit *= 10
	}
	return limit
}

func levelBytes(tables []*table) int64 {
	var n int64
	for _, t := range tables {
		n += t.file.Size()
	}
	return n
}

// maybeCompact runs leveled compaction until the tree is in shape.
// It is invoked from flush processes; the write lock is NOT held, and
// readers tolerate table-set swaps because Go slices are replaced
// atomically between sim yields.
func (db *DB) maybeCompact(p *sim.Proc) error {
	for {
		switch {
		case len(db.levels[0]) >= db.cfg.L0Trigger:
			if err := db.compactL0(p); err != nil {
				return err
			}
		default:
			lvl := db.overfullLevel()
			if lvl < 0 {
				return nil
			}
			if err := db.compactLevel(p, lvl); err != nil {
				return err
			}
		}
	}
}

func (db *DB) overfullLevel() int {
	for lvl := 1; lvl < db.cfg.MaxLevels-1; lvl++ {
		if levelBytes(db.levels[lvl]) > db.levelLimit(lvl) {
			return lvl
		}
	}
	return -1
}

// compactL0 merges every L0 table plus the overlapping L1 tables into
// fresh L1 tables.
func (db *DB) compactL0(p *sim.Proc) error {
	inputs := append([]*table(nil), db.levels[0]...)
	lo, hi := keyRange(inputs)
	var keepL1, mergeL1 []*table
	for _, t := range db.levels[1] {
		if t.overlaps(lo, hi) {
			mergeL1 = append(mergeL1, t)
		} else {
			keepL1 = append(keepL1, t)
		}
	}
	// L0 tables: newest last in the slice; merge priority = newer wins.
	// Assign priority by position: later L0 tables override earlier
	// ones, all L0 overrides L1 (seq numbers already encode this).
	all := append(append([]*table(nil), mergeL1...), inputs...)
	merged, err := db.mergeTables(p, all, db.bottomAfter(1))
	if err != nil {
		return err
	}
	out, err := db.buildTables(p, merged)
	if err != nil {
		return err
	}
	db.levels[0] = nil
	newL1 := append(keepL1, out...)
	sort.Slice(newL1, func(i, j int) bool { return bytes.Compare(newL1[i].first, newL1[j].first) < 0 })
	db.levels[1] = newL1
	db.stats.Compactions++
	return db.dropTables(p, all)
}

// compactLevel pushes one table from lvl into lvl+1.
func (db *DB) compactLevel(p *sim.Proc, lvl int) error {
	src := db.levels[lvl][0]
	var keepDown, mergeDown []*table
	for _, t := range db.levels[lvl+1] {
		if t.overlaps(src.first, src.last) {
			mergeDown = append(mergeDown, t)
		} else {
			keepDown = append(keepDown, t)
		}
	}
	all := append([]*table{src}, mergeDown...)
	merged, err := db.mergeTables(p, all, db.bottomAfter(lvl+1))
	if err != nil {
		return err
	}
	out, err := db.buildTables(p, merged)
	if err != nil {
		return err
	}
	db.levels[lvl] = db.levels[lvl][1:]
	next := append(keepDown, out...)
	sort.Slice(next, func(i, j int) bool { return bytes.Compare(next[i].first, next[j].first) < 0 })
	db.levels[lvl+1] = next
	db.stats.Compactions++
	return db.dropTables(p, all)
}

// bottomAfter reports whether any level below lvl holds data — if not,
// tombstones can be dropped during compaction into lvl.
func (db *DB) bottomAfter(lvl int) bool {
	for i := lvl + 1; i < db.cfg.MaxLevels; i++ {
		if len(db.levels[i]) > 0 {
			return false
		}
	}
	return true
}

func keyRange(tables []*table) (lo, hi []byte) {
	for _, t := range tables {
		if lo == nil || bytes.Compare(t.first, lo) < 0 {
			lo = t.first
		}
		if hi == nil || bytes.Compare(t.last, hi) > 0 {
			hi = t.last
		}
	}
	return
}

// mergeTables loads every entry of the inputs and keeps the newest
// version per key (highest seq). dropTombstones removes deletions when
// merging into the bottom of the tree.
func (db *DB) mergeTables(p *sim.Proc, inputs []*table, dropTombstones bool) ([]entry, error) {
	var all []entry
	for _, t := range inputs {
		for bi := range t.index {
			ents, err := t.readBlock(p, db.cache, bi)
			if err != nil {
				return nil, err
			}
			all = append(all, ents...)
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if c := bytes.Compare(all[i].key, all[j].key); c != 0 {
			return c < 0
		}
		return all[i].seq > all[j].seq
	})
	out := all[:0]
	var lastKey []byte
	for _, e := range all {
		if lastKey != nil && bytes.Equal(e.key, lastKey) {
			continue
		}
		lastKey = e.key
		if e.tombstone && dropTombstones {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// buildTables splits a sorted entry run into target-sized SSTs.
func (db *DB) buildTables(p *sim.Proc, ents []entry) ([]*table, error) {
	var out []*table
	w := newSSTWriter()
	flush := func() error {
		if w.count == 0 {
			return nil
		}
		img := w.finish()
		db.fileSeq++
		f, err := db.cfg.DataFS.Create(sstName(db.fileSeq), int64(len(img)))
		if err != nil {
			return err
		}
		if err := f.WriteAt(p, 0, img); err != nil {
			return err
		}
		if err := f.Sync(p); err != nil {
			return err
		}
		t, err := openTable(p, f, db.fileSeq)
		if err != nil {
			return err
		}
		t.setBounds(w.first, w.last)
		out = append(out, t)
		w = newSSTWriter()
		return nil
	}
	for _, e := range ents {
		w.add(e.key, e.seq, e.value, e.tombstone)
		if w.buf.Len()+w.block.Len() >= targetSSTBytes {
			if err := flush(); err != nil {
				return nil, err
			}
		}
	}
	if err := flush(); err != nil {
		return nil, err
	}
	return out, nil
}

// dropTables retires compaction inputs. Files are removed immediately
// when no reader is active, otherwise queued for reclamation at the
// last reader's exit.
func (db *DB) dropTables(p *sim.Proc, tables []*table) error {
	for _, t := range tables {
		if db.activeReaders > 0 {
			db.obsolete = append(db.obsolete, t.file.Name())
			continue
		}
		if err := db.cfg.DataFS.Remove(t.file.Name()); err != nil {
			return err
		}
	}
	_ = p
	return nil
}

// Scan returns up to limit live key/value pairs with key >= start, in
// order — a merge across memtables and every table. Used by range
// workloads and as a whole-tree consistency check in tests.
func (db *DB) Scan(p *sim.Proc, start []byte, limit int) (keys, values [][]byte, err error) {
	p.Sleep(db.cfg.ReadCPU)
	type ver struct {
		seq       uint64
		value     []byte
		tombstone bool
	}
	db.beginRead()
	defer db.endRead(p)
	levels := db.snapshotLevels()
	best := make(map[string]ver)
	consider := func(key []byte, seq uint64, value []byte, tomb bool) {
		if bytes.Compare(key, start) < 0 {
			return
		}
		k := string(key)
		if cur, ok := best[k]; ok && cur.seq >= seq {
			return
		}
		best[k] = ver{seq: seq, value: append([]byte(nil), value...), tombstone: tomb}
	}
	for n := db.mem.first(); n != nil; n = n.next[0] {
		consider(n.key, n.seq, n.value, n.value == nil)
	}
	if db.imm != nil {
		for n := db.imm.first(); n != nil; n = n.next[0] {
			consider(n.key, n.seq, n.value, n.value == nil)
		}
	}
	for lvl := range levels {
		for _, t := range levels[lvl] {
			for bi := range t.index {
				ents, err := t.readBlock(p, db.cache, bi)
				if err != nil {
					return nil, nil, err
				}
				for _, e := range ents {
					consider(e.key, e.seq, e.value, e.tombstone)
				}
			}
		}
	}
	sorted := make([]string, 0, len(best))
	for k := range best {
		sorted = append(sorted, k)
	}
	sort.Strings(sorted)
	for _, k := range sorted {
		v := best[k]
		if v.tombstone {
			continue
		}
		keys = append(keys, []byte(k))
		values = append(values, v.value)
		if limit > 0 && len(keys) >= limit {
			break
		}
	}
	return keys, values, nil
}
