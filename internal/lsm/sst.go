package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"twobssd/internal/sim"
	"twobssd/internal/vfs"
)

// SST layout:
//
//	data blocks   packed entries, ~blockBytes each
//	index         one entry per block: first key, offset, length
//	bloom filter  10 bits/key, k=7
//	footer        fixed 44 bytes at the end
//
// Entry encoding: [4]klen [4]vlen [8]seq [klen]key [vlen]value,
// vlen == tombstoneLen marks a deletion.
const (
	blockBytes   = 4096
	tombstoneLen = 0xFFFFFFFF
	sstMagic     = 0x55713BDD
	footerBytes  = 44
)

var errCorruptSST = errors.New("lsm: corrupt SST")

// bloom is a fixed double-hash Bloom filter.
type bloom struct {
	bits []byte
	k    int
}

func newBloom(n int) *bloom {
	nbits := n * 10
	if nbits < 64 {
		nbits = 64
	}
	return &bloom{bits: make([]byte, (nbits+7)/8), k: 7}
}

func bloomHash(key []byte) (uint32, uint32) {
	h := crc32.ChecksumIEEE(key)
	return h, (h >> 17) | (h << 15)
}

func (b *bloom) add(key []byte) {
	h, delta := bloomHash(key)
	n := uint32(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		pos := h % n
		b.bits[pos/8] |= 1 << (pos % 8)
		h += delta
	}
}

func (b *bloom) mayContain(key []byte) bool {
	if len(b.bits) == 0 {
		return true
	}
	h, delta := bloomHash(key)
	n := uint32(len(b.bits) * 8)
	for i := 0; i < b.k; i++ {
		pos := h % n
		if b.bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
		h += delta
	}
	return true
}

type indexEntry struct {
	firstKey []byte
	off      uint64
	length   uint32
}

// sstWriter accumulates sorted entries and serializes an SST image.
type sstWriter struct {
	buf        bytes.Buffer
	block      bytes.Buffer
	index      []indexEntry
	keys       [][]byte
	first      []byte
	last       []byte
	count      int
	blockFirst []byte
}

func newSSTWriter() *sstWriter { return &sstWriter{} }

// add appends one version; keys must arrive in ascending order.
func (w *sstWriter) add(key []byte, seq uint64, value []byte, tombstone bool) {
	if w.first == nil {
		w.first = append([]byte(nil), key...)
	}
	w.last = append(w.last[:0], key...)
	if w.blockFirst == nil {
		w.blockFirst = append([]byte(nil), key...)
	}
	var hdr [16]byte
	binary.LittleEndian.PutUint32(hdr[0:], uint32(len(key)))
	vlen := uint32(len(value))
	if tombstone {
		vlen = tombstoneLen
	}
	binary.LittleEndian.PutUint32(hdr[4:], vlen)
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	w.block.Write(hdr[:])
	w.block.Write(key)
	if !tombstone {
		w.block.Write(value)
	}
	w.keys = append(w.keys, append([]byte(nil), key...))
	w.count++
	if w.block.Len() >= blockBytes {
		w.finishBlock()
	}
}

func (w *sstWriter) finishBlock() {
	if w.block.Len() == 0 {
		return
	}
	w.index = append(w.index, indexEntry{
		firstKey: w.blockFirst,
		off:      uint64(w.buf.Len()),
		length:   uint32(w.block.Len()),
	})
	w.buf.Write(w.block.Bytes())
	w.block.Reset()
	w.blockFirst = nil
}

// finish serializes the SST and returns the complete image.
func (w *sstWriter) finish() []byte {
	w.finishBlock()
	indexOff := uint64(w.buf.Len())
	for _, ie := range w.index {
		var hdr [16]byte
		binary.LittleEndian.PutUint32(hdr[0:], uint32(len(ie.firstKey)))
		binary.LittleEndian.PutUint64(hdr[4:], ie.off)
		binary.LittleEndian.PutUint32(hdr[12:], ie.length)
		w.buf.Write(hdr[:])
		w.buf.Write(ie.firstKey)
	}
	indexLen := uint64(w.buf.Len()) - indexOff

	bl := newBloom(len(w.keys))
	for _, k := range w.keys {
		bl.add(k)
	}
	bloomOff := uint64(w.buf.Len())
	w.buf.Write(bl.bits)

	var footer [footerBytes]byte
	binary.LittleEndian.PutUint64(footer[0:], indexOff)
	binary.LittleEndian.PutUint32(footer[8:], uint32(indexLen))
	binary.LittleEndian.PutUint64(footer[12:], bloomOff)
	binary.LittleEndian.PutUint32(footer[20:], uint32(len(bl.bits)))
	binary.LittleEndian.PutUint64(footer[24:], uint64(w.count))
	binary.LittleEndian.PutUint32(footer[32:], uint32(len(w.index)))
	binary.LittleEndian.PutUint32(footer[36:], crc32.ChecksumIEEE(w.buf.Bytes()[indexOff:bloomOff]))
	binary.LittleEndian.PutUint32(footer[40:], sstMagic)
	w.buf.Write(footer[:])
	return w.buf.Bytes()
}

// table is an open SST: metadata in memory, data blocks on the device.
type table struct {
	file    *vfs.File
	num     int // file number (cache key component)
	index   []indexEntry
	filter  *bloom
	first   []byte
	last    []byte
	count   int
	dataLen int64 // bytes of data-block region
}

// openTable loads footer, index and bloom from a written SST file.
func openTable(p *sim.Proc, f *vfs.File, num int) (*table, error) {
	size := f.Size()
	if size < footerBytes {
		return nil, fmt.Errorf("%w: short file %d", errCorruptSST, size)
	}
	foot := make([]byte, footerBytes)
	if err := f.ReadAt(p, size-footerBytes, foot); err != nil {
		return nil, err
	}
	if binary.LittleEndian.Uint32(foot[40:]) != sstMagic {
		return nil, fmt.Errorf("%w: bad magic", errCorruptSST)
	}
	indexOff := int64(binary.LittleEndian.Uint64(foot[0:]))
	indexLen := int64(binary.LittleEndian.Uint32(foot[8:]))
	bloomLen := int64(binary.LittleEndian.Uint32(foot[20:]))
	count := int(binary.LittleEndian.Uint64(foot[24:]))
	nIndex := int(binary.LittleEndian.Uint32(foot[32:]))
	wantCRC := binary.LittleEndian.Uint32(foot[36:])

	meta := make([]byte, indexLen+bloomLen)
	if err := f.ReadAt(p, indexOff, meta); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(meta[:indexLen]) != wantCRC {
		return nil, fmt.Errorf("%w: index CRC", errCorruptSST)
	}
	t := &table{file: f, num: num, count: count, dataLen: indexOff}
	pos := 0
	for i := 0; i < nIndex; i++ {
		klen := int(binary.LittleEndian.Uint32(meta[pos:]))
		off := binary.LittleEndian.Uint64(meta[pos+4:])
		length := binary.LittleEndian.Uint32(meta[pos+12:])
		key := append([]byte(nil), meta[pos+16:pos+16+klen]...)
		t.index = append(t.index, indexEntry{firstKey: key, off: off, length: length})
		pos += 16 + klen
	}
	t.filter = &bloom{bits: append([]byte(nil), meta[indexLen:]...), k: 7}
	if len(t.index) > 0 {
		t.first = t.index[0].firstKey
	}
	// Recover the largest key by scanning the last block lazily when
	// needed; writers record it via setBounds instead.
	return t, nil
}

func (t *table) setBounds(first, last []byte) {
	t.first = append([]byte(nil), first...)
	t.last = append([]byte(nil), last...)
}

// overlaps reports whether the table's key range intersects [lo, hi].
func (t *table) overlaps(lo, hi []byte) bool {
	if len(t.index) == 0 {
		return false
	}
	if hi != nil && bytes.Compare(t.first, hi) > 0 {
		return false
	}
	if lo != nil && t.last != nil && bytes.Compare(t.last, lo) < 0 {
		return false
	}
	return true
}

// blockFor returns the index position whose block may contain key.
func (t *table) blockFor(key []byte) int {
	lo, hi := 0, len(t.index)-1
	res := -1
	for lo <= hi {
		mid := (lo + hi) / 2
		if bytes.Compare(t.index[mid].firstKey, key) <= 0 {
			res = mid
			lo = mid + 1
		} else {
			hi = mid - 1
		}
	}
	return res
}

// entry is one decoded SST/memtable version.
type entry struct {
	key       []byte
	seq       uint64
	value     []byte
	tombstone bool
}

// parseBlock decodes all entries of one data block.
func parseBlock(data []byte) ([]entry, error) {
	var out []entry
	pos := 0
	for pos+16 <= len(data) {
		klen := int(binary.LittleEndian.Uint32(data[pos:]))
		vlenRaw := binary.LittleEndian.Uint32(data[pos+4:])
		seq := binary.LittleEndian.Uint64(data[pos+8:])
		if klen == 0 {
			break // zero padding at block tail
		}
		pos += 16
		if pos+klen > len(data) {
			return nil, errCorruptSST
		}
		key := data[pos : pos+klen]
		pos += klen
		e := entry{key: key, seq: seq}
		if vlenRaw == tombstoneLen {
			e.tombstone = true
		} else {
			vlen := int(vlenRaw)
			if pos+vlen > len(data) {
				return nil, errCorruptSST
			}
			e.value = data[pos : pos+vlen]
			pos += vlen
		}
		out = append(out, e)
	}
	return out, nil
}

// blockCache is a tiny LRU over decoded data blocks.
type blockCache struct {
	cap   int
	items map[string][]entry
	order []string
	hits  uint64
	miss  uint64
}

func newBlockCache(capacity int) *blockCache {
	if capacity <= 0 {
		capacity = 64
	}
	return &blockCache{cap: capacity, items: make(map[string][]entry)}
}

func (c *blockCache) key(num int, off uint64) string {
	return fmt.Sprintf("%d/%d", num, off)
}

func (c *blockCache) get(num int, off uint64) ([]entry, bool) {
	k := c.key(num, off)
	ents, ok := c.items[k]
	if ok {
		c.hits++
	} else {
		c.miss++
	}
	return ents, ok
}

func (c *blockCache) put(num int, off uint64, ents []entry) {
	k := c.key(num, off)
	if _, ok := c.items[k]; !ok {
		c.order = append(c.order, k)
		for len(c.order) > c.cap {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.items, evict)
		}
	}
	c.items[k] = ents
}

// readBlock fetches and decodes one data block, through the cache.
func (t *table) readBlock(p *sim.Proc, c *blockCache, idx int) ([]entry, error) {
	ie := t.index[idx]
	if ents, ok := c.get(t.num, ie.off); ok {
		return ents, nil
	}
	raw := make([]byte, ie.length)
	if err := t.file.ReadAt(p, int64(ie.off), raw); err != nil {
		return nil, err
	}
	ents, err := parseBlock(raw)
	if err != nil {
		return nil, err
	}
	// Entries reference raw; copy for cache stability.
	stable := make([]entry, len(ents))
	for i, e := range ents {
		stable[i] = entry{
			key:       append([]byte(nil), e.key...),
			seq:       e.seq,
			tombstone: e.tombstone,
		}
		if !e.tombstone {
			stable[i].value = append([]byte(nil), e.value...)
		}
	}
	c.put(t.num, ie.off, stable)
	return stable, nil
}

// get searches the table for the newest version of key.
func (t *table) get(p *sim.Proc, c *blockCache, key []byte) (entry, bool, error) {
	if !t.filter.mayContain(key) {
		return entry{}, false, nil
	}
	bi := t.blockFor(key)
	if bi < 0 {
		return entry{}, false, nil
	}
	ents, err := t.readBlock(p, c, bi)
	if err != nil {
		return entry{}, false, err
	}
	// Entries sorted by (key asc, seq desc): first match is newest.
	for _, e := range ents {
		if bytes.Equal(e.key, key) {
			return e, true, nil
		}
	}
	return entry{}, false, nil
}
