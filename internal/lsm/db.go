package lsm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strings"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// Config assembles a DB.
type Config struct {
	// DataFS stores SST files. LogFS stores WAL files; the paper's
	// Fig 9 setup puts the log on the device under test and the data
	// elsewhere ("only WAL logs are written to a log device").
	DataFS *vfs.FS
	LogFS  *vfs.FS

	// WALMode selects the commit protocol; BA needs SSD + EIDs.
	WALMode wal.CommitMode
	SSD     *core.TwoBSSD
	// EIDs/BufferOffset carve WAL slots out of the BA-buffer. Per the
	// paper each RocksDB log file takes a quarter of the BA-buffer and
	// at most two live at once; four slots rotate safely.
	EIDs         []core.EID
	BufferOffset int

	// MemtableBytes triggers rotation; WALBytes sizes each log file
	// (and each BA-buffer slot). WALBytes must exceed MemtableBytes.
	MemtableBytes int
	WALBytes      int

	// Compaction shape.
	L0Trigger  int   // L0 table count triggering compaction
	LevelBase  int64 // max bytes of L1; each level down is x10
	MaxLevels  int
	BlockCache int // cached decoded blocks

	// Host CPU costs per operation (calibration knobs).
	ReadCPU  sim.Duration
	WriteCPU sim.Duration

	AsyncFlushInterval sim.Duration
}

func (c *Config) fillDefaults() error {
	if c.DataFS == nil {
		return errors.New("lsm: DataFS required")
	}
	if c.LogFS == nil {
		c.LogFS = c.DataFS
	}
	if c.MemtableBytes <= 0 {
		c.MemtableBytes = 256 << 10
	}
	if c.WALBytes <= 0 {
		c.WALBytes = 2 * c.MemtableBytes
	}
	if c.WALBytes <= c.MemtableBytes {
		return errors.New("lsm: WALBytes must exceed MemtableBytes")
	}
	if c.L0Trigger <= 0 {
		c.L0Trigger = 4
	}
	if c.LevelBase <= 0 {
		c.LevelBase = 4 << 20
	}
	if c.MaxLevels <= 0 {
		c.MaxLevels = 4
	}
	if c.BlockCache <= 0 {
		c.BlockCache = 256
	}
	if c.ReadCPU <= 0 {
		c.ReadCPU = 2 * sim.Microsecond
	}
	if c.WriteCPU <= 0 {
		c.WriteCPU = 2 * sim.Microsecond
	}
	if c.WALMode == wal.BA {
		if c.SSD == nil || len(c.EIDs) < 2 {
			return errors.New("lsm: BA mode needs SSD and >= 2 EIDs")
		}
	}
	return nil
}

// Stats aggregates engine counters.
type Stats struct {
	Puts, Gets, Deletes  uint64
	GetHits              uint64
	MemtableRotations    uint64
	Flushes              uint64
	Compactions          uint64
	CacheHits, CacheMiss uint64
	StallTime            sim.Duration
}

// DB is the LSM engine.
type DB struct {
	env *sim.Env
	cfg Config

	cache *blockCache
	seq   uint64

	mem      *memtable
	imm      *memtable
	walAct   *wal.Log
	walImm   *wal.Log
	actFile  *vfs.File
	immFile  *vfs.File
	rotation int
	fileSeq  int

	levels [][]*table

	wlock   *sim.Resource
	immDone *sim.Signal

	// Reader/compaction coordination: compaction replaces level slices
	// (never mutates visible elements), so readers work on a snapshot.
	// Obsolete SST files are reclaimed only when no reader is active.
	activeReaders int
	obsolete      []string

	// encBuf is the WAL-record encoding scratch. Writers hold wlock
	// across encode+Append, and wal.Append copies the payload out
	// before returning, so one buffer serves all writers.
	encBuf []byte

	stats Stats
}

// encScratch returns an n-byte slice of the encode scratch, growing it
// as needed. Callers must hold wlock.
func (db *DB) encScratch(n int) []byte {
	if cap(db.encBuf) < n {
		db.encBuf = make([]byte, n+n/2)
	}
	return db.encBuf[:n]
}

// Open creates or recovers a DB. Existing WAL files on LogFS are
// replayed (committed records only) into the new memtable.
func Open(env *sim.Env, p *sim.Proc, cfg Config) (*DB, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	db := &DB{
		env:     env,
		cfg:     cfg,
		cache:   newBlockCache(cfg.BlockCache),
		mem:     newMemtable(1),
		wlock:   env.NewResource("lsm.write", 1),
		immDone: env.NewSignal("lsm.immdone"),
		levels:  make([][]*table, cfg.MaxLevels),
	}
	if err := db.recoverLogs(p); err != nil {
		return nil, err
	}
	if err := db.newWAL(p); err != nil {
		return nil, err
	}
	return db, nil
}

// Stats returns a snapshot of counters (cache stats folded in).
func (db *DB) Stats() Stats {
	s := db.stats
	s.CacheHits = db.cache.hits
	s.CacheMiss = db.cache.miss
	return s
}

// walName formats a log file name.
func walName(n int) string { return fmt.Sprintf("wal-%06d", n) }

// sstName formats an SST file name.
func sstName(n int) string { return fmt.Sprintf("sst-%06d", n) }

// recoverLogs replays any WAL files left by a previous incarnation,
// flushes the result to an SST and removes the logs.
func (db *DB) recoverLogs(p *sim.Proc) error {
	var names []string
	for _, n := range db.cfg.LogFS.List() {
		if strings.HasPrefix(n, "wal-") {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil
	}
	rec := newMemtable(2)
	for _, name := range names {
		f, err := db.cfg.LogFS.Open(name)
		if err != nil {
			return err
		}
		cfg := wal.Config{Mode: db.cfg.WALMode, File: f}
		if db.cfg.WALMode == wal.BA {
			cfg.SSD = db.cfg.SSD
			cfg.EIDs = db.cfg.EIDs[:1]
			cfg.SegmentBytes = db.cfg.WALBytes
		}
		l, err := wal.Open(db.env, cfg)
		if err != nil {
			return err
		}
		err = l.Recover(p, func(_ wal.LSN, payload []byte) error {
			if len(payload) > 0 && payload[0] == recBatch {
				ops, err := decodeBatchRecord(payload)
				if err != nil {
					return err
				}
				for _, o := range ops {
					db.seq++
					if o.typ == recDelete {
						rec.add(o.key, db.seq, nil)
					} else {
						rec.add(o.key, db.seq, o.value)
					}
				}
				return nil
			}
			typ, key, value, err := decodeRecord(payload)
			if err != nil {
				return err
			}
			db.seq++
			if typ == recDelete {
				rec.add(key, db.seq, nil)
			} else {
				rec.add(key, db.seq, value)
			}
			return nil
		})
		if err != nil {
			return err
		}
	}
	if rec.len() > 0 {
		if err := db.writeSST(p, rec, 0); err != nil {
			return err
		}
	}
	for _, name := range names {
		if err := db.cfg.LogFS.Remove(name); err != nil {
			return err
		}
	}
	return nil
}

// newWAL opens a fresh log for the active memtable.
func (db *DB) newWAL(p *sim.Proc) error {
	name := walName(db.rotation)
	f, err := db.cfg.LogFS.Create(name, int64(db.cfg.WALBytes))
	if err != nil {
		return err
	}
	cfg := wal.Config{
		Mode:               db.cfg.WALMode,
		File:               f,
		AsyncFlushInterval: db.cfg.AsyncFlushInterval,
	}
	if db.cfg.WALMode == wal.BA {
		slot := db.rotation % len(db.cfg.EIDs)
		cfg.SSD = db.cfg.SSD
		cfg.EIDs = []core.EID{db.cfg.EIDs[slot]}
		cfg.SegmentBytes = db.cfg.WALBytes
		cfg.BufferOffset = db.cfg.BufferOffset + slot*db.cfg.WALBytes
	}
	l, err := wal.Open(db.env, cfg)
	if err != nil {
		return err
	}
	db.walAct, db.actFile = l, f
	db.rotation++
	return nil
}

// Record types in the WAL payload.
const (
	recPut    = byte(1)
	recDelete = byte(2)
	recBatch  = byte(3)
)

func encodeRecord(typ byte, key, value []byte) []byte {
	return encodeRecordInto(make([]byte, 1+4+len(key)+len(value)), typ, key, value)
}

func encodeRecordInto(out []byte, typ byte, key, value []byte) []byte {
	out[0] = typ
	binary.LittleEndian.PutUint32(out[1:], uint32(len(key)))
	copy(out[5:], key)
	copy(out[5+len(key):], value)
	return out
}

func decodeRecord(payload []byte) (typ byte, key, value []byte, err error) {
	if len(payload) < 5 {
		return 0, nil, nil, errors.New("lsm: short WAL record")
	}
	typ = payload[0]
	klen := int(binary.LittleEndian.Uint32(payload[1:]))
	if 5+klen > len(payload) {
		return 0, nil, nil, errors.New("lsm: bad WAL record")
	}
	return typ, payload[5 : 5+klen], payload[5+klen:], nil
}

// Put inserts or overwrites a key durably (per the WAL commit mode).
func (db *DB) Put(p *sim.Proc, key, value []byte) error {
	return db.write(p, recPut, key, value)
}

// Delete removes a key durably.
func (db *DB) Delete(p *sim.Proc, key []byte) error {
	return db.write(p, recDelete, key, nil)
}

func (db *DB) write(p *sim.Proc, typ byte, key, value []byte) error {
	p.Sleep(db.cfg.WriteCPU)
	db.wlock.Acquire(p)
	if db.mem.sizeBytes()+len(key)+len(value) >= db.cfg.MemtableBytes {
		if err := db.rotate(p); err != nil {
			db.wlock.Release()
			return err
		}
	}
	rec := encodeRecordInto(db.encScratch(1+4+len(key)+len(value)), typ, key, value)
	lsn, err := db.walAct.Append(p, rec)
	if err != nil {
		db.wlock.Release()
		return err
	}
	db.seq++
	if typ == recDelete {
		db.mem.add(key, db.seq, nil)
	} else {
		db.mem.add(key, db.seq, value)
	}
	if typ == recPut {
		db.stats.Puts++
	} else {
		db.stats.Deletes++
	}
	db.wlock.Release()
	// Commit outside the write lock so concurrent committers can share
	// a group flush (Sync mode) or overlap BA_SYNCs.
	return db.walAct.Commit(p, lsn)
}

// rotate moves the active memtable to immutable and starts a
// background flush. Called with wlock held. If a previous flush is
// still running the writer stalls (RocksDB's two-memtable rule).
func (db *DB) rotate(p *sim.Proc) error {
	start := db.env.Now()
	for db.imm != nil {
		db.immDone.Wait(p)
	}
	db.stats.StallTime += sim.Duration(db.env.Now() - start)
	db.imm = db.mem
	db.walImm, db.immFile = db.walAct, db.actFile
	db.mem = newMemtable(int64(db.rotation) + 100)
	if err := db.newWAL(p); err != nil {
		return err
	}
	db.stats.MemtableRotations++
	imm, immWAL, immFile := db.imm, db.walImm, db.immFile
	db.env.Go("lsm.flush", func(w *sim.Proc) {
		if err := db.flushImm(w, imm, immWAL, immFile); err != nil {
			// Power died under the background flush (fault injection):
			// the memtable's WAL survives on disk and recovery replays
			// it; anything else is a modeling bug.
			if !errors.Is(err, core.ErrPowerIsOff) {
				panic(fmt.Sprintf("lsm: flush: %v", err))
			}
		}
	})
	return nil
}

// flushImm writes the immutable memtable as an L0 SST, then retires
// its WAL.
func (db *DB) flushImm(p *sim.Proc, imm *memtable, l *wal.Log, f *vfs.File) error {
	if err := db.writeSST(p, imm, 0); err != nil {
		return err
	}
	// The SST is durable: the log is obsolete. Unpin (BA) and delete.
	if err := l.FlushToNAND(p); err != nil {
		return err
	}
	if err := db.cfg.LogFS.Remove(f.Name()); err != nil {
		return err
	}
	db.imm = nil
	db.walImm, db.immFile = nil, nil
	db.stats.Flushes++
	db.immDone.Fire()
	return db.maybeCompact(p)
}

// writeSST serializes a memtable (newest version per key) into a new
// SST at the given level.
func (db *DB) writeSST(p *sim.Proc, m *memtable, level int) error {
	w := newSSTWriter()
	var lastKey []byte
	for n := m.first(); n != nil; n = n.next[0] {
		if lastKey != nil && bytes.Equal(n.key, lastKey) {
			continue // older version of the same key
		}
		lastKey = n.key
		w.add(n.key, n.seq, n.value, n.value == nil)
	}
	if w.count == 0 {
		return nil
	}
	return db.installSST(p, w, level)
}

// installSST writes a finished SST image to DataFS and registers it.
func (db *DB) installSST(p *sim.Proc, w *sstWriter, level int) error {
	img := w.finish()
	db.fileSeq++
	name := sstName(db.fileSeq)
	f, err := db.cfg.DataFS.Create(name, int64(len(img)))
	if err != nil {
		return err
	}
	if err := f.WriteAt(p, 0, img); err != nil {
		return err
	}
	if err := f.Sync(p); err != nil {
		return err
	}
	t, err := openTable(p, f, db.fileSeq)
	if err != nil {
		return err
	}
	t.setBounds(w.first, w.last)
	db.levels[level] = append(db.levels[level], t)
	return nil
}

// snapshotLevels captures the current table sets. Compaction only
// replaces whole slices, so the snapshot stays internally consistent.
func (db *DB) snapshotLevels() [][]*table {
	snap := make([][]*table, len(db.levels))
	copy(snap, db.levels)
	return snap
}

// beginRead/endRead bracket table reads so obsolete files are only
// reclaimed when nobody can still be reading them.
func (db *DB) beginRead() { db.activeReaders++ }

func (db *DB) endRead(p *sim.Proc) {
	db.activeReaders--
	if db.activeReaders == 0 && len(db.obsolete) > 0 {
		names := db.obsolete
		db.obsolete = nil
		for _, n := range names {
			if db.cfg.DataFS.Exists(n) {
				if err := db.cfg.DataFS.Remove(n); err != nil {
					panic(fmt.Sprintf("lsm: reclaim %s: %v", n, err))
				}
			}
		}
	}
	_ = p
}

// Get returns the newest value, or found=false.
func (db *DB) Get(p *sim.Proc, key []byte) (value []byte, found bool, err error) {
	p.Sleep(db.cfg.ReadCPU)
	db.stats.Gets++
	if v, ok := db.mem.get(key, ^uint64(0)); ok {
		return db.hit(v)
	}
	if db.imm != nil {
		if v, ok := db.imm.get(key, ^uint64(0)); ok {
			return db.hit(v)
		}
	}
	db.beginRead()
	defer db.endRead(p)
	levels := db.snapshotLevels()
	// L0 newest-first (tables appended in age order).
	for i := len(levels[0]) - 1; i >= 0; i-- {
		t := levels[0][i]
		if !t.overlaps(key, key) {
			continue
		}
		e, ok, err := t.get(p, db.cache, key)
		if err != nil {
			return nil, false, err
		}
		if ok {
			if e.tombstone {
				return nil, false, nil
			}
			return db.hit(e.value)
		}
	}
	for lvl := 1; lvl < len(levels); lvl++ {
		for _, t := range levels[lvl] {
			if !t.overlaps(key, key) {
				continue
			}
			e, ok, err := t.get(p, db.cache, key)
			if err != nil {
				return nil, false, err
			}
			if ok {
				if e.tombstone {
					return nil, false, nil
				}
				return db.hit(e.value)
			}
		}
	}
	return nil, false, nil
}

func (db *DB) hit(v []byte) ([]byte, bool, error) {
	if v == nil {
		return nil, false, nil // tombstone in a memtable
	}
	db.stats.GetHits++
	return append([]byte(nil), v...), true, nil
}

// FlushAll forces the active memtable to an SST and drains the WAL —
// a clean shutdown barrier.
func (db *DB) FlushAll(p *sim.Proc) error {
	db.wlock.Acquire(p)
	defer db.wlock.Release()
	for db.imm != nil {
		db.immDone.Wait(p)
	}
	if db.mem.len() > 0 {
		if err := db.rotate(p); err != nil {
			return err
		}
		for db.imm != nil {
			db.immDone.Wait(p)
		}
	}
	return nil
}
