package lsm

import (
	"bytes"

	"twobssd/internal/sim"
)

// Iterator streams live key/value pairs in ascending key order, merged
// across the memtables and every SST level. Block reads happen lazily
// (charged to the process) as the iterator advances; memory use is one
// decoded block per source.
type Iterator struct {
	db      *DB
	p       *sim.Proc
	sources []cursor
	key     []byte
	value   []byte
	valid   bool
	err     error
	closed  bool
}

// cursor is one ordered source of (key, seq, value) versions.
type cursor interface {
	// peek returns the current entry; ok=false when exhausted.
	peek() (entry, bool)
	// advance moves past the current entry.
	advance(p *sim.Proc) error
}

// memCursor walks a memtable from a start key.
type memCursor struct {
	node *memNode
}

func (c *memCursor) peek() (entry, bool) {
	if c.node == nil {
		return entry{}, false
	}
	return entry{key: c.node.key, seq: c.node.seq, value: c.node.value,
		tombstone: c.node.value == nil}, true
}

func (c *memCursor) advance(*sim.Proc) error {
	if c.node != nil {
		c.node = c.node.next[0]
	}
	return nil
}

// tableCursor walks an SST's blocks in order, decoding lazily.
type tableCursor struct {
	t     *table
	cache *blockCache
	block []entry
	bi    int // next block index to load
	ei    int // position within block
}

func newTableCursor(p *sim.Proc, t *table, cache *blockCache, start []byte) (*tableCursor, error) {
	c := &tableCursor{t: t, cache: cache}
	bi := t.blockFor(start)
	if bi < 0 {
		bi = 0
	}
	c.bi = bi
	if err := c.load(p); err != nil {
		return nil, err
	}
	// Skip entries below start.
	for {
		e, ok := c.peek()
		if !ok || bytes.Compare(e.key, start) >= 0 {
			break
		}
		if err := c.advance(p); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// load decodes block bi (if any) and resets the entry position.
func (c *tableCursor) load(p *sim.Proc) error {
	for c.bi < len(c.t.index) {
		ents, err := c.t.readBlock(p, c.cache, c.bi)
		if err != nil {
			return err
		}
		c.bi++
		if len(ents) > 0 {
			c.block = ents
			c.ei = 0
			return nil
		}
	}
	c.block = nil
	return nil
}

func (c *tableCursor) peek() (entry, bool) {
	if c.block == nil || c.ei >= len(c.block) {
		return entry{}, false
	}
	return c.block[c.ei], true
}

func (c *tableCursor) advance(p *sim.Proc) error {
	c.ei++
	if c.ei >= len(c.block) {
		return c.load(p)
	}
	return nil
}

// NewIterator opens an iterator positioned at the first live key >=
// start. Close it to release the read epoch (obsolete SSTs are
// reclaimed only when no iterator or reader is active).
func (db *DB) NewIterator(p *sim.Proc, start []byte) (*Iterator, error) {
	p.Sleep(db.cfg.ReadCPU)
	db.beginRead()
	it := &Iterator{db: db, p: p}
	it.sources = append(it.sources, &memCursor{node: db.mem.seek(start, ^uint64(0))})
	if db.imm != nil {
		it.sources = append(it.sources, &memCursor{node: db.imm.seek(start, ^uint64(0))})
	}
	for _, level := range db.snapshotLevels() {
		for _, t := range level {
			if t.last != nil && bytes.Compare(t.last, start) < 0 {
				continue
			}
			tc, err := newTableCursor(p, t, db.cache, start)
			if err != nil {
				it.Close()
				return nil, err
			}
			it.sources = append(it.sources, tc)
		}
	}
	it.step()
	return it, nil
}

// step advances to the next live (non-tombstone) key.
func (it *Iterator) step() {
	for {
		// Find the smallest key among sources; among equal keys the
		// highest seq wins.
		var best entry
		bestIdx := -1
		for i, src := range it.sources {
			e, ok := src.peek()
			if !ok {
				continue
			}
			if bestIdx < 0 {
				best, bestIdx = e, i
				continue
			}
			c := bytes.Compare(e.key, best.key)
			if c < 0 || (c == 0 && e.seq > best.seq) {
				best, bestIdx = e, i
			}
		}
		if bestIdx < 0 {
			it.valid = false
			return
		}
		// Consume every version of this key from all sources.
		for _, src := range it.sources {
			for {
				e, ok := src.peek()
				if !ok || !bytes.Equal(e.key, best.key) {
					break
				}
				if err := src.advance(it.p); err != nil {
					it.err = err
					it.valid = false
					return
				}
			}
		}
		if best.tombstone {
			continue // deleted: move on
		}
		it.key = append(it.key[:0], best.key...)
		it.value = append(it.value[:0], best.value...)
		it.valid = true
		return
	}
}

// Valid reports whether the iterator is positioned on a live entry.
func (it *Iterator) Valid() bool { return it.valid && it.err == nil }

// Key returns the current key (valid until Next).
func (it *Iterator) Key() []byte { return it.key }

// Value returns the current value (valid until Next).
func (it *Iterator) Value() []byte { return it.value }

// Err returns the first error the iterator hit.
func (it *Iterator) Err() error { return it.err }

// Next advances to the following live key.
func (it *Iterator) Next() {
	if !it.valid {
		return
	}
	it.step()
}

// Close releases the iterator's read epoch. Safe to call twice.
func (it *Iterator) Close() {
	if it.closed {
		return
	}
	it.closed = true
	it.valid = false
	it.db.endRead(it.p)
}
