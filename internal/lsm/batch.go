package lsm

import (
	"encoding/binary"
	"errors"

	"twobssd/internal/sim"
)

// WriteBatch collects puts and deletes that commit atomically: one WAL
// record covers the whole batch (RocksDB's WriteBatch), so either all
// operations survive a crash or none do.
type WriteBatch struct {
	ops  []batchOp
	size int
}

type batchOp struct {
	typ   byte
	key   []byte
	value []byte
}

// NewWriteBatch returns an empty batch.
func NewWriteBatch() *WriteBatch { return &WriteBatch{} }

// Put stages an insert/overwrite.
func (b *WriteBatch) Put(key, value []byte) {
	b.ops = append(b.ops, batchOp{
		typ:   recPut,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
	b.size += len(key) + len(value)
}

// Delete stages a deletion.
func (b *WriteBatch) Delete(key []byte) {
	b.ops = append(b.ops, batchOp{typ: recDelete, key: append([]byte(nil), key...)})
	b.size += len(key)
}

// Len reports the number of staged operations.
func (b *WriteBatch) Len() int { return len(b.ops) }

// encodeBatchRecord serializes a batch as one WAL payload:
// [1]recBatch [4]count then per op: [1]typ [4]klen [4]vlen key value.
func encodeBatchRecord(ops []batchOp) []byte {
	size := 5
	for _, o := range ops {
		size += 9 + len(o.key) + len(o.value)
	}
	return encodeBatchRecordInto(make([]byte, size), ops)
}

func encodeBatchRecordInto(out []byte, ops []batchOp) []byte {
	out[0] = recBatch
	binary.LittleEndian.PutUint32(out[1:], uint32(len(ops)))
	pos := 5
	for _, o := range ops {
		out[pos] = o.typ
		binary.LittleEndian.PutUint32(out[pos+1:], uint32(len(o.key)))
		binary.LittleEndian.PutUint32(out[pos+5:], uint32(len(o.value)))
		pos += 9
		copy(out[pos:], o.key)
		pos += len(o.key)
		copy(out[pos:], o.value)
		pos += len(o.value)
	}
	return out
}

var errBadBatch = errors.New("lsm: malformed batch record")

func decodeBatchRecord(payload []byte) ([]batchOp, error) {
	if len(payload) < 5 || payload[0] != recBatch {
		return nil, errBadBatch
	}
	n := int(binary.LittleEndian.Uint32(payload[1:]))
	pos := 5
	ops := make([]batchOp, 0, n)
	for i := 0; i < n; i++ {
		if pos+9 > len(payload) {
			return nil, errBadBatch
		}
		typ := payload[pos]
		klen := int(binary.LittleEndian.Uint32(payload[pos+1:]))
		vlen := int(binary.LittleEndian.Uint32(payload[pos+5:]))
		pos += 9
		if pos+klen+vlen > len(payload) {
			return nil, errBadBatch
		}
		op := batchOp{typ: typ, key: append([]byte(nil), payload[pos:pos+klen]...)}
		pos += klen
		if vlen > 0 {
			op.value = append([]byte(nil), payload[pos:pos+vlen]...)
		}
		pos += vlen
		ops = append(ops, op)
	}
	return ops, nil
}

// Write applies the batch atomically: one WAL append+commit, then the
// memtable inserts.
func (db *DB) Write(p *sim.Proc, b *WriteBatch) error {
	if b.Len() == 0 {
		return nil
	}
	p.Sleep(db.cfg.WriteCPU)
	db.wlock.Acquire(p)
	if db.mem.sizeBytes()+b.size >= db.cfg.MemtableBytes {
		if err := db.rotate(p); err != nil {
			db.wlock.Release()
			return err
		}
	}
	size := 5
	for _, o := range b.ops {
		size += 9 + len(o.key) + len(o.value)
	}
	lsn, err := db.walAct.Append(p, encodeBatchRecordInto(db.encScratch(size), b.ops))
	if err != nil {
		db.wlock.Release()
		return err
	}
	for _, o := range b.ops {
		db.seq++
		if o.typ == recDelete {
			db.mem.add(o.key, db.seq, nil)
			db.stats.Deletes++
		} else {
			db.mem.add(o.key, db.seq, o.value)
			db.stats.Puts++
		}
	}
	db.wlock.Release()
	return db.walAct.Commit(p, lsn)
}
