package lsm

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// ---- memtable unit tests ----

func TestMemtableBasic(t *testing.T) {
	m := newMemtable(1)
	m.add([]byte("b"), 1, []byte("v1"))
	m.add([]byte("a"), 2, []byte("v2"))
	m.add([]byte("b"), 3, []byte("v3"))
	if v, ok := m.get([]byte("b"), ^uint64(0)); !ok || string(v) != "v3" {
		t.Fatalf("get b = %q, %v", v, ok)
	}
	if v, ok := m.get([]byte("a"), ^uint64(0)); !ok || string(v) != "v2" {
		t.Fatalf("get a = %q, %v", v, ok)
	}
	if _, ok := m.get([]byte("zz"), ^uint64(0)); ok {
		t.Fatal("phantom key")
	}
	if m.len() != 3 {
		t.Fatalf("len = %d", m.len())
	}
}

func TestMemtableTombstone(t *testing.T) {
	m := newMemtable(1)
	m.add([]byte("k"), 1, []byte("v"))
	m.add([]byte("k"), 2, nil)
	v, ok := m.get([]byte("k"), ^uint64(0))
	if !ok || v != nil {
		t.Fatalf("tombstone: %q %v", v, ok)
	}
}

func TestMemtableOrderedIteration(t *testing.T) {
	m := newMemtable(42)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		k := fmt.Sprintf("key-%04d", rng.Intn(100))
		m.add([]byte(k), uint64(i+1), []byte("v"))
	}
	var prevKey []byte
	var prevSeq uint64
	for n := m.first(); n != nil; n = n.next[0] {
		if prevKey != nil {
			c := bytes.Compare(prevKey, n.key)
			if c > 0 {
				t.Fatal("keys out of order")
			}
			if c == 0 && prevSeq < n.seq {
				t.Fatal("versions out of order (newest first expected)")
			}
		}
		prevKey, prevSeq = n.key, n.seq
	}
}

// Property: memtable behaves like a map with last-writer-wins.
func TestPropertyMemtableLastWriteWins(t *testing.T) {
	prop := func(ops []uint16) bool {
		m := newMemtable(7)
		shadow := make(map[string]string)
		for i, raw := range ops {
			k := fmt.Sprintf("k%d", raw%32)
			v := fmt.Sprintf("v%d", i)
			m.add([]byte(k), uint64(i+1), []byte(v))
			shadow[k] = v
		}
		for k, want := range shadow {
			got, ok := m.get([]byte(k), ^uint64(0))
			if !ok || string(got) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// ---- bloom + SST unit tests ----

func TestBloomNoFalseNegatives(t *testing.T) {
	b := newBloom(1000)
	for i := 0; i < 1000; i++ {
		b.add([]byte(fmt.Sprintf("key-%d", i)))
	}
	for i := 0; i < 1000; i++ {
		if !b.mayContain([]byte(fmt.Sprintf("key-%d", i))) {
			t.Fatalf("false negative at %d", i)
		}
	}
	// False-positive rate should be small.
	fp := 0
	for i := 0; i < 1000; i++ {
		if b.mayContain([]byte(fmt.Sprintf("other-%d", i))) {
			fp++
		}
	}
	if fp > 50 {
		t.Fatalf("false positive rate %d/1000 too high", fp)
	}
}

func testFS(e *sim.Env) *vfs.FS {
	p := device.ULLSSD()
	p.Nand.Channels = 2
	p.Nand.DiesPerChannel = 2
	p.Nand.BlocksPerDie = 64
	p.Nand.PagesPerBlock = 32
	p.FTL.OverProvision = 0.2
	p.WriteBufferPages = 64
	p.DrainWorkers = 8
	return vfs.New(device.New(e, p))
}

func TestSSTWriteOpenGet(t *testing.T) {
	e := sim.NewEnv()
	fs := testFS(e)
	e.Go("t", func(p *sim.Proc) {
		w := newSSTWriter()
		for i := 0; i < 500; i++ {
			w.add([]byte(fmt.Sprintf("key-%04d", i)), uint64(i+1), []byte(fmt.Sprintf("value-%d", i)), false)
		}
		img := w.finish()
		f, err := fs.Create("sst", int64(len(img)))
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		if err := f.WriteAt(p, 0, img); err != nil {
			t.Fatalf("write: %v", err)
		}
		tab, err := openTable(p, f, 1)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		tab.setBounds(w.first, w.last)
		if tab.count != 500 {
			t.Fatalf("count = %d", tab.count)
		}
		cache := newBlockCache(16)
		for _, i := range []int{0, 123, 499} {
			key := []byte(fmt.Sprintf("key-%04d", i))
			ent, ok, err := tab.get(p, cache, key)
			if err != nil || !ok {
				t.Fatalf("get %s: %v %v", key, ok, err)
			}
			if string(ent.value) != fmt.Sprintf("value-%d", i) {
				t.Fatalf("value = %q", ent.value)
			}
		}
		if _, ok, _ := tab.get(p, cache, []byte("nope")); ok {
			t.Fatal("phantom key in SST")
		}
	})
	e.Run()
}

func TestBlockCacheLRU(t *testing.T) {
	c := newBlockCache(2)
	c.put(1, 0, []entry{{key: []byte("a")}})
	c.put(1, 1, []entry{{key: []byte("b")}})
	c.put(1, 2, []entry{{key: []byte("c")}}) // evicts (1,0)
	if _, ok := c.get(1, 0); ok {
		t.Fatal("LRU did not evict")
	}
	if _, ok := c.get(1, 2); !ok {
		t.Fatal("fresh entry evicted")
	}
}

// ---- engine tests ----

type dbRig struct {
	env *sim.Env
	ssd *core.TwoBSSD
	fs  *vfs.FS // shared for data + logs in these tests
}

func newDBRig() *dbRig {
	e := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 128
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.1
	cfg.Base.WriteBufferPages = 128
	cfg.Base.DrainWorkers = 8
	cfg.BABufferBytes = 128 * 4096 // 512 KB BA-buffer
	ssd := core.New(e, cfg)
	return &dbRig{env: e, ssd: ssd, fs: vfs.New(ssd.Device())}
}

func (r *dbRig) config(mode wal.CommitMode) Config {
	cfg := Config{
		DataFS:        r.fs,
		LogFS:         r.fs,
		WALMode:       mode,
		MemtableBytes: 32 << 10,
		WALBytes:      128 << 10, // quarter of the BA-buffer
		LevelBase:     256 << 10,
	}
	if mode == wal.BA {
		cfg.SSD = r.ssd
		cfg.EIDs = []core.EID{0, 1, 2, 3}
	}
	return cfg
}

func runPutGet(t *testing.T, mode wal.CommitMode, n int) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(mode))
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("user%06d", i))
			v := []byte(fmt.Sprintf("payload-%d-%s", i, bytes.Repeat([]byte{'x'}, 100)))
			if err := db.Put(p, k, v); err != nil {
				t.Fatalf("put %d: %v", i, err)
			}
		}
		for i := 0; i < n; i++ {
			k := []byte(fmt.Sprintf("user%06d", i))
			v, ok, err := db.Get(p, k)
			if err != nil {
				t.Fatalf("get %d: %v", i, err)
			}
			if !ok {
				t.Fatalf("key %d missing", i)
			}
			if !bytes.HasPrefix(v, []byte(fmt.Sprintf("payload-%d-", i))) {
				t.Fatalf("key %d wrong value", i)
			}
		}
		st := db.Stats()
		if st.MemtableRotations == 0 {
			t.Error("expected rotations (memtable too large for test?)")
		}
	})
	r.env.Run()
}

func TestPutGetAcrossFlushesSync(t *testing.T) { runPutGet(t, wal.Sync, 800) }
func TestPutGetAcrossFlushesBA(t *testing.T)   { runPutGet(t, wal.BA, 800) }

func TestDeleteAndTombstones(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		db.Put(p, []byte("a"), []byte("1"))
		db.Put(p, []byte("b"), []byte("2"))
		db.Delete(p, []byte("a"))
		if _, ok, _ := db.Get(p, []byte("a")); ok {
			t.Fatal("deleted key visible")
		}
		// Force the tombstone into an SST and check again.
		if err := db.FlushAll(p); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if _, ok, _ := db.Get(p, []byte("a")); ok {
			t.Fatal("deleted key visible after flush")
		}
		if v, ok, _ := db.Get(p, []byte("b")); !ok || string(v) != "2" {
			t.Fatal("surviving key lost")
		}
	})
	r.env.Run()
}

func TestCompactionKeepsDataCorrect(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.MemtableBytes = 16 << 10
		cfg.L0Trigger = 2
		cfg.LevelBase = 64 << 10
		db, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		shadow := make(map[string]string)
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < 2000; i++ {
			k := fmt.Sprintf("user%04d", rng.Intn(400))
			v := fmt.Sprintf("val-%d", i)
			if err := db.Put(p, []byte(k), []byte(v)); err != nil {
				t.Fatalf("put: %v", err)
			}
			shadow[k] = v
		}
		if db.Stats().Compactions == 0 {
			t.Error("expected compactions")
		}
		for k, want := range shadow {
			got, ok, err := db.Get(p, []byte(k))
			if err != nil || !ok {
				t.Fatalf("get %s: ok=%v err=%v", k, ok, err)
			}
			if string(got) != want {
				t.Fatalf("%s = %q, want %q", k, got, want)
			}
		}
	})
	r.env.Run()
}

func TestScanMergesAllSources(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.MemtableBytes = 8 << 10
		db, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			db.Put(p, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
		db.Delete(p, []byte("k0100"))
		keys, values, err := db.Scan(p, []byte("k0098"), 5)
		if err != nil {
			t.Fatalf("scan: %v", err)
		}
		want := []string{"k0098", "k0099", "k0101", "k0102", "k0103"} // k0100 deleted
		if len(keys) != len(want) {
			t.Fatalf("scan returned %d keys", len(keys))
		}
		for i, w := range want {
			if string(keys[i]) != w {
				t.Fatalf("keys[%d] = %s, want %s", i, keys[i], w)
			}
		}
		_ = values
	})
	r.env.Run()
}

func TestWALRecoveryAfterUncleanStop(t *testing.T) {
	// Write without flushing memtables, then reopen: committed puts
	// must come back via WAL replay.
	r := newDBRig()
	var fileNames []string
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			if err := db.Put(p, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		fileNames = r.fs.List()
	})
	r.env.Run()
	if len(fileNames) == 0 {
		t.Fatal("no files created")
	}
	// Reopen without FlushAll — simulating a crash after commits.
	r.env.Go("t2", func(p *sim.Proc) {
		db2, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 50; i++ {
			v, ok, err := db2.Get(p, []byte(fmt.Sprintf("k%02d", i)))
			if err != nil || !ok {
				t.Fatalf("k%02d lost after recovery (ok=%v err=%v)", i, ok, err)
			}
			if string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("k%02d = %q", i, v)
			}
		}
	})
	r.env.Run()
}

func TestBAWALRecoveryAfterPowerLoss(t *testing.T) {
	// Full-stack crash test: BA-committed puts + device power cycle +
	// reopen. This is the paper's end-to-end durability story.
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 40; i++ {
			if err := db.Put(p, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("put: %v", err)
			}
		}
		if _, err := r.ssd.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := r.ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		db2, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 40; i++ {
			v, ok, err := db2.Get(p, []byte(fmt.Sprintf("k%02d", i)))
			if err != nil || !ok {
				t.Fatalf("k%02d lost after power cycle (ok=%v err=%v)", i, ok, err)
			}
			if string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("k%02d = %q", i, v)
			}
		}
	})
	r.env.Run()
}

func TestConcurrentWriters(t *testing.T) {
	r := newDBRig()
	var db *DB
	r.env.Go("open", func(p *sim.Proc) {
		var err error
		db, err = Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		const writers = 8
		for w := 0; w < writers; w++ {
			w := w
			r.env.Go("writer", func(p *sim.Proc) {
				for i := 0; i < 50; i++ {
					k := []byte(fmt.Sprintf("w%d-k%03d", w, i))
					if err := db.Put(p, k, []byte("v")); err != nil {
						t.Errorf("w%d put: %v", w, err)
						return
					}
				}
			})
		}
	})
	r.env.Run()
	r.env.Go("verify", func(p *sim.Proc) {
		for w := 0; w < 8; w++ {
			for i := 0; i < 50; i++ {
				k := []byte(fmt.Sprintf("w%d-k%03d", w, i))
				if _, ok, err := db.Get(p, k); !ok || err != nil {
					t.Errorf("%s missing (ok=%v err=%v)", k, ok, err)
					return
				}
			}
		}
	})
	r.env.Run()
}

// Property: DB == map under random put/delete/get, across flushes.
func TestPropertyDBMatchesMap(t *testing.T) {
	prop := func(seed int64) bool {
		r := newDBRig()
		ok := true
		r.env.Go("t", func(p *sim.Proc) {
			cfg := r.config(wal.Sync)
			cfg.MemtableBytes = 8 << 10
			db, err := Open(r.env, p, cfg)
			if err != nil {
				ok = false
				return
			}
			rng := rand.New(rand.NewSource(seed))
			shadow := make(map[string]string)
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("k%03d", rng.Intn(64))
				switch rng.Intn(3) {
				case 0, 1:
					v := fmt.Sprintf("v%d", i)
					if err := db.Put(p, []byte(k), []byte(v)); err != nil {
						ok = false
						return
					}
					shadow[k] = v
				case 2:
					if err := db.Delete(p, []byte(k)); err != nil {
						ok = false
						return
					}
					delete(shadow, k)
				}
			}
			for k, want := range shadow {
				got, found, err := db.Get(p, []byte(k))
				if err != nil || !found || string(got) != want {
					ok = false
					return
				}
			}
			// And deleted keys stay deleted.
			for i := 0; i < 64; i++ {
				k := fmt.Sprintf("k%03d", i)
				if _, inShadow := shadow[k]; !inShadow {
					if _, found, _ := db.Get(p, []byte(k)); found {
						ok = false
						return
					}
				}
			}
		})
		r.env.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestWriteBatchAtomicity(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		// Empty batch is a no-op.
		if err := db.Write(p, NewWriteBatch()); err != nil {
			t.Fatalf("empty batch: %v", err)
		}
		b := NewWriteBatch()
		b.Put([]byte("acct-a"), []byte("90"))
		b.Put([]byte("acct-b"), []byte("110"))
		b.Delete([]byte("acct-c"))
		if b.Len() != 3 {
			t.Fatalf("len = %d", b.Len())
		}
		if err := db.Write(p, b); err != nil {
			t.Fatalf("write: %v", err)
		}
		for k, want := range map[string]string{"acct-a": "90", "acct-b": "110"} {
			v, ok, _ := db.Get(p, []byte(k))
			if !ok || string(v) != want {
				t.Fatalf("%s = %q %v", k, v, ok)
			}
		}
		if _, ok, _ := db.Get(p, []byte("acct-c")); ok {
			t.Fatal("batched delete not applied")
		}
	})
	r.env.Run()
}

func TestWriteBatchSurvivesRecovery(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			b := NewWriteBatch()
			b.Put([]byte(fmt.Sprintf("b%d-k1", i)), []byte("v1"))
			b.Put([]byte(fmt.Sprintf("b%d-k2", i)), []byte("v2"))
			if err := db.Write(p, b); err != nil {
				t.Fatalf("batch %d: %v", i, err)
			}
		}
		// Crash (no FlushAll) and reopen: batches replay from the WAL.
		db2, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 10; i++ {
			for _, suffix := range []string{"k1", "k2"} {
				k := []byte(fmt.Sprintf("b%d-%s", i, suffix))
				if _, ok, err := db2.Get(p, k); !ok || err != nil {
					t.Fatalf("%s lost (ok=%v err=%v)", k, ok, err)
				}
			}
		}
	})
	r.env.Run()
}

func TestBatchCodecRejectsGarbage(t *testing.T) {
	if _, err := decodeBatchRecord(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := decodeBatchRecord([]byte{recBatch, 5, 0, 0, 0}); err == nil {
		t.Fatal("truncated accepted")
	}
	if _, err := decodeBatchRecord([]byte{recPut, 0, 0, 0, 0}); err == nil {
		t.Fatal("wrong type accepted")
	}
}

func TestIteratorOrderedAndLive(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.MemtableBytes = 8 << 10 // spread data over memtable + SSTs
		db, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			db.Put(p, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
		db.Delete(p, []byte("k0050"))
		db.Put(p, []byte("k0051"), []byte("updated"))

		it, err := db.NewIterator(p, []byte("k0048"))
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		var keys []string
		for it.Valid() && len(keys) < 6 {
			keys = append(keys, string(it.Key()))
			if string(it.Key()) == "k0051" && string(it.Value()) != "updated" {
				t.Errorf("k0051 = %q, want newest version", it.Value())
			}
			it.Next()
		}
		if it.Err() != nil {
			t.Fatal(it.Err())
		}
		want := []string{"k0048", "k0049", "k0051", "k0052", "k0053", "k0054"}
		if len(keys) != len(want) {
			t.Fatalf("keys = %v", keys)
		}
		for i := range want {
			if keys[i] != want[i] {
				t.Fatalf("keys = %v, want %v (tombstone k0050 skipped)", keys, want)
			}
		}
	})
	r.env.Run()
}

func TestIteratorFullSweepMatchesScan(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.MemtableBytes = 8 << 10
		cfg.L0Trigger = 2
		db, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 500; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(120))
			if rng.Intn(5) == 0 {
				db.Delete(p, []byte(k))
			} else {
				db.Put(p, []byte(k), []byte(fmt.Sprintf("v%d", i)))
			}
		}
		scanKeys, scanVals, err := db.Scan(p, nil, 0)
		if err != nil {
			t.Fatal(err)
		}
		it, err := db.NewIterator(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		defer it.Close()
		i := 0
		for ; it.Valid(); it.Next() {
			if i >= len(scanKeys) {
				t.Fatalf("iterator yielded more than Scan's %d keys", len(scanKeys))
			}
			if !bytes.Equal(it.Key(), scanKeys[i]) || !bytes.Equal(it.Value(), scanVals[i]) {
				t.Fatalf("pos %d: iter (%s)=%q vs scan (%s)=%q",
					i, it.Key(), it.Value(), scanKeys[i], scanVals[i])
			}
			i++
		}
		if i != len(scanKeys) {
			t.Fatalf("iterator yielded %d keys, Scan %d", i, len(scanKeys))
		}
	})
	r.env.Run()
}

func TestIteratorEmptyDB(t *testing.T) {
	r := newDBRig()
	r.env.Go("t", func(p *sim.Proc) {
		db, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		it, err := db.NewIterator(p, nil)
		if err != nil {
			t.Fatal(err)
		}
		if it.Valid() {
			t.Fatal("empty DB iterator valid")
		}
		it.Close()
		it.Close() // double close is safe
	})
	r.env.Run()
}

func TestCorruptSSTDetected(t *testing.T) {
	e := sim.NewEnv()
	fs := testFS(e)
	e.Go("t", func(p *sim.Proc) {
		w := newSSTWriter()
		for i := 0; i < 100; i++ {
			w.add([]byte(fmt.Sprintf("k%03d", i)), uint64(i+1), []byte("v"), false)
		}
		img := w.finish()
		// Corrupt a byte inside the index region (its offset is the
		// first footer field; the CRC covers exactly that region).
		indexOff := binary.LittleEndian.Uint64(img[len(img)-footerBytes:])
		img[indexOff+2] ^= 0xFF
		f, _ := fs.Create("bad", int64(len(img)))
		f.WriteAt(p, 0, img)
		if _, err := openTable(p, f, 1); err == nil {
			t.Error("corrupted index accepted")
		}
		// Corrupt the magic: also rejected.
		img2 := newSSTWriter()
		img2.add([]byte("k"), 1, []byte("v"), false)
		raw := img2.finish()
		raw[len(raw)-1] ^= 0xFF
		f2, _ := fs.Create("bad2", int64(len(raw)))
		f2.WriteAt(p, 0, raw)
		if _, err := openTable(p, f2, 2); err == nil {
			t.Error("bad magic accepted")
		}
		// Too-short file.
		f3, _ := fs.Create("tiny", 16)
		if _, err := openTable(p, f3, 3); err == nil {
			t.Error("short file accepted")
		}
	})
	e.Run()
}

// Differential test: the same operation trace under every commit mode
// must converge to the identical logical state — commit modes may only
// change durability timing, never semantics.
func TestDifferentialCommitModes(t *testing.T) {
	type kvState map[string]string
	run := func(mode wal.CommitMode) kvState {
		r := newDBRig()
		state := make(kvState)
		r.env.Go("t", func(p *sim.Proc) {
			cfg := r.config(mode)
			cfg.MemtableBytes = 8 << 10
			db, err := Open(r.env, p, cfg)
			if err != nil {
				t.Error(err)
				return
			}
			rng := rand.New(rand.NewSource(99))
			for i := 0; i < 400; i++ {
				k := fmt.Sprintf("k%03d", rng.Intn(80))
				switch rng.Intn(4) {
				case 0:
					db.Delete(p, []byte(k))
				default:
					db.Put(p, []byte(k), []byte(fmt.Sprintf("v%d", i)))
				}
			}
			keys, vals, err := db.Scan(p, nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range keys {
				state[string(keys[i])] = string(vals[i])
			}
		})
		r.env.Run()
		return state
	}
	ref := run(wal.Sync)
	if len(ref) == 0 {
		t.Fatal("empty reference state")
	}
	for _, mode := range []wal.CommitMode{wal.Async, wal.BA} {
		got := run(mode)
		if len(got) != len(ref) {
			t.Fatalf("%v state size %d != %d", mode, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("%v: %s = %q, want %q", mode, k, got[k], v)
			}
		}
	}
}
