package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/sim"
)

// testConfig returns a scaled-down 2B-SSD for fast tests: a small base
// device and a 256 KB BA-buffer (64 pages), 8 entries.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 32
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.2
	cfg.Base.WriteBufferPages = 64
	cfg.Base.DrainWorkers = 4
	cfg.BABufferBytes = 64 * 4096
	return cfg
}

func newSSD(e *sim.Env) *TwoBSSD { return New(e, testConfig()) }

func TestDefaultSpecTable1(t *testing.T) {
	s := DefaultSpec()
	rows := s.Rows()
	if len(rows) != 8 {
		t.Fatalf("Table I has %d rows, want 8", len(rows))
	}
	if s.BABufferBytes != 8<<20 || s.MaxEntries != 8 || s.CapacityGB != 800 {
		t.Fatalf("spec = %+v", s)
	}
}

func TestCapacitorEnergyBudget(t *testing.T) {
	cfg := DefaultConfig()
	// 3 x 270 µF at 12 V = 3 x 19.44 mJ = 58.3 mJ.
	got := cfg.CapacitorEnergyJ()
	if got < 0.055 || got > 0.062 {
		t.Fatalf("energy = %.4f J, want ~0.0583", got)
	}
}

func TestPinLoadsNandIntoBuffer(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		// Write a recognizable page via block I/O, flush to NAND.
		want := bytes.Repeat([]byte{0x42}, ps)
		if err := s.Device().WritePages(p, 10, want); err != nil {
			t.Fatalf("block write: %v", err)
		}
		if err := s.BAPin(p, 0, 0, 10, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		got := make([]byte, ps)
		if err := s.Mmio().Read(p, 0, got); err != nil {
			t.Fatalf("mmio read: %v", err)
		}
		if !bytes.Equal(got, want) {
			t.Error("pin did not load NAND data into BA-buffer")
		}
	})
	e.Run()
}

func TestFlushStoresBufferToNand(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 2, 2*ps, 20, 2); err != nil {
			t.Fatalf("pin: %v", err)
		}
		payload := []byte("log record via MMIO")
		if err := s.Mmio().Write(p, 2*ps, payload); err != nil {
			t.Fatalf("mmio write: %v", err)
		}
		if err := s.BASync(p, 2); err != nil {
			t.Fatalf("sync: %v", err)
		}
		if err := s.BAFlush(p, 2); err != nil {
			t.Fatalf("flush: %v", err)
		}
		// Entry gone, range unpinned: block read must return the data.
		got, err := s.Device().ReadPages(p, 20, 1)
		if err != nil {
			t.Fatalf("block read: %v", err)
		}
		if !bytes.HasPrefix(got, payload) {
			t.Errorf("NAND content = %q", got[:32])
		}
	})
	e.Run()
	if len(s.Entries()) != 0 {
		t.Fatal("entry not removed after flush")
	}
}

func TestPinValidation(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		cases := []struct {
			name string
			err  error
			call func() error
		}{
			{"bad eid", ErrBadEID, func() error { return s.BAPin(p, 99, 0, 0, 1) }},
			{"negative eid", ErrBadEID, func() error { return s.BAPin(p, -1, 0, 0, 1) }},
			{"unaligned offset", ErrUnaligned, func() error { return s.BAPin(p, 0, 7, 0, 1) }},
			{"zero pages", ErrUnaligned, func() error { return s.BAPin(p, 0, 0, 0, 0) }},
			{"buffer overflow", ErrOutOfBuffer, func() error { return s.BAPin(p, 0, 0, 0, 1000) }},
			{"lba overflow", ErrOutOfLBA, func() error {
				return s.BAPin(p, 0, 0, ftl.LBA(s.Device().Pages()), 1)
			}},
		}
		for _, c := range cases {
			if err := c.call(); !errors.Is(err, c.err) {
				t.Errorf("%s: err = %v, want %v", c.name, err, c.err)
			}
		}
		// In-use EID.
		if err := s.BAPin(p, 0, 0, 0, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		if err := s.BAPin(p, 0, ps, 50, 1); !errors.Is(err, ErrEntryInUse) {
			t.Errorf("in-use eid: err = %v", err)
		}
		// Overlapping buffer range.
		if err := s.BAPin(p, 1, 0, 50, 1); !errors.Is(err, ErrOverlap) {
			t.Errorf("buffer overlap: err = %v", err)
		}
		// Overlapping LBA range.
		if err := s.BAPin(p, 1, ps, 0, 1); !errors.Is(err, ErrOverlap) {
			t.Errorf("lba overlap: err = %v", err)
		}
	})
	e.Run()
}

func TestLBACheckerGatesBlockIO(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 10, 4); err != nil {
			t.Fatalf("pin: %v", err)
		}
		// Block write into the pinned range must be gated.
		if err := s.Device().WritePages(p, 12, make([]byte, ps)); !errors.Is(err, ErrPinnedRange) {
			t.Errorf("gated write err = %v", err)
		}
		// Block read overlapping the range is gated too.
		if _, err := s.Device().ReadPages(p, 9, 2); !errors.Is(err, ErrPinnedRange) {
			t.Errorf("gated read err = %v", err)
		}
		// Outside the range: fine.
		if err := s.Device().WritePages(p, 20, make([]byte, ps)); err != nil {
			t.Errorf("ungated write err = %v", err)
		}
		// After flush the gate lifts.
		if err := s.BAFlush(p, 0); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := s.Device().WritePages(p, 12, make([]byte, ps)); err != nil {
			t.Errorf("post-flush write err = %v", err)
		}
	})
	e.Run()
	if s.Device().Stats().GatedWrits == 0 {
		t.Fatal("no gated writes counted")
	}
}

func TestGetEntryInfo(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if _, err := s.BAGetEntryInfo(p, 3); !errors.Is(err, ErrNoEntry) {
			t.Errorf("empty entry err = %v", err)
		}
		if err := s.BAPin(p, 3, 4*ps, 30, 2); err != nil {
			t.Fatalf("pin: %v", err)
		}
		ent, err := s.BAGetEntryInfo(p, 3)
		if err != nil {
			t.Fatalf("info: %v", err)
		}
		if ent.ID != 3 || ent.Offset != 4*ps || ent.LBA != 30 || ent.Pages != 2 {
			t.Errorf("entry = %+v", ent)
		}
		if ent.Bytes(ps) != 2*ps {
			t.Errorf("Bytes = %d", ent.Bytes(ps))
		}
	})
	e.Run()
}

func TestReadDMACopiesCommittedData(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 0, 2); err != nil {
			t.Fatalf("pin: %v", err)
		}
		payload := bytes.Repeat([]byte{0x77}, ps)
		s.Mmio().Write(p, 0, payload)
		s.BASync(p, 0)
		dst := make([]byte, ps)
		n, err := s.BAReadDMA(p, 0, dst)
		if err != nil {
			t.Fatalf("dma: %v", err)
		}
		if n != ps || !bytes.Equal(dst, payload) {
			t.Error("dma data mismatch")
		}
	})
	e.Run()
}

func TestReadDMADoesNotSeeUnsyncedStores(t *testing.T) {
	// The DMA engine reads device memory; posted-but-unsynced MMIO
	// stores are invisible to it — the documented hazard.
	e := sim.NewEnv()
	s := newSSD(e)
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 0, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		s.Mmio().Write(p, 0, []byte{0xFF, 0xFF})
		dst := make([]byte, 2)
		s.BAReadDMA(p, 0, dst)
		if dst[0] == 0xFF {
			t.Error("DMA observed unsynced WC data")
		}
	})
	e.Run()
}

func TestReadDMATruncatesToEntry(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 0, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		dst := make([]byte, 3*ps)
		n, err := s.BAReadDMA(p, 0, dst)
		if err != nil {
			t.Fatalf("dma: %v", err)
		}
		if n != ps {
			t.Errorf("n = %d, want %d (entry length)", n, ps)
		}
	})
	e.Run()
}

func TestDMALatencyCalibration(t *testing.T) {
	// Paper: 4 KB read via DMA ≈ 58 µs; pays off versus plain MMIO
	// from ~2 KB upward but not below.
	cfg := testConfig()
	measure := func(n int, dma bool) sim.Duration {
		e := sim.NewEnv()
		s := New(e, cfg)
		var took sim.Duration
		e.Go("t", func(p *sim.Proc) {
			if err := s.BAPin(p, 0, 0, 0, 1); err != nil {
				t.Fatalf("pin: %v", err)
			}
			start := e.Now()
			if dma {
				s.BAReadDMA(p, 0, make([]byte, n))
			} else {
				s.Mmio().Read(p, 0, make([]byte, n))
			}
			took = sim.Duration(e.Now() - start)
		})
		e.Run()
		return took
	}
	d4k := measure(4096, true)
	if d4k < 55*sim.Microsecond || d4k > 65*sim.Microsecond {
		t.Errorf("4KB DMA read = %v, want ~58-60us", d4k)
	}
	if m := measure(4096, false); float64(m)/float64(d4k) < 2.0 {
		t.Errorf("DMA speedup at 4KB = %.2fx, want >= 2 (paper: 2.6x)", float64(m)/float64(d4k))
	}
	if measure(2048, true) >= measure(2048, false) {
		t.Error("DMA should win at 2KB")
	}
	if measure(512, true) <= measure(512, false) {
		t.Error("plain MMIO should win at 512B")
	}
}

func TestFlushOfUnknownEntry(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAFlush(p, 1); !errors.Is(err, ErrNoEntry) {
			t.Errorf("err = %v", err)
		}
		if err := s.BAFlush(p, 100); !errors.Is(err, ErrBadEID) {
			t.Errorf("err = %v", err)
		}
	})
	e.Run()
}

func TestPinSeesLatestBlockWrite(t *testing.T) {
	// A pin issued right after an acknowledged block write must load
	// the new data (pin drains the device write buffer first).
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		s.Device().WritePages(p, 5, bytes.Repeat([]byte{0x11}, ps))
		s.Device().WritePages(p, 5, bytes.Repeat([]byte{0x22}, ps))
		if err := s.BAPin(p, 0, 0, 5, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		got := make([]byte, 1)
		s.Mmio().Read(p, 0, got)
		if got[0] != 0x22 {
			t.Errorf("pin loaded stale data: %x", got[0])
		}
	})
	e.Run()
}

func TestStatsCounters(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	e.Go("t", func(p *sim.Proc) {
		s.BAPin(p, 0, 0, 0, 2)
		s.BASync(p, 0)
		s.BAReadDMA(p, 0, make([]byte, 16))
		s.BAFlush(p, 0)
	})
	e.Run()
	st := s.Stats()
	if st.Pins != 1 || st.Flushes != 1 || st.Syncs != 1 || st.DMAReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PagesPinned != 2 || st.PagesFlushed != 2 || st.DMABytes != 16 {
		t.Fatalf("page stats = %+v", st)
	}
}

func TestMaxEntriesAllUsable(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		for i := 0; i < testConfig().MaxEntries; i++ {
			if err := s.BAPin(p, EID(i), i*ps, ftl.LBA(i*10), 1); err != nil {
				t.Fatalf("pin %d: %v", i, err)
			}
		}
		if got := len(s.Entries()); got != testConfig().MaxEntries {
			t.Errorf("entries = %d", got)
		}
	})
	e.Run()
}

func TestBlockIOUnaffectedByMemoryInterface(t *testing.T) {
	// Discussion section: block I/O shows no performance degradation
	// when the memory interface is enabled. Measure an ungated block
	// write latency with and without a live pin on a disjoint range.
	lat := func(withPin bool) sim.Duration {
		e := sim.NewEnv()
		s := newSSD(e)
		var took sim.Duration
		e.Go("t", func(p *sim.Proc) {
			if withPin {
				if err := s.BAPin(p, 0, 0, 40, 4); err != nil {
					t.Fatalf("pin: %v", err)
				}
			}
			start := e.Now()
			s.Device().WritePages(p, 0, make([]byte, s.PageSize()))
			took = sim.Duration(e.Now() - start)
		})
		e.Run()
		return took
	}
	if a, b := lat(false), lat(true); a != b {
		t.Fatalf("block write latency changed with memory interface: %v vs %v", a, b)
	}
}

func TestULLBlockLatencyIdenticalOn2BSSD(t *testing.T) {
	// The 2B-SSD piggybacks on the ULL-SSD: block latencies identical.
	e := sim.NewEnv()
	s := New(e, DefaultConfig())
	e2 := sim.NewEnv()
	ull := device.New(e2, device.ULLSSD())
	var l2b, lull sim.Duration
	e.Go("t", func(p *sim.Proc) {
		start := e.Now()
		s.Device().WritePages(p, 0, make([]byte, s.PageSize()))
		l2b = sim.Duration(e.Now() - start)
	})
	e.Run()
	e2.Go("t", func(p *sim.Proc) {
		start := e2.Now()
		ull.WritePages(p, 0, make([]byte, ull.PageSize()))
		lull = sim.Duration(e2.Now() - start)
	})
	e2.Run()
	if l2b != lull {
		t.Fatalf("2B block write %v != ULL %v", l2b, lull)
	}
}

func TestConcurrentPinnersDistinctEntries(t *testing.T) {
	// Several processes pin, write, sync and flush disjoint entries
	// concurrently; every byte must land on the right NAND pages.
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	const workers = 4
	for w := 0; w < workers; w++ {
		w := w
		e.Go("worker", func(p *sim.Proc) {
			eid := EID(w)
			off := w * 2 * ps
			lba := ftl.LBA(w * 10)
			if err := s.BAPin(p, eid, off, lba, 2); err != nil {
				t.Errorf("w%d pin: %v", w, err)
				return
			}
			payload := bytes.Repeat([]byte{byte(w + 1)}, ps)
			if err := s.Mmio().Write(p, off, payload); err != nil {
				t.Errorf("w%d write: %v", w, err)
				return
			}
			if err := s.BASync(p, eid); err != nil {
				t.Errorf("w%d sync: %v", w, err)
				return
			}
			if err := s.BAFlush(p, eid); err != nil {
				t.Errorf("w%d flush: %v", w, err)
			}
		})
	}
	e.Run()
	e.Go("verify", func(p *sim.Proc) {
		for w := 0; w < workers; w++ {
			got, err := s.Device().ReadPages(p, ftl.LBA(w*10), 1)
			if err != nil {
				t.Errorf("verify read w%d: %v", w, err)
				return
			}
			if got[0] != byte(w+1) {
				t.Errorf("w%d: NAND got %d", w, got[0])
			}
		}
	})
	e.Run()
}

func TestEntryReuseCycles(t *testing.T) {
	// Pin/flush the same EID many times against different ranges; the
	// table must stay consistent and data must never bleed.
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		for cycle := 0; cycle < 12; cycle++ {
			lba := ftl.LBA(cycle * 3)
			if err := s.BAPin(p, 0, 0, lba, 1); err != nil {
				t.Fatalf("cycle %d pin: %v", cycle, err)
			}
			if err := s.Mmio().Write(p, 0, []byte{byte(cycle + 1)}); err != nil {
				t.Fatalf("cycle %d write: %v", cycle, err)
			}
			if err := s.BASync(p, 0); err != nil {
				t.Fatalf("cycle %d sync: %v", cycle, err)
			}
			if err := s.BAFlush(p, 0); err != nil {
				t.Fatalf("cycle %d flush: %v", cycle, err)
			}
		}
		for cycle := 0; cycle < 12; cycle++ {
			got, err := s.Device().ReadPages(p, ftl.LBA(cycle*3), 1)
			if err != nil {
				t.Fatalf("verify %d: %v", cycle, err)
			}
			if got[0] != byte(cycle+1) {
				t.Fatalf("cycle %d: got %d", cycle, got[0])
			}
		}
		_ = ps
	})
	e.Run()
}

func TestPinUnmappedRangeReadsZeros(t *testing.T) {
	// Pinning never-written LBAs loads zeros (the FTL answers unmapped
	// reads from the map) — the fresh-log-segment case.
	e := sim.NewEnv()
	s := newSSD(e)
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 50, 2); err != nil {
			t.Fatalf("pin: %v", err)
		}
		buf := make([]byte, 64)
		s.Mmio().Read(p, 0, buf)
		for _, b := range buf {
			if b != 0 {
				t.Fatal("unmapped pin loaded non-zero data")
			}
		}
	})
	e.Run()
}

// Property: MMIO write+sync+flush of random bytes to a random entry is
// always readable back via block I/O, byte for byte.
func TestPropertyDualPathRoundTrip(t *testing.T) {
	cfg := testConfig()
	prop := func(data []byte, lbaSeed uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		e := sim.NewEnv()
		s := New(e, cfg)
		lba := ftl.LBA(lbaSeed % 40)
		ok := true
		e.Go("t", func(p *sim.Proc) {
			if err := s.BAPin(p, 0, 0, lba, 1); err != nil {
				ok = false
				return
			}
			if err := s.Mmio().Write(p, 0, data); err != nil {
				ok = false
				return
			}
			if err := s.BASync(p, 0); err != nil {
				ok = false
				return
			}
			if err := s.BAFlush(p, 0); err != nil {
				ok = false
				return
			}
			got, err := s.Device().ReadPages(p, lba, 1)
			if err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(got[:len(data)], data)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPinAuthorizer(t *testing.T) {
	cfg := testConfig()
	cfg.PinAuthorizer = func(lba uint64, pages int) error {
		if lba < 100 {
			return errors.New("range owned by another tenant")
		}
		return nil
	}
	e := sim.NewEnv()
	s := New(e, cfg)
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 5, 1); !errors.Is(err, ErrNotPermitted) {
			t.Errorf("denied range: err = %v", err)
		}
		if err := s.BAPin(p, 0, 0, 120, 1); err != nil {
			t.Errorf("allowed range: %v", err)
		}
	})
	e.Run()
}
