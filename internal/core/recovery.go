package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"twobssd/internal/ftl"
	"twobssd/internal/integrity"
	"twobssd/internal/nand"
	"twobssd/internal/sim"
)

// recovery is the recovery manager (paper Section III-A4): it owns the
// reserved die-parallel NAND dump area and, on power loss, saves the
// BA-buffer contents and the mapping table there using the energy
// stored in the back-up capacitors. On power-up it restores both.
type recovery struct {
	s          *TwoBSSD
	dumpBlocks []nand.BlockID // one reserved block per die (die order)
	armed      bool           // dump area erased and ready
	dumpValid  bool           // a valid dump image exists on NAND
}

const dumpMagic = 0x2B55D001

func newRecovery(s *TwoBSSD) *recovery {
	fc := s.dev.Flash().Config()
	per := s.dev.FTL().Config().ReservedPerDie
	r := &recovery{s: s, armed: true}
	for d := 0; d < fc.Dies(); d++ {
		for k := 0; k < per; k++ {
			blk := nand.BlockID(d*fc.BlocksPerDie + fc.BlocksPerDie - 1 - k)
			r.dumpBlocks = append(r.dumpBlocks, blk)
		}
	}
	need := s.BufferPages() + 1
	if got := len(r.dumpBlocks) * fc.PagesPerBlock; got < need {
		panic(fmt.Sprintf("2bssd: dump area %d pages < %d needed", got, need))
	}
	return r
}

// DumpReport describes one power-loss event.
type DumpReport struct {
	LostWCBursts  int          // host-side write-combining bursts lost
	DumpDuration  sim.Duration // firmware dump time on capacitor power
	EnergyUsedJ   float64
	EnergyBudgetJ float64
	Persisted     bool // BA-buffer + table image reached NAND
}

// encodeMeta serializes the mapping table into one page image.
func (r *recovery) encodeMeta() []byte {
	ps := r.s.PageSize()
	buf := make([]byte, ps)
	binary.LittleEndian.PutUint32(buf[0:], dumpMagic)
	binary.LittleEndian.PutUint32(buf[4:], uint32(r.s.BufferPages()))
	n := 0
	for _, e := range r.s.table {
		if e != nil {
			n++
		}
	}
	binary.LittleEndian.PutUint32(buf[8:], uint32(n))
	off := 16
	for _, e := range r.s.table {
		if e == nil {
			continue
		}
		binary.LittleEndian.PutUint32(buf[off:], uint32(e.ID))
		binary.LittleEndian.PutUint64(buf[off+4:], uint64(e.Offset))
		binary.LittleEndian.PutUint64(buf[off+12:], uint64(e.LBA))
		binary.LittleEndian.PutUint32(buf[off+20:], uint32(e.Pages))
		off += 24
	}
	binary.LittleEndian.PutUint32(buf[12:], crc32.ChecksumIEEE(buf[16:off]))
	return buf
}

// decodeMeta rebuilds the mapping table from a dump metadata page.
func (r *recovery) decodeMeta(buf []byte) ([]*Entry, error) {
	if binary.LittleEndian.Uint32(buf[0:]) != dumpMagic {
		return nil, errors.New("2bssd: dump metadata magic mismatch")
	}
	n := int(binary.LittleEndian.Uint32(buf[8:]))
	want := binary.LittleEndian.Uint32(buf[12:])
	if got := crc32.ChecksumIEEE(buf[16 : 16+24*n]); got != want {
		return nil, errors.New("2bssd: dump metadata CRC mismatch")
	}
	entries := make([]*Entry, 0, n)
	off := 16
	for i := 0; i < n; i++ {
		entries = append(entries, &Entry{
			ID:     EID(binary.LittleEndian.Uint32(buf[off:])),
			Offset: int(binary.LittleEndian.Uint64(buf[off+4:])),
			LBA:    ftl.LBA(binary.LittleEndian.Uint64(buf[off+12:])),
			Pages:  int(binary.LittleEndian.Uint32(buf[off+20:])),
		})
		off += 24
	}
	return entries, nil
}

// pagesPerBlock returns how many BA-buffer pages each dump block holds.
func (r *recovery) pagesPerBlock() int {
	n := r.s.BufferPages()
	blocks := len(r.dumpBlocks)
	return (n + blocks - 1) / blocks
}

// PowerLoss simulates an abrupt power failure. The host's un-synced
// write-combining bursts are lost; the base device's write buffer and
// the BA-buffer + mapping table are saved to NAND on capacitor energy.
// If the stored energy cannot cover the dump, the BA-buffer image is
// NOT persisted and the call reports ErrInsufficient — committed data
// in the BA-buffer would be lost, which the recovery tests assert
// never happens with the shipped configuration.
func (s *TwoBSSD) PowerLoss(p *sim.Proc) (DumpReport, error) {
	if err := s.checkPower(); err != nil {
		return DumpReport{}, err
	}
	rep := DumpReport{EnergyBudgetJ: s.cfg.CapacitorEnergyJ()}
	rep.LostWCBursts = s.win.DropPending()

	start := s.env.Now()
	// 1. The base device's protection subsystem drains its own write
	//    buffer to NAND (both comparison SSDs already have this;
	//    Section III-A4).
	if err := s.dev.Drain(p); err != nil {
		return rep, err
	}
	// 2. Firmware dumps the BA-buffer and mapping table to the
	//    pre-erased reserved area, die-parallel.
	if !s.rec.armed {
		return rep, errors.New("2bssd: dump area not armed")
	}
	derr := s.rec.dumpImage(p)
	rep.DumpDuration = sim.Duration(s.env.Now() - start)
	rep.EnergyUsedJ = s.cfg.DumpPowerW * rep.DumpDuration.Seconds()
	s.gDumpEnergy.Set(rep.EnergyUsedJ)

	s.powered = false
	s.rec.armed = false
	if derr != nil {
		// The dump died mid-flight (injected capacitor cut or a program
		// failure in the reserved area): the image on NAND is torn and
		// must never be restored as if it were complete.
		s.rec.dumpValid = false
		s.scrambleVolatile()
		return rep, fmt.Errorf("%w: %v", ErrDumpTorn, derr)
	}
	if rep.EnergyUsedJ > rep.EnergyBudgetJ {
		// The capacitors drained before the dump finished: the image on
		// NAND is torn and unusable.
		s.rec.dumpValid = false
		s.scrambleVolatile()
		return rep, fmt.Errorf("%w: needed %.1f mJ, have %.1f mJ",
			ErrInsufficient, rep.EnergyUsedJ*1e3, rep.EnergyBudgetJ*1e3)
	}
	s.rec.dumpValid = true
	rep.Persisted = true
	s.scrambleVolatile()
	return rep, nil
}

// scrambleVolatile models DRAM content loss at power-off.
func (s *TwoBSSD) scrambleVolatile() {
	for i := range s.babuf {
		s.babuf[i] = 0xDE
	}
	for i := range s.table {
		s.table[i] = nil
	}
}

// dumpImage programs the metadata page and every BA-buffer page into
// the reserved blocks. One firmware worker per dump block programs its
// slice sequentially; blocks sit on distinct dies, so the dump runs
// die-parallel — that is what makes it fast enough for capacitors.
// A non-nil error means the image on NAND is torn: the injected
// capacitor cut fired mid-dump (pagesDumped is shared across workers,
// so the cut lands after an exact global page count), or a program in
// the reserved area failed.
func (r *recovery) dumpImage(p *sim.Proc) error {
	s := r.s
	ps := s.PageSize()
	per := r.pagesPerBlock()
	fc := s.dev.Flash().Config()
	wg := s.env.NewWaitGroup("2bssd.dump")
	nblocks := len(r.dumpBlocks)
	wg.Add(nblocks)
	pagesDumped := 0
	var firstErr error
	fail := func(err error) {
		if firstErr == nil {
			firstErr = err
		}
	}
	for b := 0; b < nblocks; b++ {
		b := b
		s.env.Go(fmt.Sprintf("2bssd.dump%d", b), func(w *sim.Proc) {
			defer wg.Done()
			blk := r.dumpBlocks[b]
			base := nand.PPA(uint64(blk) * uint64(fc.PagesPerBlock))
			pg := 0
			for i := b * per; i < (b+1)*per && i < s.BufferPages(); i++ {
				if firstErr != nil {
					return
				}
				if s.inj.DumpCut(pagesDumped) {
					fail(errors.New("capacitors cut mid-dump"))
					return
				}
				page := s.babuf[i*ps : (i+1)*ps]
				if err := s.dev.Flash().ProgramPageTagged(w, base+nand.PPA(pg), page, integrity.PageCRC(page)); err != nil {
					fail(fmt.Errorf("dump program: %w", err))
					return
				}
				pagesDumped++
				pg++
			}
			if b == 0 && firstErr == nil {
				if s.inj.DumpCut(pagesDumped) {
					fail(errors.New("capacitors cut before metadata page"))
					return
				}
				meta := r.encodeMeta()
				if err := s.dev.Flash().ProgramPageTagged(w, base+nand.PPA(pg), meta, integrity.PageCRC(meta)); err != nil {
					fail(fmt.Errorf("dump meta program: %w", err))
					return
				}
				pagesDumped++
			}
		})
	}
	wg.Wait(p)
	return firstErr
}

// PowerOn restores the device after a power failure: it reads the dump
// image back into the BA-buffer, rebuilds the mapping table (re-gating
// the pinned LBA ranges), and re-arms the dump area by erasing it.
// Without a valid dump image the BA-buffer comes up empty.
func (s *TwoBSSD) PowerOn(p *sim.Proc) error {
	if s.powered {
		return errors.New("2bssd: already powered on")
	}
	s.powered = true
	if s.rec.dumpValid {
		if err := s.rec.restoreImage(p); err != nil {
			return err
		}
		s.rec.dumpValid = false
	} else {
		for i := range s.babuf {
			s.babuf[i] = 0
		}
	}
	s.rec.rearm(p)
	return nil
}

// restoreImage loads metadata and BA-buffer contents from the dump area.
func (r *recovery) restoreImage(p *sim.Proc) error {
	s := r.s
	ps := s.PageSize()
	per := r.pagesPerBlock()
	fc := s.dev.Flash().Config()

	// Metadata sits after block 0's data slice.
	metaPg := per
	if s.BufferPages() < per {
		metaPg = s.BufferPages()
	}
	base0 := nand.PPA(uint64(r.dumpBlocks[0]) * uint64(fc.PagesPerBlock))
	metaBuf, tag, tagged, _, err := s.dev.Flash().ReadPageTagged(p, base0+nand.PPA(metaPg))
	if err == nil && tagged {
		err = integrity.Check(metaBuf, tag)
	}
	if err != nil {
		return fmt.Errorf("2bssd: restore meta: %w", err)
	}
	entries, err := r.decodeMeta(metaBuf)
	if err != nil {
		return err
	}
	wg := s.env.NewWaitGroup("2bssd.restore")
	nblocks := len(r.dumpBlocks)
	wg.Add(nblocks)
	var firstErr error
	for b := 0; b < nblocks; b++ {
		b := b
		s.env.Go(fmt.Sprintf("2bssd.rst%d", b), func(w *sim.Proc) {
			defer wg.Done()
			blk := r.dumpBlocks[b]
			base := nand.PPA(uint64(blk) * uint64(fc.PagesPerBlock))
			pg := 0
			for i := b * per; i < (b+1)*per && i < s.BufferPages(); i++ {
				data, tag, tagged, _, err := s.dev.Flash().ReadPageTagged(w, base+nand.PPA(pg))
				if err == nil && tagged {
					if cerr := integrity.Check(data, tag); cerr != nil {
						err = fmt.Errorf("2bssd: restore page %d: %w", i, cerr)
					}
				}
				if err != nil {
					if firstErr == nil {
						firstErr = err
					}
					return
				}
				copy(s.babuf[i*ps:(i+1)*ps], data)
				pg++
			}
		})
	}
	wg.Wait(p)
	if firstErr != nil {
		return firstErr
	}
	for _, e := range entries {
		s.table[e.ID] = e
	}
	return nil
}

// rearm erases the dump area so the next power loss can program it
// immediately (pre-erased, as real PLP firmware keeps it).
func (r *recovery) rearm(p *sim.Proc) {
	s := r.s
	wg := s.env.NewWaitGroup("2bssd.rearm")
	wg.Add(len(r.dumpBlocks))
	for _, blk := range r.dumpBlocks {
		blk := blk
		s.env.Go("2bssd.erase", func(w *sim.Proc) {
			defer wg.Done()
			if s.dev.Flash().NextPage(blk) == 0 {
				return // already erased
			}
			if err := s.dev.Flash().EraseBlock(w, blk); err != nil {
				// An injected erase failure retires a dump block; the
				// area keeps working at reduced parallelism as long as
				// enough blocks remain (checked at construction). Real
				// config errors still panic.
				if errors.Is(err, nand.ErrEraseFailed) || errors.Is(err, nand.ErrWornOut) {
					return
				}
				panic(fmt.Sprintf("2bssd: rearm erase failed: %v", err))
			}
		})
	}
	wg.Wait(p)
	r.armed = true
}

// Armed reports whether the dump area is erased and ready.
func (s *TwoBSSD) Armed() bool { return s.rec.armed }

// HasDump reports whether a valid dump image awaits restore.
func (s *TwoBSSD) HasDump() bool { return s.rec.dumpValid }
