package core

import (
	"fmt"

	"twobssd/internal/device"
	"twobssd/internal/pcie"
	"twobssd/internal/sim"
)

// Spec mirrors Table I of the paper: the headline specification of the
// prototype 2B-SSD.
type Spec struct {
	HostInterface string
	Protocol      string
	CapacityGB    int
	Architecture  string
	Medium        string
	CapacitorsUF  []float64
	BABufferBytes int
	MaxEntries    int
}

// DefaultSpec returns the Table I values of the prototype.
func DefaultSpec() Spec {
	return Spec{
		HostInterface: "PCIe Gen.3 x4",
		Protocol:      "NVMe 1.2",
		CapacityGB:    800,
		Architecture:  "Multiple channels/ways/cores",
		Medium:        "Single-bit NAND flash",
		CapacitorsUF:  []float64{270, 270, 270},
		BABufferBytes: 8 << 20, // 8 MB
		MaxEntries:    8,
	}
}

// Rows renders the spec as (item, description) pairs in Table I order.
func (s Spec) Rows() [][2]string {
	return [][2]string{
		{"Host interface", s.HostInterface},
		{"Protocol", s.Protocol},
		{"Capacity", fmt.Sprintf("%d GB", s.CapacityGB)},
		{"SSD architecture", s.Architecture},
		{"Storage medium", s.Medium},
		{"Capacitance of electrolytic capacitors", fmt.Sprintf("%.0f uF x %d", s.CapacitorsUF[0], len(s.CapacitorsUF))},
		{"BA-buffer size", fmt.Sprintf("%d MB", s.BABufferBytes>>20)},
		{"Max. entries of BA-buffer", fmt.Sprintf("%d", s.MaxEntries)},
	}
}

// Config assembles a full 2B-SSD: the ULL-class base device it
// piggybacks on, the BA-buffer geometry, the MMIO latency model, the
// internal-datapath firmware, the read DMA engine and the power-loss
// protection subsystem.
type Config struct {
	// Base is the block device the 2B-SSD piggybacks on (the paper's
	// prototype is built on the Z-SSD). Its FTL reservation is forced
	// to cover the recovery dump area.
	Base device.Profile

	// BABufferBytes is the byte-addressable buffer capacity (8 MB in
	// the prototype); MaxEntries the mapping-table size (8).
	BABufferBytes int
	MaxEntries    int

	// MMIO is the host-side BAR1 access model.
	MMIO pcie.Config

	// Internal datapath (BA_PIN / BA_FLUSH): firmware running on
	// InternalWorkers ARM cores, charging InternalPerPageCost per 4 KB
	// page moved. Calibrated to the paper's ~2.2 GB/s internal
	// bandwidth ceiling.
	InternalWorkers     int
	InternalPerPageCost sim.Duration

	// APIBaseCost models the ioctl + vendor-unique-command round trip
	// of BA_PIN/BA_FLUSH; InfoCost the lighter BA_GET_ENTRY_INFO.
	APIBaseCost sim.Duration
	InfoCost    sim.Duration

	// Read DMA engine: setup/interrupt overhead plus streaming rate.
	// Calibrated so a 4 KB DMA read takes ~58 µs (2.6x faster than
	// plain MMIO) and pays off from ~2 KB upward.
	DMABaseCost sim.Duration
	DMAMBps     int

	// Power-loss protection: back-up electrolytic capacitors and the
	// power drawn while dumping the BA-buffer to the reserved NAND
	// area. Energy budget = sum of 1/2 C V^2 over the capacitors.
	CapacitorsUF []float64
	CapVoltage   float64
	DumpPowerW   float64

	// PinAuthorizer models the OS permission check of Section III-C:
	// "only applications with permission to access the requested LBA
	// range are allowed to use this API". A nil authorizer allows all
	// pins (single-tenant use).
	PinAuthorizer func(lba uint64, pages int) error

	// Background scrubber: every ScrubInterval of virtual time the
	// firmware patrol-reads ScrubPagesPerPass logical pages (round
	// robin over the exported LBA space), rewriting pages whose reads
	// needed ECC retries before retention errors grow uncorrectable.
	// A zero ScrubInterval disables the scrubber (the default, so
	// existing experiment results are untouched). A zero
	// ScrubPagesPerPass with a non-zero interval scans 64 pages/pass.
	ScrubInterval     sim.Duration
	ScrubPagesPerPass int
}

// DefaultConfig returns the calibrated prototype configuration.
func DefaultConfig() Config {
	return Config{
		Base:                device.ULLSSD(),
		BABufferBytes:       8 << 20,
		MaxEntries:          8,
		MMIO:                pcie.DefaultConfig(),
		InternalWorkers:     2,
		InternalPerPageCost: 3700 * sim.Nanosecond,
		APIBaseCost:         5 * sim.Microsecond,
		InfoCost:            2 * sim.Microsecond,
		DMABaseCost:         37500 * sim.Nanosecond,
		DMAMBps:             200,
		CapacitorsUF:        []float64{270, 270, 270},
		CapVoltage:          12.0,
		DumpPowerW:          6.0,
	}
}

// CapacitorEnergyJ returns the stored back-up energy in joules.
func (c Config) CapacitorEnergyJ() float64 {
	var e float64
	for _, uf := range c.CapacitorsUF {
		e += 0.5 * uf * 1e-6 * c.CapVoltage * c.CapVoltage
	}
	return e
}
