package core

import (
	"fmt"

	"twobssd/internal/ftl"
	"twobssd/internal/histo"
	"twobssd/internal/integrity"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// scrubber is the background patrol-read service: firmware that walks
// the exported LBA space round robin on a virtual-time cadence, reading
// cold pages so retention errors are found — and repaired by rewriting
// the page — while they are still within the ECC correction budget.
// This is the latent-error defence the wear/retention BER model
// otherwise leaves open: a page nobody reads accumulates raw bit errors
// until the first host read finds it uncorrectable.
type scrubber struct {
	s       *TwoBSSD
	cursor  ftl.LBA
	stopped bool

	cPasses, cScanned   *obs.Counter
	cRepaired, cSalvage *obs.Counter
	cCRCErrors          *obs.Counter
	hPass               *histo.H
}

func newScrubber(s *TwoBSSD) *scrubber {
	reg := s.o.Registry()
	sc := &scrubber{
		s:          s,
		cPasses:    reg.Counter("scrub.passes"),
		cScanned:   reg.Counter("scrub.scanned"),
		cRepaired:  reg.Counter("scrub.repaired"),
		cSalvage:   reg.Counter("scrub.salvaged"),
		cCRCErrors: reg.Counter("scrub.crc_errors"),
		hPass:      reg.Histo("scrub.pass_ns"),
	}
	if s.cfg.ScrubInterval > 0 {
		s.env.GoDaemon("2bssd.scrub", sc.loop)
	}
	return sc
}

// loop is the scrub daemon. Its pending sleep keeps an event scheduled,
// so — unlike a daemon parked on a Signal — it would prevent Env.Run
// from ever returning; StopScrub sets the flag and the next wake-up
// exits the process.
func (sc *scrubber) loop(p *sim.Proc) {
	for {
		p.Sleep(sc.s.cfg.ScrubInterval)
		if sc.stopped {
			return
		}
		if !sc.s.powered {
			continue // nothing to patrol while the device is off
		}
		if err := sc.pass(p); err != nil {
			panic(fmt.Sprintf("2bssd: scrub pass: %v", err))
		}
	}
}

// pass patrol-reads one batch of pages from the cursor.
func (sc *scrubber) pass(p *sim.Proc) error {
	s := sc.s
	n := s.cfg.ScrubPagesPerPass
	if n <= 0 {
		n = 64
	}
	total := ftl.LBA(s.dev.Pages())
	if total == 0 {
		return nil
	}
	start := s.env.Now()
	sp := s.o.Tracer().Begin("2bssd.scrub", "2bssd", "scrub_pass")
	defer sp.End()
	for i := 0; i < n; i++ {
		lba := sc.cursor
		sc.cursor = (sc.cursor + 1) % total
		r, err := s.dev.FTL().ScrubPage(p, lba)
		if err != nil {
			return err
		}
		if !r.Mapped {
			continue
		}
		sc.cScanned.Inc()
		if r.Tagged {
			if integrity.Check(r.Data, r.Tag) != nil {
				// The stored CRC no longer matches the (post-ECC)
				// contents: silent corruption below the ECC model. Count
				// it — the read paths will refuse to serve the page.
				sc.cCRCErrors.Inc()
			}
		}
		if r.Salvaged {
			sc.cSalvage.Inc()
		}
		if r.Repaired {
			sc.cRepaired.Inc()
		}
	}
	sc.cPasses.Inc()
	sc.hPass.Observe(sim.Duration(s.env.Now() - start))
	return nil
}

// ScrubPass runs one scrub batch synchronously on the calling process —
// the pull-style entry point for tests and workloads that want patrol
// reads without the background cadence.
func (s *TwoBSSD) ScrubPass(p *sim.Proc) error {
	if err := s.checkPower(); err != nil {
		return err
	}
	return s.scrub.pass(p)
}

// StopScrub shuts the background scrubber down. Workloads that enable
// ScrubInterval must call this before expecting Env.Run to return: the
// daemon's pending timer is an event, and the simulation only finishes
// when the event queue drains.
func (s *TwoBSSD) StopScrub() { s.scrub.stopped = true }

// ScrubStats is a snapshot of the scrub.* metrics.
type ScrubStats struct {
	Passes, Scanned, Repaired, Salvaged, CRCErrors uint64
}

// ScrubStats reports what the scrubber has done so far.
func (s *TwoBSSD) ScrubStats() ScrubStats {
	return ScrubStats{
		Passes: s.scrub.cPasses.Value(), Scanned: s.scrub.cScanned.Value(),
		Repaired: s.scrub.cRepaired.Value(), Salvaged: s.scrub.cSalvage.Value(),
		CRCErrors: s.scrub.cCRCErrors.Value(),
	}
}
