package core

import (
	"bytes"
	"errors"
	"testing"

	"twobssd/internal/fault"
	"twobssd/internal/sim"
)

// TestDumpTornErrorWrapping cuts the capacitor dump mid-flight and
// verifies the failure is reported as a wrapped ErrDumpTorn: equality
// must miss (the error carries the underlying cause), errors.Is must
// match, and the report must show the dump as not persisted.
func TestDumpTornErrorWrapping(t *testing.T) {
	e := sim.NewEnv()
	fault.Install(e, fault.Plan{Seed: 5, CutDumpAfterPages: 1})
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 10, 2); err != nil {
			t.Errorf("pin: %v", err)
			return
		}
		if err := s.Mmio().Write(p, 0, bytes.Repeat([]byte{0x5A}, 2*ps)); err != nil {
			t.Errorf("mmio write: %v", err)
			return
		}
		rep, err := s.PowerLoss(p)
		if err == nil {
			t.Error("power loss with a cut dump reported success")
			return
		}
		if err == ErrDumpTorn { //nolint:errorlint // proving the wrap
			t.Error("ErrDumpTorn returned unwrapped; cause decoration missing")
		}
		if !errors.Is(err, ErrDumpTorn) {
			t.Errorf("errors.Is failed to match through the wrap: %v", err)
		}
		if rep.Persisted {
			t.Error("torn dump reported persisted")
		}
		// The all-or-nothing contract after a torn dump: recovery comes
		// up empty rather than replaying half an image.
		if err := s.PowerOn(p); err != nil {
			t.Errorf("power on: %v", err)
			return
		}
		if len(s.Entries()) != 0 {
			t.Error("entries revived from a torn dump")
		}
	})
	e.Run()
}
