// Package core implements the 2B-SSD: a dual, byte- and
// block-addressable solid-state drive (Bae et al., ISCA 2018).
//
// The device piggybacks on an ULL-class NVMe SSD (package device) and
// adds the four co-designed components of the paper's Section III:
//
//   - BAR manager: a second BAR (BAR1) whose MMIO accesses are
//     redirected into the BA-buffer region of the SSD-internal DRAM
//     (package pcie models the host side: write combining, non-posted
//     reads, clflush/mfence and write-verify reads).
//   - BA-buffer manager: a firmware mapping table binding BA-buffer
//     offsets to LBA ranges, with an internal DRAM<->NAND datapath
//     driven by BA_PIN / BA_FLUSH.
//   - LBA checker: gates block I/O to NAND pages currently pinned into
//     the BA-buffer, so the two datapaths stay consistent.
//   - Read DMA engine + recovery manager: accelerated bulk reads of
//     BA-buffer contents, and capacitor-backed dump/restore that turns
//     the volatile BA-buffer into persistent memory.
package core

import (
	"errors"
	"fmt"

	"twobssd/internal/device"
	"twobssd/internal/fault"
	"twobssd/internal/ftl"
	"twobssd/internal/histo"
	"twobssd/internal/integrity"
	"twobssd/internal/obs"
	"twobssd/internal/pcie"
	"twobssd/internal/sim"
)

// EID identifies one BA-buffer mapping-table entry (0..MaxEntries-1).
type EID int

// Entry is one row of the BA-buffer mapping table (paper Fig 2):
// a pinned binding between a BA-buffer byte range and an LBA range.
type Entry struct {
	ID     EID
	Offset int     // start offset in the BA-buffer, page aligned
	LBA    ftl.LBA // first logical page of the pinned file range
	Pages  int     // length in 4 KB pages
}

// Bytes returns the pinned length in bytes.
func (e Entry) Bytes(pageSize int) int { return e.Pages * pageSize }

// Errors reported by the 2B-SSD APIs.
var (
	ErrBadEID       = errors.New("2bssd: EID out of range")
	ErrEntryInUse   = errors.New("2bssd: entry already in use")
	ErrNoEntry      = errors.New("2bssd: no such mapping entry")
	ErrOverlap      = errors.New("2bssd: range overlaps an existing mapping")
	ErrUnaligned    = errors.New("2bssd: offset/length not page aligned")
	ErrOutOfBuffer  = errors.New("2bssd: range exceeds BA-buffer")
	ErrOutOfLBA     = errors.New("2bssd: LBA range exceeds device capacity")
	ErrPinnedRange  = errors.New("2bssd: block I/O gated, LBA range pinned to BA-buffer")
	ErrPowerIsOff   = errors.New("2bssd: device is powered off")
	ErrInsufficient = errors.New("2bssd: capacitor energy insufficient for dump")
	ErrDumpTorn     = errors.New("2bssd: capacitor dump torn (power died mid-dump)")
	ErrNotPermitted = errors.New("2bssd: OS denied BA_PIN for this LBA range")
)

// Stats aggregates 2B-SSD API counters.
type Stats struct {
	Pins, Flushes, Syncs, Infos, DMAReads uint64
	PagesPinned, PagesFlushed             uint64
	DMABytes                              uint64
}

// TwoBSSD is a simulated dual byte-/block-addressable SSD.
type TwoBSSD struct {
	env *sim.Env
	cfg Config

	dev   *device.Device
	babuf []byte // BA-buffer DRAM (device-side committed view)
	win   *pcie.Window

	table []*Entry // mapping table, indexed by EID

	arm *sim.Resource // firmware cores driving the internal datapath

	powered bool
	rec     *recovery
	scrub   *scrubber

	// Metrics ("2bssd.*" in the obs registry; Stats() reads them back).
	o                           *obs.Set
	inj                         *fault.Injector
	gDumpEnergy                 *obs.Gauge
	cPins, cFlushes, cSyncs     *obs.Counter
	cInfos, cDMAReads           *obs.Counter
	cPagesPinned, cPagesFlushed *obs.Counter
	cDMABytes, cGateRejects     *obs.Counter
	hPin, hFlush, hSync, hDMA   *histo.H
}

// New builds a 2B-SSD. Panics on invalid configuration
// (construction-time misuse).
func New(env *sim.Env, cfg Config) *TwoBSSD {
	if cfg.BABufferBytes <= 0 || cfg.MaxEntries <= 0 {
		panic("2bssd: BABufferBytes and MaxEntries must be > 0")
	}
	if cfg.InternalWorkers <= 0 || cfg.DMAMBps <= 0 {
		panic("2bssd: InternalWorkers and DMAMBps must be > 0")
	}
	base := cfg.Base
	ps := base.Nand.PageSize
	if cfg.BABufferBytes%ps != 0 {
		panic("2bssd: BABufferBytes must be a multiple of the page size")
	}
	// Reserve the recovery dump area: enough last-blocks-per-die to
	// hold the BA-buffer plus one metadata page, spread die-parallel.
	bufPages := cfg.BABufferBytes / ps
	dumpPages := bufPages + 1
	pagesPerDie := base.Nand.PagesPerBlock
	perDie := (dumpPages + base.Nand.Dies()*pagesPerDie - 1) / (base.Nand.Dies() * pagesPerDie)
	if base.FTL.ReservedPerDie < perDie {
		base.FTL.ReservedPerDie = perDie
	}
	s := &TwoBSSD{
		env:     env,
		cfg:     cfg,
		dev:     device.New(env, base),
		babuf:   make([]byte, cfg.BABufferBytes),
		table:   make([]*Entry, cfg.MaxEntries),
		arm:     env.NewResource("2bssd.arm", cfg.InternalWorkers),
		powered: true,
		o:       obs.Of(env),
		inj:     fault.Of(env),
	}
	reg := s.o.Registry()
	s.gDumpEnergy = reg.Gauge("2bssd.dump_energy_j")
	s.cPins = reg.Counter("2bssd.pins")
	s.cFlushes = reg.Counter("2bssd.flushes")
	s.cSyncs = reg.Counter("2bssd.syncs")
	s.cInfos = reg.Counter("2bssd.infos")
	s.cDMAReads = reg.Counter("2bssd.dma_reads")
	s.cPagesPinned = reg.Counter("2bssd.pages_pinned")
	s.cPagesFlushed = reg.Counter("2bssd.pages_flushed")
	s.cDMABytes = reg.Counter("2bssd.dma_bytes")
	s.cGateRejects = reg.Counter("2bssd.gate_rejects")
	s.hPin = reg.Histo("2bssd.pin_ns")
	s.hFlush = reg.Histo("2bssd.flush_ns")
	s.hSync = reg.Histo("2bssd.sync_ns")
	s.hDMA = reg.Histo("2bssd.dma_read_ns")
	reg.GaugeFunc("2bssd.pinned_entries", func() float64 { return float64(len(s.Entries())) })
	s.win = pcie.NewWindow(env, cfg.MMIO, s.babuf)
	s.rec = newRecovery(s)
	s.scrub = newScrubber(s)
	s.dev.SetGate(checker{s})
	return s
}

// Config returns the device configuration.
func (s *TwoBSSD) Config() Config { return s.cfg }

// Device returns the underlying block device (the piggybacked SSD).
// Block I/O issued here passes through the LBA checker.
func (s *TwoBSSD) Device() *device.Device { return s.dev }

// Mmio returns the BAR1 window mapped over the BA-buffer. Applications
// access it with Window.Write/Read/Sync — the mmap()ed datapath.
func (s *TwoBSSD) Mmio() *pcie.Window { return s.win }

// PageSize returns the device page size in bytes.
func (s *TwoBSSD) PageSize() int { return s.dev.PageSize() }

// BufferPages returns the BA-buffer capacity in pages.
func (s *TwoBSSD) BufferPages() int { return len(s.babuf) / s.PageSize() }

// Stats returns a snapshot of API counters (sourced from the obs
// registry's "2bssd.*" metrics, so this API and the metrics report
// agree by construction).
func (s *TwoBSSD) Stats() Stats {
	return Stats{
		Pins: s.cPins.Value(), Flushes: s.cFlushes.Value(),
		Syncs: s.cSyncs.Value(), Infos: s.cInfos.Value(),
		DMAReads:    s.cDMAReads.Value(),
		PagesPinned: s.cPagesPinned.Value(), PagesFlushed: s.cPagesFlushed.Value(),
		DMABytes: s.cDMABytes.Value(),
	}
}

// checker is the LBA checker: the hardware logic snooping every block
// I/O request for collisions with pinned ranges (Section III-A2).
type checker struct{ s *TwoBSSD }

func (c checker) check(lba ftl.LBA, pages int) error {
	for _, e := range c.s.table {
		if e == nil {
			continue
		}
		if lba < e.LBA+ftl.LBA(e.Pages) && e.LBA < lba+ftl.LBA(pages) {
			return fmt.Errorf("%w: [%d,%d) pinned by entry %d",
				ErrPinnedRange, e.LBA, e.LBA+ftl.LBA(e.Pages), e.ID)
		}
	}
	return nil
}

func (c checker) CheckRead(lba ftl.LBA, pages int) error  { return c.reject(c.check(lba, pages)) }
func (c checker) CheckWrite(lba ftl.LBA, pages int) error { return c.reject(c.check(lba, pages)) }

// reject records a gate rejection (counter + trace instant) on its way
// back to the block path.
func (c checker) reject(err error) error {
	if err != nil {
		c.s.cGateRejects.Inc()
		c.s.o.Tracer().Instant("2bssd.checker", "2bssd", "gate_reject")
	}
	return err
}

func (s *TwoBSSD) checkEID(eid EID) error {
	if int(eid) < 0 || int(eid) >= len(s.table) {
		return fmt.Errorf("%w: %d", ErrBadEID, eid)
	}
	return nil
}

func (s *TwoBSSD) checkPower() error {
	if !s.powered {
		return ErrPowerIsOff
	}
	return nil
}

// BAPin implements BA_PIN(EID, offset, LBA, length): loads the NAND
// pages [lba, lba+pages) into the BA-buffer at offset through the
// internal datapath, pins them, and records the mapping-table entry.
// The pinned LBA range is gated against block I/O until BA_FLUSH.
func (s *TwoBSSD) BAPin(p *sim.Proc, eid EID, offset int, lba ftl.LBA, pages int) error {
	if err := s.checkPower(); err != nil {
		return err
	}
	if err := s.checkEID(eid); err != nil {
		return err
	}
	if s.table[eid] != nil {
		return fmt.Errorf("%w: %d", ErrEntryInUse, eid)
	}
	ps := s.PageSize()
	if offset%ps != 0 || pages <= 0 {
		return fmt.Errorf("%w: offset %d pages %d", ErrUnaligned, offset, pages)
	}
	if offset+pages*ps > len(s.babuf) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfBuffer, offset, offset+pages*ps, len(s.babuf))
	}
	if uint64(lba)+uint64(pages) > s.dev.Pages() {
		return fmt.Errorf("%w: [%d,%d)", ErrOutOfLBA, lba, uint64(lba)+uint64(pages))
	}
	if s.cfg.PinAuthorizer != nil {
		if err := s.cfg.PinAuthorizer(uint64(lba), pages); err != nil {
			return fmt.Errorf("%w: %v", ErrNotPermitted, err)
		}
	}
	for _, e := range s.table {
		if e == nil {
			continue
		}
		bufOverlap := offset < e.Offset+e.Pages*ps && e.Offset < offset+pages*ps
		lbaOverlap := lba < e.LBA+ftl.LBA(e.Pages) && e.LBA < lba+ftl.LBA(pages)
		if bufOverlap || lbaOverlap {
			return fmt.Errorf("%w: with entry %d", ErrOverlap, e.ID)
		}
	}
	start := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "2bssd", "ba_pin")
	defer sp.End()
	p.Sleep(s.cfg.APIBaseCost)
	// Order writes-before-pin: any block writes still sitting in the
	// base device's buffer must reach NAND before the internal read.
	if err := s.dev.Drain(p); err != nil {
		return err
	}
	// Install the entry (and the gate) before moving data so block I/O
	// cannot race the internal datapath.
	ent := &Entry{ID: eid, Offset: offset, LBA: lba, Pages: pages}
	s.table[eid] = ent
	// Internal datapath: die-parallel reads, issue rate capped by the
	// ARM firmware cores.
	err := s.internalMove(p, ent, false)
	if err != nil {
		s.table[eid] = nil
		return err
	}
	s.cPins.Inc()
	s.cPagesPinned.Add(uint64(pages))
	s.hPin.Observe(sim.Duration(s.env.Now() - start))
	return nil
}

// BAFlush implements BA_FLUSH(EID): writes the entry's BA-buffer
// contents to its pinned NAND pages over the internal datapath, then
// removes the mapping entry (unpinning the range).
func (s *TwoBSSD) BAFlush(p *sim.Proc, eid EID) error {
	if err := s.checkPower(); err != nil {
		return err
	}
	if err := s.checkEID(eid); err != nil {
		return err
	}
	ent := s.table[eid]
	if ent == nil {
		return fmt.Errorf("%w: %d", ErrNoEntry, eid)
	}
	start := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "2bssd", "ba_flush")
	defer sp.End()
	p.Sleep(s.cfg.APIBaseCost)
	if err := s.internalMove(p, ent, true); err != nil {
		return err
	}
	s.table[eid] = nil
	s.cFlushes.Inc()
	s.cPagesFlushed.Add(uint64(ent.Pages))
	s.hFlush.Observe(sim.Duration(s.env.Now() - start))
	return nil
}

// internalMove drives the internal DRAM<->NAND datapath for one entry.
// write=false loads NAND into the BA-buffer (pin); write=true stores
// the BA-buffer to NAND (flush). The 2B-SSD cannot tell which bytes
// are dirty (the CPU wrote them directly), so a flush always moves the
// whole entry — exactly the paper's Section III-C semantics.
func (s *TwoBSSD) internalMove(p *sim.Proc, ent *Entry, write bool) error {
	name := "pin_move"
	if write {
		name = "flush_move"
	}
	sp := s.o.Tracer().Begin("2bssd.datapath", "2bssd", name)
	defer sp.End()
	ps := s.PageSize()
	movePage := func(w *sim.Proc, i int) error {
		s.arm.Use(w, s.cfg.InternalPerPageCost)
		off := ent.Offset + i*ps
		lba := ent.LBA + ftl.LBA(i)
		if write {
			// BA_FLUSH is the byte path's host boundary: the page's
			// content is fixed here for the first time (MMIO stores
			// have no page-granular commit point), so the integrity
			// tag is born here.
			tag := integrity.PageCRC(s.babuf[off : off+ps])
			if err := s.dev.FTL().WritePageTagged(w, lba, s.babuf[off:off+ps], tag); err != nil {
				return err
			}
			s.inj.Tick(fault.EvBAFlushPage)
			return nil
		}
		// Pin lands NAND pages straight in the BA-buffer frame.
		tag, tagged, err := s.dev.FTL().ReadPageTaggedInto(w, lba, s.babuf[off:off+ps])
		if err == nil && tagged {
			if cerr := integrity.Check(s.babuf[off:off+ps], tag); cerr != nil {
				err = fmt.Errorf("2bssd: pin lba %d: %w", lba, cerr)
			}
		}
		return err
	}
	// Single-page entries (the common case for log windows) run inline:
	// no fan-out goroutine, WaitGroup or closure — same virtual timing.
	if ent.Pages == 1 {
		return movePage(p, 0)
	}
	wg := s.env.NewWaitGroup("2bssd.move")
	wg.Add(ent.Pages)
	var firstErr error
	mv := func(w *sim.Proc, i int) {
		defer wg.Done()
		if err := movePage(w, i); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for i := 0; i < ent.Pages; i++ {
		s.env.GoIdx("2bssd.mv", i, mv)
	}
	wg.Wait(p)
	return firstErr
}

// BASync implements BA_SYNC(EID): the three-step durability protocol —
// look up the entry's BA-buffer pages, clflush+mfence them, and issue
// the write-verify read. Afterwards every prior MMIO store to the
// window is durable in the (capacitor-protected) BA-buffer.
func (s *TwoBSSD) BASync(p *sim.Proc, eid EID) error {
	if err := s.checkPower(); err != nil {
		return err
	}
	start := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "2bssd", "ba_sync")
	defer sp.End()
	ent, err := s.BAGetEntryInfo(p, eid)
	if err != nil {
		return err
	}
	if err := s.win.Sync(p, ent.Offset, ent.Pages*s.PageSize()); err != nil {
		return err
	}
	s.cSyncs.Inc()
	s.hSync.Observe(sim.Duration(s.env.Now() - start))
	return nil
}

// BAGetEntryInfo implements BA_GET_ENTRY_INFO(EID).
func (s *TwoBSSD) BAGetEntryInfo(p *sim.Proc, eid EID) (Entry, error) {
	if err := s.checkPower(); err != nil {
		return Entry{}, err
	}
	if err := s.checkEID(eid); err != nil {
		return Entry{}, err
	}
	ent := s.table[eid]
	if ent == nil {
		return Entry{}, fmt.Errorf("%w: %d", ErrNoEntry, eid)
	}
	p.Sleep(s.cfg.InfoCost)
	s.cInfos.Inc()
	return *ent, nil
}

// BAReadDMA implements BA_READ_DMA(EID, dst, length): programs the
// read DMA engine to copy up to len(dst) bytes of the entry's
// BA-buffer contents to the host. The engine reads the device-side
// (committed) view: MMIO stores not yet synced are NOT visible — the
// same hazard a real posted-write window has.
func (s *TwoBSSD) BAReadDMA(p *sim.Proc, eid EID, dst []byte) (int, error) {
	if err := s.checkPower(); err != nil {
		return 0, err
	}
	ent, err := s.BAGetEntryInfo(p, eid)
	if err != nil {
		return 0, err
	}
	n := len(dst)
	if max := ent.Pages * s.PageSize(); n > max {
		n = max
	}
	start := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "2bssd", "ba_read_dma")
	p.Sleep(s.cfg.DMABaseCost)
	p.Sleep(sim.Duration(int64(n) * 1000 / int64(s.cfg.DMAMBps)))
	sp.End()
	copy(dst[:n], s.babuf[ent.Offset:ent.Offset+n])
	s.cDMAReads.Inc()
	s.cDMABytes.Add(uint64(n))
	s.hDMA.Observe(sim.Duration(s.env.Now() - start))
	return n, nil
}

// PMRReadDMA copies length bytes from the device DRAM window at off to
// the host, using the read DMA engine but WITHOUT a mapping entry — the
// access mode of an NVMe "Persistent Memory Region" (PMR) device, the
// related-work comparison of Section VII. A PMR exposes byte access to
// device NVRAM but has no internal NVRAM<->NAND datapath, so moving
// data to flash must round-trip through the host.
func (s *TwoBSSD) PMRReadDMA(p *sim.Proc, off int, dst []byte) (int, error) {
	if err := s.checkPower(); err != nil {
		return 0, err
	}
	n := len(dst)
	if off < 0 || off+n > len(s.babuf) {
		return 0, fmt.Errorf("%w: [%d,%d)", ErrOutOfBuffer, off, off+n)
	}
	start := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "2bssd", "pmr_read_dma")
	p.Sleep(s.cfg.DMABaseCost)
	p.Sleep(sim.Duration(int64(n) * 1000 / int64(s.cfg.DMAMBps)))
	sp.End()
	copy(dst, s.babuf[off:off+n])
	s.cDMAReads.Inc()
	s.cDMABytes.Add(uint64(n))
	s.hDMA.Observe(sim.Duration(s.env.Now() - start))
	return n, nil
}

// Entries returns a snapshot of the live mapping-table entries.
func (s *TwoBSSD) Entries() []Entry {
	var out []Entry
	for _, e := range s.table {
		if e != nil {
			out = append(out, *e)
		}
	}
	return out
}
