package core

import (
	"errors"
	"testing"

	"twobssd/internal/ftl"
	"twobssd/internal/sim"
)

// TestCheckerBoundaries pins one 4-page range and probes block I/O at
// every boundary relationship the half-open interval math can get
// wrong: exactly abutting below and above (allowed), straddling the
// start, straddling the end, fully inside, and fully containing the
// pinned mapping (all gated).
func TestCheckerBoundaries(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		// Pin [20, 24).
		if err := s.BAPin(p, 0, 0, 20, 4); err != nil {
			t.Errorf("pin: %v", err)
			return
		}
		cases := []struct {
			name  string
			lba   ftl.LBA
			pages int
			gated bool
		}{
			{"abut below [16,20)", 16, 4, false},
			{"abut above [24,28)", 24, 4, false},
			{"one page just below [19,20)", 19, 1, false},
			{"one page at start [20,21)", 20, 1, true},
			{"one page at last [23,24)", 23, 1, true},
			{"one page just above [24,25)", 24, 1, false},
			{"straddle start [18,22)", 18, 4, true},
			{"straddle end [22,26)", 22, 4, true},
			{"fully inside [21,23)", 21, 2, true},
			{"fully contains [19,25)", 19, 6, true},
			{"exact match [20,24)", 20, 4, true},
		}
		for _, tc := range cases {
			werr := s.Device().WritePages(p, tc.lba, make([]byte, tc.pages*ps))
			_, rerr := s.Device().ReadPages(p, tc.lba, tc.pages)
			if tc.gated {
				if !errors.Is(werr, ErrPinnedRange) {
					t.Errorf("%s: write err = %v, want ErrPinnedRange", tc.name, werr)
				}
				if !errors.Is(rerr, ErrPinnedRange) {
					t.Errorf("%s: read err = %v, want ErrPinnedRange", tc.name, rerr)
				}
			} else {
				if werr != nil {
					t.Errorf("%s: write gated: %v", tc.name, werr)
				}
				if rerr != nil {
					t.Errorf("%s: read gated: %v", tc.name, rerr)
				}
			}
		}
	})
	e.Run()
}

// TestCheckerFullTable fills the mapping table to its 8-entry limit
// with single-page pins spaced two pages apart, then checks every
// entry gates exactly its own page — the gaps between pins stay open
// even with the checker walking a full table.
func TestCheckerFullTable(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	cfg := testConfig()
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		for i := 0; i < cfg.MaxEntries; i++ {
			if err := s.BAPin(p, EID(i), i*ps, ftl.LBA(2*i), 1); err != nil {
				t.Errorf("pin %d: %v", i, err)
				return
			}
		}
		if got := len(s.Entries()); got != cfg.MaxEntries {
			t.Errorf("entries = %d, want %d", got, cfg.MaxEntries)
			return
		}
		for i := 0; i < cfg.MaxEntries; i++ {
			pinned := ftl.LBA(2 * i)
			if err := s.Device().WritePages(p, pinned, make([]byte, ps)); !errors.Is(err, ErrPinnedRange) {
				t.Errorf("pinned lba %d: write err = %v, want ErrPinnedRange", pinned, err)
			}
			gap := pinned + 1
			if err := s.Device().WritePages(p, gap, make([]byte, ps)); err != nil {
				t.Errorf("gap lba %d gated: %v", gap, err)
			}
		}
		// A multi-page write spanning a gap and a pin is gated; after
		// flushing that pin the same write goes through.
		if err := s.Device().WritePages(p, 1, make([]byte, 2*ps)); !errors.Is(err, ErrPinnedRange) {
			t.Errorf("span over pin: err = %v, want ErrPinnedRange", err)
		}
		if err := s.BAFlush(p, 1); err != nil {
			t.Errorf("flush: %v", err)
			return
		}
		if err := s.Device().WritePages(p, 1, make([]byte, 2*ps)); err != nil {
			t.Errorf("span after flush still gated: %v", err)
		}
	})
	e.Run()
}
