package core

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"twobssd/internal/sim"
)

func TestPowerLossPersistsSyncedData(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	payload := []byte("committed transaction log record")
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 1, ps, 7, 2); err != nil {
			t.Fatalf("pin: %v", err)
		}
		s.Mmio().Write(p, ps, payload)
		s.BASync(p, 1)

		rep, err := s.PowerLoss(p)
		if err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if !rep.Persisted {
			t.Fatal("dump not persisted")
		}
		if rep.EnergyUsedJ >= rep.EnergyBudgetJ {
			t.Fatalf("energy %.2f mJ over budget %.2f mJ", rep.EnergyUsedJ*1e3, rep.EnergyBudgetJ*1e3)
		}
		if err := s.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		// BA-buffer content and mapping table restored.
		got := make([]byte, len(payload))
		if err := s.Mmio().Read(p, ps, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Errorf("restored %q, want %q", got, payload)
		}
		ent, err := s.BAGetEntryInfo(p, 1)
		if err != nil {
			t.Fatalf("entry lost: %v", err)
		}
		if ent.LBA != 7 || ent.Pages != 2 || ent.Offset != ps {
			t.Errorf("entry = %+v", ent)
		}
		// Pinned range still gated after recovery.
		if err := s.Device().WritePages(p, 7, make([]byte, ps)); !errors.Is(err, ErrPinnedRange) {
			t.Errorf("gate not restored: err = %v", err)
		}
		// And the recovered entry can be flushed to NAND.
		if err := s.BAFlush(p, 1); err != nil {
			t.Fatalf("flush after recovery: %v", err)
		}
		data, err := s.Device().ReadPages(p, 7, 1)
		if err != nil {
			t.Fatalf("block read: %v", err)
		}
		if !bytes.HasPrefix(data, payload) {
			t.Error("flushed data wrong after recovery")
		}
	})
	e.Run()
}

func TestPowerLossDropsUnsyncedWCData(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 0, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		s.Mmio().Write(p, 0, []byte{0xAB, 0xCD}) // never synced
		rep, err := s.PowerLoss(p)
		if err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if rep.LostWCBursts == 0 {
			t.Error("expected lost WC bursts")
		}
		if err := s.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		got := make([]byte, 2)
		s.Mmio().Read(p, 0, got)
		if got[0] == 0xAB {
			t.Error("unsynced data survived power loss — durability model broken")
		}
		_ = ps
	})
	e.Run()
}

func TestPowerLossWithInsufficientCapacitors(t *testing.T) {
	cfg := testConfig()
	cfg.CapacitorsUF = []float64{0.001} // hopeless
	e := sim.NewEnv()
	s := New(e, cfg)
	e.Go("t", func(p *sim.Proc) {
		s.BAPin(p, 0, 0, 0, 1)
		s.Mmio().Write(p, 0, []byte{1})
		s.BASync(p, 0)
		_, err := s.PowerLoss(p)
		if !errors.Is(err, ErrInsufficient) {
			t.Fatalf("err = %v, want ErrInsufficient", err)
		}
		if err := s.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		// No dump image: buffer comes up empty, entry table empty.
		got := make([]byte, 1)
		s.Mmio().Read(p, 0, got)
		if got[0] != 0 {
			t.Error("data survived an under-provisioned dump")
		}
		if len(s.Entries()) != 0 {
			t.Error("entries survived an under-provisioned dump")
		}
	})
	e.Run()
}

func TestAPIsRejectedWhilePoweredOff(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	e.Go("t", func(p *sim.Proc) {
		if _, err := s.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := s.BAPin(p, 0, 0, 0, 1); !errors.Is(err, ErrPowerIsOff) {
			t.Errorf("pin err = %v", err)
		}
		if err := s.BASync(p, 0); !errors.Is(err, ErrPowerIsOff) {
			t.Errorf("sync err = %v", err)
		}
		if _, err := s.PowerLoss(p); !errors.Is(err, ErrPowerIsOff) {
			t.Errorf("double power-loss err = %v", err)
		}
		if err := s.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		if err := s.PowerOn(p); err == nil {
			t.Error("double power-on accepted")
		}
	})
	e.Run()
}

func TestRepeatedPowerCycles(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 0, 0, 3, 1); err != nil {
			t.Fatalf("pin: %v", err)
		}
		for cycle := byte(1); cycle <= 4; cycle++ {
			s.Mmio().Write(p, 0, []byte{cycle})
			s.BASync(p, 0)
			if _, err := s.PowerLoss(p); err != nil {
				t.Fatalf("cycle %d loss: %v", cycle, err)
			}
			if err := s.PowerOn(p); err != nil {
				t.Fatalf("cycle %d on: %v", cycle, err)
			}
			got := make([]byte, 1)
			s.Mmio().Read(p, 0, got)
			if got[0] != cycle {
				t.Fatalf("cycle %d: got %d", cycle, got[0])
			}
		}
		_ = ps
	})
	e.Run()
}

func TestDumpIsDieParallel(t *testing.T) {
	// The dump of the whole BA-buffer must complete in roughly
	// (pages-per-die-block) serial programs, not (total-pages) —
	// otherwise capacitors could never cover it.
	e := sim.NewEnv()
	cfg := testConfig()
	s := New(e, cfg)
	e.Go("t", func(p *sim.Proc) {
		rep, err := s.PowerLoss(p)
		if err != nil {
			t.Fatalf("power loss: %v", err)
		}
		// 64 buffer pages over 4 dies => 16+1 pages/block; each program
		// ≈ 53.4 µs => ~0.9 ms. Serial would be ~3.4 ms.
		if rep.DumpDuration > 2*sim.Millisecond {
			t.Errorf("dump took %v — not die-parallel", rep.DumpDuration)
		}
	})
	e.Run()
}

func TestMetaCodecRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		s.BAPin(p, 0, 0, 0, 1)
		s.BAPin(p, 5, 8*ps, 40, 3)
	})
	e.Run()
	meta := s.rec.encodeMeta()
	entries, err := s.rec.decodeMeta(meta)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(entries) != 2 {
		t.Fatalf("decoded %d entries", len(entries))
	}
	if entries[1].ID != 5 || entries[1].Offset != 8*ps || entries[1].LBA != 40 || entries[1].Pages != 3 {
		t.Fatalf("entry = %+v", entries[1])
	}
	// Corrupt the CRC region: decode must fail.
	meta[20] ^= 0xFF
	if _, err := s.rec.decodeMeta(meta); err == nil {
		t.Fatal("corrupted metadata accepted")
	}
	// Corrupt the magic: decode must fail.
	meta[0] = 0
	if _, err := s.rec.decodeMeta(meta); err == nil {
		t.Fatal("bad magic accepted")
	}
}

// Property: any synced byte pattern at any page-aligned pin survives a
// full power cycle bit-for-bit.
func TestPropertyPowerCyclePreservesSyncedBytes(t *testing.T) {
	cfg := testConfig()
	prop := func(data []byte, pageSeed uint8) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		e := sim.NewEnv()
		s := New(e, cfg)
		ps := s.PageSize()
		page := int(pageSeed) % s.BufferPages()
		ok := true
		e.Go("t", func(p *sim.Proc) {
			if err := s.BAPin(p, 0, page*ps, 0, 1); err != nil {
				ok = false
				return
			}
			s.Mmio().Write(p, page*ps, data)
			s.BASync(p, 0)
			if _, err := s.PowerLoss(p); err != nil {
				ok = false
				return
			}
			if err := s.PowerOn(p); err != nil {
				ok = false
				return
			}
			got := make([]byte, len(data))
			s.Mmio().Read(p, page*ps, got)
			ok = bytes.Equal(got, data)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
