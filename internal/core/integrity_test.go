package core

import (
	"bytes"
	"errors"
	"testing"

	"twobssd/internal/integrity"
	"twobssd/internal/nand"
	"twobssd/internal/sim"
)

// TestPinDetectsSilentCorruption covers the byte path's read boundary:
// BA_PIN's internal datapath must refuse to load a corrupted NAND page
// into the BA-buffer.
func TestPinDetectsSilentCorruption(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.Device().WritePages(p, 12, bytes.Repeat([]byte{0xEE}, ps)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := s.Device().Drain(p); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		ppa, ok := s.Device().FTL().PPAOf(12)
		if !ok {
			t.Error("page not mapped")
			return
		}
		s.Device().Flash().CorruptPage(ppa, 1)
		err := s.BAPin(p, 0, 0, 12, 1)
		if !errors.Is(err, integrity.ErrPageCorrupt) {
			t.Errorf("pin of corrupted page: err = %v, want ErrPageCorrupt", err)
		}
		if len(s.Entries()) != 0 {
			t.Error("failed pin left a mapping entry behind")
		}
	})
	e.Run()
}

// TestRestoreDetectsCorruptedDump covers the post-recovery read path:
// a dump image corrupted on flash between power loss and power on must
// fail the restore instead of silently reviving wrong BA-buffer bytes.
func TestRestoreDetectsCorruptedDump(t *testing.T) {
	e := sim.NewEnv()
	s := newSSD(e)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.BAPin(p, 1, 0, 30, 1); err != nil {
			t.Errorf("pin: %v", err)
			return
		}
		if err := s.Mmio().Write(p, 0, bytes.Repeat([]byte{0x11}, ps)); err != nil {
			t.Errorf("mmio write: %v", err)
			return
		}
		if err := s.BASync(p, 1); err != nil {
			t.Errorf("sync: %v", err)
			return
		}
		rep, err := s.PowerLoss(p)
		if err != nil || !rep.Persisted {
			t.Errorf("power loss: persisted=%v err=%v", rep.Persisted, err)
			return
		}
		// Corrupt the first dumped BA-buffer page on flash.
		fc := s.Device().Flash().Config()
		ppa := nand.PPA(uint64(s.rec.dumpBlocks[0]) * uint64(fc.PagesPerBlock))
		if !s.Device().Flash().CorruptPage(ppa, 1) {
			t.Error("CorruptPage found no dump image")
			return
		}
		err = s.PowerOn(p)
		if !errors.Is(err, integrity.ErrPageCorrupt) {
			t.Errorf("power on over corrupted dump: err = %v, want ErrPageCorrupt", err)
		}
	})
	e.Run()
}
