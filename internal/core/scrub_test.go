package core

import (
	"bytes"
	"testing"

	"twobssd/internal/fault"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// retentionBER returns a single-retry-step model where a page becomes
// correctable-with-retries after ~23 h of retention and uncorrectable
// after ~47 h: lambda = Base*(1+0.5h)*32768 bits crosses ECCBits=40 at
// 1+0.5h > 12.2 and the one-retry ceiling of 80 at 1+0.5h > 24.4.
func retentionBER() *fault.BERModel {
	return &fault.BERModel{
		Base:             1e-4,
		RetentionPerHour: 0.5,
		ECCBits:          40,
		RetrySteps:       1,
		RetryLatency:     60 * sim.Microsecond,
	}
}

// TestScrubRepairsRetentionErrors is the latent-error defence test: a
// page written once and never read accumulates retention errors. A
// patrol pass at 30 h finds it correctable-with-retries and rewrites
// it, resetting its retention age; at 60 h (uncorrectable territory for
// the original copy) the host read is clean. A control run without the
// scrub pass hits the uncorrectable salvage path instead.
func TestScrubRepairsRetentionErrors(t *testing.T) {
	const hour = 3600 * sim.Second
	run := func(scrub bool) (uncorrectable uint64, repaired uint64, data []byte) {
		e := sim.NewEnv()
		o := obs.Of(e)
		fault.Install(e, fault.Plan{Seed: 7, BER: retentionBER()})
		s := New(e, testConfig())
		ps := s.PageSize()
		want := bytes.Repeat([]byte{0x5C}, ps)
		e.Go("t", func(p *sim.Proc) {
			if err := s.Device().WritePages(p, 3, want); err != nil {
				t.Errorf("write: %v", err)
				return
			}
			if err := s.Device().Drain(p); err != nil {
				t.Errorf("drain: %v", err)
				return
			}
			p.Sleep(30 * hour)
			if scrub {
				if err := s.ScrubPass(p); err != nil {
					t.Errorf("scrub: %v", err)
					return
				}
			}
			p.Sleep(30 * hour)
			got, err := s.Device().ReadPages(p, 3, 1)
			if err != nil {
				t.Errorf("read: %v", err)
				return
			}
			data = got
		})
		e.Run()
		return o.Registry().Counter("fault.uncorrectable_reads").Value(),
			s.ScrubStats().Repaired, data
	}

	uncorr, repaired, data := run(true)
	if repaired == 0 {
		t.Error("scrub pass repaired no pages; want at least the retention-aged page")
	}
	if uncorr != 0 {
		t.Errorf("with scrub: %d uncorrectable reads, want 0", uncorr)
	}
	if !bytes.Equal(data, bytes.Repeat([]byte{0x5C}, len(data))) {
		t.Error("with scrub: read returned wrong data")
	}

	ctrlUncorr, ctrlRepaired, ctrlData := run(false)
	if ctrlRepaired != 0 {
		t.Errorf("control repaired %d pages without a scrub pass", ctrlRepaired)
	}
	if ctrlUncorr == 0 {
		t.Error("control hit no uncorrectable reads; retention model too weak for this test")
	}
	if !bytes.Equal(ctrlData, bytes.Repeat([]byte{0x5C}, len(ctrlData))) {
		t.Error("control: salvage read returned wrong data")
	}
}

// TestScrubDaemonCadence runs the interval-driven scrubber and checks
// that passes tick on the virtual clock and that StopScrub lets the
// simulation terminate.
func TestScrubDaemonCadence(t *testing.T) {
	e := sim.NewEnv()
	cfg := testConfig()
	cfg.ScrubInterval = 1 * sim.Second
	cfg.ScrubPagesPerPass = 16
	s := New(e, cfg)
	ps := s.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := s.Device().WritePages(p, 0, bytes.Repeat([]byte{1}, 4*ps)); err != nil {
			t.Errorf("write: %v", err)
		}
		if err := s.Device().Drain(p); err != nil {
			t.Errorf("drain: %v", err)
		}
		p.Sleep(5 * sim.Second)
		s.StopScrub()
	})
	e.Run()
	st := s.ScrubStats()
	if st.Passes < 4 {
		t.Errorf("scrub passes = %d, want >= 4 over 5 s at 1 s cadence", st.Passes)
	}
	if st.Scanned == 0 {
		t.Error("scrub scanned no mapped pages")
	}
	if st.CRCErrors != 0 {
		t.Errorf("scrub flagged %d CRC errors on a healthy device", st.CRCErrors)
	}
}

// TestScrubSkipsWhilePoweredOff checks the daemon idles across a
// power-loss window instead of patrolling a dead device.
func TestScrubSkipsWhilePoweredOff(t *testing.T) {
	e := sim.NewEnv()
	cfg := testConfig()
	cfg.ScrubInterval = 1 * sim.Second
	s := New(e, cfg)
	e.Go("t", func(p *sim.Proc) {
		if _, err := s.PowerLoss(p); err != nil {
			t.Errorf("power loss: %v", err)
		}
		p.Sleep(3 * sim.Second)
		if err := s.PowerOn(p); err != nil {
			t.Errorf("power on: %v", err)
		}
		s.StopScrub()
	})
	e.Run()
	if p := s.ScrubStats().Passes; p != 0 {
		t.Errorf("scrubber ran %d passes while powered off", p)
	}
}
