package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"

	"twobssd/internal/histo"
	"twobssd/internal/sim"
)

// The metric timeline layer: instead of one end-of-run snapshot, a
// Sampler closes fixed virtual-time windows over a registry and records
// what changed in each — counters as per-window deltas (rates), gauges
// as sampled values, histograms as sparse per-window distributions with
// their own percentiles. Points live in a bounded ring, so an
// arbitrarily long campaign costs constant memory, and merge
// deterministically across environments (and across `-j N` workers) by
// window index.
//
// The sampler is driven by the sim kernel's clock-tick hook, not by a
// process: a sleeping daemon would keep the event queue non-empty and
// Run would never return. Ticks observe state between events, so a
// window's point reflects exactly the events that completed inside it —
// identical at any host parallelism.

// DefaultSampleInterval is the sampling cadence used when a caller
// passes a non-positive interval.
const DefaultSampleInterval = sim.Millisecond

// DefaultMaxPoints bounds one sampler's ring when a caller passes a
// non-positive capacity.
const DefaultMaxPoints = 1 << 10

// point is one closed sampling window of a single environment. Maps
// hold only metrics that changed during the window (sparse), and are
// never mutated after the point is appended — publishers may share
// them across goroutines freely.
type point struct {
	window  int64 // index: window w covers virtual [w*I, (w+1)*I)
	timeNs  int64 // end of the state this point reflects
	spanNs  int64 // time since the previous point of this sampler
	partial bool  // run ended inside the window

	counters map[string]uint64
	gauges   map[string]float64
	histos   map[string]histo.Window
}

// Sampler snapshots one registry at a fixed virtual-time cadence into
// a ring of delta-encoded points. Create one with Set.StartSampler.
type Sampler struct {
	set      *Set
	interval sim.Duration

	// Ring of emitted points in chronological order.
	pts     []point
	first   int
	count   int
	dropped uint64

	// Previous cumulative state, for delta encoding. Histogram clones
	// are taken only when a histogram's sample count moved, so idle
	// series cost one uint64 compare per window.
	prevCounters map[string]uint64
	prevHistoN   map[string]uint64
	prevHistos   map[string]*histo.H
	lastTimeNs   int64

	// publish, when set, runs after every emitted point and at run end,
	// inside the simulation's single-threaded world — the hand-off hook
	// the serving layer uses to publish immutable state to HTTP readers.
	publish func(final bool)
}

// StartSampler begins sampling this set's registry every interval of
// virtual time, keeping at most maxPoints windows (non-positive
// arguments select DefaultSampleInterval / DefaultMaxPoints). The
// sampler is driven by the environment's clock between events, so it
// neither keeps the simulation alive nor perturbs its virtual-time
// results; a final partial window is flushed when Run returns.
// Calling StartSampler again returns the existing sampler.
func (s *Set) StartSampler(interval sim.Duration, maxPoints int) *Sampler {
	if s.sampler != nil {
		return s.sampler
	}
	if interval <= 0 {
		interval = DefaultSampleInterval
	}
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	sm := &Sampler{
		set:          s,
		interval:     interval,
		pts:          make([]point, 0, maxPoints),
		prevCounters: make(map[string]uint64),
		prevHistoN:   make(map[string]uint64),
		prevHistos:   make(map[string]*histo.H),
	}
	s.sampler = sm
	env := s.env
	env.SetTick(env.Now()+sim.Time(interval), func(now sim.Time) sim.Time {
		// Windows closed: every window k with (k+1)*I <= now — the
		// current event has not executed yet, so state is exactly the
		// prefix of events in those windows.
		lastClosed := int64(now)/int64(interval) - 1
		sm.emit(lastClosed, (lastClosed+1)*int64(interval), false)
		return sim.Time((lastClosed + 2) * int64(interval))
	})
	env.OnRunEnd(func() {
		now := int64(env.Now())
		if now > sm.lastTimeNs || sm.count == 0 {
			sm.emit(now/int64(interval), now, true)
		} else if sm.publish != nil {
			sm.publish(true)
		}
	})
	return sm
}

// Sampler returns the set's sampler, or nil when sampling is off.
func (s *Set) Sampler() *Sampler { return s.sampler }

// Interval returns the sampling cadence.
func (sm *Sampler) Interval() sim.Duration { return sm.interval }

// Dropped reports how many points the ring capacity discarded.
func (sm *Sampler) Dropped() uint64 { return sm.dropped }

// emit closes a window: computes deltas against the previous cumulative
// state and appends a point to the ring.
func (sm *Sampler) emit(window, timeNs int64, final bool) {
	r := sm.set.reg
	pt := point{window: window, timeNs: timeNs, spanNs: timeNs - sm.lastTimeNs, partial: final}
	sm.lastTimeNs = timeNs

	for name, c := range r.counters {
		v := c.Value()
		if d := v - sm.prevCounters[name]; d != 0 {
			if pt.counters == nil {
				pt.counters = make(map[string]uint64)
			}
			pt.counters[name] = d
			sm.prevCounters[name] = v
		}
	}
	for name, g := range r.gauges {
		if pt.gauges == nil {
			pt.gauges = make(map[string]float64)
		}
		pt.gauges[name] = g.Value()
	}
	// Sampled gauge funcs are user code: evaluate them in sorted name
	// order so any side effects are schedule-independent (see the
	// package doc's merge-semantics table).
	for _, name := range sortedKeys(r.gaugeFns) {
		if pt.gauges == nil {
			pt.gauges = make(map[string]float64)
		}
		pt.gauges[name] = r.gaugeFns[name]()
	}
	for name, h := range r.histos {
		n := h.N()
		if n == sm.prevHistoN[name] {
			continue
		}
		w := h.WindowSince(sm.prevHistos[name])
		if pt.histos == nil {
			pt.histos = make(map[string]histo.Window)
		}
		pt.histos[name] = w
		sm.prevHistoN[name] = n
		if prev, ok := sm.prevHistos[name]; ok {
			*prev = h.Clone()
		} else {
			c := h.Clone()
			sm.prevHistos[name] = &c
		}
	}

	if sm.count == cap(sm.pts) && sm.count > 0 {
		// Ring full: overwrite the oldest point.
		sm.pts[sm.first] = pt
		sm.first = (sm.first + 1) % sm.count
		sm.dropped++
	} else {
		sm.pts = append(sm.pts, pt)
		sm.count++
	}
	if sm.publish != nil {
		sm.publish(final)
	}
}

// points returns the ring's contents in chronological order (fresh
// slice; the point maps themselves are immutable once emitted).
func (sm *Sampler) points() []point {
	out := make([]point, 0, sm.count)
	for i := 0; i < sm.count; i++ {
		out = append(out, sm.pts[(sm.first+i)%sm.count])
	}
	return out
}

// WindowSnapshot is the exported summary of one histogram's sampling
// window: per-window count, mean and percentiles (virtual ns).
type WindowSnapshot struct {
	N      uint64 `json:"n"`
	SumNs  int64  `json:"sum_ns"`
	MeanNs int64  `json:"mean_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P95Ns  int64  `json:"p95_ns"`
	P99Ns  int64  `json:"p99_ns"`
}

func snapWindow(w histo.Window) WindowSnapshot {
	return WindowSnapshot{
		N:      w.N,
		SumNs:  int64(w.Sum),
		MeanNs: int64(w.Mean()),
		P50Ns:  int64(w.Quantile(0.50)),
		P95Ns:  int64(w.Quantile(0.95)),
		P99Ns:  int64(w.Quantile(0.99)),
	}
}

// TimelinePoint is one exported window. Counters are per-window deltas
// (divide by SpanNs for a rate); gauges are the values sampled when the
// window closed; histograms summarize only the window's own samples.
type TimelinePoint struct {
	Window   int64                     `json:"window"`
	TimeNs   int64                     `json:"time_ns"`
	SpanNs   int64                     `json:"span_ns"`
	Partial  bool                      `json:"partial,omitempty"`
	Envs     int                       `json:"envs"`
	Counters map[string]uint64         `json:"counters,omitempty"`
	Gauges   map[string]float64        `json:"gauges,omitempty"`
	Histos   map[string]WindowSnapshot `json:"histograms,omitempty"`
}

// Timeline is the exported metric timeline: one point per sampling
// window that saw activity, merged across however many environments
// contributed. encoding/json sorts map keys, so identical runs marshal
// to identical bytes at any -j.
type Timeline struct {
	Schema        string          `json:"schema"`
	IntervalNs    int64           `json:"interval_ns"`
	Envs          int             `json:"envs"`
	DroppedPoints uint64          `json:"dropped_points"`
	Points        []TimelinePoint `json:"points"`
}

// TimelineSchema identifies the timeline JSON format.
const TimelineSchema = "twobssd/timeline-v1"

// mergeTimelines folds per-environment point streams into one exported
// timeline, grouping by window index. Environments all start their
// clocks at zero, so window k of one env is the same virtual interval
// as window k of another. Per window: counter deltas add, histogram
// windows merge, gauges overwrite in input order — callers pass the
// streams in a deterministic order (Collector.sortedSets) so the result
// is byte-identical regardless of scheduling.
func mergeTimelines(interval sim.Duration, streams [][]point, dropped uint64) Timeline {
	type acc struct {
		pt   point
		envs int
		hist map[string]histo.Window
	}
	byWindow := make(map[int64]*acc)
	for _, pts := range streams {
		for _, p := range pts {
			a := byWindow[p.window]
			if a == nil {
				a = &acc{pt: point{window: p.window}, hist: make(map[string]histo.Window)}
				byWindow[p.window] = a
			}
			a.envs++
			if p.timeNs > a.pt.timeNs {
				a.pt.timeNs = p.timeNs
			}
			if p.spanNs > a.pt.spanNs {
				a.pt.spanNs = p.spanNs
			}
			a.pt.partial = a.pt.partial || p.partial
			for name, d := range p.counters {
				if a.pt.counters == nil {
					a.pt.counters = make(map[string]uint64)
				}
				a.pt.counters[name] += d
			}
			for name, v := range p.gauges {
				if a.pt.gauges == nil {
					a.pt.gauges = make(map[string]float64)
				}
				a.pt.gauges[name] = v
			}
			for name, w := range p.histos {
				hw := a.hist[name]
				hw.Merge(w)
				a.hist[name] = hw
			}
		}
	}
	windows := make([]int64, 0, len(byWindow))
	for w := range byWindow {
		windows = append(windows, w)
	}
	sort.Slice(windows, func(i, j int) bool { return windows[i] < windows[j] })
	tl := Timeline{
		Schema:        TimelineSchema,
		IntervalNs:    int64(interval),
		Envs:          len(streams),
		DroppedPoints: dropped,
		Points:        make([]TimelinePoint, 0, len(windows)),
	}
	for _, w := range windows {
		a := byWindow[w]
		tp := TimelinePoint{
			Window:   a.pt.window,
			TimeNs:   a.pt.timeNs,
			SpanNs:   a.pt.spanNs,
			Partial:  a.pt.partial,
			Envs:     a.envs,
			Counters: a.pt.counters,
			Gauges:   a.pt.gauges,
		}
		if len(a.hist) > 0 {
			tp.Histos = make(map[string]WindowSnapshot, len(a.hist))
			for name, hw := range a.hist {
				tp.Histos[name] = snapWindow(hw)
			}
		}
		tl.Points = append(tl.Points, tp)
	}
	return tl
}

// Timeline exports this sampler's ring alone (one environment).
func (sm *Sampler) Timeline() Timeline {
	return mergeTimelines(sm.interval, [][]point{sm.points()}, sm.dropped)
}

// WriteJSON writes the timeline as indented JSON. Map keys are emitted
// sorted, so identical runs produce identical bytes.
func (tl Timeline) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tl)
}

// WriteCSV writes the timeline in long form, one row per (window,
// metric): kind is counter | gauge | histo. Counter rows carry the
// per-window delta and a derived per-second rate; histogram rows carry
// the window percentiles. Rows are sorted, so output is deterministic.
func (tl Timeline) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{
		"window", "time_ns", "span_ns", "kind", "name",
		"value", "rate_per_s", "n", "sum_ns", "mean_ns", "p50_ns", "p95_ns", "p99_ns",
	}); err != nil {
		return err
	}
	f := strconv.FormatInt
	u := func(v uint64) string { return strconv.FormatUint(v, 10) }
	for _, pt := range tl.Points {
		base := []string{f(pt.Window, 10), f(pt.TimeNs, 10), f(pt.SpanNs, 10)}
		row := func(kind, name string, rest ...string) error {
			rec := append(append(append([]string{}, base...), kind, name), rest...)
			for len(rec) < 13 {
				rec = append(rec, "")
			}
			return cw.Write(rec)
		}
		for _, name := range sortedKeys(pt.Counters) {
			d := pt.Counters[name]
			rate := ""
			if pt.SpanNs > 0 {
				rate = strconv.FormatFloat(float64(d)*1e9/float64(pt.SpanNs), 'g', -1, 64)
			}
			if err := row("counter", name, u(d), rate); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(pt.Gauges) {
			v := strconv.FormatFloat(pt.Gauges[name], 'g', -1, 64)
			if err := row("gauge", name, v, ""); err != nil {
				return err
			}
		}
		for _, name := range sortedKeys(pt.Histos) {
			h := pt.Histos[name]
			if err := row("histo", name, "", "",
				u(h.N), f(h.SumNs, 10), f(h.MeanNs, 10),
				f(h.P50Ns, 10), f(h.P95Ns, 10), f(h.P99Ns, 10)); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// sortedKeys returns a map's keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// canonicalJSON is the sort key helper used by the collector: the
// canonical byte form of a JSON-serializable value.
func canonicalJSON(v interface{}) string {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Sprintf("!%v", err)
	}
	return string(b)
}
