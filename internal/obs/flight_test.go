package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// TestFlightRecorderRing checks the bounded ring keeps exactly the
// newest events, in chronological order, with constant memory.
func TestFlightRecorderRing(t *testing.T) {
	env := sim.NewEnv()
	set := obs.Of(env)
	tr := set.EnableFlightRecorder(4)
	if !tr.Ring() {
		t.Fatal("flight recorder is not in ring mode")
	}
	set.Registry().Counter("ops").Add(7)
	env.Go("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			sp := tr.Begin("w", "test", "op")
			p.Sleep(10)
			sp.End()
		}
	})
	env.Run()

	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("ring holds %d events, want 4", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("ring events out of order: %d then %d", evs[i-1].TS, evs[i].TS)
		}
	}
	// The newest span ends at run end: it began at 90ns.
	if got := evs[len(evs)-1].TS; got != sim.Time(90) {
		t.Fatalf("newest event at %d, want 90", got)
	}
	if tr.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", tr.Dropped())
	}

	d := set.FlightDump("test violation")
	if d.Schema != obs.FlightSchema || d.Reason != "test violation" {
		t.Fatalf("dump header = %q %q", d.Schema, d.Reason)
	}
	if len(d.Events) != 4 || d.Events[0].Kind != "span" {
		t.Fatalf("dump events = %+v", d.Events)
	}
	if d.Metrics.Counters["ops"] != 7 {
		t.Fatalf("dump metrics ops = %d, want 7", d.Metrics.Counters["ops"])
	}

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back obs.FlightDump
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump JSON does not round-trip: %v", err)
	}
	buf.Reset()
	if err := d.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"test violation", "span", "metrics at failure", "ops"} {
		if !strings.Contains(out, want) {
			t.Fatalf("dump text missing %q:\n%s", want, out)
		}
	}
}

// TestEnableTracingUpgradesRing checks that turning on full tracing
// over an existing flight recorder keeps its events and switches modes
// in place, so components holding the tracer pointer keep recording.
func TestEnableTracingUpgradesRing(t *testing.T) {
	env := sim.NewEnv()
	set := obs.Of(env)
	ring := set.EnableFlightRecorder(4)
	env.Go("early", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			ring.Instant("t", "c", "early")
			p.Sleep(1)
		}
	})
	env.Run()

	full := set.EnableTracing()
	if full != ring {
		t.Fatal("upgrade replaced the tracer instance")
	}
	if full.Ring() {
		t.Fatal("tracer still in ring mode after EnableTracing")
	}
	env.Go("late", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			full.Instant("t", "c", "late")
			p.Sleep(1)
		}
	})
	env.Run()

	evs := full.Events()
	// 4 surviving ring events + 10 post-upgrade events, chronological.
	if len(evs) != 14 {
		t.Fatalf("events after upgrade = %d, want 14", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].TS < evs[i-1].TS {
			t.Fatalf("events out of order after upgrade at %d", i)
		}
	}
	if evs[0].Name != "early" || evs[len(evs)-1].Name != "late" {
		t.Fatalf("event names = %s..%s, want early..late", evs[0].Name, evs[len(evs)-1].Name)
	}
}

// TestFlightDumpWithoutTracer checks the dump still carries metrics
// when no recorder was enabled.
func TestFlightDumpWithoutTracer(t *testing.T) {
	env := sim.NewEnv()
	set := obs.Of(env)
	set.Registry().Counter("ops").Inc()
	d := set.FlightDump("no recorder")
	if len(d.Events) != 0 {
		t.Fatalf("dump has %d events with no tracer", len(d.Events))
	}
	if d.Metrics.Counters["ops"] != 1 {
		t.Fatal("dump missing metrics snapshot")
	}
}

// TestCollectorSkipsRingTracers checks that campaign flight recorders
// do not leak into the -trace Chrome export.
func TestCollectorSkipsRingTracers(t *testing.T) {
	c := obs.NewCollector(false)
	env := sim.NewEnv()
	set := obs.Of(env)
	tr := set.EnableFlightRecorder(8)
	env.Go("w", func(p *sim.Proc) { tr.Instant("t", "c", "x") })
	env.Run()
	c.Collect(set)
	var buf bytes.Buffer
	if err := c.WriteTraceJSON(&buf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	if strings.Contains(buf.String(), "\"x\"") {
		t.Fatalf("ring tracer events leaked into trace export:\n%s", buf.String())
	}
}
