// Package obs is the simulator-wide observability layer: a metrics
// registry (named counters, gauges and latency histograms that snapshot
// to a stable JSON/text report) plus a span tracer that exports Chrome
// trace-event JSON viewable in Perfetto or chrome://tracing (trace.go).
//
// One Set hangs off every sim.Env (via the Env attachment slot);
// components fetch it with Of(env) at construction and register their
// metrics once. Because the sim kernel is single-threaded by
// construction, nothing here takes a lock, and the whole layer is built
// so the hot path costs nothing when tracing is disabled: a nil *Tracer
// is a valid tracer whose Begin/End/Instant/Count are allocation-free
// no-ops, and counters are bare uint64 adds.
//
// The paper's evaluation (Figs 7-10) attributes latency to pipeline
// stages — host submission, firmware, NAND array, PCIe link, BA-buffer
// pin/flush; this layer is what makes those attributions measurable on
// the simulated stack rather than asserted.
//
// # Merge semantics
//
// When registries are folded across environments (Registry.MergeInto,
// Collector.MergedSnapshot, timeline merges), each metric kind has a
// fixed rule:
//
//   - Counters AGGREGATE: values (and per-window deltas) add.
//   - Histograms AGGREGATE: bucket counts, sums and extremes merge.
//   - Gauges OVERWRITE: the value from the last-merged registry wins.
//     The collector visits environments in a deterministic sorted
//     order, so the winner is schedule-independent — but a gauge in a
//     merged report is one environment's reading, not a fleet total.
//   - GaugeFuncs OVERWRITE like gauges. They are evaluated at
//     snapshot/merge time in sorted name order, so callbacks with side
//     effects observe a deterministic evaluation sequence.
//
// Beyond snapshots, the package provides virtual-time metric timelines
// (timeline.go), a bounded always-on flight recorder for post-mortem
// dumps (flight.go), and an HTTP serving layer — Prometheus text
// exposition, timeline JSON and SSE live progress (serve.go).
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"twobssd/internal/histo"
	"twobssd/internal/sim"
)

// Counter is a monotonically increasing metric. The nil Counter is a
// valid no-op (components built without a registry still work).
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v += n
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a point-in-time value. The nil Gauge is a valid no-op.
type Gauge struct{ v float64 }

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.v = v
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Registry holds named metrics. Metrics are get-or-create by name:
// registering the same name twice returns the same instance, so
// components constructed repeatedly in one environment aggregate
// (Prometheus-style series identity).
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	gaugeFns map[string]func() float64
	histos   map[string]*histo.H
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		gaugeFns: make(map[string]func() float64),
		histos:   make(map[string]*histo.H),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if g, ok := r.gauges[name]; ok {
		return g
	}
	g := &Gauge{}
	r.gauges[name] = g
	return g
}

// GaugeFunc registers a gauge sampled at snapshot time (occupancy
// fractions, queue depths). Re-registering a name replaces the
// function (the newest component instance wins).
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.gaugeFns[name] = fn
}

// Histo returns the named latency histogram, creating it on first use.
func (r *Registry) Histo(name string) *histo.H {
	if h, ok := r.histos[name]; ok {
		return h
	}
	h := &histo.H{}
	r.histos[name] = h
	return h
}

// MergeInto folds this registry's metrics into dst following the
// package's merge-semantics table: counters and histograms aggregate,
// gauges and sampled gauge funcs overwrite. Gauge funcs are evaluated
// here, in sorted name order — snapshot-time sampling must not depend
// on map iteration order (callbacks may have side effects, and two
// merges of the same registry must agree).
func (r *Registry) MergeInto(dst *Registry) {
	for name, c := range r.counters {
		dst.Counter(name).Add(c.Value())
	}
	for name, g := range r.gauges {
		dst.Gauge(name).Set(g.Value())
	}
	for _, name := range sortedKeys(r.gaugeFns) {
		dst.Gauge(name).Set(r.gaugeFns[name]())
	}
	for name, h := range r.histos {
		dst.Histo(name).Merge(h)
	}
}

// HistoSnapshot is the exported summary of one latency histogram. All
// durations are virtual nanoseconds.
type HistoSnapshot struct {
	N      uint64 `json:"n"`
	SumNs  int64  `json:"sum_ns"`
	MeanNs int64  `json:"mean_ns"`
	MinNs  int64  `json:"min_ns"`
	MaxNs  int64  `json:"max_ns"`
	P50Ns  int64  `json:"p50_ns"`
	P99Ns  int64  `json:"p99_ns"`
	P999Ns int64  `json:"p999_ns"`
}

// Snapshot is a stable, JSON-serializable view of a registry.
// encoding/json sorts map keys, so two snapshots of identical runs
// marshal to identical bytes.
type Snapshot struct {
	VirtualTimeNs int64                    `json:"virtual_time_ns"`
	Counters      map[string]uint64        `json:"counters"`
	Gauges        map[string]float64       `json:"gauges"`
	Histograms    map[string]HistoSnapshot `json:"histograms"`
}

func snapHisto(h *histo.H) HistoSnapshot {
	return HistoSnapshot{
		N:      h.N(),
		SumNs:  int64(h.Sum()),
		MeanNs: int64(h.Mean()),
		MinNs:  int64(h.Min()),
		MaxNs:  int64(h.Max()),
		P50Ns:  int64(h.P50()),
		P99Ns:  int64(h.P99()),
		P999Ns: int64(h.P999()),
	}
}

// SnapshotAt captures every metric, stamping the report with the given
// virtual time (the environment's Now, or a total across environments).
func (r *Registry) SnapshotAt(now sim.Time) Snapshot {
	s := Snapshot{
		VirtualTimeNs: int64(now),
		Counters:      make(map[string]uint64, len(r.counters)),
		Gauges:        make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
		Histograms:    make(map[string]HistoSnapshot, len(r.histos)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for _, name := range sortedKeys(r.gaugeFns) {
		s.Gauges[name] = r.gaugeFns[name]()
	}
	for name, h := range r.histos {
		s.Histograms[name] = snapHisto(h)
	}
	return s
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteText writes a sorted human-readable report.
func (s Snapshot) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "virtual_time: %v\n", sim.Duration(s.VirtualTimeNs)); err != nil {
		return err
	}
	names := make([]string, 0, len(s.Counters))
	for n := range s.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "counter %-44s %d\n", n, s.Counters[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-44s %g\n", n, s.Gauges[n]); err != nil {
			return err
		}
	}
	names = names[:0]
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if _, err := fmt.Fprintf(w, "histo   %-44s n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v\n",
			n, h.N, sim.Duration(h.MeanNs), sim.Duration(h.P50Ns),
			sim.Duration(h.P99Ns), sim.Duration(h.P999Ns), sim.Duration(h.MaxNs)); err != nil {
			return err
		}
	}
	return nil
}

// Set is the observability state of one simulation environment: its
// registry plus (when enabled) its span tracer.
type Set struct {
	env     *sim.Env
	reg     *Registry
	tracer  *Tracer
	sampler *Sampler
	aux     interface{}
}

// OnNewSet, when non-nil, is invoked each time Of lazily creates a Set
// for an environment. cmd/bench2b installs a Collector hook here so any
// paper experiment — however many environments it builds internally —
// emits metrics and trace artifacts. Set it before the environments are
// created; it runs on the goroutine calling Of.
var OnNewSet func(*Set)

// Of returns the environment's observability set, creating and
// attaching one on first use. Metrics are therefore always live (a
// counter is just a uint64 add); tracing stays off until EnableTracing.
func Of(env *sim.Env) *Set {
	if v := env.Attachment(); v != nil {
		if s, ok := v.(*Set); ok {
			return s
		}
	}
	s := &Set{env: env, reg: NewRegistry()}
	env.SetAttachment(s)
	if OnNewSet != nil {
		OnNewSet(s)
	}
	return s
}

// Env returns the environment this set observes.
func (s *Set) Env() *sim.Env { return s.env }

// Registry returns the metrics registry.
func (s *Set) Registry() *Registry { return s.reg }

// Tracer returns the span tracer, or nil when tracing is disabled.
// The nil tracer is valid: every method is an allocation-free no-op.
func (s *Set) Tracer() *Tracer { return s.tracer }

// EnableTracing switches span recording on (idempotent) and returns the
// tracer. Call it before constructing the components to be traced —
// they read the tracer through the Set on every operation, so enabling
// late also works, it just misses earlier events. If the environment
// already has a flight recorder, it is upgraded in place to a full
// tracer, keeping the events recorded so far.
func (s *Set) EnableTracing() *Tracer {
	if s.tracer == nil {
		s.tracer = newTracer(s.env)
	} else if s.tracer.ring {
		s.tracer.events = s.tracer.Events()
		s.tracer.ring = false
		s.tracer.head = 0
		s.tracer.maxEvents = DefaultMaxEvents
	}
	return s.tracer
}

// SetAux attaches an opaque companion value to the set. The sim.Env
// has exactly one attachment slot (held by this Set); cross-cutting
// layers that also need per-env state — internal/fault is the user —
// ride along here instead of competing for the slot.
func (s *Set) SetAux(v interface{}) { s.aux = v }

// Aux returns the companion value installed by SetAux, or nil.
func (s *Set) Aux() interface{} { return s.aux }

// Snapshot captures the registry at the environment's current virtual
// time.
func (s *Set) Snapshot() Snapshot { return s.reg.SnapshotAt(s.env.Now()) }
