package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"twobssd/internal/sim"
)

// The flight recorder: a bounded, always-affordable ring of the most
// recent trace events of one environment, captured through the same
// instrumentation points as the full tracer but with constant memory —
// so reliability campaigns can leave it on for every crash point, fuzz
// seed and integrity check, and still hand over "the last N spans
// before the violation" plus metrics-at-failure when one finally
// fires. "640 crash points, 0 lost" is a result; a flight dump is what
// makes point 641 debuggable.

// DefaultFlightDepth is the ring capacity used when EnableFlightRecorder
// is given a non-positive depth.
const DefaultFlightDepth = 256

// EnableFlightRecorder switches this environment's tracer into
// flight-recorder mode: a ring of the last n events (spans, instants,
// counter samples), overwriting the oldest past capacity. If full
// tracing is already enabled the full tracer doubles as the recorder —
// it already holds everything — and is returned unchanged. Idempotent.
func (s *Set) EnableFlightRecorder(n int) *Tracer {
	if s.tracer != nil {
		return s.tracer
	}
	if n <= 0 {
		n = DefaultFlightDepth
	}
	s.tracer = newRingTracer(s.env, n)
	return s.tracer
}

// FlightEvent is one exported flight-recorder event.
type FlightEvent struct {
	TimeNs int64   `json:"time_ns"`
	DurNs  int64   `json:"dur_ns,omitempty"`
	Kind   string  `json:"kind"` // span | instant | count
	Track  string  `json:"track"`
	Cat    string  `json:"cat,omitempty"`
	Name   string  `json:"name"`
	Value  float64 `json:"value,omitempty"`
}

// FlightDump is the post-mortem artifact of one environment: why it
// was taken, the full metrics registry at that moment, and the most
// recent trace events in chronological order.
type FlightDump struct {
	Schema  string        `json:"schema"`
	Reason  string        `json:"reason"`
	Events  []FlightEvent `json:"events"`
	Metrics Snapshot      `json:"metrics"`
}

// FlightSchema identifies the flight-dump JSON format.
const FlightSchema = "twobssd/flight-v1"

// FlightDump captures the environment's current flight-recorder state:
// metrics at this instant plus the recorded event tail. Works with
// either tracer mode (a full tracer contributes its newest
// DefaultFlightDepth events). With no tracer at all the dump still
// carries the metrics snapshot.
func (s *Set) FlightDump(reason string) FlightDump {
	d := FlightDump{Schema: FlightSchema, Reason: reason, Metrics: s.Snapshot()}
	t := s.tracer
	if t == nil {
		return d
	}
	evs := t.Events()
	if !t.ring && len(evs) > DefaultFlightDepth {
		evs = evs[len(evs)-DefaultFlightDepth:]
	}
	d.Events = make([]FlightEvent, 0, len(evs))
	for _, ev := range evs {
		fe := FlightEvent{
			TimeNs: int64(ev.TS),
			Track:  t.Track(ev.TID),
			Cat:    ev.Cat,
			Name:   ev.Name,
		}
		switch ev.Ph {
		case 'X':
			fe.Kind, fe.DurNs = "span", int64(ev.Dur)
		case 'i':
			fe.Kind = "instant"
		case 'C':
			fe.Kind, fe.Value = "count", ev.Val
		default:
			fe.Kind = string(ev.Ph)
		}
		d.Events = append(d.Events, fe)
	}
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// WriteText renders the dump for inclusion in a campaign report:
// the event tail first (most recent last), then the metric lines.
func (d FlightDump) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "flight recorder: %s (%d events)\n", d.Reason, len(d.Events)); err != nil {
		return err
	}
	for _, ev := range d.Events {
		switch ev.Kind {
		case "span":
			if _, err := fmt.Fprintf(w, "  %12d ns span    %-24s %s/%s dur=%v\n",
				ev.TimeNs, ev.Track, ev.Cat, ev.Name, sim.Duration(ev.DurNs)); err != nil {
				return err
			}
		case "count":
			if _, err := fmt.Fprintf(w, "  %12d ns count   %-24s %s=%g\n",
				ev.TimeNs, ev.Track, ev.Name, ev.Value); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "  %12d ns %-7s %-24s %s/%s\n",
				ev.TimeNs, ev.Kind, ev.Track, ev.Cat, ev.Name); err != nil {
				return err
			}
		}
	}
	if _, err := io.WriteString(w, "metrics at failure:\n"); err != nil {
		return err
	}
	return d.Metrics.WriteText(w)
}
