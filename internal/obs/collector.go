package obs

import (
	"io"
	"sort"
	"sync"

	"twobssd/internal/sim"
)

// Collector aggregates the observability sets of every environment
// created while it is installed. A paper experiment typically builds
// many environments (one per data point, one per device under
// comparison); the collector is how `bench2b -metrics/-trace` turns all
// of them into one metrics report and one Chrome trace in which each
// environment is a separate trace process.
//
// The mutex guards registration: with the parallel experiment runner
// (bench2b -j), environments are created concurrently from many worker
// goroutines. The per-event hot paths stay lock-free inside each
// single-threaded environment; only the Collect call at environment
// construction synchronizes.
type Collector struct {
	mu      sync.Mutex
	tracing bool
	prev    func(*Set)
	sets    []*Set

	sampleEvery  sim.Duration
	samplePoints int

	// OnSampler, when non-nil, observes every sampler the collector
	// starts (the serving layer hooks live publication here). Set it
	// before Install, from one goroutine.
	OnSampler func(*Sampler)
}

// NewCollector returns a collector; with tracing true, every collected
// environment gets span tracing enabled at creation.
func NewCollector(tracing bool) *Collector {
	return &Collector{tracing: tracing}
}

// EnableSampling makes the collector start a timeline sampler (at the
// given virtual cadence, with the given ring capacity; non-positive
// values select the obs defaults) on every environment it collects.
// Call before Install.
func (c *Collector) EnableSampling(every sim.Duration, maxPoints int) {
	if every <= 0 {
		every = DefaultSampleInterval
	}
	if maxPoints <= 0 {
		maxPoints = DefaultMaxPoints
	}
	c.sampleEvery, c.samplePoints = every, maxPoints
}

// Install hooks the collector into OnNewSet so every subsequently
// created environment is collected. It chains to any previously
// installed hook; Uninstall restores it.
func (c *Collector) Install() {
	c.prev = OnNewSet
	OnNewSet = func(s *Set) {
		c.Collect(s)
		if c.prev != nil {
			c.prev(s)
		}
	}
}

// Uninstall restores the previous OnNewSet hook.
func (c *Collector) Uninstall() { OnNewSet = c.prev }

// Collect registers one set explicitly (for environments created before
// Install, or in tests). Safe to call from concurrent experiment
// workers.
func (c *Collector) Collect(s *Set) {
	if c.tracing {
		s.EnableTracing()
	}
	if c.sampleEvery > 0 {
		sm := s.StartSampler(c.sampleEvery, c.samplePoints)
		if c.OnSampler != nil {
			c.OnSampler(sm)
		}
	}
	c.mu.Lock()
	c.sets = append(c.sets, s)
	c.mu.Unlock()
}

// Sets returns the collected sets in collection order. Under the
// parallel runner that order depends on goroutine scheduling; use
// sortedSets (via MergedSnapshot / WriteTraceJSON) for deterministic
// reports.
func (c *Collector) Sets() []*Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Set(nil), c.sets...)
}

// sortedSets returns the collected sets in a deterministic order
// independent of collection (hence goroutine-scheduling) order: sets
// sort by their canonical snapshot JSON plus, when sampling is on,
// their timeline JSON. encoding/json emits map keys sorted, so the key
// is canonical; two sets can tie only when both artifacts are
// byte-identical, in which case their contributions to any fold are
// identical too and the tie order cannot matter.
func (c *Collector) sortedSets() []*Set {
	sets := c.Sets()
	keys := make([]string, len(sets))
	for i, s := range sets {
		key := canonicalJSON(s.Snapshot())
		if sm := s.Sampler(); sm != nil {
			key += "\x00" + canonicalJSON(sm.Timeline())
		}
		keys[i] = key
	}
	idx := make([]int, len(sets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]*Set, len(sets))
	for i, j := range idx {
		out[i] = sets[j]
	}
	return out
}

// MergedSnapshot folds every collected registry into one snapshot.
// Counters and histograms aggregate across environments; the stamp is
// the total virtual time simulated (the sum of every environment's
// clock). The fold visits sets in sorted order, so the result is
// bit-identical no matter how experiment workers were scheduled.
func (c *Collector) MergedSnapshot() Snapshot {
	merged := NewRegistry()
	var total sim.Time
	for _, s := range c.sortedSets() {
		s.Registry().MergeInto(merged)
		total += s.Env().Now()
	}
	return merged.SnapshotAt(total)
}

// TotalEvents sums the dispatched-event counts of every collected
// environment — the denominator of the benchmark harness's events/sec
// and allocs/event figures.
func (c *Collector) TotalEvents() uint64 {
	var n uint64
	for _, s := range c.Sets() {
		n += s.Env().Events()
	}
	return n
}

// TotalVirtual sums every collected environment's clock: the total
// virtual time the run simulated.
func (c *Collector) TotalVirtual() sim.Time {
	var t sim.Time
	for _, s := range c.Sets() {
		t += s.Env().Now()
	}
	return t
}

// WriteMetricsJSON writes the merged metrics snapshot as JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	return c.MergedSnapshot().WriteJSON(w)
}

// MergedTimeline folds every sampled environment's timeline into one:
// window k aggregates window k of each environment (all virtual clocks
// start at zero). Counter deltas add and histogram windows merge;
// gauges overwrite in sorted-set order. Environments are visited in
// the same deterministic order as MergedSnapshot, so the timeline is
// byte-identical no matter how experiment workers were scheduled.
func (c *Collector) MergedTimeline() Timeline {
	var streams [][]point
	var dropped uint64
	interval := c.sampleEvery
	for _, s := range c.sortedSets() {
		sm := s.Sampler()
		if sm == nil {
			continue
		}
		if interval <= 0 {
			interval = sm.interval
		}
		streams = append(streams, sm.points())
		dropped += sm.dropped
	}
	return mergeTimelines(interval, streams, dropped)
}

// WriteTimelineJSON writes the merged timeline as JSON.
func (c *Collector) WriteTimelineJSON(w io.Writer) error {
	return c.MergedTimeline().WriteJSON(w)
}

// WriteTimelineCSV writes the merged timeline in long-form CSV.
func (c *Collector) WriteTimelineCSV(w io.Writer) error {
	return c.MergedTimeline().WriteCSV(w)
}

// WriteTraceJSON writes one Chrome trace combining every collected
// environment's full tracer (environments without tracing — including
// those carrying only a bounded flight-recorder ring — are skipped),
// in the same deterministic set order as MergedSnapshot.
func (c *Collector) WriteTraceJSON(w io.Writer) error {
	var parts []TracePart
	for _, s := range c.sortedSets() {
		if t := s.Tracer(); t != nil && !t.Ring() {
			parts = append(parts, TracePart{Tracer: t})
		}
	}
	return WriteTraceJSON(w, parts)
}
