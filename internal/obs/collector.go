package obs

import (
	"io"
	"sync"

	"twobssd/internal/sim"
)

// Collector aggregates the observability sets of every environment
// created while it is installed. A paper experiment typically builds
// many environments (one per data point, one per device under
// comparison); the collector is how `bench2b -metrics/-trace` turns all
// of them into one metrics report and one Chrome trace in which each
// environment is a separate trace process.
//
// The mutex guards only registration (Of is called at component
// construction time); the per-event hot paths stay lock-free inside
// each single-threaded environment.
type Collector struct {
	mu      sync.Mutex
	tracing bool
	prev    func(*Set)
	sets    []*Set
}

// NewCollector returns a collector; with tracing true, every collected
// environment gets span tracing enabled at creation.
func NewCollector(tracing bool) *Collector {
	return &Collector{tracing: tracing}
}

// Install hooks the collector into OnNewSet so every subsequently
// created environment is collected. It chains to any previously
// installed hook; Uninstall restores it.
func (c *Collector) Install() {
	c.prev = OnNewSet
	OnNewSet = func(s *Set) {
		c.Collect(s)
		if c.prev != nil {
			c.prev(s)
		}
	}
}

// Uninstall restores the previous OnNewSet hook.
func (c *Collector) Uninstall() { OnNewSet = c.prev }

// Collect registers one set explicitly (for environments created before
// Install, or in tests).
func (c *Collector) Collect(s *Set) {
	if c.tracing {
		s.EnableTracing()
	}
	c.mu.Lock()
	c.sets = append(c.sets, s)
	c.mu.Unlock()
}

// Sets returns the collected sets in creation order.
func (c *Collector) Sets() []*Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Set(nil), c.sets...)
}

// MergedSnapshot folds every collected registry into one snapshot.
// Counters and histograms aggregate across environments; the stamp is
// the total virtual time simulated (the sum of every environment's
// clock).
func (c *Collector) MergedSnapshot() Snapshot {
	merged := NewRegistry()
	var total sim.Time
	for _, s := range c.Sets() {
		s.Registry().MergeInto(merged)
		total += s.Env().Now()
	}
	return merged.SnapshotAt(total)
}

// WriteMetricsJSON writes the merged metrics snapshot as JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	return c.MergedSnapshot().WriteJSON(w)
}

// WriteTraceJSON writes one Chrome trace combining every collected
// environment's tracer (environments without tracing are skipped).
func (c *Collector) WriteTraceJSON(w io.Writer) error {
	var parts []TracePart
	for _, s := range c.Sets() {
		if s.Tracer() != nil {
			parts = append(parts, TracePart{Tracer: s.Tracer()})
		}
	}
	return WriteTraceJSON(w, parts)
}
