package obs

import (
	"encoding/json"
	"io"
	"sort"
	"sync"

	"twobssd/internal/sim"
)

// Collector aggregates the observability sets of every environment
// created while it is installed. A paper experiment typically builds
// many environments (one per data point, one per device under
// comparison); the collector is how `bench2b -metrics/-trace` turns all
// of them into one metrics report and one Chrome trace in which each
// environment is a separate trace process.
//
// The mutex guards registration: with the parallel experiment runner
// (bench2b -j), environments are created concurrently from many worker
// goroutines. The per-event hot paths stay lock-free inside each
// single-threaded environment; only the Collect call at environment
// construction synchronizes.
type Collector struct {
	mu      sync.Mutex
	tracing bool
	prev    func(*Set)
	sets    []*Set
}

// NewCollector returns a collector; with tracing true, every collected
// environment gets span tracing enabled at creation.
func NewCollector(tracing bool) *Collector {
	return &Collector{tracing: tracing}
}

// Install hooks the collector into OnNewSet so every subsequently
// created environment is collected. It chains to any previously
// installed hook; Uninstall restores it.
func (c *Collector) Install() {
	c.prev = OnNewSet
	OnNewSet = func(s *Set) {
		c.Collect(s)
		if c.prev != nil {
			c.prev(s)
		}
	}
}

// Uninstall restores the previous OnNewSet hook.
func (c *Collector) Uninstall() { OnNewSet = c.prev }

// Collect registers one set explicitly (for environments created before
// Install, or in tests). Safe to call from concurrent experiment
// workers.
func (c *Collector) Collect(s *Set) {
	if c.tracing {
		s.EnableTracing()
	}
	c.mu.Lock()
	c.sets = append(c.sets, s)
	c.mu.Unlock()
}

// Sets returns the collected sets in collection order. Under the
// parallel runner that order depends on goroutine scheduling; use
// sortedSets (via MergedSnapshot / WriteTraceJSON) for deterministic
// reports.
func (c *Collector) Sets() []*Set {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Set(nil), c.sets...)
}

// sortedSets returns the collected sets in a deterministic order
// independent of collection (hence goroutine-scheduling) order: sets
// sort by their canonical snapshot JSON. encoding/json emits map keys
// sorted, so the key is canonical; two sets can tie only when their
// snapshots are byte-identical, in which case their contributions to
// any fold are identical too and the tie order cannot matter.
func (c *Collector) sortedSets() []*Set {
	sets := c.Sets()
	keys := make([]string, len(sets))
	for i, s := range sets {
		b, err := json.Marshal(s.Snapshot())
		if err != nil {
			// Snapshot marshaling cannot fail (plain maps of numbers);
			// fall back to collection order rather than dropping data.
			return sets
		}
		keys[i] = string(b)
	}
	idx := make([]int, len(sets))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return keys[idx[a]] < keys[idx[b]] })
	out := make([]*Set, len(sets))
	for i, j := range idx {
		out[i] = sets[j]
	}
	return out
}

// MergedSnapshot folds every collected registry into one snapshot.
// Counters and histograms aggregate across environments; the stamp is
// the total virtual time simulated (the sum of every environment's
// clock). The fold visits sets in sorted order, so the result is
// bit-identical no matter how experiment workers were scheduled.
func (c *Collector) MergedSnapshot() Snapshot {
	merged := NewRegistry()
	var total sim.Time
	for _, s := range c.sortedSets() {
		s.Registry().MergeInto(merged)
		total += s.Env().Now()
	}
	return merged.SnapshotAt(total)
}

// TotalEvents sums the dispatched-event counts of every collected
// environment — the denominator of the benchmark harness's events/sec
// and allocs/event figures.
func (c *Collector) TotalEvents() uint64 {
	var n uint64
	for _, s := range c.Sets() {
		n += s.Env().Events()
	}
	return n
}

// TotalVirtual sums every collected environment's clock: the total
// virtual time the run simulated.
func (c *Collector) TotalVirtual() sim.Time {
	var t sim.Time
	for _, s := range c.Sets() {
		t += s.Env().Now()
	}
	return t
}

// WriteMetricsJSON writes the merged metrics snapshot as JSON.
func (c *Collector) WriteMetricsJSON(w io.Writer) error {
	return c.MergedSnapshot().WriteJSON(w)
}

// WriteTraceJSON writes one Chrome trace combining every collected
// environment's tracer (environments without tracing are skipped),
// in the same deterministic set order as MergedSnapshot.
func (c *Collector) WriteTraceJSON(w io.Writer) error {
	var parts []TracePart
	for _, s := range c.sortedSets() {
		if s.Tracer() != nil {
			parts = append(parts, TracePart{Tracer: s.Tracer()})
		}
	}
	return WriteTraceJSON(w, parts)
}
