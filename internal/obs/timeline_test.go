package obs_test

import (
	"bytes"
	"testing"

	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// TestSamplerWindows drives a hand-built event schedule through a
// sampler with a 1µs window and checks the exact window contents: a
// window's point reflects precisely the events that completed inside
// it, and the run-end flush emits a final partial window.
func TestSamplerWindows(t *testing.T) {
	env := sim.NewEnv()
	set := obs.Of(env)
	sm := set.StartSampler(sim.Duration(1000), 16)
	r := set.Registry()
	c := r.Counter("ops")
	r.Gauge("depth").Set(1)
	env.Go("w", func(p *sim.Proc) {
		p.Sleep(100)
		c.Inc() // t=100, window 0
		p.Sleep(500)
		c.Inc() // t=600, window 0
		p.Sleep(500)
		c.Inc() // t=1100, window 1
		r.Histo("lat").Observe(sim.Duration(42))
		p.Sleep(1400)
		c.Inc() // t=2500, window 2 (partial: run ends here)
	})
	env.Run()

	tl := sm.Timeline()
	if len(tl.Points) != 3 {
		t.Fatalf("points = %d, want 3: %+v", len(tl.Points), tl.Points)
	}
	want := []struct {
		window, timeNs, spanNs int64
		delta                  uint64
		partial                bool
	}{
		{0, 1000, 1000, 2, false},
		{1, 2000, 1000, 1, false},
		{2, 2500, 500, 1, true},
	}
	for i, w := range want {
		pt := tl.Points[i]
		if pt.Window != w.window || pt.TimeNs != w.timeNs || pt.SpanNs != w.spanNs {
			t.Fatalf("point %d = window %d time %d span %d, want %d/%d/%d",
				i, pt.Window, pt.TimeNs, pt.SpanNs, w.window, w.timeNs, w.spanNs)
		}
		if pt.Counters["ops"] != w.delta {
			t.Fatalf("point %d ops delta = %d, want %d", i, pt.Counters["ops"], w.delta)
		}
		if pt.Partial != w.partial {
			t.Fatalf("point %d partial = %v, want %v", i, pt.Partial, w.partial)
		}
		if pt.Gauges["depth"] != 1 {
			t.Fatalf("point %d gauge depth = %v, want 1", i, pt.Gauges["depth"])
		}
	}
	// The t=1100 observation lands in window 1 and nowhere else.
	if h, ok := tl.Points[1].Histos["lat"]; !ok || h.N != 1 {
		t.Fatalf("window 1 lat histo = %+v, want n=1", tl.Points[1].Histos)
	}
	if _, ok := tl.Points[0].Histos["lat"]; ok {
		t.Fatal("window 0 carries a histo window before any observation")
	}
	if _, ok := tl.Points[2].Histos["lat"]; ok {
		t.Fatal("window 2 carries a histo window with no new samples")
	}
	if tl.DroppedPoints != 0 {
		t.Fatalf("dropped = %d, want 0", tl.DroppedPoints)
	}
}

// TestSamplerRingDrop overflows the point ring and checks that the
// newest windows survive and the drop count is reported.
func TestSamplerRingDrop(t *testing.T) {
	env := sim.NewEnv()
	set := obs.Of(env)
	sm := set.StartSampler(sim.Duration(10), 4)
	c := set.Registry().Counter("ops")
	env.Go("w", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(10)
			c.Inc()
		}
	})
	env.Run()

	tl := sm.Timeline()
	if len(tl.Points) != 4 {
		t.Fatalf("ring kept %d points, want 4", len(tl.Points))
	}
	if tl.DroppedPoints == 0 {
		t.Fatal("ring overflow reported no drops")
	}
	for i := 1; i < len(tl.Points); i++ {
		if tl.Points[i].Window <= tl.Points[i-1].Window {
			t.Fatalf("points out of order: %d then %d",
				tl.Points[i-1].Window, tl.Points[i].Window)
		}
	}
	// The newest window must be the final one.
	last := tl.Points[len(tl.Points)-1]
	if !last.Partial && last.TimeNs != int64(env.Now()) {
		t.Fatalf("last point time %d, want run end %d", last.TimeNs, int64(env.Now()))
	}
}

// sampledDeviceRun drives the standard small block workload with
// sampling on and returns timeline JSON and CSV bytes.
func sampledDeviceRun(t *testing.T) ([]byte, []byte) {
	t.Helper()
	env := sim.NewEnv()
	sm := obs.Of(env).StartSampler(sim.Microsecond, 0)
	dev := device.New(env, device.ULLSSD())
	env.Go("w", func(p *sim.Proc) {
		ps := dev.PageSize()
		page := make([]byte, ps)
		for i := 0; i < 16; i++ {
			page[0] = byte(i)
			if err := dev.WritePages(p, ftl.LBA(i), page); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if err := dev.Drain(p); err != nil {
			t.Errorf("drain: %v", err)
		}
		for i := 0; i < 16; i++ {
			if _, err := dev.ReadPages(p, ftl.LBA(i), 1); err != nil {
				t.Errorf("read: %v", err)
			}
		}
	})
	env.Run()
	var js, cs bytes.Buffer
	if err := sm.Timeline().WriteJSON(&js); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if err := sm.Timeline().WriteCSV(&cs); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	return js.Bytes(), cs.Bytes()
}

// TestTimelineDeterministic checks that identical runs export
// byte-identical timeline JSON and CSV.
func TestTimelineDeterministic(t *testing.T) {
	j1, c1 := sampledDeviceRun(t)
	j2, c2 := sampledDeviceRun(t)
	if !bytes.Equal(j1, j2) {
		t.Fatalf("identical runs produced different timeline JSON:\n%s\n---\n%s", j1, j2)
	}
	if !bytes.Equal(c1, c2) {
		t.Fatalf("identical runs produced different timeline CSV:\n%s\n---\n%s", c1, c2)
	}
	if len(j1) == 0 || !bytes.Contains(j1, []byte(obs.TimelineSchema)) {
		t.Fatalf("timeline JSON carries no schema: %s", j1)
	}
}

// mergedRun builds two environments with overlapping metrics and folds
// them through a collector, optionally reversing collection order.
func mergedRun(t *testing.T, reversed bool) []byte {
	t.Helper()
	c := obs.NewCollector(false)
	c.EnableSampling(sim.Duration(10), 0)
	build := func(inc uint64, gauge float64) *sim.Env {
		env := sim.NewEnv()
		set := obs.Of(env)
		ctr := set.Registry().Counter("shared.ops")
		set.Registry().Gauge("shared.depth").Set(gauge)
		env.Go("w", func(p *sim.Proc) {
			p.Sleep(5)
			ctr.Add(inc)
			p.Sleep(10)
			ctr.Add(inc)
		})
		return env
	}
	a, b := build(1, 10), build(2, 20)
	if reversed {
		c.Collect(obs.Of(b))
		c.Collect(obs.Of(a))
	} else {
		c.Collect(obs.Of(a))
		c.Collect(obs.Of(b))
	}
	a.Run()
	b.Run()
	var buf bytes.Buffer
	if err := c.WriteTimelineJSON(&buf); err != nil {
		t.Fatalf("WriteTimelineJSON: %v", err)
	}
	return buf.Bytes()
}

// TestCollectorMergedTimeline checks the cross-environment fold:
// counter deltas add per window, both environments are counted, and the
// merged bytes are independent of collection order (the parallel
// runner's schedule).
func TestCollectorMergedTimeline(t *testing.T) {
	fwd := mergedRun(t, false)
	rev := mergedRun(t, true)
	if !bytes.Equal(fwd, rev) {
		t.Fatalf("merge depends on collection order:\n%s\n---\n%s", fwd, rev)
	}

	c := obs.NewCollector(false)
	c.EnableSampling(sim.Duration(10), 0)
	env := sim.NewEnv()
	set := obs.Of(env)
	ctr := set.Registry().Counter("shared.ops")
	env.Go("w", func(p *sim.Proc) {
		p.Sleep(5)
		ctr.Add(3)
		p.Sleep(10)
		ctr.Add(3)
	})
	c.Collect(set)
	env.Run()
	tl := c.MergedTimeline()
	if tl.Envs != 1 || len(tl.Points) == 0 {
		t.Fatalf("merged timeline envs=%d points=%d", tl.Envs, len(tl.Points))
	}
	var total uint64
	for _, pt := range tl.Points {
		total += pt.Counters["shared.ops"]
	}
	if total != 6 {
		t.Fatalf("summed deltas = %d, want 6", total)
	}
}

// TestSamplerOffNoAllocOverhead asserts the satellite guarantee: with
// the sampler disabled, the observability layer adds zero steady-state
// allocations to a run — an environment with its Set attached allocates
// exactly as much as the same workload allocated on its previous run.
func TestSamplerOffNoAllocOverhead(t *testing.T) {
	run := func(withSet bool) float64 {
		return testing.AllocsPerRun(10, func() {
			env := sim.NewEnv()
			var c *obs.Counter
			if withSet {
				c = obs.Of(env).Registry().Counter("ops")
			}
			env.Go("w", func(p *sim.Proc) {
				for i := 0; i < 200; i++ {
					p.Sleep(10)
					c.Inc()
				}
			})
			env.Run()
		})
	}
	base := run(false)
	withSet := run(true)
	// The with-set run performs a constant number of extra allocations
	// (the Set, the registry, one counter); what must NOT appear is any
	// per-event cost from the disabled sampler tick check.
	const setupAllowance = 16
	if withSet > base+setupAllowance {
		t.Fatalf("sampler-off run allocates %.0f objects vs %.0f baseline — per-event overhead leaked in", withSet, base)
	}
}
