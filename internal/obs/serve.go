package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"twobssd/internal/histo"
	"twobssd/internal/sim"
)

// The serving layer: bench2b -listen exposes a live view of a running
// (or finished) experiment batch over HTTP — Prometheus text exposition
// at /metrics, the merged virtual-time timeline at /timeline, and
// Server-Sent Events progress at /progress.
//
// The simulation side is single-threaded per environment and holds no
// locks on its hot path; HTTP readers arrive on arbitrary goroutines at
// arbitrary times. The bridge is a published-snapshot hand-off: each
// sampler gets one atomic.Pointer slot, and its publish hook (running
// inside the simulation's own goroutine, between events) builds an
// immutable Published value — cumulative counters and gauges, cloned
// histograms, the timeline ring's points — and stores it into the slot.
// Readers only ever Load a slot and walk an immutable value, so no
// reader can observe a half-written snapshot and no simulation thread
// ever blocks on a serving lock.

// Published is one sampler's immutable published state. Everything in
// it is a copy taken inside the simulation goroutine; readers must not
// mutate it (they cannot invalidate the simulation, but they would race
// each other).
type Published struct {
	TimeNs   int64
	Events   uint64
	Final    bool
	Interval sim.Duration
	Dropped  uint64

	Counters map[string]uint64
	Gauges   map[string]float64
	Histos   map[string]*histo.H

	Points []point
}

// published builds the immutable snapshot the serving layer hands to
// HTTP readers. Runs inside the simulation goroutine.
func (sm *Sampler) published(final bool) *Published {
	r := sm.set.reg
	p := &Published{
		TimeNs:   int64(sm.set.env.Now()),
		Events:   sm.set.env.Events(),
		Final:    final,
		Interval: sm.interval,
		Dropped:  sm.dropped,
		Counters: make(map[string]uint64, len(r.counters)),
		Gauges:   make(map[string]float64, len(r.gauges)+len(r.gaugeFns)),
		Histos:   make(map[string]*histo.H, len(r.histos)),
		Points:   sm.points(),
	}
	for name, c := range r.counters {
		p.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		p.Gauges[name] = g.Value()
	}
	for _, name := range sortedKeys(r.gaugeFns) {
		p.Gauges[name] = r.gaugeFns[name]()
	}
	for name, h := range r.histos {
		c := h.Clone()
		p.Histos[name] = &c
	}
	return p
}

// LiveServer aggregates the published snapshots of every sampler it is
// attached to and serves them. One LiveServer outlives any number of
// environments; experiment runners report batch progress through
// SetTotal / StepDone / SetLabel.
type LiveServer struct {
	mu    sync.Mutex
	slots []*atomic.Pointer[Published]

	done     atomic.Int64
	total    atomic.Int64
	label    atomic.Pointer[string]
	finished atomic.Bool
	start    time.Time

	// SSEPeriod is the wall-clock cadence of /progress events
	// (default 500ms). Set before Handler is used.
	SSEPeriod time.Duration
}

// NewLiveServer returns a server with no attached samplers.
func NewLiveServer() *LiveServer {
	ls := &LiveServer{start: time.Now(), SSEPeriod: 500 * time.Millisecond}
	empty := ""
	ls.label.Store(&empty)
	return ls
}

// Attach wires the server into a collector: every sampler the collector
// starts publishes to this server. Call before the collector is
// installed.
func (ls *LiveServer) Attach(c *Collector) {
	prev := c.OnSampler
	c.OnSampler = func(sm *Sampler) {
		ls.Register(sm)
		if prev != nil {
			prev(sm)
		}
	}
}

// Register gives one sampler a published-snapshot slot and installs its
// publish hook. Safe to call from concurrent experiment workers; the
// hook itself then runs only on the sampler's simulation goroutine.
func (ls *LiveServer) Register(sm *Sampler) {
	slot := &atomic.Pointer[Published]{}
	ls.mu.Lock()
	ls.slots = append(ls.slots, slot)
	ls.mu.Unlock()
	sm.publish = func(final bool) { slot.Store(sm.published(final)) }
}

// SetTotal declares how many experiments the batch will run.
func (ls *LiveServer) SetTotal(n int) { ls.total.Store(int64(n)) }

// StepDone records one finished experiment.
func (ls *LiveServer) StepDone() { ls.done.Add(1) }

// SetLabel names the experiment currently running.
func (ls *LiveServer) SetLabel(s string) { ls.label.Store(&s) }

// Finish marks the whole batch complete; /progress streams report
// final=true and new SSE clients get one event and a closed stream.
func (ls *LiveServer) Finish() { ls.finished.Store(true) }

// published loads every non-empty slot's current snapshot.
func (ls *LiveServer) published() []*Published {
	ls.mu.Lock()
	slots := append([]*atomic.Pointer[Published](nil), ls.slots...)
	ls.mu.Unlock()
	out := make([]*Published, 0, len(slots))
	for _, s := range slots {
		if p := s.Load(); p != nil {
			out = append(out, p)
		}
	}
	return out
}

// Handler returns the HTTP mux serving /metrics, /timeline,
// /timeline.csv and /progress.
func (ls *LiveServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/", ls.handleIndex)
	mux.HandleFunc("/metrics", ls.handleMetrics)
	mux.HandleFunc("/timeline", ls.handleTimeline)
	mux.HandleFunc("/timeline.csv", ls.handleTimelineCSV)
	mux.HandleFunc("/progress", ls.handleProgress)
	return mux
}

func (ls *LiveServer) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	io.WriteString(w, "2B-SSD simulator live observability\n\n"+
		"  /metrics       Prometheus text exposition\n"+
		"  /timeline      merged virtual-time timeline (JSON)\n"+
		"  /timeline.csv  merged timeline, long-form CSV\n"+
		"  /progress      live batch progress (Server-Sent Events)\n")
}

// promName sanitizes a registry metric name for Prometheus exposition:
// the simulator names series "nand.read_wait"; Prometheus metric names
// are [a-zA-Z_:][a-zA-Z0-9_:]*. Every invalid rune becomes '_' and the
// whole name is prefixed "twobssd_".
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + len("twobssd_"))
	b.WriteString("twobssd_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

func (ls *LiveServer) handleMetrics(w http.ResponseWriter, r *http.Request) {
	pubs := ls.published()
	counters := make(map[string]uint64)
	gauges := make(map[string]float64)
	histos := make(map[string]*histo.H)
	var events uint64
	var virtual int64
	for _, p := range pubs {
		events += p.Events
		virtual += p.TimeNs
		for name, v := range p.Counters {
			counters[name] += v
		}
		for name, v := range p.Gauges {
			gauges[name] = v
		}
		for name, h := range p.Histos {
			if m, ok := histos[name]; ok {
				m.Merge(h)
			} else {
				c := h.Clone()
				histos[name] = &c
			}
		}
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP twobssd_up Whether the simulator serving endpoint is alive.\n# TYPE twobssd_up gauge\ntwobssd_up 1\n")
	fmt.Fprintf(w, "# TYPE twobssd_experiments_done gauge\ntwobssd_experiments_done %d\n", ls.done.Load())
	fmt.Fprintf(w, "# TYPE twobssd_experiments_total gauge\ntwobssd_experiments_total %d\n", ls.total.Load())
	fmt.Fprintf(w, "# TYPE twobssd_envs gauge\ntwobssd_envs %d\n", len(pubs))
	fmt.Fprintf(w, "# HELP twobssd_events_total Simulation events dispatched across all environments.\n# TYPE twobssd_events_total counter\ntwobssd_events_total %d\n", events)
	fmt.Fprintf(w, "# HELP twobssd_virtual_time_ns Total virtual time simulated across all environments.\n# TYPE twobssd_virtual_time_ns counter\ntwobssd_virtual_time_ns %d\n", virtual)

	for _, name := range sortedKeys(counters) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, counters[name])
	}
	for _, name := range sortedKeys(gauges) {
		pn := promName(name)
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", pn, pn, formatFloat(gauges[name]))
	}
	// Histograms export as Prometheus summaries. Values stay virtual
	// nanoseconds (the simulator's unit), hence the _ns name suffix.
	for _, name := range sortedKeys(histos) {
		h := histos[name]
		pn := promName(name + "_ns")
		fmt.Fprintf(w, "# TYPE %s summary\n", pn)
		for _, q := range []struct {
			label string
			v     sim.Duration
		}{{"0.5", h.P50()}, {"0.99", h.P99()}, {"0.999", h.P999()}} {
			fmt.Fprintf(w, "%s{quantile=\"%s\"} %d\n", pn, q.label, int64(q.v))
		}
		fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, int64(h.Sum()), pn, h.N())
	}
}

// formatFloat renders a gauge value: Prometheus accepts Go 'g' format.
func formatFloat(v float64) string { return fmt.Sprintf("%g", v) }

func (ls *LiveServer) liveTimeline() Timeline {
	pubs := ls.published()
	var streams [][]point
	var dropped uint64
	var interval sim.Duration
	for _, p := range pubs {
		if interval <= 0 {
			interval = p.Interval
		}
		streams = append(streams, p.Points)
		dropped += p.Dropped
	}
	return mergeTimelines(interval, streams, dropped)
}

func (ls *LiveServer) handleTimeline(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	ls.liveTimeline().WriteJSON(w)
}

func (ls *LiveServer) handleTimelineCSV(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/csv")
	ls.liveTimeline().WriteCSV(w)
}

// Progress is one SSE payload: batch progress plus the merged
// reliability counters (fault.*) the campaigns maintain.
type Progress struct {
	Label        string            `json:"label,omitempty"`
	Done         int64             `json:"done"`
	Total        int64             `json:"total"`
	Envs         int               `json:"envs"`
	Events       uint64            `json:"events"`
	EventsPerSec float64           `json:"events_per_sec"`
	ElapsedS     float64           `json:"elapsed_s"`
	EtaS         float64           `json:"eta_s,omitempty"`
	VirtualNs    int64             `json:"virtual_ns"`
	Fault        map[string]uint64 `json:"fault,omitempty"`
	Final        bool              `json:"final"`
}

func (ls *LiveServer) progress() Progress {
	pubs := ls.published()
	p := Progress{
		Label: *ls.label.Load(),
		Done:  ls.done.Load(),
		Total: ls.total.Load(),
		Envs:  len(pubs),
		Final: ls.finished.Load(),
	}
	for _, pub := range pubs {
		p.Events += pub.Events
		p.VirtualNs += pub.TimeNs
		for name, v := range pub.Counters {
			if strings.HasPrefix(name, "fault.") {
				if p.Fault == nil {
					p.Fault = make(map[string]uint64)
				}
				p.Fault[name] += v
			}
		}
	}
	p.ElapsedS = time.Since(ls.start).Seconds()
	if p.ElapsedS > 0 {
		p.EventsPerSec = float64(p.Events) / p.ElapsedS
	}
	if p.Done > 0 && p.Total > p.Done && !p.Final {
		p.EtaS = p.ElapsedS / float64(p.Done) * float64(p.Total-p.Done)
	}
	return p
}

func (ls *LiveServer) handleProgress(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("Connection", "keep-alive")

	period := ls.SSEPeriod
	if period <= 0 {
		period = 500 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		p := ls.progress()
		b, err := json.Marshal(p)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", b); err != nil {
			return
		}
		fl.Flush()
		if p.Final {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-tick.C:
		}
	}
}
