package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

func TestRegistryIdentity(t *testing.T) {
	r := obs.NewRegistry()
	a := r.Counter("x")
	b := r.Counter("x")
	if a != b {
		t.Fatal("Counter(x) twice returned different instances")
	}
	a.Add(2)
	b.Inc()
	if got := r.Counter("x").Value(); got != 3 {
		t.Fatalf("shared counter = %d, want 3", got)
	}
	if r.Histo("h") != r.Histo("h") {
		t.Fatal("Histo(h) twice returned different instances")
	}
	if r.Gauge("g") != r.Gauge("g") {
		t.Fatal("Gauge(g) twice returned different instances")
	}
}

func TestNilMetricsAreNoOps(t *testing.T) {
	var c *obs.Counter
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatal("nil counter has a value")
	}
	var g *obs.Gauge
	g.Set(1)
	if g.Value() != 0 {
		t.Fatal("nil gauge has a value")
	}
}

func TestMergeInto(t *testing.T) {
	a, b := obs.NewRegistry(), obs.NewRegistry()
	a.Counter("n").Add(2)
	b.Counter("n").Add(3)
	a.Histo("h").Observe(100)
	b.Histo("h").Observe(300)
	a.GaugeFunc("f", func() float64 { return 7 })
	a.MergeInto(b)
	if got := b.Counter("n").Value(); got != 5 {
		t.Fatalf("merged counter = %d, want 5", got)
	}
	if got := b.Histo("h").N(); got != 2 {
		t.Fatalf("merged histo n = %d, want 2", got)
	}
	snap := b.SnapshotAt(0)
	if snap.Gauges["f"] != 7 {
		t.Fatalf("merged gauge fn = %v, want 7", snap.Gauges["f"])
	}
}

// deviceRun drives a small deterministic block workload and returns the
// environment's metrics snapshot as JSON bytes.
func deviceRun(t *testing.T) []byte {
	t.Helper()
	env := sim.NewEnv()
	dev := device.New(env, device.ULLSSD())
	env.Go("w", func(p *sim.Proc) {
		ps := dev.PageSize()
		page := make([]byte, ps)
		for i := 0; i < 16; i++ {
			page[0] = byte(i)
			if err := dev.WritePages(p, ftl.LBA(i), page); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if err := dev.Drain(p); err != nil {
			t.Errorf("drain: %v", err)
		}
		for i := 0; i < 16; i++ {
			if _, err := dev.ReadPages(p, ftl.LBA(i), 1); err != nil {
				t.Errorf("read: %v", err)
			}
		}
		if err := dev.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
	})
	env.Run()
	var buf bytes.Buffer
	if err := obs.Of(env).Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	return buf.Bytes()
}

func TestSnapshotDeterministic(t *testing.T) {
	a := deviceRun(t)
	b := deviceRun(t)
	if !bytes.Equal(a, b) {
		t.Fatalf("identical runs produced different snapshots:\n%s\n---\n%s", a, b)
	}
	// The snapshot must carry real data, not an empty report.
	var snap obs.Snapshot
	if err := json.Unmarshal(a, &snap); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v", err)
	}
	if snap.Counters["ULL-SSD.write_cmds"] != 16 {
		t.Fatalf("write_cmds = %d, want 16", snap.Counters["ULL-SSD.write_cmds"])
	}
	if snap.Histograms["nand.program_ns"].N == 0 {
		t.Fatal("nand.program_ns histogram is empty")
	}
	if snap.VirtualTimeNs <= 0 {
		t.Fatal("snapshot carries no virtual time")
	}
}

// traceFile mirrors the Chrome trace-event JSON for assertions.
type traceFile struct {
	TraceEvents []struct {
		Name string                 `json:"name"`
		Cat  string                 `json:"cat"`
		Ph   string                 `json:"ph"`
		TS   float64                `json:"ts"`
		Dur  float64                `json:"dur"`
		PID  int                    `json:"pid"`
		TID  int                    `json:"tid"`
		Args map[string]interface{} `json:"args"`
	} `json:"traceEvents"`
}

func TestSpanNestingAndExport(t *testing.T) {
	env := sim.NewEnv()
	tr := obs.Of(env).EnableTracing()
	env.Go("worker", func(p *sim.Proc) {
		outer := tr.BeginProc(p, "test", "outer")
		p.Sleep(100)
		inner := tr.Begin("sub", "test", "inner")
		p.Sleep(50)
		inner.End()
		tr.Instant("sub", "test", "mark")
		p.Sleep(25)
		outer.End()
	})
	env.Run()

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}

	find := func(name string) (ts, dur float64, ok bool) {
		for _, ev := range tf.TraceEvents {
			if ev.Name == name && ev.Ph == "X" {
				return ev.TS, ev.Dur, true
			}
		}
		return 0, 0, false
	}
	ots, odur, ok := find("outer")
	if !ok {
		t.Fatal("outer span missing from export")
	}
	its, idur, ok := find("inner")
	if !ok {
		t.Fatal("inner span missing from export")
	}
	if odur != float64(175)/1e3 || idur != float64(50)/1e3 {
		t.Fatalf("span durations outer=%vus inner=%vus, want 0.175/0.050", odur, idur)
	}
	if its < ots || its+idur > ots+odur {
		t.Fatalf("inner [%v,%v) not nested in outer [%v,%v)", its, its+idur, ots, ots+odur)
	}

	// Spans close in nesting order: inner's event precedes outer's.
	var order []string
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "X" || ev.Ph == "i" {
			order = append(order, ev.Name)
		}
	}
	want := []string{"inner", "mark", "outer"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Fatalf("event order = %v, want %v", order, want)
	}

	// Track metadata: the proc track and the explicit track are named.
	named := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			named[ev.Args["name"].(string)] = true
		}
	}
	if !named["worker"] || !named["sub"] {
		t.Fatalf("thread_name metadata missing tracks: %v", named)
	}
}

func TestEventCap(t *testing.T) {
	env := sim.NewEnv()
	tr := obs.Of(env).EnableTracing()
	tr.SetMaxEvents(4)
	env.Go("w", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			tr.Instant("t", "c", "e")
		}
	})
	env.Run()
	if got := len(tr.Events()); got != 4 {
		t.Fatalf("events = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 6 {
		t.Fatalf("dropped = %d, want 6", got)
	}
}

func TestDisabledTracerZeroAlloc(t *testing.T) {
	var tr *obs.Tracer // the disabled tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Begin("track", "cat", "name")
		sp.End()
		tr.Instant("track", "cat", "name")
		tr.Count("track", "name", 1)
		_ = tr.Enabled()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracer allocates %.1f objects per op, want 0", allocs)
	}
}

// BenchmarkDisabledTracer measures the disabled fast path the device
// hot path takes on every operation when -trace is not given.
func BenchmarkDisabledTracer(b *testing.B) {
	var tr *obs.Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sp := tr.Begin("track", "cat", "name")
		sp.End()
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	c := obs.NewRegistry().Counter("c")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}
