package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"twobssd/internal/sim"
)

// DefaultMaxEvents bounds one tracer's event buffer. A paper experiment
// at full scale can emit tens of millions of spans; past the cap new
// events are counted as dropped instead of recorded, keeping the trace
// loadable in Perfetto and the simulator's memory bounded.
const DefaultMaxEvents = 1 << 18

// Tracer records begin/end spans, instant events and counter samples
// stamped with virtual time, grouped into named tracks (one Chrome
// trace "thread" per track: a process, a NAND die, the PCIe link...).
//
// A nil *Tracer is the disabled tracer: every method returns
// immediately without allocating — the zero-overhead fast path asserted
// by BenchmarkDisabledTracer.
//
// A tracer runs in one of two modes. The full tracer (EnableTracing)
// appends every event up to maxEvents and exports Chrome trace JSON.
// The ring tracer (EnableFlightRecorder) is the flight recorder: a
// fixed-capacity ring that overwrites its oldest event, so it is
// allocation-bounded no matter how long the run — it always holds the
// last N events leading up to whatever went wrong.
type Tracer struct {
	env       *sim.Env
	maxEvents int
	dropped   uint64
	tracks    []string       // tid -> track name, in first-use order
	tids      map[string]int // track name -> tid
	events    []Event

	// Ring (flight-recorder) mode: events wraps at maxEvents and head
	// marks the oldest entry.
	ring bool
	head int
}

// Event is one recorded trace event.
type Event struct {
	TID  int
	Ph   byte // 'X' complete span, 'i' instant, 'C' counter sample
	TS   sim.Time
	Dur  sim.Duration // 'X' only
	Cat  string
	Name string
	Val  float64 // 'C' only
}

func newTracer(env *sim.Env) *Tracer {
	return &Tracer{
		env:       env,
		maxEvents: DefaultMaxEvents,
		tids:      make(map[string]int),
	}
}

func newRingTracer(env *sim.Env, n int) *Tracer {
	return &Tracer{
		env:       env,
		maxEvents: n,
		tids:      make(map[string]int),
		events:    make([]Event, 0, n),
		ring:      true,
	}
}

// Enabled reports whether the tracer records events.
func (t *Tracer) Enabled() bool { return t != nil }

// Ring reports whether the tracer is a bounded flight-recorder ring
// (as opposed to a full exporting tracer).
func (t *Tracer) Ring() bool { return t != nil && t.ring }

// SetMaxEvents adjusts the event cap (<= 0 means unlimited).
func (t *Tracer) SetMaxEvents(n int) {
	if t != nil {
		t.maxEvents = n
	}
}

// Events returns the recorded events in chronological order. For a
// full tracer the slice is borrowed (do not mutate); a ring tracer
// returns a fresh unwrapped copy.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	if !t.ring || t.head == 0 {
		return t.events
	}
	out := make([]Event, 0, len(t.events))
	out = append(out, t.events[t.head:]...)
	out = append(out, t.events[:t.head]...)
	return out
}

// Dropped reports how many events the cap discarded.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Track returns the name of a track ID.
func (t *Tracer) Track(tid int) string { return t.tracks[tid] }

func (t *Tracer) tid(track string) int {
	if id, ok := t.tids[track]; ok {
		return id
	}
	id := len(t.tracks)
	t.tracks = append(t.tracks, track)
	t.tids[track] = id
	return id
}

func (t *Tracer) emit(ev Event) {
	if t.maxEvents > 0 && len(t.events) >= t.maxEvents {
		if t.ring {
			// Flight recorder: overwrite the oldest event in place —
			// steady state allocates nothing and keeps the newest N.
			t.events[t.head] = ev
			t.head++
			if t.head == len(t.events) {
				t.head = 0
			}
			t.dropped++
			return
		}
		t.dropped++
		return
	}
	t.events = append(t.events, ev)
}

// Span is an open interval on one track. It is a value: beginning a
// span on the nil tracer returns the zero Span, whose End is a no-op,
// so the disabled path allocates nothing.
type Span struct {
	t     *Tracer
	tid   int
	start sim.Time
	cat   string
	name  string
}

// Begin opens a span named name on the given track, stamped with the
// current virtual time. cat groups spans for trace-viewer filtering
// (one category per instrumented package: nand, pcie, device, ...).
func (t *Tracer) Begin(track, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, tid: t.tid(track), start: t.env.Now(), cat: cat, name: name}
}

// BeginProc opens a span on the calling process's own track — the
// per-process track ID every host-visible command uses.
func (t *Tracer) BeginProc(p *sim.Proc, cat, name string) Span {
	if t == nil {
		return Span{}
	}
	return t.Begin(p.Name(), cat, name)
}

// End closes the span at the current virtual time.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.emit(Event{
		TID: s.tid, Ph: 'X', TS: s.start,
		Dur: sim.Duration(s.t.env.Now() - s.start),
		Cat: s.cat, Name: s.name,
	})
}

// Instant records a zero-duration event (a gate rejection, a power cut).
func (t *Tracer) Instant(track, cat, name string) {
	if t == nil {
		return
	}
	t.emit(Event{TID: t.tid(track), Ph: 'i', TS: t.env.Now(), Cat: cat, Name: name})
}

// Count records a counter sample (write-buffer occupancy, queue depth);
// trace viewers render the series as a filled graph on its own track.
func (t *Tracer) Count(track, name string, v float64) {
	if t == nil {
		return
	}
	t.emit(Event{TID: t.tid(track), Ph: 'C', TS: t.env.Now(), Name: name, Val: v})
}

// jsonEvent is the Chrome trace-event wire format (the subset Perfetto
// and chrome://tracing consume). Timestamps and durations are
// microseconds; fractional values carry the nanosecond precision.
type jsonEvent struct {
	Name string                 `json:"name,omitempty"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	PID  int                    `json:"pid"`
	TID  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

func usec(t sim.Time) float64      { return float64(t) / 1e3 }
func usecD(d sim.Duration) float64 { return float64(d) / 1e3 }

// WriteJSON exports this tracer alone as a Chrome trace (pid 1).
func (t *Tracer) WriteJSON(w io.Writer) error {
	return WriteTraceJSON(w, []TracePart{{Name: "sim", Tracer: t}})
}

// TracePart names one tracer inside a combined trace file; each part
// becomes a Chrome trace "process" so several environments (one per
// experiment data point) coexist in one Perfetto view.
type TracePart struct {
	Name   string
	Tracer *Tracer
}

// WriteTraceJSON writes the combined Chrome trace-event JSON for the
// given parts: {"traceEvents": [...], "displayTimeUnit": "ns"}.
func WriteTraceJSON(w io.Writer, parts []TracePart) error {
	if _, err := io.WriteString(w, "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(ev jsonEvent) error {
		b, err := json.Marshal(ev)
		if err != nil {
			return err
		}
		if !first {
			if _, err := io.WriteString(w, ",\n"); err != nil {
				return err
			}
		}
		first = false
		_, err = w.Write(b)
		return err
	}
	for pi, part := range parts {
		t := part.Tracer
		if t == nil {
			continue
		}
		pid := pi + 1
		name := part.Name
		if name == "" {
			name = fmt.Sprintf("env%d", pid)
		}
		if err := emit(jsonEvent{Ph: "M", Name: "process_name", PID: pid,
			Args: map[string]interface{}{"name": name}}); err != nil {
			return err
		}
		for tid, track := range t.tracks {
			if err := emit(jsonEvent{Ph: "M", Name: "thread_name", PID: pid, TID: tid,
				Args: map[string]interface{}{"name": track}}); err != nil {
				return err
			}
			if err := emit(jsonEvent{Ph: "M", Name: "thread_sort_index", PID: pid, TID: tid,
				Args: map[string]interface{}{"sort_index": tid}}); err != nil {
				return err
			}
		}
		for _, ev := range t.Events() {
			je := jsonEvent{
				Name: ev.Name, Cat: ev.Cat, Ph: string(ev.Ph),
				TS: usec(ev.TS), PID: pid, TID: ev.TID,
			}
			switch ev.Ph {
			case 'X':
				je.Dur = usecD(ev.Dur)
			case 'i':
				je.S = "t" // thread-scoped instant
			case 'C':
				je.Args = map[string]interface{}{"value": ev.Val}
			}
			if err := emit(je); err != nil {
				return err
			}
		}
		if t.dropped > 0 {
			if err := emit(jsonEvent{Ph: "M", Name: "dropped_events", PID: pid,
				Args: map[string]interface{}{"count": t.dropped}}); err != nil {
				return err
			}
		}
	}
	_, err := io.WriteString(w, "\n]}\n")
	return err
}
