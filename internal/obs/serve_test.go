package obs_test

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"testing"
	"time"

	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// serveRun runs the standard small block workload under a collector
// wired to a LiveServer and returns both.
func serveRun(t *testing.T) (*obs.LiveServer, *obs.Collector) {
	t.Helper()
	ls := obs.NewLiveServer()
	c := obs.NewCollector(false)
	c.EnableSampling(sim.Microsecond, 0)
	ls.Attach(c)
	ls.SetTotal(1)
	ls.SetLabel("smoke")

	env := sim.NewEnv()
	set := obs.Of(env)
	c.Collect(set)
	dev := device.New(env, device.ULLSSD())
	env.Go("w", func(p *sim.Proc) {
		ps := dev.PageSize()
		page := make([]byte, ps)
		for i := 0; i < 16; i++ {
			page[0] = byte(i)
			if err := dev.WritePages(p, ftl.LBA(i), page); err != nil {
				t.Errorf("write: %v", err)
			}
		}
		if err := dev.Drain(p); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	// Planted reliability counter, to show up in /progress.
	set.Registry().Counter("fault.trips").Add(3)
	env.Run()
	ls.StepDone()
	return ls, c
}

// promLine validates one Prometheus text-exposition sample line.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^{}]*\})? -?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?$`)

func TestMetricsEndpoint(t *testing.T) {
	ls, _ := serveRun(t)
	srv := httptest.NewServer(ls.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var samples int
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("invalid exposition line: %q", line)
		}
		samples++
	}
	if samples < 10 {
		t.Fatalf("only %d samples exposed:\n%s", samples, body)
	}
	for _, want := range []string{
		"twobssd_up 1",
		"twobssd_experiments_done 1",
		"twobssd_ULL_SSD_write_cmds 16",
		"twobssd_fault_trips 3",
		`twobssd_nand_program_ns_ns{quantile="0.5"}`,
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("/metrics missing %q:\n%s", want, body)
		}
	}
}

func TestTimelineEndpoint(t *testing.T) {
	ls, c := serveRun(t)
	srv := httptest.NewServer(ls.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/timeline")
	if err != nil {
		t.Fatalf("GET /timeline: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var tl obs.Timeline
	if err := json.Unmarshal(body, &tl); err != nil {
		t.Fatalf("/timeline is not timeline JSON: %v\n%s", err, body)
	}
	if tl.Schema != obs.TimelineSchema || len(tl.Points) == 0 {
		t.Fatalf("timeline schema=%q points=%d", tl.Schema, len(tl.Points))
	}

	// The served timeline matches the collector's merged artifact.
	want := c.MergedTimeline()
	if len(tl.Points) != len(want.Points) {
		t.Fatalf("served %d points, collector has %d", len(tl.Points), len(want.Points))
	}

	csvResp, err := http.Get(srv.URL + "/timeline.csv")
	if err != nil {
		t.Fatalf("GET /timeline.csv: %v", err)
	}
	defer csvResp.Body.Close()
	head := make([]byte, 64)
	n, _ := csvResp.Body.Read(head)
	if !strings.HasPrefix(string(head[:n]), "window,time_ns,span_ns,kind,name") {
		t.Fatalf("csv header = %q", head[:n])
	}
}

func TestProgressSSE(t *testing.T) {
	ls, _ := serveRun(t)
	ls.SSEPeriod = 10 * time.Millisecond
	srv := httptest.NewServer(ls.Handler())
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/progress")
	if err != nil {
		t.Fatalf("GET /progress: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type = %q", ct)
	}

	// Read the first event, then finish the batch and expect the stream
	// to deliver a final event and close.
	br := bufio.NewReader(resp.Body)
	readEvent := func() obs.Progress {
		t.Helper()
		var data string
		for {
			line, err := br.ReadString('\n')
			if err != nil {
				t.Fatalf("stream ended early: %v (data=%q)", err, data)
			}
			line = strings.TrimRight(line, "\n")
			if strings.HasPrefix(line, "data: ") {
				data = strings.TrimPrefix(line, "data: ")
			}
			if line == "" && data != "" {
				break
			}
		}
		var p obs.Progress
		if err := json.Unmarshal([]byte(data), &p); err != nil {
			t.Fatalf("bad SSE payload %q: %v", data, err)
		}
		return p
	}

	first := readEvent()
	if first.Done != 1 || first.Total != 1 || first.Label != "smoke" {
		t.Fatalf("first event = %+v", first)
	}
	if first.Events == 0 || first.Envs != 1 {
		t.Fatalf("first event carries no simulation stats: %+v", first)
	}
	if first.Fault["fault.trips"] != 3 {
		t.Fatalf("first event fault counters = %v", first.Fault)
	}

	ls.Finish()
	deadline := time.Now().Add(5 * time.Second)
	for {
		ev := readEvent()
		if ev.Final {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no final event after Finish")
		}
	}
	// After the final event the handler returns and the body drains.
	if _, err := io.ReadAll(br); err != nil {
		t.Fatalf("stream did not close cleanly: %v", err)
	}
}

func TestIndexEndpoint(t *testing.T) {
	ls, _ := serveRun(t)
	srv := httptest.NewServer(ls.Handler())
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/")
	if err != nil {
		t.Fatalf("GET /: %v", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "/metrics") {
		t.Fatalf("index = %d %q", resp.StatusCode, body)
	}
	missing, err := http.Get(srv.URL + "/nope")
	if err != nil {
		t.Fatalf("GET /nope: %v", err)
	}
	missing.Body.Close()
	if missing.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown path = %d, want 404", missing.StatusCode)
	}
}
