// Package fault is the deterministic fault-injection layer of the
// simulator. A seeded Plan describes *what* goes wrong — a power cut at
// an exact virtual nanosecond or at the Nth occurrence of a device
// event, NAND read bit errors drawn from a P/E-cycle- and
// retention-driven raw-BER model, program/erase failures, transient
// command timeouts, a capacitor dump that dies partway — and the
// Injector installed on a sim.Env answers the cheap questions the
// datapaths ask ("does this read fail?", "is power gone yet?").
//
// Determinism is the contract: every decision is drawn from splitmix64
// streams seeded by Plan.Seed, and the sim kernel is single-threaded,
// so one (plan, workload) pair always produces the same faults at the
// same virtual times. The disabled path is a nil *Injector whose
// methods are allocation-free no-ops, mirroring the nil *obs.Tracer —
// a fault-free run's virtual timing cannot be perturbed because the
// hooks only observe (and the BER bookkeeping is skipped entirely when
// no injector is installed).
//
// The Injector rides in the obs.Set's aux slot rather than competing
// for the sim.Env's single attachment slot; Install must run before
// the device stack is built because components cache the (possibly
// nil) injector at construction time.
package fault

import (
	"fmt"

	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// Event classes the datapaths report to the injector. Counting them is
// what lets a Plan express trigger points like "power dies at the 37th
// NAND program" or "mid way through staging a WC burst".
type Event uint8

const (
	// EvNandProgram fires once per NAND page program.
	EvNandProgram Event = iota
	// EvWCBurst fires once per write-combining burst staged at the
	// MMIO window (pcie.Window.Write).
	EvWCBurst
	// EvBAFlushPage fires once per page moved by BA_FLUSH / the
	// internal buffer<->NAND mover.
	EvBAFlushPage
	// EvWalCommit fires once per successful WAL commit.
	EvWalCommit
	// EvWalRotate fires once per segmented-WAL rotation (active
	// segment sealed + next ring slot recycled).
	EvWalRotate
	// EvWalCheckpoint fires once per durable segmented-WAL checkpoint
	// (meta page written, before truncation starts).
	EvWalCheckpoint
	// EvWalTruncate fires once per truncated (freed) WAL segment.
	EvWalTruncate

	numEvents
)

// String names an event class for reports.
func (e Event) String() string {
	switch e {
	case EvNandProgram:
		return "nand_program"
	case EvWCBurst:
		return "wc_burst"
	case EvBAFlushPage:
		return "ba_flush_page"
	case EvWalCommit:
		return "wal_commit"
	case EvWalRotate:
		return "wal_rotate"
	case EvWalCheckpoint:
		return "wal_checkpoint"
	case EvWalTruncate:
		return "wal_truncate"
	}
	return fmt.Sprintf("event_%d", int(e))
}

// Trigger describes when the injector trips (declares power lost). At
// most one of the two forms is active: an exact virtual time (At > 0),
// or the Nth event of class On (N > 0). A zero Trigger never fires.
//
// Tripping does not itself cut power — the sim has no way to kill
// in-flight procs — it raises a flag the crash harness polls at
// operation boundaries before calling PowerLoss. See DESIGN.md.
type Trigger struct {
	At sim.Time // trip at this exact virtual nanosecond
	On Event    // trip on the N-th event of this class...
	N  uint64   // ...when N > 0
}

// Active reports whether the trigger can ever fire.
func (t Trigger) Active() bool { return t.At > 0 || t.N > 0 }

// String renders the trigger for deterministic reports.
func (t Trigger) String() string {
	switch {
	case t.At > 0:
		return fmt.Sprintf("t=%dns", int64(t.At))
	case t.N > 0:
		return fmt.Sprintf("%s#%d", t.On, t.N)
	}
	return "none"
}

// BERModel parameterises NAND read bit errors. The raw bit error rate
// of a page grows with the block's P/E cycles (wear) and with
// retention (time since the page was programmed):
//
//	rawBER = Base * (1 + PECycleGrowth*eraseCount) * (1 + RetentionPerHour*hours)
//
// The expected bit-error count of a read is rawBER * pageBits; the
// ECC engine corrects up to ECCBits of them. Beyond that the
// controller re-reads with shifted sense thresholds — each retry step
// costs RetryLatency and halves the surviving error count — and a page
// still uncorrectable after RetrySteps retries returns
// nand.ErrUncorrectable for the FTL to handle.
type BERModel struct {
	Base             float64      // raw BER of a fresh page (e.g. 1e-5)
	PECycleGrowth    float64      // BER growth per erase cycle
	RetentionPerHour float64      // BER growth per hour of retention
	ECCBits          int          // correctable bits per page codeword
	RetrySteps       int          // max read-retry attempts
	RetryLatency     sim.Duration // extra latency per retry step
}

// DefaultBER returns a mid-life TLC-ish model: reads stay clean on
// young blocks and short retention, retries appear as either grows.
func DefaultBER() *BERModel {
	return &BERModel{
		Base:             1e-5,
		PECycleGrowth:    0.002,
		RetentionPerHour: 0.5,
		ECCBits:          40,
		RetrySteps:       4,
		RetryLatency:     60 * sim.Microsecond,
	}
}

// Plan is the full fault scenario for one simulation environment.
// The zero Plan (plus a Seed) injects nothing.
type Plan struct {
	// Seed drives every probabilistic decision. Two runs with the
	// same plan and workload produce identical fault sequences.
	Seed uint64

	// PowerLoss trips the injector (see Trigger).
	PowerLoss Trigger

	// BER enables NAND read bit errors when non-nil.
	BER *BERModel

	// ProgramFailOneIn makes roughly one in N page programs fail with
	// nand.ErrProgramFailed (0 disables).
	ProgramFailOneIn uint64
	// EraseFailOneIn makes roughly one in N block erases fail with
	// nand.ErrEraseFailed, retiring the block (0 disables).
	EraseFailOneIn uint64

	// TimeoutOneIn makes roughly one in N device commands hit
	// transient timeouts; the device retries with exponential backoff
	// starting at TimeoutDelay (0 disables). TimeoutMaxRetries bounds
	// the injected consecutive timeouts per command (default 2).
	TimeoutOneIn      uint64
	TimeoutDelay      sim.Duration
	TimeoutMaxRetries int

	// CutDumpAfterPages kills the capacitor-powered dump after that
	// many pages have been programmed, leaving a torn image the
	// recovery manager must detect (0 disables).
	CutDumpAfterPages int
}

// ReadDisturb is the injector's verdict on one NAND page read.
type ReadDisturb struct {
	Retries       int          // read-retry steps taken
	Extra         sim.Duration // added latency (Retries * RetryLatency)
	Uncorrectable bool         // still failing after all retries
}

// splitmix64 is the per-stream PRNG (Steele et al.); tiny, fast and
// plenty for fault decisions, with no dependency beyond the stdlib.
type splitmix64 struct{ s uint64 }

func (r *splitmix64) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float returns a uniform float64 in [0, 1).
func (r *splitmix64) float() float64 {
	return float64(r.next()>>11) / float64(uint64(1)<<53)
}

// Injector is the per-environment fault engine. A nil *Injector is the
// disabled state: every method is a no-op that allocates nothing, so
// datapaths call hooks unconditionally on their cached pointer.
type Injector struct {
	env  *sim.Env
	plan Plan

	// Independent streams per fault class so enabling one class never
	// shifts another's sequence.
	rngRead, rngProg, rngErase, rngTimeout splitmix64

	counts  [numEvents]uint64
	armed   bool
	tripped bool
	tripAt  sim.Time
	tripWhy string

	cTrips, cRetries, cUncorr       *obs.Counter
	cProgFail, cEraseFail, cTimeout *obs.Counter
	cDumpCut                        *obs.Counter
}

// Install creates an Injector for plan and attaches it to env (in the
// obs.Set aux slot). It must run before the device stack is built:
// nand/ftl/device/pcie/core/wal cache the injector at construction.
// Installing twice replaces the previous injector for components built
// afterwards.
func Install(env *sim.Env, plan Plan) *Injector {
	if plan.TimeoutMaxRetries <= 0 {
		plan.TimeoutMaxRetries = 2
	}
	if plan.TimeoutDelay <= 0 {
		plan.TimeoutDelay = 100 * sim.Microsecond
	}
	in := &Injector{env: env, plan: plan, armed: true}
	in.rngRead.s = plan.Seed ^ 0xA5A5A5A5A5A5A5A5
	in.rngProg.s = plan.Seed ^ 0x0F0F0F0F0F0F0F0F
	in.rngErase.s = plan.Seed ^ 0x3C3C3C3C3C3C3C3C
	in.rngTimeout.s = plan.Seed ^ 0xC3C3C3C3C3C3C3C3
	reg := obs.Of(env).Registry()
	in.cTrips = reg.Counter("fault.trips")
	in.cRetries = reg.Counter("fault.ecc_retries")
	in.cUncorr = reg.Counter("fault.uncorrectable_reads")
	in.cProgFail = reg.Counter("fault.program_fails")
	in.cEraseFail = reg.Counter("fault.erase_fails")
	in.cTimeout = reg.Counter("fault.cmd_timeouts")
	in.cDumpCut = reg.Counter("fault.dump_cuts")
	obs.Of(env).SetAux(in)
	if plan.PowerLoss.At > 0 {
		env.GoAt(plan.PowerLoss.At, "fault.trip", func(p *sim.Proc) {
			in.trip(plan.PowerLoss.String())
		})
	}
	return in
}

// Of returns the injector installed on env, or nil. The lookup is
// allocation-free; components call it once at construction and cache
// the result.
func Of(env *sim.Env) *Injector {
	if v := env.Attachment(); v != nil {
		if s, ok := v.(*obs.Set); ok {
			if in, ok := s.Aux().(*Injector); ok {
				return in
			}
		}
	}
	return nil
}

// Enabled reports whether faults can be injected at all.
func (in *Injector) Enabled() bool { return in != nil }

// Plan returns the installed plan (zero value on the nil injector).
func (in *Injector) Plan() Plan {
	if in == nil {
		return Plan{}
	}
	return in.plan
}

func (in *Injector) trip(why string) {
	if in.tripped || !in.armed {
		return
	}
	in.tripped = true
	in.tripAt = in.env.Now()
	in.tripWhy = why
	in.cTrips.Inc()
}

// Tick reports one occurrence of an event class and trips the power
// trigger when its threshold is reached. Nil-safe and allocation-free.
func (in *Injector) Tick(ev Event) {
	if in == nil {
		return
	}
	in.counts[ev]++
	t := in.plan.PowerLoss
	if in.armed && !in.tripped && t.N > 0 && t.On == ev && in.counts[ev] >= t.N {
		in.trip(t.String())
	}
}

// Count returns how many events of a class have been reported.
func (in *Injector) Count(ev Event) uint64 {
	if in == nil {
		return 0
	}
	return in.counts[ev]
}

// Tripped reports whether the power-loss trigger has fired. Crash
// harnesses poll this at operation boundaries and then call PowerLoss.
func (in *Injector) Tripped() bool { return in != nil && in.tripped }

// TripInfo returns why and when the trigger fired.
func (in *Injector) TripInfo() (why string, at sim.Time) {
	if in == nil {
		return "", 0
	}
	return in.tripWhy, in.tripAt
}

// Disarm stops the power trigger from firing (the tripped flag, if
// already set, is kept). The crash harness disarms before running
// recovery so post-crash activity cannot re-trip.
func (in *Injector) Disarm() {
	if in != nil {
		in.armed = false
	}
}

// ReadFault decides the fate of one NAND page read given the block's
// wear and the page's retention age. Nil injectors and plans without a
// BER model return the zero verdict.
func (in *Injector) ReadFault(pageBytes, eraseCount int, age sim.Duration) ReadDisturb {
	if in == nil || in.plan.BER == nil {
		return ReadDisturb{}
	}
	m := in.plan.BER
	hours := float64(age) / float64(3600*sim.Second)
	ber := m.Base * (1 + m.PECycleGrowth*float64(eraseCount)) * (1 + m.RetentionPerHour*hours)
	lambda := ber * float64(pageBytes) * 8
	errs := int(lambda)
	if in.rngRead.float() < lambda-float64(errs) {
		errs++
	}
	if errs <= m.ECCBits {
		return ReadDisturb{}
	}
	var rd ReadDisturb
	for errs > m.ECCBits && rd.Retries < m.RetrySteps {
		rd.Retries++
		rd.Extra += m.RetryLatency
		errs /= 2
	}
	rd.Uncorrectable = errs > m.ECCBits
	in.cRetries.Add(uint64(rd.Retries))
	if rd.Uncorrectable {
		in.cUncorr.Inc()
	}
	return rd
}

// ProgramFault decides whether this page program fails.
func (in *Injector) ProgramFault() bool {
	if in == nil || in.plan.ProgramFailOneIn == 0 {
		return false
	}
	if in.rngProg.next()%in.plan.ProgramFailOneIn != 0 {
		return false
	}
	in.cProgFail.Inc()
	return true
}

// EraseFault decides whether this block erase fails (retiring the
// block, like passing its endurance limit would).
func (in *Injector) EraseFault() bool {
	if in == nil || in.plan.EraseFailOneIn == 0 {
		return false
	}
	if in.rngErase.next()%in.plan.EraseFailOneIn != 0 {
		return false
	}
	in.cEraseFail.Inc()
	return true
}

// Timeouts decides whether this device command hits transient
// timeouts, returning how many and the base backoff delay. The device
// retries with exponential backoff; commands always eventually
// succeed (persistent failures are the program/erase classes).
func (in *Injector) Timeouts() (n int, delay sim.Duration) {
	if in == nil || in.plan.TimeoutOneIn == 0 {
		return 0, 0
	}
	if in.rngTimeout.next()%in.plan.TimeoutOneIn != 0 {
		return 0, 0
	}
	n = 1 + int(in.rngTimeout.next()%uint64(in.plan.TimeoutMaxRetries))
	in.cTimeout.Add(uint64(n))
	return n, in.plan.TimeoutDelay
}

// DumpCut reports whether the capacitor dump dies before programming
// its (pagesDone+1)-th page.
func (in *Injector) DumpCut(pagesDone int) bool {
	if in == nil || in.plan.CutDumpAfterPages <= 0 {
		return false
	}
	if pagesDone < in.plan.CutDumpAfterPages {
		return false
	}
	in.cDumpCut.Inc()
	return true
}
