package fault

import (
	"fmt"
	"io"
	"sort"

	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// A Cycle is one crash-recovery workload instance: the campaign builds
// a fresh one per crash point (on a fresh env with the point's
// Injector pre-installed), drives committed operations until the
// injector trips, then crashes, recovers and verifies.
//
// The committed-set accounting relies on Step being synchronous: when
// Step returns, operation i's commit has been acknowledged, so it
// happened strictly before the PowerLoss that Crash performs.
type Cycle interface {
	// Step performs the i-th committed operation and returns its key.
	Step(p *sim.Proc, i int) (key string, err error)
	// Stage appends one record *without* committing it — volatile
	// state the crash may or may not preserve. Returns "" when the
	// workload has no uncommitted path.
	Stage(p *sim.Proc) (key string, err error)
	// Crash cuts power (PowerLoss). persisted reports whether the
	// capacitor dump completed within budget; energyJ is the dump
	// energy consumed.
	Crash(p *sim.Proc) (persisted bool, energyJ float64, err error)
	// Recover powers the device back on, reopens the engine, and
	// probes the full planned keyspace: recovered lists keys present
	// with exactly the written content; phantoms lists keys present
	// that were never appended, or whose content differs from any
	// appended value.
	Recover(p *sim.Proc) (recovered, phantoms []string, err error)
}

// RepairReporter is an optional Cycle extension for workloads whose
// recovery path can repair torn WAL tails (the segmented WAL). After a
// successful Recover the campaign asks how many repairs ran and
// whether any failed; a non-empty failure string is a campaign
// violation and captures the flight recorder like any other
// durability break.
type RepairReporter interface {
	RecoveryRepair() (repairs int, failure string)
}

// Campaign sweeps crash points across one workload. Prepare (or Run)
// first executes a fault-free profile run to learn the workload's
// duration and per-class event counts, then spreads Points triggers
// across virtual time and every active event class — so the sweep
// lands crashes mid-WC-burst, mid-flush, mid-program and between
// commits in proportion to where the workload actually spends events.
type Campaign struct {
	Name   string
	Points int
	Ops    int
	Seed   uint64
	// Build constructs the device stack and workload on env. The
	// campaign has already installed the point's Injector on env.
	Build func(env *sim.Env, p *sim.Proc) (Cycle, error)

	// Tweak optionally adjusts one point's fault plan before it is
	// installed (e.g. cutting the capacitor dump short on a subset of
	// points so recovery must repair torn tails). The plan arrives
	// with Seed and the PowerLoss trigger already set. Must be a pure
	// function of i so shrinking stays deterministic.
	Tweak func(i int, plan *Plan)

	specs   []Trigger
	profile struct {
		counts [numEvents]uint64
		dur    sim.Time
	}
}

// FaultCounts snapshots the injector's counters for one point.
type FaultCounts struct {
	Trips, EccRetries, Uncorrectable   uint64
	ProgramFails, EraseFails, Timeouts uint64
	DumpCuts                           uint64
}

func (a FaultCounts) add(b FaultCounts) FaultCounts {
	a.Trips += b.Trips
	a.EccRetries += b.EccRetries
	a.Uncorrectable += b.Uncorrectable
	a.ProgramFails += b.ProgramFails
	a.EraseFails += b.EraseFails
	a.Timeouts += b.Timeouts
	a.DumpCuts += b.DumpCuts
	return a
}

// PointResult is the deterministic outcome of one crash point.
type PointResult struct {
	Index     int
	Trigger   string // planned trigger
	TrippedBy string // "" when the workload finished before the trigger
	TrippedAt int64  // virtual ns of the trip (0 = ran to completion)

	Committed      int
	Recovered      int
	StagedSurvived bool
	Persisted      bool
	DumpEnergyJ    float64
	Repairs        int // torn-tail repairs recovery performed

	Lost    []string // committed keys missing after recovery (sorted)
	Phantom []string // recovered keys never appended / wrong content (sorted)
	Faults  FaultCounts
	Err     string

	// Flight is the environment's flight-recorder dump, captured only
	// when the point violated the durability contract: the last spans
	// and instants leading up to the trigger, plus metrics at failure.
	Flight *obs.FlightDump
}

// Violation reports whether the point breaks the durability contract:
// a committed record lost despite a persisted dump, any phantom
// record, or a harness error.
func (pr PointResult) Violation() bool {
	return (pr.Persisted && len(pr.Lost) > 0) || len(pr.Phantom) > 0 || pr.Err != ""
}

// Report is a campaign's aggregated, byte-stable outcome.
type Report struct {
	Name        string
	Seed        uint64
	Points, Ops int
	Results     []PointResult
	// Shrunk is the minimal failing crash point found by bisecting the
	// first violation's trigger threshold (nil when the campaign is
	// clean or the violation was a harness error).
	Shrunk *PointResult
}

// Prepare runs the fault-free profile pass and derives the trigger for
// every point. Idempotent; Run calls it automatically.
func (c *Campaign) Prepare() error {
	if c.specs != nil {
		return nil
	}
	if c.Points <= 0 || c.Ops <= 0 || c.Build == nil {
		return fmt.Errorf("fault: campaign %q needs Points, Ops and Build", c.Name)
	}
	env := sim.NewEnv()
	in := Install(env, Plan{Seed: c.Seed})
	var perr error
	env.Go("fault.profile", func(p *sim.Proc) {
		cyc, err := c.Build(env, p)
		if err != nil {
			perr = fmt.Errorf("fault: profile build: %w", err)
			return
		}
		for k := 0; k < c.Ops; k++ {
			if _, err := cyc.Step(p, k); err != nil {
				perr = fmt.Errorf("fault: profile step %d: %w", k, err)
				return
			}
		}
	})
	env.Run()
	if perr != nil {
		return perr
	}
	for ev := Event(0); ev < numEvents; ev++ {
		c.profile.counts[ev] = in.Count(ev)
	}
	c.profile.dur = env.Now()

	// Active trigger classes: virtual time plus every event class the
	// profile run actually exercised.
	type class struct {
		ev   Event
		time bool
		max  uint64
	}
	classes := []class{{time: true, max: uint64(c.profile.dur)}}
	for ev := Event(0); ev < numEvents; ev++ {
		if c.profile.counts[ev] > 0 {
			classes = append(classes, class{ev: ev, max: c.profile.counts[ev]})
		}
	}
	perClass := (c.Points + len(classes) - 1) / len(classes)
	jit := splitmix64{s: c.Seed ^ 0x2B55D001}
	c.specs = make([]Trigger, c.Points)
	for i := range c.specs {
		cl := classes[i%len(classes)]
		j := i / len(classes)
		frac := (float64(j) + jit.float()) / float64(perClass)
		if frac >= 1 {
			frac = 0.999999
		}
		n := 1 + uint64(frac*float64(cl.max))
		if n > cl.max {
			n = cl.max
		}
		if cl.time {
			c.specs[i] = Trigger{At: sim.Time(n)}
		} else {
			c.specs[i] = Trigger{On: cl.ev, N: n}
		}
	}
	return nil
}

// NumPoints returns the planned point count (after Prepare).
func (c *Campaign) NumPoints() int { return len(c.specs) }

// pointSeed decorrelates per-point randomness from the point order so
// results do not depend on scheduling.
func (c *Campaign) pointSeed(i int) uint64 {
	return c.Seed + uint64(i)*0x9E3779B97F4A7C15
}

// RunPoint executes crash point i on a fresh environment. Safe to call
// concurrently for distinct i once Prepare has run.
func (c *Campaign) RunPoint(i int) PointResult {
	return c.runTrial(i, c.specs[i])
}

func (c *Campaign) runTrial(i int, trig Trigger) PointResult {
	pr := PointResult{Index: i, Trigger: trig.String()}
	env := sim.NewEnv()
	plan := Plan{Seed: c.pointSeed(i), PowerLoss: trig}
	if c.Tweak != nil {
		c.Tweak(i, &plan)
	}
	in := Install(env, plan)
	// Always-on flight recorder: bounded ring, constant memory, so the
	// one point in thousands that violates hands over its last spans.
	set := obs.Of(env)
	set.EnableFlightRecorder(0)
	env.Go("fault.point", func(p *sim.Proc) {
		cyc, err := c.Build(env, p)
		if err != nil {
			pr.Err = fmt.Sprintf("build: %v", err)
			return
		}
		var committed []string
		for k := 0; k < c.Ops; k++ {
			if in.Tripped() {
				break
			}
			key, err := cyc.Step(p, k)
			if err != nil {
				pr.Err = fmt.Sprintf("step %d: %v", k, err)
				return
			}
			committed = append(committed, key)
		}
		why, at := in.TripInfo()
		pr.TrippedBy, pr.TrippedAt = why, int64(at)
		in.Disarm()
		staged, err := cyc.Stage(p)
		if err != nil {
			pr.Err = fmt.Sprintf("stage: %v", err)
			return
		}
		persisted, energy, err := cyc.Crash(p)
		if err != nil {
			pr.Err = fmt.Sprintf("crash: %v", err)
			return
		}
		pr.Persisted, pr.DumpEnergyJ = persisted, energy
		recovered, phantoms, err := cyc.Recover(p)
		if err != nil {
			pr.Err = fmt.Sprintf("recover: %v", err)
			return
		}
		if rr, ok := cyc.(RepairReporter); ok {
			n, fail := rr.RecoveryRepair()
			pr.Repairs = n
			if fail != "" {
				pr.Err = fmt.Sprintf("recovery repair: %s", fail)
				return
			}
		}
		rec := make(map[string]bool, len(recovered))
		for _, k := range recovered {
			rec[k] = true
		}
		for _, k := range committed {
			if !rec[k] {
				pr.Lost = append(pr.Lost, k)
			}
		}
		pr.Committed, pr.Recovered = len(committed), len(recovered)
		pr.StagedSurvived = staged != "" && rec[staged]
		pr.Phantom = append(pr.Phantom, phantoms...)
		sort.Strings(pr.Lost)
		sort.Strings(pr.Phantom)
		pr.Faults = FaultCounts{
			Trips:         in.cTrips.Value(),
			EccRetries:    in.cRetries.Value(),
			Uncorrectable: in.cUncorr.Value(),
			ProgramFails:  in.cProgFail.Value(),
			EraseFails:    in.cEraseFail.Value(),
			Timeouts:      in.cTimeout.Value(),
			DumpCuts:      in.cDumpCut.Value(),
		}
	})
	env.Run()
	if pr.Violation() {
		d := set.FlightDump(fmt.Sprintf("campaign %s point %d trigger %s: durability violation",
			c.Name, i, pr.Trigger))
		pr.Flight = &d
	}
	return pr
}

// Run prepares the campaign, executes every point through parallelFor
// (which must call fn(i) exactly once for each 0 <= i < n, in any
// order or concurrency) and returns the aggregated report. Results
// land in index order, so the report is byte-identical regardless of
// how parallelFor schedules the points.
func (c *Campaign) Run(parallelFor func(n int, fn func(i int))) (*Report, error) {
	if err := c.Prepare(); err != nil {
		return nil, err
	}
	results := make([]PointResult, c.NumPoints())
	parallelFor(len(results), func(i int) { results[i] = c.RunPoint(i) })
	return c.Finish(results), nil
}

// Finish aggregates point results into a report and, when a violation
// is present, shrinks the first one to a minimal failing crash point.
func (c *Campaign) Finish(results []PointResult) *Report {
	r := &Report{Name: c.Name, Seed: c.Seed, Points: c.Points, Ops: c.Ops, Results: results}
	for _, pr := range results {
		if pr.Violation() && pr.Err == "" {
			s := c.shrink(pr)
			r.Shrunk = &s
			break
		}
	}
	return r
}

// shrink bisects the violating point's trigger threshold toward the
// smallest value that still violates, re-running the cycle each probe.
// Deterministic: same seed, same violation, same minimal point.
func (c *Campaign) shrink(bad PointResult) PointResult {
	trig := c.specs[bad.Index]
	fails := func(t Trigger) (PointResult, bool) {
		pr := c.runTrial(bad.Index, t)
		return pr, pr.Violation() && pr.Err == ""
	}
	best := bad
	switch {
	case trig.N > 0:
		lo, hi := uint64(1), trig.N
		for lo < hi {
			mid := lo + (hi-lo)/2
			if pr, v := fails(Trigger{On: trig.On, N: mid}); v {
				best, hi = pr, mid
			} else {
				lo = mid + 1
			}
		}
	case trig.At > 0:
		lo, hi := sim.Time(1), trig.At
		for lo < hi {
			mid := lo + (hi-lo)/2
			if pr, v := fails(Trigger{At: mid}); v {
				best, hi = pr, mid
			} else {
				lo = mid + 1
			}
		}
	}
	return best
}

// Violations returns the violating points (index order).
func (r *Report) Violations() []PointResult {
	var out []PointResult
	for _, pr := range r.Results {
		if pr.Violation() {
			out = append(out, pr)
		}
	}
	return out
}

// WriteText renders the deterministic campaign report.
func (r *Report) WriteText(w io.Writer) error {
	classes := map[string]int{}
	tripped := 0
	committed, recovered, survivors, persisted := 0, 0, 0, 0
	repairs := 0
	var energy float64
	var faults FaultCounts
	for _, pr := range r.Results {
		classes[triggerClass(pr.Trigger)]++
		if pr.TrippedBy != "" {
			tripped++
		}
		committed += pr.Committed
		recovered += pr.Recovered
		if pr.StagedSurvived {
			survivors++
		}
		if pr.Persisted {
			persisted++
		}
		repairs += pr.Repairs
		energy += pr.DumpEnergyJ
		faults = faults.add(pr.Faults)
	}
	names := make([]string, 0, len(classes))
	for n := range classes {
		names = append(names, n)
	}
	sort.Strings(names)
	if _, err := fmt.Fprintf(w, "campaign %s: %d points x %d ops, seed 0x%x\n",
		r.Name, r.Points, r.Ops, r.Seed); err != nil {
		return err
	}
	fmt.Fprintf(w, "  triggers:")
	for _, n := range names {
		fmt.Fprintf(w, " %s=%d", n, classes[n])
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  tripped mid-run: %d/%d\n", tripped, len(r.Results))
	fmt.Fprintf(w, "  committed=%d recovered=%d staged-survivors=%d dump-persisted=%d/%d\n",
		committed, recovered, survivors, persisted, len(r.Results))
	fmt.Fprintf(w, "  dump energy: %.2f mJ total\n", energy*1e3)
	fmt.Fprintf(w, "  faults: trips=%d ecc-retries=%d uncorrectable=%d program-fails=%d erase-fails=%d timeouts=%d torn-repairs=%d\n",
		faults.Trips, faults.EccRetries, faults.Uncorrectable,
		faults.ProgramFails, faults.EraseFails, faults.Timeouts, repairs)
	viol := r.Violations()
	fmt.Fprintf(w, "  violations: %d\n", len(viol))
	for _, pr := range viol {
		fmt.Fprintf(w, "  VIOLATION point %d trigger %s: lost=%d %v phantom=%d %v err=%q\n",
			pr.Index, pr.Trigger, len(pr.Lost), pr.Lost, len(pr.Phantom), pr.Phantom, pr.Err)
	}
	// Post-mortem context: the minimal point's flight dump when the
	// shrinker found one, otherwise the first violation's.
	dump := func(pr *PointResult) error {
		if pr == nil || pr.Flight == nil {
			return nil
		}
		return pr.Flight.WriteText(w)
	}
	if r.Shrunk != nil {
		if _, err := fmt.Fprintf(w, "  minimal failing crash point: %s (lost=%d phantom=%d)\n",
			r.Shrunk.Trigger, len(r.Shrunk.Lost), len(r.Shrunk.Phantom)); err != nil {
			return err
		}
		return dump(r.Shrunk)
	}
	if len(viol) > 0 {
		return dump(&viol[0])
	}
	return nil
}

// triggerClass maps a trigger description back to its class name for
// the report's histogram line.
func triggerClass(desc string) string {
	for i := 0; i < len(desc); i++ {
		switch desc[i] {
		case '=':
			return desc[:i]
		case '#':
			return desc[:i]
		}
	}
	return desc
}
