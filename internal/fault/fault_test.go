package fault

import (
	"testing"

	"twobssd/internal/sim"
)

// The disabled path is a nil *Injector: every hook must be a no-op
// that allocates nothing, so a fault-free run pays only the cached-nil
// pointer checks on the sim hot path.
func TestNilInjectorHooksAllocateNothing(t *testing.T) {
	var in *Injector
	allocs := testing.AllocsPerRun(1000, func() {
		in.Tick(EvNandProgram)
		in.Tick(EvWCBurst)
		_ = in.Tripped()
		_, _ = in.TripInfo()
		_ = in.Count(EvWalCommit)
		_ = in.ReadFault(4096, 100, 3600*sim.Second)
		_ = in.ProgramFault()
		_ = in.EraseFault()
		_, _ = in.Timeouts()
		_ = in.DumpCut(1)
		in.Disarm()
		_ = in.Enabled()
		_ = in.Plan()
	})
	if allocs != 0 {
		t.Fatalf("nil-injector hooks allocated %.1f allocs/op, want 0", allocs)
	}
}

func BenchmarkDisabledInjectorHooks(b *testing.B) {
	var in *Injector
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		in.Tick(EvNandProgram)
		_ = in.Tripped()
		_ = in.ReadFault(4096, 100, 0)
		_ = in.ProgramFault()
		_, _ = in.Timeouts()
	}
}

func TestEventTriggerTripsAtNthEvent(t *testing.T) {
	env := sim.NewEnv()
	in := Install(env, Plan{Seed: 1, PowerLoss: Trigger{On: EvWalCommit, N: 3}})
	for i := 0; i < 2; i++ {
		in.Tick(EvWalCommit)
		if in.Tripped() {
			t.Fatalf("tripped after %d events, want 3", i+1)
		}
	}
	in.Tick(EvNandProgram) // other classes must not advance the trigger
	if in.Tripped() {
		t.Fatal("tripped on the wrong event class")
	}
	in.Tick(EvWalCommit)
	if !in.Tripped() {
		t.Fatal("not tripped at the 3rd wal commit")
	}
	if why, _ := in.TripInfo(); why != "wal_commit#3" {
		t.Fatalf("trip reason = %q, want wal_commit#3", why)
	}
}

func TestTimeTriggerTripsAtVirtualTime(t *testing.T) {
	env := sim.NewEnv()
	in := Install(env, Plan{Seed: 1, PowerLoss: Trigger{At: 12345}})
	env.Go("spin", func(p *sim.Proc) { p.Sleep(1 * sim.Millisecond) })
	env.Run()
	if !in.Tripped() {
		t.Fatal("time trigger never fired")
	}
	if _, at := in.TripInfo(); at != 12345 {
		t.Fatalf("tripped at t=%d, want 12345", int64(at))
	}
}

func TestDisarmStopsTripping(t *testing.T) {
	env := sim.NewEnv()
	in := Install(env, Plan{Seed: 1, PowerLoss: Trigger{On: EvWCBurst, N: 1}})
	in.Disarm()
	in.Tick(EvWCBurst)
	if in.Tripped() {
		t.Fatal("disarmed injector tripped")
	}
}

// Same seed, same plan: the probabilistic hooks must produce identical
// decision sequences across independent injectors.
func TestSameSeedSameFaultSequence(t *testing.T) {
	mk := func() *Injector {
		return Install(sim.NewEnv(), Plan{
			Seed:             42,
			ProgramFailOneIn: 7,
			EraseFailOneIn:   5,
			TimeoutOneIn:     3,
			BER:              DefaultBER(),
		})
	}
	a, b := mk(), mk()
	for i := 0; i < 500; i++ {
		if a.ProgramFault() != b.ProgramFault() {
			t.Fatalf("program-fault sequences diverge at %d", i)
		}
		if a.EraseFault() != b.EraseFault() {
			t.Fatalf("erase-fault sequences diverge at %d", i)
		}
		an, ad := a.Timeouts()
		bn, bd := b.Timeouts()
		if an != bn || ad != bd {
			t.Fatalf("timeout sequences diverge at %d", i)
		}
		ar := a.ReadFault(4096, 3000, 100*3600*sim.Second)
		br := b.ReadFault(4096, 3000, 100*3600*sim.Second)
		if ar != br {
			t.Fatalf("read-fault sequences diverge at %d: %+v vs %+v", i, ar, br)
		}
	}
}

func TestBERModelRetriesAndUncorrectable(t *testing.T) {
	env := sim.NewEnv()
	// lambda = 1e-3 * 4096*8 ≈ 32.8 expected bit errors.
	m := &BERModel{Base: 1e-3, ECCBits: 10, RetrySteps: 2, RetryLatency: 60 * sim.Microsecond}
	in := Install(env, Plan{Seed: 9, BER: m})
	rd := in.ReadFault(4096, 0, 0)
	// 32ish errors halve per retry: 32 -> 16 -> 8 <= 10 after 2 steps.
	if rd.Retries != 2 || rd.Uncorrectable {
		t.Fatalf("verdict = %+v, want 2 correcting retries", rd)
	}
	if rd.Extra != 2*m.RetryLatency {
		t.Fatalf("extra latency = %v, want %v", rd.Extra, 2*m.RetryLatency)
	}

	// With ECC that only corrects 1 bit the same read stays broken.
	m2 := &BERModel{Base: 1e-3, ECCBits: 1, RetrySteps: 2, RetryLatency: 60 * sim.Microsecond}
	in2 := Install(sim.NewEnv(), Plan{Seed: 9, BER: m2})
	if rd := in2.ReadFault(4096, 0, 0); !rd.Uncorrectable {
		t.Fatalf("verdict = %+v, want uncorrectable", rd)
	}

	// Fresh pages with a realistic model read clean.
	in3 := Install(sim.NewEnv(), Plan{Seed: 9, BER: DefaultBER()})
	if rd := in3.ReadFault(4096, 0, 0); rd != (ReadDisturb{}) {
		t.Fatalf("fresh page verdict = %+v, want clean", rd)
	}
}

// Wear and retention must monotonically raise the modeled raw BER.
func TestBERModelGrowsWithWearAndRetention(t *testing.T) {
	m := DefaultBER()
	ber := func(erase int, hours float64) float64 {
		return m.Base * (1 + m.PECycleGrowth*float64(erase)) * (1 + m.RetentionPerHour*hours)
	}
	if !(ber(1000, 0) > ber(0, 0)) {
		t.Fatal("BER must grow with P/E cycles")
	}
	if !(ber(0, 100) > ber(0, 0)) {
		t.Fatal("BER must grow with retention")
	}
}

func TestOfReturnsInstalledInjector(t *testing.T) {
	env := sim.NewEnv()
	if Of(env) != nil {
		t.Fatal("Of on a bare env must be nil")
	}
	in := Install(env, Plan{Seed: 7})
	if Of(env) != in {
		t.Fatal("Of must return the installed injector")
	}
}
