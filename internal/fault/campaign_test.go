package fault_test

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"twobssd/internal/fault"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// plantedCycle is a synthetic workload that commits keys, instruments
// each step as a span, and — the planted bug — always loses its last
// committed key on recovery despite reporting a persisted dump.
type plantedCycle struct {
	env       *sim.Env
	committed []string
}

func (c *plantedCycle) Step(p *sim.Proc, i int) (string, error) {
	tr := obs.Of(c.env).Tracer()
	sp := tr.BeginProc(p, "workload", "commit_step")
	p.Sleep(100 * sim.Microsecond)
	sp.End()
	key := fmt.Sprintf("k%03d", i)
	c.committed = append(c.committed, key)
	return key, nil
}

func (c *plantedCycle) Stage(p *sim.Proc) (string, error) { return "", nil }

func (c *plantedCycle) Crash(p *sim.Proc) (bool, float64, error) {
	obs.Of(c.env).Tracer().Instant("workload", "fault", "power_cut")
	p.Sleep(10 * sim.Microsecond)
	return true, 1e-4, nil
}

func (c *plantedCycle) Recover(p *sim.Proc) ([]string, []string, error) {
	p.Sleep(10 * sim.Microsecond)
	if len(c.committed) == 0 {
		return nil, nil, nil
	}
	return c.committed[:len(c.committed)-1], nil, nil // planted loss
}

// TestPlantedViolationProducesFlightDump plants a durability violation
// and checks the campaign hands over a flight dump whose span tail
// leads up to the trigger, both in the result and in the text report.
func TestPlantedViolationProducesFlightDump(t *testing.T) {
	c := &fault.Campaign{
		Name: "planted", Points: 3, Ops: 6, Seed: 0x2b55,
		Build: func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
			return &plantedCycle{env: env}, nil
		},
	}
	serial := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	rep, err := c.Run(serial)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	viol := rep.Violations()
	if len(viol) == 0 {
		t.Fatal("planted violation not detected")
	}
	for _, pr := range viol {
		if pr.Flight == nil {
			t.Fatalf("point %d violated but has no flight dump", pr.Index)
		}
		if !strings.Contains(pr.Flight.Reason, "durability violation") {
			t.Fatalf("dump reason = %q", pr.Flight.Reason)
		}
		if len(pr.Flight.Events) == 0 {
			t.Fatalf("point %d flight dump is empty", pr.Index)
		}
		var spans int
		for _, ev := range pr.Flight.Events {
			if ev.Kind == "span" && ev.Name == "commit_step" {
				spans++
			}
		}
		if spans == 0 {
			t.Fatalf("point %d dump has no commit_step spans: %+v", pr.Index, pr.Flight.Events)
		}
		// Chronological, ending at (or after) the events nearest the
		// crash: the last event must not precede the first.
		first, last := pr.Flight.Events[0], pr.Flight.Events[len(pr.Flight.Events)-1]
		if last.TimeNs < first.TimeNs {
			t.Fatalf("dump events out of order: %d .. %d", first.TimeNs, last.TimeNs)
		}
	}
	if rep.Shrunk == nil || rep.Shrunk.Flight == nil {
		t.Fatal("shrunk minimal point carries no flight dump")
	}

	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	out := buf.String()
	for _, want := range []string{"flight recorder", "commit_step", "metrics at failure"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

// TestCleanCampaignHasNoDump checks dumps are captured only on
// violation — a clean sweep stays dump-free.
func TestCleanCampaignHasNoDump(t *testing.T) {
	c := &fault.Campaign{
		Name: "clean", Points: 2, Ops: 4, Seed: 0x2b56,
		Build: func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
			return &cleanCycle{env: env}, nil
		},
	}
	serial := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	rep, err := c.Run(serial)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Violations()) != 0 {
		t.Fatalf("clean campaign reported violations: %+v", rep.Violations())
	}
	for _, pr := range rep.Results {
		if pr.Flight != nil {
			t.Fatalf("clean point %d carries a flight dump", pr.Index)
		}
	}
}

type cleanCycle struct {
	env       *sim.Env
	committed []string
}

func (c *cleanCycle) Step(p *sim.Proc, i int) (string, error) {
	p.Sleep(50 * sim.Microsecond)
	key := fmt.Sprintf("k%03d", i)
	c.committed = append(c.committed, key)
	return key, nil
}

func (c *cleanCycle) Stage(p *sim.Proc) (string, error) { return "", nil }

func (c *cleanCycle) Crash(p *sim.Proc) (bool, float64, error) {
	p.Sleep(10 * sim.Microsecond)
	return true, 1e-4, nil
}

func (c *cleanCycle) Recover(p *sim.Proc) ([]string, []string, error) {
	return append([]string(nil), c.committed...), nil, nil
}

// repairCycle is a cleanCycle that additionally reports torn-tail
// repair outcomes through fault.RepairReporter.
type repairCycle struct {
	cleanCycle
	repairs int
	fail    string
}

func (c *repairCycle) RecoveryRepair() (int, string) { return c.repairs, c.fail }

func (c *repairCycle) Step(p *sim.Proc, i int) (string, error) {
	sp := obs.Of(c.env).Tracer().BeginProc(p, "workload", "repair_step")
	p.Sleep(50 * sim.Microsecond)
	sp.End()
	return c.cleanCycle.Step(p, i)
}

// TestRepairFailureIsViolationWithDump: a WAL recovery that cannot
// durably repair its torn tail is a first-class campaign violation —
// surfaced with the repair error and a flight-recorder dump — even
// when no committed record was lost.
func TestRepairFailureIsViolationWithDump(t *testing.T) {
	c := &fault.Campaign{
		Name: "repair-fail", Points: 2, Ops: 4, Seed: 0x2b57,
		Build: func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
			return &repairCycle{
				cleanCycle: cleanCycle{env: env},
				repairs:    1, fail: "readback at 4096 not clean",
			}, nil
		},
	}
	serial := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	rep, err := c.Run(serial)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	viol := rep.Violations()
	if len(viol) != 2 {
		t.Fatalf("violations = %d, want every point", len(viol))
	}
	for _, pr := range viol {
		if !strings.Contains(pr.Err, "recovery repair") ||
			!strings.Contains(pr.Err, "readback at 4096") {
			t.Fatalf("point %d err = %q, want the repair failure", pr.Index, pr.Err)
		}
		if pr.Flight == nil || len(pr.Flight.Events) == 0 {
			t.Fatalf("point %d repair violation carries no flight dump", pr.Index)
		}
		if pr.Repairs != 1 {
			t.Fatalf("point %d repairs = %d, want 1", pr.Index, pr.Repairs)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), `err="recovery repair: readback at 4096 not clean"`) {
		t.Fatalf("report does not surface the repair failure:\n%s", buf.String())
	}
}

// TestSuccessfulRepairsAggregate: successful torn-tail repairs are no
// violation and aggregate into the report's torn-repairs fault count.
func TestSuccessfulRepairsAggregate(t *testing.T) {
	c := &fault.Campaign{
		Name: "repair-ok", Points: 3, Ops: 4, Seed: 0x2b58,
		Build: func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
			return &repairCycle{cleanCycle: cleanCycle{env: env}, repairs: 2}, nil
		},
	}
	serial := func(n int, fn func(i int)) {
		for i := 0; i < n; i++ {
			fn(i)
		}
	}
	rep, err := c.Run(serial)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(rep.Violations()) != 0 {
		t.Fatalf("successful repairs misreported as violations: %+v", rep.Violations())
	}
	var buf bytes.Buffer
	if err := rep.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	if !strings.Contains(buf.String(), "torn-repairs=6") {
		t.Fatalf("report missing aggregated torn-repairs:\n%s", buf.String())
	}
}
