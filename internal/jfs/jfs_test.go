package jfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

type rig struct {
	env *sim.Env
	ssd *core.TwoBSSD
	fs  *vfs.FS
}

func newRig() *rig {
	e := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 128
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.1
	cfg.Base.WriteBufferPages = 128
	cfg.Base.DrainWorkers = 8
	cfg.BABufferBytes = 128 * 4096
	ssd := core.New(e, cfg)
	return &rig{env: e, ssd: ssd, fs: vfs.New(ssd.Device())}
}

func (r *rig) open(t *testing.T, mode wal.CommitMode) (*Store, Config) {
	t.Helper()
	var home, journal *vfs.File
	var err error
	if r.fs.Exists("home") {
		home, _ = r.fs.Open("home")
		journal, _ = r.fs.Open("journal")
	} else {
		home, err = r.fs.Create("home", 256*BlockSize)
		if err != nil {
			t.Fatal(err)
		}
		journal, err = r.fs.Create("journal", 2<<20)
		if err != nil {
			t.Fatal(err)
		}
	}
	cfg := Config{Home: home, Journal: journal, Mode: mode}
	if mode == wal.BA {
		cfg.SSD = r.ssd
		cfg.EIDs = []core.EID{0, 1}
		cfg.SegmentBytes = 64 * 4096
	}
	var s *Store
	r.env.Go("open", func(p *sim.Proc) {
		s, err = Open(r.env, p, cfg)
		if err != nil {
			t.Errorf("open: %v", err)
		}
	})
	r.env.Run()
	if s == nil {
		t.Fatal("open failed")
	}
	return s, cfg
}

func testWriteRead(t *testing.T, mode wal.CommitMode) {
	r := newRig()
	s, _ := r.open(t, mode)
	r.env.Go("t", func(p *sim.Proc) {
		tx := s.Begin()
		tx.WriteBlock(3, []byte("inode table v1"))
		tx.WriteBlock(7, []byte("bitmap v1"))
		if err := tx.Commit(p); err != nil {
			t.Fatalf("commit: %v", err)
		}
		got, err := s.ReadBlock(p, 3)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.HasPrefix(got, []byte("inode table v1")) {
			t.Errorf("block 3 = %q", got[:20])
		}
		// Overwrite in a later transaction.
		tx2 := s.Begin()
		tx2.WriteBlock(3, []byte("inode table v2"))
		if err := tx2.Commit(p); err != nil {
			t.Fatal(err)
		}
		got, _ = s.ReadBlock(p, 3)
		if !bytes.HasPrefix(got, []byte("inode table v2")) {
			t.Errorf("block 3 after overwrite = %q", got[:20])
		}
	})
	r.env.Run()
}

func TestWriteReadBlockMode(t *testing.T) { testWriteRead(t, wal.Sync) }
func TestWriteReadBAMode(t *testing.T)    { testWriteRead(t, wal.BA) }

func TestEmptyTxnIsNoop(t *testing.T) {
	r := newRig()
	s, _ := r.open(t, wal.Sync)
	r.env.Go("t", func(p *sim.Proc) {
		if err := s.Begin().Commit(p); err != nil {
			t.Fatalf("empty commit: %v", err)
		}
	})
	r.env.Run()
	if s.Stats().Txns != 0 {
		t.Fatal("empty txn counted")
	}
}

func TestOutOfRangeBlock(t *testing.T) {
	r := newRig()
	s, _ := r.open(t, wal.Sync)
	tx := s.Begin()
	if err := tx.WriteBlock(s.Blocks(), []byte("x")); !errors.Is(err, ErrOutOfHome) {
		t.Fatalf("err = %v", err)
	}
	r.env.Go("t", func(p *sim.Proc) {
		if _, err := s.ReadBlock(p, s.Blocks()+1); !errors.Is(err, ErrOutOfHome) {
			t.Errorf("read err = %v", err)
		}
	})
	r.env.Run()
}

func TestCheckpointWritesHome(t *testing.T) {
	r := newRig()
	s, cfg := r.open(t, wal.Sync)
	r.env.Go("t", func(p *sim.Proc) {
		tx := s.Begin()
		tx.WriteBlock(9, []byte("superblock"))
		if err := tx.Commit(p); err != nil {
			t.Fatal(err)
		}
		if err := s.Checkpoint(p); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		// The home file itself must now hold the block.
		buf := make([]byte, BlockSize)
		if err := cfg.Home.ReadAt(p, 9*BlockSize, buf); err != nil {
			t.Fatal(err)
		}
		if !bytes.HasPrefix(buf, []byte("superblock")) {
			t.Errorf("home block = %q", buf[:16])
		}
		// And reads still work after the pending set cleared.
		got, _ := s.ReadBlock(p, 9)
		if !bytes.HasPrefix(got, []byte("superblock")) {
			t.Error("read after checkpoint broken")
		}
	})
	r.env.Run()
	if s.Stats().Checkpoints == 0 {
		t.Fatal("no checkpoint counted")
	}
}

func TestAutomaticCheckpointOnPressure(t *testing.T) {
	r := newRig()
	s, _ := r.open(t, wal.Sync)
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 200; i++ {
			tx := s.Begin()
			tx.WriteBlock(uint32(i%64), []byte(fmt.Sprintf("v%d", i)))
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
	})
	r.env.Run()
	if s.Stats().Checkpoints == 0 {
		t.Fatal("no automatic checkpoint")
	}
}

func TestCrashRecoveryReplaysJournal(t *testing.T) {
	r := newRig()
	s, _ := r.open(t, wal.Sync)
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			tx := s.Begin()
			tx.WriteBlock(uint32(i), []byte(fmt.Sprintf("meta-%d", i)))
			if err := tx.Commit(p); err != nil {
				t.Fatal(err)
			}
		}
		// No checkpoint: home file still stale. "Crash" and reopen.
	})
	r.env.Run()
	s2, _ := r.open(t, wal.Sync)
	if s2.Stats().Replayed != 10 {
		t.Fatalf("replayed %d txns, want 10", s2.Stats().Replayed)
	}
	r.env.Go("verify", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			got, err := s2.ReadBlock(p, uint32(i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte(fmt.Sprintf("meta-%d", i))) {
				t.Errorf("block %d = %q", i, got[:10])
			}
		}
	})
	r.env.Run()
}

func TestBAJournalSurvivesPowerLoss(t *testing.T) {
	r := newRig()
	s, _ := r.open(t, wal.BA)
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			tx := s.Begin()
			tx.WriteBlock(uint32(10+i), []byte(fmt.Sprintf("journaled-%d", i)))
			if err := tx.Commit(p); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.ssd.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := r.ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
	})
	r.env.Run()
	s2, _ := r.open(t, wal.BA)
	r.env.Go("verify", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			got, err := s2.ReadBlock(p, uint32(10+i))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte(fmt.Sprintf("journaled-%d", i))) {
				t.Errorf("block %d lost after power cycle: %q", 10+i, got[:12])
			}
		}
	})
	r.env.Run()
}

func TestBACommitFasterForJournal(t *testing.T) {
	measure := func(mode wal.CommitMode) sim.Duration {
		r := newRig()
		s, _ := r.open(t, mode)
		var took sim.Duration
		r.env.Go("t", func(p *sim.Proc) {
			// Warm up (first BA append pays the segment pin).
			w := s.Begin()
			w.WriteBlock(0, []byte("warm"))
			w.Commit(p)
			start := r.env.Now()
			for i := 0; i < 20; i++ {
				tx := s.Begin()
				tx.WriteBlock(uint32(1+i%32), []byte("m"))
				if err := tx.Commit(p); err != nil {
					t.Fatal(err)
				}
			}
			took = sim.Duration(r.env.Now()-start) / 20
		})
		r.env.Run()
		return took
	}
	ba, blk := measure(wal.BA), measure(wal.Sync)
	if ba >= blk {
		t.Fatalf("BA journal commit %v not faster than block %v", ba, blk)
	}
}

func TestRandomizedJournalConsistency(t *testing.T) {
	r := newRig()
	s, _ := r.open(t, wal.BA)
	rng := rand.New(rand.NewSource(11))
	shadow := make(map[uint32]string)
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 150; i++ {
			tx := s.Begin()
			n := 1 + rng.Intn(4)
			for j := 0; j < n; j++ {
				blk := uint32(rng.Intn(64))
				v := fmt.Sprintf("txn%d-%d", i, j)
				tx.WriteBlock(blk, []byte(v))
				shadow[blk] = v
			}
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		for blk, want := range shadow {
			got, err := s.ReadBlock(p, blk)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.HasPrefix(got, []byte(want)) {
				t.Errorf("block %d = %q, want %q", blk, got[:16], want)
			}
		}
	})
	r.env.Run()
}
