// Package jfs is a jbd2-style journaling block layer — the paper's
// other motivating workload ("2B-SSD is also a good fit for file system
// journaling", Section IV). Metadata block updates are grouped into
// transactions, committed to a write-ahead journal (block WAL or
// BA-WAL on a 2B-SSD), and checkpointed to their home locations later.
//
// The journal carries whole 4 KB blocks like ext4's jbd2, so the
// byte-vs-block logging contrast shows up differently than in the
// database engines: the win comes from commit latency, not record
// size.
package jfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// BlockSize is the journaled block granule.
const BlockSize = 4096

// Config assembles a journaled store.
type Config struct {
	// Home is the file holding the filesystem image; Journal the
	// journal file (on the log device under test).
	Home    *vfs.File
	Journal *vfs.File

	Mode         wal.CommitMode
	SSD          *core.TwoBSSD
	EIDs         []core.EID
	BufferOffset int
	SegmentBytes int

	// CheckpointEvery transactions, dirty journaled blocks write back
	// to their home locations and the journal truncates.
	CheckpointEvery int

	AsyncFlushInterval sim.Duration
}

// Errors reported by the journal layer.
var (
	ErrBadConfig = errors.New("jfs: invalid configuration")
	ErrOutOfHome = errors.New("jfs: block beyond home file")
)

// Stats aggregates journal activity.
type Stats struct {
	Txns        uint64
	BlocksInTxn uint64
	Checkpoints uint64
	Replayed    uint64
}

// Store is a journaled block store.
type Store struct {
	cfg Config
	env *sim.Env
	log *wal.Log

	// pending maps block -> newest journaled-but-not-checkpointed data.
	pending map[uint32][]byte
	sinceCk int

	// mu serializes transactions (jbd2 has one running transaction).
	mu *sim.Resource

	stats Stats
}

// Open creates or recovers a store: journal records present in the
// journal file are replayed into the pending set (crash recovery).
func Open(env *sim.Env, p *sim.Proc, cfg Config) (*Store, error) {
	if cfg.Home == nil || cfg.Journal == nil {
		return nil, fmt.Errorf("%w: Home and Journal required", ErrBadConfig)
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 64
	}
	wcfg := wal.Config{
		Mode:               cfg.Mode,
		File:               cfg.Journal,
		SegmentBytes:       cfg.SegmentBytes,
		AsyncFlushInterval: cfg.AsyncFlushInterval,
	}
	if cfg.Mode == wal.BA || cfg.Mode == wal.PMR {
		wcfg.SSD = cfg.SSD
		wcfg.EIDs = cfg.EIDs
		wcfg.BufferOffset = cfg.BufferOffset
		wcfg.DoubleBuffer = len(cfg.EIDs) >= 2
	}
	l, err := wal.Open(env, wcfg)
	if err != nil {
		return nil, err
	}
	s := &Store{
		cfg:     cfg,
		env:     env,
		log:     l,
		pending: make(map[uint32][]byte),
		mu:      env.NewResource("jfs.txn", 1),
	}
	if err := s.recover(p); err != nil {
		return nil, err
	}
	return s, nil
}

// Stats returns a snapshot of counters.
func (s *Store) Stats() Stats { return s.stats }

// Blocks returns the home file capacity in blocks.
func (s *Store) Blocks() uint32 { return uint32(s.cfg.Home.Capacity() / BlockSize) }

// Txn is one journaled transaction: a set of whole-block updates.
type Txn struct {
	s      *Store
	blocks map[uint32][]byte
}

// Begin opens a transaction.
func (s *Store) Begin() *Txn {
	return &Txn{s: s, blocks: make(map[uint32][]byte)}
}

// WriteBlock stages a full-block update. Data shorter than BlockSize
// is zero padded.
func (t *Txn) WriteBlock(blk uint32, data []byte) error {
	if blk >= t.s.Blocks() {
		return fmt.Errorf("%w: %d >= %d", ErrOutOfHome, blk, t.s.Blocks())
	}
	page := make([]byte, BlockSize)
	copy(page, data)
	t.blocks[blk] = page
	return nil
}

// encodeTxn serializes a transaction: [4]count then per block
// [4]blockID [BlockSize]data.
func encodeTxn(blocks map[uint32][]byte) []byte {
	out := make([]byte, 4+len(blocks)*(4+BlockSize))
	binary.LittleEndian.PutUint32(out, uint32(len(blocks)))
	pos := 4
	for blk, data := range blocks {
		binary.LittleEndian.PutUint32(out[pos:], blk)
		copy(out[pos+4:], data)
		pos += 4 + BlockSize
	}
	return out
}

func decodeTxn(payload []byte) (map[uint32][]byte, error) {
	if len(payload) < 4 {
		return nil, errors.New("jfs: short txn record")
	}
	n := int(binary.LittleEndian.Uint32(payload))
	if len(payload) != 4+n*(4+BlockSize) {
		return nil, errors.New("jfs: malformed txn record")
	}
	out := make(map[uint32][]byte, n)
	pos := 4
	for i := 0; i < n; i++ {
		blk := binary.LittleEndian.Uint32(payload[pos:])
		data := append([]byte(nil), payload[pos+4:pos+4+BlockSize]...)
		out[blk] = data
		pos += 4 + BlockSize
	}
	return out, nil
}

// Commit journals the transaction durably (per the WAL mode) and makes
// its blocks visible. The home file is updated lazily at checkpoint.
func (t *Txn) Commit(p *sim.Proc) error {
	if len(t.blocks) == 0 {
		return nil
	}
	s := t.s
	s.mu.Acquire(p)
	defer s.mu.Release()
	payload := encodeTxn(t.blocks)
	lsn, err := s.log.Append(p, payload)
	if errors.Is(err, wal.ErrLogFull) {
		if err = s.checkpointLocked(p); err != nil {
			return err
		}
		lsn, err = s.log.Append(p, payload)
	}
	if err != nil {
		return err
	}
	if err := s.log.Commit(p, lsn); err != nil {
		return err
	}
	for blk, data := range t.blocks {
		s.pending[blk] = data
	}
	s.stats.Txns++
	s.stats.BlocksInTxn += uint64(len(t.blocks))
	s.sinceCk++
	if s.sinceCk >= s.cfg.CheckpointEvery {
		return s.checkpointLocked(p)
	}
	return nil
}

// ReadBlock returns a block's newest committed contents.
func (s *Store) ReadBlock(p *sim.Proc, blk uint32) ([]byte, error) {
	if blk >= s.Blocks() {
		return nil, fmt.Errorf("%w: %d", ErrOutOfHome, blk)
	}
	if data, ok := s.pending[blk]; ok {
		return append([]byte(nil), data...), nil
	}
	buf := make([]byte, BlockSize)
	if err := s.cfg.Home.ReadAt(p, int64(blk)*BlockSize, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// Checkpoint writes journaled blocks to their home locations and
// truncates the journal.
func (s *Store) Checkpoint(p *sim.Proc) error {
	s.mu.Acquire(p)
	defer s.mu.Release()
	return s.checkpointLocked(p)
}

func (s *Store) checkpointLocked(p *sim.Proc) error {
	for blk, data := range s.pending {
		if err := s.cfg.Home.WriteAt(p, int64(blk)*BlockSize, data); err != nil {
			return err
		}
	}
	if err := s.cfg.Home.Sync(p); err != nil {
		return err
	}
	if err := s.log.Reset(p); err != nil {
		return err
	}
	s.pending = make(map[uint32][]byte)
	s.sinceCk = 0
	s.stats.Checkpoints++
	return nil
}

// recover replays journal records written before a crash.
func (s *Store) recover(p *sim.Proc) error {
	return s.log.Recover(p, func(_ wal.LSN, payload []byte) error {
		blocks, err := decodeTxn(payload)
		if err != nil {
			return err
		}
		for blk, data := range blocks {
			s.pending[blk] = data
		}
		s.stats.Replayed++
		return nil
	})
}
