// Package traffic is a seeded, open-loop traffic model for fleet-scale
// experiments: arrival processes (Poisson, diurnal, bursty, saturation
// ramps) paired with Zipfian key skew. Everything is derived from a
// seed and virtual time only — no wall clock, no global rand — so a
// generated schedule is byte-identical across runs, -j levels and
// partition shards.
//
// "Open loop" means arrival times are drawn independently of service
// completions: a saturated tenant keeps receiving arrivals and its
// backlog (and completion latency) grows, which is what distinguishes
// a real overload from a closed-loop benchmark that politely waits.
package traffic

import (
	"fmt"
	"math"

	"twobssd/internal/sim"
	"twobssd/internal/ycsb"
)

// Rand is a splitmix64 stream (Steele et al.) — the same tiny PRNG the
// fault injector uses, kept local so traffic draws never perturb fault
// streams.
type Rand struct{ s uint64 }

// NewRand seeds a stream.
func NewRand(seed uint64) *Rand { return &Rand{s: seed} }

// Uint64 returns the next raw draw.
func (r *Rand) Uint64() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Float returns a uniform float64 in [0, 1).
func (r *Rand) Float() float64 {
	return float64(r.Uint64()>>11) / float64(uint64(1)<<53)
}

// expGap draws an exponential interarrival gap for a rate in ops/sec
// of virtual time. Rates at or below zero yield a 1s fallback gap so a
// misconfigured process stalls visibly instead of dividing by zero.
func expGap(r *Rand, ratePerSec float64) sim.Duration {
	if ratePerSec <= 0 {
		return sim.Second
	}
	u := r.Float()
	for u == 0 {
		u = r.Float()
	}
	gap := -math.Log(u) / ratePerSec * float64(sim.Second)
	if gap < 1 {
		gap = 1
	}
	return sim.Duration(gap)
}

// Arrival is an open-loop arrival process: given the stream RNG and
// the current virtual time it returns the gap to the next arrival.
type Arrival interface {
	Name() string
	Gap(r *Rand, now sim.Time) sim.Duration
}

// Poisson is a stationary Poisson process.
type Poisson struct{ RatePerSec float64 }

func (a Poisson) Name() string { return fmt.Sprintf("poisson(%.0f/s)", a.RatePerSec) }
func (a Poisson) Gap(r *Rand, now sim.Time) sim.Duration {
	return expGap(r, a.RatePerSec)
}

// Diurnal modulates a Poisson process sinusoidally over virtual time:
// rate(t) = Base * (1 + Amplitude * sin(2πt/Period)). With Amplitude
// in [0,1) the rate stays positive; Period is the full day analogue
// (compressed to whatever the experiment can afford).
type Diurnal struct {
	BasePerSec float64
	Amplitude  float64
	Period     sim.Duration
}

func (a Diurnal) Name() string {
	return fmt.Sprintf("diurnal(%.0f/s±%.0f%%)", a.BasePerSec, a.Amplitude*100)
}
func (a Diurnal) Gap(r *Rand, now sim.Time) sim.Duration {
	period := a.Period
	if period <= 0 {
		period = sim.Second
	}
	phase := 2 * math.Pi * float64(sim.Time(now)%sim.Time(period)) / float64(period)
	rate := a.BasePerSec * (1 + a.Amplitude*math.Sin(phase))
	return expGap(r, rate)
}

// Bursty is an on/off modulated Poisson process: within every
// BurstEvery window the first BurstLen is "on" at BurstPerSec, the
// remainder is "off" at BasePerSec. The phase is a pure function of
// virtual time, so bursts land at the same instants in every run.
type Bursty struct {
	BasePerSec  float64
	BurstPerSec float64
	BurstEvery  sim.Duration
	BurstLen    sim.Duration
}

func (a Bursty) Name() string {
	return fmt.Sprintf("bursty(%.0f/%.0f per s)", a.BasePerSec, a.BurstPerSec)
}
func (a Bursty) Gap(r *Rand, now sim.Time) sim.Duration {
	every := a.BurstEvery
	if every <= 0 {
		every = 100 * sim.Millisecond
	}
	rate := a.BasePerSec
	if sim.Duration(sim.Time(now)%sim.Time(every)) < a.BurstLen {
		rate = a.BurstPerSec
	}
	return expGap(r, rate)
}

// Ramp grows the rate linearly from StartPerSec to EndPerSec across
// Over, then holds — the saturation scenario: the ramp crosses the
// service capacity at some point and the open-loop backlog takes off.
type Ramp struct {
	StartPerSec float64
	EndPerSec   float64
	Over        sim.Duration
}

func (a Ramp) Name() string {
	return fmt.Sprintf("ramp(%.0f→%.0f/s)", a.StartPerSec, a.EndPerSec)
}
func (a Ramp) Gap(r *Rand, now sim.Time) sim.Duration {
	rate := a.EndPerSec
	if a.Over > 0 && sim.Duration(now) < a.Over {
		f := float64(now) / float64(a.Over)
		rate = a.StartPerSec + (a.EndPerSec-a.StartPerSec)*f
	}
	return expGap(r, rate)
}

// Op is one generated arrival.
type Op struct {
	Seq  int      // 0-based per-tenant sequence number
	At   sim.Time // open-loop arrival instant
	Key  int64    // Zipfian-skewed key in [0, Keys)
	Read bool     // read op (ReadFraction of the stream)
}

// Spec describes one tenant's workload. The zero value is not usable;
// Ops, Keys and Arrival must be set.
type Spec struct {
	Tenant string
	Seed   uint64

	Arrival      Arrival
	Ops          int     // arrivals to generate
	Keys         int64   // keyspace size
	Theta        float64 // Zipfian skew (0 = uniform; 0.99 = YCSB default)
	ReadFraction float64 // fraction of ops that read instead of append
	PayloadBytes int     // log-record payload size per write

	// Retry policy under admission rejection: up to MaxRetries
	// re-attempts with exponential backoff starting at RetryBackoff
	// (plus deterministic per-attempt jitter). Zero MaxRetries drops
	// rejected ops immediately — the ingredients of a retry storm.
	MaxRetries   int
	RetryBackoff sim.Duration
}

// Backoff returns the deterministic backoff before retry `attempt`
// (1-based) of op `seq`: exponential with ±25% jitter derived from the
// spec seed, so two runs retry at identical virtual instants.
func (s Spec) Backoff(seq, attempt int) sim.Duration {
	base := s.RetryBackoff
	if base <= 0 {
		base = 50 * sim.Microsecond
	}
	d := base << uint(attempt-1)
	r := NewRand(s.Seed ^ 0xB0FF<<32 ^ uint64(seq)<<8 ^ uint64(attempt))
	jitter := 0.75 + 0.5*r.Float()
	return sim.Duration(float64(d) * jitter)
}

// Gen streams a Spec's ops in arrival order.
type Gen struct {
	spec Spec
	rng  *Rand
	zipf *ycsb.Zipfian
	now  sim.Time
	seq  int
}

// Gen builds the generator for the spec.
func (s Spec) Gen() *Gen {
	theta := s.Theta
	var z *ycsb.Zipfian
	if theta > 0 {
		z = ycsb.NewZipfian(s.Keys, theta, int64(s.Seed^0x21F))
	}
	return &Gen{spec: s, rng: NewRand(s.Seed), zipf: z}
}

// Next returns the next op, or ok=false when Ops are exhausted.
func (g *Gen) Next() (Op, bool) {
	if g.seq >= g.spec.Ops {
		return Op{}, false
	}
	g.now += sim.Time(g.spec.Arrival.Gap(g.rng, g.now))
	var key int64
	if g.zipf != nil {
		key = g.zipf.Next()
	} else if g.spec.Keys > 0 {
		key = int64(g.rng.Uint64() % uint64(g.spec.Keys))
	}
	read := g.rng.Float() < g.spec.ReadFraction
	op := Op{Seq: g.seq, At: g.now, Key: key, Read: read}
	g.seq++
	return op, true
}

// Schedule materializes the whole arrival schedule.
func (g *Gen) Schedule() []Op {
	ops := make([]Op, 0, g.spec.Ops)
	for {
		op, ok := g.Next()
		if !ok {
			return ops
		}
		ops = append(ops, op)
	}
}
