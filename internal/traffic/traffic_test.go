package traffic

import (
	"math"
	"testing"

	"twobssd/internal/sim"
)

func baseSpec() Spec {
	return Spec{
		Tenant:       "t0",
		Seed:         42,
		Arrival:      Poisson{RatePerSec: 10000},
		Ops:          2000,
		Keys:         1 << 16,
		Theta:        0.99,
		ReadFraction: 0.3,
		PayloadBytes: 128,
	}
}

// The whole schedule must be a pure function of the spec.
func TestScheduleDeterminism(t *testing.T) {
	a := baseSpec().Gen().Schedule()
	b := baseSpec().Gen().Schedule()
	if len(a) != len(b) || len(a) != 2000 {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	s := baseSpec()
	s.Seed = 43
	c := s.Gen().Schedule()
	same := 0
	for i := range c {
		if c[i].Key == a[i].Key {
			same++
		}
	}
	if same == len(c) {
		t.Fatal("different seeds produced identical key streams")
	}
}

// Arrivals must be strictly ordered and at positive instants.
func TestScheduleMonotonic(t *testing.T) {
	ops := baseSpec().Gen().Schedule()
	var prev sim.Time
	for _, op := range ops {
		if op.At <= prev {
			t.Fatalf("op %d at %d not after %d", op.Seq, op.At, prev)
		}
		prev = op.At
	}
}

// Poisson arrivals should average near 1/rate.
func TestPoissonMeanGap(t *testing.T) {
	s := baseSpec()
	s.Ops = 20000
	ops := s.Gen().Schedule()
	mean := float64(ops[len(ops)-1].At) / float64(len(ops))
	want := float64(sim.Second) / 10000
	if math.Abs(mean-want)/want > 0.1 {
		t.Fatalf("mean gap %.0fns, want ~%.0fns", mean, want)
	}
}

// Zipfian skew: the hottest key should soak up far more than uniform.
func TestZipfianSkew(t *testing.T) {
	s := baseSpec()
	s.Ops = 20000
	counts := map[int64]int{}
	for _, op := range s.Gen().Schedule() {
		counts[op.Key]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	uniform := float64(s.Ops) / float64(s.Keys)
	if float64(max) < 20*uniform {
		t.Fatalf("hottest key hit %d times; no meaningful skew over uniform %.2f", max, uniform)
	}
	s.Theta = 0
	counts = map[int64]int{}
	maxU := 0
	for _, op := range s.Gen().Schedule() {
		counts[op.Key]++
		if counts[op.Key] > maxU {
			maxU = counts[op.Key]
		}
	}
	if maxU >= max {
		t.Fatalf("uniform max %d not below zipfian max %d", maxU, max)
	}
}

// Bursty arrivals must cluster inside the burst windows.
func TestBurstyClustering(t *testing.T) {
	s := baseSpec()
	s.Arrival = Bursty{
		BasePerSec:  1000,
		BurstPerSec: 100000,
		BurstEvery:  10 * sim.Millisecond,
		BurstLen:    2 * sim.Millisecond,
	}
	s.Ops = 5000
	in, out := 0, 0
	for _, op := range s.Gen().Schedule() {
		if sim.Duration(op.At%sim.Time(10*sim.Millisecond)) < 2*sim.Millisecond+100*sim.Microsecond {
			in++
		} else {
			out++
		}
	}
	// Burst windows are 20% of time but should carry the large majority.
	if in < 3*out {
		t.Fatalf("bursts not clustered: %d in-window vs %d out", in, out)
	}
}

// Ramp should accelerate: the second half of a ramp holds more ops.
func TestRampAccelerates(t *testing.T) {
	s := baseSpec()
	s.Arrival = Ramp{StartPerSec: 1000, EndPerSec: 50000, Over: 50 * sim.Millisecond}
	s.Ops = 3000
	ops := s.Gen().Schedule()
	mid := ops[len(ops)-1].At / 2
	early := 0
	for _, op := range ops {
		if op.At < mid {
			early++
		}
	}
	if early*2 >= len(ops) {
		t.Fatalf("ramp did not accelerate: %d of %d ops in the first half", early, len(ops))
	}
}

// Backoff must be deterministic, exponential, and jittered within ±25%.
func TestBackoffShape(t *testing.T) {
	s := baseSpec()
	s.RetryBackoff = 100 * sim.Microsecond
	for attempt := 1; attempt <= 5; attempt++ {
		d1 := s.Backoff(7, attempt)
		d2 := s.Backoff(7, attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d backoff not deterministic: %d vs %d", attempt, d1, d2)
		}
		base := float64(int64(100*sim.Microsecond) << uint(attempt-1))
		f := float64(d1) / base
		if f < 0.75 || f > 1.25 {
			t.Fatalf("attempt %d jitter factor %.3f outside [0.75,1.25]", attempt, f)
		}
	}
	if s.Backoff(7, 1) == s.Backoff(8, 1) {
		t.Fatal("distinct ops produced identical jitter")
	}
}
