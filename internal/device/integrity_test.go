package device

import (
	"bytes"
	"errors"
	"testing"

	"twobssd/internal/integrity"
	"twobssd/internal/sim"
)

// TestReadDetectsSilentCorruption is the block path's end-to-end
// integrity check: a page corrupted on flash after the host wrote it
// must fail the read with ErrPageCorrupt instead of returning wrong
// bytes.
func TestReadDetectsSilentCorruption(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	e.Go("t", func(p *sim.Proc) {
		if err := d.WritePages(p, 7, bytes.Repeat([]byte{0x77}, ps)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		if err := d.Drain(p); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		ppa, ok := d.FTL().PPAOf(7)
		if !ok {
			t.Error("page not mapped after drain")
			return
		}
		if !d.Flash().CorruptPage(ppa, 1) {
			t.Error("CorruptPage found no stored image")
			return
		}
		_, err := d.ReadPages(p, 7, 1)
		if !errors.Is(err, integrity.ErrPageCorrupt) {
			t.Errorf("read of corrupted page: err = %v, want ErrPageCorrupt", err)
		}
		// A healthy neighbour still reads fine.
		if err := d.WritePages(p, 8, bytes.Repeat([]byte{0x88}, ps)); err != nil {
			t.Errorf("write: %v", err)
			return
		}
		got, err := d.ReadPages(p, 8, 1)
		if err != nil || got[0] != 0x88 {
			t.Errorf("healthy read: %v", err)
		}
	})
	e.Run()
}
