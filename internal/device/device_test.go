package device

import (
	"bytes"
	"errors"
	"testing"

	"twobssd/internal/ftl"
	"twobssd/internal/sim"
)

// small returns a profile scaled down for fast tests.
func small(p Profile) Profile {
	p.Nand.Channels = 2
	p.Nand.DiesPerChannel = 2
	p.Nand.BlocksPerDie = 16
	p.Nand.PagesPerBlock = 16
	p.FTL.OverProvision = 0.25
	p.WriteBufferPages = 32
	p.DrainWorkers = 4
	return p
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{DCSSD(), ULLSSD()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	bad := ULLSSD()
	bad.FirmwareCores = 0
	if bad.Validate() == nil {
		t.Error("invalid profile accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	payload := bytes.Repeat([]byte{0x5A}, 3*ps)
	e.Go("t", func(p *sim.Proc) {
		if err := d.WritePages(p, 10, payload); err != nil {
			t.Errorf("write: %v", err)
		}
		got, err := d.ReadPages(p, 10, 3)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("round trip mismatch")
		}
	})
	e.Run()
}

func TestReadServesBufferedCopy(t *testing.T) {
	// A read issued immediately after a write (before drain completes)
	// must see the new data.
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	e.Go("t", func(p *sim.Proc) {
		d.WritePages(p, 0, bytes.Repeat([]byte{1}, ps))
		got, err := d.ReadPages(p, 0, 1)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if got[0] != 1 {
			t.Errorf("stale read: got %d", got[0])
		}
	})
	e.Run()
}

func TestUnalignedWriteRejected(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	e.Go("t", func(p *sim.Proc) {
		if err := d.WritePages(p, 0, make([]byte, 100)); !errors.Is(err, ErrUnaligned) {
			t.Errorf("err = %v", err)
		}
		if err := d.WritePages(p, 0, nil); !errors.Is(err, ErrUnaligned) {
			t.Errorf("empty write err = %v", err)
		}
	})
	e.Run()
}

func TestOutOfRangeWrite(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	e.Go("t", func(p *sim.Proc) {
		lba := ftl.LBA(d.Pages())
		if err := d.WritePages(p, lba, make([]byte, d.PageSize())); !errors.Is(err, ftl.ErrLBAOutOfRange) {
			t.Errorf("err = %v", err)
		}
	})
	e.Run()
}

func TestDrainEmptiesBuffer(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	e.Go("t", func(p *sim.Proc) {
		d.WritePages(p, 0, bytes.Repeat([]byte{7}, 8*ps))
		if err := d.Flush(p); err != nil {
			t.Errorf("flush: %v", err)
		}
		if err := d.Drain(p); err != nil {
			t.Errorf("drain: %v", err)
		}
		if d.BufferedPages() != 0 {
			t.Errorf("buffer not drained: %d pages", d.BufferedPages())
		}
		// After the drain the data must be on NAND via the FTL.
		if !d.FTL().Mapped(0) {
			t.Error("lba 0 not mapped after drain")
		}
	})
	e.Run()
}

func TestSameLBARewritesLastWriteWins(t *testing.T) {
	// Spaced-out rewrites of one LBA each reach NAND (this is exactly
	// the repeated-log-page WAF penalty the paper describes), and the
	// final read returns the last value.
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	e.Go("t", func(p *sim.Proc) {
		for v := byte(1); v <= 5; v++ {
			d.WritePages(p, 3, bytes.Repeat([]byte{v}, ps))
		}
		// Mid-drain read must see the newest copy.
		got, _ := d.ReadPages(p, 3, 1)
		if got[0] != 5 {
			t.Errorf("mid-drain read got %d, want 5 (last write wins)", got[0])
		}
		d.Drain(p)
		got, _ = d.ReadPages(p, 3, 1)
		if got[0] != 5 {
			t.Errorf("post-drain read got %d, want 5", got[0])
		}
	})
	e.Run()
	if w := d.FTL().Stats().HostPageWrites; w != 5 {
		t.Errorf("FTL writes = %d, want 5 (each rewrite hits NAND)", w)
	}
}

func TestSameLBACoalescesWhenDrainIsSlow(t *testing.T) {
	// With a single slow drain worker, rewrites arriving while the
	// buffer is backed up coalesce into one NAND program.
	p := small(ULLSSD())
	p.DrainWorkers = 1
	p.Nand.ProgramLatency = 10 * sim.Millisecond
	e := sim.NewEnv()
	d := New(e, p)
	ps := d.PageSize()
	e.Go("t", func(pr *sim.Proc) {
		// First write occupies the drain worker (lba 9), then rewrites
		// of lba 3 pile up behind it and coalesce.
		d.WritePages(pr, 9, bytes.Repeat([]byte{1}, ps))
		for v := byte(1); v <= 5; v++ {
			d.WritePages(pr, 3, bytes.Repeat([]byte{v}, ps))
		}
		d.Drain(pr)
		got, _ := d.ReadPages(pr, 3, 1)
		if got[0] != 5 {
			t.Errorf("got %d, want 5", got[0])
		}
	})
	e.Run()
	// lba 9 (1 write) + lba 3 coalesced (far fewer than 5).
	if w := d.FTL().Stats().HostPageWrites; w > 3 {
		t.Errorf("FTL writes = %d, want <= 3 (coalesced)", w)
	}
}

type denyGate struct{ err error }

func (g denyGate) CheckRead(ftl.LBA, int) error  { return g.err }
func (g denyGate) CheckWrite(ftl.LBA, int) error { return g.err }

func TestGateBlocksIO(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	d.SetGate(denyGate{err: ErrGated})
	e.Go("t", func(p *sim.Proc) {
		if err := d.WritePages(p, 0, make([]byte, d.PageSize())); !errors.Is(err, ErrGated) {
			t.Errorf("write err = %v", err)
		}
		if _, err := d.ReadPages(p, 0, 1); !errors.Is(err, ErrGated) {
			t.Errorf("read err = %v", err)
		}
	})
	e.Run()
	st := d.Stats()
	if st.GatedReads != 1 || st.GatedWrits != 1 {
		t.Fatalf("gate stats = %+v", st)
	}
}

func latencyOf(t *testing.T, p Profile, op func(pr *sim.Proc, d *Device)) sim.Duration {
	t.Helper()
	e := sim.NewEnv()
	d := New(e, p)
	var took sim.Duration
	e.Go("t", func(pr *sim.Proc) {
		// Precondition: write+drain one page so reads hit NAND.
		if err := d.WritePages(pr, 0, make([]byte, d.PageSize())); err != nil {
			t.Fatalf("precondition: %v", err)
		}
		d.Drain(pr)
		start := e.Now()
		op(pr, d)
		took = sim.Duration(e.Now() - start)
	})
	e.Run()
	return took
}

func within(t *testing.T, name string, got sim.Duration, want sim.Duration, tolFrac float64) {
	t.Helper()
	lo := sim.Duration(float64(want) * (1 - tolFrac))
	hi := sim.Duration(float64(want) * (1 + tolFrac))
	if got < lo || got > hi {
		t.Errorf("%s = %v, want %v ±%.0f%%", name, got, want, tolFrac*100)
	}
}

// Calibration: the paper's Fig 7 block-I/O anchor points.
func TestCalibration4KBLatencies(t *testing.T) {
	read := func(pr *sim.Proc, d *Device) { d.ReadPages(pr, 0, 1) }
	write := func(pr *sim.Proc, d *Device) { d.WritePages(pr, 0, make([]byte, d.PageSize())) }

	within(t, "ULL 4KB read", latencyOf(t, ULLSSD(), read), 13200, 0.10)   // 13.2 µs
	within(t, "DC 4KB read", latencyOf(t, DCSSD(), read), 83000, 0.10)     // 83 µs
	within(t, "ULL 4KB write", latencyOf(t, ULLSSD(), write), 10000, 0.10) // 10 µs
	within(t, "DC 4KB write", latencyOf(t, DCSSD(), write), 17000, 0.10)   // 17 µs
}

// Calibration: Fig 8 large-request bandwidth ceilings (QD1).
func TestCalibrationBandwidth(t *testing.T) {
	bw := func(p Profile, write bool) float64 {
		e := sim.NewEnv()
		d := New(e, p)
		const pages = 2048 // 8 MB
		total := pages * d.PageSize()
		var took sim.Duration
		e.Go("t", func(pr *sim.Proc) {
			if !write {
				// Precondition NAND so reads are real.
				buf := make([]byte, total)
				d.WritePages(pr, 0, buf)
				d.Drain(pr)
			}
			start := e.Now()
			if write {
				d.WritePages(pr, 0, make([]byte, total))
				d.Drain(pr)
			} else {
				d.ReadPages(pr, 0, pages)
			}
			took = sim.Duration(e.Now() - start)
		})
		e.Run()
		return float64(total) / took.Seconds() / 1e9 // GB/s
	}
	if got := bw(ULLSSD(), false); got < 2.6 || got > 3.3 {
		t.Errorf("ULL read bandwidth = %.2f GB/s, want ~3.2", got)
	}
	if got := bw(DCSSD(), false); got < 1.6 || got > 2.6 {
		t.Errorf("DC read bandwidth = %.2f GB/s, want ~2.0-2.3", got)
	}
	if got := bw(ULLSSD(), true); got < 2.4 || got > 3.3 {
		t.Errorf("ULL write bandwidth = %.2f GB/s, want ~3.2 (PCIe-capped)", got)
	}
	if got := bw(DCSSD(), true); got < 1.1 || got > 1.9 {
		t.Errorf("DC write bandwidth = %.2f GB/s, want ~1.5", got)
	}
}

func TestConcurrentWritersIntegrity(t *testing.T) {
	e := sim.NewEnv()
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	const writers = 8
	const perWriter = 16
	for w := 0; w < writers; w++ {
		w := w
		e.Go("writer", func(p *sim.Proc) {
			for i := 0; i < perWriter; i++ {
				lba := ftl.LBA(w*perWriter + i)
				if err := d.WritePages(p, lba, bytes.Repeat([]byte{byte(w + 1)}, ps)); err != nil {
					t.Errorf("w%d: %v", w, err)
					return
				}
			}
		})
	}
	e.Run()
	e.Go("verify", func(p *sim.Proc) {
		d.Drain(p)
		for w := 0; w < writers; w++ {
			for i := 0; i < perWriter; i++ {
				got, err := d.ReadPages(p, ftl.LBA(w*perWriter+i), 1)
				if err != nil {
					t.Errorf("read: %v", err)
					return
				}
				if got[0] != byte(w+1) {
					t.Errorf("lba %d: got %d want %d", w*perWriter+i, got[0], w+1)
				}
			}
		}
	})
	e.Run()
}
