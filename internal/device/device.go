// Package device models PCIe-attached NVMe block SSDs on top of the
// nand/ftl substrate: a host submission/completion path, firmware cores,
// a power-loss-protected write buffer with background drain, and a
// shared PCIe link.
//
// Two calibrated profiles reproduce the paper's comparison devices:
// DCSSD (a PM963-class datacenter SSD) and ULLSSD (a Z-SSD-class
// ultra-low-latency SSD). The 2B-SSD piggybacks on the ULL profile and
// adds the byte-addressable datapath in package core.
package device

import (
	"errors"
	"fmt"

	"twobssd/internal/fault"
	"twobssd/internal/ftl"
	"twobssd/internal/histo"
	"twobssd/internal/integrity"
	"twobssd/internal/nand"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// Profile describes one SSD model: geometry, NAND timing, and the
// latency contributions of its command path. The defaults below are
// calibrated so the simulated Fig 7/8 curves land on the paper's
// measured numbers.
type Profile struct {
	Name string

	Nand nand.Config
	FTL  ftl.Config

	// SubmissionLatency covers the host driver, doorbell and command
	// fetch; CompletionLatency covers the interrupt and host completion
	// handling.
	SubmissionLatency sim.Duration
	CompletionLatency sim.Duration

	// Firmware processing: per-command cost plus per-page cost, on a
	// pool of FirmwareCores.
	FirmwareCores int
	FwPerCmdCost  sim.Duration
	FwPerPageCost sim.Duration

	// PCIeMBps is the host-link bandwidth (PCIe Gen3 x4 ~ 3200 MB/s).
	PCIeMBps int

	// Write buffer (power-loss protected on both comparison devices):
	// writes complete once buffered; DrainWorkers firmware threads move
	// buffered pages to NAND in the background.
	WriteBufferPages int
	BufferAckLatency sim.Duration
	DrainWorkers     int
}

// DCSSD returns the datacenter-SSD profile (PM963-class, TLC-like
// timing). Calibrated targets: 4 KB QD1 read ≈ 83 µs, write ≈ 17 µs,
// large-request read ≈ 2.0 GB/s, write ≈ 1.5 GB/s.
func DCSSD() Profile {
	return Profile{
		Name: "DC-SSD",
		Nand: nand.Config{
			Channels:       8,
			DiesPerChannel: 8,
			BlocksPerDie:   64,
			PagesPerBlock:  64,
			PageSize:       4096,
			ReadLatency:    68 * sim.Microsecond,
			ProgramLatency: 170 * sim.Microsecond,
			EraseLatency:   5 * sim.Millisecond,
			ChannelMBps:    800,
		},
		FTL:               ftl.Config{OverProvision: 0.07},
		SubmissionLatency: 3 * sim.Microsecond,
		CompletionLatency: 1 * sim.Microsecond,
		FirmwareCores:     2,
		FwPerCmdCost:      1500 * sim.Nanosecond,
		FwPerPageCost:     3500 * sim.Nanosecond,
		PCIeMBps:          3200,
		WriteBufferPages:  1024,
		BufferAckLatency:  10200 * sim.Nanosecond,
		DrainWorkers:      64,
	}
}

// ULLSSD returns the ultra-low-latency profile (Z-SSD-class, SLC
// Z-NAND timing). Calibrated targets: 4 KB QD1 read ≈ 13.2 µs, write
// ≈ 10 µs, large-request bandwidth ≈ 3.2 GB/s (PCIe-limited).
func ULLSSD() Profile {
	return Profile{
		Name: "ULL-SSD",
		Nand: nand.Config{
			Channels:       8,
			DiesPerChannel: 8,
			BlocksPerDie:   64,
			PagesPerBlock:  64,
			PageSize:       4096,
			ReadLatency:    3 * sim.Microsecond,
			ProgramLatency: 50 * sim.Microsecond,
			EraseLatency:   3 * sim.Millisecond,
			ChannelMBps:    1200,
		},
		FTL:               ftl.Config{OverProvision: 0.07},
		SubmissionLatency: 3 * sim.Microsecond,
		CompletionLatency: 1200 * sim.Nanosecond,
		FirmwareCores:     8,
		FwPerCmdCost:      1 * sim.Microsecond,
		FwPerPageCost:     400 * sim.Nanosecond,
		PCIeMBps:          3200,
		WriteBufferPages:  1024,
		BufferAckLatency:  3500 * sim.Nanosecond,
		DrainWorkers:      64,
	}
}

// Validate reports configuration errors.
func (p Profile) Validate() error {
	if err := p.Nand.Validate(); err != nil {
		return err
	}
	switch {
	case p.FirmwareCores <= 0:
		return errors.New("device: FirmwareCores must be > 0")
	case p.PCIeMBps <= 0:
		return errors.New("device: PCIeMBps must be > 0")
	case p.WriteBufferPages <= 0:
		return errors.New("device: WriteBufferPages must be > 0")
	case p.DrainWorkers <= 0:
		return errors.New("device: DrainWorkers must be > 0")
	}
	return nil
}

// Gate lets an upper layer veto block I/O to specific LBA ranges. The
// 2B-SSD LBA checker uses this to protect NAND pages currently pinned
// into the BA-buffer (paper Section III-A2).
type Gate interface {
	// CheckRead/CheckWrite return a non-nil error to reject the access.
	CheckRead(lba ftl.LBA, pages int) error
	CheckWrite(lba ftl.LBA, pages int) error
}

// Errors reported by the device.
var (
	ErrUnaligned = errors.New("device: length not page aligned")
	ErrGated     = errors.New("device: LBA range gated (pinned to BA-buffer)")
)

type bufEntry struct {
	lba  ftl.LBA
	data []byte
	tag  uint32 // integrity.PageCRC(data), stamped at the host boundary
}

// taggedPage is one popped-but-unpersisted write-buffer copy.
type taggedPage struct {
	data []byte
	tag  uint32
}

// lbaPend tracks one LBA's in-flight drain state: tickets [head, tail)
// are popped copies not yet on NAND, pages holds their data oldest
// first (pagesHead is the consumed prefix).
type lbaPend struct {
	head, tail uint64
	pages      []taggedPage
	pagesHead  int
}

// Stats aggregates device-level counters.
type Stats struct {
	ReadCmds   uint64
	WriteCmds  uint64
	FlushCmds  uint64
	PagesRead  uint64
	PagesWrit  uint64
	GatedReads uint64
	GatedWrits uint64
}

// Device is one simulated NVMe SSD.
type Device struct {
	env     *sim.Env
	profile Profile
	flash   *nand.Flash
	ftl     *ftl.FTL

	fw   *sim.Resource // firmware cores
	pcie *sim.Resource // host link (serialized transfers)

	// Write buffer state. Writes to an LBA already waiting in the
	// buffer coalesce in place; drains of the same LBA are serialized
	// in pop order by per-LBA tickets, so NAND always ends with the
	// newest copy; reads see the newest not-yet-persisted copy.
	buf          []bufEntry
	bufHead      int         // drain cursor into buf (popped entries)
	bufSpace     *sim.Signal // fired when space frees up
	bufWork      *sim.Signal // fired when work arrives
	inflight     int         // entries popped by drainers, not yet on NAND
	inflightDone *sim.Signal // fired when an LBA's oldest copy persists
	bufDrain     *sim.Signal // fired when buffer+inflight reaches empty
	// Per-LBA pop bookkeeping: tickets force program order; pages keeps
	// every popped-but-unpersisted copy visible to reads (oldest first —
	// the newest is the read-visible one). Structs and page buffers are
	// pooled: the drain path allocates nothing in steady state.
	pend      map[ftl.LBA]*lbaPend
	pendPool  []*lbaPend
	pageSpare [][]byte

	gate Gate

	// Metrics ("<profile>.*" in the obs registry; Stats() reads them
	// back). Track names are precomputed so the disabled-tracer hot
	// path performs no string building.
	o                      *obs.Set
	inj                    *fault.Injector
	pcieTrack, bufTrack    string
	rdName, rdWGName       string
	cReadCmds, cWriteCmds  *obs.Counter
	cFlushCmds, cTimeouts  *obs.Counter
	cPagesRead, cPagesWrit *obs.Counter
	cGatedRd, cGatedWr     *obs.Counter
	hReadCmd, hWriteCmd    *histo.H
	hFlush                 *histo.H
}

// New builds a device from a profile. Panics on invalid profiles
// (construction-time misuse).
func New(env *sim.Env, p Profile) *Device {
	if err := p.Validate(); err != nil {
		panic(err)
	}
	fl := nand.New(env, p.Nand)
	d := &Device{
		env:          env,
		profile:      p,
		flash:        fl,
		ftl:          ftl.New(env, fl, p.FTL),
		fw:           env.NewResource(p.Name+".fw", p.FirmwareCores),
		pcie:         env.NewResource(p.Name+".pcie", 1),
		bufSpace:     env.NewSignal(p.Name + ".bufspace"),
		bufWork:      env.NewSignal(p.Name + ".bufwork"),
		bufDrain:     env.NewSignal(p.Name + ".bufdrain"),
		inflightDone: env.NewSignal(p.Name + ".inflightdone"),
		pend:         make(map[ftl.LBA]*lbaPend),
		o:            obs.Of(env),
		inj:          fault.Of(env),
		pcieTrack:    p.Name + ".pcie",
		bufTrack:     p.Name + ".wbuf",
		rdName:       p.Name + ".rd",
		rdWGName:     p.Name + ".read",
	}
	reg := d.o.Registry()
	d.cReadCmds = reg.Counter(p.Name + ".read_cmds")
	d.cWriteCmds = reg.Counter(p.Name + ".write_cmds")
	d.cFlushCmds = reg.Counter(p.Name + ".flush_cmds")
	d.cTimeouts = reg.Counter(p.Name + ".cmd_timeouts")
	d.cPagesRead = reg.Counter(p.Name + ".pages_read")
	d.cPagesWrit = reg.Counter(p.Name + ".pages_written")
	d.cGatedRd = reg.Counter(p.Name + ".gated_reads")
	d.cGatedWr = reg.Counter(p.Name + ".gated_writes")
	d.hReadCmd = reg.Histo(p.Name + ".read_cmd_ns")
	d.hWriteCmd = reg.Histo(p.Name + ".write_cmd_ns")
	d.hFlush = reg.Histo(p.Name + ".flush_ns")
	reg.GaugeFunc(p.Name+".buffered_pages", func() float64 { return float64(d.BufferedPages()) })
	drainName := p.Name + ".drain"
	for i := 0; i < p.DrainWorkers; i++ {
		env.GoDaemon(drainName, d.drainLoop)
	}
	return d
}

// Profile returns the device profile.
func (d *Device) Profile() Profile { return d.profile }

// FTL exposes the translation layer (for WAF accounting in benches).
func (d *Device) FTL() *ftl.FTL { return d.ftl }

// Flash exposes the NAND array (for recovery-area access by core).
func (d *Device) Flash() *nand.Flash { return d.flash }

// PageSize returns the logical block (page) size in bytes.
func (d *Device) PageSize() int { return d.profile.Nand.PageSize }

// Pages returns the exported capacity in pages.
func (d *Device) Pages() uint64 { return d.ftl.ExportedPages() }

// SetGate installs an I/O gate (nil removes it).
func (d *Device) SetGate(g Gate) { d.gate = g }

// Stats returns a snapshot of device counters (sourced from the obs
// registry's "<profile>.*" metrics).
func (d *Device) Stats() Stats {
	return Stats{
		ReadCmds: d.cReadCmds.Value(), WriteCmds: d.cWriteCmds.Value(),
		FlushCmds: d.cFlushCmds.Value(),
		PagesRead: d.cPagesRead.Value(), PagesWrit: d.cPagesWrit.Value(),
		GatedReads: d.cGatedRd.Value(), GatedWrits: d.cGatedWr.Value(),
	}
}

// getPage returns a page-sized buffer, recycling drained write-buffer
// copies. Contents are undefined; every user overwrites the whole page.
func (d *Device) getPage() []byte {
	if n := len(d.pageSpare); n > 0 {
		pg := d.pageSpare[n-1]
		d.pageSpare[n-1] = nil
		d.pageSpare = d.pageSpare[:n-1]
		return pg
	}
	return make([]byte, d.PageSize())
}

// putPage recycles a page buffer once no reader can still alias it —
// readers copy out of buffered pages without yielding, so a page is
// recyclable as soon as its drain write returns or it is coalesced away.
func (d *Device) putPage(pg []byte) {
	d.pageSpare = append(d.pageSpare, pg)
}

func (d *Device) getPend() *lbaPend {
	if n := len(d.pendPool); n > 0 {
		pd := d.pendPool[n-1]
		d.pendPool[n-1] = nil
		d.pendPool = d.pendPool[:n-1]
		return pd
	}
	return &lbaPend{}
}

func (d *Device) putPend(pd *lbaPend) {
	pd.head, pd.tail = 0, 0
	pd.pages = pd.pages[:0]
	pd.pagesHead = 0
	d.pendPool = append(d.pendPool, pd)
}

func (d *Device) pcieTime(bytes int) sim.Duration {
	return sim.Duration(int64(bytes) * 1000 / int64(d.profile.PCIeMBps))
}

// pcieXfer moves bytes over the shared host link: acquire, hold for the
// transfer time (under a span on the link's own track), release.
// Timing-identical to pcie.Use.
func (d *Device) pcieXfer(p *sim.Proc, bytes int) {
	dur := d.pcieTime(bytes)
	d.pcie.Acquire(p)
	sp := d.o.Tracer().Begin(d.pcieTrack, "device", "pcie_xfer")
	p.Sleep(dur)
	sp.End()
	d.pcie.Release()
}

// maybeTimeout models injected transient command timeouts: the host
// driver's timer expires n times, each retry backing off exponentially
// from the injector's base delay before the command goes through. With
// no injector installed this is a nil-receiver no-op costing nothing.
func (d *Device) maybeTimeout(p *sim.Proc) {
	n, delay := d.inj.Timeouts()
	for k := 0; k < n; k++ {
		d.cTimeouts.Inc()
		d.o.Tracer().Instant(d.profile.Name+".timeout", "device", "cmd_timeout")
		p.Sleep(delay << uint(k))
	}
}

// ReadPages executes one read command of n pages starting at lba and
// returns the data. Pages are fetched from NAND in parallel (one
// firmware work item per page) and transferred to the host over the
// shared PCIe link.
func (d *Device) ReadPages(p *sim.Proc, lba ftl.LBA, n int) ([]byte, error) {
	if n <= 0 {
		return nil, errors.New("device: read of zero pages")
	}
	if d.gate != nil {
		if err := d.gate.CheckRead(lba, n); err != nil {
			d.cGatedRd.Inc()
			d.o.Tracer().Instant(d.profile.Name+".gate", "device", "gated_read")
			return nil, err
		}
	}
	d.cReadCmds.Inc()
	start := d.env.Now()
	cmd := d.o.Tracer().BeginProc(p, "device", "read_cmd")
	d.maybeTimeout(p)
	ps := d.PageSize()
	p.Sleep(d.profile.SubmissionLatency)
	d.fw.Use(p, d.profile.FwPerCmdCost)

	out := make([]byte, n*ps)
	var firstErr error
	readPage := func(w *sim.Proc, i int) {
		d.fw.Use(w, d.profile.FwPerPageCost)
		l := lba + ftl.LBA(i)
		dst := out[i*ps : (i+1)*ps]
		// Serve from the write buffer if a newer copy is there.
		if data, tag, ok := d.bufLookup(l); ok {
			if err := integrity.Check(data, tag); err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: buffered lba %d: %w", d.profile.Name, l, err)
				}
				return
			}
			copy(dst, data)
		} else {
			tag, tagged, err := d.ftl.ReadPageTaggedInto(w, l, dst)
			if err == nil && tagged {
				err = integrity.Check(dst, tag)
			}
			if err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("%s: lba %d: %w", d.profile.Name, l, err)
				}
				return
			}
		}
		d.pcieXfer(w, ps)
	}
	// Single-page commands (the QD-1 4 KB case the paper sweeps) run
	// inline: no fan-out goroutine or WaitGroup, same virtual timing.
	if n == 1 {
		readPage(p, 0)
	} else {
		wg := d.env.NewWaitGroup(d.rdWGName)
		wg.Add(n)
		rp := func(w *sim.Proc, i int) {
			defer wg.Done()
			readPage(w, i)
		}
		for i := 0; i < n; i++ {
			d.env.GoIdx(d.rdName, i, rp)
		}
		wg.Wait(p)
	}
	p.Sleep(d.profile.CompletionLatency)
	cmd.End()
	if firstErr != nil {
		return nil, firstErr
	}
	d.cPagesRead.Add(uint64(n))
	d.hReadCmd.Observe(sim.Duration(d.env.Now() - start))
	return out, nil
}

// bufLookup returns the newest not-yet-persisted copy of lba: a
// buffered entry, or the newest copy popped by a drain worker that has
// not reached NAND yet.
func (d *Device) bufLookup(lba ftl.LBA) ([]byte, uint32, bool) {
	for i := len(d.buf) - 1; i >= d.bufHead; i-- {
		if d.buf[i].lba == lba {
			return d.buf[i].data, d.buf[i].tag, true
		}
	}
	if pd := d.pend[lba]; pd != nil && pd.pagesHead < len(pd.pages) {
		last := pd.pages[len(pd.pages)-1]
		return last.data, last.tag, true
	}
	return nil, 0, false
}

// WritePages executes one write command; len(data) must be a multiple
// of the page size. The command completes once all pages sit in the
// power-loss-protected write buffer (so an acknowledged write is
// durable — matching the enterprise SSDs the paper measures).
func (d *Device) WritePages(p *sim.Proc, lba ftl.LBA, data []byte) error {
	ps := d.PageSize()
	if len(data) == 0 || len(data)%ps != 0 {
		return fmt.Errorf("%w: %d bytes", ErrUnaligned, len(data))
	}
	n := len(data) / ps
	if d.gate != nil {
		if err := d.gate.CheckWrite(lba, n); err != nil {
			d.cGatedWr.Inc()
			d.o.Tracer().Instant(d.profile.Name+".gate", "device", "gated_write")
			return err
		}
	}
	if uint64(lba)+uint64(n) > d.Pages() {
		return ftl.ErrLBAOutOfRange
	}
	d.cWriteCmds.Inc()
	start := d.env.Now()
	cmd := d.o.Tracer().BeginProc(p, "device", "write_cmd")
	d.maybeTimeout(p)
	p.Sleep(d.profile.SubmissionLatency)
	d.fw.Use(p, d.profile.FwPerCmdCost)
	for i := 0; i < n; i++ {
		// Transfer the page over PCIe, then wait for buffer space.
		d.pcieXfer(p, ps)
		for len(d.buf)-d.bufHead >= d.profile.WriteBufferPages {
			d.bufSpace.Wait(p)
		}
		page := d.getPage()
		copy(page, data[i*ps:(i+1)*ps])
		// The integrity tag is born here — the block path's host
		// boundary — and rides with the page to NAND and back.
		tag := integrity.PageCRC(page)
		l := lba + ftl.LBA(i)
		if !d.coalesce(l, page, tag) {
			d.buf = append(d.buf, bufEntry{lba: l, data: page, tag: tag})
			d.bufWork.Fire()
			d.o.Tracer().Count(d.bufTrack, "buffered_pages", float64(d.BufferedPages()))
		}
	}
	// Buffer acknowledgement is command-level work: the controller
	// seals the command once its pages sit in protected buffer RAM.
	p.Sleep(d.profile.BufferAckLatency)
	p.Sleep(d.profile.CompletionLatency)
	cmd.End()
	d.cPagesWrit.Add(uint64(n))
	d.hWriteCmd.Observe(sim.Duration(d.env.Now() - start))
	return nil
}

// Flush is the NVMe FLUSH command (the block path's fsync). Both
// comparison devices have power-loss-protected write buffers, so an
// acknowledged write is already durable and FLUSH completes without
// waiting for NAND — a command round trip only. This is what anchors
// the paper's "commit overhead reduced up to 26x" ratio (a ~20 µs
// write+fsync versus a ~1 µs BA commit), not a full cache drain.
func (d *Device) Flush(p *sim.Proc) error {
	d.cFlushCmds.Inc()
	start := d.env.Now()
	cmd := d.o.Tracer().BeginProc(p, "device", "flush_cmd")
	d.maybeTimeout(p)
	p.Sleep(d.profile.SubmissionLatency)
	d.fw.Use(p, d.profile.FwPerCmdCost)
	p.Sleep(d.profile.CompletionLatency)
	cmd.End()
	d.hFlush.Observe(sim.Duration(d.env.Now() - start))
	return nil
}

// Drain blocks until every buffered write has reached NAND. Internal
// consumers (BA_PIN's internal datapath, the recovery dump, benchmarks
// that meter NAND bandwidth) need data physically on flash.
func (d *Device) Drain(p *sim.Proc) error {
	for len(d.buf)-d.bufHead > 0 || d.inflight > 0 {
		d.bufDrain.Wait(p)
	}
	return nil
}

// coalesce replaces an already-buffered copy of lba in place, keeping
// one buffered entry per LBA (the real write buffer's behaviour — and
// exactly how repeated partial log-page writes are absorbed).
func (d *Device) coalesce(lba ftl.LBA, page []byte, tag uint32) bool {
	for i := d.bufHead; i < len(d.buf); i++ {
		if d.buf[i].lba == lba {
			d.putPage(d.buf[i].data) // no reader holds it across a yield
			d.buf[i].data = page
			d.buf[i].tag = tag
			return true
		}
	}
	return false
}

// drainLoop is the background firmware thread moving buffered pages to
// NAND via the FTL. Per-LBA ordering: if another worker is mid-program
// on the same LBA, wait, so the newest copy always lands last.
func (d *Device) drainLoop(p *sim.Proc) {
	for {
		for len(d.buf) == d.bufHead {
			d.bufWork.Wait(p)
		}
		ent := d.buf[d.bufHead]
		d.buf[d.bufHead] = bufEntry{}
		d.bufHead++
		if d.bufHead == len(d.buf) {
			d.buf = d.buf[:0] // reuse the backing array
			d.bufHead = 0
		} else if d.bufHead > 1024 && d.bufHead > len(d.buf)/2 {
			// Compact the consumed prefix so the array stays bounded
			// even if the buffer never fully empties.
			n := copy(d.buf, d.buf[d.bufHead:])
			for i := n; i < len(d.buf); i++ {
				d.buf[i] = bufEntry{}
			}
			d.buf = d.buf[:n]
			d.bufHead = 0
		}
		d.inflight++
		d.bufSpace.Fire()
		pd := d.pend[ent.lba]
		if pd == nil {
			pd = d.getPend()
			d.pend[ent.lba] = pd
		}
		ticket := pd.tail
		pd.tail++
		pd.pages = append(pd.pages, taggedPage{data: ent.data, tag: ent.tag})
		for pd.head != ticket {
			d.inflightDone.Wait(p)
		}
		sp := d.o.Tracer().BeginProc(p, "device", "drain_write")
		if err := d.ftl.WritePageTagged(p, ent.lba, ent.data, ent.tag); err != nil {
			// Drain failure means the device is configured too small
			// for the workload: a fatal modeling error.
			panic(fmt.Sprintf("%s: drain write failed: %v", d.profile.Name, err))
		}
		sp.End()
		pd.head++
		pd.pages[pd.pagesHead] = taggedPage{}
		d.putPage(ent.data) // NAND holds its own copy now
		d.pagesPop(pd, ent.lba)
		d.inflightDone.Fire()
		d.inflight--
		d.o.Tracer().Count(d.bufTrack, "buffered_pages", float64(d.BufferedPages()))
		if len(d.buf) == d.bufHead && d.inflight == 0 {
			d.bufDrain.Fire()
		}
	}
}

// pagesPop advances pd's consumed-pages cursor and returns the struct
// to the pool once the LBA has no in-flight copies left.
func (d *Device) pagesPop(pd *lbaPend, lba ftl.LBA) {
	pd.pagesHead++
	if pd.pagesHead == len(pd.pages) {
		pd.pages = pd.pages[:0]
		pd.pagesHead = 0
	}
	if pd.head == pd.tail {
		delete(d.pend, lba)
		d.putPend(pd)
	}
}

// BufferedPages reports how many pages currently sit in the write buffer.
func (d *Device) BufferedPages() int { return len(d.buf) - d.bufHead + d.inflight }
