package device

import (
	"bytes"
	"errors"
	"testing"

	"twobssd/internal/fault"
	"twobssd/internal/ftl"
	"twobssd/internal/integrity"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// TestTimeoutBackoffErrorWrapping drives the device with injected
// transient command timeouts and verifies (a) the backoff path retries
// through to success rather than surfacing the transient, and (b) a
// real error raised while the timeout machinery is active is wrapped —
// matched by errors.Is through the device's context decoration, never
// by equality.
func TestTimeoutBackoffErrorWrapping(t *testing.T) {
	e := sim.NewEnv()
	o := obs.Of(e)
	fault.Install(e, fault.Plan{
		Seed:         11,
		TimeoutOneIn: 2, // roughly every other command times out
		TimeoutDelay: 50 * sim.Microsecond,
	})
	d := New(e, small(ULLSSD()))
	ps := d.PageSize()
	e.Go("t", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if err := d.WritePages(p, ftl.LBA(i), bytes.Repeat([]byte{byte(i)}, ps)); err != nil {
				t.Errorf("write %d: %v", i, err)
				return
			}
		}
		if err := d.Drain(p); err != nil {
			t.Errorf("drain: %v", err)
			return
		}
		for i := 0; i < 8; i++ {
			got, err := d.ReadPages(p, ftl.LBA(i), 1)
			if err != nil || got[0] != byte(i) {
				t.Errorf("read %d after timeouts: %v", i, err)
				return
			}
		}
		// A genuine failure under the same plan: corrupted page. The
		// device decorates it with command context, so equality would
		// miss — errors.Is must still match the sentinel.
		ppa, ok := d.FTL().PPAOf(3)
		if !ok {
			t.Error("lba 3 not mapped")
			return
		}
		d.Flash().CorruptPage(ppa, 1)
		_, err := d.ReadPages(p, 3, 1)
		if err == nil {
			t.Error("read of corrupted page succeeded")
			return
		}
		if err == integrity.ErrPageCorrupt { //nolint:errorlint // proving the wrap
			t.Error("error returned unwrapped; context decoration missing")
		}
		if !errors.Is(err, integrity.ErrPageCorrupt) {
			t.Errorf("errors.Is failed to match through the wrap: %v", err)
		}
	})
	e.Run()
	if n := o.Registry().Counter("ULL-SSD.cmd_timeouts").Value(); n == 0 {
		t.Error("no command timeouts injected; backoff path never ran")
	}
}
