// Package pcie models the host-CPU side of memory-mapped I/O to a PCIe
// device BAR: write-combining (WC) stores, non-posted split reads, and
// the two-step durability protocol of the paper (Section III-B):
//
//  1. clflush + mfence drain the CPU's WC buffers toward the root
//     complex, and
//  2. a "write-verify read" (zero-byte non-posted read) forces all
//     prior posted writes to commit at the device.
//
// The model is falsifiable: bytes written but not yet synced sit in a
// volatile staging area and are LOST when DropPending is called (power
// failure), except for bursts that were already evicted to the device
// because the finite WC buffer overflowed — exactly the x86 behaviour
// that makes the paper's flush protocol necessary.
package pcie

import (
	"errors"
	"fmt"

	"twobssd/internal/fault"
	"twobssd/internal/histo"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// Config calibrates the MMIO latency model. Defaults (DefaultConfig)
// are tuned to the paper's measured Fig 7 MMIO curves.
type Config struct {
	// Writes: posted transactions, combined into WC bursts.
	WCBurstBytes   int          // burst granule (64 B on x86)
	WCBufferBursts int          // WC buffers before forced eviction (~10 on x86)
	WriteBase      sim.Duration // first burst of a store sequence
	WritePerBurst  sim.Duration // each additional burst
	// Reads: non-posted, split into small transactions for atomicity.
	ReadTxBytes int          // split size (8 B on x86)
	ReadBase    sim.Duration // fixed per-request overhead
	ReadPerTx   sim.Duration // per split transaction round trip
	// Sync: clflush+mfence per dirty line plus write-verify read.
	SyncBase    sim.Duration // mfence + zero-byte write-verify read
	SyncPerLine sim.Duration // clflush per 64 B line in the range
}

// DefaultConfig returns the calibrated model:
// 8 B write 630 ns, 4 KB write ≈ 2 µs, 4 KB read ≈ 150 µs,
// sync overhead ≈ +15 % at 8 B and ≈ +47 % at 4 KB.
func DefaultConfig() Config {
	return Config{
		WCBurstBytes:   64,
		WCBufferBursts: 10,
		WriteBase:      630 * sim.Nanosecond,
		WritePerBurst:  21 * sim.Nanosecond,
		ReadTxBytes:    8,
		ReadBase:       1900 * sim.Nanosecond,
		ReadPerTx:      289 * sim.Nanosecond,
		SyncBase:       82 * sim.Nanosecond,
		SyncPerLine:    13 * sim.Nanosecond,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.WCBurstBytes <= 0:
		return errors.New("pcie: WCBurstBytes must be > 0")
	case c.WCBufferBursts <= 0:
		return errors.New("pcie: WCBufferBursts must be > 0")
	case c.ReadTxBytes <= 0:
		return errors.New("pcie: ReadTxBytes must be > 0")
	case c.WriteBase < 0 || c.WritePerBurst < 0 || c.ReadBase < 0 ||
		c.ReadPerTx < 0 || c.SyncBase < 0 || c.SyncPerLine < 0:
		return errors.New("pcie: latencies must be >= 0")
	}
	return nil
}

// ErrOutOfWindow reports an access beyond the mapped BAR range.
var ErrOutOfWindow = errors.New("pcie: access outside MMIO window")

// Window is one mapped BAR region backed by device memory. `mem` is
// the device-side (committed) view — for the 2B-SSD this is the
// BA-buffer DRAM, which the recovery manager treats as durable.
type Window struct {
	env *sim.Env
	cfg Config
	mem []byte

	// pending holds WC bursts not yet committed to the device, in
	// arrival order (oldest first). Lost on power failure. The head
	// advances by cursor and retired burst buffers are recycled through
	// spare, so steady-state staging does not allocate.
	pending  []burst
	pendHead int
	spare    [][]byte

	// Metrics ("pcie.*" in the obs registry — Stats() reads them back,
	// so the MMIO report and this API agree by construction).
	o                       *obs.Set
	inj                     *fault.Injector
	cWrites, cReads, cSyncs *obs.Counter
	cBytesWrit, cBytesRead  *obs.Counter
	cEvictions, cWVReads    *obs.Counter
	hWrite, hRead, hSync    *histo.H

	committedBytes uint64
}

type burst struct {
	off  int
	data []byte
}

// NewWindow maps cfg over the given device memory. Panics on invalid
// configuration (construction-time misuse).
func NewWindow(env *sim.Env, cfg Config, mem []byte) *Window {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	w := &Window{env: env, cfg: cfg, mem: mem, o: obs.Of(env), inj: fault.Of(env)}
	reg := w.o.Registry()
	w.cWrites = reg.Counter("pcie.mmio_writes")
	w.cReads = reg.Counter("pcie.mmio_reads")
	w.cSyncs = reg.Counter("pcie.syncs")
	w.cBytesWrit = reg.Counter("pcie.bytes_written")
	w.cBytesRead = reg.Counter("pcie.bytes_read")
	w.cEvictions = reg.Counter("pcie.wc_evictions")
	w.cWVReads = reg.Counter("pcie.write_verify_reads")
	w.hWrite = reg.Histo("pcie.mmio_write_ns")
	w.hRead = reg.Histo("pcie.mmio_read_ns")
	w.hSync = reg.Histo("pcie.sync_ns")
	reg.GaugeFunc("pcie.pending_bursts", func() float64 { return float64(w.PendingBursts()) })
	return w
}

// Size returns the window length in bytes.
func (w *Window) Size() int { return len(w.mem) }

// Config returns the latency model in use.
func (w *Window) Config() Config { return w.cfg }

func (w *Window) check(off, n int) error {
	if off < 0 || n < 0 || off+n > len(w.mem) {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrOutOfWindow, off, off+n, len(w.mem))
	}
	return nil
}

// Write performs an MMIO store sequence (memcpy onto the BAR): a posted
// transaction per WC burst. The data lands in the volatile WC staging
// until a Sync — except bursts force-evicted when the WC buffer pool
// overflows, which commit immediately (and are then power-safe).
func (w *Window) Write(p *sim.Proc, off int, data []byte) error {
	if err := w.check(off, len(data)); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	bs := w.cfg.WCBurstBytes
	firstLine := off / bs
	lastLine := (off + len(data) - 1) / bs
	bursts := lastLine - firstLine + 1
	d := w.cfg.WriteBase + sim.Duration(bursts-1)*w.cfg.WritePerBurst
	sp := w.o.Tracer().Begin("pcie.mmio", "pcie", "mmio_write")
	p.Sleep(d)
	sp.End()
	w.hWrite.Observe(d)

	// Stage per-burst copies.
	for line := firstLine; line <= lastLine; line++ {
		lo := line * bs
		hi := lo + bs
		if lo < off {
			lo = off
		}
		if hi > off+len(data) {
			hi = off + len(data)
		}
		seg := w.getSeg(hi - lo)
		copy(seg, data[lo-off:hi-off])
		w.pending = append(w.pending, burst{off: lo, data: seg})
		w.inj.Tick(fault.EvWCBurst)
	}
	// Finite WC buffer pool: oldest bursts evict to the device.
	for w.PendingBursts() > w.cfg.WCBufferBursts {
		b := w.popPending()
		w.commitBurst(b)
		w.putSeg(b.data)
		w.cEvictions.Inc()
	}
	w.cWrites.Inc()
	w.cBytesWrit.Add(uint64(len(data)))
	return nil
}

func (w *Window) commitBurst(b burst) {
	copy(w.mem[b.off:], b.data)
	w.committedBytes += uint64(len(b.data))
}

// getSeg returns a burst buffer of length n (≤ one WC burst), reusing a
// retired one when available.
func (w *Window) getSeg(n int) []byte {
	if k := len(w.spare); k > 0 {
		s := w.spare[k-1]
		w.spare[k-1] = nil
		w.spare = w.spare[:k-1]
		return s[:n]
	}
	return make([]byte, n, w.cfg.WCBurstBytes)
}

func (w *Window) putSeg(s []byte) { w.spare = append(w.spare, s) }

// popPending removes the oldest staged burst (caller checked there is
// one). The head moves by cursor so the backing array is recycled, not
// re-sliced away.
func (w *Window) popPending() burst {
	b := w.pending[w.pendHead]
	w.pending[w.pendHead] = burst{}
	w.pendHead++
	if w.pendHead == len(w.pending) {
		w.pending = w.pending[:0]
		w.pendHead = 0
	}
	return b
}

// Read performs an MMIO load of len(buf) bytes at off. Reads from WC
// memory are non-posted and split into ReadTxBytes transactions; on
// x86 a load from a WC region also drains the WC buffers first, so the
// read always observes this CPU's own prior stores.
func (w *Window) Read(p *sim.Proc, off int, buf []byte) error {
	if err := w.check(off, len(buf)); err != nil {
		return err
	}
	w.drainPending()
	tx := (len(buf) + w.cfg.ReadTxBytes - 1) / w.cfg.ReadTxBytes
	d := w.cfg.ReadBase + sim.Duration(tx)*w.cfg.ReadPerTx
	sp := w.o.Tracer().Begin("pcie.mmio", "pcie", "mmio_read")
	p.Sleep(d)
	sp.End()
	w.hRead.Observe(d)
	copy(buf, w.mem[off:off+len(buf)])
	w.cReads.Inc()
	w.cBytesRead.Add(uint64(len(buf)))
	return nil
}

func (w *Window) drainPending() {
	for w.PendingBursts() > 0 {
		b := w.popPending()
		w.commitBurst(b)
		w.putSeg(b.data)
	}
}

// Sync executes the durability protocol for [off, off+n): clflush per
// 64 B line followed by mfence, then a zero-byte write-verify read.
// Afterwards every prior store to the window is committed on the
// device (clflush drains whole WC buffers, not just the range, and the
// verify read orders everything at the root complex).
func (w *Window) Sync(p *sim.Proc, off, n int) error {
	if err := w.check(off, n); err != nil {
		return err
	}
	bs := w.cfg.WCBurstBytes
	lines := 0
	if n > 0 {
		lines = (off+n-1)/bs - off/bs + 1
	}
	d := w.cfg.SyncBase + sim.Duration(lines)*w.cfg.SyncPerLine
	sp := w.o.Tracer().Begin("pcie.mmio", "pcie", "sync")
	p.Sleep(d)
	sp.End()
	w.hSync.Observe(d)
	w.drainPending()
	w.cWVReads.Inc()
	w.cSyncs.Inc()
	return nil
}

// DropPending models a power failure on the host side: WC-staged bytes
// that were never synced or evicted vanish. Returns the number of
// bursts lost.
func (w *Window) DropPending() int {
	n := w.PendingBursts()
	for w.PendingBursts() > 0 {
		w.putSeg(w.popPending().data)
	}
	return n
}

// PendingBursts reports how many WC bursts are staged (volatile).
func (w *Window) PendingBursts() int { return len(w.pending) - w.pendHead }

// Stats reports operation counters.
type Stats struct {
	Writes, Reads, Syncs     uint64
	BytesWritten, BytesRead  uint64
	WCEvictions, VerifyReads uint64
}

// Stats returns a snapshot of the window counters (sourced from the
// obs registry's "pcie.*" metrics).
func (w *Window) Stats() Stats {
	return Stats{
		Writes: w.cWrites.Value(), Reads: w.cReads.Value(), Syncs: w.cSyncs.Value(),
		BytesWritten: w.cBytesWrit.Value(), BytesRead: w.cBytesRead.Value(),
		WCEvictions: w.cEvictions.Value(), VerifyReads: w.cWVReads.Value(),
	}
}
