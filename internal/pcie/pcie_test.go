package pcie

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"twobssd/internal/sim"
)

func newWin(e *sim.Env, size int) *Window {
	return NewWindow(e, DefaultConfig(), make([]byte, size))
}

func TestDefaultConfigValid(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := DefaultConfig()
	bad.ReadTxBytes = 0
	if bad.Validate() == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestWriteLatencyCalibration(t *testing.T) {
	// Paper Fig 7b: 8 B write = 630 ns, 4 KB write ≈ 2 µs.
	measure := func(n int) sim.Duration {
		e := sim.NewEnv()
		w := newWin(e, 8<<20)
		var took sim.Duration
		e.Go("t", func(p *sim.Proc) {
			start := e.Now()
			if err := w.Write(p, 0, make([]byte, n)); err != nil {
				t.Fatalf("write: %v", err)
			}
			took = sim.Duration(e.Now() - start)
		})
		e.Run()
		return took
	}
	if got := measure(8); got != 630 {
		t.Errorf("8B write = %v, want 630ns", got)
	}
	got4k := measure(4096)
	if got4k < 1900 || got4k > 2100 {
		t.Errorf("4KB write = %v, want ~2us", got4k)
	}
}

func TestReadLatencyCalibration(t *testing.T) {
	// Paper Fig 7a: 4 KB MMIO read ≈ 150 µs; sub-256 B reads land in
	// the couple-of-µs range.
	measure := func(n int) sim.Duration {
		e := sim.NewEnv()
		w := newWin(e, 8<<20)
		var took sim.Duration
		e.Go("t", func(p *sim.Proc) {
			start := e.Now()
			if err := w.Read(p, 0, make([]byte, n)); err != nil {
				t.Fatalf("read: %v", err)
			}
			took = sim.Duration(e.Now() - start)
		})
		e.Run()
		return took
	}
	got4k := measure(4096)
	if got4k < 140*sim.Microsecond || got4k > 160*sim.Microsecond {
		t.Errorf("4KB read = %v, want ~150us", got4k)
	}
	got8 := measure(8)
	if got8 < 2*sim.Microsecond || got8 > 3*sim.Microsecond {
		t.Errorf("8B read = %v, want ~2.2us", got8)
	}
}

func TestSyncOverheadCalibration(t *testing.T) {
	// Paper: persistent MMIO ≈ +15 % at small sizes, ≈ +47 % at 4 KB.
	ratio := func(n int) float64 {
		e := sim.NewEnv()
		w := newWin(e, 8<<20)
		var wr, sync sim.Duration
		e.Go("t", func(p *sim.Proc) {
			start := e.Now()
			w.Write(p, 0, make([]byte, n))
			wr = sim.Duration(e.Now() - start)
			start = e.Now()
			w.Sync(p, 0, n)
			sync = sim.Duration(e.Now() - start)
		})
		e.Run()
		return float64(wr+sync) / float64(wr)
	}
	if r := ratio(8); r < 1.10 || r > 1.20 {
		t.Errorf("8B persistent/plain = %.2f, want ~1.15", r)
	}
	if r := ratio(4096); r < 1.40 || r > 1.55 {
		t.Errorf("4KB persistent/plain = %.2f, want ~1.47", r)
	}
}

func TestSub1usPersistentWriteUpTo1KB(t *testing.T) {
	// The paper's headline: "sub-one µs latency is possible for a write
	// of 1 KB or less in size" (plain MMIO write; Fig 7b).
	e := sim.NewEnv()
	w := newWin(e, 8<<20)
	e.Go("t", func(p *sim.Proc) {
		start := e.Now()
		w.Write(p, 0, make([]byte, 1024))
		took := sim.Duration(e.Now() - start)
		if took >= sim.Microsecond {
			t.Errorf("1KB MMIO write = %v, want < 1us", took)
		}
	})
	e.Run()
}

func TestWriteSyncReadRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	w := newWin(e, 4096)
	data := []byte("hello 2B-SSD")
	e.Go("t", func(p *sim.Proc) {
		if err := w.Write(p, 100, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		if err := w.Sync(p, 100, len(data)); err != nil {
			t.Fatalf("sync: %v", err)
		}
		got := make([]byte, len(data))
		if err := w.Read(p, 100, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Errorf("got %q", got)
		}
	})
	e.Run()
}

func TestReadSeesOwnUnsyncedWrites(t *testing.T) {
	// x86: a load from WC memory drains the WC buffers first.
	e := sim.NewEnv()
	w := newWin(e, 4096)
	e.Go("t", func(p *sim.Proc) {
		w.Write(p, 0, []byte{1, 2, 3})
		got := make([]byte, 3)
		w.Read(p, 0, got)
		if got[0] != 1 || got[2] != 3 {
			t.Errorf("read after write got %v", got)
		}
	})
	e.Run()
}

func TestUnsyncedWritesLostOnPowerFailure(t *testing.T) {
	e := sim.NewEnv()
	w := newWin(e, 4096)
	e.Go("t", func(p *sim.Proc) {
		w.Write(p, 0, []byte{0xAA, 0xBB})
		// No sync: power fails.
		if lost := w.DropPending(); lost == 0 {
			t.Error("expected pending bursts to be lost")
		}
		if w.mem[0] != 0 {
			t.Error("unsynced data reached device memory")
		}
	})
	e.Run()
}

func TestSyncedWritesSurvivePowerFailure(t *testing.T) {
	e := sim.NewEnv()
	w := newWin(e, 4096)
	e.Go("t", func(p *sim.Proc) {
		w.Write(p, 0, []byte{0xAA, 0xBB})
		w.Sync(p, 0, 2)
		w.DropPending()
		if w.mem[0] != 0xAA || w.mem[1] != 0xBB {
			t.Error("synced data lost")
		}
	})
	e.Run()
}

func TestWCOverflowEvictsOldestToDevice(t *testing.T) {
	// Writing more bursts than the WC pool holds force-evicts the
	// oldest to the device; those survive power failure even unsynced.
	e := sim.NewEnv()
	cfg := DefaultConfig() // 10 bursts of 64 B
	w := NewWindow(e, cfg, make([]byte, 4096))
	e.Go("t", func(p *sim.Proc) {
		data := bytes.Repeat([]byte{0xCC}, 64*15) // 15 bursts
		w.Write(p, 0, data)
		if w.PendingBursts() != cfg.WCBufferBursts {
			t.Errorf("pending = %d, want %d", w.PendingBursts(), cfg.WCBufferBursts)
		}
		w.DropPending()
		// First 5 bursts (evicted) must be on the device; the rest not.
		if w.mem[0] != 0xCC {
			t.Error("evicted burst missing from device memory")
		}
		if w.mem[64*14] == 0xCC {
			t.Error("staged burst reached device without sync")
		}
	})
	e.Run()
	if w.Stats().WCEvictions == 0 {
		t.Error("no evictions counted")
	}
}

func TestOutOfWindowAccess(t *testing.T) {
	e := sim.NewEnv()
	w := newWin(e, 64)
	e.Go("t", func(p *sim.Proc) {
		if err := w.Write(p, 60, make([]byte, 8)); !errors.Is(err, ErrOutOfWindow) {
			t.Errorf("write err = %v", err)
		}
		if err := w.Read(p, -1, make([]byte, 4)); !errors.Is(err, ErrOutOfWindow) {
			t.Errorf("read err = %v", err)
		}
		if err := w.Sync(p, 0, 100); !errors.Is(err, ErrOutOfWindow) {
			t.Errorf("sync err = %v", err)
		}
	})
	e.Run()
}

func TestZeroLengthWriteIsFree(t *testing.T) {
	e := sim.NewEnv()
	w := newWin(e, 64)
	e.Go("t", func(p *sim.Proc) {
		start := e.Now()
		if err := w.Write(p, 0, nil); err != nil {
			t.Fatalf("write: %v", err)
		}
		if e.Now() != start {
			t.Error("zero-length write took time")
		}
	})
	e.Run()
}

func TestStatsCounters(t *testing.T) {
	e := sim.NewEnv()
	w := newWin(e, 4096)
	e.Go("t", func(p *sim.Proc) {
		w.Write(p, 0, make([]byte, 100))
		w.Sync(p, 0, 100)
		w.Read(p, 0, make([]byte, 10))
	})
	e.Run()
	st := w.Stats()
	if st.Writes != 1 || st.Syncs != 1 || st.Reads != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesWritten != 100 || st.BytesRead != 10 {
		t.Fatalf("byte stats = %+v", st)
	}
	if st.VerifyReads != 1 {
		t.Fatalf("verify reads = %d", st.VerifyReads)
	}
}

// Property: write+sync makes the device view equal to the written data
// for any offset/payload within the window.
func TestPropertyWriteSyncCommits(t *testing.T) {
	prop := func(off uint16, payload []byte) bool {
		const size = 1 << 16
		o := int(off)
		if len(payload) == 0 || o+len(payload) > size {
			return true
		}
		e := sim.NewEnv()
		w := newWin(e, size)
		ok := true
		e.Go("t", func(p *sim.Proc) {
			if err := w.Write(p, o, payload); err != nil {
				ok = false
				return
			}
			if err := w.Sync(p, o, len(payload)); err != nil {
				ok = false
				return
			}
			ok = bytes.Equal(w.mem[o:o+len(payload)], payload)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: monotonicity — a larger write never takes less time.
func TestPropertyWriteLatencyMonotone(t *testing.T) {
	lat := func(n int) sim.Duration {
		e := sim.NewEnv()
		w := newWin(e, 1<<20)
		var took sim.Duration
		e.Go("t", func(p *sim.Proc) {
			start := e.Now()
			w.Write(p, 0, make([]byte, n))
			took = sim.Duration(e.Now() - start)
		})
		e.Run()
		return took
	}
	prop := func(a, b uint16) bool {
		na, nb := int(a)%65536+1, int(b)%65536+1
		if na > nb {
			na, nb = nb, na
		}
		return lat(na) <= lat(nb)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
