// Package ycsb generates Yahoo! Cloud Serving Benchmark workloads.
// Workload A (50 % reads / 50 % updates, zipfian key popularity) is
// what the paper runs against RocksDB and Redis (Section V-C), with
// the payload size as the swept parameter.
package ycsb

import (
	"fmt"
	"math"
	"math/rand"

	"twobssd/internal/sim"
)

// Zipfian draws integers in [0, n) with the YCSB zipfian distribution
// (Gray et al.'s rejection-free algorithm, as in the YCSB core).
type Zipfian struct {
	n     int64
	theta float64
	alpha float64
	zetan float64
	eta   float64
	zeta2 float64
	rng   *rand.Rand
}

// NewZipfian builds a generator over [0, n) with skew theta (YCSB
// default 0.99).
func NewZipfian(n int64, theta float64, seed int64) *Zipfian {
	if n <= 0 {
		panic("ycsb: zipfian over empty range")
	}
	z := &Zipfian{n: n, theta: theta, rng: rand.New(rand.NewSource(seed))}
	z.zetan = zeta(n, theta)
	z.zeta2 = zeta(2, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = (1 - math.Pow(2.0/float64(n), 1-theta)) / (1 - z.zeta2/z.zetan)
	return z
}

func zeta(n int64, theta float64) float64 {
	var sum float64
	for i := int64(1); i <= n; i++ {
		sum += 1.0 / math.Pow(float64(i), theta)
	}
	return sum
}

// Next draws the next value.
func (z *Zipfian) Next() int64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

// OpKind is a workload operation type.
type OpKind int

// Workload operations.
const (
	OpRead OpKind = iota
	OpUpdate
	OpInsert
	OpScan
)

func (k OpKind) String() string {
	switch k {
	case OpRead:
		return "READ"
	case OpUpdate:
		return "UPDATE"
	case OpInsert:
		return "INSERT"
	case OpScan:
		return "SCAN"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// Op is one generated operation.
type Op struct {
	Kind  OpKind
	Key   []byte
	Value []byte
}

// Config shapes a workload.
type Config struct {
	Records      int64   // keyspace size
	ReadFraction float64 // e.g. 0.5 for workload A
	ScanFraction float64 // 0 for workload A
	PayloadBytes int     // value size per update/insert
	Theta        float64 // zipfian skew (default 0.99)
	Seed         int64
}

// WorkloadA returns the paper's configuration: 50 % reads, 50 %
// updates, zipfian, with the given payload size.
func WorkloadA(records int64, payload int, seed int64) Config {
	return Config{
		Records:      records,
		ReadFraction: 0.5,
		PayloadBytes: payload,
		Theta:        0.99,
		Seed:         seed,
	}
}

// Generator produces a deterministic operation stream.
type Generator struct {
	cfg  Config
	zipf *Zipfian
	rng  *rand.Rand
	val  []byte
	key  [20]byte // "user" + 16 hex digits, reused across calls
}

// NewGenerator builds a generator from cfg.
func NewGenerator(cfg Config) *Generator {
	if cfg.Theta <= 0 {
		cfg.Theta = 0.99
	}
	if cfg.PayloadBytes <= 0 {
		cfg.PayloadBytes = 1024
	}
	g := &Generator{
		cfg:  cfg,
		zipf: NewZipfian(cfg.Records, cfg.Theta, cfg.Seed),
		rng:  rand.New(rand.NewSource(cfg.Seed + 1)),
		val:  make([]byte, cfg.PayloadBytes),
	}
	for i := range g.val {
		g.val[i] = byte('a' + i%26)
	}
	return g
}

// Key formats the ith record key (FNV-scrambled like YCSB so zipfian
// popularity is spread over the keyspace). The returned slice reuses a
// buffer owned by the generator: it is valid only until the next Key or
// Next call, and stores that retain keys must copy (they all do).
func (g *Generator) Key(i int64) []byte {
	h := uint64(14695981039346656037)
	for b := 0; b < 8; b++ {
		h ^= uint64(i >> (8 * b) & 0xFF)
		h *= 1099511628211
	}
	const hex = "0123456789abcdef"
	copy(g.key[:4], "user")
	for j := 0; j < 16; j++ {
		g.key[4+j] = hex[(h>>uint(60-4*j))&0xF]
	}
	return g.key[:]
}

// Next draws one operation.
func (g *Generator) Next() Op {
	i := g.zipf.Next()
	key := g.Key(i)
	r := g.rng.Float64()
	switch {
	case r < g.cfg.ReadFraction:
		return Op{Kind: OpRead, Key: key}
	case r < g.cfg.ReadFraction+g.cfg.ScanFraction:
		return Op{Kind: OpScan, Key: key}
	default:
		return Op{Kind: OpUpdate, Key: key, Value: g.val}
	}
}

// KV is the store interface the runner drives.
type KV interface {
	Read(p *sim.Proc, key []byte) error
	Update(p *sim.Proc, key, value []byte) error
}

// Load preloads the keyspace (every key once).
func (g *Generator) Load(p *sim.Proc, kv KV) error {
	for i := int64(0); i < g.cfg.Records; i++ {
		if err := kv.Update(p, g.Key(i), g.val); err != nil {
			return err
		}
	}
	return nil
}

// Result summarizes a run.
type Result struct {
	Ops     int64
	Reads   int64
	Updates int64
	Elapsed sim.Duration
}

// Throughput returns operations per second of virtual time.
func (r Result) Throughput() float64 {
	if r.Elapsed == 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Run executes ops operations across `clients` concurrent client
// processes and reports aggregate throughput. Each client gets an
// independent deterministic stream.
func Run(env *sim.Env, kv KV, cfg Config, clients int, ops int64) (Result, error) {
	if clients <= 0 {
		clients = 1
	}
	perClient := ops / int64(clients)
	var res Result
	var firstErr error
	start := env.Now()
	var lastDone sim.Time
	for c := 0; c < clients; c++ {
		ccfg := cfg
		ccfg.Seed = cfg.Seed + int64(c)*7919
		g := NewGenerator(ccfg)
		env.Go(fmt.Sprintf("ycsb.c%d", c), func(p *sim.Proc) {
			for i := int64(0); i < perClient; i++ {
				op := g.Next()
				var err error
				switch op.Kind {
				case OpRead:
					err = kv.Read(p, op.Key)
					res.Reads++
				default:
					err = kv.Update(p, op.Key, op.Value)
					res.Updates++
				}
				if err != nil && firstErr == nil {
					firstErr = err
					return
				}
				res.Ops++
			}
			if env.Now() > lastDone {
				lastDone = env.Now()
			}
		})
	}
	env.Run()
	// Elapsed ends at the last client's completion — background flush
	// timers that fire later must not dilate the measurement.
	res.Elapsed = sim.Duration(lastDone - start)
	return res, firstErr
}
