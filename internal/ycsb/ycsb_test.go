package ycsb

import (
	"math"
	"testing"

	"twobssd/internal/sim"
)

func TestZipfianRangeAndSkew(t *testing.T) {
	z := NewZipfian(1000, 0.99, 42)
	counts := make([]int, 1000)
	const draws = 100000
	for i := 0; i < draws; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be far more popular than rank 500.
	if counts[0] < 10*counts[500]+1 {
		t.Fatalf("no skew: c0=%d c500=%d", counts[0], counts[500])
	}
	// Head mass: top-10 of a 0.99-zipfian carries a large share.
	head := 0
	for i := 0; i < 10; i++ {
		head += counts[i]
	}
	if frac := float64(head) / draws; frac < 0.15 {
		t.Fatalf("head mass = %.3f, want > 0.15", frac)
	}
}

func TestZipfianDeterministic(t *testing.T) {
	a, b := NewZipfian(100, 0.99, 7), NewZipfian(100, 0.99, 7)
	for i := 0; i < 1000; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestWorkloadAMix(t *testing.T) {
	g := NewGenerator(WorkloadA(1000, 64, 1))
	reads, updates := 0, 0
	for i := 0; i < 20000; i++ {
		switch g.Next().Kind {
		case OpRead:
			reads++
		case OpUpdate:
			updates++
		default:
			t.Fatal("unexpected op kind in workload A")
		}
	}
	frac := float64(reads) / 20000
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("read fraction = %.3f, want ~0.5", frac)
	}
	_ = updates
}

func TestPayloadSize(t *testing.T) {
	g := NewGenerator(WorkloadA(100, 256, 1))
	for i := 0; i < 100; i++ {
		op := g.Next()
		if op.Kind == OpUpdate && len(op.Value) != 256 {
			t.Fatalf("payload = %d", len(op.Value))
		}
	}
}

func TestKeysScrambledAndStable(t *testing.T) {
	g := NewGenerator(WorkloadA(100, 64, 1))
	// Key reuses an internal buffer, so snapshot before the next call.
	k1 := string(g.Key(1))
	k2 := string(g.Key(2))
	if k1 == k2 {
		t.Fatal("key collision")
	}
	if string(g.Key(1)) != k1 {
		t.Fatal("keys not stable")
	}
}

// memKV is an in-memory KV charging fixed costs, for runner tests.
type memKV struct {
	m map[string][]byte
}

func (k *memKV) Read(p *sim.Proc, key []byte) error {
	p.Sleep(1 * sim.Microsecond)
	_ = k.m[string(key)]
	return nil
}

func (k *memKV) Update(p *sim.Proc, key, value []byte) error {
	p.Sleep(2 * sim.Microsecond)
	k.m[string(key)] = value
	return nil
}

func TestRunAggregates(t *testing.T) {
	env := sim.NewEnv()
	kv := &memKV{m: make(map[string][]byte)}
	res, err := Run(env, kv, WorkloadA(100, 64, 9), 4, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops != 1000 {
		t.Fatalf("ops = %d", res.Ops)
	}
	if res.Reads == 0 || res.Updates == 0 {
		t.Fatalf("mix missing: %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatal("no throughput")
	}
	// 4 clients of 250 ops at 1-2us each, concurrent: elapsed must be
	// well under the serial sum.
	if res.Elapsed > 700*sim.Microsecond {
		t.Fatalf("elapsed %v suggests no concurrency", res.Elapsed)
	}
}
