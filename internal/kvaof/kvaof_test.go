package kvaof

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

type rig struct {
	env *sim.Env
	ssd *core.TwoBSSD
	fs  *vfs.FS
}

func newRig() *rig {
	e := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 64
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.15
	cfg.Base.WriteBufferPages = 64
	cfg.Base.DrainWorkers = 8
	cfg.BABufferBytes = 64 * 4096
	ssd := core.New(e, cfg)
	return &rig{env: e, ssd: ssd, fs: vfs.New(ssd.Device())}
}

func (r *rig) config(mode wal.CommitMode) Config {
	cfg := Config{
		LogFS:    r.fs,
		WALMode:  mode,
		AOFBytes: 1 << 20,
	}
	if mode == wal.BA {
		cfg.SSD = r.ssd
		cfg.SegmentBytes = 64 * 4096 // whole BA-buffer, per the paper
	}
	return cfg
}

func TestSetGetDel(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		s, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		s.Set(p, []byte("k1"), []byte("v1"))
		s.Set(p, []byte("k2"), []byte("v2"))
		if v, ok := s.Get(p, []byte("k1")); !ok || string(v) != "v1" {
			t.Fatalf("get k1: %q %v", v, ok)
		}
		s.Del(p, []byte("k1"))
		if _, ok := s.Get(p, []byte("k1")); ok {
			t.Fatal("deleted key visible")
		}
		if s.Len() != 1 {
			t.Fatalf("len = %d", s.Len())
		}
	})
	r.env.Run()
}

func TestReplayRebuildsDict(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		s, _ := Open(r.env, p, r.config(wal.Sync))
		for i := 0; i < 40; i++ {
			s.Set(p, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
		}
		s.Del(p, []byte("k05"))
		// Crash and reopen.
		s2, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if s2.Len() != 39 {
			t.Fatalf("len = %d, want 39", s2.Len())
		}
		if v, ok := s2.Get(p, []byte("k07")); !ok || string(v) != "v7" {
			t.Fatalf("k07 = %q %v", v, ok)
		}
		if _, ok := s2.Get(p, []byte("k05")); ok {
			t.Fatal("deleted key resurrected")
		}
	})
	r.env.Run()
}

func TestAOFRewriteCompacts(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.AOFBytes = 64 << 10 // small AOF: force rewrites
		s, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		val := make([]byte, 400)
		for i := 0; i < 400; i++ {
			if err := s.Set(p, []byte(fmt.Sprintf("k%02d", i%20)), val); err != nil {
				t.Fatalf("set %d: %v", i, err)
			}
		}
		if s.Stats().Rewrites == 0 {
			t.Fatal("expected AOF rewrites")
		}
		if s.Len() != 20 {
			t.Fatalf("len = %d", s.Len())
		}
		// Rewritten AOF still replays correctly.
		s2, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if s2.Len() != 20 {
			t.Fatalf("replayed len = %d", s2.Len())
		}
	})
	r.env.Run()
}

func TestBAAOFSurvivesPowerLoss(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		s, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 30; i++ {
			if err := s.Set(p, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i))); err != nil {
				t.Fatalf("set: %v", err)
			}
		}
		if _, err := r.ssd.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := r.ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		s2, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 30; i++ {
			v, ok := s2.Get(p, []byte(fmt.Sprintf("k%02d", i)))
			if !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("k%02d lost after power cycle (%q, %v)", i, v, ok)
			}
		}
	})
	r.env.Run()
}

func TestSingleThreadedSerialization(t *testing.T) {
	// Concurrent clients serialize through the command loop: total time
	// is at least the sum of individual command times.
	r := newRig()
	var s *Store
	r.env.Go("setup", func(p *sim.Proc) {
		var err error
		s, err = Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		for c := 0; c < 4; c++ {
			c := c
			r.env.Go("client", func(p *sim.Proc) {
				for i := 0; i < 10; i++ {
					s.Set(p, []byte(fmt.Sprintf("c%d-%d", c, i)), []byte("v"))
				}
			})
		}
	})
	r.env.Run()
	acq, waited, _, _ := 0, 0, 0, 0
	_ = acq
	_ = waited
	if s.Len() != 40 {
		t.Fatalf("len = %d", s.Len())
	}
	a, w, _, _ := s.loop.Stats()
	if a == 0 || w == 0 {
		t.Fatalf("expected contention on the command loop (acq=%d waited=%d)", a, w)
	}
}

func TestBACommitBeatsSyncPerOp(t *testing.T) {
	opTime := func(mode wal.CommitMode) sim.Duration {
		r := newRig()
		var took sim.Duration
		r.env.Go("t", func(p *sim.Proc) {
			s, err := Open(r.env, p, r.config(mode))
			if err != nil {
				t.Fatal(err)
			}
			start := r.env.Now()
			for i := 0; i < 50; i++ {
				s.Set(p, []byte(fmt.Sprintf("k%d", i)), make([]byte, 64))
			}
			took = sim.Duration(r.env.Now()-start) / 50
		})
		r.env.Run()
		return took
	}
	ba, syn := opTime(wal.BA), opTime(wal.Sync)
	if ba >= syn {
		t.Fatalf("BA per-op %v not faster than sync %v", ba, syn)
	}
}

// Property: store equals a map under random commands with a replay.
func TestPropertyStoreMatchesMap(t *testing.T) {
	prop := func(seed int64) bool {
		r := newRig()
		ok := true
		r.env.Go("t", func(p *sim.Proc) {
			s, err := Open(r.env, p, r.config(wal.Sync))
			if err != nil {
				ok = false
				return
			}
			rng := rand.New(rand.NewSource(seed))
			shadow := make(map[string]string)
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("k%02d", rng.Intn(25))
				if rng.Intn(4) == 0 {
					s.Del(p, []byte(k))
					delete(shadow, k)
				} else {
					v := fmt.Sprintf("v%d", i)
					s.Set(p, []byte(k), []byte(v))
					shadow[k] = v
				}
			}
			s2, err := Open(r.env, p, r.config(wal.Sync))
			if err != nil {
				ok = false
				return
			}
			if s2.Len() != len(shadow) {
				ok = false
				return
			}
			for k, want := range shadow {
				got, found := s2.Get(p, []byte(k))
				if !found || string(got) != want {
					ok = false
					return
				}
			}
		})
		r.env.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestIncrAppendExists(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		s, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		// INCR from missing key.
		if n, err := s.Incr(p, []byte("ctr")); err != nil || n != 1 {
			t.Fatalf("incr = %d, %v", n, err)
		}
		for i := 0; i < 9; i++ {
			s.Incr(p, []byte("ctr"))
		}
		if v, ok := s.Get(p, []byte("ctr")); !ok || string(v) != "10" {
			t.Fatalf("ctr = %q", v)
		}
		// APPEND builds up a string.
		if n, err := s.Append(p, []byte("logline"), []byte("hello ")); err != nil || n != 6 {
			t.Fatalf("append = %d, %v", n, err)
		}
		if n, _ := s.Append(p, []byte("logline"), []byte("world")); n != 11 {
			t.Fatalf("append 2 = %d", n)
		}
		if !s.Exists(p, []byte("logline")) || s.Exists(p, []byte("nope")) {
			t.Fatal("EXISTS wrong")
		}
		// All of it replays identically after a crash.
		s2, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		if v, _ := s2.Get(p, []byte("ctr")); string(v) != "10" {
			t.Fatalf("replayed ctr = %q", v)
		}
		if v, _ := s2.Get(p, []byte("logline")); string(v) != "hello world" {
			t.Fatalf("replayed logline = %q", v)
		}
	})
	r.env.Run()
}
