// Package kvaof is a Redis-like in-memory key-value store with an
// append-only file (AOF): a single-threaded command loop, a hash
// dictionary, and one log record per write command.
//
// Per the paper's port (Section IV-B) the BA variant sizes the AOF
// window to the whole BA-buffer with NO double buffering, preserving
// Redis's single-threaded design: when the pinned window fills, the
// command stalls while the segment flushes and the next one pins.
package kvaof

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sort"
	"strconv"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// Config assembles a store.
type Config struct {
	LogFS *vfs.FS

	WALMode      wal.CommitMode
	SSD          *core.TwoBSSD
	EID          core.EID
	BufferOffset int
	SegmentBytes int // BA window size (whole BA-buffer per the paper)

	AOFBytes int64 // AOF file capacity

	ReadCPU  sim.Duration
	WriteCPU sim.Duration

	AsyncFlushInterval sim.Duration
}

func (c *Config) fillDefaults() error {
	if c.LogFS == nil {
		return errors.New("kvaof: LogFS required")
	}
	if c.AOFBytes <= 0 {
		c.AOFBytes = 8 << 20
	}
	if c.ReadCPU <= 0 {
		c.ReadCPU = 1 * sim.Microsecond
	}
	if c.WriteCPU <= 0 {
		c.WriteCPU = 1500 * sim.Nanosecond
	}
	if c.WALMode == wal.BA {
		if c.SSD == nil {
			return errors.New("kvaof: BA mode needs an SSD")
		}
		if c.SegmentBytes <= 0 {
			return errors.New("kvaof: BA mode needs SegmentBytes")
		}
	}
	return nil
}

// Stats aggregates store counters.
type Stats struct {
	Sets, Gets, Dels uint64
	Hits             uint64
	Rewrites         uint64
}

// entry is one dictionary value. Values are boxed so a hot update
// mutates in place (reusing the buffer) instead of paying a map
// assignment — and its key-string conversion — per write.
type entry struct {
	v []byte
}

// Store is the key-value store.
type Store struct {
	env  *sim.Env
	cfg  Config
	dict map[string]*entry
	aof  *wal.Log
	file *vfs.File
	// loop serializes every command: Redis's single-threaded design.
	loop  *sim.Resource
	stats Stats
	// scratch backs AOF record encoding; safe to reuse because the
	// command loop is exclusive and wal.Append copies the payload.
	scratch []byte
}

const aofName = "appendonly.aof"

// Open creates or recovers a store. An existing AOF is replayed.
func Open(env *sim.Env, p *sim.Proc, cfg Config) (*Store, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	s := &Store{
		env:  env,
		cfg:  cfg,
		dict: make(map[string]*entry),
		loop: env.NewResource("kvaof.loop", 1),
	}
	existing := cfg.LogFS.Exists(aofName)
	var f *vfs.File
	var err error
	if existing {
		f, err = cfg.LogFS.Open(aofName)
	} else {
		f, err = cfg.LogFS.Create(aofName, cfg.AOFBytes)
	}
	if err != nil {
		return nil, err
	}
	s.file = f
	l, err := wal.Open(env, s.walConfig(f))
	if err != nil {
		return nil, err
	}
	s.aof = l
	if existing {
		if err := s.replay(p); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *Store) walConfig(f *vfs.File) wal.Config {
	cfg := wal.Config{
		Mode:               s.cfg.WALMode,
		File:               f,
		SegmentBytes:       s.cfg.SegmentBytes,
		AsyncFlushInterval: s.cfg.AsyncFlushInterval,
	}
	if s.cfg.WALMode == wal.BA {
		cfg.SSD = s.cfg.SSD
		cfg.EIDs = []core.EID{s.cfg.EID}
		cfg.BufferOffset = s.cfg.BufferOffset
		cfg.DoubleBuffer = false // single-threaded design (paper IV-B)
	}
	return cfg
}

// Stats returns a snapshot of counters.
func (s *Store) Stats() Stats { return s.stats }

// Log exposes the AOF log for commit accounting.
func (s *Store) Log() *wal.Log { return s.aof }

// Len returns the number of live keys.
func (s *Store) Len() int { return len(s.dict) }

// Keys returns every live key in sorted order. Crash campaigns use it
// to enumerate the recovered store when hunting phantom records.
func (s *Store) Keys() []string {
	keys := make([]string, 0, len(s.dict))
	for k := range s.dict {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// AOF record encoding.
const (
	cmdSet    = byte(1)
	cmdDel    = byte(2)
	cmdIncr   = byte(3)
	cmdAppend = byte(4)
)

// encodeCmd builds one AOF record in the store's scratch buffer; the
// result is valid until the next encodeCmd call.
func (s *Store) encodeCmd(op byte, key, value []byte) []byte {
	need := 5 + len(key) + len(value)
	if cap(s.scratch) < need {
		s.scratch = make([]byte, need)
	}
	out := s.scratch[:need]
	out[0] = op
	binary.LittleEndian.PutUint32(out[1:], uint32(len(key)))
	copy(out[5:], key)
	copy(out[5+len(key):], value)
	return out
}

func decodeCmd(b []byte) (op byte, key, value []byte, err error) {
	if len(b) < 5 {
		return 0, nil, nil, errors.New("kvaof: short record")
	}
	klen := int(binary.LittleEndian.Uint32(b[1:]))
	if 5+klen > len(b) {
		return 0, nil, nil, errors.New("kvaof: bad record")
	}
	return b[0], b[5 : 5+klen], b[5+klen:], nil
}

// Set stores key=value durably (per the AOF commit mode). All command
// work happens inside the single-threaded loop, Redis-style.
func (s *Store) Set(p *sim.Proc, key, value []byte) error {
	s.loop.Acquire(p)
	defer s.loop.Release()
	p.Sleep(s.cfg.WriteCPU)
	if err := s.logCmd(p, cmdSet, key, value); err != nil {
		return err
	}
	s.put(key, value)
	s.stats.Sets++
	return nil
}

// Del removes a key durably.
func (s *Store) Del(p *sim.Proc, key []byte) error {
	s.loop.Acquire(p)
	defer s.loop.Release()
	p.Sleep(s.cfg.WriteCPU)
	if err := s.logCmd(p, cmdDel, key, nil); err != nil {
		return err
	}
	delete(s.dict, string(key))
	s.stats.Dels++
	return nil
}

// Get returns the value for key. The returned bytes alias store
// memory and are valid until the next write of that key; callers that
// keep them across writes must copy.
func (s *Store) Get(p *sim.Proc, key []byte) ([]byte, bool) {
	s.loop.Acquire(p)
	defer s.loop.Release()
	p.Sleep(s.cfg.ReadCPU)
	s.stats.Gets++
	e, ok := s.dict[string(key)]
	if !ok {
		return nil, false
	}
	s.stats.Hits++
	return e.v, true
}

// put installs key=value, reusing the existing entry's buffer when the
// key is already present (a map lookup on a []byte key does not
// allocate; a map assignment would).
func (s *Store) put(key, value []byte) {
	if e, ok := s.dict[string(key)]; ok {
		e.v = append(e.v[:0], value...)
		return
	}
	s.dict[string(key)] = &entry{v: append([]byte(nil), value...)}
}

// lookup returns the entry for key, creating it if missing.
func (s *Store) lookup(key []byte) *entry {
	if e, ok := s.dict[string(key)]; ok {
		return e
	}
	e := &entry{}
	s.dict[string(key)] = e
	return e
}

// logCmd appends and commits one AOF record, rewriting the AOF when it
// fills (Redis's BGREWRITEAOF, done inline: single-threaded).
func (s *Store) logCmd(p *sim.Proc, op byte, key, value []byte) error {
	rec := s.encodeCmd(op, key, value)
	lsn, err := s.aof.Append(p, rec)
	if errors.Is(err, wal.ErrLogFull) {
		if err = s.rewrite(p); err != nil {
			return err
		}
		lsn, err = s.aof.Append(p, rec)
	}
	if err != nil {
		return err
	}
	return s.aof.Commit(p, lsn)
}

// rewrite compacts the AOF: truncate, then one SET per live key.
func (s *Store) rewrite(p *sim.Proc) error {
	if err := s.aof.Reset(p); err != nil {
		return err
	}
	for k, e := range s.dict {
		lsn, err := s.aof.Append(p, s.encodeCmd(cmdSet, []byte(k), e.v))
		if err != nil {
			return fmt.Errorf("kvaof: rewrite overflow: %w", err)
		}
		if err := s.aof.Commit(p, lsn); err != nil {
			return err
		}
	}
	s.stats.Rewrites++
	return nil
}

// replay rebuilds the dictionary from the AOF.
func (s *Store) replay(p *sim.Proc) error {
	return s.aof.Recover(p, func(_ wal.LSN, payload []byte) error {
		op, key, value, err := decodeCmd(payload)
		if err != nil {
			return err
		}
		switch op {
		case cmdSet:
			s.put(key, value)
		case cmdDel:
			delete(s.dict, string(key))
		case cmdIncr:
			s.applyIncr(key)
		case cmdAppend:
			s.applyAppend(key, value)
		}
		return nil
	})
}

func (s *Store) applyIncr(key []byte) int64 {
	e := s.lookup(key)
	n, _ := strconv.ParseInt(string(e.v), 10, 64)
	n++
	e.v = strconv.AppendInt(e.v[:0], n, 10)
	return n
}

func (s *Store) applyAppend(key, value []byte) int {
	e := s.lookup(key)
	e.v = append(e.v, value...)
	return len(e.v)
}

// Incr atomically increments the integer value at key (INCR), starting
// from 0 for a missing key, and returns the new value.
func (s *Store) Incr(p *sim.Proc, key []byte) (int64, error) {
	s.loop.Acquire(p)
	defer s.loop.Release()
	p.Sleep(s.cfg.WriteCPU)
	if err := s.logCmd(p, cmdIncr, key, nil); err != nil {
		return 0, err
	}
	s.stats.Sets++
	return s.applyIncr(key), nil
}

// Append appends value to the string at key (APPEND) and returns the
// new length.
func (s *Store) Append(p *sim.Proc, key, value []byte) (int, error) {
	s.loop.Acquire(p)
	defer s.loop.Release()
	p.Sleep(s.cfg.WriteCPU)
	if err := s.logCmd(p, cmdAppend, key, value); err != nil {
		return 0, err
	}
	s.stats.Sets++
	return s.applyAppend(key, value), nil
}

// Exists reports whether key is present (EXISTS).
func (s *Store) Exists(p *sim.Proc, key []byte) bool {
	s.loop.Acquire(p)
	defer s.loop.Release()
	p.Sleep(s.cfg.ReadCPU)
	s.stats.Gets++
	_, ok := s.dict[string(key)]
	return ok
}
