package fio

import (
	"testing"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/sim"
)

func ull(e *sim.Env) *device.Device { return device.New(e, device.ULLSSD()) }
func dc(e *sim.Env) *device.Device  { return device.New(e, device.DCSSD()) }
func ssd2b(e *sim.Env) *core.TwoBSSD {
	return core.New(e, core.DefaultConfig())
}

func TestPagesFor(t *testing.T) {
	cases := []struct{ bytes, want int }{
		{0, 1}, {1, 1}, {4096, 1}, {4097, 2}, {8192, 2}, {-3, 1},
	}
	for _, c := range cases {
		if got := pagesFor(c.bytes, 4096); got != c.want {
			t.Errorf("pagesFor(%d) = %d, want %d", c.bytes, got, c.want)
		}
	}
}

func TestMBps(t *testing.T) {
	if got := MBps(1000000, sim.Second); got != 1.0 {
		t.Fatalf("MBps = %v", got)
	}
	if MBps(100, 0) != 0 {
		t.Fatal("zero duration should yield 0")
	}
}

func TestBlockLatenciesMatchCalibration(t *testing.T) {
	if got := BlockReadLatency(ull, 4096, 5); got < 12*sim.Microsecond || got > 15*sim.Microsecond {
		t.Errorf("ULL 4KB read = %v", got)
	}
	if got := BlockWriteLatency(dc, 4096, 5); got < 15*sim.Microsecond || got > 19*sim.Microsecond {
		t.Errorf("DC 4KB write = %v", got)
	}
	// Sub-page requests cost a full page.
	if a, b := BlockReadLatency(ull, 64, 3), BlockReadLatency(ull, 4096, 3); a != b {
		t.Errorf("sub-page read %v != page read %v", a, b)
	}
}

func TestMMIOLatencies(t *testing.T) {
	if got := MMIOWriteLatency(ssd2b, 8, 5, false); got != 630 {
		t.Errorf("8B MMIO write = %v, want 630ns", got)
	}
	plain := MMIOWriteLatency(ssd2b, 4096, 5, false)
	persistent := MMIOWriteLatency(ssd2b, 4096, 5, true)
	if persistent <= plain {
		t.Error("persistent write should cost more")
	}
	mmio := MMIOReadLatency(ssd2b, 4096, 3, false)
	dma := MMIOReadLatency(ssd2b, 4096, 3, true)
	if dma >= mmio {
		t.Errorf("DMA (%v) should beat MMIO (%v) at 4KB", dma, mmio)
	}
}

func TestBandwidthSweeps(t *testing.T) {
	small := BlockBandwidth(ull, 4<<10, false)
	big := BlockBandwidth(ull, 1<<20, false)
	if big <= small {
		t.Errorf("read bandwidth should grow: %v -> %v", small, big)
	}
	w := BlockBandwidth(dc, 1<<20, true)
	if w < 500 || w > 2500 {
		t.Errorf("DC 1MB write bandwidth = %.0f MB/s", w)
	}
	ir := InternalBandwidth(ssd2b, 1<<20, false)
	iw := InternalBandwidth(ssd2b, 1<<20, true)
	if ir < 1000 || ir > 3000 {
		t.Errorf("internal read bandwidth = %.0f MB/s", ir)
	}
	if iw < 1000 || iw > 3000 {
		t.Errorf("internal write bandwidth = %.0f MB/s", iw)
	}
}

func TestInternalBandwidthChunksThroughBuffer(t *testing.T) {
	// A request larger than the BA-buffer must still complete (chunked
	// pin/flush) and report sane bandwidth.
	got := InternalBandwidth(ssd2b, 12<<20, true) // 12MB > 8MB buffer
	if got < 1000 || got > 3000 {
		t.Fatalf("chunked internal bandwidth = %.0f MB/s", got)
	}
}
