// Package fio is the micro-benchmark driver behind the paper's basic
// performance results (Section V-B): QD-1 latency sweeps (Fig 7) and
// QD-1 bandwidth sweeps (Fig 8) over block I/O, MMIO and the 2B-SSD
// internal datapath.
package fio

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/sim"
)

// pagesFor rounds a request size up to whole pages (block I/O is
// page-granular: a sub-page request still moves one page).
func pagesFor(bytes, pageSize int) int {
	n := (bytes + pageSize - 1) / pageSize
	if n < 1 {
		n = 1
	}
	return n
}

// BlockReadLatency measures the QD-1 average latency of block reads of
// `size` bytes on a fresh device (preconditioned so reads hit NAND).
func BlockReadLatency(mk func(*sim.Env) *device.Device, size, reps int) sim.Duration {
	e := sim.NewEnv()
	defer e.Shutdown()
	d := mk(e)
	ps := d.PageSize()
	n := pagesFor(size, ps)
	var total sim.Duration
	e.Go("fio", func(p *sim.Proc) {
		if err := d.WritePages(p, 0, make([]byte, n*ps)); err != nil {
			panic(fmt.Sprintf("fio precondition: %v", err))
		}
		if err := d.Drain(p); err != nil {
			panic(err)
		}
		for i := 0; i < reps; i++ {
			start := e.Now()
			if _, err := d.ReadPages(p, 0, n); err != nil {
				panic(err)
			}
			total += sim.Duration(e.Now() - start)
		}
	})
	e.Run()
	return total / sim.Duration(reps)
}

// BlockWriteLatency measures the QD-1 average latency of block writes.
func BlockWriteLatency(mk func(*sim.Env) *device.Device, size, reps int) sim.Duration {
	e := sim.NewEnv()
	defer e.Shutdown()
	d := mk(e)
	ps := d.PageSize()
	n := pagesFor(size, ps)
	buf := make([]byte, n*ps)
	var total sim.Duration
	e.Go("fio", func(p *sim.Proc) {
		for i := 0; i < reps; i++ {
			start := e.Now()
			if err := d.WritePages(p, ftl.LBA(i*n), buf); err != nil {
				panic(err)
			}
			total += sim.Duration(e.Now() - start)
		}
	})
	e.Run()
	return total / sim.Duration(reps)
}

// MMIOWriteLatency measures a plain MMIO store sequence of size bytes.
func MMIOWriteLatency(mk func(*sim.Env) *core.TwoBSSD, size, reps int, persistent bool) sim.Duration {
	e := sim.NewEnv()
	defer e.Shutdown()
	s := mk(e)
	buf := make([]byte, size)
	var total sim.Duration
	e.Go("fio", func(p *sim.Proc) {
		pages := pagesFor(size, s.PageSize())
		if err := s.BAPin(p, 0, 0, 0, pages); err != nil {
			panic(err)
		}
		for i := 0; i < reps; i++ {
			start := e.Now()
			if err := s.Mmio().Write(p, 0, buf); err != nil {
				panic(err)
			}
			if persistent {
				if err := s.Mmio().Sync(p, 0, size); err != nil {
					panic(err)
				}
			}
			total += sim.Duration(e.Now() - start)
		}
	})
	e.Run()
	return total / sim.Duration(reps)
}

// MMIOReadLatency measures an MMIO load of size bytes, optionally
// through the read DMA engine.
func MMIOReadLatency(mk func(*sim.Env) *core.TwoBSSD, size, reps int, useDMA bool) sim.Duration {
	e := sim.NewEnv()
	defer e.Shutdown()
	s := mk(e)
	buf := make([]byte, size)
	var total sim.Duration
	e.Go("fio", func(p *sim.Proc) {
		pages := pagesFor(size, s.PageSize())
		if err := s.BAPin(p, 0, 0, 0, pages); err != nil {
			panic(err)
		}
		for i := 0; i < reps; i++ {
			start := e.Now()
			if useDMA {
				if _, err := s.BAReadDMA(p, 0, buf); err != nil {
					panic(err)
				}
			} else {
				if err := s.Mmio().Read(p, 0, buf); err != nil {
					panic(err)
				}
			}
			total += sim.Duration(e.Now() - start)
		}
	})
	e.Run()
	return total / sim.Duration(reps)
}

// MBps converts (bytes, duration) to MB/s.
func MBps(bytes int64, d sim.Duration) float64 {
	if d <= 0 {
		return 0
	}
	return float64(bytes) / d.Seconds() / 1e6
}

// BlockBandwidth measures QD-1 sequential bandwidth for one request of
// reqBytes (reads preconditioned; writes measured to the flush).
func BlockBandwidth(mk func(*sim.Env) *device.Device, reqBytes int, write bool) float64 {
	e := sim.NewEnv()
	defer e.Shutdown()
	d := mk(e)
	ps := d.PageSize()
	n := pagesFor(reqBytes, ps)
	var took sim.Duration
	e.Go("fio", func(p *sim.Proc) {
		if !write {
			if err := d.WritePages(p, 0, make([]byte, n*ps)); err != nil {
				panic(err)
			}
			if err := d.Drain(p); err != nil {
				panic(err)
			}
		}
		start := e.Now()
		if write {
			if err := d.WritePages(p, 0, make([]byte, n*ps)); err != nil {
				panic(err)
			}
			if err := d.Drain(p); err != nil {
				panic(err)
			}
		} else {
			if _, err := d.ReadPages(p, 0, n); err != nil {
				panic(err)
			}
		}
		took = sim.Duration(e.Now() - start)
	})
	e.Run()
	return MBps(int64(n*ps), took)
}

// InternalBandwidth measures the 2B-SSD internal datapath: BA_PIN for
// reads, BA_FLUSH for writes, chunked through the BA-buffer for
// requests larger than it (the paper measures exactly these calls).
func InternalBandwidth(mk func(*sim.Env) *core.TwoBSSD, reqBytes int, write bool) float64 {
	e := sim.NewEnv()
	defer e.Shutdown()
	s := mk(e)
	ps := s.PageSize()
	bufPages := s.BufferPages()
	totalPages := pagesFor(reqBytes, ps)
	var timed sim.Duration
	e.Go("fio", func(p *sim.Proc) {
		if !write {
			// Precondition NAND so pins read real pages.
			if err := s.Device().WritePages(p, 0, make([]byte, totalPages*ps)); err != nil {
				panic(err)
			}
			if err := s.Device().Drain(p); err != nil {
				panic(err)
			}
		}
		done := 0
		for done < totalPages {
			chunk := totalPages - done
			if chunk > bufPages {
				chunk = bufPages
			}
			t0 := e.Now()
			if err := s.BAPin(p, 0, 0, ftl.LBA(done), chunk); err != nil {
				panic(err)
			}
			if !write {
				timed += sim.Duration(e.Now() - t0) // BA_PIN = internal read
			}
			t1 := e.Now()
			if err := s.BAFlush(p, 0); err != nil {
				panic(err)
			}
			if write {
				timed += sim.Duration(e.Now() - t1) // BA_FLUSH = internal write
			}
			done += chunk
		}
	})
	e.Run()
	return MBps(int64(totalPages*ps), timed)
}
