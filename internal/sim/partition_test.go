package sim

import (
	"fmt"
	"reflect"
	"strings"
	"testing"
)

// pingPongTrace runs a two-partition request/response exchange and
// returns the receiver-side trace (message, arrival time) plus final
// clocks — the byte-identity fingerprint compared across worker counts.
func pingPongTrace(workers int) (trace []string, aEnd, bEnd Time) {
	g := NewGroup()
	a := g.NewEnv("a")
	b := g.NewEnv("b")
	req := NewLink[int](g, a, b, "req", 5*Microsecond)
	rsp := NewLink[int](g, b, a, "rsp", 3*Microsecond)

	a.Go("client", func(p *Proc) {
		for i := 0; i < 4; i++ {
			req.Send(p, i)
			v, ok := rsp.Recv(p)
			if !ok {
				panic("rsp closed early")
			}
			trace = append(trace, fmt.Sprintf("a got %d @%d", v, a.Now()))
			p.Sleep(Microsecond)
		}
		req.Close(p)
	})
	b.Go("server", func(p *Proc) {
		for {
			v, ok := req.Recv(p)
			if !ok {
				return
			}
			trace = append(trace, fmt.Sprintf("b got %d @%d", v, b.Now()))
			p.Sleep(2 * Microsecond) // service time
			rsp.Send(p, v*10)
		}
	})
	g.SetWorkers(workers)
	g.Run()
	return trace, a.Now(), b.Now()
}

func TestPartitionPingPongTiming(t *testing.T) {
	trace, _, _ := pingPongTrace(1)
	// Round trip: send@t, arrive t+5us, service 2us, reply arrives +3us.
	want := []string{
		"b got 0 @5000", "a got 0 @10000",
		"b got 1 @16000", "a got 10 @21000",
		"b got 2 @27000", "a got 20 @32000",
		"b got 3 @38000", "a got 30 @43000",
	}
	if !reflect.DeepEqual(trace, want) {
		t.Fatalf("trace = %v\nwant    %v", trace, want)
	}
}

func TestPartitionWorkerCountInvariance(t *testing.T) {
	t1, a1, b1 := pingPongTrace(1)
	for _, w := range []int{2, 4, 8} {
		tw, aw, bw := pingPongTrace(w)
		if !reflect.DeepEqual(t1, tw) || a1 != aw || b1 != bw {
			t.Fatalf("workers=%d diverged:\n  %v (a=%d b=%d)\nvs %v (a=%d b=%d)",
				w, tw, aw, bw, t1, a1, b1)
		}
	}
}

// TestPartitionMatchesSingleEnv models the identical pipeline twice —
// once in a single environment with plain sleeps, once split across two
// partitions with a link carrying the hop latency — and requires the
// same completion times.
func TestPartitionMatchesSingleEnv(t *testing.T) {
	const hop = 7 * Microsecond
	const work = 3 * Microsecond
	const n = 50

	// Serial reference: one env, two processes, the hop modeled as an
	// arrival timestamp the consumer sleeps until.
	ref := NewEnv()
	var refDone []Time
	q := ref.NewQueue("xfer")
	ref.Go("stage1", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(work)
			q.Put(ref.Now() + Time(hop))
		}
		q.Close()
	})
	ref.Go("stage2", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			if arrival := v.(Time); arrival > ref.Now() {
				p.Sleep(Duration(arrival - ref.Now()))
			}
			p.Sleep(2 * work)
			refDone = append(refDone, ref.Now())
		}
	})
	ref.Run()

	// Partitioned: stage 1 on env s1, stage 2 on env s2, link carries hop.
	g := NewGroup()
	s1 := g.NewEnv("s1")
	s2 := g.NewEnv("s2")
	lk := NewLink[int](g, s1, s2, "xfer", hop)
	s1.Go("stage1", func(p *Proc) {
		for i := 0; i < n; i++ {
			p.Sleep(work)
			lk.Send(p, i)
		}
		lk.Close(p)
	})
	var gotDone []Time
	s2.Go("stage2", func(p *Proc) {
		for {
			_, ok := lk.Recv(p)
			if !ok {
				return
			}
			p.Sleep(2 * work)
			gotDone = append(gotDone, s2.Now())
		}
	})
	g.SetWorkers(4)
	g.Run()

	if !reflect.DeepEqual(refDone, gotDone) {
		t.Fatalf("partitioned completion times diverge from single-env run:\n%v\nvs\n%v", gotDone, refDone)
	}
}

func TestLinkFIFOAndClose(t *testing.T) {
	g := NewGroup()
	a := g.NewEnv("a")
	b := g.NewEnv("b")
	lk := NewLink[string](g, a, b, "l", Microsecond)
	a.Go("tx", func(p *Proc) {
		lk.Send(p, "x") // same instant: FIFO must hold
		lk.Send(p, "y")
		p.Sleep(Microsecond)
		lk.Send(p, "z")
		lk.Close(p)
	})
	var got []string
	closedAt := Time(-1)
	b.Go("rx", func(p *Proc) {
		for {
			v, ok := lk.Recv(p)
			if !ok {
				closedAt = b.Now()
				return
			}
			got = append(got, fmt.Sprintf("%s@%d", v, b.Now()))
		}
	})
	g.Run()
	want := []string{"x@1000", "y@1000", "z@2000"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	if closedAt != 2000 {
		t.Fatalf("close observed at %d, want 2000 (one latency after sender close)", closedAt)
	}
}

func TestPartitionDeadlockNamesPartition(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected deadlock panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "deadlock") || !strings.Contains(msg, "partition 1") {
			t.Fatalf("panic %q does not identify the deadlocked partition", msg)
		}
	}()
	g := NewGroup()
	a := g.NewEnv("alpha")
	b := g.NewEnv("beta")
	a.Go("fine", func(p *Proc) { p.Sleep(Microsecond) })
	sig := b.NewSignal("never")
	b.Go("stuck", func(p *Proc) { sig.Wait(p) })
	g.Run()
}

func TestPartitionFaultNamesPartition(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("expected fault panic")
		}
		msg := fmt.Sprint(r)
		if !strings.Contains(msg, "partition 0 (alpha)") || !strings.Contains(msg, "boom") {
			t.Fatalf("panic %q does not identify the faulting partition", msg)
		}
	}()
	g := NewGroup()
	a := g.NewEnv("alpha")
	g.NewEnv("beta")
	a.Go("bad", func(p *Proc) { panic("boom") })
	g.Run()
}

func TestRunOnPartitionMemberPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from Run on a partition member")
		}
	}()
	g := NewGroup()
	a := g.NewEnv("a")
	a.Run()
}

func TestZeroLatencyLinkPanics(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic for zero-latency link")
		}
	}()
	g := NewGroup()
	a := g.NewEnv("a")
	b := g.NewEnv("b")
	NewLink[int](g, a, b, "bad", 0)
}

func TestGroupWithoutLinksRunsToCompletion(t *testing.T) {
	g := NewGroup()
	var ends [3]Time
	for i := 0; i < 3; i++ {
		i := i
		e := g.NewEnv(fmt.Sprintf("p%d", i))
		e.Go("w", func(p *Proc) {
			p.Sleep(Duration(i+1) * Millisecond)
			ends[i] = e.Now()
		})
	}
	g.SetWorkers(3)
	g.Run()
	for i, end := range ends {
		if end != Time(i+1)*Time(Millisecond) {
			t.Fatalf("partition %d ended at %d", i, end)
		}
	}
}

func TestShutdownRunsDefersAndReleasesMemory(t *testing.T) {
	e := NewEnv()
	res := e.NewResource("r", 1)
	var cleaned []string
	e.Go("holder", func(p *Proc) {
		res.Acquire(p)
		defer func() {
			cleaned = append(cleaned, "holder")
			res.Release()
		}()
		p.Sleep(Second) // parked on a far-future event at Shutdown time
	})
	e.Go("waiter", func(p *Proc) {
		defer func() { cleaned = append(cleaned, "waiter") }()
		res.Acquire(p) // parked on the resource at Shutdown time
		res.Release()
	})
	e.Go("short", func(p *Proc) { p.Sleep(Microsecond) })

	// Run a little, then tear down mid-simulation.
	e.Go("stopper", func(p *Proc) { p.Sleep(Millisecond) })
	func() {
		defer func() { recover() }() // the deadlockless partial run is fine
		e.runPhase(Time(2 * Millisecond))
	}()
	e.Shutdown()

	if len(cleaned) != 2 {
		t.Fatalf("defers ran for %v, want both holder and waiter", cleaned)
	}
	if e.heap != nil || e.ring != nil || e.blocked != nil || e.free != nil {
		t.Fatal("Shutdown left backing arrays pinned")
	}
	e.Shutdown() // idempotent
	defer func() {
		if r := recover(); r == nil {
			t.Fatal("expected panic from Go on a shut-down env")
		}
	}()
	e.Go("late", func(p *Proc) {})
}

func TestShutdownFreshEnv(t *testing.T) {
	e := NewEnv()
	e.Shutdown() // nothing scheduled: must not hang or panic
	g := NewGroup()
	g.NewEnv("a")
	b := g.NewEnv("b")
	lk := NewLink[int](g, g.parts[0], b, "l", Microsecond)
	_ = lk
	g.Shutdown() // kills the never-run pump daemons
}

func TestSpawnReusesPooledProcs(t *testing.T) {
	e := NewEnv()
	// Warm the pool.
	e.Go("warm", func(p *Proc) {})
	e.Run()
	before := len(e.free)
	if before == 0 {
		t.Fatal("no pooled proc after a clean exit")
	}
	var inner *Proc
	e.Go("reuse", func(p *Proc) { inner = p })
	e.Run()
	if want := e.free[len(e.free)-1]; inner != want {
		t.Fatal("spawn did not reuse the pooled proc")
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.Go("spin", func(p *Proc) { p.Sleep(Microsecond) })
		e.Run()
	})
	if allocs > 0.1 {
		t.Fatalf("steady-state spawn+run allocates %.2f allocs/op, want ~0", allocs)
	}
}
