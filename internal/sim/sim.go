// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every latency in the repository — NAND array operations, PCIe
// transactions, firmware work, database CPU costs — is expressed in
// virtual nanoseconds on a sim.Env. Processes (Proc) are goroutines that
// cooperate with the scheduler: exactly one process runs at a time, so
// simulation state needs no locking and every run is exactly
// reproducible on any machine.
//
// The kernel offers the three primitives the device and database models
// are built from:
//
//   - Proc.Sleep: advance virtual time for this process.
//   - Resource:   a counted resource with a FIFO wait queue (dies,
//     channels, mutexes are Resources of capacity 1..n).
//   - Signal:     a broadcast condition processes can park on.
package sim

import (
	"container/heap"
	"fmt"
	"sort"
	"strings"
)

// Time is an absolute virtual timestamp in nanoseconds.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenience duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Go, then call Run.
type Env struct {
	now    Time
	seq    uint64
	events eventHeap
	parked chan parkMsg
	// blocked tracks processes parked on a Resource or Signal (no
	// scheduled event); used for deadlock diagnosis.
	blocked map[*Proc]string
	nlive   int
	running bool

	// attachment is an opaque per-environment slot for the
	// observability layer (internal/obs hangs its metrics registry and
	// span tracer here); sim itself never inspects it. Keeping the hook
	// on Env lets every component reach the same registry through the
	// env it was constructed with, with no globals and no locking — the
	// kernel is single-threaded by construction.
	attachment interface{}
}

// SetAttachment stores an opaque value on the environment (used by the
// observability layer). It replaces any previous attachment.
func (e *Env) SetAttachment(v interface{}) { e.attachment = v }

// Attachment returns the value stored with SetAttachment, or nil.
func (e *Env) Attachment() interface{} { return e.attachment }

type parkMsg struct {
	exited *Proc // non-nil when the process function returned
	fault  interface{}
}

// NewEnv returns an environment with the clock at zero.
func NewEnv() *Env {
	return &Env{
		parked:  make(chan parkMsg),
		blocked: make(map[*Proc]string),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Proc is a simulation process. A Proc must only be used from the
// goroutine running its body function.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	daemon bool
}

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Go starts a new process. The body runs when the scheduler first
// reaches it; the initial resume is scheduled at the current time.
// Go may be called before Run or from inside a running process.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nlive++
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			e.parked <- parkMsg{exited: p, fault: r}
		}()
		body(p)
	}()
	e.schedule(p, e.now)
	return p
}

// GoDaemon starts a background service process. A daemon parked on a
// Resource or Signal does not count as a deadlock: Run returns normally
// when only daemons remain blocked (e.g. an idle device write-buffer
// drainer waiting for work).
func (e *Env) GoDaemon(name string, body func(p *Proc)) *Proc {
	p := e.Go(name, body)
	p.daemon = true
	return p
}

// GoAt is like Go but delays the process start until t.
func (e *Env) GoAt(t Time, name string, body func(p *Proc)) *Proc {
	if t < e.now {
		t = e.now
	}
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.nlive++
	go func() {
		<-p.resume
		defer func() {
			r := recover()
			e.parked <- parkMsg{exited: p, fault: r}
		}()
		body(p)
	}()
	e.schedule(p, t)
	return p
}

func (e *Env) schedule(p *Proc, at Time) {
	e.seq++
	heap.Push(&e.events, event{at: at, seq: e.seq, proc: p})
}

// Run executes events until the queue drains and all processes have
// exited or are blocked forever. It panics (with a diagnostic listing)
// if live processes remain blocked with no pending events — a deadlock
// in the modeled system.
func (e *Env) Run() {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	e.running = true
	defer func() { e.running = false }()
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(event)
		if ev.at < e.now {
			panic("sim: time went backwards")
		}
		e.now = ev.at
		ev.proc.resume <- struct{}{}
		msg := <-e.parked
		if msg.exited != nil {
			e.nlive--
			if msg.fault != nil {
				panic(fmt.Sprintf("sim: process %q faulted: %v", msg.exited.name, msg.fault))
			}
		}
	}
	if e.nlive > 0 {
		names := make([]string, 0, len(e.blocked))
		stuck := false
		for p, what := range e.blocked {
			if !p.daemon {
				stuck = true
			}
			names = append(names, p.name+" ("+what+")")
		}
		if stuck {
			sort.Strings(names)
			panic("sim: deadlock, blocked processes: " + strings.Join(names, ", "))
		}
	}
}

// park yields control to the scheduler and blocks until resumed.
func (p *Proc) park() {
	p.env.parked <- parkMsg{}
	<-p.resume
}

// Sleep advances this process by d virtual nanoseconds. Negative
// durations sleep zero time (still yielding to simultaneous events).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now+Time(d))
	p.park()
}

// Yield lets any other event scheduled for the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block parks the process with no scheduled event; some other process
// must unblock it. what describes the wait for deadlock diagnostics.
func (p *Proc) block(what string) {
	p.env.blocked[p] = what
	p.park()
	delete(p.env.blocked, p)
}

// unblock schedules a blocked process to resume at the current instant.
func (e *Env) unblock(p *Proc) { e.schedule(p, e.now) }

// Resource is a counted resource with a FIFO wait queue. A Resource of
// capacity 1 is a virtual mutex; a NAND die or a PCIe link is a
// Resource of capacity 1 whose hold duration is the service time.
type Resource struct {
	env     *Env
	name    string
	cap     int
	inUse   int
	waiters []*Proc

	// Stats
	acquires  uint64
	waited    uint64
	waitTotal Duration
	busyTotal Duration
	lastBusy  Time
}

// NewResource creates a resource with the given capacity (≥ 1).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, name: name, cap: capacity}
}

// Acquire obtains one unit, waiting FIFO if none is free.
func (r *Resource) Acquire(p *Proc) {
	r.acquires++
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.grab()
		return
	}
	start := r.env.now
	r.waiters = append(r.waiters, p)
	p.block("resource " + r.name)
	// Our unit was reserved for us by Release before unblocking.
	r.waited++
	r.waitTotal += Duration(r.env.now - start)
}

func (r *Resource) grab() {
	if r.inUse == 0 {
		r.lastBusy = r.env.now
	}
	r.inUse++
}

// TryAcquire obtains a unit only if one is immediately free.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && len(r.waiters) == 0 {
		r.grab()
		return true
	}
	return false
}

// Release returns one unit and wakes the head waiter, if any. The unit
// is handed directly to the waiter so FIFO order is preserved even
// against late TryAcquire callers.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	if len(r.waiters) > 0 {
		// Hand off: usage count stays the same, ownership moves.
		w := r.waiters[0]
		r.waiters = r.waiters[1:]
		r.env.unblock(w)
		return
	}
	r.inUse--
	if r.inUse == 0 {
		r.busyTotal += Duration(r.env.now - r.lastBusy)
	}
}

// Use holds one unit for d virtual time: Acquire, Sleep, Release.
// It returns the total time including queueing delay.
func (r *Resource) Use(p *Proc, d Duration) Duration {
	start := r.env.now
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
	return Duration(r.env.now - start)
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Stats reports acquisition counters for the resource.
func (r *Resource) Stats() (acquires, waited uint64, waitTotal, busyTotal Duration) {
	return r.acquires, r.waited, r.waitTotal, r.busyTotal
}

// Busy reports the cumulative time the resource has been non-idle,
// including a still-open busy period — the numerator of an occupancy
// gauge sampled mid-run.
func (r *Resource) Busy() Duration {
	b := r.busyTotal
	if r.inUse > 0 {
		b += Duration(r.env.now - r.lastBusy)
	}
	return b
}

// Signal is a broadcast condition. Waiters park until Fire; Fire wakes
// every current waiter at the current instant. A Signal may be fired
// repeatedly; waiters registered after a Fire wait for the next one.
type Signal struct {
	env     *Env
	name    string
	waiters []*Proc
	fires   uint64
}

// NewSignal creates a named signal.
func (e *Env) NewSignal(name string) *Signal {
	return &Signal{env: e, name: name}
}

// Wait parks until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.block("signal " + s.name)
}

// Fire wakes all current waiters. It is safe to call with no waiters.
func (s *Signal) Fire() {
	s.fires++
	ws := s.waiters
	s.waiters = nil
	for _, w := range ws {
		s.env.unblock(w)
	}
}

// Fires reports how many times the signal fired.
func (s *Signal) Fires() uint64 { return s.fires }

// Waiters reports the number of parked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }

// WaitGroup counts outstanding work across processes, like sync.WaitGroup
// but in virtual time.
type WaitGroup struct {
	env  *Env
	n    int
	done *Signal
}

// NewWaitGroup creates an empty wait group.
func (e *Env) NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{env: e, done: e.NewSignal(name + ".done")}
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.done.Fire()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.done.Wait(p)
	}
}

// Queue is an unbounded FIFO of items passed between processes, the
// virtual-time analogue of a Go channel with an infinite buffer.
type Queue struct {
	env    *Env
	name   string
	items  []interface{}
	avail  *Signal
	closed bool
}

// NewQueue creates a named queue.
func (e *Env) NewQueue(name string) *Queue {
	return &Queue{env: e, name: name, avail: e.NewSignal(name + ".avail")}
}

// Put appends an item and wakes any waiting receivers.
func (q *Queue) Put(item interface{}) {
	if q.closed {
		panic("sim: Put on closed queue " + q.name)
	}
	q.items = append(q.items, item)
	q.avail.Fire()
}

// Close marks the queue closed; Get returns ok=false once drained.
func (q *Queue) Close() {
	q.closed = true
	q.avail.Fire()
}

// Get removes the head item, parking until one is available or the
// queue is closed and drained.
func (q *Queue) Get(p *Proc) (interface{}, bool) {
	for len(q.items) == 0 {
		if q.closed {
			return nil, false
		}
		q.avail.Wait(p)
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) }
