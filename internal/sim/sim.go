// Package sim provides a deterministic discrete-event simulation kernel.
//
// Every latency in the repository — NAND array operations, PCIe
// transactions, firmware work, database CPU costs — is expressed in
// virtual nanoseconds on a sim.Env. Processes (Proc) are goroutines that
// cooperate with the scheduler: exactly one process runs at a time, so
// simulation state needs no locking and every run is exactly
// reproducible on any machine.
//
// The kernel offers the three primitives the device and database models
// are built from:
//
//   - Proc.Sleep: advance virtual time for this process.
//   - Resource:   a counted resource with a FIFO wait queue (dies,
//     channels, mutexes are Resources of capacity 1..n).
//   - Signal:     a broadcast condition processes can park on.
//
// # Hot path
//
// The kernel is the simulator's wall-clock bottleneck, so its event loop
// is built around three optimizations that change nothing about the
// virtual-time semantics (events still execute in strict (at, seq)
// order, FIFO among simultaneous events):
//
//   - Direct handoff: a parking process pops the next event itself and
//     resumes its owner directly, instead of bouncing control through a
//     central scheduler goroutine. One goroutine switch per event
//     instead of two — and when the next event belongs to the parking
//     process itself (a lone process sleeping in a loop, the common case
//     in latency sweeps), no switch at all.
//   - Split event queue: events for the current instant go to a FIFO
//     ready ring (O(1) push/pop); only events in the future enter a
//     value-typed 4-ary min-heap. Neither path boxes events into
//     interface{} the way container/heap does, so steady-state
//     scheduling does not allocate.
//   - Allocation-free parking: Resource/Signal wait labels are
//     precomputed, the blocked-process set is an index-linked slice
//     rather than a map, and FIFO queues reclaim their heads with a
//     cursor instead of re-slicing (which would pin the backing array).
package sim

import (
	"fmt"
	"sort"
	"strings"
)

// Time is an absolute virtual timestamp in nanoseconds.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Convenience duration units.
const (
	Nanosecond  Duration = 1
	Microsecond Duration = 1000
	Millisecond Duration = 1000 * 1000
	Second      Duration = 1000 * 1000 * 1000
)

func (d Duration) String() string {
	switch {
	case d >= Second:
		return fmt.Sprintf("%.3fs", float64(d)/float64(Second))
	case d >= Millisecond:
		return fmt.Sprintf("%.3fms", float64(d)/float64(Millisecond))
	case d >= Microsecond:
		return fmt.Sprintf("%.3fus", float64(d)/float64(Microsecond))
	default:
		return fmt.Sprintf("%dns", int64(d))
	}
}

// Seconds reports the duration as floating-point seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Micros reports the duration as floating-point microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// maxTime is the horizon of a standalone Run: no event is ever beyond it.
const maxTime = Time(1<<63 - 1)

type event struct {
	at   Time
	seq  uint64 // tie-breaker: FIFO among simultaneous events
	proc *Proc
}

// eventLess orders events by (at, seq): time first, FIFO among
// simultaneous events.
func eventLess(a, b event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Env is a simulation environment: a virtual clock plus an event queue.
// Create one with NewEnv, start processes with Go, then call Run.
type Env struct {
	now Time
	seq uint64

	// heap holds pending events scheduled past the current instant: a
	// value-typed 4-ary min-heap on (at, seq). ring holds events for the
	// current instant in FIFO order (their seqs are necessarily newer
	// than any same-instant event still in the heap, which was scheduled
	// before the clock reached this instant).
	heap     []event
	ring     []event
	ringHead int

	// runq wakes the goroutine parked in Run when the event queue
	// drains or a process faults.
	runq      chan struct{}
	fault     interface{}
	faultProc *Proc

	// blocked tracks processes parked on a Resource or Signal (no
	// scheduled event); used for deadlock diagnosis. Each Proc remembers
	// its own index for O(1) swap-removal.
	blocked []*Proc

	nlive      int
	running    bool
	dead       bool // Shutdown ran; the environment is unusable
	nevents    uint64
	attachment interface{}

	// free holds exited processes whose goroutines are parked for
	// reuse: spawning is allocation-free in steady state because a
	// recycled Proc brings its resume channel and goroutine stack along.
	free []*Proc

	// horizon bounds event dispatch: next refuses events at or past it.
	// Standalone Run uses maxTime; the partitioned executor advances a
	// member environment window by window (see partition.go).
	horizon Time

	// Partition membership (nil/-1 for a standalone environment).
	grp *Group
	pid int

	// Clock-tick hook: when set, tickFn runs from the event loop the
	// first time the clock reaches or passes tickAt (before the event's
	// process resumes). The observability sampler hangs here — a
	// sleeping daemon process could not drive it, because a pending
	// wakeup event would keep Run from ever draining the queue.
	tickAt Time
	tickFn func(now Time) Time

	// Run-end hooks fire each time Run returns normally (queue drained,
	// no fault); the sampler uses one to flush a final partial window.
	runEnd []func()
}

// SetAttachment stores an opaque value on the environment (used by the
// observability layer). It replaces any previous attachment.
func (e *Env) SetAttachment(v interface{}) { e.attachment = v }

// Attachment returns the value stored with SetAttachment, or nil.
// The attachment is an opaque per-environment slot for the
// observability layer (internal/obs hangs its metrics registry and span
// tracer here); sim itself never inspects it. Keeping the hook on Env
// lets every component reach the same registry through the env it was
// constructed with, with no globals and no locking — the kernel is
// single-threaded by construction.
func (e *Env) Attachment() interface{} { return e.attachment }

// NewEnv returns an environment with the clock at zero.
func NewEnv() *Env {
	return &Env{runq: make(chan struct{}, 1), horizon: maxTime, pid: -1}
}

// SetTick installs (or replaces) the clock-tick hook: fn runs inside
// the event loop the first time the virtual clock reaches or passes
// at, and returns the next tick time (return a value <= the current
// time to stop ticking). The hook observes simulation state between
// events — it runs after the clock advances but before the dispatched
// process resumes — and must not call Proc methods, schedule events,
// or otherwise re-enter the kernel. One hook per environment; the
// observability sampler owns it in practice.
func (e *Env) SetTick(at Time, fn func(now Time) Time) {
	e.tickAt, e.tickFn = at, fn
}

// OnRunEnd registers fn to run each time Run returns normally (event
// queue drained, no process fault). Hooks run in registration order on
// the goroutine that called Run, when no process is executing — safe
// for publishing final observability state.
func (e *Env) OnRunEnd(fn func()) { e.runEnd = append(e.runEnd, fn) }

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Events reports the number of events the environment has executed so
// far. The wall-clock benchmark harness (bench2b -benchjson) divides
// this by real elapsed time for an events/sec figure of merit.
func (e *Env) Events() uint64 { return e.nevents }

// Proc is a simulation process. A Proc must only be used from the
// goroutine running its body function.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	daemon bool

	// body is the function the next resume starts (pooled goroutines
	// run one body after another); killed marks a process Shutdown is
	// unwinding. ibody/idx are the indexed variant (GoIdx): fan-out
	// loops share one closure instead of allocating one per spawn.
	body   func(*Proc)
	ibody  func(*Proc, int)
	idx    int
	killed bool

	// Deadlock-diagnosis state while parked on a Resource or Signal.
	blockedOn string
	blockIdx  int
}

// killedSentinel is the panic value park throws when Shutdown unwinds a
// parked process; cycle recognizes it and retires the goroutine.
type killedSentinel struct{}

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process name given to Go.
func (p *Proc) Name() string { return p.name }

// Go starts a new process. The body runs when the scheduler first
// reaches it; the initial resume is scheduled at the current time.
// Go may be called before Run or from inside a running process.
func (e *Env) Go(name string, body func(p *Proc)) *Proc {
	return e.GoAt(e.now, name, body)
}

// GoDaemon starts a background service process. A daemon parked on a
// Resource or Signal does not count as a deadlock: Run returns normally
// when only daemons remain blocked (e.g. an idle device write-buffer
// drainer waiting for work).
func (e *Env) GoDaemon(name string, body func(p *Proc)) *Proc {
	p := e.Go(name, body)
	p.daemon = true
	return p
}

// GoAt is like Go but delays the process start until t. Exited
// processes are recycled: a spawn normally reuses a pooled goroutine,
// its Proc and its resume channel, so steady-state spawning does not
// allocate.
func (e *Env) GoAt(t Time, name string, body func(p *Proc)) *Proc {
	if e.dead {
		panic("sim: Go on a shut-down environment")
	}
	if t < e.now {
		t = e.now
	}
	var p *Proc
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.name, p.daemon, p.body = name, false, body
	} else {
		p = &Proc{env: e, name: name, resume: make(chan struct{}, 1), body: body}
		go p.main()
	}
	e.nlive++
	e.schedule(p, t)
	return p
}

// GoIdx starts a process at the current instant whose body receives
// idx. Fan-out loops (one worker per page of a large command) spawn N
// workers from one shared closure — no per-spawn closure allocation.
func (e *Env) GoIdx(name string, idx int, body func(p *Proc, idx int)) *Proc {
	if e.dead {
		panic("sim: Go on a shut-down environment")
	}
	var p *Proc
	if n := len(e.free); n > 0 {
		p = e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		p.name, p.daemon, p.ibody, p.idx = name, false, body, idx
	} else {
		p = &Proc{env: e, name: name, resume: make(chan struct{}, 1), ibody: body, idx: idx}
		go p.main()
	}
	e.nlive++
	e.schedule(p, e.now)
	return p
}

// main is the goroutine body of every process: run bodies until the
// process faults or Shutdown retires it.
func (p *Proc) main() {
	for p.cycle() {
	}
}

// cycle waits for the resume that starts one body and runs it to
// completion. On a clean return the Proc parks itself in the free pool
// and dispatches the next event; on a panic it records the fault and
// wakes Run, which re-panics on the caller's goroutine. It reports
// whether the goroutine should stay alive for another body.
func (p *Proc) cycle() (again bool) {
	<-p.resume
	e := p.env
	if p.killed {
		e.runq <- struct{}{}
		return false
	}
	body, ibody, idx := p.body, p.ibody, p.idx
	p.body, p.ibody = nil, nil
	defer func() {
		r := recover()
		if _, k := r.(killedSentinel); k {
			// Shutdown unwound this process while it was parked; hand
			// control back to Shutdown and retire the goroutine.
			e.runq <- struct{}{}
			return
		}
		e.nlive--
		if r != nil {
			e.fault = r
			e.faultProc = p
			e.runq <- struct{}{}
			return
		}
		// Clean exit: recycle before dispatching, so a successor body
		// spawned by the next event can already reuse this goroutine.
		e.free = append(e.free, p)
		again = true
		if np, ok := e.next(); ok {
			np.resume <- struct{}{}
		} else {
			e.runq <- struct{}{}
		}
	}()
	if ibody != nil {
		ibody(p, idx)
	} else {
		body(p)
	}
	return
}

func (e *Env) schedule(p *Proc, at Time) {
	e.seq++
	ev := event{at: at, seq: e.seq, proc: p}
	if at == e.now {
		e.ring = append(e.ring, ev)
	} else {
		e.heapPush(ev)
	}
}

// next pops the earliest pending event in (at, seq) order, advances the
// clock to it, and returns its process. Ring events always carry the
// current instant; a heap event at the current instant predates every
// ring event (it was scheduled before the clock got here), so it wins
// the tie.
// Events at or past the horizon stay queued: a partition member only
// dispatches within its current lockstep window (ring events are always
// at the current instant, which is below the horizon by construction).
func (e *Env) next() (*Proc, bool) {
	hasRing := e.ringHead < len(e.ring)
	var ev event
	switch {
	case hasRing && len(e.heap) > 0 && e.heap[0].at <= e.now:
		ev = e.heapPop()
	case hasRing:
		ev = e.ring[e.ringHead]
		e.ring[e.ringHead].proc = nil
		e.ringHead++
		if e.ringHead == len(e.ring) {
			e.ring = e.ring[:0]
			e.ringHead = 0
		}
	case len(e.heap) > 0 && e.heap[0].at < e.horizon:
		ev = e.heapPop()
	default:
		return nil, false
	}
	if ev.at < e.now {
		panic("sim: time went backwards")
	}
	e.now = ev.at
	e.nevents++
	if e.tickFn != nil && e.now >= e.tickAt {
		next := e.tickFn(e.now)
		if next <= e.now {
			e.tickFn = nil
		}
		e.tickAt = next
	}
	return ev.proc, true
}

// heapPush inserts into the 4-ary min-heap (sift up).
func (e *Env) heapPush(ev event) {
	h := append(e.heap, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 4
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.heap = h
}

// heapPop removes the minimum from the 4-ary min-heap (sift down).
func (e *Env) heapPop() event {
	h := e.heap
	top := h[0]
	last := h[len(h)-1]
	h[len(h)-1].proc = nil
	h = h[:len(h)-1]
	if len(h) > 0 {
		i := 0
		for {
			c0 := i*4 + 1
			if c0 >= len(h) {
				break
			}
			m := c0
			cEnd := c0 + 4
			if cEnd > len(h) {
				cEnd = len(h)
			}
			for c := c0 + 1; c < cEnd; c++ {
				if eventLess(h[c], h[m]) {
					m = c
				}
			}
			if !eventLess(h[m], last) {
				break
			}
			h[i] = h[m]
			i = m
		}
		h[i] = last
	}
	e.heap = h
	return top
}

// Run executes events until the queue drains and all processes have
// exited or are blocked forever. It panics (with a diagnostic listing)
// if live processes remain blocked with no pending events — a deadlock
// in the modeled system.
func (e *Env) Run() {
	if e.grp != nil {
		panic("sim: Run on a partition member; use Group.Run")
	}
	e.runPhase(maxTime)
	e.finishRun()
}

// runPhase executes events strictly before horizon and returns when
// none remain (processes may still hold later events or be blocked).
// It re-panics a process fault on the caller's goroutine.
func (e *Env) runPhase(horizon Time) {
	if e.running {
		panic("sim: Run called re-entrantly")
	}
	if e.dead {
		panic("sim: Run on a shut-down environment")
	}
	e.running = true
	e.horizon = horizon
	defer func() { e.running = false }()
	if np, ok := e.next(); ok {
		np.resume <- struct{}{}
		<-e.runq
		if e.fault != nil {
			f, fp := e.fault, e.faultProc
			e.fault, e.faultProc = nil, nil
			panic(fmt.Sprintf("sim: process %q faulted: %v", fp.name, f))
		}
	}
}

// finishRun performs Run's end-of-simulation duties once no events
// remain anywhere: deadlock diagnosis, then the run-end hooks.
func (e *Env) finishRun() {
	if e.nlive > 0 {
		stuck := false
		for _, p := range e.blocked {
			if !p.daemon {
				stuck = true
				break
			}
		}
		if stuck {
			names := make([]string, 0, len(e.blocked))
			for _, p := range e.blocked {
				names = append(names, p.name+" ("+p.blockedOn+")")
			}
			sort.Strings(names)
			where := ""
			if e.grp != nil {
				where = fmt.Sprintf(" in partition %d", e.pid)
			}
			panic("sim: deadlock" + where + ", blocked processes: " + strings.Join(names, ", "))
		}
	}
	for _, fn := range e.runEnd {
		fn()
	}
}

// peekNext reports the time of the earliest pending event, or maxTime
// when the queue is empty. The partitioned executor uses it to pick the
// next lockstep window.
func (e *Env) peekNext() Time {
	t := maxTime
	if e.ringHead < len(e.ring) {
		t = e.now
	}
	if len(e.heap) > 0 && e.heap[0].at < t {
		t = e.heap[0].at
	}
	return t
}

// Shutdown tears the environment down: every process — parked, pooled,
// or still holding a pending event — is unwound (parked bodies see a
// killedSentinel panic through park; deferred cleanup runs) and its
// goroutine retired, then the backing arrays are released. A spiky
// experiment thus stops pinning peak memory once its results are read.
// The environment is unusable afterwards; Shutdown is idempotent.
func (e *Env) Shutdown() {
	if e.running {
		panic("sim: Shutdown from inside Run")
	}
	if e.dead {
		return
	}
	e.dead = true
	e.tickFn = nil
	e.runEnd = nil
	// Unwinding a process runs its defers, which may Release resources
	// or Fire signals and thereby schedule events or grow e.blocked —
	// both are re-scanned until everything is down.
	kill := func(p *Proc) {
		if p == nil || p.killed {
			return
		}
		p.killed = true
		p.resume <- struct{}{}
		<-e.runq
	}
	for len(e.blocked) > 0 || e.ringHead < len(e.ring) || len(e.heap) > 0 {
		for i := 0; i < len(e.blocked); i++ {
			kill(e.blocked[i])
		}
		e.blocked = e.blocked[:0]
		for e.ringHead < len(e.ring) {
			p := e.ring[e.ringHead].proc
			e.ringHead++
			kill(p)
		}
		e.ring, e.ringHead = nil, 0
		for len(e.heap) > 0 {
			kill(e.heapPop().proc)
		}
	}
	for _, p := range e.free {
		kill(p)
	}
	e.free = nil
	e.heap = nil
	e.ring = nil
	e.blocked = nil
	e.nlive = 0
}

// park yields control to the scheduler and blocks until resumed. The
// parking process dispatches the next event itself: either it is its
// own (continue inline, no goroutine switch), or it belongs to another
// process (direct handoff), or the queue is empty (wake Run).
func (p *Proc) park() {
	e := p.env
	if p.killed {
		// Shutdown resumed us to unwind; do not dispatch further events.
		panic(killedSentinel{})
	}
	if np, ok := e.next(); ok {
		if np == p {
			return
		}
		np.resume <- struct{}{}
	} else {
		e.runq <- struct{}{}
	}
	<-p.resume
	if p.killed {
		panic(killedSentinel{})
	}
}

// Sleep advances this process by d virtual nanoseconds. Negative
// durations sleep zero time (still yielding to simultaneous events).
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		d = 0
	}
	p.env.schedule(p, p.env.now+Time(d))
	p.park()
}

// Yield lets any other event scheduled for the current instant run first.
func (p *Proc) Yield() { p.Sleep(0) }

// block parks the process with no scheduled event; some other process
// must unblock it. what describes the wait for deadlock diagnostics
// (callers pass a precomputed label so parking does not allocate).
func (p *Proc) block(what string) {
	e := p.env
	p.blockedOn = what
	p.blockIdx = len(e.blocked)
	e.blocked = append(e.blocked, p)
	p.park()
	last := len(e.blocked) - 1
	moved := e.blocked[last]
	e.blocked[p.blockIdx] = moved
	moved.blockIdx = p.blockIdx
	e.blocked[last] = nil
	e.blocked = e.blocked[:last]
	p.blockedOn = ""
}

// unblock schedules a blocked process to resume at the current instant.
func (e *Env) unblock(p *Proc) { e.schedule(p, e.now) }

// Resource is a counted resource with a FIFO wait queue. A Resource of
// capacity 1 is a virtual mutex; a NAND die or a PCIe link is a
// Resource of capacity 1 whose hold duration is the service time.
type Resource struct {
	env     *Env
	name    string
	label   string // "resource <name>", precomputed for allocation-free parking
	cap     int
	inUse   int
	waiters []*Proc
	whead   int

	// Stats
	acquires  uint64
	waited    uint64
	waitTotal Duration
	busyTotal Duration
	lastBusy  Time
}

// NewResource creates a resource with the given capacity (≥ 1).
func (e *Env) NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{env: e, name: name, label: "resource " + name, cap: capacity}
}

// NewResources creates len(names) resources of equal capacity in one
// backing allocation — construction relief for per-die lock arrays,
// which otherwise dominate the alloc profile of short-lived
// environments. Elements must not be copied once in use.
func (e *Env) NewResources(names []string, capacity int) []Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	rs := make([]Resource, len(names))
	for i, nm := range names {
		rs[i] = Resource{env: e, name: nm, label: "resource " + nm, cap: capacity}
	}
	return rs
}

// Acquire obtains one unit, waiting FIFO if none is free.
func (r *Resource) Acquire(p *Proc) {
	r.acquires++
	if r.inUse < r.cap && r.whead == len(r.waiters) {
		r.grab()
		return
	}
	start := r.env.now
	r.waiters = append(r.waiters, p)
	p.block(r.label)
	// Our unit was reserved for us by Release before unblocking.
	r.waited++
	r.waitTotal += Duration(r.env.now - start)
}

func (r *Resource) grab() {
	if r.inUse == 0 {
		r.lastBusy = r.env.now
	}
	r.inUse++
}

// TryAcquire obtains a unit only if one is immediately free.
func (r *Resource) TryAcquire() bool {
	if r.inUse < r.cap && r.whead == len(r.waiters) {
		r.grab()
		return true
	}
	return false
}

// Release returns one unit and wakes the head waiter, if any. The unit
// is handed directly to the waiter so FIFO order is preserved even
// against late TryAcquire callers.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: Release of idle resource " + r.name)
	}
	if r.whead < len(r.waiters) {
		// Hand off: usage count stays the same, ownership moves.
		w := r.waiters[r.whead]
		r.waiters[r.whead] = nil
		r.whead++
		if r.whead == len(r.waiters) {
			r.waiters = r.waiters[:0]
			r.whead = 0
		}
		r.env.unblock(w)
		return
	}
	r.inUse--
	if r.inUse == 0 {
		r.busyTotal += Duration(r.env.now - r.lastBusy)
	}
}

// Use holds one unit for d virtual time: Acquire, Sleep, Release.
// It returns the total time including queueing delay.
func (r *Resource) Use(p *Proc, d Duration) Duration {
	start := r.env.now
	r.Acquire(p)
	p.Sleep(d)
	r.Release()
	return Duration(r.env.now - start)
}

// InUse reports the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen reports the number of processes waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) - r.whead }

// Stats reports acquisition counters for the resource.
func (r *Resource) Stats() (acquires, waited uint64, waitTotal, busyTotal Duration) {
	return r.acquires, r.waited, r.waitTotal, r.busyTotal
}

// Busy reports the cumulative time the resource has been non-idle,
// including a still-open busy period — the numerator of an occupancy
// gauge sampled mid-run.
func (r *Resource) Busy() Duration {
	b := r.busyTotal
	if r.inUse > 0 {
		b += Duration(r.env.now - r.lastBusy)
	}
	return b
}

// Signal is a broadcast condition. Waiters park until Fire; Fire wakes
// every current waiter at the current instant. A Signal may be fired
// repeatedly; waiters registered after a Fire wait for the next one.
type Signal struct {
	env     *Env
	name    string
	label   string // "signal <name>", precomputed for allocation-free parking
	waiters []*Proc
	spare   []*Proc // retired waiter slice, reused to avoid re-allocating
	fires   uint64
}

// NewSignal creates a named signal.
func (e *Env) NewSignal(name string) *Signal {
	return &Signal{env: e, name: name, label: "signal " + name}
}

// Wait parks until the next Fire.
func (s *Signal) Wait(p *Proc) {
	s.waiters = append(s.waiters, p)
	p.block(s.label)
}

// Fire wakes all current waiters. It is safe to call with no waiters.
func (s *Signal) Fire() {
	s.fires++
	ws := s.waiters
	s.waiters = s.spare[:0]
	for i, w := range ws {
		s.env.unblock(w)
		ws[i] = nil
	}
	s.spare = ws[:0]
}

// Fires reports how many times the signal fired.
func (s *Signal) Fires() uint64 { return s.fires }

// Waiters reports the number of parked processes.
func (s *Signal) Waiters() int { return len(s.waiters) }

// WaitGroup counts outstanding work across processes, like sync.WaitGroup
// but in virtual time.
type WaitGroup struct {
	env  *Env
	n    int
	done *Signal
}

// NewWaitGroup creates an empty wait group.
func (e *Env) NewWaitGroup(name string) *WaitGroup {
	return &WaitGroup{env: e, done: e.NewSignal(name + ".done")}
}

// Add increments the counter by delta.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.n == 0 {
		w.done.Fire()
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// Wait parks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.done.Wait(p)
	}
}

// Queue is an unbounded FIFO of items passed between processes, the
// virtual-time analogue of a Go channel with an infinite buffer.
type Queue struct {
	env    *Env
	name   string
	items  []interface{}
	head   int
	avail  *Signal
	closed bool
}

// NewQueue creates a named queue.
func (e *Env) NewQueue(name string) *Queue {
	return &Queue{env: e, name: name, avail: e.NewSignal(name + ".avail")}
}

// Put appends an item and wakes any waiting receivers.
func (q *Queue) Put(item interface{}) {
	if q.closed {
		panic("sim: Put on closed queue " + q.name)
	}
	q.items = append(q.items, item)
	q.avail.Fire()
}

// Close marks the queue closed; Get returns ok=false once drained.
func (q *Queue) Close() {
	q.closed = true
	q.avail.Fire()
}

// Get removes the head item, parking until one is available or the
// queue is closed and drained. The head advances by cursor (the slot is
// nilled and the buffer recycled once drained) so a long-lived queue
// neither shifts elements nor pins its backing array.
func (q *Queue) Get(p *Proc) (interface{}, bool) {
	for q.head == len(q.items) {
		if q.closed {
			return nil, false
		}
		q.avail.Wait(p)
	}
	it := q.items[q.head]
	q.items[q.head] = nil
	q.head++
	if q.head == len(q.items) {
		q.items = q.items[:0]
		q.head = 0
	}
	return it, true
}

// Len reports the number of queued items.
func (q *Queue) Len() int { return len(q.items) - q.head }
