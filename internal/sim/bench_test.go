package sim

import "testing"

// BenchmarkSelfSleep measures the self-dispatch fast path: one process
// sleeping in a loop resumes itself without any goroutine switch. This
// is the dominant pattern in the QD-1 latency sweeps (Fig 7).
func BenchmarkSelfSleep(b *testing.B) {
	e := NewEnv()
	b.ReportAllocs()
	e.Go("loop", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(10)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkHandoffPingPong measures the direct process-to-process
// handoff: two processes alternating through a capacity-1 resource, one
// goroutine switch per event.
func BenchmarkHandoffPingPong(b *testing.B) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	b.ReportAllocs()
	for w := 0; w < 2; w++ {
		e.Go("w", func(p *Proc) {
			for i := 0; i < b.N/2; i++ {
				r.Use(p, 10)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkManyProcsHeap measures heap pressure: 64 processes with
// staggered sleeps keep the 4-ary heap populated.
func BenchmarkManyProcsHeap(b *testing.B) {
	e := NewEnv()
	b.ReportAllocs()
	per := b.N/64 + 1
	for w := 0; w < 64; w++ {
		w := w
		e.Go("w", func(p *Proc) {
			for i := 0; i < per; i++ {
				p.Sleep(Duration(1 + (w*7+i)%97))
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkSignalFanout measures broadcast wakeups: one firer, 32
// waiters re-parking each round (ready-ring throughput).
func BenchmarkSignalFanout(b *testing.B) {
	e := NewEnv()
	s := e.NewSignal("s")
	rounds := b.N/32 + 1
	b.ReportAllocs()
	for w := 0; w < 32; w++ {
		e.GoDaemon("waiter", func(p *Proc) {
			for {
				s.Wait(p)
			}
		})
	}
	e.Go("firer", func(p *Proc) {
		for i := 0; i < rounds; i++ {
			p.Sleep(10)
			s.Fire()
		}
	})
	b.ResetTimer()
	e.Run()
}
