package sim

import "testing"

// Edge-of-contract tests for Resource and Signal: handoff vs
// TryAcquire, waiter-queue wraparound, zero-capacity construction,
// zero-duration Use, and Signal re-wait/spare-slice behavior.

// A Release with queued waiters hands the unit directly to the head
// waiter — a TryAcquire racing at the same instant, after the release
// but before the waiter resumes, must not steal it.
func TestTryAcquireCannotJumpHandoff(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var stole bool
	var order []string
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100)
		r.Release() // hands off to "waiter" queued at t=50
	})
	e.GoAt(50, "waiter", func(p *Proc) {
		r.Acquire(p)
		order = append(order, "waiter")
		p.Sleep(50)
		r.Release()
	})
	// Scheduled after "holder" at the same instant, so this runs after
	// the release and before the waiter's resume event.
	e.GoAt(100, "trier", func(p *Proc) {
		if r.TryAcquire() {
			stole = true
			r.Release()
		}
		p.Sleep(100) // t=200: waiter released at 150, resource idle
		if !r.TryAcquire() {
			t.Error("TryAcquire failed on an idle resource")
			return
		}
		order = append(order, "trier")
		r.Release()
	})
	e.Run()
	if stole {
		t.Error("TryAcquire stole a unit reserved for a queued waiter")
	}
	if len(order) != 2 || order[0] != "waiter" || order[1] != "trier" {
		t.Errorf("service order = %v, want [waiter trier]", order)
	}
}

// Appending new waiters while whead is mid-slice, draining across the
// reset point, must keep strict FIFO order and leave the queue fully
// compacted when it empties.
func TestResourceWaiterQueueWraparound(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var order []int
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100)
		r.Release()
	})
	use := func(id int) func(*Proc) {
		return func(p *Proc) {
			r.Acquire(p)
			order = append(order, id)
			p.Sleep(10)
			r.Release()
		}
	}
	// 1..3 queue while the holder runs; 4 and 5 arrive after handoffs
	// have advanced whead past the slice head but before it drains.
	for i := 1; i <= 3; i++ {
		e.GoAt(Time(10*i), "w", use(i))
	}
	e.GoAt(105, "w", use(4)) // whead=1 (serving 1), len=3
	e.GoAt(118, "w", use(5)) // whead=2 (serving 2), len=4
	e.Run()
	want := []int{1, 2, 3, 4, 5}
	if len(order) != len(want) {
		t.Fatalf("served %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("service order = %v, want %v (FIFO across wraparound)", order, want)
		}
	}
	if r.whead != 0 || len(r.waiters) != 0 {
		t.Errorf("drained queue not reset: whead=%d len=%d", r.whead, len(r.waiters))
	}
	if r.QueueLen() != 0 || r.InUse() != 0 {
		t.Errorf("resource not idle: queue=%d inUse=%d", r.QueueLen(), r.InUse())
	}
}

// Capacity below one is a construction error, not a quietly-useless
// resource.
func TestZeroCapacityResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewResource(0) did not panic")
		}
	}()
	NewEnv().NewResource("r", 0)
}

// Use with a zero duration still round-trips Acquire/Release and
// reports pure queueing delay.
func TestZeroDurationUse(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var free, contended Duration
	e.Go("holder", func(p *Proc) {
		free = r.Use(p, 0) // idle resource: total time 0
		r.Acquire(p)
		p.Sleep(100)
		r.Release()
	})
	e.GoAt(40, "queued", func(p *Proc) {
		contended = r.Use(p, 0) // waits t=40..100, then holds for 0
	})
	e.Run()
	if free != 0 {
		t.Errorf("zero-duration Use on idle resource took %v, want 0", free)
	}
	if contended != 60 {
		t.Errorf("zero-duration Use under contention took %v, want 60 (pure queueing)", contended)
	}
	if r.InUse() != 0 {
		t.Errorf("resource still held after Use: inUse=%d", r.InUse())
	}
	if _, waited, waitTotal, _ := r.Stats(); waited != 1 || waitTotal != 60 {
		t.Errorf("stats: waited=%d waitTotal=%v, want 1/60", waited, waitTotal)
	}
}

// A waiter that re-Waits from inside the wakeup of a Fire must not see
// the same fire twice, and the recycled spare slice must not leak
// old waiters into the next Fire.
func TestSignalReWaitNeedsNextFire(t *testing.T) {
	e := NewEnv()
	s := e.NewSignal("s")
	var wakes int
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		wakes++
		s.Wait(p) // re-registered after the fire: needs a second Fire
		wakes++
	})
	e.GoAt(10, "firer", func(p *Proc) {
		s.Fire()
		p.Sleep(10)
		if s.Waiters() != 1 {
			t.Errorf("re-waiting proc not registered: waiters=%d", s.Waiters())
		}
		s.Fire()
		p.Sleep(10)
		s.Fire() // no waiters: must be a no-op, not a double-wake
	})
	e.Run()
	if wakes != 2 {
		t.Errorf("waiter woke %d times, want 2", wakes)
	}
	if s.Fires() != 3 {
		t.Errorf("fires=%d, want 3", s.Fires())
	}
	if s.Waiters() != 0 {
		t.Errorf("stale waiters after final fire: %d", s.Waiters())
	}
}
