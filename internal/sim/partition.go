// Partitioned execution: several environments advancing in bounded-skew
// lockstep on multiple OS threads, with results byte-identical to a
// serial run.
//
// A Group owns N member environments ("partitions"). Each partition
// keeps its own clock, event heap and ready ring — the single-threaded
// kernel in sim.go, unchanged — and the Group advances all of them
// window by window:
//
//	W       = min over partitions of their next pending event time
//	horizon = W + lookahead, where lookahead = min link latency
//
// Within a window every partition dispatches only events strictly
// before the horizon, so partitions can run concurrently without locks:
// they share no simulation state, and anything one partition sends to
// another through a Link arrives at send-time + link latency, which is
// at or past the horizon. Messages queued during a window are therefore
// injected at the barrier between windows — when no process is running
// anywhere — without ever reordering an event the receiver could
// already have executed. That conservative-lookahead argument is the
// whole determinism story: event order inside each partition is the
// ordinary (at, seq) order, barrier injection follows fixed link-id
// order, so the merged run is byte-identical no matter how many worker
// threads execute the windows (SetWorkers(1) and SetWorkers(8) produce
// the same simulation).
//
// Lookahead must be positive — a zero-latency cross-partition
// interaction would force a zero-width window and no parallelism is
// possible; model such coupling inside one partition instead.
package sim

import (
	"fmt"
	"sync"
)

// Group is a set of environments run in lockstep. Create members with
// NewEnv, connect them with NewLink, then call Run once all processes
// are started (Run on a member environment panics).
type Group struct {
	parts   []*Env
	names   []string
	links   []*linkCore
	workers int
	running bool
}

// NewGroup returns an empty partition group.
func NewGroup() *Group { return &Group{workers: 1} }

// SetWorkers sets how many OS goroutines execute windows (default 1).
// The worker count changes wall-clock speed only, never results.
func (g *Group) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	g.workers = n
}

// NewEnv adds a named partition and returns its environment.
func (g *Group) NewEnv(name string) *Env {
	if g.running {
		panic("sim: NewEnv during Group.Run")
	}
	e := NewEnv()
	e.grp = g
	e.pid = len(g.parts)
	g.parts = append(g.parts, e)
	g.names = append(g.names, name)
	return e
}

// Parts reports the number of member environments.
func (g *Group) Parts() int { return len(g.parts) }

// Events reports the total events executed across all partitions.
func (g *Group) Events() uint64 {
	var n uint64
	for _, e := range g.parts {
		n += e.Events()
	}
	return n
}

// linkCore is the untyped view of a Link the Group's window loop
// manipulates: flushing the sender-side queue at barriers and waking a
// parked pump at the earliest new arrival.
type linkCore struct {
	id      int
	name    string
	from    *Env
	to      *Env
	latency Duration
	pump    *Proc
	parked  bool
	flush   func() (first Time, any bool)
}

// timed is a payload annotated with its arrival time.
type timed[T any] struct {
	at      Time
	v       T
	closeMk bool
}

// Link is a typed, unbounded, FIFO message channel from one partition
// to another with a fixed positive latency. Send never blocks; Recv
// parks until a message arrives (in the receiver's virtual time) or the
// link is closed and drained. Payloads travel in typed slices — no
// interface{} boxing, and steady-state messaging does not allocate once
// the queues have grown to their working size.
type Link[T any] struct {
	core      *linkCore
	avail     *Signal
	pumpLabel string

	// Sender side: messages queued during the current window.
	outq       []timed[T]
	sendClosed bool

	// Receiver side: in-flight messages (injected at barriers, ordered
	// by arrival because the sender's clock is monotone), the delivered
	// inbox, and the close mark.
	pending  []timed[T]
	pendHead int
	inbox    []T
	inbHead  int
	closed   bool
}

// NewLink connects two partitions of g with the given one-way latency
// (> 0; the minimum latency over all links is the group's lookahead).
func NewLink[T any](g *Group, from, to *Env, name string, latency Duration) *Link[T] {
	if g.running {
		panic("sim: NewLink during Group.Run")
	}
	if from.grp != g || to.grp != g {
		panic("sim: link " + name + " endpoints must be partitions of the group")
	}
	if from == to {
		panic("sim: link " + name + " connects a partition to itself")
	}
	if latency <= 0 {
		panic("sim: link " + name + " latency must be positive (it bounds the lockstep window)")
	}
	l := &Link[T]{
		avail:     to.NewSignal("link " + name + ".avail"),
		pumpLabel: "link " + name + ".pump",
	}
	c := &linkCore{id: len(g.links), name: name, from: from, to: to, latency: latency}
	c.flush = l.flushOut
	l.core = c
	g.links = append(g.links, c)
	c.pump = to.GoDaemon("link."+name+".pump", l.pumpLoop)
	return l
}

// Send queues v for delivery at the sender's current time plus the link
// latency. It never blocks and must be called from the source partition.
func (l *Link[T]) Send(p *Proc, v T) {
	c := l.core
	if p.env != c.from {
		panic("sim: Send on link " + c.name + " from the wrong partition")
	}
	if l.sendClosed {
		panic("sim: Send on closed link " + c.name)
	}
	l.outq = append(l.outq, timed[T]{at: c.from.now + Time(c.latency), v: v})
}

// Close marks the end of the stream. The close travels like a message:
// the receiver sees ok=false only after draining everything sent before
// it, one latency later.
func (l *Link[T]) Close(p *Proc) {
	c := l.core
	if p.env != c.from {
		panic("sim: Close on link " + c.name + " from the wrong partition")
	}
	if l.sendClosed {
		panic("sim: Close on closed link " + c.name)
	}
	l.sendClosed = true
	l.outq = append(l.outq, timed[T]{at: c.from.now + Time(c.latency), closeMk: true})
}

// Recv returns the next delivered message, parking until one arrives.
// ok is false once the link is closed and drained. Must be called from
// the destination partition.
func (l *Link[T]) Recv(p *Proc) (v T, ok bool) {
	c := l.core
	if p.env != c.to {
		panic("sim: Recv on link " + c.name + " from the wrong partition")
	}
	var zero T
	for l.inbHead == len(l.inbox) {
		if l.closed {
			return zero, false
		}
		l.avail.Wait(p)
	}
	v = l.inbox[l.inbHead]
	l.inbox[l.inbHead] = zero
	l.inbHead++
	if l.inbHead == len(l.inbox) {
		l.inbox = l.inbox[:0]
		l.inbHead = 0
	}
	return v, true
}

// Len reports the number of delivered-but-unread messages.
func (l *Link[T]) Len() int { return len(l.inbox) - l.inbHead }

// flushOut moves the window's sends to the receiver side. Runs only at
// barriers, when neither endpoint has a process executing.
func (l *Link[T]) flushOut() (Time, bool) {
	if len(l.outq) == 0 {
		return 0, false
	}
	first := l.outq[0].at
	l.pending = append(l.pending, l.outq...)
	var zero timed[T]
	for i := range l.outq {
		l.outq[i] = zero
	}
	l.outq = l.outq[:0]
	return first, true
}

// pumpLoop is the receiver-side daemon that turns in-flight messages
// into inbox entries at their arrival times. It parks when nothing is
// in flight; the barrier reschedules it at the earliest new arrival.
func (l *Link[T]) pumpLoop(p *Proc) {
	e := l.core.to
	var zero timed[T]
	for {
		for l.pendHead == len(l.pending) {
			l.core.parked = true
			p.block(l.pumpLabel)
		}
		if next := l.pending[l.pendHead].at; next > e.now {
			p.Sleep(Duration(next - e.now))
			continue
		}
		for l.pendHead < len(l.pending) && l.pending[l.pendHead].at <= e.now {
			m := l.pending[l.pendHead]
			l.pending[l.pendHead] = zero
			l.pendHead++
			if m.closeMk {
				l.closed = true
			} else {
				l.inbox = append(l.inbox, m.v)
			}
		}
		if l.pendHead == len(l.pending) {
			l.pending = l.pending[:0]
			l.pendHead = 0
		}
		l.avail.Fire()
		if l.closed {
			return
		}
	}
}

// Run executes all partitions to completion in lockstep windows, then
// performs the usual end-of-run duties (deadlock diagnosis, run-end
// hooks) per partition in order. Process faults and deadlock panics
// surface exactly as in Env.Run, prefixed with the partition name, and
// identically at any worker count.
func (g *Group) Run() {
	if g.running {
		panic("sim: Group.Run called re-entrantly")
	}
	if len(g.parts) == 0 {
		return
	}
	g.running = true
	defer func() { g.running = false }()

	lookahead := Duration(0)
	for i, c := range g.links {
		if i == 0 || c.latency < lookahead {
			lookahead = c.latency
		}
	}

	nw := g.workers
	if nw > len(g.parts) {
		nw = len(g.parts)
	}
	faults := make([]interface{}, len(g.parts))
	var starts []chan Time
	var wg sync.WaitGroup
	if nw > 1 {
		// Persistent workers with static partition assignment: worker k
		// owns partitions k, k+nw, k+2nw, … so each environment is only
		// ever touched by one goroutine (plus this one, at barriers —
		// ordered by the start/wg channel handshakes).
		starts = make([]chan Time, nw)
		for k := 0; k < nw; k++ {
			starts[k] = make(chan Time)
			go func(k int) {
				for horizon := range starts[k] {
					for i := k; i < len(g.parts); i += nw {
						runPart(g.parts[i], horizon, &faults[i])
					}
					wg.Done()
				}
			}(k)
		}
		defer func() {
			for _, ch := range starts {
				close(ch)
			}
		}()
	}

	for {
		w := maxTime
		for _, e := range g.parts {
			if t := e.peekNext(); t < w {
				w = t
			}
		}
		if w == maxTime {
			break
		}
		horizon := maxTime
		if len(g.links) > 0 {
			horizon = w + Time(lookahead)
			if horizon <= w { // overflow
				horizon = maxTime
			}
		}
		if nw > 1 {
			wg.Add(nw)
			for _, ch := range starts {
				ch <- horizon
			}
			wg.Wait()
		} else {
			for i, e := range g.parts {
				runPart(e, horizon, &faults[i])
			}
		}
		for i, f := range faults {
			if f != nil {
				panic(fmt.Sprintf("sim: partition %d (%s): %v", i, g.names[i], f))
			}
		}
		for _, c := range g.links {
			first, any := c.flush()
			if any && c.parked {
				c.parked = false
				c.to.schedule(c.pump, first)
			}
		}
	}
	for _, e := range g.parts {
		e.finishRun()
	}
}

// runPart advances one partition through a window, capturing a fault so
// sibling partitions still finish the window before the group re-panics
// (deterministically, lowest partition first).
func runPart(e *Env, horizon Time, fault *interface{}) {
	defer func() {
		if r := recover(); r != nil {
			*fault = r
		}
	}()
	e.runPhase(horizon)
}

// Shutdown tears down every partition (see Env.Shutdown).
func (g *Group) Shutdown() {
	if g.running {
		panic("sim: Shutdown during Group.Run")
	}
	for _, e := range g.parts {
		e.Shutdown()
	}
}
