package sim

import (
	"testing"
	"testing/quick"
)

func TestClockAdvances(t *testing.T) {
	e := NewEnv()
	var at1, at2 Time
	e.Go("a", func(p *Proc) {
		p.Sleep(100)
		at1 = e.Now()
		p.Sleep(250)
		at2 = e.Now()
	})
	e.Run()
	if at1 != 100 || at2 != 350 {
		t.Fatalf("got %d,%d want 100,350", at1, at2)
	}
}

func TestNegativeSleepIsZero(t *testing.T) {
	e := NewEnv()
	e.Go("a", func(p *Proc) {
		p.Sleep(-5)
		if e.Now() != 0 {
			t.Errorf("negative sleep moved clock to %d", e.Now())
		}
	})
	e.Run()
}

func TestFIFOAmongSimultaneousEvents(t *testing.T) {
	e := NewEnv()
	var order []string
	for _, n := range []string{"a", "b", "c"} {
		n := n
		e.Go(n, func(p *Proc) {
			p.Sleep(10)
			order = append(order, n)
		})
	}
	e.Run()
	if len(order) != 3 || order[0] != "a" || order[1] != "b" || order[2] != "c" {
		t.Fatalf("order = %v, want [a b c]", order)
	}
}

func TestGoAtDelaysStart(t *testing.T) {
	e := NewEnv()
	var started Time
	e.GoAt(500, "late", func(p *Proc) { started = e.Now() })
	e.Run()
	if started != 500 {
		t.Fatalf("started at %d, want 500", started)
	}
}

func TestGoFromInsideProcess(t *testing.T) {
	e := NewEnv()
	var childAt Time
	e.Go("parent", func(p *Proc) {
		p.Sleep(42)
		e.Go("child", func(c *Proc) {
			c.Sleep(8)
			childAt = e.Now()
		})
	})
	e.Run()
	if childAt != 50 {
		t.Fatalf("child finished at %d, want 50", childAt)
	}
}

func TestResourceMutualExclusion(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("mtx", 1)
	var maxConcurrent, cur int
	for i := 0; i < 5; i++ {
		e.Go("w", func(p *Proc) {
			r.Acquire(p)
			cur++
			if cur > maxConcurrent {
				maxConcurrent = cur
			}
			p.Sleep(10)
			cur--
			r.Release()
		})
	}
	e.Run()
	if maxConcurrent != 1 {
		t.Fatalf("max concurrency = %d, want 1", maxConcurrent)
	}
	if e.Now() != 50 {
		t.Fatalf("serialized 5x10ns should end at 50, got %d", e.Now())
	}
}

func TestResourceCapacityN(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("pool", 3)
	e.Go("driver", func(p *Proc) {
		for i := 0; i < 6; i++ {
			e.Go("w", func(w *Proc) { r.Use(w, 100) })
		}
	})
	e.Run()
	// 6 jobs of 100ns on 3 servers => 200ns.
	if e.Now() != 200 {
		t.Fatalf("end = %d, want 200", e.Now())
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var order []int
	for i := 0; i < 4; i++ {
		i := i
		e.GoAt(Time(i), "w", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(100)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestTryAcquire(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	var got, gotWhileBusy bool
	e.Go("holder", func(p *Proc) {
		r.Acquire(p)
		p.Sleep(100)
		r.Release()
	})
	e.GoAt(50, "trier", func(p *Proc) {
		gotWhileBusy = r.TryAcquire()
		p.Sleep(100) // now t=150, resource free
		got = r.TryAcquire()
		if got {
			r.Release()
		}
	})
	e.Run()
	if gotWhileBusy {
		t.Error("TryAcquire succeeded while busy")
	}
	if !got {
		t.Error("TryAcquire failed while free")
	}
}

func TestReleaseIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	e := NewEnv()
	r := e.NewResource("r", 1)
	e.Go("bad", func(p *Proc) { r.Release() })
	e.Run()
}

func TestSignalBroadcast(t *testing.T) {
	e := NewEnv()
	s := e.NewSignal("s")
	woke := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			s.Wait(p)
			woke++
		})
	}
	e.GoAt(100, "firer", func(p *Proc) { s.Fire() })
	e.Run()
	if woke != 3 {
		t.Fatalf("woke %d, want 3", woke)
	}
	if s.Fires() != 1 {
		t.Fatalf("fires = %d, want 1", s.Fires())
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv()
	wg := e.NewWaitGroup("wg")
	var doneAt Time
	wg.Add(3)
	for i := 1; i <= 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Duration(i * 100))
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		doneAt = e.Now()
	})
	e.Run()
	if doneAt != 300 {
		t.Fatalf("waiter resumed at %d, want 300", doneAt)
	}
}

func TestQueueProducerConsumer(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10)
			q.Put(i)
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	e.Run()
	if len(got) != 5 {
		t.Fatalf("got %v", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEnv()
	s := e.NewSignal("never")
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	e.Run()
}

func TestProcessPanicPropagates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic from process fault")
		}
	}()
	e := NewEnv()
	e.Go("boom", func(p *Proc) { panic("boom") })
	e.Run()
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.500us"},
		{2 * Millisecond, "2.000ms"},
		{3 * Second, "3.000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

func TestResourceStats(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	for i := 0; i < 3; i++ {
		e.Go("w", func(p *Proc) { r.Use(p, 100) })
	}
	e.Run()
	acq, waited, waitTotal, busy := r.Stats()
	if acq != 3 {
		t.Errorf("acquires = %d, want 3", acq)
	}
	if waited != 2 {
		t.Errorf("waited = %d, want 2", waited)
	}
	if waitTotal != 100+200 {
		t.Errorf("waitTotal = %d, want 300", waitTotal)
	}
	if busy != 300 {
		t.Errorf("busyTotal = %d, want 300", busy)
	}
}

// Property: for any set of jobs on a capacity-1 resource, the end time
// equals the sum of service times (perfect serialization), and FIFO
// waiting times are consistent.
func TestPropertySerializationTime(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 64 {
			return true
		}
		e := NewEnv()
		r := e.NewResource("r", 1)
		var sum Duration
		for _, d := range durs {
			d := Duration(d)
			sum += d
			e.Go("w", func(p *Proc) { r.Use(p, d) })
		}
		e.Run()
		return e.Now() == Time(sum)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: sleeps on independent processes never interfere — the final
// clock is the max individual finish time.
func TestPropertyIndependentSleeps(t *testing.T) {
	f := func(durs []uint16) bool {
		if len(durs) == 0 || len(durs) > 64 {
			return true
		}
		e := NewEnv()
		var max Duration
		for _, d := range durs {
			d := Duration(d)
			if d > max {
				max = d
			}
			e.Go("w", func(p *Proc) { p.Sleep(d) })
		}
		e.Run()
		return e.Now() == Time(max)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonDoesNotDeadlock(t *testing.T) {
	// A daemon parked on a signal forever must not trip the deadlock
	// detector once all regular processes finish.
	e := NewEnv()
	s := e.NewSignal("work")
	e.GoDaemon("worker", func(p *Proc) {
		for {
			s.Wait(p)
		}
	})
	e.Go("main", func(p *Proc) { p.Sleep(100) })
	e.Run() // must return, not panic
	if e.Now() != 100 {
		t.Fatalf("clock = %d", e.Now())
	}
}

func TestDaemonStillCountsWhenRegularBlocked(t *testing.T) {
	// A blocked NON-daemon still panics even when daemons are around.
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	e := NewEnv()
	s := e.NewSignal("never")
	e.GoDaemon("d", func(p *Proc) { s.Wait(p) })
	e.Go("stuck", func(p *Proc) { s.Wait(p) })
	e.Run()
}

func TestRunResumableAfterDrain(t *testing.T) {
	// Run, then schedule more work, then Run again: the env keeps the
	// clock and continues (used throughout the bench harness).
	e := NewEnv()
	e.Go("a", func(p *Proc) { p.Sleep(50) })
	e.Run()
	if e.Now() != 50 {
		t.Fatalf("clock = %d", e.Now())
	}
	e.Go("b", func(p *Proc) { p.Sleep(25) })
	e.Run()
	if e.Now() != 75 {
		t.Fatalf("clock after resume = %d", e.Now())
	}
}

// A sleeper that scheduled its wakeup for instant T before the clock
// reached T (heap path) must run before a process unblocked at T (ring
// path): the sleeper's event has the older sequence number.
func TestHeapEventBeatsRingEventAtSameInstant(t *testing.T) {
	e := NewEnv()
	s := e.NewSignal("s")
	var order []string
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(100) // scheduled at t=0 for t=100: enters the heap
		order = append(order, "sleeper")
	})
	e.Go("waiter", func(p *Proc) {
		s.Wait(p)
		order = append(order, "waiter")
	})
	e.GoAt(100, "firer", func(p *Proc) {
		// Fires at t=100: the waiter's resume enters the ready ring with
		// a newer seq than the sleeper's heap event for the same instant.
		s.Fire()
		order = append(order, "firer")
	})
	e.Run()
	// At t=100 the heap holds the firer's start (seq 3) and the
	// sleeper's wakeup (seq 4); the waiter's unblock (seq 5) enters the
	// ready ring when Fire runs. FIFO by seq across both structures.
	want := []string{"firer", "sleeper", "waiter"}
	for i, w := range want {
		if i >= len(order) || order[i] != w {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

// FIFO order must survive the head-cursor compaction in Resource's
// waiter queue across many acquire/release cycles.
func TestResourceFIFOManyWaiters(t *testing.T) {
	e := NewEnv()
	r := e.NewResource("r", 1)
	const n = 200
	var order []int
	for i := 0; i < n; i++ {
		i := i
		e.GoAt(Time(i), "w", func(p *Proc) {
			r.Acquire(p)
			order = append(order, i)
			p.Sleep(1000)
			r.Release()
		})
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("ran %d, want %d", len(order), n)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want ascending", i, v)
		}
	}
	if r.QueueLen() != 0 {
		t.Fatalf("queue len = %d, want 0", r.QueueLen())
	}
}

// Queue FIFO order must survive interleaved Put/Get around the
// head-cursor reset.
func TestQueueFIFOAcrossCompaction(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 100; i++ {
			q.Put(i)
			if i%3 == 0 {
				p.Sleep(5) // let the consumer drain and reset the head
			}
		}
		q.Close()
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := q.Get(p)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	e.Run()
	if len(got) != 100 {
		t.Fatalf("got %d items, want 100", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got[%d] = %d, want in-order", i, v)
		}
	}
	if q.Len() != 0 {
		t.Fatalf("queue len = %d, want 0", q.Len())
	}
}

// Events counts every executed event, across repeated Runs.
func TestEventsCounter(t *testing.T) {
	e := NewEnv()
	e.Go("a", func(p *Proc) {
		for i := 0; i < 9; i++ {
			p.Sleep(10)
		}
	})
	e.Run()
	// 1 initial resume + 9 sleeps.
	if e.Events() != 10 {
		t.Fatalf("events = %d, want 10", e.Events())
	}
	e.Go("b", func(p *Proc) { p.Sleep(10) })
	e.Run()
	if e.Events() != 12 {
		t.Fatalf("events after second run = %d, want 12", e.Events())
	}
}

func TestQueueCloseUnblocksReceivers(t *testing.T) {
	e := NewEnv()
	q := e.NewQueue("q")
	done := 0
	for i := 0; i < 3; i++ {
		e.Go("recv", func(p *Proc) {
			if _, ok := q.Get(p); !ok {
				done++
			}
		})
	}
	e.GoAt(10, "closer", func(p *Proc) { q.Close() })
	e.Run()
	if done != 3 {
		t.Fatalf("unblocked %d receivers, want 3", done)
	}
}

// The tick hook fires when the clock reaches or passes its deadline,
// observing state between events, and stops when it returns a time
// that does not advance.
func TestTickHook(t *testing.T) {
	e := NewEnv()
	var ticks []Time
	e.SetTick(100, func(now Time) Time {
		ticks = append(ticks, now)
		if now >= 1000 {
			return now // stop
		}
		// Next boundary strictly after now.
		return (now/100 + 1) * 100
	})
	e.Go("a", func(p *Proc) {
		p.Sleep(50)  // t=50: below first deadline
		p.Sleep(50)  // t=100: tick
		p.Sleep(250) // t=350: tick (crossed 200 and 300 in one jump)
		p.Sleep(650) // t=1000: tick, then hook stops itself
		p.Sleep(500) // t=1500: no tick
	})
	e.Run()
	want := []Time{100, 350, 1000}
	if len(ticks) != len(want) {
		t.Fatalf("ticks = %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks = %v, want %v", ticks, want)
		}
	}
}

// Run-end hooks fire once per Run return, in registration order.
func TestOnRunEnd(t *testing.T) {
	e := NewEnv()
	var order []string
	e.OnRunEnd(func() { order = append(order, "a") })
	e.OnRunEnd(func() { order = append(order, "b") })
	e.Go("w", func(p *Proc) { p.Sleep(10) })
	e.Run()
	if len(order) != 2 || order[0] != "a" || order[1] != "b" {
		t.Fatalf("run-end order = %v, want [a b]", order)
	}
	e.Go("w2", func(p *Proc) { p.Sleep(10) })
	e.Run()
	if len(order) != 4 {
		t.Fatalf("run-end hooks fired %d times total, want 4", len(order))
	}
}
