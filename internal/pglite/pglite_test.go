package pglite

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// ---- B-tree unit tests ----

func TestBTreeBasic(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 1000; i++ {
		bt.Put([]byte(fmt.Sprintf("k%06d", i)), rid{page: int32(i), slot: int16(i % 100)})
	}
	if bt.Len() != 1000 {
		t.Fatalf("len = %d", bt.Len())
	}
	for i := 0; i < 1000; i++ {
		r, ok := bt.Get([]byte(fmt.Sprintf("k%06d", i)))
		if !ok || r.page != int32(i) {
			t.Fatalf("get %d: %v %v", i, r, ok)
		}
	}
	if _, ok := bt.Get([]byte("nope")); ok {
		t.Fatal("phantom key")
	}
}

func TestBTreeReplace(t *testing.T) {
	bt := newBTree()
	bt.Put([]byte("k"), rid{page: 1})
	bt.Put([]byte("k"), rid{page: 2})
	if bt.Len() != 1 {
		t.Fatalf("len = %d", bt.Len())
	}
	if r, _ := bt.Get([]byte("k")); r.page != 2 {
		t.Fatalf("rid = %v", r)
	}
}

func TestBTreeDelete(t *testing.T) {
	bt := newBTree()
	for i := 0; i < 200; i++ {
		bt.Put([]byte(fmt.Sprintf("k%03d", i)), rid{page: int32(i)})
	}
	for i := 0; i < 200; i += 2 {
		if !bt.Delete([]byte(fmt.Sprintf("k%03d", i))) {
			t.Fatalf("delete %d failed", i)
		}
	}
	if bt.Delete([]byte("k000")) {
		t.Fatal("double delete succeeded")
	}
	for i := 0; i < 200; i++ {
		_, ok := bt.Get([]byte(fmt.Sprintf("k%03d", i)))
		if (i%2 == 0) == ok {
			t.Fatalf("key %d: ok=%v", i, ok)
		}
	}
}

func TestBTreeAscend(t *testing.T) {
	bt := newBTree()
	rng := rand.New(rand.NewSource(3))
	keys := rng.Perm(500)
	for _, i := range keys {
		bt.Put([]byte(fmt.Sprintf("k%04d", i)), rid{page: int32(i)})
	}
	var got []string
	bt.Ascend([]byte("k0100"), func(k []byte, r rid) bool {
		got = append(got, string(k))
		return len(got) < 10
	})
	if len(got) != 10 || got[0] != "k0100" || got[9] != "k0109" {
		t.Fatalf("ascend = %v", got)
	}
	if !sort.StringsAreSorted(got) {
		t.Fatal("ascend out of order")
	}
}

// Property: B-tree matches a sorted map for any insert order.
func TestPropertyBTreeMatchesMap(t *testing.T) {
	prop := func(raw []uint16) bool {
		bt := newBTree()
		shadow := make(map[string]int32)
		for i, r := range raw {
			k := fmt.Sprintf("k%05d", r)
			bt.Put([]byte(k), rid{page: int32(i)})
			shadow[k] = int32(i)
		}
		if bt.Len() != len(shadow) {
			return false
		}
		for k, want := range shadow {
			got, ok := bt.Get([]byte(k))
			if !ok || got.page != want {
				return false
			}
		}
		// Full ascend yields sorted keys.
		var keys []string
		bt.Ascend(nil, func(k []byte, _ rid) bool {
			keys = append(keys, string(k))
			return true
		})
		return sort.StringsAreSorted(keys) && len(keys) == len(shadow)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// ---- heap page unit tests ----

func TestHeapPageInsertReadKill(t *testing.T) {
	hp := loadHeapPage(make([]byte, heapPageBytes))
	s1 := hp.insert([]byte("tuple-one"))
	s2 := hp.insert([]byte("tuple-two"))
	if !bytes.Equal(hp.read(s1), []byte("tuple-one")) {
		t.Fatal("read s1")
	}
	hp.kill(s1)
	if hp.read(s1) != nil {
		t.Fatal("dead tuple visible")
	}
	if !bytes.Equal(hp.read(s2), []byte("tuple-two")) {
		t.Fatal("kill damaged neighbour")
	}
	if hp.read(99) != nil {
		t.Fatal("out-of-range slot")
	}
}

func TestHeapPageFillsUp(t *testing.T) {
	hp := loadHeapPage(make([]byte, heapPageBytes))
	tuple := bytes.Repeat([]byte{1}, 100)
	n := 0
	for hp.freeBytes() >= len(tuple) {
		hp.insert(tuple)
		n++
	}
	if n < 30 || n > 40 {
		t.Fatalf("page held %d 100B tuples", n)
	}
}

// ---- engine tests ----

type rig struct {
	env *sim.Env
	ssd *core.TwoBSSD
	fs  *vfs.FS
}

func newRig() *rig {
	e := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 128
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.1
	cfg.Base.WriteBufferPages = 128
	cfg.Base.DrainWorkers = 8
	cfg.BABufferBytes = 128 * 4096
	ssd := core.New(e, cfg)
	return &rig{env: e, ssd: ssd, fs: vfs.New(ssd.Device())}
}

func (r *rig) config(mode wal.CommitMode) Config {
	cfg := Config{
		DataFS:        r.fs,
		LogFS:         r.fs,
		WALMode:       mode,
		LogFileBytes:  1 << 20,
		HeapFileBytes: 2 << 20,
	}
	if mode == wal.BA {
		cfg.SSD = r.ssd
		cfg.EIDs = []core.EID{0, 1}
		cfg.SegmentBytes = 64 * 4096 // half the BA-buffer
	}
	return cfg
}

func TestCommitAndRead(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		eng, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		eng.CreateTable("node")
		tx := eng.Begin()
		tx.Upsert("node", []byte("n1"), []byte("alice"))
		tx.Upsert("node", []byte("n2"), []byte("bob"))
		if err := tx.Commit(p); err != nil {
			t.Fatalf("commit: %v", err)
		}
		v, ok, err := eng.Begin().Get(p, "node", []byte("n1"))
		if err != nil || !ok || string(v) != "alice" {
			t.Fatalf("get: %q %v %v", v, ok, err)
		}
		// Update in a second transaction.
		tx2 := eng.Begin()
		tx2.Upsert("node", []byte("n1"), []byte("alice2"))
		if err := tx2.Commit(p); err != nil {
			t.Fatal(err)
		}
		v, _, _ = eng.Begin().Get(p, "node", []byte("n1"))
		if string(v) != "alice2" {
			t.Fatalf("updated value = %q", v)
		}
		// Delete.
		tx3 := eng.Begin()
		tx3.Delete("node", []byte("n2"))
		tx3.Commit(p)
		if _, ok, _ := eng.Begin().Get(p, "node", []byte("n2")); ok {
			t.Fatal("deleted row visible")
		}
	})
	r.env.Run()
}

func TestScanRange(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		eng, _ := Open(r.env, p, r.config(wal.Sync))
		eng.CreateTable("link")
		tx := eng.Begin()
		for i := 0; i < 50; i++ {
			tx.Upsert("link", []byte(fmt.Sprintf("n1|%03d", i)), []byte("x"))
		}
		tx.Commit(p)
		keys, values, err := eng.Begin().Scan(p, "link", []byte("n1|010"), 5)
		if err != nil {
			t.Fatal(err)
		}
		if len(keys) != 5 || string(keys[0]) != "n1|010" || string(keys[4]) != "n1|014" {
			t.Fatalf("scan keys = %v", keys)
		}
		if len(values) != 5 {
			t.Fatalf("values = %d", len(values))
		}
	})
	r.env.Run()
}

func TestManyRowsForcePoolEviction(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.BufferPoolPages = 8 // tiny pool: force evictions
		eng, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.CreateTable("tbl")
		val := bytes.Repeat([]byte{7}, 200)
		for i := 0; i < 400; i++ {
			tx := eng.Begin()
			tx.Upsert("tbl", []byte(fmt.Sprintf("k%05d", i)), val)
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		// All rows readable back through the pool.
		for i := 0; i < 400; i += 37 {
			v, ok, err := eng.Begin().Get(p, "tbl", []byte(fmt.Sprintf("k%05d", i)))
			if err != nil || !ok || !bytes.Equal(v, val) {
				t.Fatalf("row %d: ok=%v err=%v", i, ok, err)
			}
		}
		if eng.tables["tbl"].heap.pool.evicts == 0 {
			t.Error("expected pool evictions")
		}
	})
	r.env.Run()
}

func TestCheckpointTriggeredByLogPressure(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		cfg := r.config(wal.Sync)
		cfg.LogFileBytes = 64 << 10 // small log to force checkpoints
		eng, err := Open(r.env, p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		eng.CreateTable("tbl")
		val := bytes.Repeat([]byte{1}, 500)
		for i := 0; i < 300; i++ {
			tx := eng.Begin()
			tx.Upsert("tbl", []byte(fmt.Sprintf("k%04d", i%50)), val)
			if err := tx.Commit(p); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if eng.Stats().Checkpoints == 0 {
			t.Error("no checkpoints despite log pressure")
		}
		// Data intact after checkpoints.
		for i := 0; i < 50; i++ {
			if _, ok, _ := eng.Begin().Get(p, "tbl", []byte(fmt.Sprintf("k%04d", i))); !ok {
				t.Fatalf("row %d lost", i)
			}
		}
	})
	r.env.Run()
}

func TestRecoveryReplaysCommitted(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		eng, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatal(err)
		}
		eng.CreateTable("tbl")
		for i := 0; i < 30; i++ {
			tx := eng.Begin()
			tx.Upsert("tbl", []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
			if err := tx.Commit(p); err != nil {
				t.Fatal(err)
			}
		}
		// Crash without checkpoint: reopen a fresh engine over the same
		// filesystem and replay.
		eng2, err := Open(r.env, p, r.config(wal.Sync))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 30; i++ {
			v, ok, err := eng2.Begin().Get(p, "tbl", []byte(fmt.Sprintf("k%02d", i)))
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("k%02d: %q ok=%v err=%v", i, v, ok, err)
			}
		}
	})
	r.env.Run()
}

func TestBAXlogSurvivesPowerLoss(t *testing.T) {
	r := newRig()
	r.env.Go("t", func(p *sim.Proc) {
		eng, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		eng.CreateTable("tbl")
		for i := 0; i < 25; i++ {
			tx := eng.Begin()
			tx.Upsert("tbl", []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%d", i)))
			if err := tx.Commit(p); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := r.ssd.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := r.ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		eng2, err := Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		for i := 0; i < 25; i++ {
			v, ok, err := eng2.Begin().Get(p, "tbl", []byte(fmt.Sprintf("k%02d", i)))
			if err != nil || !ok || string(v) != fmt.Sprintf("v%d", i) {
				t.Fatalf("k%02d lost after power cycle: %q ok=%v err=%v", i, v, ok, err)
			}
		}
	})
	r.env.Run()
}

func TestConcurrentCommitters(t *testing.T) {
	r := newRig()
	var eng *Engine
	r.env.Go("setup", func(p *sim.Proc) {
		var err error
		eng, err = Open(r.env, p, r.config(wal.BA))
		if err != nil {
			t.Fatal(err)
		}
		eng.CreateTable("tbl")
		const clients = 12
		for c := 0; c < clients; c++ {
			c := c
			r.env.Go("client", func(p *sim.Proc) {
				for i := 0; i < 30; i++ {
					tx := eng.Begin()
					tx.Upsert("tbl", []byte(fmt.Sprintf("c%d-k%03d", c, i)), []byte("v"))
					if err := tx.Commit(p); err != nil {
						t.Errorf("c%d commit: %v", c, err)
						return
					}
				}
			})
		}
	})
	r.env.Run()
	r.env.Go("verify", func(p *sim.Proc) {
		for c := 0; c < 12; c++ {
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("c%d-k%03d", c, i)
				if _, ok, err := eng.Begin().Get(p, "tbl", []byte(k)); !ok || err != nil {
					t.Errorf("%s missing", k)
					return
				}
			}
		}
	})
	r.env.Run()
}

// Property: engine equals a map under random upsert/delete, surviving
// a recovery cycle.
func TestPropertyEngineMatchesMapWithRecovery(t *testing.T) {
	prop := func(seed int64) bool {
		r := newRig()
		ok := true
		r.env.Go("t", func(p *sim.Proc) {
			eng, err := Open(r.env, p, r.config(wal.Sync))
			if err != nil {
				ok = false
				return
			}
			eng.CreateTable("t")
			rng := rand.New(rand.NewSource(seed))
			shadow := make(map[string]string)
			for i := 0; i < 150; i++ {
				k := fmt.Sprintf("k%02d", rng.Intn(30))
				tx := eng.Begin()
				if rng.Intn(4) == 0 {
					tx.Delete("t", []byte(k))
					delete(shadow, k)
				} else {
					v := fmt.Sprintf("v%d", i)
					tx.Upsert("t", []byte(k), []byte(v))
					shadow[k] = v
				}
				if err := tx.Commit(p); err != nil {
					ok = false
					return
				}
			}
			eng2, err := Open(r.env, p, r.config(wal.Sync))
			if err != nil {
				ok = false
				return
			}
			for k, want := range shadow {
				got, found, err := eng2.Begin().Get(p, "t", []byte(k))
				if err != nil || !found || string(got) != want {
					ok = false
					return
				}
			}
			for i := 0; i < 30; i++ {
				k := fmt.Sprintf("k%02d", i)
				if _, inShadow := shadow[k]; !inShadow {
					if _, found, _ := eng2.Begin().Get(p, "t", []byte(k)); found {
						ok = false
						return
					}
				}
			}
		})
		r.env.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 6}); err != nil {
		t.Fatal(err)
	}
}

// Differential test: identical transaction traces under every commit
// mode converge to the same table contents.
func TestDifferentialCommitModes(t *testing.T) {
	run := func(mode wal.CommitMode) map[string]string {
		r := newRig()
		state := make(map[string]string)
		r.env.Go("t", func(p *sim.Proc) {
			eng, err := Open(r.env, p, r.config(mode))
			if err != nil {
				t.Error(err)
				return
			}
			eng.CreateTable("t")
			rng := rand.New(rand.NewSource(123))
			for i := 0; i < 200; i++ {
				tx := eng.Begin()
				k := fmt.Sprintf("k%02d", rng.Intn(40))
				if rng.Intn(4) == 0 {
					tx.Delete("t", []byte(k))
				} else {
					tx.Upsert("t", []byte(k), []byte(fmt.Sprintf("v%d", i)))
				}
				if err := tx.Commit(p); err != nil {
					t.Error(err)
					return
				}
			}
			keys, vals, err := eng.Begin().Scan(p, "t", nil, 0)
			if err != nil {
				t.Error(err)
				return
			}
			for i := range keys {
				if vals[i] != nil {
					state[string(keys[i])] = string(vals[i])
				}
			}
		})
		r.env.Run()
		return state
	}
	ref := run(wal.Sync)
	if len(ref) == 0 {
		t.Fatal("empty reference")
	}
	for _, mode := range []wal.CommitMode{wal.Async, wal.BA, wal.PM} {
		got := run(mode)
		if len(got) != len(ref) {
			t.Fatalf("%v: %d keys, want %d", mode, len(got), len(ref))
		}
		for k, v := range ref {
			if got[k] != v {
				t.Fatalf("%v: %s = %q, want %q", mode, k, got[k], v)
			}
		}
	}
}
