package pglite

import (
	"encoding/binary"
	"errors"
	"fmt"

	"twobssd/internal/sim"
	"twobssd/internal/vfs"
)

const heapPageBytes = 4096

// Slotted heap page layout:
//
//	[2] slot count
//	[2] free-space offset (start of unused area)
//	slots grow from the end: per slot [2] offset [2] length (0 = dead)
//	tuple bytes grow from offset 4 upward.
type heapPage struct {
	data  []byte
	dirty bool
}

func newHeapPage() *heapPage {
	hp := &heapPage{data: make([]byte, heapPageBytes)}
	binary.LittleEndian.PutUint16(hp.data[2:], 4)
	return hp
}

func loadHeapPage(data []byte) *heapPage {
	hp := &heapPage{data: data}
	if binary.LittleEndian.Uint16(hp.data[2:]) < 4 {
		binary.LittleEndian.PutUint16(hp.data[2:], 4) // fresh page
	}
	return hp
}

func (hp *heapPage) slotCount() int { return int(binary.LittleEndian.Uint16(hp.data[0:])) }
func (hp *heapPage) freeOff() int   { return int(binary.LittleEndian.Uint16(hp.data[2:])) }

func (hp *heapPage) slotPos(i int) int { return heapPageBytes - 4*(i+1) }

func (hp *heapPage) slot(i int) (off, length int) {
	pos := hp.slotPos(i)
	return int(binary.LittleEndian.Uint16(hp.data[pos:])), int(binary.LittleEndian.Uint16(hp.data[pos+2:]))
}

func (hp *heapPage) setSlot(i, off, length int) {
	pos := hp.slotPos(i)
	binary.LittleEndian.PutUint16(hp.data[pos:], uint16(off))
	binary.LittleEndian.PutUint16(hp.data[pos+2:], uint16(length))
}

// freeBytes reports the contiguous space left for one more tuple+slot.
func (hp *heapPage) freeBytes() int {
	return hp.slotPos(hp.slotCount()) - hp.freeOff() - 4
}

// insert places a tuple and returns its slot. Caller checked space.
func (hp *heapPage) insert(tuple []byte) int16 {
	off := hp.freeOff()
	copy(hp.data[off:], tuple)
	slot := hp.slotCount()
	hp.setSlot(slot, off, len(tuple))
	binary.LittleEndian.PutUint16(hp.data[0:], uint16(slot+1))
	binary.LittleEndian.PutUint16(hp.data[2:], uint16(off+len(tuple)))
	hp.dirty = true
	return int16(slot)
}

// read returns the tuple bytes of a slot (nil if dead).
func (hp *heapPage) read(slot int16) []byte {
	if int(slot) >= hp.slotCount() {
		return nil
	}
	off, length := hp.slot(int(slot))
	if length == 0 {
		return nil
	}
	return hp.data[off : off+length]
}

// kill marks a slot dead.
func (hp *heapPage) kill(slot int16) {
	off, _ := hp.slot(int(slot))
	hp.setSlot(int(slot), off, 0)
	hp.dirty = true
}

// bufferPool caches heap pages of one file with LRU write-back.
type bufferPool struct {
	file   *vfs.File
	cap    int
	frames map[int32]*heapPage
	order  []int32
	hitCPU sim.Duration
	hits   uint64
	misses uint64
	evicts uint64
}

func newBufferPool(f *vfs.File, capacity int, hitCPU sim.Duration) *bufferPool {
	if capacity < 4 {
		capacity = 4
	}
	return &bufferPool{file: f, cap: capacity, frames: make(map[int32]*heapPage), hitCPU: hitCPU}
}

func (bp *bufferPool) touch(id int32) {
	for i, v := range bp.order {
		if v == id {
			bp.order = append(bp.order[:i], bp.order[i+1:]...)
			break
		}
	}
	bp.order = append(bp.order, id)
}

// fetch returns the frame for a page, reading it on a miss and
// evicting (write-back) when over capacity.
func (bp *bufferPool) fetch(p *sim.Proc, id int32) (*heapPage, error) {
	if hp, ok := bp.frames[id]; ok {
		bp.hits++
		if bp.hitCPU > 0 {
			p.Sleep(bp.hitCPU)
		}
		bp.touch(id)
		return hp, nil
	}
	bp.misses++
	raw := make([]byte, heapPageBytes)
	if err := bp.file.ReadAt(p, int64(id)*heapPageBytes, raw); err != nil {
		return nil, err
	}
	hp := loadHeapPage(raw)
	bp.frames[id] = hp
	bp.order = append(bp.order, id)
	for len(bp.frames) > bp.cap {
		victim := bp.order[0]
		bp.order = bp.order[1:]
		v := bp.frames[victim]
		delete(bp.frames, victim)
		bp.evicts++
		if v.dirty {
			if err := bp.file.WriteAt(p, int64(victim)*heapPageBytes, v.data); err != nil {
				return nil, err
			}
		}
	}
	return hp, nil
}

// flushAll writes every dirty frame back (checkpoint).
func (bp *bufferPool) flushAll(p *sim.Proc) error {
	for id, hp := range bp.frames {
		if hp.dirty {
			if err := bp.file.WriteAt(p, int64(id)*heapPageBytes, hp.data); err != nil {
				return err
			}
			hp.dirty = false
		}
	}
	return bp.file.Sync(p)
}

// heapStore is one table's heap: pages in a file behind a pool.
type heapStore struct {
	pool     *bufferPool
	pages    int32 // allocated pages
	lastFree int32 // page most likely to have space
}

var (
	errHeapFull  = errors.New("pglite: heap file full")
	errDeadTuple = errors.New("pglite: dead tuple")
)

func newHeapStore(f *vfs.File, poolPages int, hitCPU sim.Duration) *heapStore {
	return &heapStore{pool: newBufferPool(f, poolPages, hitCPU)}
}

// insert stores a tuple and returns its RID.
func (h *heapStore) insert(p *sim.Proc, tuple []byte) (rid, error) {
	if len(tuple)+8 > heapPageBytes-4 {
		return rid{}, fmt.Errorf("pglite: tuple of %d bytes too large", len(tuple))
	}
	maxPages := int32(h.pool.file.Capacity() / heapPageBytes)
	for try := 0; try < 2; try++ {
		pg := h.lastFree
		if pg >= h.pages {
			if h.pages >= maxPages {
				return rid{}, errHeapFull
			}
			h.pages++
		}
		hp, err := h.pool.fetch(p, pg)
		if err != nil {
			return rid{}, err
		}
		if hp.freeBytes() >= len(tuple) {
			slot := hp.insert(tuple)
			return rid{page: pg, slot: slot}, nil
		}
		h.lastFree++
	}
	return rid{}, errHeapFull
}

// read fetches a tuple by RID. The returned bytes alias the page frame:
// tuples are never overwritten in place (updates insert a new version
// and kill the old slot, and the slot directory lives at the page tail),
// so the bytes stay stable, but callers must not modify them.
func (h *heapStore) read(p *sim.Proc, r rid) ([]byte, error) {
	hp, err := h.pool.fetch(p, r.page)
	if err != nil {
		return nil, err
	}
	t := hp.read(r.slot)
	if t == nil {
		return nil, fmt.Errorf("%w at %v", errDeadTuple, r)
	}
	return t, nil
}

// kill marks a tuple dead.
func (h *heapStore) kill(p *sim.Proc, r rid) error {
	hp, err := h.pool.fetch(p, r.page)
	if err != nil {
		return err
	}
	hp.kill(r.slot)
	return nil
}
