package pglite

import (
	"encoding/binary"
	"errors"
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// Config assembles an engine.
type Config struct {
	// DataFS stores heap files; LogFS the XLOG (the log device under
	// test in Fig 9a / Fig 10).
	DataFS *vfs.FS
	LogFS  *vfs.FS

	// XLOG commit protocol. Per the paper, BA mode sets the segment to
	// half the BA-buffer and double-buffers across two entries.
	WALMode      wal.CommitMode
	SSD          *core.TwoBSSD
	EIDs         []core.EID
	BufferOffset int
	SegmentBytes int

	LogFileBytes    int64 // XLOG file capacity (16 MB in PostgreSQL)
	HeapFileBytes   int64 // per-table heap capacity
	BufferPoolPages int

	ReadCPU  sim.Duration
	WriteCPU sim.Duration

	AsyncFlushInterval sim.Duration

	// CheckpointFrac of the log file filled triggers a checkpoint.
	CheckpointFrac float64
}

func (c *Config) fillDefaults() error {
	if c.DataFS == nil {
		return errors.New("pglite: DataFS required")
	}
	if c.LogFS == nil {
		c.LogFS = c.DataFS
	}
	if c.LogFileBytes <= 0 {
		c.LogFileBytes = 16 << 20
	}
	if c.HeapFileBytes <= 0 {
		c.HeapFileBytes = 8 << 20
	}
	if c.BufferPoolPages <= 0 {
		c.BufferPoolPages = 512
	}
	if c.ReadCPU <= 0 {
		c.ReadCPU = 3 * sim.Microsecond
	}
	if c.WriteCPU <= 0 {
		c.WriteCPU = 4 * sim.Microsecond
	}
	if c.CheckpointFrac <= 0 || c.CheckpointFrac > 0.95 {
		c.CheckpointFrac = 0.8
	}
	if c.WALMode == wal.BA {
		if c.SSD == nil || len(c.EIDs) < 2 {
			return errors.New("pglite: BA mode needs SSD and 2 EIDs")
		}
		if c.SegmentBytes <= 0 {
			return errors.New("pglite: BA mode needs SegmentBytes (half the BA-buffer)")
		}
	}
	return nil
}

// Stats aggregates engine counters.
type Stats struct {
	Commits     uint64
	Reads       uint64
	Writes      uint64
	Checkpoints uint64
	PoolHits    uint64
	PoolMisses  uint64
}

// Table is one relation: a heap plus a B-tree primary index.
type Table struct {
	name string
	heap *heapStore
	idx  *btree
}

// Engine is the database instance.
type Engine struct {
	env *sim.Env
	cfg Config

	tables  map[string]*Table
	xlog    *wal.Log
	logFile *vfs.File

	// Commit/checkpoint coordination: commits run shared, checkpoints
	// exclusive (a checkpoint between another transaction's append and
	// apply would truncate a committed-but-unapplied batch).
	activeCommits int
	ckptWanted    bool
	commitsIdle   *sim.Signal
	ckptDone      *sim.Signal

	stats Stats

	// scanPool recycles scan scratch (key/rid staging) across calls;
	// each in-flight scan holds its own buffer, so concurrent scans
	// that park mid-read never share one.
	scanPool []*scanBuf
}

type scanBuf struct {
	keys [][]byte
	rids []rid
}

func (e *Engine) getScanBuf() *scanBuf {
	if n := len(e.scanPool); n > 0 {
		b := e.scanPool[n-1]
		e.scanPool[n-1] = nil
		e.scanPool = e.scanPool[:n-1]
		return b
	}
	return &scanBuf{}
}

func (e *Engine) putScanBuf(b *scanBuf) {
	b.keys = b.keys[:0]
	b.rids = b.rids[:0]
	e.scanPool = append(e.scanPool, b)
}

const xlogName = "xlog"

// Open creates or recovers an engine. If an XLOG file exists its
// committed transactions are replayed (idempotent upserts), restoring
// the pre-crash state.
func Open(env *sim.Env, p *sim.Proc, cfg Config) (*Engine, error) {
	if err := cfg.fillDefaults(); err != nil {
		return nil, err
	}
	e := &Engine{
		env:         env,
		cfg:         cfg,
		tables:      make(map[string]*Table),
		commitsIdle: env.NewSignal("pglite.commitsidle"),
		ckptDone:    env.NewSignal("pglite.ckptdone"),
	}
	existing := cfg.LogFS.Exists(xlogName)
	f, err := openOrCreate(cfg.LogFS, xlogName, cfg.LogFileBytes)
	if err != nil {
		return nil, err
	}
	e.logFile = f
	wcfg := wal.Config{
		Mode:               cfg.WALMode,
		File:               f,
		SegmentBytes:       cfg.SegmentBytes,
		AsyncFlushInterval: cfg.AsyncFlushInterval,
	}
	if cfg.WALMode == wal.BA {
		wcfg.SSD = cfg.SSD
		wcfg.EIDs = cfg.EIDs
		wcfg.BufferOffset = cfg.BufferOffset
		wcfg.DoubleBuffer = true
	}
	l, err := wal.Open(env, wcfg)
	if err != nil {
		return nil, err
	}
	e.xlog = l
	if existing {
		if err := e.replay(p); err != nil {
			return nil, err
		}
	}
	return e, nil
}

func openOrCreate(fs *vfs.FS, name string, capacity int64) (*vfs.File, error) {
	if fs.Exists(name) {
		return fs.Open(name)
	}
	return fs.Create(name, capacity)
}

// Stats returns a snapshot including pool counters.
func (e *Engine) Stats() Stats {
	s := e.stats
	for _, t := range e.tables {
		s.PoolHits += t.heap.pool.hits
		s.PoolMisses += t.heap.pool.misses
	}
	return s
}

// Log exposes the XLOG for commit-latency accounting in benches.
func (e *Engine) Log() *wal.Log { return e.xlog }

// CreateTable declares a relation (idempotent on recovery).
func (e *Engine) CreateTable(name string) error {
	if _, ok := e.tables[name]; ok {
		return nil
	}
	heapFile, err := openOrCreate(e.cfg.DataFS, "heap-"+name, e.cfg.HeapFileBytes)
	if err != nil {
		return err
	}
	e.tables[name] = &Table{
		name: name,
		heap: newHeapStore(heapFile, e.cfg.BufferPoolPages, 300*sim.Nanosecond),
		idx:  newBTree(),
	}
	return nil
}

func (e *Engine) table(name string) (*Table, error) {
	t, ok := e.tables[name]
	if !ok {
		return nil, fmt.Errorf("pglite: no such table %q", name)
	}
	return t, nil
}

// ---- transactions ----

// Op codes inside a transaction batch record.
const (
	opUpsert = byte(1)
	opDelete = byte(2)
)

type op struct {
	code  byte
	table string
	key   []byte
	value []byte
}

// Txn buffers modifications until Commit; reads see committed state
// (read committed).
type Txn struct {
	e   *Engine
	ops []op
}

// Begin starts a transaction.
func (e *Engine) Begin() *Txn { return &Txn{e: e} }

// Upsert stages an insert-or-update of key in table.
func (t *Txn) Upsert(table string, key, value []byte) {
	t.ops = append(t.ops, op{
		code: opUpsert, table: table,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
	})
}

// Delete stages a deletion.
func (t *Txn) Delete(table string, key []byte) {
	t.ops = append(t.ops, op{code: opDelete, table: table, key: append([]byte(nil), key...)})
}

// Get reads the committed value of key. The returned bytes alias
// engine-internal storage and must not be modified by the caller.
func (t *Txn) Get(p *sim.Proc, table string, key []byte) ([]byte, bool, error) {
	return t.e.get(p, table, key)
}

// Scan visits committed keys >= start in order, up to limit. Returned
// keys and values alias engine-internal storage and must not be
// modified by the caller.
func (t *Txn) Scan(p *sim.Proc, table string, start []byte, limit int) (keys, values [][]byte, err error) {
	return t.e.scan(p, table, start, limit)
}

// ScanFunc streams committed rows >= start in order, up to limit,
// without materializing result slices. Key and value are valid only
// during the fn call (they alias engine-internal storage); fn returning
// false stops the scan. Deleted-but-indexed rows pass a nil value.
func (t *Txn) ScanFunc(p *sim.Proc, table string, start []byte, limit int, fn func(key, value []byte) bool) error {
	return t.e.scanVisit(p, table, start, limit, fn)
}

// beginCommit enters the shared commit section (blocked while a
// checkpoint wants or holds exclusivity).
func (e *Engine) beginCommit(p *sim.Proc) {
	for e.ckptWanted {
		e.ckptDone.Wait(p)
	}
	e.activeCommits++
}

func (e *Engine) endCommit() {
	e.activeCommits--
	if e.activeCommits == 0 {
		e.commitsIdle.Fire()
	}
}

// Commit appends the batch to XLOG, makes it durable per the commit
// mode, then applies it to the heap and index.
func (t *Txn) Commit(p *sim.Proc) error {
	e := t.e
	if len(t.ops) == 0 {
		return nil
	}
	p.Sleep(e.cfg.WriteCPU)
	e.beginCommit(p)
	payload := encodeBatch(t.ops)
	lsn, err := e.xlog.Append(p, payload)
	if errors.Is(err, wal.ErrLogFull) {
		e.endCommit()
		if err = e.Checkpoint(p); err != nil {
			return err
		}
		e.beginCommit(p)
		lsn, err = e.xlog.Append(p, payload)
	}
	if err != nil {
		e.endCommit()
		return err
	}
	if err := e.xlog.Commit(p, lsn); err != nil {
		e.endCommit()
		return err
	}
	if err := e.apply(p, t.ops); err != nil {
		e.endCommit()
		return err
	}
	e.stats.Commits++
	e.stats.Writes += uint64(len(t.ops))
	e.endCommit()
	// Proactive checkpoint before the log runs out.
	if e.xlog.AppendOff() > int64(float64(e.logFile.Capacity())*e.cfg.CheckpointFrac) {
		if err := e.Checkpoint(p); err != nil {
			return err
		}
	}
	return nil
}

// apply performs the batch's heap/index mutations (idempotent).
func (e *Engine) apply(p *sim.Proc, ops []op) error {
	for _, o := range ops {
		tab, err := e.table(o.table)
		if err != nil {
			return err
		}
		switch o.code {
		case opUpsert:
			tuple := encodeTuple(o.key, o.value)
			old, hadOld := tab.idx.Get(o.key)
			r, err := tab.heap.insert(p, tuple)
			if err != nil {
				return err
			}
			// Publish the new version before killing the old one so a
			// concurrent reader always finds a live tuple.
			tab.idx.Put(o.key, r)
			if hadOld {
				if err := tab.heap.kill(p, old); err != nil {
					return err
				}
			}
		case opDelete:
			if old, ok := tab.idx.Get(o.key); ok {
				if err := tab.heap.kill(p, old); err != nil {
					return err
				}
				tab.idx.Delete(o.key)
			}
		}
	}
	return nil
}

func (e *Engine) get(p *sim.Proc, table string, key []byte) ([]byte, bool, error) {
	p.Sleep(e.cfg.ReadCPU)
	e.stats.Reads++
	tab, err := e.table(table)
	if err != nil {
		return nil, false, err
	}
	// A concurrent upsert can retire the RID between the index lookup
	// and the heap read (both yield on I/O); retry through the index.
	for try := 0; try < 8; try++ {
		r, ok := tab.idx.Get(key)
		if !ok {
			return nil, false, nil
		}
		tuple, err := tab.heap.read(p, r)
		if errors.Is(err, errDeadTuple) {
			continue
		}
		if err != nil {
			return nil, false, err
		}
		_, v := decodeTuple(tuple)
		return v, true, nil
	}
	return nil, false, nil
}

func (e *Engine) scan(p *sim.Proc, table string, start []byte, limit int) (keys, values [][]byte, err error) {
	err = e.scanVisit(p, table, start, limit, func(k, v []byte) bool {
		keys = append(keys, k)
		values = append(values, v)
		return true
	})
	if err != nil {
		return nil, nil, err
	}
	return keys, values, nil
}

// scanVisit streams rows to fn without materializing result slices.
// Keys alias the index's private copies (the B-tree copies on Put and
// never mutates a stored key) and values alias heap page frames; both
// are valid only during the fn call. fn returning false stops the scan.
func (e *Engine) scanVisit(p *sim.Proc, table string, start []byte, limit int, fn func(key, value []byte) bool) error {
	p.Sleep(e.cfg.ReadCPU)
	e.stats.Reads++
	tab, err := e.table(table)
	if err != nil {
		return err
	}
	buf := e.getScanBuf()
	defer e.putScanBuf(buf)
	tab.idx.Ascend(start, func(key []byte, r rid) bool {
		buf.keys = append(buf.keys, key)
		buf.rids = append(buf.rids, r)
		return limit <= 0 || len(buf.keys) < limit
	})
	for i, r := range buf.rids {
		// A concurrent upsert can retire the RID mid-scan; re-resolve
		// through the index until a live version (or deletion) shows.
		tuple, err := tab.heap.read(p, r)
		for try := 0; errors.Is(err, errDeadTuple) && try < 8; try++ {
			nr, ok := tab.idx.Get(buf.keys[i])
			if !ok {
				break
			}
			tuple, err = tab.heap.read(p, nr)
		}
		var v []byte
		switch {
		case errors.Is(err, errDeadTuple) || tuple == nil:
			v = nil
		case err != nil:
			return err
		default:
			_, v = decodeTuple(tuple)
		}
		if !fn(buf.keys[i], v) {
			break
		}
	}
	return nil
}

// Checkpoint flushes all dirty heap pages and truncates the XLOG. It
// runs exclusive with commits; concurrent checkpoint requests coalesce.
func (e *Engine) Checkpoint(p *sim.Proc) error {
	if e.ckptWanted {
		// Someone else is checkpointing: wait for it and piggyback.
		for e.ckptWanted {
			e.ckptDone.Wait(p)
		}
		return nil
	}
	e.ckptWanted = true
	for e.activeCommits > 0 {
		e.commitsIdle.Wait(p)
	}
	defer func() {
		e.ckptWanted = false
		e.ckptDone.Fire()
	}()
	for _, tab := range e.tables {
		if err := tab.heap.pool.flushAll(p); err != nil {
			return err
		}
	}
	if err := e.xlog.Reset(p); err != nil {
		return err
	}
	e.stats.Checkpoints++
	return nil
}

// replay re-applies every committed batch found in the XLOG.
func (e *Engine) replay(p *sim.Proc) error {
	return e.xlog.Recover(p, func(_ wal.LSN, payload []byte) error {
		ops, err := decodeBatch(payload)
		if err != nil {
			return err
		}
		for _, o := range ops {
			if err := e.CreateTable(o.table); err != nil {
				return err
			}
		}
		return e.apply(p, ops)
	})
}

// ---- encodings ----

func encodeTuple(key, value []byte) []byte {
	out := make([]byte, 4+len(key)+len(value))
	binary.LittleEndian.PutUint32(out, uint32(len(key)))
	copy(out[4:], key)
	copy(out[4+len(key):], value)
	return out
}

func decodeTuple(t []byte) (key, value []byte) {
	klen := int(binary.LittleEndian.Uint32(t))
	return t[4 : 4+klen], t[4+klen:]
}

func encodeBatch(ops []op) []byte {
	size := 4
	for _, o := range ops {
		size += 1 + 2 + len(o.table) + 4 + len(o.key) + 4 + len(o.value)
	}
	out := make([]byte, size)
	binary.LittleEndian.PutUint32(out, uint32(len(ops)))
	pos := 4
	for _, o := range ops {
		out[pos] = o.code
		binary.LittleEndian.PutUint16(out[pos+1:], uint16(len(o.table)))
		pos += 3
		copy(out[pos:], o.table)
		pos += len(o.table)
		binary.LittleEndian.PutUint32(out[pos:], uint32(len(o.key)))
		pos += 4
		copy(out[pos:], o.key)
		pos += len(o.key)
		binary.LittleEndian.PutUint32(out[pos:], uint32(len(o.value)))
		pos += 4
		copy(out[pos:], o.value)
		pos += len(o.value)
	}
	return out
}

func decodeBatch(b []byte) ([]op, error) {
	if len(b) < 4 {
		return nil, errors.New("pglite: short batch")
	}
	n := int(binary.LittleEndian.Uint32(b))
	pos := 4
	ops := make([]op, 0, n)
	for i := 0; i < n; i++ {
		if pos+3 > len(b) {
			return nil, errors.New("pglite: truncated batch")
		}
		code := b[pos]
		tlen := int(binary.LittleEndian.Uint16(b[pos+1:]))
		pos += 3
		if pos+tlen+4 > len(b) {
			return nil, errors.New("pglite: truncated batch")
		}
		table := string(b[pos : pos+tlen])
		pos += tlen
		klen := int(binary.LittleEndian.Uint32(b[pos:]))
		pos += 4
		if pos+klen+4 > len(b) {
			return nil, errors.New("pglite: truncated batch")
		}
		key := append([]byte(nil), b[pos:pos+klen]...)
		pos += klen
		vlen := int(binary.LittleEndian.Uint32(b[pos:]))
		pos += 4
		if pos+vlen > len(b) {
			return nil, errors.New("pglite: truncated batch")
		}
		value := append([]byte(nil), b[pos:pos+vlen]...)
		pos += vlen
		ops = append(ops, op{code: code, table: table, key: key, value: value})
	}
	return ops, nil
}
