// Package pglite is a miniature PostgreSQL-style relational engine:
// slotted heap pages behind a buffer pool, a B-tree primary index, and
// an XLOG write-ahead log with the commit modes of the paper's Fig 5.
// It is the SQL engine of the case study: the paper's BA-WAL patch
// replaced XLOG's log-buffer write path, sizing each log segment at
// half the BA-buffer for double buffering (Section IV-B).
package pglite

import "bytes"

// rid addresses a tuple: heap page number and slot within it.
type rid struct {
	page int32
	slot int16
}

const btreeOrder = 32 // max keys per node

type btreeNode struct {
	leaf     bool
	keys     [][]byte
	vals     []rid        // leaf only
	children []*btreeNode // interior only
	next     *btreeNode   // leaf chain for range scans
}

// btree is an in-memory B+-tree mapping key bytes to heap RIDs — the
// primary index of a table.
type btree struct {
	root *btreeNode
	size int
}

func newBTree() *btree {
	return &btree{root: &btreeNode{leaf: true}}
}

// Len returns the number of indexed keys.
func (t *btree) Len() int { return t.size }

// search finds the leaf that should hold key.
func (t *btree) searchLeaf(key []byte) *btreeNode {
	n := t.root
	for !n.leaf {
		i := upperBound(n.keys, key)
		n = n.children[i]
	}
	return n
}

// upperBound returns the count of keys <= key (child index to follow).
func upperBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) <= 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// lowerBound returns the first index with keys[i] >= key.
func lowerBound(keys [][]byte, key []byte) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Get returns the rid for key.
func (t *btree) Get(key []byte) (rid, bool) {
	leaf := t.searchLeaf(key)
	i := lowerBound(leaf.keys, key)
	if i < len(leaf.keys) && bytes.Equal(leaf.keys[i], key) {
		return leaf.vals[i], true
	}
	return rid{}, false
}

// Put inserts or replaces key -> r.
func (t *btree) Put(key []byte, r rid) {
	k := append([]byte(nil), key...)
	promoted, newChild := t.insert(t.root, k, r)
	if newChild != nil {
		t.root = &btreeNode{
			keys:     [][]byte{promoted},
			children: []*btreeNode{t.root, newChild},
		}
	}
}

// insert returns a promoted separator key and new right sibling when
// the child split.
func (t *btree) insert(n *btreeNode, key []byte, r rid) ([]byte, *btreeNode) {
	if n.leaf {
		i := lowerBound(n.keys, key)
		if i < len(n.keys) && bytes.Equal(n.keys[i], key) {
			n.vals[i] = r // replace
			return nil, nil
		}
		n.keys = append(n.keys, nil)
		copy(n.keys[i+1:], n.keys[i:])
		n.keys[i] = key
		n.vals = append(n.vals, rid{})
		copy(n.vals[i+1:], n.vals[i:])
		n.vals[i] = r
		t.size++
		if len(n.keys) <= btreeOrder {
			return nil, nil
		}
		return t.splitLeaf(n)
	}
	ci := upperBound(n.keys, key)
	promoted, newChild := t.insert(n.children[ci], key, r)
	if newChild == nil {
		return nil, nil
	}
	n.keys = append(n.keys, nil)
	copy(n.keys[ci+1:], n.keys[ci:])
	n.keys[ci] = promoted
	n.children = append(n.children, nil)
	copy(n.children[ci+2:], n.children[ci+1:])
	n.children[ci+1] = newChild
	if len(n.keys) <= btreeOrder {
		return nil, nil
	}
	return t.splitInterior(n)
}

func (t *btree) splitLeaf(n *btreeNode) ([]byte, *btreeNode) {
	mid := len(n.keys) / 2
	right := &btreeNode{
		leaf: true,
		keys: append([][]byte(nil), n.keys[mid:]...),
		vals: append([]rid(nil), n.vals[mid:]...),
		next: n.next,
	}
	n.keys = n.keys[:mid]
	n.vals = n.vals[:mid]
	n.next = right
	return right.keys[0], right
}

func (t *btree) splitInterior(n *btreeNode) ([]byte, *btreeNode) {
	mid := len(n.keys) / 2
	promoted := n.keys[mid]
	right := &btreeNode{
		keys:     append([][]byte(nil), n.keys[mid+1:]...),
		children: append([]*btreeNode(nil), n.children[mid+1:]...),
	}
	n.keys = n.keys[:mid]
	n.children = n.children[:mid+1]
	return promoted, right
}

// Delete removes key; returns whether it existed. (Underflow is not
// rebalanced — acceptable for an index that mostly grows, and keys
// remain ordered and findable.)
func (t *btree) Delete(key []byte) bool {
	leaf := t.searchLeaf(key)
	i := lowerBound(leaf.keys, key)
	if i >= len(leaf.keys) || !bytes.Equal(leaf.keys[i], key) {
		return false
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.vals = append(leaf.vals[:i], leaf.vals[i+1:]...)
	t.size--
	return true
}

// Ascend visits keys >= start in order until fn returns false.
func (t *btree) Ascend(start []byte, fn func(key []byte, r rid) bool) {
	leaf := t.searchLeaf(start)
	i := lowerBound(leaf.keys, start)
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if !fn(leaf.keys[i], leaf.vals[i]) {
				return
			}
		}
		leaf = leaf.next
		i = 0
	}
}
