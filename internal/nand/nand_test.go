package nand

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"twobssd/internal/sim"
)

func testConfig() Config {
	return Config{
		Channels:       2,
		DiesPerChannel: 2,
		BlocksPerDie:   8,
		PagesPerBlock:  16,
		PageSize:       4096,
		ReadLatency:    3 * sim.Microsecond,
		ProgramLatency: 50 * sim.Microsecond,
		EraseLatency:   3 * sim.Millisecond,
		ChannelMBps:    1200,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := []Config{
		{},
		func() Config { c := testConfig(); c.Channels = 0; return c }(),
		func() Config { c := testConfig(); c.PageSize = -1; return c }(),
		func() Config { c := testConfig(); c.ChannelMBps = 0; return c }(),
		func() Config { c := testConfig(); c.ReadLatency = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestGeometryMath(t *testing.T) {
	c := testConfig()
	if c.Dies() != 4 || c.Blocks() != 32 || c.Pages() != 512 {
		t.Fatalf("dies=%d blocks=%d pages=%d", c.Dies(), c.Blocks(), c.Pages())
	}
	if c.CapacityBytes() != 512*4096 {
		t.Fatalf("capacity = %d", c.CapacityBytes())
	}
}

func TestPPARoundTrip(t *testing.T) {
	c := testConfig()
	for die := 0; die < c.Dies(); die++ {
		for blk := 0; blk < c.BlocksPerDie; blk++ {
			for pg := 0; pg < c.PagesPerBlock; pg++ {
				ppa := c.PPAOf(die, blk, pg)
				d, b, g := c.Decompose(ppa)
				if d != die || b != blk || g != pg {
					t.Fatalf("round trip (%d,%d,%d) -> %d -> (%d,%d,%d)", die, blk, pg, ppa, d, b, g)
				}
			}
		}
	}
}

func TestTransferTime(t *testing.T) {
	c := testConfig() // 1200 MB/s = 1.2 bytes/ns
	if got := c.TransferTime(4096); got != sim.Duration(4096*1000/1200) {
		t.Fatalf("transfer = %v", got)
	}
	if c.TransferTime(0) != 0 || c.TransferTime(-1) != 0 {
		t.Fatal("non-positive sizes should transfer in zero time")
	}
}

func TestProgramReadRoundTrip(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	payload := bytes.Repeat([]byte{0xAB}, 4096)
	e.Go("t", func(p *sim.Proc) {
		ppa := f.Config().PPAOf(0, 0, 0)
		if err := f.ProgramPage(p, ppa, payload); err != nil {
			t.Errorf("program: %v", err)
		}
		got, err := f.ReadPage(p, ppa)
		if err != nil {
			t.Errorf("read: %v", err)
		}
		if !bytes.Equal(got, payload) {
			t.Error("read back wrong data")
		}
	})
	e.Run()
	st := f.Stats()
	if st.PagePrograms != 1 || st.PageReads != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestShortProgramZeroPadded(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	e.Go("t", func(p *sim.Proc) {
		ppa := f.Config().PPAOf(0, 0, 0)
		if err := f.ProgramPage(p, ppa, []byte{1, 2, 3}); err != nil {
			t.Errorf("program: %v", err)
		}
		got, _ := f.ReadPage(p, ppa)
		if got[0] != 1 || got[1] != 2 || got[2] != 3 || got[3] != 0 || got[4095] != 0 {
			t.Error("short program not zero padded")
		}
	})
	e.Run()
}

func TestSequentialProgramRule(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	e.Go("t", func(p *sim.Proc) {
		// Page 1 before page 0 must fail.
		if err := f.ProgramPage(p, f.Config().PPAOf(0, 0, 1), nil); !errors.Is(err, ErrNotErased) {
			t.Errorf("out-of-order program: err = %v", err)
		}
		// In order works.
		for pg := 0; pg < 3; pg++ {
			if err := f.ProgramPage(p, f.Config().PPAOf(0, 0, pg), nil); err != nil {
				t.Errorf("sequential program pg %d: %v", pg, err)
			}
		}
		// Rewriting page 0 without erase must fail.
		if err := f.ProgramPage(p, f.Config().PPAOf(0, 0, 0), nil); !errors.Is(err, ErrNotErased) {
			t.Errorf("overwrite without erase: err = %v", err)
		}
	})
	e.Run()
}

func TestEraseResetsBlock(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	e.Go("t", func(p *sim.Proc) {
		ppa := f.Config().PPAOf(0, 0, 0)
		if err := f.ProgramPage(p, ppa, []byte{9}); err != nil {
			t.Fatalf("program: %v", err)
		}
		if err := f.EraseBlock(p, f.Config().BlockOf(ppa)); err != nil {
			t.Fatalf("erase: %v", err)
		}
		got, _ := f.ReadPage(p, ppa)
		if got[0] != 0 {
			t.Error("erase did not clear data")
		}
		if err := f.ProgramPage(p, ppa, []byte{7}); err != nil {
			t.Errorf("program after erase: %v", err)
		}
	})
	e.Run()
	if f.EraseCount(0) != 1 {
		t.Fatalf("erase count = %d", f.EraseCount(0))
	}
}

func TestEnduranceRetiresBlock(t *testing.T) {
	cfg := testConfig()
	cfg.EnduranceCycles = 2
	e := sim.NewEnv()
	f := New(e, cfg)
	e.Go("t", func(p *sim.Proc) {
		if err := f.EraseBlock(p, 0); err != nil {
			t.Errorf("erase 1: %v", err)
		}
		if err := f.EraseBlock(p, 0); !errors.Is(err, ErrWornOut) {
			t.Errorf("erase 2: err = %v, want ErrWornOut", err)
		}
		if err := f.EraseBlock(p, 0); !errors.Is(err, ErrBadBlock) {
			t.Errorf("erase after retirement: err = %v, want ErrBadBlock", err)
		}
		if err := f.ProgramPage(p, 0, nil); !errors.Is(err, ErrBadBlock) {
			t.Errorf("program bad block: err = %v, want ErrBadBlock", err)
		}
	})
	e.Run()
	if !f.IsBad(0) {
		t.Fatal("block not marked bad")
	}
}

func TestOutOfRange(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	e.Go("t", func(p *sim.Proc) {
		if _, err := f.ReadPage(p, PPA(f.Config().Pages())); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("read: err = %v", err)
		}
		if err := f.ProgramPage(p, PPA(f.Config().Pages()), nil); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("program: err = %v", err)
		}
		if err := f.EraseBlock(p, BlockID(f.Config().Blocks())); !errors.Is(err, ErrOutOfRange) {
			t.Errorf("erase: err = %v", err)
		}
	})
	e.Run()
}

func TestOversizedProgramRejected(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	e.Go("t", func(p *sim.Proc) {
		if err := f.ProgramPage(p, 0, make([]byte, 4097)); !errors.Is(err, ErrPageTooLarge) {
			t.Errorf("err = %v", err)
		}
	})
	e.Run()
}

func TestReadTiming(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	var took sim.Duration
	e.Go("t", func(p *sim.Proc) {
		start := e.Now()
		if _, err := f.ReadPage(p, 0); err != nil {
			t.Errorf("read: %v", err)
		}
		took = sim.Duration(e.Now() - start)
	})
	e.Run()
	want := 3*sim.Microsecond + testConfig().TransferTime(4096)
	if took != want {
		t.Fatalf("read took %v, want %v", took, want)
	}
}

func TestDieParallelism(t *testing.T) {
	// Two reads on different dies of different channels overlap fully;
	// two reads on the same die serialize the array time.
	cfg := testConfig()
	e := sim.NewEnv()
	f := New(e, cfg)
	perRead := cfg.ReadLatency + cfg.TransferTime(cfg.PageSize)
	// Different dies on different channels.
	e.Go("a", func(p *sim.Proc) { f.ReadPage(p, cfg.PPAOf(0, 0, 0)) })
	e.Go("b", func(p *sim.Proc) { f.ReadPage(p, cfg.PPAOf(1, 0, 0)) })
	e.Run()
	if sim.Duration(e.Now()) != perRead {
		t.Fatalf("parallel reads took %v, want %v", sim.Duration(e.Now()), perRead)
	}

	e2 := sim.NewEnv()
	f2 := New(e2, cfg)
	e2.Go("a", func(p *sim.Proc) { f2.ReadPage(p, cfg.PPAOf(0, 0, 0)) })
	e2.Go("b", func(p *sim.Proc) { f2.ReadPage(p, cfg.PPAOf(0, 0, 1)) })
	e2.Run()
	// Same die: second array read waits for the first; transfers share
	// a channel too, so total = 2*tR + 2*xfer serialized except overlap
	// of second tR with first transfer.
	min := perRead + cfg.ReadLatency
	if sim.Duration(e2.Now()) < min {
		t.Fatalf("same-die reads took %v, want >= %v", sim.Duration(e2.Now()), min)
	}
}

func TestMarkBadInjection(t *testing.T) {
	e := sim.NewEnv()
	f := New(e, testConfig())
	f.MarkBad(3)
	e.Go("t", func(p *sim.Proc) {
		ppa := PPA(uint64(3) * uint64(f.Config().PagesPerBlock))
		if err := f.ProgramPage(p, ppa, nil); !errors.Is(err, ErrBadBlock) {
			t.Errorf("err = %v, want ErrBadBlock", err)
		}
	})
	e.Run()
}

// Property: any program/read pair on a fresh block returns the data
// written, zero-padded to page size.
func TestPropertyProgramReadIdentity(t *testing.T) {
	cfg := testConfig()
	f := func(data []byte, blkSeed uint8) bool {
		if len(data) > cfg.PageSize {
			data = data[:cfg.PageSize]
		}
		e := sim.NewEnv()
		fl := New(e, cfg)
		blk := int(blkSeed) % cfg.BlocksPerDie
		ok := true
		e.Go("t", func(p *sim.Proc) {
			ppa := cfg.PPAOf(0, blk, 0)
			if err := fl.ProgramPage(p, ppa, data); err != nil {
				ok = false
				return
			}
			got, err := fl.ReadPage(p, ppa)
			if err != nil {
				ok = false
				return
			}
			want := make([]byte, cfg.PageSize)
			copy(want, data)
			ok = bytes.Equal(got, want)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: PPA decomposition is a bijection over the whole array.
func TestPropertyPPABijection(t *testing.T) {
	cfg := testConfig()
	f := func(raw uint32) bool {
		ppa := PPA(uint64(raw) % uint64(cfg.Pages()))
		d, b, g := cfg.Decompose(ppa)
		return cfg.PPAOf(d, b, g) == ppa
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
