// Package nand models a NAND flash subsystem: channels, dies, blocks
// and pages with realistic timing (tR, tPROG, tERASE, channel transfer)
// and the physical constraints that shape every SSD design —
// erase-before-program, strictly sequential page programming within a
// block, and limited erase endurance.
//
// Pages carry real bytes (sparsely stored), so layers above can verify
// data integrity end to end, and all latency is charged on the sim
// clock: a die is a capacity-1 resource held for the array-operation
// time, a channel is a capacity-1 resource held for the transfer time.
package nand

import (
	"errors"
	"fmt"
	"sync"

	"twobssd/internal/fault"
	"twobssd/internal/histo"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// PPA is a physical page address: a dense index over every page in the
// flash array. See Config.PPA for the layout.
type PPA uint64

// BlockID is a dense index over every block in the flash array.
type BlockID uint32

// Config describes the geometry and timing of a flash subsystem.
type Config struct {
	Channels       int // independent I/O buses
	DiesPerChannel int // dies sharing one channel
	BlocksPerDie   int
	PagesPerBlock  int
	PageSize       int // bytes

	ReadLatency    sim.Duration // tR: array read into page register
	ProgramLatency sim.Duration // tPROG: page register into array
	EraseLatency   sim.Duration // tERASE: whole block

	ChannelMBps int // channel transfer rate, MB/s

	EnduranceCycles int // erases before a block goes bad (0 = unlimited)
}

// Validate reports a descriptive error for an unusable configuration.
func (c Config) Validate() error {
	switch {
	case c.Channels <= 0:
		return errors.New("nand: Channels must be > 0")
	case c.DiesPerChannel <= 0:
		return errors.New("nand: DiesPerChannel must be > 0")
	case c.BlocksPerDie <= 0:
		return errors.New("nand: BlocksPerDie must be > 0")
	case c.PagesPerBlock <= 0:
		return errors.New("nand: PagesPerBlock must be > 0")
	case c.PageSize <= 0:
		return errors.New("nand: PageSize must be > 0")
	case c.ChannelMBps <= 0:
		return errors.New("nand: ChannelMBps must be > 0")
	case c.ReadLatency < 0 || c.ProgramLatency < 0 || c.EraseLatency < 0:
		return errors.New("nand: latencies must be >= 0")
	}
	return nil
}

// Dies returns the total die count.
func (c Config) Dies() int { return c.Channels * c.DiesPerChannel }

// Blocks returns the total block count.
func (c Config) Blocks() int { return c.Dies() * c.BlocksPerDie }

// Pages returns the total page count.
func (c Config) Pages() int { return c.Blocks() * c.PagesPerBlock }

// CapacityBytes returns the raw capacity.
func (c Config) CapacityBytes() int64 {
	return int64(c.Pages()) * int64(c.PageSize)
}

// TransferTime returns the channel transfer time for n bytes.
func (c Config) TransferTime(n int) sim.Duration {
	if n <= 0 {
		return 0
	}
	// MB/s == bytes/µs: t_ns = n * 1000 / MBps.
	return sim.Duration(int64(n) * 1000 / int64(c.ChannelMBps))
}

// PPAOf composes a physical page address.
func (c Config) PPAOf(die, block, page int) PPA {
	return PPA((int64(die)*int64(c.BlocksPerDie)+int64(block))*int64(c.PagesPerBlock) + int64(page))
}

// Decompose splits a PPA into die, block-within-die and page indices.
func (c Config) Decompose(ppa PPA) (die, block, page int) {
	page = int(uint64(ppa) % uint64(c.PagesPerBlock))
	b := uint64(ppa) / uint64(c.PagesPerBlock)
	block = int(b % uint64(c.BlocksPerDie))
	die = int(b / uint64(c.BlocksPerDie))
	return
}

// BlockOf returns the dense block index containing ppa.
func (c Config) BlockOf(ppa PPA) BlockID {
	return BlockID(uint64(ppa) / uint64(c.PagesPerBlock))
}

// DieOf returns the die index of a PPA.
func (c Config) DieOf(ppa PPA) int {
	die, _, _ := c.Decompose(ppa)
	return die
}

// ChannelOf returns the channel a die is attached to (dies are
// interleaved across channels: die d sits on channel d mod Channels).
func (c Config) ChannelOf(die int) int { return die % c.Channels }

// Error values reported by flash operations.
var (
	ErrBadBlock     = errors.New("nand: block is bad")
	ErrNotErased    = errors.New("nand: program to unerased or out-of-order page")
	ErrOutOfRange   = errors.New("nand: address out of range")
	ErrWornOut      = errors.New("nand: block exceeded endurance")
	ErrPageTooLarge = errors.New("nand: data larger than page")

	// Injected-fault errors (internal/fault). ErrUncorrectable means a
	// read failed ECC even after every retry step — the FTL salvages
	// the data and retires the block. ErrProgramFailed/ErrEraseFailed
	// are grown defects: the op charged full latency but did not take.
	ErrUncorrectable = errors.New("nand: uncorrectable read")
	ErrProgramFailed = errors.New("nand: page program failed")
	ErrEraseFailed   = errors.New("nand: block erase failed")
)

type blockState struct {
	nextPage   int // next programmable page (sequential-program rule)
	eraseCount int
	bad        bool
}

// oobTag is the out-of-band metadata stored next to a page — the
// simulated spare area. The flash layer never interprets the tag; it
// carries whatever the host boundary computed (an integrity CRC in
// this stack) so upper layers can verify pages end to end.
type oobTag struct {
	tag    uint32
	tagged bool
}

// Stats aggregates operation counters for the flash array. The values
// are sourced from the environment's obs registry (metric names
// "nand.*"), so this snapshot and a metrics report can never disagree.
type Stats struct {
	PageReads    uint64
	PagePrograms uint64
	BlockErases  uint64
	BytesRead    uint64
	BytesWritten uint64
}

// Flash is a simulated NAND array bound to a sim.Env.
type Flash struct {
	env      *sim.Env
	cfg      Config
	channels []*sim.Resource
	dies     []*sim.Resource
	blocks   []blockState
	data     map[PPA][]byte
	spare    [][]byte // page buffers retired by EraseBlock, reused by programPage
	oob      map[PPA]oobTag

	o        *obs.Set
	chTrack  []string // precomputed trace track names (no per-op fmt)
	dieTrack []string

	// Fault injection (nil = disabled, the common case). progAt
	// tracks page program times for the retention term of the BER
	// model and exists only when an injector is installed, so the
	// fault-free datapath carries no extra bookkeeping.
	inj    *fault.Injector
	progAt map[PPA]sim.Time

	cReads, cPrograms, cErases *obs.Counter
	cBytesRead, cBytesWritten  *obs.Counter
	hRead, hProgram, hErase    *histo.H
}

// Channel and die names are identical for every Flash in the process,
// so they are formatted once and shared; tracks get the zero-padded
// variant so trace viewers sort them correctly.
var nameTab struct {
	sync.Mutex
	ch, chT, die, dieT []string
}

func nandNames(names, tracks *[]string, prefix string, n int) ([]string, []string) {
	nameTab.Lock()
	defer nameTab.Unlock()
	for len(*names) < n {
		i := len(*names)
		*names = append(*names, fmt.Sprintf("%s%d", prefix, i))
		*tracks = append(*tracks, fmt.Sprintf("%s%02d", prefix, i))
	}
	return (*names)[:n:n], (*tracks)[:n:n]
}

// New creates a flash array. It panics on an invalid configuration
// (construction-time misuse, not a runtime condition).
func New(env *sim.Env, cfg Config) *Flash {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	f := &Flash{
		env:    env,
		cfg:    cfg,
		blocks: make([]blockState, cfg.Blocks()),
		data:   make(map[PPA][]byte),
		oob:    make(map[PPA]oobTag),
		o:      obs.Of(env),
		inj:    fault.Of(env),
	}
	if f.inj != nil {
		f.progAt = make(map[PPA]sim.Time)
	}
	chNames, chTracks := nandNames(&nameTab.ch, &nameTab.chT, "nand.ch", cfg.Channels)
	f.chTrack = chTracks
	for i := 0; i < cfg.Channels; i++ {
		f.channels = append(f.channels, env.NewResource(chNames[i], 1))
	}
	dieNames, dieTracks := nandNames(&nameTab.die, &nameTab.dieT, "nand.die", cfg.Dies())
	f.dieTrack = dieTracks
	for i := 0; i < cfg.Dies(); i++ {
		f.dies = append(f.dies, env.NewResource(dieNames[i], 1))
	}
	reg := f.o.Registry()
	f.cReads = reg.Counter("nand.page_reads")
	f.cPrograms = reg.Counter("nand.page_programs")
	f.cErases = reg.Counter("nand.block_erases")
	f.cBytesRead = reg.Counter("nand.bytes_read")
	f.cBytesWritten = reg.Counter("nand.bytes_written")
	f.hRead = reg.Histo("nand.read_ns")
	f.hProgram = reg.Histo("nand.program_ns")
	f.hErase = reg.Histo("nand.erase_ns")
	reg.GaugeFunc("nand.die_busy_frac", func() float64 { return busyFrac(env, f.dies) })
	reg.GaugeFunc("nand.chan_busy_frac", func() float64 { return busyFrac(env, f.channels) })
	return f
}

// busyFrac is the mean fraction of elapsed virtual time the given
// resources were held — die/channel occupancy for the metrics report.
func busyFrac(env *sim.Env, rs []*sim.Resource) float64 {
	if env.Now() == 0 || len(rs) == 0 {
		return 0
	}
	var busy sim.Duration
	for _, r := range rs {
		busy += r.Busy()
	}
	return float64(busy) / (float64(env.Now()) * float64(len(rs)))
}

// Config returns the geometry/timing configuration.
func (f *Flash) Config() Config { return f.cfg }

// Stats returns a copy of the operation counters.
func (f *Flash) Stats() Stats {
	return Stats{
		PageReads:    f.cReads.Value(),
		PagePrograms: f.cPrograms.Value(),
		BlockErases:  f.cErases.Value(),
		BytesRead:    f.cBytesRead.Value(),
		BytesWritten: f.cBytesWritten.Value(),
	}
}

func (f *Flash) checkPPA(ppa PPA) error {
	if uint64(ppa) >= uint64(f.cfg.Pages()) {
		return ErrOutOfRange
	}
	return nil
}

// ReadPage performs an array read of one page and transfers it over the
// die's channel. The returned slice is a copy; never-written pages read
// back as zeroes (an erased page). With a fault injector installed the
// read may take stepped ECC retry latency or fail with
// ErrUncorrectable (wear- and retention-driven BER model).
func (f *Flash) ReadPage(p *sim.Proc, ppa PPA) ([]byte, error) {
	out, _, _, _, err := f.ReadPageTagged(p, ppa)
	return out, err
}

// ReadPageTagged is ReadPage plus the page's out-of-band tag (tagged
// reports whether one was ever programmed) and the number of ECC
// read-retry steps the read needed. retries > 0 means the page holds
// latent-but-correctable errors — the signal the background scrubber
// acts on before wear or retention pushes the page past the ECC budget.
func (f *Flash) ReadPageTagged(p *sim.Proc, ppa PPA) (data []byte, tag uint32, tagged bool, retries int, err error) {
	out := make([]byte, f.cfg.PageSize)
	tag, tagged, retries, err = f.ReadPageTaggedInto(p, ppa, out)
	if err != nil {
		return nil, 0, false, retries, err
	}
	return out, tag, tagged, retries, nil
}

// ReadPageTaggedInto is ReadPageTagged reading into a caller-provided
// buffer of at least PageSize bytes, so hot read paths can recycle one
// destination instead of allocating a page per read.
func (f *Flash) ReadPageTaggedInto(p *sim.Proc, ppa PPA, dst []byte) (tag uint32, tagged bool, retries int, err error) {
	tag, tagged, err = f.readTimedInto(p, ppa, dst)
	if err != nil {
		return 0, false, 0, err
	}
	if f.inj != nil {
		blk := f.cfg.BlockOf(ppa)
		var age sim.Duration
		if t, ok := f.progAt[ppa]; ok {
			age = sim.Duration(f.env.Now() - t)
		}
		rd := f.inj.ReadFault(f.cfg.PageSize, f.blocks[blk].eraseCount, age)
		if rd.Retries > 0 {
			p.Sleep(rd.Extra)
			retries = rd.Retries
		}
		if rd.Uncorrectable {
			return 0, false, retries, fmt.Errorf("%w: ppa %d", ErrUncorrectable, uint64(ppa))
		}
	}
	return tag, tagged, retries, nil
}

// SalvageRead is the FTL's last-resort read of an uncorrectable page:
// full array/channel timing, no fault injection. The model keeps page
// bytes intact, so salvage always yields the data — the realism is in
// the latency already paid on retries and in the block retirement that
// follows.
func (f *Flash) SalvageRead(p *sim.Proc, ppa PPA) ([]byte, error) {
	data, _, _, err := f.readTimed(p, ppa)
	return data, err
}

// SalvageReadTagged is SalvageRead plus the page's out-of-band tag, so
// relocation paths can carry the integrity tag along with rescued data.
func (f *Flash) SalvageReadTagged(p *sim.Proc, ppa PPA) (data []byte, tag uint32, tagged bool, err error) {
	return f.readTimed(p, ppa)
}

func (f *Flash) readTimed(p *sim.Proc, ppa PPA) ([]byte, uint32, bool, error) {
	out := make([]byte, f.cfg.PageSize)
	tag, tagged, err := f.readTimedInto(p, ppa, out)
	if err != nil {
		return nil, 0, false, err
	}
	return out, tag, tagged, nil
}

func (f *Flash) readTimedInto(p *sim.Proc, ppa PPA, dst []byte) (uint32, bool, error) {
	if err := f.checkPPA(ppa); err != nil {
		return 0, false, err
	}
	die := f.cfg.DieOf(ppa)
	ch := f.cfg.ChannelOf(die)
	start := f.env.Now()
	tr := f.o.Tracer()
	// Spans cover only the hold (the die/channel occupancy); the
	// histogram covers the whole op including queueing.
	f.dies[die].Acquire(p)
	sp := tr.Begin(f.dieTrack[die], "nand", "tR")
	p.Sleep(f.cfg.ReadLatency)
	sp.End()
	f.dies[die].Release()
	f.channels[ch].Acquire(p)
	sp = tr.Begin(f.chTrack[ch], "nand", "xfer_out")
	p.Sleep(f.cfg.TransferTime(f.cfg.PageSize))
	sp.End()
	f.channels[ch].Release()
	f.cReads.Inc()
	f.cBytesRead.Add(uint64(f.cfg.PageSize))
	f.hRead.Observe(sim.Duration(f.env.Now() - start))
	dst = dst[:f.cfg.PageSize]
	n := copy(dst, f.data[ppa])
	for i := n; i < len(dst); i++ { // unprogrammed pages read as zeroes
		dst[i] = 0
	}
	t := f.oob[ppa]
	return t.tag, t.tagged, nil
}

// ProgramPage transfers data over the channel and programs one page.
// Data shorter than a page is zero-padded. Programming must follow the
// block's sequential-page order on an erased block.
func (f *Flash) ProgramPage(p *sim.Proc, ppa PPA, data []byte) error {
	return f.programPage(p, ppa, data, oobTag{})
}

// ProgramPageTagged is ProgramPage plus an out-of-band tag programmed
// into the page's spare area alongside the data. The flash layer never
// interprets the tag; ReadPageTagged hands it back on every read.
func (f *Flash) ProgramPageTagged(p *sim.Proc, ppa PPA, data []byte, tag uint32) error {
	return f.programPage(p, ppa, data, oobTag{tag: tag, tagged: true})
}

func (f *Flash) programPage(p *sim.Proc, ppa PPA, data []byte, t oobTag) error {
	if err := f.checkPPA(ppa); err != nil {
		return err
	}
	if len(data) > f.cfg.PageSize {
		return ErrPageTooLarge
	}
	die, _, page := f.cfg.Decompose(ppa)
	blk := &f.blocks[f.cfg.BlockOf(ppa)]
	if blk.bad {
		return ErrBadBlock
	}
	if page != blk.nextPage {
		return fmt.Errorf("%w: block %d page %d (next programmable %d)",
			ErrNotErased, f.cfg.BlockOf(ppa), page, blk.nextPage)
	}
	ch := f.cfg.ChannelOf(die)
	start := f.env.Now()
	tr := f.o.Tracer()
	f.channels[ch].Acquire(p)
	sp := tr.Begin(f.chTrack[ch], "nand", "xfer_in")
	p.Sleep(f.cfg.TransferTime(f.cfg.PageSize))
	sp.End()
	f.channels[ch].Release()
	f.dies[die].Acquire(p)
	sp = tr.Begin(f.dieTrack[die], "nand", "tPROG")
	p.Sleep(f.cfg.ProgramLatency)
	sp.End()
	f.dies[die].Release()
	if f.inj != nil && f.inj.ProgramFault() {
		// Grown defect: full latency charged, page not programmed.
		// The FTL retires the block and retries elsewhere.
		return fmt.Errorf("%w: block %d page %d", ErrProgramFailed, f.cfg.BlockOf(ppa), page)
	}
	blk.nextPage++
	var stored []byte
	if n := len(f.spare); n > 0 {
		stored = f.spare[n-1]
		f.spare[n-1] = nil
		f.spare = f.spare[:n-1]
	} else {
		stored = make([]byte, f.cfg.PageSize)
	}
	n := copy(stored, data)
	for i := n; i < len(stored); i++ { // short writes are zero-padded
		stored[i] = 0
	}
	f.data[ppa] = stored
	if t.tagged {
		f.oob[ppa] = t
	} else {
		delete(f.oob, ppa)
	}
	f.cPrograms.Inc()
	f.cBytesWritten.Add(uint64(f.cfg.PageSize))
	f.hProgram.Observe(sim.Duration(f.env.Now() - start))
	if f.inj != nil {
		f.progAt[ppa] = f.env.Now()
		f.inj.Tick(fault.EvNandProgram)
	}
	return nil
}

// EraseBlock erases a whole block, making its pages programmable again.
// When the block's erase count passes the configured endurance the
// block is retired and ErrWornOut is returned.
func (f *Flash) EraseBlock(p *sim.Proc, blk BlockID) error {
	if uint64(blk) >= uint64(f.cfg.Blocks()) {
		return ErrOutOfRange
	}
	bs := &f.blocks[blk]
	if bs.bad {
		return ErrBadBlock
	}
	die := int(uint64(blk) / uint64(f.cfg.BlocksPerDie))
	start := f.env.Now()
	f.dies[die].Acquire(p)
	sp := f.o.Tracer().Begin(f.dieTrack[die], "nand", "tERASE")
	p.Sleep(f.cfg.EraseLatency)
	sp.End()
	f.dies[die].Release()
	if f.inj != nil && f.inj.EraseFault() {
		// Erase failure is a grown defect: the block is retired on
		// the spot, its contents and program state untouched.
		bs.bad = true
		return fmt.Errorf("%w: block %d", ErrEraseFailed, blk)
	}
	bs.eraseCount++
	bs.nextPage = 0
	f.cErases.Inc()
	f.hErase.Observe(sim.Duration(f.env.Now() - start))
	base := PPA(uint64(blk) * uint64(f.cfg.PagesPerBlock))
	for i := 0; i < f.cfg.PagesPerBlock; i++ {
		if pg, ok := f.data[base+PPA(i)]; ok {
			f.spare = append(f.spare, pg)
			delete(f.data, base+PPA(i))
		}
		delete(f.oob, base+PPA(i))
		if f.inj != nil {
			delete(f.progAt, base+PPA(i))
		}
	}
	if f.cfg.EnduranceCycles > 0 && bs.eraseCount >= f.cfg.EnduranceCycles {
		bs.bad = true
		return ErrWornOut
	}
	return nil
}

// MarkBad retires a block — the FTL calls this after uncorrectable
// reads or program failures (and tests use it for direct injection).
func (f *Flash) MarkBad(blk BlockID) {
	f.blocks[blk].bad = true
}

// IsBad reports whether a block has been retired.
func (f *Flash) IsBad(blk BlockID) bool { return f.blocks[blk].bad }

// EraseCount reports a block's erase cycles.
func (f *Flash) EraseCount(blk BlockID) int { return f.blocks[blk].eraseCount }

// NextPage reports the next programmable page index of a block.
func (f *Flash) NextPage(blk BlockID) int { return f.blocks[blk].nextPage }

// PeekPage returns the stored contents of a page without timing or
// counters — a debugging/verification hook for tests and recovery
// assertions, not a datapath.
func (f *Flash) PeekPage(ppa PPA) []byte {
	out := make([]byte, f.cfg.PageSize)
	copy(out, f.data[ppa])
	return out
}

// PeekTag returns a page's out-of-band tag and whether one was
// programmed — the verification-hook counterpart of PeekPage.
func (f *Flash) PeekTag(ppa PPA) (uint32, bool) {
	t := f.oob[ppa]
	return t.tag, t.tagged
}

// CorruptPage flips the low bit of the first n stored bytes of a page —
// the silent-corruption hook the integrity tests use to prove the CRC
// tags actually detect a page a layer mangled in flight. The BER fault
// model perturbs *latency* and verdicts while keeping bytes intact;
// this hook is how tests make bytes lie. Returns false when the page
// was never programmed (nothing to corrupt).
func (f *Flash) CorruptPage(ppa PPA, n int) bool {
	data, ok := f.data[ppa]
	if !ok {
		return false
	}
	if n > len(data) {
		n = len(data)
	}
	for i := 0; i < n; i++ {
		data[i] ^= 1
	}
	return true
}
