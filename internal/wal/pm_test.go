package wal

import (
	"bytes"
	"testing"

	"twobssd/internal/sim"
)

func TestPMCommitIsFastAndDurable(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", PM)
	r.env.Go("t", func(p *sim.Proc) {
		lsn, err := l.Append(p, bytes.Repeat([]byte{3}, 100))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		start := r.env.Now()
		if err := l.Commit(p, lsn); err != nil {
			t.Fatalf("commit: %v", err)
		}
		took := sim.Duration(r.env.Now() - start)
		if took > sim.Microsecond {
			t.Errorf("PM commit took %v, want sub-µs", took)
		}
		if l.DurableOff() != int64(lsn) {
			t.Error("PM commit did not advance durability")
		}
		// Device flush lags (write-behind) until Drain.
		if err := l.Drain(p); err != nil {
			t.Fatalf("drain: %v", err)
		}
		if l.flushedOff != l.appendOff {
			t.Error("drain did not flush to device")
		}
	})
	r.env.Run()
}

func TestPMModeRecoversFromDeviceCopy(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", PM)
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 10; i++ {
			lsn, _ := l.Append(p, []byte{byte(i)})
			l.Commit(p, lsn)
		}
		l.Drain(p)
	})
	r.env.Run()
	l2, _ := Open(r.env, Config{Mode: PM, File: l.cfg.File, SegmentBytes: l.cfg.SegmentBytes})
	n := 0
	r.env.Go("rec", func(p *sim.Proc) {
		l2.Recover(p, func(LSN, []byte) error { n++; return nil })
	})
	r.env.Run()
	if n != 10 {
		t.Fatalf("recovered %d, want 10", n)
	}
}
