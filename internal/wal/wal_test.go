package wal

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"testing/quick"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
)

// rig bundles a small simulated stack for WAL tests.
type rig struct {
	env *sim.Env
	ssd *core.TwoBSSD
	fs  *vfs.FS
}

func newRig() *rig {
	e := sim.NewEnv()
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 32
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.2
	cfg.Base.WriteBufferPages = 64
	cfg.Base.DrainWorkers = 4
	cfg.BABufferBytes = 64 * 4096 // 64-page BA-buffer
	ssd := core.New(e, cfg)
	return &rig{env: e, ssd: ssd, fs: vfs.New(ssd.Device())}
}

// openLog creates a fresh file + log in the given mode.
func (r *rig) openLog(t *testing.T, name string, mode CommitMode) *Log {
	t.Helper()
	segBytes := 16 * 4096 // quarter of the BA-buffer per half
	f, err := r.fs.Create(name, int64(8*segBytes))
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	cfg := Config{
		Mode:         mode,
		File:         f,
		SegmentBytes: segBytes,
		SSD:          r.ssd,
		EIDs:         []core.EID{0, 1},
		BufferOffset: 0,
		DoubleBuffer: true,
	}
	l, err := Open(r.env, cfg)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func TestOpenValidation(t *testing.T) {
	r := newRig()
	if _, err := Open(r.env, Config{Mode: Sync}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("nil file: err = %v", err)
	}
	f, _ := r.fs.Create("f", 1<<20)
	if _, err := Open(r.env, Config{Mode: BA, File: f}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("BA without SSD: err = %v", err)
	}
	if _, err := Open(r.env, Config{Mode: BA, File: f, SSD: r.ssd, SegmentBytes: 4096}); !errors.Is(err, ErrBadConfig) {
		t.Errorf("BA without EIDs: err = %v", err)
	}
}

func TestModeString(t *testing.T) {
	if Sync.String() != "SYNC" || Async.String() != "ASYNC" || BA.String() != "BA" {
		t.Fatal("mode strings wrong")
	}
	if CommitMode(9).String() == "" {
		t.Fatal("unknown mode string empty")
	}
}

func appendCommitRecover(t *testing.T, mode CommitMode) {
	r := newRig()
	l := r.openLog(t, "log", mode)
	var want [][]byte
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 50; i++ {
			payload := []byte(fmt.Sprintf("record-%03d-%s", i, bytes.Repeat([]byte{byte(i)}, i%60)))
			want = append(want, payload)
			lsn, err := l.Append(p, payload)
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			if err := l.Commit(p, lsn); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
		}
		if err := l.FlushToNAND(p); err != nil {
			t.Fatalf("flush: %v", err)
		}
	})
	r.env.Run()

	// Recover with a fresh Log over the same file.
	l2, err := Open(r.env, Config{
		Mode: mode, File: l.cfg.File, SegmentBytes: l.cfg.SegmentBytes,
		SSD: r.ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true,
	})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var got [][]byte
	r.env.Go("rec", func(p *sim.Proc) {
		if err := l2.Recover(p, func(_ LSN, payload []byte) error {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			got = append(got, cp)
			return nil
		}); err != nil {
			t.Fatalf("recover: %v", err)
		}
	})
	r.env.Run()
	if len(got) != len(want) {
		t.Fatalf("recovered %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
	if l2.AppendOff() != l.AppendOff() {
		t.Fatalf("append offset %d != %d", l2.AppendOff(), l.AppendOff())
	}
}

func TestAppendCommitRecoverSync(t *testing.T)  { appendCommitRecover(t, Sync) }
func TestAppendCommitRecoverAsync(t *testing.T) { appendCommitRecover(t, Async) }
func TestAppendCommitRecoverBA(t *testing.T)    { appendCommitRecover(t, BA) }

func TestBACommitFasterThanSync(t *testing.T) {
	// The core quantitative claim (Section V-C: up to 26x): a BA commit
	// costs ~1 µs while a block commit costs >= the device write+flush.
	measure := func(mode CommitMode) sim.Duration {
		r := newRig()
		l := r.openLog(t, "log", mode)
		r.env.Go("t", func(p *sim.Proc) {
			for i := 0; i < 20; i++ {
				lsn, err := l.Append(p, bytes.Repeat([]byte{1}, 128))
				if err != nil {
					t.Fatalf("append: %v", err)
				}
				if err := l.Commit(p, lsn); err != nil {
					t.Fatalf("commit: %v", err)
				}
			}
		})
		r.env.Run()
		return l.Stats().AvgCommit()
	}
	ba, syn := measure(BA), measure(Sync)
	if ba >= syn {
		t.Fatalf("BA commit %v not faster than sync %v", ba, syn)
	}
	ratio := float64(syn) / float64(ba)
	if ratio < 5 {
		t.Fatalf("sync/BA commit ratio = %.1f, want >= 5 (paper: up to 26x)", ratio)
	}
}

func TestAsyncCommitIsImmediate(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", Async)
	r.env.Go("t", func(p *sim.Proc) {
		lsn, _ := l.Append(p, []byte("x"))
		start := r.env.Now()
		l.Commit(p, lsn)
		if r.env.Now() != start {
			t.Error("async commit took time")
		}
		if l.DurableOff() != 0 {
			t.Error("async commit claimed durability")
		}
	})
	r.env.Run() // background flush fires before Run drains
	if l.DurableOff() == 0 {
		t.Fatal("async background flush never ran")
	}
}

func TestGroupCommitSharesFlush(t *testing.T) {
	// N concurrent committers must produce far fewer than N fsyncs.
	r := newRig()
	l := r.openLog(t, "log", Sync)
	const n = 16
	for i := 0; i < n; i++ {
		r.env.Go("client", func(p *sim.Proc) {
			lsn, err := l.Append(p, bytes.Repeat([]byte{2}, 64))
			if err != nil {
				t.Errorf("append: %v", err)
				return
			}
			if err := l.Commit(p, lsn); err != nil {
				t.Errorf("commit: %v", err)
			}
		})
	}
	r.env.Run()
	if f := l.Stats().Flushes; f >= n/2 {
		t.Fatalf("flushes = %d for %d clients; group commit broken", f, n)
	}
	if l.DurableOff() != l.AppendOff() {
		t.Fatal("not all records durable")
	}
}

func TestSegmentRolloverAndPadding(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", BA)
	seg := l.cfg.SegmentBytes
	recPayload := seg/2 - headerBytes - 100 // two won't fit in one segment
	var lsns []LSN
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 6; i++ {
			lsn, err := l.Append(p, bytes.Repeat([]byte{byte(i + 1)}, recPayload))
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			if err := l.Commit(p, lsn); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
			lsns = append(lsns, lsn)
		}
		l.FlushToNAND(p)
	})
	r.env.Run()
	if l.Stats().PadBytes == 0 {
		t.Fatal("expected padding at segment boundaries")
	}
	// All records must survive recovery across the padding.
	l2, _ := Open(r.env, Config{Mode: BA, File: l.cfg.File, SegmentBytes: seg,
		SSD: r.ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true})
	count := 0
	r.env.Go("rec", func(p *sim.Proc) {
		l2.Recover(p, func(_ LSN, payload []byte) error {
			count++
			return nil
		})
	})
	r.env.Run()
	if count != 6 {
		t.Fatalf("recovered %d records, want 6", count)
	}
}

func TestRecordTooLarge(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", BA)
	r.env.Go("t", func(p *sim.Proc) {
		if _, err := l.Append(p, make([]byte, l.cfg.SegmentBytes)); !errors.Is(err, ErrTooLarge) {
			t.Errorf("err = %v", err)
		}
	})
	r.env.Run()
}

func TestLogFull(t *testing.T) {
	r := newRig()
	seg := 4 * 4096
	f, _ := r.fs.Create("small", int64(seg))
	l, err := Open(r.env, Config{Mode: Sync, File: f, SegmentBytes: seg})
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("t", func(p *sim.Proc) {
		payload := make([]byte, 4000)
		sawFull := false
		for i := 0; i < 10; i++ {
			if _, err := l.Append(p, payload); errors.Is(err, ErrLogFull) {
				sawFull = true
				break
			}
		}
		if !sawFull {
			t.Error("never hit ErrLogFull")
		}
		// Reset makes room again.
		if err := l.Reset(p); err != nil {
			t.Fatalf("reset: %v", err)
		}
		if _, err := l.Append(p, payload); err != nil {
			t.Errorf("append after reset: %v", err)
		}
	})
	r.env.Run()
}

func TestResetPreventsResurrection(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", Sync)
	r.env.Go("t", func(p *sim.Proc) {
		lsn, _ := l.Append(p, []byte("old-record"))
		l.Commit(p, lsn)
		if err := l.Reset(p); err != nil {
			t.Fatalf("reset: %v", err)
		}
	})
	r.env.Run()
	l2, _ := Open(r.env, Config{Mode: Sync, File: l.cfg.File, SegmentBytes: l.cfg.SegmentBytes})
	count := 0
	r.env.Go("rec", func(p *sim.Proc) {
		l2.Recover(p, func(LSN, []byte) error { count++; return nil })
	})
	r.env.Run()
	if count != 0 {
		t.Fatalf("recovered %d pre-reset records", count)
	}
}

func TestBAWALSurvivesPowerLoss(t *testing.T) {
	// The paper's headline guarantee: BA-committed transactions survive
	// a crash with no risk of data loss.
	r := newRig()
	l := r.openLog(t, "log", BA)
	var committed [][]byte
	r.env.Go("t", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			payload := []byte(fmt.Sprintf("txn-%02d", i))
			lsn, err := l.Append(p, payload)
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			if err := l.Commit(p, lsn); err != nil {
				t.Fatalf("commit: %v", err)
			}
			committed = append(committed, payload)
		}
		// One more record appended but NOT committed: may be lost.
		l.Append(p, []byte("uncommitted"))

		if _, err := r.ssd.PowerLoss(p); err != nil {
			t.Fatalf("power loss: %v", err)
		}
		if err := r.ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
	})
	r.env.Run()

	l2, _ := Open(r.env, Config{Mode: BA, File: l.cfg.File, SegmentBytes: l.cfg.SegmentBytes,
		SSD: r.ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true})
	var got [][]byte
	r.env.Go("rec", func(p *sim.Proc) {
		if err := l2.Recover(p, func(_ LSN, payload []byte) error {
			cp := make([]byte, len(payload))
			copy(cp, payload)
			got = append(got, cp)
			return nil
		}); err != nil {
			t.Fatalf("recover: %v", err)
		}
	})
	r.env.Run()
	if len(got) < len(committed) {
		t.Fatalf("lost committed records: got %d, committed %d", len(got), len(committed))
	}
	for i, w := range committed {
		if !bytes.Equal(got[i], w) {
			t.Fatalf("record %d corrupted: %q", i, got[i])
		}
	}
}

func TestBAWALDoubleBufferingParallelism(t *testing.T) {
	// With double buffering, appends into the next segment overlap the
	// flush of the previous one; single buffering stalls. Fill several
	// segments and compare total time.
	fill := func(double bool) sim.Duration {
		r := newRig()
		seg := 16 * 4096
		f, _ := r.fs.Create("log", int64(8*seg))
		eids := []core.EID{0}
		if double {
			eids = []core.EID{0, 1}
		}
		l, err := Open(r.env, Config{Mode: BA, File: f, SegmentBytes: seg,
			SSD: r.ssd, EIDs: eids, DoubleBuffer: double})
		if err != nil {
			t.Fatal(err)
		}
		r.env.Go("t", func(p *sim.Proc) {
			payload := make([]byte, 2048)
			for i := 0; i < 120; i++ { // ~4 segments
				lsn, err := l.Append(p, payload)
				if err != nil {
					t.Fatalf("append: %v", err)
				}
				l.Commit(p, lsn)
			}
		})
		r.env.Run()
		return sim.Duration(r.env.Now())
	}
	d, s := fill(true), fill(false)
	if d >= s {
		t.Fatalf("double buffering (%v) not faster than single (%v)", d, s)
	}
}

func TestStatsAccounting(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", Sync)
	r.env.Go("t", func(p *sim.Proc) {
		lsn, _ := l.Append(p, []byte("abc"))
		l.Commit(p, lsn)
	})
	r.env.Run()
	st := l.Stats()
	if st.Appends != 1 || st.Commits != 1 || st.Flushes == 0 {
		t.Fatalf("stats = %+v", st)
	}
	if st.BytesAppended != uint64(3+headerBytes) {
		t.Fatalf("bytes = %d", st.BytesAppended)
	}
	if st.AvgCommit() <= 0 {
		t.Fatal("no commit time recorded")
	}
	var empty Stats
	if empty.AvgCommit() != 0 {
		t.Fatal("AvgCommit of empty stats")
	}
}

func TestTornRecordStopsRecovery(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", Sync)
	r.env.Go("t", func(p *sim.Proc) {
		lsn, _ := l.Append(p, []byte("good"))
		l.Commit(p, lsn)
		l.Append(p, []byte("never-committed"))
		// Simulate a torn tail: flush only happened for the first.
	})
	r.env.Run()
	l2, _ := Open(r.env, Config{Mode: Sync, File: l.cfg.File, SegmentBytes: l.cfg.SegmentBytes})
	var got []string
	r.env.Go("rec", func(p *sim.Proc) {
		l2.Recover(p, func(_ LSN, payload []byte) error {
			got = append(got, string(payload))
			return nil
		})
	})
	r.env.Run()
	if len(got) != 1 || got[0] != "good" {
		t.Fatalf("recovered %v, want [good]", got)
	}
}

// Property: with any number of concurrent appenders, every committed
// record survives recovery intact and exactly once.
func TestPropertyConcurrentAppendersRecoverable(t *testing.T) {
	for _, clients := range []int{2, 5, 9} {
		for _, mode := range []CommitMode{Sync, BA} {
			r := newRig()
			l := r.openLog(t, "log", mode)
			type rec struct{ c, i int }
			committed := make(map[string]bool)
			for c := 0; c < clients; c++ {
				c := c
				r.env.Go("client", func(p *sim.Proc) {
					for i := 0; i < 12; i++ {
						payload := []byte(fmt.Sprintf("c%d-i%d", c, i))
						lsn, err := l.Append(p, payload)
						if err != nil {
							t.Errorf("append: %v", err)
							return
						}
						if err := l.Commit(p, lsn); err != nil {
							t.Errorf("commit: %v", err)
							return
						}
						committed[string(payload)] = true
					}
				})
			}
			r.env.Run()
			r.env.Go("finish", func(p *sim.Proc) {
				if err := l.FlushToNAND(p); err != nil {
					t.Errorf("flush: %v", err)
				}
			})
			r.env.Run()

			l2, err := Open(r.env, Config{Mode: mode, File: l.cfg.File,
				SegmentBytes: l.cfg.SegmentBytes, SSD: r.ssd,
				EIDs: []core.EID{0, 1}, DoubleBuffer: true})
			if err != nil {
				t.Fatal(err)
			}
			seen := make(map[string]int)
			r.env.Go("rec", func(p *sim.Proc) {
				l2.Recover(p, func(_ LSN, payload []byte) error {
					seen[string(payload)]++
					return nil
				})
			})
			r.env.Run()
			if len(seen) != len(committed) {
				t.Fatalf("mode=%v clients=%d: recovered %d of %d records",
					mode, clients, len(seen), len(committed))
			}
			for k, n := range seen {
				if n != 1 || !committed[k] {
					t.Fatalf("mode=%v: record %q seen %d times (committed=%v)",
						mode, k, n, committed[k])
				}
			}
		}
	}
}

func TestAppendCPUCharged(t *testing.T) {
	r := newRig()
	f, _ := r.fs.Create("cpu", 1<<20)
	l, err := Open(r.env, Config{Mode: Async, File: f, AppendCPU: 5 * sim.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	r.env.Go("t", func(p *sim.Proc) {
		start := r.env.Now()
		l.Append(p, []byte("x"))
		if took := sim.Duration(r.env.Now() - start); took < 5*sim.Microsecond {
			t.Errorf("append took %v, want >= 5us of CPU", took)
		}
	})
	r.env.Run()
}

// Property: recovery over an arbitrarily corrupted log file never
// panics and yields a prefix of the committed records.
func TestPropertyRecoveryToleratesCorruption(t *testing.T) {
	base := func() (*rig, *Log, [][]byte) {
		r := newRig()
		l := r.openLog(t, "log", Sync)
		var records [][]byte
		r.env.Go("t", func(p *sim.Proc) {
			for i := 0; i < 30; i++ {
				payload := []byte(fmt.Sprintf("record-%02d", i))
				records = append(records, payload)
				lsn, _ := l.Append(p, payload)
				l.Commit(p, lsn)
			}
		})
		r.env.Run()
		return r, l, records
	}
	prop := func(offRaw uint16, val byte) bool {
		r, l, records := base()
		// Corrupt one byte somewhere in the written region.
		ok := true
		r.env.Go("corrupt", func(p *sim.Proc) {
			end := l.AppendOff()
			off := int64(offRaw) % end
			buf := make([]byte, 1)
			if err := l.cfg.File.ReadAt(p, off, buf); err != nil {
				ok = false
				return
			}
			buf[0] ^= val | 1 // guarantee a change
			if err := l.cfg.File.WriteAt(p, off, buf); err != nil {
				ok = false
				return
			}
			l2, err := Open(r.env, Config{Mode: Sync, File: l.cfg.File,
				SegmentBytes: l.cfg.SegmentBytes})
			if err != nil {
				ok = false
				return
			}
			i := 0
			err = l2.Recover(p, func(_ LSN, payload []byte) error {
				// Every recovered record must be an exact prefix match.
				if i >= len(records) || !bytes.Equal(payload, records[i]) {
					ok = false
				}
				i++
				return nil
			})
			if err != nil {
				ok = false
			}
		})
		r.env.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
