// Package wal implements write-ahead logging over the simulated
// storage stack, with the three commit modes the paper compares
// (Fig 5):
//
//   - Sync:  the conventional scheme — records staged in host memory,
//     page-aligned block writes plus fsync on commit, with standard
//     group commit so concurrent committers share one flush.
//   - Async: commits return immediately; a background flush runs after
//     a configurable interval. Maximum throughput, open loss window.
//   - BA:    the paper's BA-WAL — records are appended straight onto
//     the 2B-SSD BA-buffer with MMIO stores, committed with BA_SYNC
//     (clflush+mfence+write-verify read), and whole segments are
//     flushed to NAND in the background with BA_FLUSH, double-buffered
//     so logging and flushing proceed in parallel (Section IV-B).
//
// Record format (little endian):
//
//	[4] payload length
//	[4] CRC-32 (IEEE) of the payload
//	[8] stream position of the record start (guards against stale data
//	    in recycled segments)
//	[n] payload
//
// Records never straddle a segment boundary; a length field of
// 0xFFFFFFFF is a padding marker meaning "skip to the next segment
// boundary", and a zero length field means end of log.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/ftl"
	"twobssd/internal/histo"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
)

// CommitMode selects the durability protocol.
type CommitMode int

// The commit modes: the three of Fig 5 plus PM, the heterogeneous
// memory architecture of Fig 10 (records persist in a host persistent
// memory buffer at commit and flush to the log device lazily, as in
// NVWAL-style designs).
const (
	Sync CommitMode = iota
	Async
	BA
	PM
	// PMR models an NVMe Persistent-Memory-Region SSD (the Section VII
	// comparison): records append to device NVRAM over MMIO like BA,
	// but there is NO internal datapath — filled segments must be DMA-
	// read back to the host and written to the file through the block
	// I/O stack.
	PMR
)

func (m CommitMode) String() string {
	switch m {
	case Sync:
		return "SYNC"
	case Async:
		return "ASYNC"
	case BA:
		return "BA"
	case PM:
		return "PM"
	case PMR:
		return "PMR"
	default:
		return fmt.Sprintf("CommitMode(%d)", int(m))
	}
}

// LSN is a log sequence number: the stream offset just past a record.
type LSN uint64

const headerBytes = 16

// padMarker in the length field tells recovery to skip to the next
// segment boundary.
const padMarker = 0xFFFFFFFF

// Errors reported by the log.
var (
	ErrLogFull   = errors.New("wal: log file full (checkpoint required)")
	ErrTooLarge  = errors.New("wal: record larger than a segment")
	ErrBadConfig = errors.New("wal: invalid configuration")
)

// Config assembles a log.
type Config struct {
	Mode CommitMode

	// File is the backing log file (all modes). In BA mode it provides
	// the NAND LBA ranges the BA-buffer segments pin onto.
	File *vfs.File

	// SegmentBytes is the unit records must not straddle. In BA mode
	// it is the pinned-window size (half the BA-buffer with double
	// buffering, per the paper); block modes may leave it zero to use
	// the whole file as one segment.
	SegmentBytes int

	// BA-mode plumbing.
	SSD          *core.TwoBSSD
	EIDs         []core.EID // one entry per buffer half
	BufferOffset int        // base of this log's window in the BA-buffer
	DoubleBuffer bool       // pin the next segment while flushing the last

	// AsyncFlushInterval bounds the loss window in Async mode and sets
	// the PM mode's lazy write-behind cadence.
	AsyncFlushInterval sim.Duration

	// PMPersistCost is the PM-mode commit cost: a DRAM-latency store
	// plus cache-line flush into the emulated persistent memory.
	PMPersistCost sim.Duration

	// AppendCPU charges per-append host CPU work (encode + memcpy).
	AppendCPU sim.Duration

	// BaseLSN offsets the stream-position stamp written into record
	// headers: a record starting at local position p is stamped
	// BaseLSN+p, and Recover requires the stamps to match. The
	// segmented lifecycle (segmented.go) gives each segment file a
	// distinct base so records left over in a recycled ring slot
	// self-invalidate on the next scan. Zero (the default) keeps the
	// original stamp == position scheme.
	BaseLSN int64
}

// Stats aggregates log activity.
type Stats struct {
	Appends       uint64
	Commits       uint64
	Flushes       uint64 // block fsyncs or BA_FLUSH calls
	BytesAppended uint64
	PadBytes      uint64
	CommitTime    sim.Duration // total virtual time spent inside Commit
}

// AvgCommit returns the mean commit latency.
func (s Stats) AvgCommit() sim.Duration {
	if s.Commits == 0 {
		return 0
	}
	return s.CommitTime / sim.Duration(s.Commits)
}

type half struct {
	eid    core.EID
	bufOff int   // byte offset of this half in the BA-buffer
	seg    int64 // segment index currently pinned, -1 if none
	ready  bool  // not mid-flush
	sig    *sim.Signal
}

// Log is one write-ahead log.
type Log struct {
	env *sim.Env
	cfg Config
	ps  int

	appendOff  int64
	durableOff int64
	flushedOff int64 // device-flush cursor (differs from durable in PM mode)

	mu *sim.Resource // serializes offset reservation and rollover

	// Block-mode state.
	stage          []byte
	flushing       bool
	flushed        *sim.Signal
	asyncScheduled bool

	// BA-mode state.
	halves []*half

	// recPool recycles Append's record-encoding buffers. A freelist
	// rather than a single scratch because l.mu is released before the
	// staged copy/MMIO write, so concurrent appenders each hold one.
	recPool [][]byte

	// Metrics ("wal.*" in the obs registry; Stats() reads them back —
	// CommitTime is the commit-latency histogram's exact sum).
	o                  *obs.Set
	inj                *fault.Injector
	cAppends, cCommits *obs.Counter
	cFlushes           *obs.Counter
	cBytes, cPadBytes  *obs.Counter
	hCommit            *histo.H
}

// Open builds a log over cfg. The file is assumed fresh or previously
// Reset; call Recover to resume an existing log.
func Open(env *sim.Env, cfg Config) (*Log, error) {
	if cfg.File == nil {
		return nil, fmt.Errorf("%w: nil File", ErrBadConfig)
	}
	if cfg.SegmentBytes == 0 {
		cfg.SegmentBytes = int(cfg.File.Capacity())
	}
	ps := int64(4096)
	if cfg.SSD != nil {
		ps = int64(cfg.SSD.PageSize())
	}
	if cfg.Mode == BA || cfg.Mode == PMR {
		if cfg.SSD == nil {
			return nil, fmt.Errorf("%w: BA/PMR mode needs an SSD", ErrBadConfig)
		}
		n := 1
		if cfg.DoubleBuffer {
			n = 2
		}
		if len(cfg.EIDs) < n {
			return nil, fmt.Errorf("%w: BA mode needs %d EIDs", ErrBadConfig, n)
		}
		if cfg.SegmentBytes%int(ps) != 0 || cfg.SegmentBytes <= 0 {
			return nil, fmt.Errorf("%w: SegmentBytes must be page aligned", ErrBadConfig)
		}
		if int64(cfg.SegmentBytes) > cfg.File.Capacity() {
			return nil, fmt.Errorf("%w: segment larger than file", ErrBadConfig)
		}
	}
	if (cfg.Mode == Async || cfg.Mode == PM) && cfg.AsyncFlushInterval <= 0 {
		cfg.AsyncFlushInterval = 10 * sim.Millisecond
	}
	if cfg.Mode == PM && cfg.PMPersistCost <= 0 {
		cfg.PMPersistCost = 200 * sim.Nanosecond
	}
	l := &Log{
		env:     env,
		cfg:     cfg,
		ps:      int(ps),
		mu:      env.NewResource("wal.mu", 1),
		flushed: env.NewSignal("wal.flushed"),
		o:       obs.Of(env),
		inj:     fault.Of(env),
	}
	reg := l.o.Registry()
	l.cAppends = reg.Counter("wal.appends")
	l.cCommits = reg.Counter("wal.commits")
	l.cFlushes = reg.Counter("wal.flushes")
	l.cBytes = reg.Counter("wal.bytes_appended")
	l.cPadBytes = reg.Counter("wal.pad_bytes")
	l.hCommit = reg.Histo("wal.commit_ns")
	if cfg.Mode == BA || cfg.Mode == PMR {
		n := 1
		if cfg.DoubleBuffer {
			n = 2
		}
		for i := 0; i < n; i++ {
			l.halves = append(l.halves, &half{
				eid:    cfg.EIDs[i],
				bufOff: cfg.BufferOffset + i*cfg.SegmentBytes,
				seg:    -1,
				ready:  true,
				sig:    env.NewSignal(fmt.Sprintf("wal.half%d", i)),
			})
		}
	} else {
		l.stage = make([]byte, cfg.File.Capacity())
	}
	return l, nil
}

// Mode returns the commit mode.
func (l *Log) Mode() CommitMode { return l.cfg.Mode }

// Stats returns a snapshot of counters (sourced from the obs registry's
// "wal.*" metrics; CommitTime is the "wal.commit_ns" histogram sum).
func (l *Log) Stats() Stats {
	return Stats{
		Appends: l.cAppends.Value(), Commits: l.cCommits.Value(),
		Flushes:       l.cFlushes.Value(),
		BytesAppended: l.cBytes.Value(), PadBytes: l.cPadBytes.Value(),
		CommitTime: l.hCommit.Sum(),
	}
}

// AppendOff returns the current end of the log stream.
func (l *Log) AppendOff() int64 { return l.appendOff }

// DurableOff returns the offset below which all records are durable.
func (l *Log) DurableOff() int64 { return l.durableOff }

// getRec returns an n-byte record buffer, reusing a retired one when it
// is large enough.
func (l *Log) getRec(n int) []byte {
	if k := len(l.recPool); k > 0 {
		r := l.recPool[k-1]
		l.recPool[k-1] = nil
		l.recPool = l.recPool[:k-1]
		if cap(r) >= n {
			return r[:n]
		}
	}
	return make([]byte, n)
}

func (l *Log) putRec(r []byte) { l.recPool = append(l.recPool, r) }

func encodeHeader(dst []byte, payload []byte, pos int64) {
	binary.LittleEndian.PutUint32(dst[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(dst[4:], crc32.ChecksumIEEE(payload))
	binary.LittleEndian.PutUint64(dst[8:], uint64(pos))
}

// Append stages one record and returns its LSN (commit target). The
// record becomes durable only after Commit(lsn) in Sync/BA modes.
func (l *Log) Append(p *sim.Proc, payload []byte) (LSN, error) {
	need := headerBytes + len(payload)
	if need > l.cfg.SegmentBytes {
		return 0, fmt.Errorf("%w: %d > segment %d", ErrTooLarge, need, l.cfg.SegmentBytes)
	}
	if l.cfg.AppendCPU > 0 {
		p.Sleep(l.cfg.AppendCPU)
	}

	l.mu.Acquire(p)
	// Segment-straddle handling: pad to the next boundary.
	segEnd := (l.appendOff/int64(l.cfg.SegmentBytes) + 1) * int64(l.cfg.SegmentBytes)
	if l.appendOff+int64(need) > segEnd {
		if err := l.pad(p, segEnd); err != nil {
			l.mu.Release()
			return 0, err
		}
	}
	if l.appendOff+int64(need) > l.cfg.File.Capacity() {
		l.mu.Release()
		return 0, ErrLogFull
	}
	pos := l.appendOff
	l.appendOff += int64(need)
	var h *half
	if l.cfg.Mode == BA || l.cfg.Mode == PMR {
		var err error
		h, err = l.pinFor(p, pos)
		if err != nil {
			// Roll back the reservation: nothing was written.
			l.appendOff = pos
			l.mu.Release()
			return 0, err
		}
	}
	l.mu.Release()

	rec := l.getRec(need)
	encodeHeader(rec, payload, l.cfg.BaseLSN+pos)
	copy(rec[headerBytes:], payload)

	if l.cfg.Mode == BA || l.cfg.Mode == PMR {
		off := h.bufOff + int(pos%int64(l.cfg.SegmentBytes))
		if err := l.cfg.SSD.Mmio().Write(p, off, rec); err != nil {
			l.putRec(rec)
			return 0, err
		}
	} else {
		copy(l.stage[pos:], rec)
	}
	l.putRec(rec) // MMIO/stage copied the bytes; the buffer is free again
	l.cAppends.Inc()
	l.cBytes.Add(uint64(need))
	return LSN(pos + int64(need)), nil
}

// pad writes a zero length marker (if room) and advances to `to`,
// which must be the next segment boundary.
func (l *Log) pad(p *sim.Proc, to int64) error {
	gap := to - l.appendOff
	if gap <= 0 {
		return nil
	}
	l.cPadBytes.Add(uint64(gap))
	if gap >= 4 {
		marker := []byte{0xFF, 0xFF, 0xFF, 0xFF}
		if l.cfg.Mode == BA || l.cfg.Mode == PMR {
			h, err := l.pinFor(p, l.appendOff)
			if err != nil {
				return err
			}
			off := h.bufOff + int(l.appendOff%int64(l.cfg.SegmentBytes))
			if err := l.cfg.SSD.Mmio().Write(p, off, marker); err != nil {
				return err
			}
		} else {
			copy(l.stage[l.appendOff:], marker)
		}
	}
	l.appendOff = to
	return nil
}

// pinFor ensures the segment containing pos is bound to a half and
// returns it. In BA mode the bind is a BA_PIN (with the internal
// datapath load + the LBA gate); in PMR mode the window is raw NVRAM —
// no pin, no gate, no load. Called with l.mu held.
func (l *Log) pinFor(p *sim.Proc, pos int64) (*half, error) {
	seg := pos / int64(l.cfg.SegmentBytes)
	h := l.halves[seg%int64(len(l.halves))]
	if h.seg == seg {
		return h, nil
	}
	// Wait for any in-flight flush of this half to finish.
	for !h.ready {
		h.sig.Wait(p)
	}
	if h.seg == seg {
		return h, nil
	}
	if h.seg >= 0 {
		// A previous segment is still pinned here (single-buffer case,
		// or a lagging half): flush it out synchronously.
		if err := l.flushHalf(p, h); err != nil {
			return nil, err
		}
	}
	if l.cfg.Mode == BA {
		pages := l.cfg.SegmentBytes / l.ps
		lba := l.cfg.File.LBA(seg * int64(l.cfg.SegmentBytes))
		if err := l.cfg.SSD.BAPin(p, h.eid, h.bufOff, lba, pages); err != nil {
			return nil, err
		}
	}
	h.seg = seg

	// Double buffering: kick off a background flush of the *other*
	// half so it is ready when the log wraps to it.
	if l.cfg.DoubleBuffer {
		other := l.halves[(seg+1)%2]
		if other.seg >= 0 && other.ready && other.seg < seg {
			other.ready = false
			l.env.Go("wal.baflush", func(w *sim.Proc) {
				if err := l.flushHalf(w, other); err != nil {
					// Power died under the background flush (fault
					// injection): the half stays unflushed; recovery
					// replays it from the dumped BA-buffer image.
					if !errors.Is(err, core.ErrPowerIsOff) {
						panic(fmt.Sprintf("wal: background BA flush: %v", err))
					}
				}
				other.ready = true
				other.sig.Fire()
			})
		}
	}
	return h, nil
}

// flushHalf persists and releases one half. BA mode: BA_SYNC (commit
// any posted stores) then BA_FLUSH over the internal datapath. PMR
// mode: there is no internal datapath — the segment is DMA-read back
// to the host and written to the file through the block I/O stack,
// exactly the extra round trip Section VII attributes to PMR devices.
func (l *Log) flushHalf(p *sim.Proc, h *half) error {
	if h.seg < 0 {
		return nil
	}
	sp := l.o.Tracer().BeginProc(p, "wal", "flush_half")
	defer sp.End()
	if l.cfg.Mode == PMR {
		if err := l.cfg.SSD.Mmio().Sync(p, h.bufOff, l.cfg.SegmentBytes); err != nil {
			return err
		}
		buf := make([]byte, l.cfg.SegmentBytes)
		if _, err := l.cfg.SSD.PMRReadDMA(p, h.bufOff, buf); err != nil {
			return err
		}
		off := h.seg * int64(l.cfg.SegmentBytes)
		if err := l.cfg.File.WriteAt(p, off, buf); err != nil {
			return err
		}
		if err := l.cfg.File.Sync(p); err != nil {
			return err
		}
		h.seg = -1
		l.cFlushes.Inc()
		return nil
	}
	if err := l.cfg.SSD.BASync(p, h.eid); err != nil {
		return err
	}
	if err := l.cfg.SSD.BAFlush(p, h.eid); err != nil {
		return err
	}
	h.seg = -1
	l.cFlushes.Inc()
	return nil
}

// Commit makes the log durable up to lsn according to the mode.
func (l *Log) Commit(p *sim.Proc, lsn LSN) error {
	start := l.env.Now()
	sp := l.o.Tracer().BeginProc(p, "wal", "commit")
	defer func() {
		sp.End()
		l.cCommits.Inc()
		l.inj.Tick(fault.EvWalCommit)
		l.hCommit.Observe(sim.Duration(l.env.Now() - start))
	}()
	switch l.cfg.Mode {
	case Async:
		l.scheduleAsyncFlush()
		return nil
	case PM:
		return l.commitPM(p, int64(lsn))
	case BA, PMR:
		return l.commitBA(p, int64(lsn))
	default:
		return l.commitSync(p, int64(lsn))
	}
}

// commitPM persists the record in the host PM buffer (a cache-line
// flush away) and schedules a lazy write-behind to the log device —
// the Fig 1(c) heterogeneous memory architecture.
func (l *Log) commitPM(p *sim.Proc, target int64) error {
	if target <= l.durableOff {
		return nil
	}
	p.Sleep(l.cfg.PMPersistCost)
	if target > l.durableOff {
		l.durableOff = target
	}
	l.scheduleAsyncFlush()
	return nil
}

// commitBA syncs the MMIO ranges covering [durableOff, target).
func (l *Log) commitBA(p *sim.Proc, target int64) error {
	if target <= l.durableOff {
		return nil
	}
	segBytes := int64(l.cfg.SegmentBytes)
	from := l.durableOff
	for from < target {
		seg := from / segBytes
		segEnd := (seg + 1) * segBytes
		to := target
		if to > segEnd {
			to = segEnd
		}
		h := l.halves[seg%int64(len(l.halves))]
		if h.seg == seg {
			off := h.bufOff + int(from%segBytes)
			if err := l.cfg.SSD.Mmio().Sync(p, off, int(to-from)); err != nil {
				return err
			}
		}
		// If the segment is no longer pinned it was already flushed to
		// NAND — durable by a stronger means.
		from = to
	}
	if target > l.durableOff {
		l.durableOff = target
	}
	return nil
}

// commitSync implements group commit: one leader writes the dirty
// pages and fsyncs; followers whose target is covered just wait.
func (l *Log) commitSync(p *sim.Proc, target int64) error {
	for l.durableOff < target {
		if l.flushing {
			l.flushed.Wait(p)
			continue
		}
		if err := l.flushBlock(p); err != nil {
			return err
		}
	}
	return nil
}

// flushBlock writes all staged-but-unflushed bytes (page aligned) and
// fsyncs. The caller becomes the flush leader.
func (l *Log) flushBlock(p *sim.Proc) error {
	for l.flushing {
		// Another leader is mid-flush (e.g. an async timer racing a
		// Drain): wait for it rather than double-writing.
		l.flushed.Wait(p)
	}
	l.flushing = true
	defer func() {
		l.flushing = false
		l.flushed.Fire()
	}()
	flushTo := l.appendOff // absorb everything appended so far (group)
	if flushTo == l.flushedOff {
		return nil
	}
	ps := int64(l.ps)
	first := (l.flushedOff / ps) * ps
	last := ((flushTo + ps - 1) / ps) * ps
	if last > l.cfg.File.Capacity() {
		last = l.cfg.File.Capacity()
	}
	if err := l.cfg.File.WriteAt(p, first, l.stage[first:last]); err != nil {
		return err
	}
	if err := l.cfg.File.Sync(p); err != nil {
		return err
	}
	l.cFlushes.Inc()
	l.flushedOff = flushTo
	if l.cfg.Mode != PM && flushTo > l.durableOff {
		l.durableOff = flushTo
	}
	return nil
}

// scheduleAsyncFlush arms a one-shot background flush if none is
// pending — the Async mode's loss window.
func (l *Log) scheduleAsyncFlush() {
	if l.asyncScheduled {
		return
	}
	l.asyncScheduled = true
	l.env.GoAt(l.env.Now()+sim.Time(l.cfg.AsyncFlushInterval), "wal.asyncflush", func(p *sim.Proc) {
		l.asyncScheduled = false
		if err := l.flushBlock(p); err != nil {
			panic(fmt.Sprintf("wal: async flush: %v", err))
		}
	})
}

// Drain forces all appended records durable (shutdown / checkpoint
// barrier) regardless of mode.
func (l *Log) Drain(p *sim.Proc) error {
	switch l.cfg.Mode {
	case BA, PMR:
		return l.commitBA(p, l.appendOff)
	case PM:
		if err := l.commitPM(p, l.appendOff); err != nil {
			return err
		}
		for l.flushedOff < l.appendOff {
			if err := l.flushBlock(p); err != nil {
				return err
			}
		}
		return nil
	default:
		return l.commitSync(p, l.appendOff)
	}
}

// FlushToNAND pushes everything down to flash and unpins BA segments.
// After it returns the whole log is block-readable.
func (l *Log) FlushToNAND(p *sim.Proc) error {
	if err := l.Drain(p); err != nil {
		return err
	}
	if l.cfg.Mode == BA || l.cfg.Mode == PMR {
		for _, h := range l.halves {
			for !h.ready {
				h.sig.Wait(p)
			}
			if err := l.flushHalf(p, h); err != nil {
				return err
			}
		}
		return nil
	}
	return l.cfg.File.Sync(p)
}

// Reset truncates the log (checkpoint): offsets return to zero and a
// zero header is durably written at position 0 so recovery never
// resurrects pre-reset records.
func (l *Log) Reset(p *sim.Proc) error {
	if err := l.FlushToNAND(p); err != nil {
		return err
	}
	zero := make([]byte, l.ps)
	if err := l.cfg.File.WriteAt(p, 0, zero); err != nil {
		return err
	}
	if err := l.cfg.File.Sync(p); err != nil {
		return err
	}
	if l.stage != nil {
		for i := range l.stage {
			l.stage[i] = 0
		}
	}
	l.appendOff = 0
	l.durableOff = 0
	l.flushedOff = 0
	return nil
}

// Seal pads the log out to the end of its file — segment boundary by
// segment boundary, so every gap carries a pad marker — and flushes
// everything to NAND. A sealed log scans cleanly from position 0 to
// the file's capacity, which is how the segmented lifecycle's chain
// recovery knows the stream continues in the next segment file.
func (l *Log) Seal(p *sim.Proc) error {
	l.mu.Acquire(p)
	for l.appendOff < l.cfg.File.Capacity() {
		segEnd := (l.appendOff/int64(l.cfg.SegmentBytes) + 1) * int64(l.cfg.SegmentBytes)
		if segEnd > l.cfg.File.Capacity() {
			segEnd = l.cfg.File.Capacity()
		}
		if err := l.pad(p, segEnd); err != nil {
			l.mu.Release()
			return err
		}
	}
	l.mu.Release()
	return l.FlushToNAND(p)
}

// Recycle re-arms the log over the same file under a new stamp base:
// offsets return to zero, the stage clears, and subsequent records are
// stamped newBase+position. Nothing is written to media — on-media
// records from the previous generation self-invalidate because their
// stamps no longer match the new base. The log must be fully flushed
// (FlushToNAND) so no half is pinned or mid-flush.
func (l *Log) Recycle(newBase int64) error {
	if l.flushing {
		return fmt.Errorf("%w: Recycle mid-flush", ErrBadConfig)
	}
	for _, h := range l.halves {
		if h.seg != -1 || !h.ready {
			return fmt.Errorf("%w: Recycle on a pinned log (FlushToNAND first)", ErrBadConfig)
		}
	}
	l.cfg.BaseLSN = newBase
	l.appendOff = 0
	l.durableOff = 0
	l.flushedOff = 0
	if l.stage != nil {
		for i := range l.stage {
			l.stage[i] = 0
		}
	}
	return nil
}

// Recover scans the log from position 0, invoking fn for every intact
// record, and positions the log to continue appending after the last
// one. In BA mode any of this log's segments still pinned from before
// a crash are flushed to NAND first (the mapping table survived the
// power cycle via the recovery manager), so a single block-read scan
// sees everything.
func (l *Log) Recover(p *sim.Proc, fn func(lsn LSN, payload []byte) error) error {
	if l.cfg.Mode == BA || l.cfg.Mode == PMR {
		if err := l.unpinMine(p); err != nil {
			return err
		}
	}
	cap := l.cfg.File.Capacity()
	segBytes := int64(l.cfg.SegmentBytes)
	buf := make([]byte, headerBytes)
	pos := int64(0)
	for pos+headerBytes <= cap {
		segEnd := (pos/segBytes + 1) * segBytes
		if pos+headerBytes > segEnd {
			pos = segEnd
			continue
		}
		if err := l.cfg.File.ReadAt(p, pos, buf); err != nil {
			return err
		}
		rawLen := binary.LittleEndian.Uint32(buf[0:])
		if rawLen == 0 {
			break // end of log
		}
		if rawLen == padMarker {
			pos = segEnd // padding: resume at the next segment
			continue
		}
		n := int(rawLen)
		wantCRC := binary.LittleEndian.Uint32(buf[4:])
		stamp := int64(binary.LittleEndian.Uint64(buf[8:]))
		if stamp != l.cfg.BaseLSN+pos || pos+headerBytes+int64(n) > segEnd {
			break // stale or torn
		}
		payload := make([]byte, n)
		if err := l.cfg.File.ReadAt(p, pos+headerBytes, payload); err != nil {
			return err
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break // torn record: stop here
		}
		pos += headerBytes + int64(n)
		if fn != nil {
			if err := fn(LSN(pos), payload); err != nil {
				return err
			}
		}
	}
	l.appendOff = pos
	l.durableOff = pos
	l.flushedOff = pos
	if l.stage != nil {
		// Rebuild the stage image so later flushes rewrite real bytes.
		if pos > 0 {
			if err := l.cfg.File.ReadAt(p, 0, l.stage[:pos]); err != nil {
				return err
			}
		}
	}
	return nil
}

// unpinMine flushes any BA-buffer entries pinned over this log's file.
// PMR mode has no entries; its halves just reset.
func (l *Log) unpinMine(p *sim.Proc) error {
	if l.cfg.Mode == PMR {
		for _, h := range l.halves {
			if err := l.flushHalf(p, h); err != nil {
				return err
			}
			h.ready = true
		}
		return nil
	}
	lo := l.cfg.File.LBA(0)
	hi := lo + ftl.LBA(l.cfg.File.Pages())
	for _, ent := range l.cfg.SSD.Entries() {
		if ent.LBA >= lo && ent.LBA < hi {
			if err := l.cfg.SSD.BAFlush(p, ent.ID); err != nil {
				return err
			}
		}
	}
	for _, h := range l.halves {
		h.seg = -1
		h.ready = true
	}
	return nil
}

// Rebind moves a fully-flushed BA/PMR log onto a different set of
// mapping-table entries and a different BA-buffer window. It is the
// mechanism behind mapping-table slot leasing: a log that has been
// FlushToNAND'd owns no pinned segments, so its entry IDs and buffer
// offset are free to change before the next append re-pins. Appending
// state (offsets, durability cursors) is untouched.
func (l *Log) Rebind(eids []core.EID, bufferOffset int) error {
	if l.cfg.Mode != BA && l.cfg.Mode != PMR {
		return fmt.Errorf("%w: Rebind needs a BA/PMR-mode log", ErrBadConfig)
	}
	if len(eids) < len(l.halves) {
		return fmt.Errorf("%w: Rebind needs %d EIDs", ErrBadConfig, len(l.halves))
	}
	for _, h := range l.halves {
		if h.seg != -1 || !h.ready {
			return fmt.Errorf("%w: Rebind on a pinned log (FlushToNAND first)", ErrBadConfig)
		}
	}
	l.cfg.EIDs = append([]core.EID(nil), eids...)
	l.cfg.BufferOffset = bufferOffset
	for i, h := range l.halves {
		h.eid = eids[i]
		h.bufOff = bufferOffset + i*l.cfg.SegmentBytes
	}
	return nil
}
