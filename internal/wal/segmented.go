// Segmented WAL lifecycle: the production toolkit over the single-file
// Log — segment rotation, checkpoint-driven truncation, group commit,
// follow-the-tail streaming readers, and torn-write-aware chain
// recovery.
//
// The stream lives in one global LSN space divided into fixed-size
// segments, each backed by its own vfs file from a ring of Ring slots:
// segment seq covers LSNs [seq*S, (seq+1)*S) and lives in ring slot
// seq%Ring. The active segment appends through an inner Log whose
// BaseLSN is the segment's base, so every record header stamp is its
// global LSN — bytes left over in a recycled slot self-invalidate on
// the next scan because their stamps belong to a dead generation.
//
// Rotation seals the active segment (pad to capacity + flush to NAND)
// and recycles the next ring slot under a new base; the first record
// of every segment is a header record naming its sequence number, so
// recovery can walk the chain from the checkpoint segment forward and
// tell a live successor from stale generations. A checkpoint durably
// records its LSN in a CRC-tagged meta page (internal/integrity) and
// then truncates — frees — every segment wholly below it; truncation
// itself touches no media, which is what makes a crash mid-truncation
// trivially safe.
//
// Group commit: concurrent committers register their target LSN and
// queue on a flush lock; whoever holds the lock flushes to the maximum
// registered target, so one BA_SYNC (or block write + fsync) burst
// covers every waiter that arrived during the previous flush.
//
// Tail readers stream committed records in LSN order from a host-side
// retained-record cache (the page-cache analog a real WAL tails),
// blocking at the durable frontier; a reader lapped by truncation gets
// a clean ErrTruncated, never garbage.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/histo"
	"twobssd/internal/integrity"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
)

// Segment-chain format constants.
const (
	// segHdrMagic + the segment sequence number form the payload of the
	// first record of every segment (written through the normal append
	// path, so it carries the usual length/CRC/stamp header).
	segHdrMagic = "2BSSDSEG"
	segHdrBytes = 16

	// metaMagic tags the checkpoint meta page:
	// [4] magic | [8] checkpoint LSN | [4] CRC-32C of the first 12.
	metaMagic = 0x32425347
)

// RecordOverhead is the per-record header size: a record returned at
// LSN end carries its payload at [end-len(payload), end) and its
// header at [end-len(payload)-RecordOverhead, end-len(payload)).
const RecordOverhead = headerBytes

// Lifecycle errors.
var (
	// ErrWALFull means the segment ring is out of free slots: every
	// older segment is still retained. The caller must checkpoint (so
	// truncation can free slots) before appending more.
	ErrWALFull = errors.New("wal: segment ring full (checkpoint required)")

	// ErrTruncated tells a tail reader its position was truncated by a
	// checkpoint before it got there.
	ErrTruncated = errors.New("wal: position truncated by a checkpoint")

	// ErrReaderClosed reports a Next on a closed tail reader.
	ErrReaderClosed = errors.New("wal: tail reader closed")
)

// SegConfig assembles a segmented log.
type SegConfig struct {
	// Mode is Sync (the block+flush baseline) or BA (the byte path).
	Mode CommitMode

	// FS and Name place the backing files: segment files Name.0 …
	// Name.<Ring-1> plus the checkpoint meta page Name.meta. Files
	// that already exist are reopened (the post-crash path); call
	// Recover to resume from them.
	FS   *vfs.FS
	Name string

	SegmentFileBytes int64 // capacity of each segment file (page aligned)
	Ring             int   // ring slots (>= 2)

	// Inner per-segment plumbing, as in Config. InnerSegmentBytes is
	// the BA pin-window unit and must divide SegmentFileBytes
	// (0 = SegmentFileBytes).
	InnerSegmentBytes int
	SSD               *core.TwoBSSD
	EIDs              []core.EID
	BufferOffset      int
	DoubleBuffer      bool
	AppendCPU         sim.Duration
}

// SegStats snapshots lifecycle activity (from the env's "wal.seg_*"
// metrics, so multiple logs on one env aggregate).
type SegStats struct {
	Rotations    uint64
	Checkpoints  uint64
	Truncations  uint64
	Commits      uint64
	GroupFlushes uint64
	TailRecords  uint64
	TornRepairs  uint64

	CommitTime     sim.Duration
	RotateTime     sim.Duration
	CheckpointTime sim.Duration
	RecoverTime    sim.Duration
}

// RepairReport describes what torn-tail repair recovery performed.
type RepairReport struct {
	TornTail     bool  // a torn or stale tail was detected
	RepairedAt   LSN   // LSN where the log was durably cut back
	DroppedBytes int64 // bytes past the cut invalidated by the repair
}

// tailRec is one committed record retained in host memory for tail
// readers until its segment truncates.
type tailRec struct {
	end     LSN // LSN just past the record
	at      sim.Time
	payload string // immutable copy; readers never alias log buffers
}

// segFile is one ring slot.
type segFile struct {
	file *vfs.File
	log  *Log
	seq  int64 // segment currently occupying the slot, -1 when free
}

// Segmented is a segment-managed write-ahead log.
type Segmented struct {
	env *sim.Env
	cfg SegConfig
	ps  int

	segs []*segFile
	meta *vfs.File

	mu  *sim.Resource // serializes append/rotate/checkpoint state
	fmu *sim.Resource // group-commit flush lock; rotate takes it too

	firstSeg   int64 // oldest retained segment
	curSeg     int64 // active segment
	tail       int64 // global append frontier
	durable    int64 // global durable frontier
	ckpt       int64 // checkpoint LSN recorded in the meta page
	hdrPending bool  // active segment has not written its header yet

	gcTarget int64 // max commit target registered by any committer

	retained map[int64][]tailRec // segment seq → records in LSN order
	tailSig  *sim.Signal         // fired when durable/retention move

	repairs    int
	repairFail string

	o   *obs.Set
	inj *fault.Injector

	cRotations, cCheckpoints, cTruncations *obs.Counter
	cCommits, cGroupFlushes                *obs.Counter
	cTailRecs, cRepairs                    *obs.Counter
	hCommit, hRotate                       *histo.H
	hCheckpoint, hRecover                  *histo.H
	gLive                                  *obs.Gauge
}

// OpenSegmented builds a segmented log over cfg, creating the ring and
// meta files (or reopening them after a crash — call Recover then).
func OpenSegmented(env *sim.Env, cfg SegConfig) (*Segmented, error) {
	if cfg.FS == nil || cfg.Name == "" {
		return nil, fmt.Errorf("%w: segmented log needs FS and Name", ErrBadConfig)
	}
	if cfg.Mode != Sync && cfg.Mode != BA {
		return nil, fmt.Errorf("%w: segmented lifecycle supports Sync and BA", ErrBadConfig)
	}
	if cfg.Ring < 2 {
		return nil, fmt.Errorf("%w: segment ring needs >= 2 slots", ErrBadConfig)
	}
	ps := cfg.FS.PageSize()
	if cfg.SegmentFileBytes <= 0 || cfg.SegmentFileBytes%int64(ps) != 0 {
		return nil, fmt.Errorf("%w: SegmentFileBytes must be page aligned", ErrBadConfig)
	}
	if cfg.InnerSegmentBytes == 0 {
		cfg.InnerSegmentBytes = int(cfg.SegmentFileBytes)
	}
	if cfg.SegmentFileBytes%int64(cfg.InnerSegmentBytes) != 0 {
		return nil, fmt.Errorf("%w: InnerSegmentBytes must divide SegmentFileBytes", ErrBadConfig)
	}
	s := &Segmented{
		env:        env,
		cfg:        cfg,
		ps:         ps,
		mu:         env.NewResource(fmt.Sprintf("walseg.%s.mu", cfg.Name), 1),
		fmu:        env.NewResource(fmt.Sprintf("walseg.%s.flush", cfg.Name), 1),
		tailSig:    env.NewSignal(fmt.Sprintf("walseg.%s.tail", cfg.Name)),
		hdrPending: true,
		retained:   make(map[int64][]tailRec),
		o:          obs.Of(env),
		inj:        fault.Of(env),
	}
	for i := 0; i < cfg.Ring; i++ {
		f, err := openOrCreate(cfg.FS, fmt.Sprintf("%s.%d", cfg.Name, i), cfg.SegmentFileBytes)
		if err != nil {
			return nil, err
		}
		inner, err := Open(env, Config{
			Mode: cfg.Mode, File: f, SegmentBytes: cfg.InnerSegmentBytes,
			SSD: cfg.SSD, EIDs: cfg.EIDs, BufferOffset: cfg.BufferOffset,
			DoubleBuffer: cfg.DoubleBuffer, AppendCPU: cfg.AppendCPU,
		})
		if err != nil {
			return nil, err
		}
		s.segs = append(s.segs, &segFile{file: f, log: inner, seq: -1})
	}
	var err error
	if s.meta, err = openOrCreate(cfg.FS, cfg.Name+".meta", int64(ps)); err != nil {
		return nil, err
	}
	s.segs[0].seq = 0
	reg := s.o.Registry()
	s.cRotations = reg.Counter("wal.seg_rotations")
	s.cCheckpoints = reg.Counter("wal.seg_checkpoints")
	s.cTruncations = reg.Counter("wal.seg_truncations")
	s.cCommits = reg.Counter("wal.seg_commits")
	s.cGroupFlushes = reg.Counter("wal.seg_group_flushes")
	s.cTailRecs = reg.Counter("wal.seg_tail_records")
	s.cRepairs = reg.Counter("wal.seg_torn_repairs")
	s.hCommit = reg.Histo("wal.seg_commit_ns")
	s.hRotate = reg.Histo("wal.seg_rotate_ns")
	s.hCheckpoint = reg.Histo("wal.seg_checkpoint_ns")
	s.hRecover = reg.Histo("wal.seg_recover_ns")
	s.gLive = reg.Gauge("wal.seg_live")
	s.gLive.Set(1)
	return s, nil
}

func openOrCreate(fs *vfs.FS, name string, capacity int64) (*vfs.File, error) {
	if fs.Exists(name) {
		return fs.Open(name)
	}
	return fs.Create(name, capacity)
}

// Mode returns the commit mode.
func (s *Segmented) Mode() CommitMode { return s.cfg.Mode }

// TailLSN returns the global append frontier.
func (s *Segmented) TailLSN() LSN { return LSN(s.tail) }

// DurableLSN returns the LSN below which every record is durable.
func (s *Segmented) DurableLSN() LSN { return LSN(s.durable) }

// CheckpointLSN returns the last durably recorded checkpoint.
func (s *Segmented) CheckpointLSN() LSN { return LSN(s.ckpt) }

// RetainedLSN returns the retention floor: tail readers positioned
// below it see ErrTruncated.
func (s *Segmented) RetainedLSN() LSN { return LSN(s.firstSeg * s.segBytes()) }

// Segments returns the live segment range [first, cur].
func (s *Segmented) Segments() (first, cur int64) { return s.firstSeg, s.curSeg }

// RepairStatus reports the last Recover's torn-tail repairs and any
// repair failure (campaigns feed this through fault.RepairReporter).
func (s *Segmented) RepairStatus() (repairs int, failure string) {
	return s.repairs, s.repairFail
}

// Stats snapshots the env's segmented-WAL metrics.
func (s *Segmented) Stats() SegStats {
	return SegStats{
		Rotations:    s.cRotations.Value(),
		Checkpoints:  s.cCheckpoints.Value(),
		Truncations:  s.cTruncations.Value(),
		Commits:      s.cCommits.Value(),
		GroupFlushes: s.cGroupFlushes.Value(),
		TailRecords:  s.cTailRecs.Value(),
		TornRepairs:  s.cRepairs.Value(),

		CommitTime:     s.hCommit.Sum(),
		RotateTime:     s.hRotate.Sum(),
		CheckpointTime: s.hCheckpoint.Sum(),
		RecoverTime:    s.hRecover.Sum(),
	}
}

func (s *Segmented) segBytes() int64 { return s.cfg.SegmentFileBytes }

func (s *Segmented) active() *segFile {
	return s.segs[s.curSeg%int64(len(s.segs))]
}

// maxRecord is the largest payload+header Append accepts: a record
// must fit one inner segment, and when the file is a single inner
// segment it also shares that segment with the header record.
func (s *Segmented) maxRecord() int {
	m := s.cfg.InnerSegmentBytes
	if int64(m) == s.cfg.SegmentFileBytes {
		m -= headerBytes + segHdrBytes
	}
	return m
}

// ensureHdr appends the active segment's header record (first record
// of every segment: magic + sequence number). Called with s.mu held.
func (s *Segmented) ensureHdr(p *sim.Proc) error {
	if !s.hdrPending {
		return nil
	}
	hdr := make([]byte, segHdrBytes)
	copy(hdr, segHdrMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(s.curSeg))
	if _, err := s.active().log.Append(p, hdr); err != nil {
		return err
	}
	s.hdrPending = false
	s.tail = s.curSeg*s.segBytes() + s.active().log.AppendOff()
	return nil
}

// Append stages one record and returns its global LSN (the commit
// target). Rotation happens here, transparently, when the active
// segment file fills; ErrWALFull means every ring slot is still
// retained and a checkpoint must free some.
func (s *Segmented) Append(p *sim.Proc, payload []byte) (LSN, error) {
	if headerBytes+len(payload) > s.maxRecord() {
		return 0, fmt.Errorf("%w: %d > segment %d", ErrTooLarge, headerBytes+len(payload), s.maxRecord())
	}
	s.mu.Acquire(p)
	defer s.mu.Release()
	if err := s.ensureHdr(p); err != nil {
		return 0, err
	}
	lsn, err := s.active().log.Append(p, payload)
	if errors.Is(err, ErrLogFull) {
		if err = s.rotate(p); err != nil {
			return 0, err
		}
		if err = s.ensureHdr(p); err != nil {
			return 0, err
		}
		lsn, err = s.active().log.Append(p, payload)
	}
	if err != nil {
		return 0, err
	}
	g := s.curSeg*s.segBytes() + int64(lsn)
	s.tail = g
	s.retained[s.curSeg] = append(s.retained[s.curSeg], tailRec{
		end: LSN(g), at: s.env.Now(), payload: string(payload),
	})
	return LSN(g), nil
}

// rotate seals the active segment and recycles the next ring slot
// under the next segment's base. Called with s.mu held; takes the
// flush lock so no group-commit leader is mid-flush on the inner log
// it is about to seal and recycle.
func (s *Segmented) rotate(p *sim.Proc) error {
	next := s.curSeg + 1
	slot := s.segs[next%int64(len(s.segs))]
	if slot.seq >= 0 && slot.seq >= s.firstSeg {
		return ErrWALFull
	}
	t0 := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "wal", "seg_rotate")
	defer sp.End()
	s.fmu.Acquire(p)
	defer s.fmu.Release()
	if err := s.active().log.Seal(p); err != nil {
		return err
	}
	base := next * s.segBytes()
	if base > s.durable {
		s.durable = base
	}
	if err := slot.log.Recycle(base); err != nil {
		return err
	}
	slot.seq = next
	s.curSeg = next
	s.hdrPending = true
	s.cRotations.Inc()
	s.inj.Tick(fault.EvWalRotate)
	s.hRotate.Observe(sim.Duration(s.env.Now() - t0))
	s.gLive.Set(float64(s.curSeg - s.firstSeg + 1))
	s.tailSig.Fire() // the sealed segment's bytes are durable now
	return nil
}

// Commit makes the log durable up to lsn, with group commit: the
// target is registered, committers queue on the flush lock, and
// whoever holds it flushes to the maximum registered target — one
// BA_SYNC / block+fsync burst covers every waiter.
func (s *Segmented) Commit(p *sim.Proc, lsn LSN) error {
	start := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "wal", "seg_commit")
	defer func() {
		sp.End()
		s.cCommits.Inc()
		s.hCommit.Observe(sim.Duration(s.env.Now() - start))
	}()
	target := int64(lsn)
	if target > s.gcTarget {
		s.gcTarget = target
	}
	for s.durable < target {
		s.fmu.Acquire(p)
		if s.durable >= target {
			s.fmu.Release() // a previous leader's flush covered us
			break
		}
		goal := s.gcTarget
		err := s.flushTo(p, goal)
		if err != nil {
			s.fmu.Release()
			return err
		}
		if goal > s.durable {
			s.durable = goal
			s.cGroupFlushes.Inc()
			s.tailSig.Fire()
		}
		s.fmu.Release()
	}
	return nil
}

// flushTo persists [durable, goal) through the active inner log.
// Called with the flush lock held, so rotation cannot move the active
// segment underneath the flush.
func (s *Segmented) flushTo(p *sim.Proc, goal int64) error {
	base := s.curSeg * s.segBytes()
	if goal <= base {
		return nil // covered entirely by sealed (already durable) segments
	}
	return s.active().log.Commit(p, LSN(goal-base))
}

// Drain forces everything appended so far durable.
func (s *Segmented) Drain(p *sim.Proc) error {
	return s.Commit(p, LSN(s.tail))
}

// FlushToNAND pushes the whole log down to flash and unpins the active
// segment's BA windows (sealed segments are flushed at rotation).
func (s *Segmented) FlushToNAND(p *sim.Proc) error {
	if err := s.active().log.FlushToNAND(p); err != nil {
		return err
	}
	if s.tail > s.durable {
		s.durable = s.tail
		s.tailSig.Fire()
	}
	return nil
}

// Rebind moves a fully-flushed BA-mode segmented log onto different
// mapping-table entries / a different BA-buffer window (slot leasing:
// see fleet's slotManager). Applies to every ring slot's inner log.
func (s *Segmented) Rebind(eids []core.EID, bufferOffset int) error {
	for _, sf := range s.segs {
		if err := sf.log.Rebind(eids, bufferOffset); err != nil {
			return err
		}
	}
	s.cfg.EIDs = append([]core.EID(nil), eids...)
	s.cfg.BufferOffset = bufferOffset
	return nil
}

// Checkpoint durably records that the caller's state covers the log up
// to lsn (the caller persists its snapshot FIRST), then truncates —
// frees — every segment wholly below the checkpoint. Commit-to-lsn is
// forced first so a checkpoint never claims coverage of volatile
// records. Truncation touches no media: freed slots are recycled by a
// later rotation, and their stale bytes self-invalidate via stamps.
func (s *Segmented) Checkpoint(p *sim.Proc, lsn LSN) error {
	target := int64(lsn)
	if target > s.tail {
		return fmt.Errorf("%w: checkpoint %d past tail %d", ErrBadConfig, target, s.tail)
	}
	if err := s.Commit(p, lsn); err != nil {
		return err
	}
	t0 := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "wal", "seg_checkpoint")
	defer sp.End()
	s.mu.Acquire(p)
	defer s.mu.Release()
	if target <= s.ckpt {
		return nil // checkpoints are monotonic
	}
	if err := s.writeMeta(p, target); err != nil {
		return err
	}
	s.ckpt = target
	s.cCheckpoints.Inc()
	s.inj.Tick(fault.EvWalCheckpoint)
	freed := false
	for s.firstSeg < s.curSeg && (s.firstSeg+1)*s.segBytes() <= s.ckpt {
		slot := s.segs[s.firstSeg%int64(len(s.segs))]
		slot.seq = -1
		delete(s.retained, s.firstSeg)
		s.firstSeg++
		s.cTruncations.Inc()
		s.inj.Tick(fault.EvWalTruncate)
		freed = true
	}
	s.gLive.Set(float64(s.curSeg - s.firstSeg + 1))
	s.hCheckpoint.Observe(sim.Duration(s.env.Now() - t0))
	if freed {
		s.tailSig.Fire() // lapped tail readers must learn ErrTruncated
	}
	return nil
}

func (s *Segmented) writeMeta(p *sim.Proc, ckpt int64) error {
	page := make([]byte, s.ps)
	binary.LittleEndian.PutUint32(page[0:], metaMagic)
	binary.LittleEndian.PutUint64(page[4:], uint64(ckpt))
	binary.LittleEndian.PutUint32(page[12:], integrity.PageCRC(page[:12]))
	if err := s.meta.WriteAt(p, 0, page); err != nil {
		return err
	}
	return s.meta.Sync(p)
}

// readMeta returns the durably recorded checkpoint LSN, or 0 when the
// meta page is fresh or fails its integrity tag.
func (s *Segmented) readMeta(p *sim.Proc) (int64, error) {
	page := make([]byte, s.ps)
	if err := s.meta.ReadAt(p, 0, page); err != nil {
		return 0, err
	}
	if binary.LittleEndian.Uint32(page[0:]) != metaMagic {
		return 0, nil
	}
	if integrity.Check(page[:12], binary.LittleEndian.Uint32(page[12:])) != nil {
		return 0, nil
	}
	return int64(binary.LittleEndian.Uint64(page[4:])), nil
}

// ---- tailing readers ----

// TailRecord is one committed record delivered to a tail reader.
type TailRecord struct {
	LSN     LSN      // LSN just past the record (resume position)
	At      sim.Time // append instant
	Payload string
}

// TailReader streams committed records in LSN order, following the
// durable frontier. Readers see only whole, committed user records —
// never segment headers, padding, or volatile bytes.
type TailReader struct {
	s      *Segmented
	pos    int64
	closed bool
}

// Tail opens a reader positioned at from (use 0 for the whole log).
func (s *Segmented) Tail(from LSN) *TailReader {
	return &TailReader{s: s, pos: int64(from)}
}

// Pos returns the reader's resume position.
func (r *TailReader) Pos() LSN { return LSN(r.pos) }

// Close releases the reader; a blocked Next returns ErrReaderClosed.
func (r *TailReader) Close() {
	if !r.closed {
		r.closed = true
		r.s.tailSig.Fire()
	}
}

// TryNext returns the next committed record without blocking. ok=false
// with a nil error means the reader is caught up with the durable
// frontier; ErrTruncated means a checkpoint truncated the reader's
// position before it got there.
func (r *TailReader) TryNext() (TailRecord, bool, error) {
	s := r.s
	for {
		if r.closed {
			return TailRecord{}, false, ErrReaderClosed
		}
		if r.pos < s.firstSeg*s.segBytes() {
			return TailRecord{}, false, ErrTruncated
		}
		seg := r.pos / s.segBytes()
		recs := s.retained[seg]
		i := sort.Search(len(recs), func(i int) bool { return int64(recs[i].end) > r.pos })
		if i < len(recs) {
			if int64(recs[i].end) > s.durable {
				return TailRecord{}, false, nil // not committed yet
			}
			rec := recs[i]
			r.pos = int64(rec.end)
			s.cTailRecs.Inc()
			return TailRecord{LSN: rec.end, At: rec.at, Payload: rec.payload}, true, nil
		}
		if seg < s.curSeg {
			r.pos = (seg + 1) * s.segBytes() // sealed segment exhausted
			continue
		}
		return TailRecord{}, false, nil
	}
}

// Next blocks until a record is available (or the position truncates,
// or the reader is closed from another proc).
func (r *TailReader) Next(p *sim.Proc) (TailRecord, error) {
	for {
		rec, ok, err := r.TryNext()
		if err != nil {
			return TailRecord{}, err
		}
		if ok {
			return rec, nil
		}
		r.s.tailSig.Wait(p)
	}
}

// WaitTail parks until the durable frontier or retention window moves
// (external shippers poll TryNext and park here between batches).
func (s *Segmented) WaitTail(p *sim.Proc) { s.tailSig.Wait(p) }

// WakeTail wakes every parked tail reader/shipper so it can re-check
// its termination condition.
func (s *Segmented) WakeTail() { s.tailSig.Fire() }

// ---- recovery ----

// Recover rebuilds the log from media after a crash (or verifies a
// quiesced live log end to end): it reads the checkpoint meta page,
// probes every ring slot's segment header, walks the segment chain
// from the checkpoint segment forward replaying every intact record
// past the checkpoint into fn, detects a torn or stale tail (bad
// stamp, overrun, or CRC mismatch), durably repairs it by cutting the
// log back to the last intact record, and positions the log to append
// after the tail. The caller must quiesce appenders/committers first.
func (s *Segmented) Recover(p *sim.Proc, fn func(lsn LSN, payload []byte) error) (RepairReport, error) {
	var rep RepairReport
	t0 := s.env.Now()
	sp := s.o.Tracer().BeginProc(p, "wal", "seg_recover")
	defer sp.End()
	s.repairs, s.repairFail = 0, ""
	s.retained = make(map[int64][]tailRec)

	if s.cfg.Mode == BA {
		// Entries pinned over any ring file before the crash were
		// restored from the capacitor dump; flush them so the block
		// scan below sees everything.
		for _, sf := range s.segs {
			if err := sf.log.unpinMine(p); err != nil {
				return rep, err
			}
		}
	}
	ckpt, err := s.readMeta(p)
	if err != nil {
		return rep, err
	}
	ring := int64(len(s.segs))
	slotSeq := make([]int64, ring)
	for i := range s.segs {
		slotSeq[i] = s.probeSlot(p, i)
	}

	firstSeg := ckpt / s.segBytes()
	seg := firstSeg
	tail := ckpt
	hdrPending := false
	for {
		slot := int(seg % ring)
		if slotSeq[slot] != seg {
			// The chain ends before seg ever persisted a header: seg is
			// the (empty) active segment.
			tail = seg * s.segBytes()
			if tail < ckpt {
				tail = ckpt
			}
			hdrPending = true
			break
		}
		sf := s.segs[slot]
		end, reached, torn, serr := s.scanSegment(p, sf, seg, ckpt, fn)
		if serr != nil {
			return rep, serr
		}
		if reached && slotSeq[int((seg+1)%ring)] == seg+1 {
			seg++ // sealed segment: the chain continues in the next slot
			continue
		}
		tail = seg*s.segBytes() + end
		if torn {
			rep.TornTail = true
			rep.RepairedAt = LSN(tail)
			rep.DroppedBytes = (seg+1)*s.segBytes() - tail
			if rerr := s.repairTail(p, sf, end); rerr != nil {
				s.repairFail = rerr.Error()
			} else {
				s.repairs++
				s.cRepairs.Inc()
			}
		}
		break
	}

	for i := range s.segs {
		if q := slotSeq[i]; q >= firstSeg && q <= seg {
			s.segs[i].seq = q
		} else {
			s.segs[i].seq = -1
		}
	}
	sf := s.segs[seg%ring]
	sf.seq = seg
	base := seg * s.segBytes()
	localTail := tail - base
	il := sf.log
	il.cfg.BaseLSN = base
	il.appendOff, il.durableOff, il.flushedOff = localTail, localTail, localTail
	if il.stage != nil {
		for i := range il.stage {
			il.stage[i] = 0
		}
		if localTail > 0 {
			if err := sf.file.ReadAt(p, 0, il.stage[:localTail]); err != nil {
				return rep, err
			}
		}
	}
	s.firstSeg, s.curSeg = firstSeg, seg
	s.tail, s.durable, s.ckpt = tail, tail, ckpt
	s.gcTarget = tail
	s.hdrPending = hdrPending
	s.gLive.Set(float64(s.curSeg - s.firstSeg + 1))
	s.hRecover.Observe(sim.Duration(s.env.Now() - t0))
	s.tailSig.Fire()
	return rep, nil
}

// probeSlot validates ring slot i's segment header record and returns
// the segment sequence it holds, or -1: the header must be an intact
// record at position 0 whose stamp is a segment base owned by this
// slot and whose payload names the same sequence.
func (s *Segmented) probeSlot(p *sim.Proc, i int) int64 {
	hdr := make([]byte, headerBytes+segHdrBytes)
	if err := s.segs[i].file.ReadAt(p, 0, hdr); err != nil {
		return -1
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != segHdrBytes {
		return -1
	}
	payload := hdr[headerBytes:]
	if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
		return -1
	}
	stamp := int64(binary.LittleEndian.Uint64(hdr[8:]))
	if stamp < 0 || stamp%s.segBytes() != 0 {
		return -1
	}
	seq := stamp / s.segBytes()
	if seq%int64(len(s.segs)) != int64(i) {
		return -1
	}
	if string(payload[:8]) != segHdrMagic ||
		int64(binary.LittleEndian.Uint64(payload[8:])) != seq {
		return -1
	}
	return seq
}

// scanSegment walks one segment file from position 0. It replays every
// intact user record ending past ckpt into fn (and the retained cache)
// and classifies how the scan ended: reached means it ran to the file's
// capacity (a sealed segment); torn means it hit stale or torn bytes —
// a stamp from a dead generation, a length overrunning the inner
// segment, or a CRC mismatch.
func (s *Segmented) scanSegment(p *sim.Proc, sf *segFile, seg, ckpt int64, fn func(LSN, []byte) error) (end int64, reached, torn bool, err error) {
	base := seg * s.segBytes()
	fcap := sf.file.Capacity()
	inner := int64(s.cfg.InnerSegmentBytes)
	hdr := make([]byte, headerBytes)
	pos := int64(0)
	for pos+headerBytes <= fcap {
		segEnd := (pos/inner + 1) * inner
		if segEnd > fcap {
			segEnd = fcap
		}
		if pos+headerBytes > segEnd {
			pos = segEnd
			continue
		}
		if err := sf.file.ReadAt(p, pos, hdr); err != nil {
			return 0, false, false, err
		}
		rawLen := binary.LittleEndian.Uint32(hdr[0:])
		if rawLen == 0 {
			return pos, false, false, nil // clean end of the segment
		}
		if rawLen == padMarker {
			pos = segEnd
			continue
		}
		n := int64(rawLen)
		stamp := int64(binary.LittleEndian.Uint64(hdr[8:]))
		if stamp != base+pos || pos+headerBytes+n > segEnd {
			return pos, false, true, nil
		}
		payload := make([]byte, n)
		if err := sf.file.ReadAt(p, pos+headerBytes, payload); err != nil {
			return 0, false, false, err
		}
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(hdr[4:]) {
			return pos, false, true, nil
		}
		recStart := pos
		pos += headerBytes + n
		if recStart == 0 {
			continue // the segment header record, not a user record
		}
		g := base + pos
		if g <= ckpt {
			continue // already covered by the checkpointed state
		}
		s.retained[seg] = append(s.retained[seg], tailRec{
			end: LSN(g), at: s.env.Now(), payload: string(payload),
		})
		if fn != nil {
			if err := fn(LSN(g), payload); err != nil {
				return 0, false, false, err
			}
		}
	}
	return pos, true, false, nil
}

// repairTail durably cuts the log back to localEnd by writing a zero
// length field — the end-of-log marker — over the torn bytes, then
// reads it back to prove the cut took. Idempotent: a repeat crash
// re-scans to the same clean end with nothing left to repair.
func (s *Segmented) repairTail(p *sim.Proc, sf *segFile, localEnd int64) error {
	zero := []byte{0, 0, 0, 0}
	if err := sf.file.WriteAt(p, localEnd, zero); err != nil {
		return err
	}
	if err := sf.file.Sync(p); err != nil {
		return err
	}
	chk := make([]byte, 4)
	if err := sf.file.ReadAt(p, localEnd, chk); err != nil {
		return err
	}
	if binary.LittleEndian.Uint32(chk) != 0 {
		return fmt.Errorf("wal: torn-tail repair readback at %d not clean", localEnd)
	}
	return nil
}
