package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"strings"
	"testing"

	"twobssd/internal/core"
	"twobssd/internal/sim"
)

// segCfg is the standard test geometry: 16 KB segment files (4 pages)
// on a 4-slot ring, two inner segments per file.
func segCfg(r *rig, mode CommitMode) SegConfig {
	ps := int64(r.fs.PageSize())
	cfg := SegConfig{
		Mode:              mode,
		FS:                r.fs,
		Name:              "seg",
		SegmentFileBytes:  4 * ps,
		Ring:              4,
		InnerSegmentBytes: 2 * int(ps),
	}
	if mode == BA {
		cfg.SSD = r.ssd
		cfg.EIDs = []core.EID{0, 1}
		cfg.DoubleBuffer = true
	}
	return cfg
}

func openSeg(t *testing.T, r *rig, mode CommitMode) *Segmented {
	t.Helper()
	s, err := OpenSegmented(r.env, segCfg(r, mode))
	if err != nil {
		t.Fatalf("OpenSegmented: %v", err)
	}
	return s
}

// segPayload pads records to ~1.4 KB so a handful fills a 16 KB
// segment file and the tests exercise rotation.
func segPayload(i int) string {
	return fmt.Sprintf("rec-%03d-", i) + strings.Repeat("p", 1400)
}

func TestSegmentedValidation(t *testing.T) {
	r := newRig()
	ps := int64(r.fs.PageSize())
	bad := []SegConfig{
		{Mode: Sync}, // no FS/Name
		{Mode: Async, FS: r.fs, Name: "a", SegmentFileBytes: 4 * ps, Ring: 2}, // unsupported mode
		{Mode: Sync, FS: r.fs, Name: "b", SegmentFileBytes: 4 * ps, Ring: 1},  // ring too small
		{Mode: Sync, FS: r.fs, Name: "c", SegmentFileBytes: 4*ps + 1, Ring: 2},
		{Mode: Sync, FS: r.fs, Name: "d", SegmentFileBytes: 4 * ps, Ring: 2, InnerSegmentBytes: 3000},
	}
	for i, cfg := range bad {
		if _, err := OpenSegmented(r.env, cfg); !errors.Is(err, ErrBadConfig) {
			t.Errorf("config %d: err = %v, want ErrBadConfig", i, err)
		}
	}
}

// TestSegmentedRoundtrip drives the full lifecycle in both modes:
// appends across several rotations, a mid-stream checkpoint, then a
// clean recovery through a fresh handle that must replay exactly the
// records past the checkpoint, in LSN order, with nothing to repair.
func TestSegmentedRoundtrip(t *testing.T) {
	for _, mode := range []CommitMode{Sync, BA} {
		t.Run(mode.String(), func(t *testing.T) {
			r := newRig()
			sl := openSeg(t, r, mode)
			const n = 28
			ends := make([]LSN, n)
			var ckpt LSN
			r.env.Go("write", func(p *sim.Proc) {
				for i := 0; i < n; i++ {
					lsn, err := sl.Append(p, []byte(segPayload(i)))
					if err != nil {
						t.Fatalf("append %d: %v", i, err)
					}
					if err := sl.Commit(p, lsn); err != nil {
						t.Fatalf("commit %d: %v", i, err)
					}
					ends[i] = lsn
					// Checkpoint from inside segment 1, so segment 0 truncates.
					if i == 14 {
						ckpt = lsn
						if err := sl.Checkpoint(p, lsn); err != nil {
							t.Fatalf("checkpoint: %v", err)
						}
					}
				}
				if err := sl.FlushToNAND(p); err != nil {
					t.Fatalf("flush: %v", err)
				}
			})
			r.env.Run()
			if first, cur := sl.Segments(); cur < 2 || first == 0 {
				t.Fatalf("segments = [%d, %d], want rotation and truncation", first, cur)
			}
			if sl.CheckpointLSN() != ckpt {
				t.Fatalf("ckpt = %d, want %d", sl.CheckpointLSN(), ckpt)
			}

			rl, err := OpenSegmented(r.env, segCfg(r, mode))
			if err != nil {
				t.Fatalf("reopen: %v", err)
			}
			var got []string
			var gotLSNs []LSN
			var rep RepairReport
			r.env.Go("recover", func(p *sim.Proc) {
				rep, err = rl.Recover(p, func(lsn LSN, payload []byte) error {
					got = append(got, string(payload))
					gotLSNs = append(gotLSNs, lsn)
					return nil
				})
				if err != nil {
					t.Fatalf("recover: %v", err)
				}
				// The recovered log must accept appends right where the
				// old one stopped.
				lsn, err := rl.Append(p, []byte("post-recovery"))
				if err != nil {
					t.Fatalf("append after recover: %v", err)
				}
				if err := rl.Commit(p, lsn); err != nil {
					t.Fatalf("commit after recover: %v", err)
				}
			})
			r.env.Run()
			if rep.TornTail {
				t.Fatalf("clean shutdown reported a torn tail: %+v", rep)
			}
			if reps, fail := rl.RepairStatus(); reps != 0 || fail != "" {
				t.Fatalf("repairs = %d %q, want none", reps, fail)
			}
			var want []string
			var wantLSNs []LSN
			for i := 0; i < n; i++ {
				if ends[i] > ckpt {
					want = append(want, segPayload(i))
					wantLSNs = append(wantLSNs, ends[i])
				}
			}
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] || gotLSNs[i] != wantLSNs[i] {
					t.Fatalf("record %d: got %q@%d, want %q@%d",
						i, got[i][:12], gotLSNs[i], want[i][:12], wantLSNs[i])
				}
			}
			r.env.Shutdown()
		})
	}
}

// buildBoundaryTail writes records until the first user record lands
// just past a segment boundary — the final record of the stream is the
// first user record of segment 1 — and returns everything a corruption
// test needs to mangle it on media.
func buildBoundaryTail(t *testing.T) (r *rig, payloads []string, last LSN) {
	t.Helper()
	r = newRig()
	sl := openSeg(t, r, Sync)
	r.env.Go("write", func(p *sim.Proc) {
		for i := 0; ; i++ {
			payload := segPayload(i)
			lsn, err := sl.Append(p, []byte(payload))
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			if err := sl.Commit(p, lsn); err != nil {
				t.Fatalf("commit %d: %v", i, err)
			}
			payloads = append(payloads, payload)
			last = lsn
			if _, cur := sl.Segments(); cur == 1 {
				return // this record straddled the rotation into segment 1
			}
		}
	})
	r.env.Run()
	return r, payloads, last
}

// corruptAndRecover mangles the straddling record on media via the raw
// file (mangle gets the record's local start offset within segment 1's
// ring file), recovers through a fresh handle, and returns the report
// plus the replayed payloads.
func corruptAndRecover(t *testing.T, r *rig, last LSN, lastLen int, mangle func(p *sim.Proc, start int64)) (RepairReport, []string, *Segmented) {
	t.Helper()
	cfg := segCfg(r, Sync)
	segBytes := cfg.SegmentFileBytes
	f, err := r.fs.Open("seg.1")
	if err != nil {
		t.Fatalf("open seg.1: %v", err)
	}
	localStart := int64(last) - segBytes - int64(lastLen) - RecordOverhead
	r.env.Go("corrupt", func(p *sim.Proc) {
		mangle(p, localStart)
		if err := f.Sync(p); err != nil {
			t.Fatalf("sync: %v", err)
		}
	})
	r.env.Run()

	rl, err := OpenSegmented(r.env, cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var rep RepairReport
	var got []string
	r.env.Go("recover", func(p *sim.Proc) {
		rep, err = rl.Recover(p, func(_ LSN, payload []byte) error {
			got = append(got, string(payload))
			return nil
		})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
	})
	r.env.Run()
	return rep, got, rl
}

// TestSegmentedTornBoundaryRecord tears the final record right after a
// segment boundary — the first user record of a freshly rotated
// segment — in two ways: a payload bit flip (CRC mismatch) and an
// overrun length field. Recovery must replay everything before the
// boundary, cut the tail back durably, and a second recovery must find
// nothing left to repair (the repair is idempotent).
func TestSegmentedTornBoundaryRecord(t *testing.T) {
	cases := []struct {
		name   string
		mangle func(t *testing.T, p *sim.Proc, f func(p *sim.Proc, off int64, b []byte), start int64)
	}{
		{"crc", func(t *testing.T, p *sim.Proc, write func(p *sim.Proc, off int64, b []byte), start int64) {
			write(p, start+RecordOverhead, []byte{'X'}) // flip a payload byte
		}},
		{"overrun", func(t *testing.T, p *sim.Proc, write func(p *sim.Proc, off int64, b []byte), start int64) {
			n := make([]byte, 4)
			binary.LittleEndian.PutUint32(n, 1<<30) // length overruns the segment
			write(p, start, n)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, payloads, last := buildBoundaryTail(t)
			lastLen := len(payloads[len(payloads)-1])
			f, err := r.fs.Open("seg.1")
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			write := func(p *sim.Proc, off int64, b []byte) {
				if err := f.WriteAt(p, off, b); err != nil {
					t.Fatalf("corrupt write: %v", err)
				}
			}
			rep, got, _ := corruptAndRecover(t, r, last, lastLen,
				func(p *sim.Proc, start int64) { tc.mangle(t, p, write, start) })
			if !rep.TornTail {
				t.Fatalf("recovery missed the torn tail: %+v", rep)
			}
			// The cut lands right after segment 1's header record.
			segBytes := segCfg(r, Sync).SegmentFileBytes
			wantCut := LSN(segBytes + RecordOverhead + segHdrBytes)
			if rep.RepairedAt != wantCut {
				t.Fatalf("repaired at %d, want %d", rep.RepairedAt, wantCut)
			}
			want := payloads[:len(payloads)-1] // the torn record is dropped
			if len(got) != len(want) {
				t.Fatalf("replayed %d records, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("record %d differs after repair", i)
				}
			}

			// Idempotence: a fresh recovery over the repaired media finds a
			// clean tail and repairs nothing.
			rl2, err := OpenSegmented(r.env, segCfg(r, Sync))
			if err != nil {
				t.Fatalf("reopen 2: %v", err)
			}
			var again []string
			r.env.Go("recover2", func(p *sim.Proc) {
				rep2, err := rl2.Recover(p, func(_ LSN, payload []byte) error {
					again = append(again, string(payload))
					return nil
				})
				if err != nil {
					t.Fatalf("recover 2: %v", err)
				}
				if rep2.TornTail {
					t.Fatalf("second recovery re-reported the repaired tail: %+v", rep2)
				}
			})
			r.env.Run()
			if reps, fail := rl2.RepairStatus(); reps != 0 || fail != "" {
				t.Fatalf("second recovery repairs = %d %q, want none", reps, fail)
			}
			if len(again) != len(want) {
				t.Fatalf("second recovery replayed %d, want %d", len(again), len(want))
			}
			r.env.Shutdown()
		})
	}
}

// TestSegmentedTruncationRacesReader checkpoints past a lagging tail
// reader: the reader streams a valid prefix, then gets a clean
// ErrTruncated — never garbage — once its position falls below the
// retention floor.
func TestSegmentedTruncationRacesReader(t *testing.T) {
	r := newRig()
	sl := openSeg(t, r, Sync)
	reader := sl.Tail(0)
	var prefix []string
	var truncErr error
	r.env.Go("race", func(p *sim.Proc) {
		// Commit a couple of records and let the reader consume them.
		for i := 0; i < 2; i++ {
			lsn, err := sl.Append(p, []byte(segPayload(i)))
			if err == nil {
				err = sl.Commit(p, lsn)
			}
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		for {
			rec, ok, err := reader.TryNext()
			if err != nil || !ok {
				break
			}
			prefix = append(prefix, rec.Payload)
		}
		// Now outrun the reader: enough records to rotate twice, then a
		// checkpoint that truncates the reader's segment away.
		var last LSN
		for i := 2; i < 25; i++ {
			lsn, err := sl.Append(p, []byte(segPayload(i)))
			if err == nil {
				err = sl.Commit(p, lsn)
			}
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
			last = lsn
		}
		if err := sl.Checkpoint(p, last); err != nil {
			t.Fatalf("checkpoint: %v", err)
		}
		if LSN(0) >= sl.RetainedLSN() {
			t.Fatalf("checkpoint did not move the retention floor")
		}
		_, _, truncErr = reader.TryNext()
	})
	r.env.Run()
	if len(prefix) != 2 || prefix[0] != segPayload(0) || prefix[1] != segPayload(1) {
		t.Fatalf("reader prefix = %d records, want the 2 committed ones", len(prefix))
	}
	if !errors.Is(truncErr, ErrTruncated) {
		t.Fatalf("lapped reader err = %v, want ErrTruncated", truncErr)
	}
	// A closed reader reports ErrReaderClosed, not the stale position.
	reader.Close()
	if _, _, err := reader.TryNext(); !errors.Is(err, ErrReaderClosed) {
		t.Fatalf("closed reader err = %v, want ErrReaderClosed", err)
	}
	r.env.Shutdown()
}

// groupCommitFingerprint runs 8 concurrent committers on a fresh env
// and digests everything observable: lifecycle stats, frontiers, and a
// CRC over every ring file's media bytes.
func groupCommitFingerprint(t *testing.T, mode CommitMode) (string, SegStats) {
	t.Helper()
	r := newRig()
	sl := openSeg(t, r, mode)
	wg := r.env.NewWaitGroup("committers")
	wg.Add(8)
	for c := 0; c < 8; c++ {
		r.env.GoIdx("commit", c, func(p *sim.Proc, c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				payload := fmt.Sprintf("c%d-%02d-%s", c, i, strings.Repeat("g", 900))
				lsn, err := sl.Append(p, []byte(payload))
				if err == nil {
					err = sl.Commit(p, lsn)
				}
				if err != nil {
					t.Errorf("committer %d op %d: %v", c, i, err)
					return
				}
			}
		})
	}
	var media uint32
	r.env.Go("main", func(p *sim.Proc) {
		wg.Wait(p)
		if err := sl.Drain(p); err != nil {
			t.Fatalf("drain: %v", err)
		}
		if err := sl.FlushToNAND(p); err != nil {
			t.Fatalf("flush: %v", err)
		}
		crc := crc32.NewIEEE()
		for _, sf := range sl.segs {
			buf := make([]byte, sf.file.Capacity())
			if err := sf.file.ReadAt(p, 0, buf); err != nil {
				t.Fatalf("read media: %v", err)
			}
			crc.Write(buf)
		}
		media = crc.Sum32()
	})
	r.env.Run()
	st := sl.Stats()
	fp := fmt.Sprintf("media=%08x tail=%d durable=%d commits=%d flushes=%d rotations=%d commit_ns=%d",
		media, sl.TailLSN(), sl.DurableLSN(), st.Commits, st.GroupFlushes, st.Rotations, st.CommitTime)
	r.env.Shutdown()
	return fp, st
}

// TestSegmentedGroupCommitDeterminism: N concurrent committers produce
// byte-identical media and metrics across independent runs, and on the
// block+flush path the group-commit leader demonstrably coalesces
// multiple committers per flush.
func TestSegmentedGroupCommitDeterminism(t *testing.T) {
	for _, mode := range []CommitMode{Sync, BA} {
		t.Run(mode.String(), func(t *testing.T) {
			a, st := groupCommitFingerprint(t, mode)
			b, _ := groupCommitFingerprint(t, mode)
			if a != b {
				t.Fatalf("group commit nondeterministic:\n  %s\n  %s", a, b)
			}
			if st.Commits != 49 { // 8 committers x 6 records + the final Drain
				t.Fatalf("commits = %d, want 49", st.Commits)
			}
			if st.GroupFlushes == 0 || st.GroupFlushes > st.Commits {
				t.Fatalf("group flushes = %d (commits %d)", st.GroupFlushes, st.Commits)
			}
			if mode == Sync && st.GroupFlushes >= st.Commits {
				t.Fatalf("sync mode never coalesced: %d flushes for %d commits",
					st.GroupFlushes, st.Commits)
			}
		})
	}
}

// TestSegmentedBAPowerLoss cuts power under the BA byte path with a
// committed history plus one staged (uncommitted) record: after the
// capacitor dump and a fresh recovery, every committed record replays
// in order; the staged record may legitimately survive the dump but
// nothing else may appear.
func TestSegmentedBAPowerLoss(t *testing.T) {
	r := newRig()
	sl := openSeg(t, r, BA)
	const n = 10
	r.env.Go("crash", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			lsn, err := sl.Append(p, []byte(segPayload(i)))
			if err == nil {
				err = sl.Commit(p, lsn)
			}
			if err != nil {
				t.Fatalf("append %d: %v", i, err)
			}
		}
		if _, err := sl.Append(p, []byte("staged-only")); err != nil {
			t.Fatalf("stage: %v", err)
		}
		if _, err := r.ssd.PowerLoss(p); err != nil &&
			!errors.Is(err, core.ErrInsufficient) && !errors.Is(err, core.ErrDumpTorn) {
			t.Fatalf("power loss: %v", err)
		}
		if err := r.ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
	})
	r.env.Run()

	rl, err := OpenSegmented(r.env, segCfg(r, BA))
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	var got []string
	r.env.Go("recover", func(p *sim.Proc) {
		if _, err := rl.Recover(p, func(_ LSN, payload []byte) error {
			got = append(got, string(payload))
			return nil
		}); err != nil {
			t.Fatalf("recover: %v", err)
		}
	})
	r.env.Run()
	if _, fail := rl.RepairStatus(); fail != "" {
		t.Fatalf("repair failed: %s", fail)
	}
	if len(got) < n {
		t.Fatalf("recovered %d records, want the %d committed ones", len(got), n)
	}
	for i := 0; i < n; i++ {
		if got[i] != segPayload(i) {
			t.Fatalf("committed record %d lost or reordered", i)
		}
	}
	for _, extra := range got[n:] {
		if extra != "staged-only" {
			t.Fatalf("phantom record %q recovered", extra[:min(len(extra), 16)])
		}
	}
	r.env.Shutdown()
}
