package wal

import (
	"errors"
	"fmt"
	"testing"

	"twobssd/internal/core"
	"twobssd/internal/sim"
)

// TestRebindMovesWindow drives the fleet QoS lease pattern: commit a
// batch, flush, Rebind onto different mapping-table entries and a
// different BA-buffer window, commit more — every record from every
// lease must recover from media, in order.
func TestRebindMovesWindow(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", BA)
	segBytes := l.cfg.SegmentBytes
	var want []string
	batch := func(p *sim.Proc, lease int) {
		for i := 0; i < 12; i++ {
			payload := fmt.Sprintf("lease-%d-record-%03d", lease, i)
			want = append(want, payload)
			lsn, err := l.Append(p, []byte(payload))
			if err != nil {
				t.Fatalf("lease %d append %d: %v", lease, i, err)
			}
			if err := l.Commit(p, lsn); err != nil {
				t.Fatalf("lease %d commit %d: %v", lease, i, err)
			}
		}
	}
	r.env.Go("t", func(p *sim.Proc) {
		batch(p, 0)
		// Rebind on a pinned log must refuse: the window still holds
		// undumped bytes on the old entries.
		if err := l.Rebind([]core.EID{2, 3}, 2*segBytes); !errors.Is(err, ErrBadConfig) {
			t.Errorf("rebind while pinned: err = %v, want ErrBadConfig", err)
		}
		if err := l.FlushToNAND(p); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if err := l.Rebind([]core.EID{2, 3}, 2*segBytes); err != nil {
			t.Fatalf("rebind: %v", err)
		}
		batch(p, 1)
		if err := l.FlushToNAND(p); err != nil {
			t.Fatalf("flush 2: %v", err)
		}
		// Too few entries for a double-buffered log must refuse.
		if err := l.Rebind([]core.EID{1}, 0); !errors.Is(err, ErrBadConfig) {
			t.Errorf("rebind with 1 EID: err = %v, want ErrBadConfig", err)
		}
		// And back onto the original window for a third lease.
		if err := l.Rebind([]core.EID{0, 1}, 0); err != nil {
			t.Fatalf("rebind back: %v", err)
		}
		batch(p, 2)
		if err := l.FlushToNAND(p); err != nil {
			t.Fatalf("flush 3: %v", err)
		}
		var got []string
		err := l.Recover(p, func(_ LSN, payload []byte) error {
			got = append(got, string(payload))
			return nil
		})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if len(got) != len(want) {
			t.Fatalf("recovered %d records, want %d", len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d: %q, want %q", i, got[i], want[i])
			}
		}
	})
	r.env.Run()
	r.env.Shutdown()
}

// Rebind is a byte-path concept; block-mode logs must refuse it.
func TestRebindRejectsBlockModes(t *testing.T) {
	r := newRig()
	l := r.openLog(t, "log", Sync)
	if err := l.Rebind([]core.EID{2, 3}, 0); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("rebind on SYNC log: err = %v, want ErrBadConfig", err)
	}
	r.env.Shutdown()
}
