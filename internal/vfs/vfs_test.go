package vfs

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/sim"
)

func newFS(e *sim.Env) *FS {
	p := device.ULLSSD()
	p.Nand.Channels = 2
	p.Nand.DiesPerChannel = 2
	p.Nand.BlocksPerDie = 16
	p.Nand.PagesPerBlock = 16
	p.FTL.OverProvision = 0.25
	p.WriteBufferPages = 32
	p.DrainWorkers = 4
	return New(device.New(e, p))
}

func TestCreateOpenRemove(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, err := fs.Create("wal.log", 64*1024)
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if f.Capacity() != 64*1024 {
		t.Fatalf("capacity = %d", f.Capacity())
	}
	if !fs.Exists("wal.log") {
		t.Fatal("file missing")
	}
	if _, err := fs.Create("wal.log", 1024); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	got, err := fs.Open("wal.log")
	if err != nil || got != f {
		t.Fatalf("open: %v", err)
	}
	if err := fs.Remove("wal.log"); err != nil {
		t.Fatalf("remove: %v", err)
	}
	if _, err := fs.Open("wal.log"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("open removed err = %v", err)
	}
	if err := fs.Remove("wal.log"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double remove err = %v", err)
	}
}

func TestCapacityRoundsToPages(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, err := fs.Create("x", 100)
	if err != nil {
		t.Fatal(err)
	}
	if f.Capacity() != int64(fs.PageSize()) {
		t.Fatalf("capacity = %d, want one page", f.Capacity())
	}
}

func TestWriteReadAlignedAndUnaligned(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, _ := fs.Create("f", 64*1024)
	e.Go("t", func(p *sim.Proc) {
		// Unaligned write crossing a page boundary.
		data := bytes.Repeat([]byte{0xAB}, 6000)
		if err := f.WriteAt(p, 1000, data); err != nil {
			t.Fatalf("write: %v", err)
		}
		got := make([]byte, 6000)
		if err := f.ReadAt(p, 1000, got); err != nil {
			t.Fatalf("read: %v", err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("unaligned round trip failed")
		}
		// RMW preserved the untouched prefix.
		head := make([]byte, 1000)
		f.ReadAt(p, 0, head)
		for _, b := range head {
			if b != 0 {
				t.Fatal("RMW corrupted prefix")
			}
		}
		// Aligned fast path.
		aligned := bytes.Repeat([]byte{0x33}, 2*fs.PageSize())
		if err := f.WriteAt(p, int64(8*fs.PageSize()), aligned); err != nil {
			t.Fatalf("aligned write: %v", err)
		}
		got2 := make([]byte, len(aligned))
		f.ReadAt(p, int64(8*fs.PageSize()), got2)
		if !bytes.Equal(got2, aligned) {
			t.Fatal("aligned round trip failed")
		}
	})
	e.Run()
}

func TestSizeHighWaterMark(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, _ := fs.Create("f", 64*1024)
	e.Go("t", func(p *sim.Proc) {
		f.WriteAt(p, 100, []byte("abc"))
		if f.Size() != 103 {
			t.Errorf("size = %d", f.Size())
		}
		f.WriteAt(p, 0, []byte("x"))
		if f.Size() != 103 {
			t.Errorf("size shrank: %d", f.Size())
		}
	})
	e.Run()
}

func TestBoundsChecks(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, _ := fs.Create("f", 8192)
	e.Go("t", func(p *sim.Proc) {
		if err := f.WriteAt(p, 8190, []byte("abc")); !errors.Is(err, ErrPastEnd) {
			t.Errorf("past-end write err = %v", err)
		}
		if err := f.ReadAt(p, -1, make([]byte, 1)); !errors.Is(err, ErrBadLength) {
			t.Errorf("negative offset err = %v", err)
		}
	})
	e.Run()
}

func TestLBAMappingContiguous(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, _ := fs.Create("f", int64(4*fs.PageSize()))
	base := f.LBA(0)
	for i := 0; i < 4; i++ {
		if f.LBA(int64(i*fs.PageSize())) != base+ftl.LBA(i) {
			t.Fatalf("page %d not contiguous", i)
		}
	}
}

func TestAllocationReuseAfterRemove(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	free0 := fs.FreePages()
	a, _ := fs.Create("a", int64(10*fs.PageSize()))
	if fs.FreePages() != free0-10 {
		t.Fatalf("free = %d", fs.FreePages())
	}
	fs.Create("b", int64(5*fs.PageSize()))
	startA := a.LBA(0)
	fs.Remove("a")
	if fs.FreePages() != free0-5 {
		t.Fatalf("free after remove = %d", fs.FreePages())
	}
	// First-fit should reuse a's hole.
	c, _ := fs.Create("c", int64(10*fs.PageSize()))
	if c.LBA(0) != startA {
		t.Fatalf("hole not reused: %d vs %d", c.LBA(0), startA)
	}
}

func TestNoSpace(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	if _, err := fs.Create("huge", int64(fs.FreePages()+1)*int64(fs.PageSize())); !errors.Is(err, ErrNoSpace) {
		t.Fatalf("err = %v", err)
	}
}

func TestFragmentationCoalescing(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	ps := int64(fs.PageSize())
	fs.Create("a", 4*ps)
	fs.Create("b", 4*ps)
	fs.Create("c", 4*ps)
	fs.Remove("a")
	fs.Remove("c")
	fs.Remove("b") // middle last: all three must coalesce with tail
	f, err := fs.Create("big", 12*ps)
	if err != nil {
		t.Fatalf("coalescing failed: %v", err)
	}
	if f.LBA(0) != 0 {
		t.Fatalf("expected allocation at 0, got %d", f.LBA(0))
	}
}

func TestRemovedFileRejectsIO(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	f, _ := fs.Create("f", 8192)
	fs.Remove("f")
	e.Go("t", func(p *sim.Proc) {
		if err := f.WriteAt(p, 0, []byte("x")); !errors.Is(err, ErrNotFound) {
			t.Errorf("write err = %v", err)
		}
		if err := f.Sync(p); !errors.Is(err, ErrNotFound) {
			t.Errorf("sync err = %v", err)
		}
	})
	e.Run()
}

func TestListSorted(t *testing.T) {
	e := sim.NewEnv()
	fs := newFS(e)
	fs.Create("zeta", 4096)
	fs.Create("alpha", 4096)
	got := fs.List()
	if len(got) != 2 || got[0] != "alpha" || got[1] != "zeta" {
		t.Fatalf("list = %v", got)
	}
}

// Property: a write at any offset/length within capacity reads back
// identically and never disturbs a disjoint sentinel region.
func TestPropertyWriteReadIsolation(t *testing.T) {
	prop := func(off uint16, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > 4096 {
			data = data[:4096]
		}
		e := sim.NewEnv()
		fs := newFS(e)
		f, err := fs.Create("f", 64*1024)
		if err != nil {
			return false
		}
		o := int64(off) % (64*1024 - int64(len(data)))
		// Sentinel in the last page.
		sentOff := f.Capacity() - int64(fs.PageSize())
		if o+int64(len(data)) > sentOff {
			return true
		}
		ok := true
		e.Go("t", func(p *sim.Proc) {
			sent := bytes.Repeat([]byte{0xEE}, fs.PageSize())
			f.WriteAt(p, sentOff, sent)
			if err := f.WriteAt(p, o, data); err != nil {
				ok = false
				return
			}
			got := make([]byte, len(data))
			f.ReadAt(p, o, got)
			if !bytes.Equal(got, data) {
				ok = false
				return
			}
			gotSent := make([]byte, fs.PageSize())
			f.ReadAt(p, sentOff, gotSent)
			ok = bytes.Equal(gotSent, sent)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
