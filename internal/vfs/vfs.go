// Package vfs is a minimal extent-based file layer over a block
// device: named, contiguously allocated files with byte-granular
// read/write (read-modify-write for partial pages) and fsync.
//
// Files are contiguous on purpose: the 2B-SSD BA_PIN API binds a
// BA-buffer range to a *contiguous* LBA range, so WAL segment files
// must map 1:1 onto LBA ranges (paper Section IV-B pins log files).
package vfs

import (
	"errors"
	"fmt"
	"sort"

	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/sim"
)

// Errors reported by the file layer.
var (
	ErrExists    = errors.New("vfs: file exists")
	ErrNotFound  = errors.New("vfs: file not found")
	ErrNoSpace   = errors.New("vfs: no contiguous space")
	ErrPastEnd   = errors.New("vfs: access beyond file capacity")
	ErrBadLength = errors.New("vfs: negative offset or length")
)

type extent struct {
	start ftl.LBA
	pages int
}

// FS is a flat namespace of contiguous files on one device.
type FS struct {
	dev   *device.Device
	files map[string]*File
	free  []extent // sorted by start, coalesced
}

// New formats an empty filesystem over the device's whole capacity.
func New(dev *device.Device) *FS {
	return &FS{
		dev:   dev,
		files: make(map[string]*File),
		free:  []extent{{start: 0, pages: int(dev.Pages())}},
	}
}

// Device returns the underlying block device.
func (fs *FS) Device() *device.Device { return fs.dev }

// PageSize returns the device page size.
func (fs *FS) PageSize() int { return fs.dev.PageSize() }

// FreePages reports the total unallocated pages.
func (fs *FS) FreePages() int {
	n := 0
	for _, e := range fs.free {
		n += e.pages
	}
	return n
}

// Create allocates a contiguous file with the given byte capacity
// (rounded up to whole pages).
func (fs *FS) Create(name string, capacity int64) (*File, error) {
	if _, ok := fs.files[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrExists, name)
	}
	if capacity <= 0 {
		return nil, fmt.Errorf("%w: capacity %d", ErrBadLength, capacity)
	}
	ps := int64(fs.PageSize())
	pages := int((capacity + ps - 1) / ps)
	ext, err := fs.alloc(pages)
	if err != nil {
		return nil, err
	}
	f := &File{fs: fs, name: name, ext: ext, capacity: int64(pages) * ps}
	fs.files[name] = f
	return f, nil
}

// Open returns an existing file.
func (fs *FS) Open(name string) (*File, error) {
	f, ok := fs.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	return f, nil
}

// Exists reports whether a file exists.
func (fs *FS) Exists(name string) bool {
	_, ok := fs.files[name]
	return ok
}

// Remove deletes a file, trims its pages and returns them to the free
// pool.
func (fs *FS) Remove(name string) error {
	f, ok := fs.files[name]
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, name)
	}
	for i := 0; i < f.ext.pages; i++ {
		// Trim failures only mean the page was never mapped.
		_ = fs.dev.FTL().Trim(f.ext.start + ftl.LBA(i))
	}
	fs.release(f.ext)
	delete(fs.files, name)
	f.removed = true
	return nil
}

// List returns the file names in lexical order.
func (fs *FS) List() []string {
	names := make([]string, 0, len(fs.files))
	for n := range fs.files {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// alloc finds the first free extent of at least `pages` pages.
func (fs *FS) alloc(pages int) (extent, error) {
	for i, e := range fs.free {
		if e.pages >= pages {
			out := extent{start: e.start, pages: pages}
			if e.pages == pages {
				fs.free = append(fs.free[:i], fs.free[i+1:]...)
			} else {
				fs.free[i] = extent{start: e.start + ftl.LBA(pages), pages: e.pages - pages}
			}
			return out, nil
		}
	}
	return extent{}, fmt.Errorf("%w: %d pages", ErrNoSpace, pages)
}

// release returns an extent to the free pool, coalescing neighbours.
func (fs *FS) release(ext extent) {
	fs.free = append(fs.free, ext)
	sort.Slice(fs.free, func(i, j int) bool { return fs.free[i].start < fs.free[j].start })
	out := fs.free[:1]
	for _, e := range fs.free[1:] {
		last := &out[len(out)-1]
		if last.start+ftl.LBA(last.pages) == e.start {
			last.pages += e.pages
		} else {
			out = append(out, e)
		}
	}
	fs.free = out
}

// File is one contiguous file.
type File struct {
	fs       *FS
	name     string
	ext      extent
	capacity int64
	size     int64 // high-water mark of written bytes
	removed  bool
}

// Name returns the file name.
func (f *File) Name() string { return f.name }

// Capacity returns the allocated byte capacity.
func (f *File) Capacity() int64 { return f.capacity }

// Size returns the written high-water mark.
func (f *File) Size() int64 { return f.size }

// LBA returns the logical page address for a byte offset within the
// file. The file is contiguous, so a range maps to a contiguous LBA
// range — this is what BA_PIN consumes.
func (f *File) LBA(off int64) ftl.LBA {
	return f.ext.start + ftl.LBA(off/int64(f.fs.PageSize()))
}

// Pages returns the file capacity in pages.
func (f *File) Pages() int { return f.ext.pages }

func (f *File) check(off int64, n int) error {
	if f.removed {
		return fmt.Errorf("%w: %s (removed)", ErrNotFound, f.name)
	}
	if off < 0 || n < 0 {
		return ErrBadLength
	}
	if off+int64(n) > f.capacity {
		return fmt.Errorf("%w: [%d,%d) of %d", ErrPastEnd, off, off+int64(n), f.capacity)
	}
	return nil
}

// WriteAt writes data at a byte offset. Unaligned head/tail pages use
// read-modify-write, exactly like a page cache would.
func (f *File) WriteAt(p *sim.Proc, off int64, data []byte) error {
	if err := f.check(off, len(data)); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	ps := int64(f.fs.PageSize())
	cur := off
	rem := data
	for len(rem) > 0 {
		pageOff := cur % ps
		if pageOff == 0 && int64(len(rem)) >= ps {
			// Fast path: whole aligned pages in one command.
			whole := (int64(len(rem)) / ps) * ps
			if err := f.fs.dev.WritePages(p, f.LBA(cur), rem[:whole]); err != nil {
				return err
			}
			cur += whole
			rem = rem[whole:]
			continue
		}
		// Partial page: read-modify-write.
		n := ps - pageOff
		if int64(len(rem)) < n {
			n = int64(len(rem))
		}
		page, err := f.fs.dev.ReadPages(p, f.LBA(cur), 1)
		if err != nil {
			return err
		}
		copy(page[pageOff:], rem[:n])
		if err := f.fs.dev.WritePages(p, f.LBA(cur), page); err != nil {
			return err
		}
		cur += n
		rem = rem[n:]
	}
	if off+int64(len(data)) > f.size {
		f.size = off + int64(len(data))
	}
	return nil
}

// ReadAt reads len(buf) bytes from a byte offset.
func (f *File) ReadAt(p *sim.Proc, off int64, buf []byte) error {
	if err := f.check(off, len(buf)); err != nil {
		return err
	}
	if len(buf) == 0 {
		return nil
	}
	ps := int64(f.fs.PageSize())
	firstPage := off / ps
	lastPage := (off + int64(len(buf)) - 1) / ps
	pages := int(lastPage - firstPage + 1)
	data, err := f.fs.dev.ReadPages(p, f.ext.start+ftl.LBA(firstPage), pages)
	if err != nil {
		return err
	}
	copy(buf, data[off-firstPage*ps:])
	return nil
}

// Sync is fsync: it forces all acknowledged writes down to NAND.
func (f *File) Sync(p *sim.Proc) error {
	if f.removed {
		return fmt.Errorf("%w: %s (removed)", ErrNotFound, f.name)
	}
	return f.fs.dev.Flush(p)
}
