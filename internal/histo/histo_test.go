package histo

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"twobssd/internal/sim"
)

func TestEmpty(t *testing.T) {
	var h H
	if h.N() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.Min() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatalf("empty extremes: min=%v max=%v sum=%v", h.Min(), h.Max(), h.Sum())
	}
	// Every quantile, including the clamped edges, is 0 when empty.
	for _, q := range []float64{-1, 0, 0.5, 0.999, 1, 2} {
		if v := h.Quantile(q); v != 0 {
			t.Fatalf("Quantile(%v) = %v on empty", q, v)
		}
	}
	if h.String() != "histo{empty}" {
		t.Fatalf("String = %q", h.String())
	}
	if h.Bars(10) != "(no samples)" {
		t.Fatal("Bars on empty")
	}
}

func TestSingleSample(t *testing.T) {
	var h H
	h.Observe(1000)
	if h.N() != 1 || h.Mean() != 1000 || h.Min() != 1000 || h.Max() != 1000 {
		t.Fatalf("h = %s", h.String())
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if v := h.Quantile(q); v != 1000 {
			t.Fatalf("Quantile(%v) = %v", q, v)
		}
	}
}

func TestNegativeClamped(t *testing.T) {
	var h H
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("min = %v", h.Min())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h H
	rng := rand.New(rand.NewSource(1))
	var samples []sim.Duration
	for i := 0; i < 20000; i++ {
		// Log-uniform over 100ns .. 1ms.
		d := sim.Duration(100 * (1 << rng.Intn(14)))
		d += sim.Duration(rng.Int63n(int64(d)))
		h.Observe(d)
		samples = append(samples, d)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))]
		got := h.Quantile(q)
		ratio := float64(got) / float64(exact)
		if ratio < 0.90 || ratio > 1.10 {
			t.Errorf("q=%v: got %v exact %v (ratio %.3f)", q, got, exact, ratio)
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b H
	for i := 1; i <= 100; i++ {
		a.Observe(sim.Duration(i))
	}
	for i := 1000; i <= 2000; i += 10 {
		b.Observe(sim.Duration(i))
	}
	n := a.N() + b.N()
	a.Merge(&b)
	if a.N() != n {
		t.Fatalf("merged n = %d, want %d", a.N(), n)
	}
	if a.Min() != 1 || a.Max() != 2000 {
		t.Fatalf("merged range [%v,%v]", a.Min(), a.Max())
	}
	var empty H
	a.Merge(&empty) // no-op
	if a.N() != n {
		t.Fatal("merging empty changed n")
	}
	if a.Min() != 1 || a.Max() != 2000 {
		t.Fatalf("merging empty changed range to [%v,%v]", a.Min(), a.Max())
	}
	a.Merge(nil) // also a no-op
	if a.N() != n {
		t.Fatal("merging nil changed n")
	}
}

// Merge must combine min/max correctly when either side is empty — the
// registry aggregation path merges many histograms, some untouched.
func TestMergeEmptySides(t *testing.T) {
	var src H
	src.Observe(500)
	src.Observe(9000)

	// Empty destination adopts the source extremes (the zero-valued
	// min/max of the empty side must not win).
	var dst H
	dst.Merge(&src)
	if dst.N() != 2 || dst.Min() != 500 || dst.Max() != 9000 || dst.Sum() != 9500 {
		t.Fatalf("empty-dst merge: n=%d min=%v max=%v sum=%v",
			dst.N(), dst.Min(), dst.Max(), dst.Sum())
	}
	if dst.Quantile(1) != 9000 {
		t.Fatalf("merged p100 = %v", dst.Quantile(1))
	}

	// Both sides empty stays empty and well-defined.
	var a, b H
	a.Merge(&b)
	if a.N() != 0 || a.Min() != 0 || a.Max() != 0 || a.Quantile(0.99) != 0 {
		t.Fatalf("empty-empty merge: %s", a.String())
	}

	// A merged-into histogram keeps exact sums for Mean.
	if dst.Mean() != 4750 {
		t.Fatalf("merged mean = %v", dst.Mean())
	}
}

func TestBarsRender(t *testing.T) {
	var h H
	for i := 0; i < 100; i++ {
		h.Observe(500)
		h.Observe(50000)
	}
	out := h.Bars(20)
	if !strings.Contains(out, "█") {
		t.Fatalf("no bars in:\n%s", out)
	}
	if strings.Count(out, "\n") < 2 {
		t.Fatalf("expected >= 2 rows:\n%s", out)
	}
}

// Property: quantiles are monotone in q and bounded by [min, max].
func TestPropertyQuantileMonotone(t *testing.T) {
	prop := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		var h H
		for _, r := range raw {
			h.Observe(sim.Duration(r % 10_000_000))
		}
		prev := sim.Duration(-1)
		for q := 0.0; q <= 1.0; q += 0.05 {
			v := h.Quantile(q)
			if v < prev || v < h.Min() || v > h.Max() {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: mean equals the true mean exactly (sum is tracked, not
// reconstructed from buckets).
func TestPropertyExactMean(t *testing.T) {
	prop := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h H
		var sum int64
		for _, r := range raw {
			h.Observe(sim.Duration(r))
			sum += int64(r)
		}
		return h.Mean() == sim.Duration(sum/int64(len(raw)))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Windowed-delta edges (PR 6): empty window, single-sample window, and
// merges involving empty windows. PR 1 fixed empty-histogram semantics
// once; these pin the same rules for per-window snapshots.

func TestWindowEmpty(t *testing.T) {
	var h H
	h.Observe(100)
	h.Observe(200)
	prev := h.Clone()
	w := h.WindowSince(&prev) // nothing observed since the snapshot
	if !w.Empty() || w.N != 0 || w.Sum != 0 || len(w.Buckets) != 0 {
		t.Fatalf("empty window not empty: %+v", w)
	}
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := w.Quantile(q); got != 0 {
			t.Fatalf("empty window q%.2f = %v, want 0", q, got)
		}
	}
	if w.Mean() != 0 {
		t.Fatalf("empty window mean = %v, want 0", w.Mean())
	}
}

func TestWindowSingleSample(t *testing.T) {
	var h H
	h.Observe(500)
	prev := h.Clone()
	h.Observe(1000)
	w := h.WindowSince(&prev)
	if w.N != 1 || w.Sum != 1000 {
		t.Fatalf("single-sample window n=%d sum=%v, want 1/1000", w.N, w.Sum)
	}
	// Every quantile of a one-sample window is that sample's bucket
	// (log-bucketed, so reconstruction carries ~4% error).
	lo, hi := sim.Duration(float64(1000)*0.96), sim.Duration(1000)
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := w.Quantile(q)
		if got < lo || got > hi {
			t.Fatalf("single-sample q%.2f = %v, want within [%v,%v]", q, got, lo, hi)
		}
	}
	if w.Mean() != 1000 {
		t.Fatalf("single-sample mean = %v, want 1000 (sums are exact)", w.Mean())
	}
}

func TestWindowSinceNil(t *testing.T) {
	var h H
	h.Observe(100)
	w := h.WindowSince(nil)
	if w.N != 1 || w.Sum != 100 {
		t.Fatalf("window since nil = %+v, want the full histogram", w)
	}
}

func TestWindowMergeOfEmpty(t *testing.T) {
	var h H
	h.Observe(100)
	h.Observe(300)
	full := h.WindowSince(nil)

	// empty.Merge(full) copies; full.Merge(empty) is a no-op.
	var a Window
	a.Merge(full)
	if a.N != 2 || a.Sum != 400 || len(a.Buckets) != len(full.Buckets) {
		t.Fatalf("merge into empty = %+v, want copy of %+v", a, full)
	}
	b := full
	before := b.N
	b.Merge(Window{})
	if b.N != before || b.Sum != 400 {
		t.Fatalf("merge of empty changed window: %+v", b)
	}
	// And two empties stay empty.
	var c, d Window
	c.Merge(d)
	if !c.Empty() {
		t.Fatalf("empty+empty = %+v", c)
	}
}

func TestWindowMergeInterleaved(t *testing.T) {
	var h1, h2 H
	for _, v := range []sim.Duration{10, 1000, 100000} {
		h1.Observe(v)
	}
	for _, v := range []sim.Duration{100, 1000, 10000} {
		h2.Observe(v)
	}
	w := h1.WindowSince(nil)
	w.Merge(h2.WindowSince(nil))
	if w.N != 6 || w.Sum != 112110 {
		t.Fatalf("merged window n=%d sum=%v, want 6/112110", w.N, w.Sum)
	}
	// Bucket list stays sorted and counts add where both sides hit the
	// same bucket (1000 appears in both).
	last := int32(-1)
	var total uint64
	for _, b := range w.Buckets {
		if b.Idx <= last {
			t.Fatalf("bucket indexes not strictly sorted: %+v", w.Buckets)
		}
		last = b.Idx
		total += b.Count
	}
	if total != 6 {
		t.Fatalf("bucket counts sum to %d, want 6", total)
	}
	// Window quantiles match the equivalent cumulative histogram's
	// bucket reconstruction.
	var all H
	all.Merge(&h1)
	all.Merge(&h2)
	if got, want := w.Quantile(0.5), all.Quantile(0.5); got != want {
		t.Fatalf("merged window p50 = %v, cumulative p50 = %v", got, want)
	}
}
