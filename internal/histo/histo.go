// Package histo provides a log-bucketed latency histogram for
// virtual-time measurements: constant memory, ~4 % relative error, and
// percentile queries. The paper argues BA-WAL "optimizes both tail
// latencies and SSD lifespan" (Section IV-A); the fio and bench layers
// use these histograms to make the tail observable.
package histo

import (
	"fmt"
	"math"
	"strings"

	"twobssd/internal/sim"
)

// bucketsPerOctave subdivides each power of two; 16 gives ~4.3 %
// worst-case relative error on reconstructed values.
const bucketsPerOctave = 16

// maxBuckets covers 1 ns .. ~1100 s.
const maxBuckets = 64 * bucketsPerOctave / 2

// H is a latency histogram. The zero value is ready to use.
type H struct {
	counts [maxBuckets]uint64
	n      uint64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d sim.Duration) int {
	if d < 1 {
		return 0
	}
	l := math.Log2(float64(d))
	idx := int(l * bucketsPerOctave)
	if idx >= maxBuckets {
		idx = maxBuckets - 1
	}
	return idx
}

// bucketLow returns the lower bound of a bucket.
func bucketLow(idx int) sim.Duration {
	return sim.Duration(math.Exp2(float64(idx) / bucketsPerOctave))
}

// Observe records one sample.
func (h *H) Observe(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// N returns the sample count.
func (h *H) N() uint64 { return h.n }

// Sum returns the total of all samples.
func (h *H) Sum() sim.Duration { return h.sum }

// Mean returns the average sample.
func (h *H) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.n)
}

// Min returns the smallest sample, or 0 on an empty histogram.
func (h *H) Min() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 on an empty histogram.
func (h *H) Max() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1).
// An empty histogram reports 0 for every quantile.
func (h *H) Quantile(q float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			// Clamp the reconstruction to the observed range.
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P99 and P999 are convenience accessors for common tails.
func (h *H) P50() sim.Duration { return h.Quantile(0.50) }

// P99 returns the 99th percentile.
func (h *H) P99() sim.Duration { return h.Quantile(0.99) }

// P999 returns the 99.9th percentile.
func (h *H) P999() sim.Duration { return h.Quantile(0.999) }

// Merge folds other into h. Merging an empty histogram (or nil) is a
// no-op; merging into an empty one copies the extremes, so min/max stay
// correct whichever side is empty.
func (h *H) Merge(other *H) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
}

// String summarizes the distribution.
func (h *H) String() string {
	if h.n == 0 {
		return "histo{empty}"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.n, h.Mean(), h.P50(), h.P99(), h.P999(), h.max)
}

// Bars renders a coarse ASCII distribution (for CLI output).
func (h *H) Bars(width int) string {
	if h.n == 0 {
		return "(no samples)"
	}
	// Collapse to octaves for readability.
	type row struct {
		low   sim.Duration
		count uint64
	}
	var rows []row
	for i := 0; i < maxBuckets; i += bucketsPerOctave {
		var c uint64
		for j := i; j < i+bucketsPerOctave && j < maxBuckets; j++ {
			c += h.counts[j]
		}
		if c > 0 {
			rows = append(rows, row{low: bucketLow(i), count: c})
		}
	}
	var peak uint64
	for _, r := range rows {
		if r.count > peak {
			peak = r.count
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		bar := int(uint64(width) * r.count / peak)
		fmt.Fprintf(&sb, "%10v │%-*s│ %d\n", r.low, width, strings.Repeat("█", bar), r.count)
	}
	return sb.String()
}
