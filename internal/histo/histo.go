// Package histo provides a log-bucketed latency histogram for
// virtual-time measurements: constant memory, ~4 % relative error, and
// percentile queries. The paper argues BA-WAL "optimizes both tail
// latencies and SSD lifespan" (Section IV-A); the fio and bench layers
// use these histograms to make the tail observable.
package histo

import (
	"fmt"
	"math"
	"strings"

	"twobssd/internal/sim"
)

// bucketsPerOctave subdivides each power of two; 16 gives ~4.3 %
// worst-case relative error on reconstructed values.
const bucketsPerOctave = 16

// maxBuckets covers 1 ns .. ~1100 s.
const maxBuckets = 64 * bucketsPerOctave / 2

// H is a latency histogram. The zero value is ready to use.
type H struct {
	counts [maxBuckets]uint64
	n      uint64
	sum    sim.Duration
	min    sim.Duration
	max    sim.Duration
}

// bucketOf maps a duration to its bucket index.
func bucketOf(d sim.Duration) int {
	if d < 1 {
		return 0
	}
	l := math.Log2(float64(d))
	idx := int(l * bucketsPerOctave)
	if idx >= maxBuckets {
		idx = maxBuckets - 1
	}
	return idx
}

// bucketLow returns the lower bound of a bucket.
func bucketLow(idx int) sim.Duration {
	return sim.Duration(math.Exp2(float64(idx) / bucketsPerOctave))
}

// Observe records one sample.
func (h *H) Observe(d sim.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketOf(d)]++
	h.n++
	h.sum += d
	if h.n == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
}

// N returns the sample count.
func (h *H) N() uint64 { return h.n }

// Sum returns the total of all samples.
func (h *H) Sum() sim.Duration { return h.sum }

// Mean returns the average sample.
func (h *H) Mean() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.sum / sim.Duration(h.n)
}

// Min returns the smallest sample, or 0 on an empty histogram.
func (h *H) Min() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 on an empty histogram.
func (h *H) Max() sim.Duration {
	if h.n == 0 {
		return 0
	}
	return h.max
}

// Quantile returns an approximation of the q-quantile (0 < q <= 1).
// An empty histogram reports 0 for every quantile.
func (h *H) Quantile(q float64) sim.Duration {
	if h.n == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	target := uint64(q * float64(h.n))
	if target >= h.n {
		target = h.n - 1
	}
	var seen uint64
	for i, c := range h.counts {
		seen += c
		if seen > target {
			// Clamp the reconstruction to the observed range.
			v := bucketLow(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P99 and P999 are convenience accessors for common tails.
func (h *H) P50() sim.Duration { return h.Quantile(0.50) }

// P99 returns the 99th percentile.
func (h *H) P99() sim.Duration { return h.Quantile(0.99) }

// P999 returns the 99.9th percentile.
func (h *H) P999() sim.Duration { return h.Quantile(0.999) }

// Merge folds other into h. Merging an empty histogram (or nil) is a
// no-op; merging into an empty one copies the extremes, so min/max stay
// correct whichever side is empty.
func (h *H) Merge(other *H) {
	if other == nil || other.n == 0 {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	if h.n == 0 {
		h.min, h.max = other.min, other.max
	} else {
		if other.min < h.min {
			h.min = other.min
		}
		if other.max > h.max {
			h.max = other.max
		}
	}
	h.n += other.n
	h.sum += other.sum
}

// Bucket is one populated bucket of a Window: a bucket index and the
// number of samples that landed in it during the window.
type Bucket struct {
	Idx   int32  `json:"i"`
	Count uint64 `json:"c"`
}

// Window is the sparse delta between two cumulative snapshots of the
// same histogram: the samples observed during one sampling window.
// Only populated buckets are stored, so a quiet window costs nothing.
// The zero Window is the empty window; all its quantiles are 0.
type Window struct {
	N       uint64       `json:"n"`
	Sum     sim.Duration `json:"sum_ns"`
	Buckets []Bucket     `json:"buckets,omitempty"`
}

// WindowSince returns the window of samples observed since prev was
// captured from the same histogram (prev nil means "since empty").
// The caller must pass snapshots of the same H in capture order;
// counts only grow, so every delta is non-negative.
func (h *H) WindowSince(prev *H) Window {
	var w Window
	if h == nil {
		return w
	}
	for i, c := range h.counts {
		if prev != nil {
			c -= prev.counts[i]
		}
		if c > 0 {
			w.Buckets = append(w.Buckets, Bucket{Idx: int32(i), Count: c})
		}
	}
	w.N = h.n
	w.Sum = h.sum
	if prev != nil {
		w.N -= prev.n
		w.Sum -= prev.sum
	}
	return w
}

// Empty reports whether the window saw no samples.
func (w Window) Empty() bool { return w.N == 0 }

// Mean returns the average sample of the window.
func (w Window) Mean() sim.Duration {
	if w.N == 0 {
		return 0
	}
	return w.Sum / sim.Duration(w.N)
}

// Quantile returns the q-quantile of the window, reconstructed from
// bucket lower bounds (same ~4 % relative error as H.Quantile; unlike
// H, a window has no exact min/max to clamp to). Empty windows report
// 0 for every quantile.
func (w Window) Quantile(q float64) sim.Duration {
	if w.N == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	target := uint64(q * float64(w.N))
	if target >= w.N {
		target = w.N - 1
	}
	var seen uint64
	for _, b := range w.Buckets {
		seen += b.Count
		if seen > target {
			return bucketLow(int(b.Idx))
		}
	}
	return bucketLow(int(w.Buckets[len(w.Buckets)-1].Idx))
}

// Merge folds other into w (bucket counts add; both bucket lists are
// sorted by index and stay sorted). Merging an empty window is a
// no-op; merging into an empty window copies.
func (w *Window) Merge(other Window) {
	if other.N == 0 {
		return
	}
	if w.N == 0 {
		w.N, w.Sum = other.N, other.Sum
		w.Buckets = append([]Bucket(nil), other.Buckets...)
		return
	}
	merged := make([]Bucket, 0, len(w.Buckets)+len(other.Buckets))
	i, j := 0, 0
	for i < len(w.Buckets) || j < len(other.Buckets) {
		switch {
		case j == len(other.Buckets) || (i < len(w.Buckets) && w.Buckets[i].Idx < other.Buckets[j].Idx):
			merged = append(merged, w.Buckets[i])
			i++
		case i == len(w.Buckets) || other.Buckets[j].Idx < w.Buckets[i].Idx:
			merged = append(merged, other.Buckets[j])
			j++
		default:
			merged = append(merged, Bucket{Idx: w.Buckets[i].Idx, Count: w.Buckets[i].Count + other.Buckets[j].Count})
			i++
			j++
		}
	}
	w.Buckets = merged
	w.N += other.N
	w.Sum += other.Sum
}

// Clone returns a snapshot copy of the cumulative histogram, the
// "prev" side of a future WindowSince call.
func (h *H) Clone() H {
	if h == nil {
		return H{}
	}
	return *h
}

// String summarizes the distribution.
func (h *H) String() string {
	if h.n == 0 {
		return "histo{empty}"
	}
	return fmt.Sprintf("n=%d mean=%v p50=%v p99=%v p99.9=%v max=%v",
		h.n, h.Mean(), h.P50(), h.P99(), h.P999(), h.max)
}

// Bars renders a coarse ASCII distribution (for CLI output).
func (h *H) Bars(width int) string {
	if h.n == 0 {
		return "(no samples)"
	}
	// Collapse to octaves for readability.
	type row struct {
		low   sim.Duration
		count uint64
	}
	var rows []row
	for i := 0; i < maxBuckets; i += bucketsPerOctave {
		var c uint64
		for j := i; j < i+bucketsPerOctave && j < maxBuckets; j++ {
			c += h.counts[j]
		}
		if c > 0 {
			rows = append(rows, row{low: bucketLow(i), count: c})
		}
	}
	var peak uint64
	for _, r := range rows {
		if r.count > peak {
			peak = r.count
		}
	}
	var sb strings.Builder
	for _, r := range rows {
		bar := int(uint64(width) * r.count / peak)
		fmt.Fprintf(&sb, "%10v │%-*s│ %d\n", r.low, width, strings.Repeat("█", bar), r.count)
	}
	return sb.String()
}
