package bench

import (
	"fmt"

	"twobssd/internal/linkbench"
	"twobssd/internal/sim"
	"twobssd/internal/ycsb"
)

// fig9Configs are the Fig 9 series: two block baselines, BA-WAL on the
// 2B-SSD, and asynchronous commit as the theoretical maximum.
var fig9Configs = []LogDevice{LogDC, LogULL, Log2B, LogAsync}

// runPGLinkbench measures pglite throughput under LinkBench for one
// log-device configuration.
func runPGLinkbench(cfg LogDevice, s Scale) float64 {
	st := newStack(cfg)
	defer st.env.Shutdown() // release the point's grown kernel arrays
	var g *pgGraph
	st.env.Go("setup", func(p *sim.Proc) {
		var err error
		g, err = newPGGraph(st.env, p, st)
		if err != nil {
			panic(fmt.Sprintf("%v: %v", errSetupFailed, err))
		}
		gen := linkbench.NewGenerator(linkbench.Config{Nodes: s.Nodes, Seed: 11})
		if err := gen.Load(p, g, 2); err != nil {
			panic(err)
		}
	})
	st.env.Run()
	res, err := linkbench.Run(st.env, g, linkbench.Config{Nodes: s.Nodes, Seed: 23}, s.Clients, s.AppOps)
	if err != nil {
		panic(err)
	}
	return res.Throughput()
}

// runYCSB measures one KV engine's throughput under YCSB-A for one
// payload size and log-device configuration.
func runYCSB(engine string, cfg LogDevice, payload int, s Scale) float64 {
	st := newStack(cfg)
	defer st.env.Shutdown()
	var kv ycsb.KV
	st.env.Go("setup", func(p *sim.Proc) {
		var err error
		switch engine {
		case "lsm":
			kv, err = newLSMKV(st.env, p, st)
		case "kvaof":
			kv, err = newAOFKV(st.env, p, st)
		default:
			panic("unknown engine " + engine)
		}
		if err != nil {
			panic(fmt.Sprintf("%v: %v", errSetupFailed, err))
		}
		gen := ycsb.NewGenerator(ycsb.WorkloadA(s.Records, payload, 5))
		if err := gen.Load(p, kv); err != nil {
			panic(err)
		}
	})
	st.env.Run()
	res, err := ycsb.Run(st.env, kv, ycsb.WorkloadA(s.Records, payload, 31), s.Clients, s.AppOps)
	if err != nil {
		panic(err)
	}
	return res.Throughput()
}

// Fig9PG reproduces the PostgreSQL/Linkbench panel of Fig 9.
func Fig9PG(s Scale) *Table {
	t := &Table{
		ID: "fig9-pglite", Title: "pglite (PostgreSQL-like) / Linkbench throughput",
		XLabel: "workload", Unit: "ops/s",
		Series: []string{"DC-SSD", "ULL-SSD", "2B-SSD", "ASYNC"},
		Notes: []string{
			"expected shape: 2B-SSD 1.2-2.8x over DC-SSD, 75-95% of ASYNC.",
		},
	}
	vals := points(len(fig9Configs), func(i int) float64 {
		return runPGLinkbench(fig9Configs[i], s)
	})
	t.AddRow("linkbench", vals...)
	return t
}

// fig9Payloads are the YCSB payload sizes swept in Fig 9.
var fig9Payloads = []int{64, 256, 1024}

func fig9KV(engine, id, title string, s Scale) *Table {
	t := &Table{
		ID: id, Title: title,
		XLabel: "payload", Unit: "ops/s",
		Series: []string{"DC-SSD", "ULL-SSD", "2B-SSD", "ASYNC"},
		Notes: []string{
			"expected shape: gain grows as payload shrinks (BA-WAL writes",
			"only what is needed; block WAL writes a 4KB page regardless).",
		},
	}
	// One point per (payload, config) cell of the sweep grid.
	nc := len(fig9Configs)
	cells := points(len(fig9Payloads)*nc, func(i int) float64 {
		return runYCSB(engine, fig9Configs[i%nc], fig9Payloads[i/nc], s)
	})
	for pi, payload := range fig9Payloads {
		t.AddRow(fmt.Sprintf("%dB", payload), cells[pi*nc:(pi+1)*nc]...)
	}
	return t
}

// Fig9LSM reproduces the RocksDB/YCSB-A panel of Fig 9.
func Fig9LSM(s Scale) *Table {
	return fig9KV("lsm", "fig9-lsm", "lsm (RocksDB-like) / YCSB-A throughput", s)
}

// Fig9AOF reproduces the Redis/YCSB-A panel of Fig 9.
func Fig9AOF(s Scale) *Table {
	return fig9KV("kvaof", "fig9-kvaof", "kvaof (Redis-like) / YCSB-A throughput", s)
}

// Fig10 compares the hybrid store (2B-SSD baseline) against the
// heterogeneous-memory architecture (PM + block SSD) and ASYNC on
// pglite/Linkbench, normalized to the baseline.
func Fig10(s Scale) *Table {
	t := &Table{
		ID: "fig10", Title: "Heterogeneous memory vs hybrid store (pglite/Linkbench)",
		XLabel: "config", Unit: "normalized throughput",
		Series: []string{"throughput"},
		Notes: []string{
			"expected shape: all four configurations within ~1% of each",
			"other (the paper: PM+DC -0.6%, PM+ULL +0.4% vs baseline).",
		},
	}
	cfgs := []LogDevice{Log2B, LogPMULL, LogPMDC, LogAsync}
	vals := points(len(cfgs), func(i int) float64 { return runPGLinkbench(cfgs[i], s) })
	base := vals[0]
	t.AddRow("2B-SSD (base)", 1.0)
	t.AddRow("PM+ULL-SSD", vals[1]/base)
	t.AddRow("PM+DC-SSD", vals[2]/base)
	t.AddRow("ASYNC", vals[3]/base)
	return t
}
