// The crash-recovery campaigns behind `bench2b crash`: for each
// storage engine ported to the 2B-SSD, sweep hundreds of deterministic
// power-loss points across the workload's virtual time and event
// classes, then verify the durability contract after every crash —
// every committed record recovered (when the capacitor dump
// persisted), and no phantom records that were never written.
//
// Each crash point builds the whole stack fresh on its own sim.Env, so
// points run in parallel through the package point runner and the
// reports are byte-identical at any -j.
package bench

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"strings"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/jfs"
	"twobssd/internal/kvaof"
	"twobssd/internal/lsm"
	"twobssd/internal/pglite"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// crashStackConfig scales the 2B-SSD down so one crash point costs
// milliseconds of host time: a 16 MB flash array with a 1 MB BA-buffer
// whose capacitor dump still fits the stock energy budget.
func crashStackConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 32
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.2
	cfg.Base.WriteBufferPages = 64
	cfg.Base.DrainWorkers = 4
	cfg.BABufferBytes = 256 * 4096 // 1 MB
	return cfg
}

// crashStack is the per-point device stack shared by every workload
// driver; it provides the Crash half of the fault.Cycle contract.
type crashStack struct {
	env *sim.Env
	ssd *core.TwoBSSD
	fs  *vfs.FS
}

func newCrashStack(env *sim.Env) *crashStack {
	ssd := core.New(env, crashStackConfig())
	return &crashStack{env: env, ssd: ssd, fs: vfs.New(ssd.Device())}
}

// Crash cuts power. An insufficient-energy or torn-dump result is a
// legitimate modeled outcome, not a harness error: it reports
// persisted=false and the verifier only demands block-mode durability.
func (s *crashStack) Crash(p *sim.Proc) (bool, float64, error) {
	rep, err := s.ssd.PowerLoss(p)
	if err != nil && !errors.Is(err, core.ErrInsufficient) && !errors.Is(err, core.ErrDumpTorn) {
		return false, 0, err
	}
	return rep.Persisted, rep.EnergyUsedJ, nil
}

func crashKey(prefix string, i int) string { return fmt.Sprintf("%s-%04d", prefix, i) }

// crashValue embeds the key so a recovered record self-identifies; the
// tail pads records past one WC burst.
func crashValue(key string) string { return key + "|" + strings.Repeat("v", 40) }

// keyOf recovers the key from a record payload written by crashValue.
func keyOf(payload string) string {
	if j := strings.IndexByte(payload, '|'); j >= 0 {
		return payload[:j]
	}
	return payload
}

// ---- wal: raw write-ahead log, BA commit, double-buffered ----------

type walCrash struct {
	*crashStack
	cfg  wal.Config
	log  *wal.Log
	want map[string]string
}

func buildWALCrash(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
	s := newCrashStack(env)
	f, err := s.fs.Create("txlog", 2<<20)
	if err != nil {
		return nil, err
	}
	// Two-page segments make the workload rotate several times, so the
	// campaign also lands crash points inside BA_FLUSH page moves and
	// the NAND programs they issue — not just between commits.
	cfg := wal.Config{
		Mode:         wal.BA,
		File:         f,
		SegmentBytes: 2 * s.ssd.PageSize(),
		SSD:          s.ssd,
		EIDs:         []core.EID{0, 1},
		DoubleBuffer: true,
	}
	l, err := wal.Open(env, cfg)
	if err != nil {
		return nil, err
	}
	return &walCrash{crashStack: s, cfg: cfg, log: l, want: map[string]string{}}, nil
}

func (c *walCrash) Step(p *sim.Proc, i int) (string, error) {
	key := crashKey("wal", i)
	payload := crashValue(key) + strings.Repeat("w", 160)
	c.want[key] = payload
	lsn, err := c.log.Append(p, []byte(payload))
	if err != nil {
		return "", err
	}
	return key, c.log.Commit(p, lsn)
}

// Stage appends without committing: the record sits in the WC/BA-buffer
// and may legitimately survive via the capacitor dump.
func (c *walCrash) Stage(p *sim.Proc) (string, error) {
	key := "wal-staged"
	payload := crashValue(key)
	c.want[key] = payload
	if _, err := c.log.Append(p, []byte(payload)); err != nil {
		return "", err
	}
	return key, nil
}

func (c *walCrash) Recover(p *sim.Proc) (recovered, phantoms []string, err error) {
	if err := c.ssd.PowerOn(p); err != nil {
		return nil, nil, err
	}
	l, err := wal.Open(c.env, c.cfg)
	if err != nil {
		return nil, nil, err
	}
	err = l.Recover(p, func(_ wal.LSN, payload []byte) error {
		s := string(payload)
		key := keyOf(s)
		if c.want[key] == s {
			recovered = append(recovered, key)
		} else {
			phantoms = append(phantoms, key)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	return recovered, phantoms, nil
}

// ---- lsm: RocksDB-like store, WAL on BA-buffer slots ---------------

type lsmCrash struct {
	*crashStack
	cfg  lsm.Config
	db   *lsm.DB
	ops  int
	want map[string]string
}

func buildLSMCrash(ops int) func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
	return func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
		s := newCrashStack(env)
		cfg := lsm.Config{
			DataFS:        s.fs,
			LogFS:         s.fs,
			WALMode:       wal.BA,
			SSD:           s.ssd,
			EIDs:          []core.EID{0, 1, 2, 3},
			MemtableBytes: 128 << 10,
			WALBytes:      s.ssd.Config().BABufferBytes / 4,
		}
		db, err := lsm.Open(env, p, cfg)
		if err != nil {
			return nil, err
		}
		return &lsmCrash{crashStack: s, cfg: cfg, db: db, ops: ops, want: map[string]string{}}, nil
	}
}

func (c *lsmCrash) Step(p *sim.Proc, i int) (string, error) {
	key := crashKey("lsm", i)
	value := crashValue(key)
	c.want[key] = value
	return key, c.db.Put(p, []byte(key), []byte(value))
}

// Stage: a Put is commit-or-nothing in the LSM port; no uncommitted path.
func (c *lsmCrash) Stage(p *sim.Proc) (string, error) { return "", nil }

func (c *lsmCrash) Recover(p *sim.Proc) (recovered, phantoms []string, err error) {
	if err := c.ssd.PowerOn(p); err != nil {
		return nil, nil, err
	}
	db, err := lsm.Open(c.env, p, c.cfg)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < c.ops; i++ {
		key := crashKey("lsm", i)
		v, found, err := db.Get(p, []byte(key))
		if err != nil {
			return nil, nil, err
		}
		if !found {
			continue
		}
		if string(v) == c.want[key] {
			recovered = append(recovered, key)
		} else {
			phantoms = append(phantoms, key)
		}
	}
	return recovered, phantoms, nil
}

// ---- pglite: PostgreSQL-like engine, XLOG on the BA-buffer ---------

const pgCrashTable = "crash"

type pgCrash struct {
	*crashStack
	cfg  pglite.Config
	eng  *pglite.Engine
	ops  int
	want map[string]string
}

func buildPGCrash(ops int) func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
	return func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
		s := newCrashStack(env)
		cfg := pglite.Config{
			DataFS:          s.fs,
			LogFS:           s.fs,
			WALMode:         wal.BA,
			SSD:             s.ssd,
			EIDs:            []core.EID{0, 1},
			SegmentBytes:    s.ssd.Config().BABufferBytes / 2,
			LogFileBytes:    1 << 20,
			HeapFileBytes:   1 << 20,
			BufferPoolPages: 256,
		}
		eng, err := pglite.Open(env, p, cfg)
		if err != nil {
			return nil, err
		}
		if err := eng.CreateTable(pgCrashTable); err != nil {
			return nil, err
		}
		return &pgCrash{crashStack: s, cfg: cfg, eng: eng, ops: ops, want: map[string]string{}}, nil
	}
}

func (c *pgCrash) Step(p *sim.Proc, i int) (string, error) {
	key := crashKey("pg", i)
	value := crashValue(key)
	c.want[key] = value
	tx := c.eng.Begin()
	tx.Upsert(pgCrashTable, []byte(key), []byte(value))
	return key, tx.Commit(p)
}

// Stage opens a transaction and upserts without committing: the change
// lives only in the host-side txn buffer and must never survive.
func (c *pgCrash) Stage(p *sim.Proc) (string, error) {
	key := "pg-staged"
	c.want[key] = crashValue(key)
	tx := c.eng.Begin()
	tx.Upsert(pgCrashTable, []byte(key), []byte(c.want[key]))
	return key, nil
}

func (c *pgCrash) Recover(p *sim.Proc) (recovered, phantoms []string, err error) {
	if err := c.ssd.PowerOn(p); err != nil {
		return nil, nil, err
	}
	eng, err := pglite.Open(c.env, p, c.cfg)
	if err != nil {
		return nil, nil, err
	}
	// Replay creates the table when any batch survived; the explicit
	// create covers the crash-before-first-commit points.
	if err := eng.CreateTable(pgCrashTable); err != nil {
		return nil, nil, err
	}
	keys, values, err := eng.Begin().Scan(p, pgCrashTable, nil, c.ops*2+8)
	if err != nil {
		return nil, nil, err
	}
	for i, k := range keys {
		key := string(k)
		if c.want[key] == string(values[i]) && c.want[key] != "" {
			recovered = append(recovered, key)
		} else {
			phantoms = append(phantoms, key)
		}
	}
	return recovered, phantoms, nil
}

// ---- kvaof: Redis-like store, AOF pinned over the whole buffer -----

type aofCrash struct {
	*crashStack
	cfg  kvaof.Config
	st   *kvaof.Store
	want map[string]string
}

func buildAOFCrash(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
	s := newCrashStack(env)
	cfg := kvaof.Config{
		LogFS:        s.fs,
		WALMode:      wal.BA,
		SSD:          s.ssd,
		EID:          0,
		SegmentBytes: s.ssd.Config().BABufferBytes,
		AOFBytes:     2 << 20,
	}
	st, err := kvaof.Open(env, p, cfg)
	if err != nil {
		return nil, err
	}
	return &aofCrash{crashStack: s, cfg: cfg, st: st, want: map[string]string{}}, nil
}

func (c *aofCrash) Step(p *sim.Proc, i int) (string, error) {
	key := crashKey("kv", i)
	value := crashValue(key)
	c.want[key] = value
	return key, c.st.Set(p, []byte(key), []byte(value))
}

// Stage: every AOF command commits before it applies; no uncommitted path.
func (c *aofCrash) Stage(p *sim.Proc) (string, error) { return "", nil }

func (c *aofCrash) Recover(p *sim.Proc) (recovered, phantoms []string, err error) {
	if err := c.ssd.PowerOn(p); err != nil {
		return nil, nil, err
	}
	st, err := kvaof.Open(c.env, p, c.cfg)
	if err != nil {
		return nil, nil, err
	}
	for _, key := range st.Keys() {
		v, _ := st.Get(p, []byte(key))
		if c.want[key] == string(v) && c.want[key] != "" {
			recovered = append(recovered, key)
		} else {
			phantoms = append(phantoms, key)
		}
	}
	return recovered, phantoms, nil
}

// ---- jfs: journaling filesystem, journal on the BA-buffer ----------

type jfsCrash struct {
	*crashStack
	cfg  jfs.Config
	st   *jfs.Store
	ops  int
	want map[uint32][]byte
}

func buildJFSCrash(ops int) func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
	return func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
		s := newCrashStack(env)
		home, err := s.fs.Create("home", int64(ops+2)*jfs.BlockSize)
		if err != nil {
			return nil, err
		}
		journal, err := s.fs.Create("journal", 1<<20)
		if err != nil {
			return nil, err
		}
		cfg := jfs.Config{
			Home:            home,
			Journal:         journal,
			Mode:            wal.BA,
			SSD:             s.ssd,
			EIDs:            []core.EID{0, 1},
			SegmentBytes:    s.ssd.Config().BABufferBytes / 2,
			CheckpointEvery: 1 << 20,
		}
		st, err := jfs.Open(env, p, cfg)
		if err != nil {
			return nil, err
		}
		return &jfsCrash{crashStack: s, cfg: cfg, st: st, ops: ops, want: map[uint32][]byte{}}, nil
	}
}

// jfsBlock is the full padded home-block image for key i.
func jfsBlock(i int) []byte {
	b := make([]byte, jfs.BlockSize)
	copy(b, crashValue(crashKey("jfs", i)))
	return b
}

func (c *jfsCrash) Step(p *sim.Proc, i int) (string, error) {
	c.want[uint32(i)] = jfsBlock(i)
	tx := c.st.Begin()
	if err := tx.WriteBlock(uint32(i), c.want[uint32(i)]); err != nil {
		return "", err
	}
	return crashKey("jfs", i), tx.Commit(p)
}

// Stage writes one block in an open transaction and never commits it.
func (c *jfsCrash) Stage(p *sim.Proc) (string, error) {
	blk := uint32(c.ops)
	c.want[blk] = jfsBlock(c.ops)
	tx := c.st.Begin()
	if err := tx.WriteBlock(blk, c.want[blk]); err != nil {
		return "", err
	}
	return crashKey("jfs", c.ops), nil
}

func (c *jfsCrash) Recover(p *sim.Proc) (recovered, phantoms []string, err error) {
	if err := c.ssd.PowerOn(p); err != nil {
		return nil, nil, err
	}
	st, err := jfs.Open(c.env, p, c.cfg)
	if err != nil {
		return nil, nil, err
	}
	zero := make([]byte, jfs.BlockSize)
	for i := 0; i <= c.ops; i++ {
		data, err := st.ReadBlock(p, uint32(i))
		if err != nil {
			return nil, nil, err
		}
		switch {
		case bytes.Equal(data, c.want[uint32(i)]):
			recovered = append(recovered, crashKey("jfs", i))
		case bytes.Equal(data, zero): // never reached the home file
		default:
			phantoms = append(phantoms, crashKey("jfs", i))
		}
	}
	return recovered, phantoms, nil
}

// ---- campaign assembly ---------------------------------------------

// crashWorkload rows pin name, committed-op count and seed per
// workload; ops are sized so no workload rotates its memtable or
// checkpoints mid-campaign (those paths have their own experiments).
type crashWorkload struct {
	name  string
	ops   int
	seed  uint64
	build func(ops int) func(env *sim.Env, p *sim.Proc) (fault.Cycle, error)
	// tweak optionally adjusts per-point fault plans (fault.Campaign's
	// Tweak contract: pure in the point index).
	tweak func(i int, plan *fault.Plan)
}

var crashWorkloads = []crashWorkload{
	{"wal", 48, 0x2b55c0de0001, func(int) func(*sim.Env, *sim.Proc) (fault.Cycle, error) { return buildWALCrash }, nil},
	{"lsm", 32, 0x2b55c0de0002, buildLSMCrash, nil},
	{"pglite", 32, 0x2b55c0de0003, buildPGCrash, nil},
	{"kvaof", 40, 0x2b55c0de0004, func(int) func(*sim.Env, *sim.Proc) (fault.Cycle, error) { return buildAOFCrash }, nil},
	{"jfs", 32, 0x2b55c0de0005, buildJFSCrash, nil},
	// walseg runs a full segmented-WAL lifecycle (rotation, checkpoint
	// truncation, snapshot + chain-replay recovery) on the BA path,
	// with dump cuts on a point subset so torn-tail repair runs too.
	{"walseg", 48, 0x2b55c0de0006,
		func(ops int) func(*sim.Env, *sim.Proc) (fault.Cycle, error) { return buildWalSegCrash(wal.BA, ops) },
		walLifeTweak},
}

// CrashWorkloads lists the crash-campaign workload names in run order.
func CrashWorkloads() []string {
	names := make([]string, len(crashWorkloads))
	for i, w := range crashWorkloads {
		names[i] = w.name
	}
	return names
}

// NewCrashCampaign builds the named workload's campaign with the given
// number of crash points.
func NewCrashCampaign(workload string, pts int) (*fault.Campaign, error) {
	for _, w := range crashWorkloads {
		if w.name == workload {
			return &fault.Campaign{
				Name:   w.name,
				Points: pts,
				Ops:    w.ops,
				Seed:   w.seed,
				Build:  w.build(w.ops),
				Tweak:  w.tweak,
			}, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown crash workload %q", workload)
}

// RunCrash sweeps pointsPer crash points over each named workload (all
// of them when names is nil), streams each campaign's report to w, and
// returns an error when any point violated the durability contract.
// Points fan out through the package point runner, so -j applies; the
// reports are byte-identical at any parallelism.
func RunCrash(w io.Writer, names []string, pointsPer int) error {
	if names == nil {
		names = CrashWorkloads()
	}
	parallelFor := func(n int, fn func(i int)) {
		points(n, func(i int) struct{} { fn(i); return struct{}{} })
	}
	violations := 0
	for _, name := range names {
		c, err := NewCrashCampaign(name, pointsPer)
		if err != nil {
			return err
		}
		rep, err := c.Run(parallelFor)
		if err != nil {
			return err
		}
		if err := rep.WriteText(w); err != nil {
			return err
		}
		violations += len(rep.Violations())
	}
	if violations > 0 {
		return fmt.Errorf("bench: %d crash points violated the durability contract", violations)
	}
	return nil
}
