package bench

import (
	"runtime"

	"twobssd/internal/core"
	"twobssd/internal/ftl"
	"twobssd/internal/sim"
	"twobssd/internal/wal"
)

// SteadyReport is the -benchjson steady-state allocation record: host
// allocations per simulated event over a sustained workload, measured
// after warm-up on an already-constructed stack. Construction costs —
// device/FTL/resource setup, first-touch page programming, proc-pool
// ramp — are excluded; this is the kernel's long-run allocation rate,
// the number the freelist/arena work drives toward zero.
type SteadyReport struct {
	Events         uint64  `json:"events"`
	Allocs         uint64  `json:"allocs"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
}

// SteadyStateAllocs measures the steady-state rate on the paper's core
// loop: BA-WAL appends and commits on a 2B-SSD stack, with periodic
// block writes and reads through the data device so the NAND, FTL and
// device paths stay hot too.
func SteadyStateAllocs(s Scale) *SteadyReport {
	st := newStack(Log2B)
	defer st.env.Shutdown()
	var l *wal.Log
	page := make([]byte, st.ssd.PageSize())
	phase := func(records int) {
		st.env.Go("steady", func(p *sim.Proc) {
			if l == nil {
				f, err := st.logFS.Create("steadylog", 8<<20)
				if err != nil {
					panic(err)
				}
				l, err = wal.Open(st.env, wal.Config{
					Mode: st.mode, File: f, SSD: st.ssd,
					EIDs:         []core.EID{0, 1},
					SegmentBytes: st.ssd.Config().BABufferBytes / 2,
					DoubleBuffer: true,
				})
				if err != nil {
					panic(err)
				}
			}
			rec := make([]byte, 128)
			dev := st.dataFS.Device()
			for i := 0; i < records; i++ {
				lsn, err := l.Append(p, rec)
				if err != nil {
					panic(err)
				}
				if err := l.Commit(p, lsn); err != nil {
					panic(err)
				}
				if i%16 == 0 {
					lba := ftl.LBA(i % 64)
					if err := dev.WritePages(p, lba, page); err != nil {
						panic(err)
					}
					if _, err := dev.ReadPages(p, lba, 1); err != nil {
						panic(err)
					}
				}
			}
		})
		st.env.Run()
	}
	records := int(s.AppOps)
	if records < 1000 {
		records = 1000
	}
	phase(records / 4) // warm-up: pools, arenas and NAND first-touch
	ev0 := st.env.Events()
	var ms0, ms1 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	phase(records)
	runtime.ReadMemStats(&ms1)
	rep := &SteadyReport{
		Events: st.env.Events() - ev0,
		Allocs: ms1.Mallocs - ms0.Mallocs,
	}
	if rep.Events > 0 {
		rep.AllocsPerEvent = float64(rep.Allocs) / float64(rep.Events)
	}
	return rep
}
