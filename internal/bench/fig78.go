package bench

import (
	"fmt"

	"twobssd/internal/fio"
)

// latency sweep sizes (Fig 7): 8 B … 4 KB.
var latSizes = []int{8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096}

// bandwidth sweep sizes (Fig 8): 4 KB … 16 MB.
var bwSizes = []int{4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20, 16 << 20}

func sizeLabel(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%dMB", n>>20)
	case n >= 1<<10:
		return fmt.Sprintf("%dKB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// Fig7a reproduces the read-latency sweep: block reads on DC-SSD and
// ULL-SSD versus MMIO and read-DMA on the 2B-SSD.
func Fig7a(s Scale) *Table {
	t := &Table{
		ID: "fig7a", Title: "Read latency vs request size (QD1)",
		XLabel: "req size", Unit: "us",
		Series: []string{"DC-SSD", "ULL-SSD", "2B MMIO", "2B readDMA"},
		Notes: []string{
			"expected shape: MMIO wins below ~350B vs ULL and ~2KB vs DC;",
			"readDMA beats plain MMIO from ~2KB (paper: 2.6x at 4KB).",
		},
	}
	t.Rows = points(len(latSizes), func(i int) Row {
		size := latSizes[i]
		dc := fio.BlockReadLatency(DC, size, s.LatReps)
		ull := fio.BlockReadLatency(ULL, size, s.LatReps)
		mmio := fio.MMIOReadLatency(SSD2B, size, s.LatReps, false)
		dma := fio.MMIOReadLatency(SSD2B, size, s.LatReps, true)
		return Row{X: sizeLabel(size), Vals: []float64{dc.Micros(), ull.Micros(), mmio.Micros(), dma.Micros()}}
	})
	return t
}

// Fig7b reproduces the write-latency sweep: block writes versus MMIO
// and persistent MMIO (MMIO + BA_SYNC) on the 2B-SSD.
func Fig7b(s Scale) *Table {
	t := &Table{
		ID: "fig7b", Title: "Write latency vs request size (QD1)",
		XLabel: "req size", Unit: "us",
		Series: []string{"DC-SSD", "ULL-SSD", "2B MMIO", "2B persistent MMIO"},
		Notes: []string{
			"expected shape: 8B MMIO ~0.63us (16.6x under block I/O);",
			"persistent MMIO +15% small, +47% at 4KB, still under ULL's 10us.",
		},
	}
	t.Rows = points(len(latSizes), func(i int) Row {
		size := latSizes[i]
		dc := fio.BlockWriteLatency(DC, size, s.LatReps)
		ull := fio.BlockWriteLatency(ULL, size, s.LatReps)
		mmio := fio.MMIOWriteLatency(SSD2B, size, s.LatReps, false)
		pmmio := fio.MMIOWriteLatency(SSD2B, size, s.LatReps, true)
		return Row{X: sizeLabel(size), Vals: []float64{dc.Micros(), ull.Micros(), mmio.Micros(), pmmio.Micros()}}
	})
	return t
}

// Fig8a reproduces the read-bandwidth sweep: block reads versus the
// 2B-SSD internal datapath (BA_PIN).
func Fig8a(s Scale) *Table {
	t := &Table{
		ID: "fig8a", Title: "Read bandwidth vs request size (QD1)",
		XLabel: "req size", Unit: "MB/s",
		Series: []string{"DC-SSD", "ULL-SSD", "2B internal"},
		Notes: []string{
			"expected shape: ULL saturates PCIe (~3.2GB/s); 2B internal",
			"~1GB/s below ULL at >=4MB; DC approaches 2B at large sizes.",
		},
	}
	t.Rows = points(len(bwSizes), func(i int) Row {
		size := bwSizes[i]
		dc := fio.BlockBandwidth(DC, size, false)
		ull := fio.BlockBandwidth(ULL, size, false)
		internal := fio.InternalBandwidth(SSD2B, size, false)
		return Row{X: sizeLabel(size), Vals: []float64{dc, ull, internal}}
	})
	return t
}

// Fig8b reproduces the write-bandwidth sweep: block writes versus the
// internal datapath (BA_FLUSH).
func Fig8b(s Scale) *Table {
	t := &Table{
		ID: "fig8b", Title: "Write bandwidth vs request size (QD1)",
		XLabel: "req size", Unit: "MB/s",
		Series: []string{"DC-SSD", "ULL-SSD", "2B internal"},
		Notes: []string{
			"expected shape: ULL PCIe-capped ~3.2GB/s; 2B internal beats",
			"DC by ~700MB/s at >=4MB (2.2 vs 1.5 GB/s).",
		},
	}
	t.Rows = points(len(bwSizes), func(i int) Row {
		size := bwSizes[i]
		dc := fio.BlockBandwidth(DC, size, true)
		ull := fio.BlockBandwidth(ULL, size, true)
		internal := fio.InternalBandwidth(SSD2B, size, true)
		return Row{X: sizeLabel(size), Vals: []float64{dc, ull, internal}}
	})
	return t
}
