package bench

import (
	"bytes"
	"errors"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/kvaof"
	"twobssd/internal/linkbench"
	"twobssd/internal/lsm"
	"twobssd/internal/pglite"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// LogDevice names the log-device configuration of one Fig 9/10 series.
type LogDevice int

// The configurations the paper compares.
const (
	LogDC    LogDevice = iota // DC-SSD, synchronous commit
	LogULL                    // ULL-SSD, synchronous commit
	Log2B                     // 2B-SSD with BA-WAL
	LogAsync                  // asynchronous commit (theoretical max)
	LogPMULL                  // PM buffer + ULL-SSD (Fig 10)
	LogPMDC                   // PM buffer + DC-SSD (Fig 10)
)

func (l LogDevice) String() string {
	switch l {
	case LogDC:
		return "DC-SSD"
	case LogULL:
		return "ULL-SSD"
	case Log2B:
		return "2B-SSD"
	case LogAsync:
		return "ASYNC"
	case LogPMULL:
		return "PM+ULL"
	case LogPMDC:
		return "PM+DC"
	default:
		return "?"
	}
}

// stack bundles the devices of one application run: a data device
// (never the device under test — the paper keeps user data in DRAM and
// sends only WAL logs to the log device) plus the log device.
type stack struct {
	env    *sim.Env
	dataFS *vfs.FS
	logFS  *vfs.FS
	ssd    *core.TwoBSSD // non-nil for Log2B
	mode   wal.CommitMode
}

func newStack(cfg LogDevice) *stack { return newStackOn(sim.NewEnv(), cfg) }

// newStackOn builds the stack on a caller-supplied environment, which
// may be a partition of a sim.Group (see partition.go).
func newStackOn(e *sim.Env, cfg LogDevice) *stack {
	st := &stack{env: e}
	dataProf := device.ULLSSD()
	dataProf.Name = "data-" + dataProf.Name
	st.dataFS = vfs.New(device.New(e, dataProf))
	switch cfg {
	case LogDC:
		st.logFS = vfs.New(DC(e))
		st.mode = wal.Sync
	case LogULL:
		st.logFS = vfs.New(ULL(e))
		st.mode = wal.Sync
	case LogAsync:
		st.logFS = vfs.New(ULL(e))
		st.mode = wal.Async
	case LogPMULL:
		st.logFS = vfs.New(ULL(e))
		st.mode = wal.PM
	case LogPMDC:
		st.logFS = vfs.New(DC(e))
		st.mode = wal.PM
	case Log2B:
		st.ssd = SSD2B(e)
		st.logFS = vfs.New(st.ssd.Device())
		st.mode = wal.BA
	}
	return st
}

// ---- pglite <-> linkbench ----

// pgGraph maps the LinkBench schema onto pglite tables, as the paper's
// patched PostgreSQL does.
type pgGraph struct {
	eng *pglite.Engine
}

const (
	nodeTable = "node"
	linkTable = "link"
)

func newPGGraph(env *sim.Env, p *sim.Proc, st *stack) (*pgGraph, error) {
	cfg := pglite.Config{
		DataFS:        st.dataFS,
		LogFS:         st.logFS,
		WALMode:       st.mode,
		LogFileBytes:  16 << 20,
		HeapFileBytes: 64 << 20,
		// Paper setup: user data fits in memory; size the pool to the
		// whole heap so only the log device sees traffic.
		BufferPoolPages: 16384,
	}
	if st.mode == wal.BA {
		cfg.SSD = st.ssd
		cfg.EIDs = []core.EID{0, 1}
		// XLOG segment = half the BA-buffer, double buffered (IV-B).
		cfg.SegmentBytes = st.ssd.Config().BABufferBytes / 2
	}
	eng, err := pglite.Open(env, p, cfg)
	if err != nil {
		return nil, err
	}
	if err := eng.CreateTable(nodeTable); err != nil {
		return nil, err
	}
	if err := eng.CreateTable(linkTable); err != nil {
		return nil, err
	}
	return &pgGraph{eng: eng}, nil
}

func (g *pgGraph) AddNode(p *sim.Proc, id uint64, data []byte) error {
	tx := g.eng.Begin()
	tx.Upsert(nodeTable, linkbench.NodeKey(id), data)
	return tx.Commit(p)
}

func (g *pgGraph) UpdateNode(p *sim.Proc, id uint64, data []byte) error {
	return g.AddNode(p, id, data)
}

func (g *pgGraph) DeleteNode(p *sim.Proc, id uint64) error {
	tx := g.eng.Begin()
	tx.Delete(nodeTable, linkbench.NodeKey(id))
	return tx.Commit(p)
}

func (g *pgGraph) GetNode(p *sim.Proc, id uint64) ([]byte, bool, error) {
	return g.eng.Begin().Get(p, nodeTable, linkbench.NodeKey(id))
}

func (g *pgGraph) AddLink(p *sim.Proc, id1, id2 uint64, lt uint32, data []byte) error {
	tx := g.eng.Begin()
	tx.Upsert(linkTable, linkbench.LinkKey(id1, lt, id2), data)
	return tx.Commit(p)
}

func (g *pgGraph) DeleteLink(p *sim.Proc, id1, id2 uint64, lt uint32) error {
	tx := g.eng.Begin()
	tx.Delete(linkTable, linkbench.LinkKey(id1, lt, id2))
	return tx.Commit(p)
}

func (g *pgGraph) GetLink(p *sim.Proc, id1, id2 uint64, lt uint32) ([]byte, bool, error) {
	return g.eng.Begin().Get(p, linkTable, linkbench.LinkKey(id1, lt, id2))
}

func (g *pgGraph) GetLinkList(p *sim.Proc, id1 uint64, lt uint32, limit int) (int, error) {
	pfx := linkbench.LinkPrefix(id1, lt)
	n := 0
	err := g.eng.Begin().ScanFunc(p, linkTable, pfx, limit, func(k, _ []byte) bool {
		if bytes.HasPrefix(k, pfx) {
			n++
		}
		return true
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

func (g *pgGraph) CountLinks(p *sim.Proc, id1 uint64, lt uint32) (int, error) {
	return g.GetLinkList(p, id1, lt, 1000)
}

// ---- lsm <-> ycsb ----

type lsmKV struct{ db *lsm.DB }

func newLSMKV(env *sim.Env, p *sim.Proc, st *stack) (*lsmKV, error) {
	cfg := lsm.Config{
		DataFS:        st.dataFS,
		LogFS:         st.logFS,
		WALMode:       st.mode,
		MemtableBytes: 1 << 20,
		// Host CPU per operation, calibrated to RocksDB-class engines
		// (skiplist insert, MemTable lookup, encoding) so the commit
		// path's share of an operation matches the paper's Fig 9.
		ReadCPU:  11 * sim.Microsecond,
		WriteCPU: 11 * sim.Microsecond,
	}
	if st.mode == wal.BA {
		cfg.SSD = st.ssd
		cfg.EIDs = []core.EID{0, 1, 2, 3}
		// Each log file = a quarter of the BA-buffer (IV-B).
		cfg.WALBytes = st.ssd.Config().BABufferBytes / 4
	} else {
		cfg.WALBytes = 2 << 20
	}
	db, err := lsm.Open(env, p, cfg)
	if err != nil {
		return nil, err
	}
	return &lsmKV{db: db}, nil
}

func (k *lsmKV) Read(p *sim.Proc, key []byte) error {
	_, _, err := k.db.Get(p, key)
	return err
}

func (k *lsmKV) Update(p *sim.Proc, key, value []byte) error {
	return k.db.Put(p, key, value)
}

// ---- kvaof <-> ycsb ----

type aofKV struct{ s *kvaof.Store }

func newAOFKV(env *sim.Env, p *sim.Proc, st *stack) (*aofKV, error) {
	cfg := kvaof.Config{
		LogFS:    st.logFS,
		WALMode:  st.mode,
		AOFBytes: 64 << 20,
		// Redis-class command costs (parse, dict op, reply) so the AOF
		// commit share matches the paper's single-threaded profile.
		ReadCPU:  6 * sim.Microsecond,
		WriteCPU: 8 * sim.Microsecond,
	}
	if st.mode == wal.BA {
		cfg.SSD = st.ssd
		// AOF window = the whole BA-buffer, single entry (IV-B).
		cfg.SegmentBytes = st.ssd.Config().BABufferBytes
	}
	s, err := kvaof.Open(env, p, cfg)
	if err != nil {
		return nil, err
	}
	return &aofKV{s: s}, nil
}

func (k *aofKV) Read(p *sim.Proc, key []byte) error {
	k.s.Get(p, key)
	return nil
}

func (k *aofKV) Update(p *sim.Proc, key, value []byte) error {
	return k.s.Set(p, key, value)
}

var errSetupFailed = errors.New("bench: engine setup failed")
