package bench

import (
	"bytes"
	"testing"

	"twobssd/internal/obs"
)

// TestFleetGate runs the CI smoke fleet (crash + takeover) and the
// full scenario family once: any lost/phantom record, missed failover
// or determinism divergence surfaces as a non-nil error here exactly
// as it would fail `bench2b fleet`.
func TestFleetGate(t *testing.T) {
	var out bytes.Buffer
	if err := RunFleet(&out, Quick, true); err != nil {
		t.Fatalf("fleet-smoke: %v\n%s", err, out.String())
	}
	if testing.Short() {
		return
	}
	out.Reset()
	if err := RunFleet(&out, Quick, false); err != nil {
		t.Fatalf("fleet: %v\n%s", err, out.String())
	}
}

// TestFleetJobsInvariance demands the whole fleet family — tables,
// merged metrics snapshot, and merged metric timeline — be
// byte-identical at -j 1 vs -j 8 and under the partitioned executor
// (-pshards 2, which also runs every fleet's sim.Group with 2
// workers). Cross-device links must not leak host scheduling into any
// observable result.
func TestFleetJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full fleet sweep; skipped with -short")
	}
	sweep := func(jobs, shards int) (tables, metrics, timeline []byte) {
		oldJ, oldS := Jobs(), PartitionShards()
		SetJobs(jobs)
		SetPartitionShards(shards)
		defer func() {
			SetJobs(oldJ)
			SetPartitionShards(oldS)
		}()
		col := obs.NewCollector(false)
		col.EnableSampling(0, 0)
		col.Install()
		defer col.Uninstall()
		var out bytes.Buffer
		if err := RunFleet(&out, Quick, false); err != nil {
			t.Fatalf("jobs=%d shards=%d: %v", jobs, shards, err)
		}
		var m, tl bytes.Buffer
		if err := col.WriteMetricsJSON(&m); err != nil {
			t.Fatalf("jobs=%d shards=%d: metrics: %v", jobs, shards, err)
		}
		if err := col.WriteTimelineJSON(&tl); err != nil {
			t.Fatalf("jobs=%d shards=%d: timeline: %v", jobs, shards, err)
		}
		return out.Bytes(), m.Bytes(), tl.Bytes()
	}
	t1, m1, tl1 := sweep(1, 1)
	t8, m8, tl8 := sweep(8, 1)
	tp, mp, tlp := sweep(1, 2)
	if !bytes.Equal(t1, t8) {
		t.Errorf("fleet tables differ between -j 1 and -j 8")
	}
	if !bytes.Equal(m1, m8) {
		t.Errorf("fleet merged metrics differ between -j 1 and -j 8")
	}
	if !bytes.Equal(tl1, tl8) {
		t.Errorf("fleet merged timeline differs between -j 1 and -j 8 (%d vs %d bytes)", len(tl1), len(tl8))
	}
	if !bytes.Equal(t1, tp) {
		t.Errorf("fleet tables differ between -pshards 1 and -pshards 2")
	}
	if !bytes.Equal(m1, mp) {
		t.Errorf("fleet merged metrics differ between -pshards 1 and -pshards 2")
	}
	if !bytes.Equal(tl1, tlp) {
		t.Errorf("fleet merged timeline differs between -pshards 1 and -pshards 2 (%d vs %d bytes)", len(tl1), len(tlp))
	}
	if len(tl1) < 100 {
		t.Errorf("fleet merged timeline is empty: %s", tl1)
	}
	if !bytes.Contains(m1, []byte("fleet.qos.fairness")) {
		t.Errorf("merged metrics lack the fleet.qos.fairness gauge")
	}
}
