// The segmented-WAL lifecycle crash driver behind `bench2b wal-life`
// (and the `walseg` row of the crash campaign): a checkpointing engine
// on wal.Segmented that rotates through the segment ring, truncates at
// every checkpoint, and recovers from snapshot + chain replay — so the
// fault campaign lands power cuts mid-rotation, mid-checkpoint and
// mid-truncation, and recovery must repair the torn/stale tails that
// ring recycling leaves behind. Every recovery outcome is additionally
// checked against the oracle's pure lifecycle model.
package bench

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/integrity"
	"twobssd/internal/oracle"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// Snapshot file layout: two alternating slots (so a torn snapshot
// write never destroys the one the durable checkpoint refers to), each
// [4] magic | [8] checkpoint LSN | [4] count |
// count × ([2] keylen | key | [4] payload CRC-32C) | [4] CRC-32C.
const (
	walSegSnapMagic = 0x5345474E
	walSegSnapSlot  = 8 << 10
)

// walSegPayload pads records to ~1.6 KB so a 16 KB segment file holds
// ten and the 48-op workload rotates through the 4-slot ring — the
// later segments live in recycled slots whose stale bytes force
// torn-tail repairs after a crash.
func walSegPayload(key string) string {
	return crashValue(key) + strings.Repeat("s", 1500)
}

type walSegCrash struct {
	*crashStack
	cfg   wal.SegConfig
	sl    *wal.Segmented
	rec   *wal.Segmented // post-crash instance, for RepairStatus
	model *oracle.WalLifecycle
	snap  *vfs.File
	snapN int
	ops   int

	want    map[string]string // every appended key (incl. staged)
	applied map[string]string // committed state, snapshotted at checkpoints
}

// buildWalSegCrash builds the lifecycle engine in the given commit
// mode: BA is the paper's byte path, Sync the block+flush baseline.
func buildWalSegCrash(mode wal.CommitMode, ops int) func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
	return func(env *sim.Env, p *sim.Proc) (fault.Cycle, error) {
		s := newCrashStack(env)
		ps := int64(s.ssd.PageSize())
		cfg := wal.SegConfig{
			Mode:              mode,
			FS:                s.fs,
			Name:              "seglog",
			SegmentFileBytes:  4 * ps,
			Ring:              4,
			InnerSegmentBytes: 2 * int(ps),
		}
		if mode == wal.BA {
			cfg.SSD = s.ssd
			cfg.EIDs = []core.EID{0, 1}
			cfg.DoubleBuffer = true
		}
		sl, err := wal.OpenSegmented(env, cfg)
		if err != nil {
			return nil, err
		}
		snap, err := s.fs.Create("segsnap", 2*walSegSnapSlot)
		if err != nil {
			return nil, err
		}
		return &walSegCrash{
			crashStack: s, cfg: cfg, sl: sl, model: oracle.NewWalLifecycle(),
			snap: snap, ops: ops,
			want: map[string]string{}, applied: map[string]string{},
		}, nil
	}
}

func (c *walSegCrash) Step(p *sim.Proc, i int) (string, error) {
	key := crashKey("wseg", i)
	payload := walSegPayload(key)
	c.want[key] = payload
	lsn, err := c.sl.Append(p, []byte(payload))
	if err != nil {
		return "", err
	}
	end := int64(lsn)
	c.model.Append(key, payload, end-int64(len(payload))-wal.RecordOverhead, end)
	if err := c.sl.Commit(p, lsn); err != nil {
		return "", err
	}
	c.model.Commit(end)
	c.applied[key] = payload
	// Checkpoint every 12 ops: the snapshot goes durable first, then
	// the WAL checkpoint truncates every segment it fully covers.
	if i%12 == 11 {
		if err := c.writeSnapshot(p, end); err != nil {
			return "", err
		}
		if err := c.sl.Checkpoint(p, lsn); err != nil {
			return "", err
		}
		c.model.Checkpoint(end, c.applied)
	}
	return key, nil
}

// Stage appends without committing: in BA mode the record sits in the
// BA buffer and may legitimately survive via the capacitor dump; in
// Sync mode it never reaches media.
func (c *walSegCrash) Stage(p *sim.Proc) (string, error) {
	key := "wseg-staged"
	payload := crashValue(key)
	c.want[key] = payload
	lsn, err := c.sl.Append(p, []byte(payload))
	if err != nil {
		return "", err
	}
	end := int64(lsn)
	c.model.Append(key, payload, end-int64(len(payload))-wal.RecordOverhead, end)
	return key, nil
}

func (c *walSegCrash) Recover(p *sim.Proc) (recovered, phantoms []string, err error) {
	if err := c.ssd.PowerOn(p); err != nil {
		return nil, nil, err
	}
	sl, err := wal.OpenSegmented(c.env, c.cfg)
	if err != nil {
		return nil, nil, err
	}
	c.rec = sl
	var replayed []oracle.WalRecord
	seen := map[string]bool{}
	_, err = sl.Recover(p, func(lsn wal.LSN, payload []byte) error {
		s := string(payload)
		key := keyOf(s)
		end := int64(lsn)
		replayed = append(replayed, oracle.WalRecord{
			Key: key, Payload: s,
			Start: end - int64(len(s)) - wal.RecordOverhead, End: end,
		})
		if c.want[key] == s {
			if !seen[key] {
				seen[key] = true
				recovered = append(recovered, key)
			}
		} else {
			phantoms = append(phantoms, key)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	snapMap := map[string]string{}
	if snapCRCs, ok := c.readSnapshot(p); ok {
		keys := make([]string, 0, len(snapCRCs))
		for k := range snapCRCs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if integrity.PageCRC([]byte(c.want[k])) == snapCRCs[k] {
				snapMap[k] = c.want[k]
				if !seen[k] {
					seen[k] = true
					recovered = append(recovered, k)
				}
			} else {
				snapMap[k] = fmt.Sprintf("crc:%08x", snapCRCs[k])
				phantoms = append(phantoms, k)
			}
		}
	}
	for _, ph := range c.model.VerifyRecovery(int64(sl.CheckpointLSN()), replayed, snapMap) {
		phantoms = append(phantoms, "model: "+ph)
	}
	return recovered, phantoms, nil
}

// RecoveryRepair feeds the recovered log's torn-tail repair outcome to
// the campaign (fault.RepairReporter).
func (c *walSegCrash) RecoveryRepair() (int, string) {
	if c.rec == nil {
		return 0, ""
	}
	return c.rec.RepairStatus()
}

func (c *walSegCrash) writeSnapshot(p *sim.Proc, ckpt int64) error {
	keys := make([]string, 0, len(c.applied))
	for k := range c.applied {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint32(buf[0:], walSegSnapMagic)
	binary.LittleEndian.PutUint64(buf[4:], uint64(ckpt))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(keys)))
	var scratch [4]byte
	for _, k := range keys {
		binary.LittleEndian.PutUint16(scratch[:2], uint16(len(k)))
		buf = append(buf, scratch[:2]...)
		buf = append(buf, k...)
		binary.LittleEndian.PutUint32(scratch[:], integrity.PageCRC([]byte(c.applied[k])))
		buf = append(buf, scratch[:]...)
	}
	binary.LittleEndian.PutUint32(scratch[:], integrity.PageCRC(buf))
	buf = append(buf, scratch[:]...)
	off := int64(c.snapN%2) * walSegSnapSlot
	c.snapN++
	if err := c.snap.WriteAt(p, off, buf); err != nil {
		return err
	}
	return c.snap.Sync(p)
}

// readSnapshot returns the newest valid snapshot slot's key→CRC map.
func (c *walSegCrash) readSnapshot(p *sim.Proc) (map[string]uint32, bool) {
	var best map[string]uint32
	bestCkpt := int64(-1)
	slot := make([]byte, walSegSnapSlot)
	for i := 0; i < 2; i++ {
		if err := c.snap.ReadAt(p, int64(i)*walSegSnapSlot, slot); err != nil {
			continue
		}
		if ckpt, crcs, ok := parseWalSegSnap(slot); ok && ckpt > bestCkpt {
			bestCkpt, best = ckpt, crcs
		}
	}
	return best, best != nil
}

func parseWalSegSnap(b []byte) (ckpt int64, crcs map[string]uint32, ok bool) {
	if len(b) < 20 || binary.LittleEndian.Uint32(b) != walSegSnapMagic {
		return 0, nil, false
	}
	ckpt = int64(binary.LittleEndian.Uint64(b[4:]))
	n := int(binary.LittleEndian.Uint32(b[12:]))
	off := 16
	crcs = make(map[string]uint32, n)
	for i := 0; i < n; i++ {
		if off+2 > len(b) {
			return 0, nil, false
		}
		kl := int(binary.LittleEndian.Uint16(b[off:]))
		off += 2
		if off+kl+4 > len(b) {
			return 0, nil, false
		}
		key := string(b[off : off+kl])
		off += kl
		crcs[key] = binary.LittleEndian.Uint32(b[off:])
		off += 4
	}
	if off+4 > len(b) || integrity.PageCRC(b[:off]) != binary.LittleEndian.Uint32(b[off:]) {
		return 0, nil, false
	}
	return ckpt, crcs, true
}

// walLifeTweak cuts the capacitor dump short on a deterministic subset
// of points, so recovery also faces half-dumped BA buffers on top of
// the stale-tail states ring recycling produces. Pure in i, as the
// campaign shrinker requires.
func walLifeTweak(i int, plan *fault.Plan) {
	if i%5 == 3 {
		plan.CutDumpAfterPages = 1 + i%7
	}
}

// walLifeWorkloads are the lifecycle sweeps behind `bench2b wal-life`:
// the same checkpointing engine on the BA byte path and on the
// block+flush baseline.
var walLifeWorkloads = []crashWorkload{
	{"walseg-ba", 48, 0x2b55c0de0106,
		func(ops int) func(*sim.Env, *sim.Proc) (fault.Cycle, error) { return buildWalSegCrash(wal.BA, ops) },
		walLifeTweak},
	{"walseg-sync", 48, 0x2b55c0de0107,
		func(ops int) func(*sim.Env, *sim.Proc) (fault.Cycle, error) { return buildWalSegCrash(wal.Sync, ops) },
		nil},
}

// WalLifeWorkloads lists the wal-life campaign names in run order.
func WalLifeWorkloads() []string {
	names := make([]string, len(walLifeWorkloads))
	for i, w := range walLifeWorkloads {
		names[i] = w.name
	}
	return names
}

// NewWalLifeCampaign builds the named lifecycle campaign with the
// given number of crash points.
func NewWalLifeCampaign(name string, pts int) (*fault.Campaign, error) {
	for _, w := range walLifeWorkloads {
		if w.name == name {
			return &fault.Campaign{
				Name: w.name, Points: pts, Ops: w.ops, Seed: w.seed,
				Build: w.build(w.ops), Tweak: w.tweak,
			}, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown wal-life workload %q", name)
}
