package bench

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"twobssd/internal/obs"
)

// TestProbeStageCoverage runs the probe under a collector (the same
// wiring `bench2b -metrics -trace` uses) and asserts the artifacts
// cover every instrumented stage of the datapath.
func TestProbeStageCoverage(t *testing.T) {
	col := obs.NewCollector(true)
	col.Install()
	defer col.Uninstall()

	tab := Probe(Quick)
	if len(tab.Rows) == 0 {
		t.Fatal("probe produced no rows")
	}

	var mbuf bytes.Buffer
	if err := col.WriteMetricsJSON(&mbuf); err != nil {
		t.Fatalf("WriteMetricsJSON: %v", err)
	}
	var snap obs.Snapshot
	if err := json.Unmarshal(mbuf.Bytes(), &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v", err)
	}
	// Every instrumented package contributes at least one counter and
	// one latency histogram (the ISSUE's acceptance floor).
	for _, prefix := range []string{"nand.", "ftl.", "pcie.", "ULL-SSD.", "2bssd.", "wal."} {
		var nc, nh int
		for name := range snap.Counters {
			if strings.HasPrefix(name, prefix) {
				nc++
			}
		}
		for name, h := range snap.Histograms {
			if strings.HasPrefix(name, prefix) && h.N > 0 {
				nh++
			}
		}
		if nc == 0 || nh == 0 {
			t.Errorf("stage %q: %d counters, %d non-empty histograms; want >=1 of each", prefix, nc, nh)
		}
	}
	if snap.Counters["2bssd.gate_rejects"] == 0 {
		t.Error("probe did not exercise the LBA checker")
	}

	var tbuf bytes.Buffer
	if err := col.WriteTraceJSON(&tbuf); err != nil {
		t.Fatalf("WriteTraceJSON: %v", err)
	}
	var trace struct {
		TraceEvents []struct {
			Cat string `json:"cat"`
			Ph  string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(tbuf.Bytes(), &trace); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	cats := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		if ev.Ph == "X" || ev.Ph == "i" {
			cats[ev.Cat] = true
		}
	}
	// ftl is absent on purpose: its only span is the GC pause, and the
	// quick probe never fills the device far enough to trigger GC.
	for _, want := range []string{"nand", "pcie", "device", "2bssd", "wal"} {
		if !cats[want] {
			t.Errorf("trace has no spans in category %q (got %v)", want, cats)
		}
	}
}
