package bench

import (
	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// Probe drives one environment through every stage of the 2B-SSD
// datapath — block writes/reads/flush, BA_PIN, MMIO stores, BA_SYNC,
// BA_READ_DMA, BA_FLUSH, a gated block read, and BA-WAL commits — so a
// single `bench2b -metrics m.json -trace out.json probe` run exercises
// the nand, pcie, device, 2bssd and wal instrumentation end to end.
// The table reports the counters each layer recorded.
func Probe(s Scale) *Table {
	t := &Table{
		ID: "probe", Title: "Observability probe: one pass over every datapath stage",
		XLabel: "metric", Series: []string{"value"},
		Notes: []string{"pair with -metrics/-trace to capture the full report."},
	}

	env := sim.NewEnv()
	defer env.Shutdown()
	ssd := SSD2B(env)
	fs := vfs.New(ssd.Device())
	ps := ssd.PageSize()
	reps := s.LatReps
	if reps < 4 {
		reps = 4
	}

	var gateRejects int
	var avgCommit sim.Duration
	env.Go("probe", func(p *sim.Proc) {
		// Block datapath: writes through the buffer, reads, FLUSH.
		data, err := fs.Create("probe.dat", int64(64*ps))
		if err != nil {
			panic(err)
		}
		page := make([]byte, ps)
		for i := 0; i < reps; i++ {
			for j := range page {
				page[j] = byte(i + j)
			}
			if err := data.WriteAt(p, int64((i%64)*ps), page); err != nil {
				panic(err)
			}
		}
		for i := 0; i < reps; i++ {
			if err := data.ReadAt(p, int64((i%64)*ps), page); err != nil {
				panic(err)
			}
		}
		if err := ssd.Device().Flush(p); err != nil {
			panic(err)
		}

		// BA-WAL datapath: MMIO appends, BA_SYNC commits, BA_FLUSH on
		// segment rollover (double buffered).
		seg := 64 * ps
		logf, err := fs.Create("probe.log", int64(4*seg))
		if err != nil {
			panic(err)
		}
		l, err := wal.Open(env, wal.Config{
			Mode: wal.BA, File: logf, SegmentBytes: seg,
			SSD: ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true,
		})
		if err != nil {
			panic(err)
		}
		rec := make([]byte, 128)
		for i := 0; i < 4*reps; i++ {
			lsn, err := l.Append(p, rec)
			if err != nil {
				panic(err)
			}
			if err := l.Commit(p, lsn); err != nil {
				panic(err)
			}
		}
		if err := l.FlushToNAND(p); err != nil {
			panic(err)
		}
		avgCommit = l.Stats().AvgCommit()

		// Direct BA datapath on a scratch entry: pin a file range, store
		// over MMIO, make it durable, DMA it back, flush it out.
		pin, err := fs.Create("probe.pin", int64(8*ps))
		if err != nil {
			panic(err)
		}
		pinOff := 2 * seg // past the WAL's double-buffered window
		if err := ssd.BAPin(p, 2, pinOff, pin.LBA(0), 8); err != nil {
			panic(err)
		}
		if err := ssd.Mmio().Write(p, pinOff, page); err != nil {
			panic(err)
		}
		if err := ssd.BASync(p, 2); err != nil {
			panic(err)
		}
		if _, err := ssd.BAReadDMA(p, 2, page); err != nil {
			panic(err)
		}
		// A block read of the pinned range must bounce off the LBA
		// checker — the consistency mechanism the trace shows as a
		// gate_reject instant.
		if _, err := ssd.Device().ReadPages(p, pin.LBA(0), 1); err != nil {
			gateRejects++
		}
		if err := ssd.BAFlush(p, 2); err != nil {
			panic(err)
		}
	})
	env.Run()

	dev := ssd.Device().Stats()
	nand := ssd.Device().Flash().Stats()
	mmio := ssd.Mmio().Stats()
	ba := ssd.Stats()
	t.AddRow("block write cmds", float64(dev.WriteCmds))
	t.AddRow("block read cmds", float64(dev.ReadCmds))
	t.AddRow("nand page programs", float64(nand.PagePrograms))
	t.AddRow("nand page reads", float64(nand.PageReads))
	t.AddRow("mmio writes", float64(mmio.Writes))
	t.AddRow("mmio syncs", float64(mmio.Syncs))
	t.AddRow("ba pins", float64(ba.Pins))
	t.AddRow("ba flushes", float64(ba.Flushes))
	t.AddRow("ba syncs", float64(ba.Syncs))
	t.AddRow("dma reads", float64(ba.DMAReads))
	t.AddRow("gated block reads", float64(gateRejects))
	t.AddRow("wal avg commit us", avgCommit.Micros())
	return t
}
