// `bench2b wal-life`: the segmented-WAL lifecycle evaluation. Part
// one is a feature microbenchmark — every lifecycle operation (single
// and group commit, rotation, checkpoint+truncation, tail streaming,
// chain recovery) timed on both the paper's BA byte path and the
// block+flush baseline, one deterministic env per mode. Part two is
// the fault sweep: the walseg crash campaigns (internal/bench/walseg.go)
// on both modes, with rotation/checkpoint/truncation-instant triggers
// and torn-tail repair, gating on 0 lost / 0 phantom / 0 repair
// failures. Reports are byte-identical at any -j.
package bench

import (
	"bytes"
	"fmt"
	"io"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/wal"
)

// walLifeStack builds one lifecycle measurement env: the scaled-down
// crash stack plus a segmented log in the given mode (same geometry as
// the walseg crash driver: 16 KB segment files, 4-slot ring).
func walLifeConfig(s *crashStack, mode wal.CommitMode) wal.SegConfig {
	ps := int64(s.ssd.PageSize())
	cfg := wal.SegConfig{
		Mode:              mode,
		FS:                s.fs,
		Name:              "seglog",
		SegmentFileBytes:  4 * ps,
		Ring:              4,
		InnerSegmentBytes: 2 * int(ps),
	}
	if mode == wal.BA {
		cfg.SSD = s.ssd
		cfg.EIDs = []core.EID{0, 1}
		cfg.DoubleBuffer = true
	}
	return cfg
}

// walLifeRow is one mode's feature measurements, all in µs.
type walLifeRow struct {
	commit1      float64 // single committer commit latency
	commit8      float64 // commit latency with 8 concurrent committers
	perFlush     float64 // committers coalesced per group flush
	rotate       float64 // seal + recycle per rotation
	checkpoint   float64 // meta write + truncation per checkpoint
	tailLag      float64 // append→tail-reader delivery lag
	recover      float64 // full chain scan + replay
	truncations  float64
	tornRepaired float64
}

func usOf(d sim.Duration, n uint64) float64 {
	if n == 0 {
		return 0
	}
	return float64(d) / float64(n) / 1e3
}

// walLifeFeatures drives one mode through every lifecycle feature on a
// fresh env and returns the per-feature timings.
func walLifeFeatures(mode wal.CommitMode) (walLifeRow, error) {
	env := sim.NewEnv()
	var row walLifeRow
	var runErr error
	env.Go("wal-life", func(p *sim.Proc) {
		fail := func(err error) { runErr = err }
		s := newCrashStack(env)
		sl, err := wal.OpenSegmented(env, walLifeConfig(s, mode))
		if err != nil {
			fail(err)
			return
		}
		small := func(i int) string { return crashValue(crashKey("wl", i)) }

		// Single committer: small records, append+commit each.
		base := sl.Stats()
		for i := 0; i < 24; i++ {
			lsn, err := sl.Append(p, []byte(small(i)))
			if err == nil {
				err = sl.Commit(p, lsn)
			}
			if err != nil {
				fail(err)
				return
			}
		}
		d1 := sl.Stats()
		row.commit1 = usOf(d1.CommitTime-base.CommitTime, d1.Commits-base.Commits)

		// Group commit: 8 concurrent committers, 8 records each.
		wg := env.NewWaitGroup("wal-life.committers")
		wg.Add(8)
		for c := 0; c < 8; c++ {
			env.GoIdx("wal-life.commit", c, func(p *sim.Proc, c int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					lsn, err := sl.Append(p, []byte(small(100+c*8+i)))
					if err == nil {
						err = sl.Commit(p, lsn)
					}
					if err != nil {
						runErr = err
						return
					}
				}
			})
		}
		wg.Wait(p)
		if runErr != nil {
			return
		}
		d8 := sl.Stats()
		row.commit8 = usOf(d8.CommitTime-d1.CommitTime, d8.Commits-d1.Commits)
		row.perFlush = float64(d8.Commits-d1.Commits) / float64(d8.GroupFlushes-d1.GroupFlushes)

		// Lifecycle churn with a tail reader attached: big records force
		// rotations, periodic checkpoints truncate behind them.
		var lagSum sim.Duration
		var lagN int
		var produced bool
		tailDone := env.NewSignal("wal-life.taildone")
		r := sl.Tail(sl.DurableLSN())
		env.Go("wal-life.tail", func(p *sim.Proc) {
			defer tailDone.Fire()
			for {
				rec, ok, err := r.TryNext()
				if err != nil {
					return
				}
				if ok {
					lagSum += sim.Duration(env.Now() - rec.At)
					lagN++
					continue
				}
				if produced {
					return // caught up with the final frontier
				}
				sl.WaitTail(p)
			}
		})
		for i := 0; i < 40; i++ {
			payload := walSegPayload(crashKey("wl-big", i))
			lsn, err := sl.Append(p, []byte(payload))
			if err == nil {
				err = sl.Commit(p, lsn)
			}
			if err != nil {
				fail(err)
				return
			}
			if i%12 == 11 {
				if err := sl.Checkpoint(p, lsn); err != nil {
					fail(err)
					return
				}
			}
		}
		if err := sl.Drain(p); err != nil {
			fail(err)
			return
		}
		produced = true
		sl.WakeTail()
		tailDone.Wait(p)
		r.Close()
		dl := sl.Stats()
		row.rotate = usOf(dl.RotateTime-d8.RotateTime, dl.Rotations-d8.Rotations)
		row.checkpoint = usOf(dl.CheckpointTime-d8.CheckpointTime, dl.Checkpoints-d8.Checkpoints)
		row.truncations = float64(dl.Truncations - d8.Truncations)
		if lagN > 0 {
			row.tailLag = float64(lagSum) / float64(lagN) / 1e3
		}

		// Chain recovery: flush the live log down, then scan + replay it
		// from NAND through a second handle (stale recycled-slot bytes
		// past the tail are repaired like after a real crash).
		if err := sl.FlushToNAND(p); err != nil {
			fail(err)
			return
		}
		rl, err := wal.OpenSegmented(env, walLifeConfig(s, mode))
		if err != nil {
			fail(err)
			return
		}
		if _, err := rl.Recover(p, nil); err != nil {
			fail(err)
			return
		}
		dr := rl.Stats()
		row.recover = usOf(dr.RecoverTime-dl.RecoverTime, 1)
		row.tornRepaired = float64(dr.TornRepairs - dl.TornRepairs)
	})
	env.Run()
	env.Shutdown()
	return row, runErr
}

// walLifeTable renders both modes' feature rows as the BA-vs-baseline
// comparison table.
func walLifeTable() (*Table, error) {
	ba, err := walLifeFeatures(wal.BA)
	if err != nil {
		return nil, fmt.Errorf("wal-life BA: %w", err)
	}
	sync, err := walLifeFeatures(wal.Sync)
	if err != nil {
		return nil, fmt.Errorf("wal-life sync: %w", err)
	}
	t := &Table{
		ID:     "wal-life",
		Title:  "segmented WAL lifecycle: BA byte path vs block+flush",
		XLabel: "feature",
		Series: []string{"ba", "block+flush"},
	}
	t.AddRow("commit_1_us", ba.commit1, sync.commit1)
	t.AddRow("commit_8_us", ba.commit8, sync.commit8)
	t.AddRow("commits/flush", ba.perFlush, sync.perFlush)
	t.AddRow("rotate_us", ba.rotate, sync.rotate)
	t.AddRow("checkpoint_us", ba.checkpoint, sync.checkpoint)
	t.AddRow("truncations", ba.truncations, sync.truncations)
	t.AddRow("tail_lag_us", ba.tailLag, sync.tailLag)
	t.AddRow("recover_us", ba.recover, sync.recover)
	t.AddRow("torn_repaired", ba.tornRepaired, sync.tornRepaired)
	t.Notes = append(t.Notes,
		"group commit: 8 concurrent committers coalesced per flush burst",
		"recover: full segment-chain scan + replay from NAND media")
	return t, nil
}

// RunWalLife runs the lifecycle evaluation: the feature table, then
// the walseg crash campaigns on both modes with pointsPer crash points
// each. Returns an error when any point loses a committed record,
// recovers a phantom, or fails a torn-tail repair.
func RunWalLife(w io.Writer, pointsPer int) error {
	t, err := walLifeTable()
	if err != nil {
		return err
	}
	t.Print(w)
	parallelFor := func(n int, fn func(i int)) {
		points(n, func(i int) struct{} { fn(i); return struct{}{} })
	}
	violations := 0
	for _, name := range WalLifeWorkloads() {
		c, err := NewWalLifeCampaign(name, pointsPer)
		if err != nil {
			return err
		}
		rep, err := c.Run(parallelFor)
		if err != nil {
			return err
		}
		if err := rep.WriteText(w); err != nil {
			return err
		}
		violations += len(rep.Violations())
	}
	if violations > 0 {
		return fmt.Errorf("bench: %d wal-life crash points violated the durability contract", violations)
	}
	return nil
}

// RunWalLifeSmoke is the CI gate: a smaller sweep executed twice, with
// the two reports compared byte for byte before the first is emitted —
// any nondeterminism in the lifecycle fails the job alongside any
// durability or repair violation.
func RunWalLifeSmoke(w io.Writer, pointsPer int) error {
	var a, b bytes.Buffer
	if err := RunWalLife(&a, pointsPer); err != nil {
		return err
	}
	if err := RunWalLife(&b, pointsPer); err != nil {
		return err
	}
	if a.String() != b.String() {
		return fmt.Errorf("bench: wal-life smoke is nondeterministic across identical runs")
	}
	_, err := w.Write(a.Bytes())
	return err
}
