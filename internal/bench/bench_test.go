package bench

import (
	"strings"
	"testing"
)

// tiny is a minimal scale so the full experiment matrix stays fast in
// unit tests; shape assertions use Quick where they need fidelity.
var tiny = Scale{LatReps: 3, AppOps: 600, Clients: 4, Records: 200, Nodes: 100}

func get(t *testing.T, tab *Table, x, series string) float64 {
	t.Helper()
	v, ok := tab.Get(x, series)
	if !ok {
		t.Fatalf("%s: missing (%s, %s)", tab.ID, x, series)
	}
	return v
}

func TestSpecTable(t *testing.T) {
	tab := Spec()
	if len(tab.Rows) != 8 {
		t.Fatalf("Table I rows = %d", len(tab.Rows))
	}
	var sb strings.Builder
	tab.Print(&sb)
	for _, want := range []string{"800 GB", "8 MB", "PCIe Gen.3 x4", "270 uF x 3"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("Table I missing %q", want)
		}
	}
}

func TestFig7aShape(t *testing.T) {
	tab := Fig7a(Quick)
	// Anchor points from the paper.
	if v := get(t, tab, "4KB", "ULL-SSD"); v < 12 || v > 15 {
		t.Errorf("ULL 4KB read = %.1f us, want ~13.2", v)
	}
	if v := get(t, tab, "4KB", "DC-SSD"); v < 75 || v > 91 {
		t.Errorf("DC 4KB read = %.1f us, want ~83", v)
	}
	if v := get(t, tab, "4KB", "2B MMIO"); v < 135 || v > 165 {
		t.Errorf("MMIO 4KB read = %.1f us, want ~150", v)
	}
	// Crossovers: MMIO wins below ~350B vs ULL, ~2KB vs DC.
	if get(t, tab, "256B", "2B MMIO") >= get(t, tab, "256B", "ULL-SSD") {
		t.Error("MMIO should beat ULL at 256B")
	}
	if get(t, tab, "512B", "2B MMIO") <= get(t, tab, "512B", "ULL-SSD") {
		t.Error("ULL should beat MMIO at 512B")
	}
	if get(t, tab, "2KB", "2B MMIO") >= get(t, tab, "2KB", "DC-SSD") {
		t.Error("MMIO should beat DC at 2KB")
	}
	// Read DMA: ~2.5x faster than MMIO at 4KB, loses below 1KB.
	speedup := get(t, tab, "4KB", "2B MMIO") / get(t, tab, "4KB", "2B readDMA")
	if speedup < 2.0 || speedup > 3.2 {
		t.Errorf("readDMA speedup at 4KB = %.2f, want ~2.6", speedup)
	}
	if get(t, tab, "512B", "2B readDMA") <= get(t, tab, "512B", "2B MMIO") {
		t.Error("plain MMIO should beat readDMA at 512B")
	}
}

func TestFig7bShape(t *testing.T) {
	tab := Fig7b(Quick)
	if v := get(t, tab, "8B", "2B MMIO"); v < 0.6 || v > 0.7 {
		t.Errorf("8B MMIO write = %.2f us, want 0.63", v)
	}
	// Sub-1us persistent writes up to 1KB (headline claim).
	if v := get(t, tab, "1KB", "2B MMIO"); v >= 1.0 {
		t.Errorf("1KB MMIO write = %.2f us, want < 1", v)
	}
	// 16.6x faster than block I/O at 8B.
	ratio := get(t, tab, "8B", "ULL-SSD") / get(t, tab, "8B", "2B MMIO")
	if ratio < 14 || ratio > 19 {
		t.Errorf("MMIO vs ULL at 8B = %.1fx, want ~16", ratio)
	}
	// Persistent MMIO under ULL's 10us even at 4KB.
	if get(t, tab, "4KB", "2B persistent MMIO") >= get(t, tab, "4KB", "ULL-SSD") {
		t.Error("persistent MMIO should stay below ULL block write")
	}
	// Sync overhead band: +15% small, +47% at 4KB.
	r8 := get(t, tab, "8B", "2B persistent MMIO") / get(t, tab, "8B", "2B MMIO")
	r4k := get(t, tab, "4KB", "2B persistent MMIO") / get(t, tab, "4KB", "2B MMIO")
	if r8 < 1.08 || r8 > 1.25 {
		t.Errorf("sync overhead at 8B = %.2f, want ~1.15", r8)
	}
	if r4k < 1.35 || r4k > 1.6 {
		t.Errorf("sync overhead at 4KB = %.2f, want ~1.47", r4k)
	}
}

func TestFig8Shape(t *testing.T) {
	ra := Fig8a(tiny)
	wb := Fig8b(tiny)
	// ULL saturates PCIe at large requests.
	if v := get(t, ra, "16MB", "ULL-SSD"); v < 2800 || v > 3300 {
		t.Errorf("ULL read bw = %.0f MB/s, want ~3200", v)
	}
	// 2B internal sits ~1GB/s below ULL at >= 4MB.
	gap := get(t, ra, "4MB", "ULL-SSD") - get(t, ra, "4MB", "2B internal")
	if gap < 600 || gap > 1400 {
		t.Errorf("ULL - 2B internal read gap = %.0f MB/s, want ~1000", gap)
	}
	// 2B internal write beats DC by ~700MB/s at >= 4MB.
	diff := get(t, wb, "4MB", "2B internal") - get(t, wb, "4MB", "DC-SSD")
	if diff < 400 || diff > 1000 {
		t.Errorf("2B - DC write gap = %.0f MB/s, want ~700", diff)
	}
	// Bandwidth grows with request size for every series.
	for _, tab := range []*Table{ra, wb} {
		for si, series := range tab.Series {
			prev := 0.0
			for _, r := range tab.Rows {
				if r.Vals[si] < prev*0.9 {
					t.Errorf("%s/%s not monotone at %s", tab.ID, series, r.X)
				}
				prev = r.Vals[si]
			}
		}
	}
}

func TestFig9Shapes(t *testing.T) {
	check := func(tab *Table, x string) {
		t.Helper()
		dc := get(t, tab, x, "DC-SSD")
		ull := get(t, tab, x, "ULL-SSD")
		ba := get(t, tab, x, "2B-SSD")
		async := get(t, tab, x, "ASYNC")
		gainDC := ba / dc
		gainULL := ba / ull
		if gainDC < 1.2 || gainDC > 3.2 {
			t.Errorf("%s/%s: 2B over DC = %.2fx, want 1.2-2.8", tab.ID, x, gainDC)
		}
		if gainULL < 1.1 || gainULL > 2.6 {
			t.Errorf("%s/%s: 2B over ULL = %.2fx, want 1.15-2.3", tab.ID, x, gainULL)
		}
		if frac := ba / async; frac < 0.70 || frac > 1.001 {
			t.Errorf("%s/%s: 2B vs ASYNC = %.2f, want 0.75-0.99", tab.ID, x, frac)
		}
		if ull <= dc {
			t.Errorf("%s/%s: ULL (%.0f) should beat DC (%.0f)", tab.ID, x, ull, dc)
		}
	}
	pg := Fig9PG(Quick)
	check(pg, "linkbench")
	lsmTab := Fig9LSM(Quick)
	for _, x := range []string{"64B", "256B", "1024B"} {
		check(lsmTab, x)
	}
	// Payload dependence: the 2B gain shrinks as payload grows.
	g64 := get(t, lsmTab, "64B", "2B-SSD") / get(t, lsmTab, "64B", "DC-SSD")
	g1k := get(t, lsmTab, "1024B", "2B-SSD") / get(t, lsmTab, "1024B", "DC-SSD")
	if g64 <= g1k {
		t.Errorf("lsm gain should grow as payload shrinks: 64B=%.2f 1KB=%.2f", g64, g1k)
	}
	aof := Fig9AOF(Quick)
	for _, x := range []string{"64B", "256B", "1024B"} {
		check(aof, x)
	}
}

func TestFig10Shape(t *testing.T) {
	tab := Fig10(Quick)
	for _, r := range tab.Rows {
		if r.Vals[0] < 0.93 || r.Vals[0] > 1.08 {
			t.Errorf("fig10 %s = %.3f, want ~1.0 (all configs comparable)", r.X, r.Vals[0])
		}
	}
}

func TestCommitOverheadClaim(t *testing.T) {
	tab := CommitOverhead(tiny)
	ratio := get(t, tab, "DC-SSD", "vs 2B-SSD (x)")
	if ratio < 10 || ratio > 40 {
		t.Errorf("DC commit overhead = %.1fx of BA, want O(26x)", ratio)
	}
	if ba := get(t, tab, "2B-SSD", "persist cost"); ba > 2.0 {
		t.Errorf("BA commit = %.2f us, want ~1", ba)
	}
}

func TestWAFReductionClaim(t *testing.T) {
	tab := WAFReduction(tiny)
	block := get(t, tab, "ULL-SSD", "NAND page programs")
	ba := get(t, tab, "2B-SSD", "NAND page programs")
	if ba >= block/3 {
		t.Errorf("BA-WAL NAND programs = %.0f vs block %.0f; want large reduction", ba, block)
	}
}

func TestMixedWorkloadNoDegradation(t *testing.T) {
	tab := MixedWorkload(Quick)
	alone := tab.Rows[0].Vals[0]
	mixed := tab.Rows[1].Vals[0]
	if mixed > alone*1.05 {
		t.Errorf("block read degraded: %.2f -> %.2f us", alone, mixed)
	}
}

func TestRecoveryWithinBudget(t *testing.T) {
	tab := Recovery(tiny)
	var sb strings.Builder
	tab.Print(&sb)
	out := sb.String()
	if !strings.Contains(out, "dump time") || !strings.Contains(out, "energy used") {
		t.Fatalf("recovery table incomplete:\n%s", out)
	}
}

func TestTailLatencyShape(t *testing.T) {
	tab := TailLatency(tiny)
	baP99 := get(t, tab, "2B-SSD", "p99")
	dcP99 := get(t, tab, "DC-SSD", "p99")
	if baP99*5 > dcP99 {
		t.Errorf("BA p99 = %.2f us vs DC p99 = %.2f us; want a much shorter tail", baP99, dcP99)
	}
	if mean := get(t, tab, "2B-SSD", "mean"); mean > 3 {
		t.Errorf("BA mean commit = %.2f us, want ~1", mean)
	}
}

func TestSmallReadShape(t *testing.T) {
	tab := SmallRead(tiny)
	// Small pinned reads beat page-granular block reads; at some size
	// the block path wins again (Fig 7a crossover).
	if blk, mm := get(t, tab, "64B", "block read"), get(t, tab, "64B", "MMIO read (pinned)"); mm >= blk {
		t.Errorf("64B: MMIO %.2f us should beat block %.2f us", mm, blk)
	}
	if blk, mm := get(t, tab, "1KB", "block read"), get(t, tab, "1KB", "MMIO read (pinned)"); mm <= blk {
		t.Errorf("1KB: block %.2f us should beat MMIO %.2f us", blk, mm)
	}
}

func TestPMRComparisonShape(t *testing.T) {
	tab := PMRComparison(tiny)
	baHost := get(t, tab, "2B-SSD (BA-WAL)", "host bytes moved per log byte")
	pmrHost := get(t, tab, "PMR device", "host bytes moved per log byte")
	// The 2B-SSD moves ~0 host bytes per log byte; PMR pays ~2x (DMA
	// read + block write of everything).
	if baHost > 0.2 {
		t.Errorf("2B host bytes/log byte = %.2f, want ~0", baHost)
	}
	if pmrHost < 1.2 {
		t.Errorf("PMR host bytes/log byte = %.2f, want ~2", pmrHost)
	}
	baTput := get(t, tab, "2B-SSD (BA-WAL)", "commits/s")
	pmrTput := get(t, tab, "PMR device", "commits/s")
	if pmrTput > baTput {
		t.Errorf("PMR (%.0f) should not beat 2B-SSD (%.0f)", pmrTput, baTput)
	}
}

func TestJournalingShape(t *testing.T) {
	tab := Journaling(tiny)
	dc := get(t, tab, "DC-SSD", "txns/s")
	ba := get(t, tab, "2B-SSD", "txns/s")
	if ba <= dc {
		t.Errorf("BA journaling (%.0f) should beat DC (%.0f)", ba, dc)
	}
}

func TestAblations(t *testing.T) {
	wc := AblationWriteCombining(tiny)
	if on, off := get(t, wc, "4KB", "WC on (64B bursts)"), get(t, wc, "4KB", "WC off (8B stores)"); on >= off {
		t.Errorf("WC ablation: on=%.2f off=%.2f; combining should win", on, off)
	}
	db := AblationDoubleBuffering(tiny)
	if dbl, single := db.Rows[0].Vals[0], db.Rows[1].Vals[0]; dbl >= single {
		t.Errorf("double buffering (%.0f) should beat single (%.0f)", dbl, single)
	}
	gc := AblationGroupCommit(tiny)
	f1 := get(t, gc, "1", "fsyncs per commit")
	f16 := get(t, gc, "16", "fsyncs per commit")
	if f16 >= f1 {
		t.Errorf("group commit: fsyncs/commit should fall with clients (1:%.2f 16:%.2f)", f1, f16)
	}
}
