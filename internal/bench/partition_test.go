package bench

import (
	"bytes"
	"reflect"
	"testing"
)

// TestFleetPartitionIdentical is the determinism bar for partitioned
// mode at the bench layer: the linked replication fleet must produce
// exactly the same virtual-time results with one worker and with more
// workers than partitions.
func TestFleetPartitionIdentical(t *testing.T) {
	serial := runFleet(3, 200, 1)
	for _, workers := range []int{2, 4, 9} {
		part := runFleet(3, 200, workers)
		if !reflect.DeepEqual(serial, part) {
			t.Fatalf("fleet results differ at workers=%d:\nserial: %+v\npartitioned: %+v",
				workers, serial, part)
		}
	}
	if serial.Events == 0 {
		t.Fatal("fleet executed no events")
	}
	for i, ps := range serial.Pairs {
		if ps.Commits != 200 || ps.Acks != 200 {
			t.Fatalf("pair %d: commits=%d acks=%d, want 200/200", i, ps.Commits, ps.Acks)
		}
		if ps.LagMax < fleetNetLatency+fleetApplyCPU {
			t.Fatalf("pair %d: max lag %v below link latency + apply cost", i, ps.LagMax)
		}
	}
}

// TestPartitionSpeedupReport checks the -benchjson probe: both runs
// complete, the identity check holds, and the report fields are sane.
func TestPartitionSpeedupReport(t *testing.T) {
	old := PartitionShards()
	SetPartitionShards(4)
	defer SetPartitionShards(old)
	rep := PartitionSpeedup(Scale{AppOps: 1600})
	if !rep.Identical {
		t.Fatal("partitioned fleet diverged from serial run")
	}
	if rep.Shards != 4 || rep.Pairs != 8 {
		t.Fatalf("got shards=%d pairs=%d, want 4/8", rep.Shards, rep.Pairs)
	}
	if rep.Events == 0 || rep.SerialWallNs <= 0 || rep.PartitionedWallNs <= 0 || rep.Speedup <= 0 {
		t.Fatalf("implausible report: %+v", rep)
	}
}

// TestPshardsInvariance runs representative experiments — including
// fig9, a multi-instance sweep the ISSUE names — under the semaphore
// executor and under the partitioned shard executor, demanding
// byte-identical tables. This is the "determinism suite extended to
// partitioned mode" bar for the automatic -pshards path.
func TestPshardsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-experiment sweep; skipped with -short")
	}
	sweep := func(shards int) []byte {
		old := PartitionShards()
		SetPartitionShards(shards)
		defer SetPartitionShards(old)
		var out bytes.Buffer
		CommitOverhead(Quick).Print(&out)
		WAFReduction(Quick).Print(&out)
		Fig9LSM(Quick).Print(&out)
		PartitionedFleet(Quick).Print(&out)
		return out.Bytes()
	}
	base := sweep(1)
	for _, shards := range []int{2, 5} {
		if got := sweep(shards); !bytes.Equal(base, got) {
			t.Errorf("tables differ between -pshards 1 and -pshards %d:\n--- 1 ---\n%s--- %d ---\n%s",
				shards, base, shards, got)
		}
	}
}
