package bench

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/ftl"
	"twobssd/internal/sim"
	"twobssd/internal/wal"
)

// CommitOverhead quantifies the paper's "transaction commit overhead
// reduced by up to 26x" claim: the time to persist one small log
// record (append + commit) under each log-device configuration.
func CommitOverhead(s Scale) *Table {
	t := &Table{
		ID: "commit", Title: "Cost to persist a 128B log record (append+commit)",
		XLabel: "config", Unit: "us",
		Series: []string{"persist cost", "vs 2B-SSD (x)"},
		Notes:  []string{"paper claim: up to 26x reduction vs block logging."},
	}
	measure := func(cfg LogDevice) sim.Duration {
		st := newStack(cfg)
		defer st.env.Shutdown()
		var avg sim.Duration
		st.env.Go("t", func(p *sim.Proc) {
			f, err := st.logFS.Create("commitlog", 8<<20)
			if err != nil {
				panic(err)
			}
			wcfg := wal.Config{Mode: st.mode, File: f}
			if st.mode == wal.BA {
				wcfg.SSD = st.ssd
				wcfg.EIDs = []core.EID{0, 1}
				wcfg.SegmentBytes = st.ssd.Config().BABufferBytes / 2
				wcfg.DoubleBuffer = true
			}
			l, err := wal.Open(st.env, wcfg)
			if err != nil {
				panic(err)
			}
			// Warm up: the first append pays the one-time BA_PIN of the
			// log segment, which is not per-commit cost.
			if lsn, err := l.Append(p, make([]byte, 128)); err == nil {
				if err := l.Commit(p, lsn); err != nil {
					panic(err)
				}
			} else {
				panic(err)
			}
			const reps = 50
			var total sim.Duration
			for i := 0; i < reps; i++ {
				start := st.env.Now()
				lsn, err := l.Append(p, make([]byte, 128))
				if err != nil {
					panic(err)
				}
				if err := l.Commit(p, lsn); err != nil {
					panic(err)
				}
				total += sim.Duration(st.env.Now() - start)
			}
			avg = total / reps
		})
		st.env.Run()
		return avg
	}
	cfgs := []LogDevice{LogDC, LogULL, Log2B}
	costs := points(len(cfgs), func(i int) sim.Duration { return measure(cfgs[i]) })
	// measure is deterministic per configuration, so the Log2B point IS
	// the BA reference the ratios normalize by.
	ba := costs[2]
	for i, cfg := range cfgs {
		t.AddRow(cfg.String(), costs[i].Micros(), float64(costs[i])/float64(ba))
	}
	return t
}

// WAFReduction demonstrates the Section IV-A claim: BA-WAL removes the
// repeated partial-log-page NAND writes of block logging. Both sides
// persist the same stream of small records — enough to fill one whole
// BA-buffer half — and we count NAND page programs on the log device.
// Block logging rewrites the containing 4KB page on every commit; the
// BA-WAL programs each log page exactly once, at BA_FLUSH time.
func WAFReduction(s Scale) *Table {
	t := &Table{
		ID: "waf", Title: "Log-device NAND writes for a 4MB stream of 256B commits",
		XLabel: "config", Unit: "pages",
		Series: []string{"NAND page programs", "records persisted"},
		Notes: []string{
			"block WAL: ~1 NAND program per commit (page rewrite);",
			"BA-WAL: ~1 program per filled log page (single write, low WAF).",
		},
	}
	const recBytes = 256
	segBytes := core.DefaultConfig().BABufferBytes / 2 // 4 MB
	records := segBytes / (recBytes + 16)
	run := func(cfg LogDevice) (nand uint64, n int) {
		st := newStack(cfg)
		defer st.env.Shutdown()
		st.env.Go("t", func(p *sim.Proc) {
			f, err := st.logFS.Create("waflog", int64(2*segBytes))
			if err != nil {
				panic(err)
			}
			wcfg := wal.Config{Mode: st.mode, File: f, SegmentBytes: segBytes}
			if st.mode == wal.BA {
				wcfg.SSD = st.ssd
				wcfg.EIDs = []core.EID{0, 1}
				wcfg.DoubleBuffer = true
			}
			l, err := wal.Open(st.env, wcfg)
			if err != nil {
				panic(err)
			}
			rec := make([]byte, recBytes) // Append copies; reuse one buffer
			for i := 0; i < records; i++ {
				lsn, err := l.Append(p, rec)
				if err != nil {
					panic(err)
				}
				if err := l.Commit(p, lsn); err != nil {
					panic(err)
				}
			}
			if err := l.FlushToNAND(p); err != nil {
				panic(err)
			}
			if err := st.logFS.Device().Drain(p); err != nil {
				panic(err)
			}
		})
		st.env.Run()
		var fstats ftl.Stats
		if st.ssd != nil {
			fstats = st.ssd.Device().FTL().Stats()
		} else {
			fstats = st.logFS.Device().FTL().Stats()
		}
		return fstats.NandPagewrites, records
	}
	cfgs := []LogDevice{LogULL, Log2B}
	t.Rows = points(len(cfgs), func(i int) Row {
		nand, n := run(cfgs[i])
		return Row{X: cfgs[i].String(), Vals: []float64{float64(nand), float64(n)}}
	})
	return t
}

// MixedWorkload verifies the discussion-section claim that enabling
// the memory interface does not degrade block I/O: block-read latency
// on the 2B-SSD with and without a concurrent MMIO logging stream.
func MixedWorkload(s Scale) *Table {
	t := &Table{
		ID: "mixed", Title: "Block read latency with concurrent memory-interface traffic",
		XLabel: "condition", Unit: "us",
		Series: []string{"4KB block read"},
		Notes:  []string{"paper discussion: block I/O shows no degradation."},
	}
	run := func(withMMIO bool) sim.Duration {
		e := sim.NewEnv()
		defer e.Shutdown()
		ssd := SSD2B(e)
		var lat sim.Duration
		e.Go("t", func(p *sim.Proc) {
			if err := ssd.Device().WritePages(p, 0, make([]byte, ssd.PageSize())); err != nil {
				panic(err)
			}
			if err := ssd.Device().Drain(p); err != nil {
				panic(err)
			}
			if withMMIO {
				if err := ssd.BAPin(p, 0, 0, 1000, 16); err != nil {
					panic(err)
				}
				e.Go("logger", func(w *sim.Proc) {
					for i := 0; i < 200; i++ {
						if err := ssd.Mmio().Write(w, (i%16)*64, make([]byte, 64)); err != nil {
							panic(err)
						}
						if err := ssd.Mmio().Sync(w, (i%16)*64, 64); err != nil {
							panic(err)
						}
					}
				})
			}
			var total sim.Duration
			for i := 0; i < s.LatReps; i++ {
				start := e.Now()
				if _, err := ssd.Device().ReadPages(p, 0, 1); err != nil {
					panic(err)
				}
				total += sim.Duration(e.Now() - start)
			}
			lat = total / sim.Duration(s.LatReps)
		})
		e.Run()
		return lat
	}
	lats := points(2, func(i int) sim.Duration { return run(i == 1) })
	t.AddRow("block only", lats[0].Micros())
	t.AddRow("block + MMIO log", lats[1].Micros())
	return t
}

// Recovery measures the power-loss protection subsystem: dump
// duration, energy used versus the capacitor budget, and restore time
// — the quantities that justify "no risk of data loss".
func Recovery(s Scale) *Table {
	t := &Table{
		ID: "recovery", Title: "Power-loss dump/restore of the 8MB BA-buffer",
		XLabel: "phase", Unit: "",
		Series: []string{"value"},
	}
	e := sim.NewEnv()
	defer e.Shutdown()
	ssd := SSD2B(e)
	e.Go("t", func(p *sim.Proc) {
		if err := ssd.BAPin(p, 0, 0, 0, ssd.BufferPages()/2); err != nil {
			panic(err)
		}
		if err := ssd.Mmio().Write(p, 0, make([]byte, 4096)); err != nil {
			panic(err)
		}
		if err := ssd.BASync(p, 0); err != nil {
			panic(err)
		}
		rep, err := ssd.PowerLoss(p)
		if err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprintf("dump time: %v", rep.DumpDuration))
		t.AddRow(fmt.Sprintf("energy used: %.1f mJ of %.1f mJ budget",
			rep.EnergyUsedJ*1e3, rep.EnergyBudgetJ*1e3))
		start := e.Now()
		if err := ssd.PowerOn(p); err != nil {
			panic(err)
		}
		t.AddRow(fmt.Sprintf("restore+rearm time: %v", sim.Duration(e.Now()-start)))
	})
	e.Run()
	return t
}
