package bench

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

// A short sweep over every workload must hold the durability contract.
func TestCrashCampaignsSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunCrash(&buf, nil, 6); err != nil {
		t.Fatalf("RunCrash: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, name := range CrashWorkloads() {
		if !strings.Contains(out, "campaign "+name+":") {
			t.Errorf("report missing campaign %q:\n%s", name, out)
		}
	}
	if !strings.Contains(out, "violations: 0") {
		t.Errorf("expected clean campaigns:\n%s", out)
	}
}

// The campaign report must be byte-identical run over run and at any
// parallelism — the same invariant TestJobsInvariance pins for the
// paper experiments.
func TestCrashCampaignDeterminism(t *testing.T) {
	old := Jobs()
	defer SetJobs(old)
	run := func(jobs int) string {
		SetJobs(jobs)
		var buf bytes.Buffer
		if err := RunCrash(&buf, []string{"lsm", "kvaof"}, 8); err != nil {
			t.Fatalf("RunCrash (j=%d): %v\n%s", jobs, err, buf.String())
		}
		return buf.String()
	}
	seq := run(1)
	again := run(1)
	par := run(8)
	if seq != again {
		t.Fatalf("report differs run over run:\n--- first\n%s\n--- second\n%s", seq, again)
	}
	if seq != par {
		t.Fatalf("report differs between -j 1 and -j 8:\n--- j1\n%s\n--- j8\n%s", seq, par)
	}
}

// Installing an injector with an empty plan must not perturb the
// fault-free virtual timing: the hooks only observe.
func TestEmptyPlanDoesNotPerturbTiming(t *testing.T) {
	run := func(install bool) sim.Time {
		env := sim.NewEnv()
		if install {
			fault.Install(env, fault.Plan{Seed: 123})
		}
		env.Go("wal", func(p *sim.Proc) {
			cyc, err := buildWALCrash(env, p)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			for i := 0; i < 16; i++ {
				if _, err := cyc.Step(p, i); err != nil {
					t.Fatalf("step %d: %v", i, err)
				}
			}
		})
		env.Run()
		return env.Now()
	}
	plain, injected := run(false), run(true)
	if plain != injected {
		t.Fatalf("virtual time shifted by an idle injector: %d vs %d ns", int64(plain), int64(injected))
	}
}

// With an undersized capacitor bank the dump reports ErrInsufficient,
// nothing persists (Persisted=false), and recovery must fall back to a
// clean WAL replay of whatever reached NAND — no torn garbage, no
// phantom records, and the log stays usable.
func TestCapacitorExhaustionFallsBackToWALReplay(t *testing.T) {
	cfg := crashStackConfig()
	cfg.CapacitorsUF = []float64{1} // ~72 µJ: hopeless for a 1 MB dump
	env := sim.NewEnv()
	env.Go("t", func(p *sim.Proc) {
		ssd := core.New(env, cfg)
		fs := vfs.New(ssd.Device())
		f, err := fs.Create("txlog", 2<<20)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		wcfg := wal.Config{
			Mode:         wal.BA,
			File:         f,
			SegmentBytes: cfg.BABufferBytes / 2,
			SSD:          ssd,
			EIDs:         []core.EID{0, 1},
			DoubleBuffer: true,
		}
		l, err := wal.Open(env, wcfg)
		if err != nil {
			t.Fatalf("wal open: %v", err)
		}
		for i := 0; i < 10; i++ {
			lsn, err := l.Append(p, []byte(crashValue(crashKey("cap", i))))
			if err != nil {
				t.Fatalf("append: %v", err)
			}
			if err := l.Commit(p, lsn); err != nil {
				t.Fatalf("commit: %v", err)
			}
		}
		rep, err := ssd.PowerLoss(p)
		if !errors.Is(err, core.ErrInsufficient) {
			t.Fatalf("power loss err = %v, want ErrInsufficient", err)
		}
		if rep.Persisted {
			t.Fatal("dump persisted on an exhausted capacitor bank")
		}
		if err := ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		l2, err := wal.Open(env, wcfg)
		if err != nil {
			t.Fatalf("wal reopen: %v", err)
		}
		got := 0
		err = l2.Recover(p, func(_ wal.LSN, payload []byte) error {
			got++
			if keyOf(string(payload)) == "" {
				t.Errorf("replayed garbage record %q", payload)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		// All ten commits lived only in the BA-buffer; with the dump
		// lost the block-mode scan legitimately finds nothing.
		if got != 0 {
			t.Errorf("recovered %d records from a lost buffer", got)
		}
		// The log must keep working after the fallback.
		lsn, err := l2.Append(p, []byte(crashValue("cap-after")))
		if err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		if err := l2.Commit(p, lsn); err != nil {
			t.Fatalf("commit after recovery: %v", err)
		}
	})
	env.Run()
}

// A dump cut mid-flight must surface as ErrDumpTorn with
// Persisted=false — and never restore a half-written image.
func TestDumpCutLeavesNoTornImage(t *testing.T) {
	env := sim.NewEnv()
	fault.Install(env, fault.Plan{Seed: 5, CutDumpAfterPages: 3})
	env.Go("t", func(p *sim.Proc) {
		ssd := core.New(env, crashStackConfig())
		fs := vfs.New(ssd.Device())
		f, err := fs.Create("txlog", 2<<20)
		if err != nil {
			t.Fatalf("create: %v", err)
		}
		wcfg := wal.Config{
			Mode:         wal.BA,
			File:         f,
			SegmentBytes: crashStackConfig().BABufferBytes / 2,
			SSD:          ssd,
			EIDs:         []core.EID{0, 1},
			DoubleBuffer: true,
		}
		l, err := wal.Open(env, wcfg)
		if err != nil {
			t.Fatalf("wal open: %v", err)
		}
		lsn, err := l.Append(p, []byte(crashValue("torn-0")))
		if err != nil {
			t.Fatalf("append: %v", err)
		}
		if err := l.Commit(p, lsn); err != nil {
			t.Fatalf("commit: %v", err)
		}
		rep, err := ssd.PowerLoss(p)
		if !errors.Is(err, core.ErrDumpTorn) {
			t.Fatalf("power loss err = %v, want ErrDumpTorn", err)
		}
		if rep.Persisted {
			t.Fatal("torn dump reported as persisted")
		}
		if err := ssd.PowerOn(p); err != nil {
			t.Fatalf("power on: %v", err)
		}
		if ssd.HasDump() {
			t.Fatal("torn dump image survived power-on")
		}
	})
	env.Run()
}
