// Package bench regenerates every table and figure of the paper's
// evaluation (Section V) on the simulated stack, plus the ablations
// called out in DESIGN.md. Each experiment returns a Table whose rows
// mirror the series the paper plots; cmd/bench2b prints them and
// bench_test.go wraps them as testing.B benchmarks.
package bench

import (
	"fmt"
	"io"
	"strings"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/sim"
)

// Table is one reproduced figure or table.
type Table struct {
	ID     string // e.g. "fig7a"
	Title  string
	XLabel string
	Unit   string
	Series []string
	Rows   []Row
	Notes  []string
}

// Row is one x-axis point.
type Row struct {
	X    string
	Vals []float64
}

// AddRow appends a data point.
func (t *Table) AddRow(x string, vals ...float64) {
	t.Rows = append(t.Rows, Row{X: x, Vals: vals})
}

// Print renders the table in fixed-width columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s: %s ==\n", strings.ToUpper(t.ID), t.Title)
	if t.Unit != "" {
		fmt.Fprintf(w, "   (values in %s)\n", t.Unit)
	}
	head := fmt.Sprintf("%-14s", t.XLabel)
	for _, s := range t.Series {
		head += fmt.Sprintf("%16s", s)
	}
	fmt.Fprintln(w, head)
	for _, r := range t.Rows {
		line := fmt.Sprintf("%-14s", r.X)
		for _, v := range r.Vals {
			line += fmt.Sprintf("%16.2f", v)
		}
		fmt.Fprintln(w, line)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "   note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// Get returns the value at (x, series), for assertions in tests.
func (t *Table) Get(x, series string) (float64, bool) {
	si := -1
	for i, s := range t.Series {
		if s == series {
			si = i
			break
		}
	}
	if si < 0 {
		return 0, false
	}
	for _, r := range t.Rows {
		if r.X == x && si < len(r.Vals) {
			return r.Vals[si], true
		}
	}
	return 0, false
}

// Scale sizes an experiment run.
type Scale struct {
	LatReps int   // repetitions per latency point
	AppOps  int64 // operations per application run
	Clients int   // concurrent client processes
	Records int64 // YCSB keyspace
	Nodes   int64 // LinkBench graph size
}

// Quick is the CI-sized scale; Full approaches the paper's run lengths.
var (
	Quick = Scale{LatReps: 10, AppOps: 3000, Clients: 8, Records: 1000, Nodes: 400}
	Full  = Scale{LatReps: 50, AppOps: 30000, Clients: 16, Records: 10000, Nodes: 4000}
)

// Device factories shared by the experiments.

// DC builds a DC-SSD (PM963-class) device.
func DC(e *sim.Env) *device.Device { return device.New(e, device.DCSSD()) }

// ULL builds a ULL-SSD (Z-SSD-class) device.
func ULL(e *sim.Env) *device.Device { return device.New(e, device.ULLSSD()) }

// SSD2B builds a full-spec 2B-SSD.
func SSD2B(e *sim.Env) *core.TwoBSSD { return core.New(e, core.DefaultConfig()) }

// Spec renders Table I.
func Spec() *Table {
	t := &Table{ID: "tab1", Title: "2B-SSD specification (Table I)", XLabel: "Item", Series: []string{"-"}}
	for _, row := range core.DefaultSpec().Rows() {
		t.Rows = append(t.Rows, Row{X: row[0] + ": " + row[1]})
	}
	return t
}
