// The `bench2b fleet` experiment family: multi-device fleets of
// simulated 2B-SSDs under tenant traffic, exercising the shard router,
// BA-log replication, QoS slot arbitration and failover end to end.
// Each scenario is one fleet.Run on its own sim.Group (workers =
// -pshards), scenarios fan out through points() (so -j applies), and
// every run doubles as an integrity gate: lost or phantom records, or
// a determinism divergence between worker counts, fail the run.
package bench

import (
	"fmt"
	"io"
	"reflect"
	"strings"

	"twobssd/internal/fleet"
	"twobssd/internal/sim"
	"twobssd/internal/traffic"
)

// fleetTenantOps sizes per-tenant traffic from the experiment scale.
func fleetTenantOps(s Scale) int {
	ops := int(s.AppOps / 20) // Quick: 150, Full: 1500
	if ops < 50 {
		ops = 50
	}
	return ops
}

// fleetScenario is one named fleet configuration.
type fleetScenario struct {
	id    string
	title string
	cfg   fleet.Config
}

// fleetTenants builds n tenant specs with per-tenant seeds and the
// given arrival process.
func fleetTenants(n, ops int, seedBase uint64, arrival func(i int) traffic.Arrival) []traffic.Spec {
	specs := make([]traffic.Spec, n)
	for i := range specs {
		specs[i] = traffic.Spec{
			Tenant:       fmt.Sprintf("t%02d", i),
			Seed:         seedBase + uint64(i)*0x9E37,
			Arrival:      arrival(i),
			Ops:          ops,
			Keys:         1 << 14,
			Theta:        0.99,
			ReadFraction: 0.25,
			PayloadBytes: 128,
			MaxRetries:   8,
			RetryBackoff: 20 * sim.Microsecond,
		}
	}
	return specs
}

// fleetBase is the shared fleet shape: 4 devices, 8 tenants, hash
// placement, 4 QoS slots per device (16 log streams fleet-wide, so the
// mapping table is genuinely contended).
func fleetBase(s Scale, seed uint64, arrival func(i int) traffic.Arrival) fleet.Config {
	return fleet.Config{
		Devices: 4,
		Policy:  fleet.Hash,
		Workers: PartitionShards(),
		Seed:    seed,
		QoS:     fleet.QoSConfig{Slots: 4, BurstOps: 4, MaxInflight: 8},
		Tenants: fleetTenants(8, fleetTenantOps(s), seed, arrival),
	}
}

// fleetScenarios is the full family: steady Zipfian load, bursty and
// diurnal arrivals, an open-loop saturation ramp with a tight retry
// budget (the retry-storm shape), and an injected primary power loss.
func fleetScenarios(s Scale) []fleetScenario {
	steady := fleetBase(s, 0x2B51, func(i int) traffic.Arrival {
		return traffic.Poisson{RatePerSec: 20000}
	})
	bursty := fleetBase(s, 0x2B52, func(i int) traffic.Arrival {
		return traffic.Bursty{
			BasePerSec:  4000,
			BurstPerSec: 80000,
			BurstEvery:  sim.Duration(10+i) * sim.Millisecond,
			BurstLen:    2 * sim.Millisecond,
		}
	})
	diurnal := fleetBase(s, 0x2B53, func(i int) traffic.Arrival {
		return traffic.Diurnal{BasePerSec: 20000, Amplitude: 0.8, Period: 20 * sim.Millisecond}
	})
	sat := fleetBase(s, 0x2B54, func(i int) traffic.Arrival {
		return traffic.Ramp{StartPerSec: 5000, EndPerSec: 150000, Over: 20 * sim.Millisecond}
	})
	for i := range sat.Tenants {
		sat.Tenants[i].MaxRetries = 2 // tight budget: rejects become drops
	}
	sat.QoS.MaxInflight = 4
	fo := fleetBase(s, 0x2B55, func(i int) traffic.Arrival {
		return traffic.Poisson{RatePerSec: 20000}
	})
	fo.Crash = &fleet.CrashSpec{Device: -1, At: sim.Time(3 * sim.Millisecond)}
	return []fleetScenario{
		{"fleet-steady", "steady Zipfian load, 4 devices x 8 tenants", steady},
		{"fleet-bursty", "bursty arrivals (phase-staggered bursts)", bursty},
		{"fleet-diurnal", "diurnal rate modulation", diurnal},
		{"fleet-saturation", "saturation ramp + retry storm", sat},
		{"fleet-failover", "injected primary power loss at 3ms", fo},
	}
}

// fleetSmokeScenario is the CI-sized gate: 2 devices, 2 tenants, one
// injected primary crash with follower takeover.
func fleetSmokeScenario() fleetScenario {
	cfg := fleet.Config{
		Devices: 2,
		Policy:  fleet.Hash,
		Workers: PartitionShards(),
		Seed:    0x2B50,
		QoS:     fleet.QoSConfig{Slots: 2, BurstOps: 4, MaxInflight: 8},
		Tenants: fleetTenants(2, 120, 0x2B50, func(i int) traffic.Arrival {
			return traffic.Poisson{RatePerSec: 20000}
		}),
		Crash: &fleet.CrashSpec{Device: -1, At: sim.Time(2 * sim.Millisecond)},
	}
	return fleetScenario{"fleet-smoke", "2-device smoke fleet, primary crash + takeover", cfg}
}

// fleetTable renders one scenario result as a per-tenant table.
func fleetTable(sc fleetScenario, res *fleet.Result) *Table {
	t := &Table{
		ID:     sc.id,
		Title:  sc.title,
		XLabel: "tenant",
		Series: []string{"lat p50 us", "lat p99 us", "replag p50 us", "qos wait p99 us", "evict", "drop", "lost"},
	}
	for _, tr := range res.Tenants {
		x := fmt.Sprintf("%s d%d>d%d", tr.Name, tr.Primary, tr.Follower)
		if tr.FailedOver {
			x += "*"
		}
		t.AddRow(x,
			float64(tr.LatP50.Micros()), float64(tr.LatP99.Micros()),
			float64(tr.RepLagP50.Micros()), float64(tr.QoSWaitP99.Micros()),
			float64(tr.Evictions), float64(tr.Dropped), float64(tr.Lost))
	}
	for d, dr := range res.Devices {
		state := "up"
		if dr.Down {
			state = "DOWN"
		}
		t.Notes = append(t.Notes, fmt.Sprintf(
			"dev%d %s: fairness %.3f, %d leases, %d evictions",
			d, state, dr.Fairness, dr.Leases, dr.Evictions))
	}
	if fo := res.Failover; fo != nil {
		t.Notes = append(t.Notes, fmt.Sprintf(
			"failover: dev%d tripped at %.0fus, %d tenants took over, recovery max %.1fus, lost %d, phantom %d",
			fo.Device, sim.Duration(fo.TripAt).Micros(), fo.Tenants,
			fo.RecoveryMax.Micros(), fo.Lost, fo.Phantom))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("* = failed over; %d simulation events", res.Events))
	return t
}

// fleetOutcome is one scenario's rendered table plus its violations.
type fleetOutcome struct {
	table      *Table
	violations []string
	err        error
}

func runFleetScenario(sc fleetScenario) fleetOutcome {
	res, err := fleet.Run(sc.cfg)
	if err != nil {
		return fleetOutcome{err: fmt.Errorf("%s: %w", sc.id, err)}
	}
	out := fleetOutcome{table: fleetTable(sc, res)}
	for _, v := range res.Violations() {
		out.violations = append(out.violations, sc.id+": "+v)
	}
	return out
}

// RunFleet executes the fleet experiment family (or the CI smoke
// scenario) and writes the tables to w. It returns an error when any
// scenario lost or phantomed a record, failed to fail over, or — the
// smoke's extra determinism bar — produced a different result at a
// different sim.Group worker count.
func RunFleet(w io.Writer, s Scale, smoke bool) error {
	var scens []fleetScenario
	if smoke {
		scens = []fleetScenario{fleetSmokeScenario()}
	} else {
		scens = fleetScenarios(s)
	}
	outs := points(len(scens), func(i int) fleetOutcome {
		return runFleetScenario(scens[i])
	})
	var violations []string
	for _, out := range outs {
		if out.err != nil {
			return out.err
		}
		out.table.Print(w)
		violations = append(violations, out.violations...)
	}
	if smoke {
		// Determinism bar: the same smoke fleet at 1 worker and at 2
		// must produce the identical Result, field for field.
		a := fleetSmokeScenario()
		a.cfg.Workers = 1
		b := fleetSmokeScenario()
		b.cfg.Workers = 2
		ra, errA := fleet.Run(a.cfg)
		rb, errB := fleet.Run(b.cfg)
		if errA != nil || errB != nil {
			return fmt.Errorf("fleet-smoke determinism probe: %v / %v", errA, errB)
		}
		if !reflect.DeepEqual(ra, rb) {
			violations = append(violations,
				"fleet-smoke: result diverged between 1 and 2 sim.Group workers")
		} else {
			fmt.Fprintln(w, "fleet-smoke: determinism probe ok (1 vs 2 workers identical)")
		}
	}
	if len(violations) > 0 {
		return fmt.Errorf("fleet gate: %s", strings.Join(violations, "; "))
	}
	return nil
}
