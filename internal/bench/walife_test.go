package bench

import (
	"bytes"
	"strings"
	"testing"
)

// TestWalLifeSmoke runs the lifecycle evaluation end to end on a small
// sweep: the feature table renders for both modes and no crash point
// violates the durability contract.
func TestWalLifeSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := RunWalLife(&buf, 8); err != nil {
		t.Fatalf("RunWalLife: %v\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{
		"WAL-LIFE", "commit_1_us", "commits/flush", "recover_us",
		"campaign walseg-ba:", "campaign walseg-sync:", "violations: 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// TestWalLifeDeterminism: the full wal-life report — feature table,
// campaign reports, metrics — is byte-identical between -j1 and -j8.
func TestWalLifeDeterminism(t *testing.T) {
	run := func(jobs int) string {
		old := Jobs()
		SetJobs(jobs)
		defer SetJobs(old)
		var buf bytes.Buffer
		if err := RunWalLife(&buf, 8); err != nil {
			t.Fatalf("RunWalLife at -j%d: %v", jobs, err)
		}
		return buf.String()
	}
	j1 := run(1)
	j1b := run(1)
	j8 := run(8)
	if j1 != j1b {
		t.Fatalf("wal-life not deterministic across identical -j1 runs")
	}
	if j1 != j8 {
		t.Fatalf("wal-life differs between -j1 and -j8")
	}
}
