// The model-based fuzzing campaign behind `bench2b fuzz`: N seeds of
// randomized dual-path workload replayed against the internal/oracle
// reference model, each on its own fresh sim.Env. Seeds fan out
// through the package point runner (so -j applies) and land in seed
// order, so the summary is byte-identical at any parallelism. Any
// divergence is shrunk to a minimal op trace before reporting.
package bench

import (
	"fmt"
	"io"

	"twobssd/internal/oracle"
)

// FuzzReport aggregates one fuzz campaign.
type FuzzReport struct {
	Seeds        int
	Ops          int
	Divergences  []oracle.ShrinkReport
	ScrubRepairs uint64
	EccRetries   uint64
}

// RunFuzz replays seeds 0..n-1 through the oracle, shrinks any
// divergence, writes the summary table to w, and returns an error when
// the stack and the reference model disagreed anywhere.
func RunFuzz(w io.Writer, n int) (*FuzzReport, error) {
	cfg := oracle.Config{}
	results := points(n, func(i int) oracle.Result {
		return oracle.Run(uint64(i), cfg)
	})
	rep := &FuzzReport{Seeds: n}
	for _, r := range results {
		rep.Ops += r.Ops
		rep.ScrubRepairs += r.ScrubRepairs
		rep.EccRetries += r.EccRetries
		if r.Divergence != nil {
			sr := oracle.Shrink(r.Seed, cfg, oracle.Generate(r.Seed, cfg))
			if sr.Divergence == nil {
				// The full trace diverged but the re-run did not:
				// itself a determinism bug worth reporting loudly.
				sr.Divergence = r.Divergence
				sr.Ops = nil
			}
			rep.Divergences = append(rep.Divergences, sr)
		}
	}
	if err := rep.WriteText(w); err != nil {
		return rep, err
	}
	if len(rep.Divergences) > 0 {
		return rep, fmt.Errorf("bench: %d of %d fuzz seeds diverged from the reference model", len(rep.Divergences), n)
	}
	return rep, nil
}

// WriteText renders the deterministic campaign summary.
func (r *FuzzReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== fuzz: dual-path oracle, %d seeds ==\n", r.Seeds); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-24s %d\n%-24s %d\n%-24s %d\n%-24s %d\n%-24s %d\n",
		"seeds run", r.Seeds,
		"ops executed", r.Ops,
		"divergences", len(r.Divergences),
		"scrub repairs", r.ScrubRepairs,
		"ecc retries", r.EccRetries); err != nil {
		return err
	}
	for _, sr := range r.Divergences {
		if _, err := fmt.Fprintf(w, "DIVERGENCE %v\n", sr.Divergence); err != nil {
			return err
		}
		for i, op := range sr.Ops {
			if _, err := fmt.Fprintf(w, "  op %2d: %v\n", i, op); err != nil {
				return err
			}
		}
		if sr.Flight != nil {
			if err := sr.Flight.WriteText(w); err != nil {
				return err
			}
		}
	}
	return nil
}
