package bench

import (
	"strconv"

	"twobssd/internal/core"
	"twobssd/internal/pcie"
	"twobssd/internal/sim"
	"twobssd/internal/wal"
)

// AblationWriteCombining quantifies design decision 4 of DESIGN.md:
// the BAR manager maps BAR1 as write-combining memory. The ablation
// shrinks the WC burst to the raw 8B transaction size (uncombined
// stores) and re-measures MMIO write latency.
func AblationWriteCombining(s Scale) *Table {
	t := &Table{
		ID: "ablation-wc", Title: "Write combining on BAR1 (ablation)",
		XLabel: "req size", Unit: "us",
		Series: []string{"WC on (64B bursts)", "WC off (8B stores)"},
	}
	noWC := func(e *sim.Env) *core.TwoBSSD {
		cfg := core.DefaultConfig()
		mm := pcie.DefaultConfig()
		mm.WCBurstBytes = 8
		mm.WCBufferBursts = 80 // same staging bytes, smaller granule
		cfg.MMIO = mm
		return core.New(e, cfg)
	}
	sizes := []int{64, 256, 1024, 4096}
	// One point per (size, WC on/off) cell.
	cells := points(len(sizes)*2, func(i int) sim.Duration {
		mk := SSD2B
		if i%2 == 1 {
			mk = noWC
		}
		return mmioWriteWith(mk, sizes[i/2], s.LatReps)
	})
	for si, size := range sizes {
		t.AddRow(sizeLabel(size), cells[2*si].Micros(), cells[2*si+1].Micros())
	}
	return t
}

func mmioWriteWith(mk func(*sim.Env) *core.TwoBSSD, size, reps int) sim.Duration {
	e := sim.NewEnv()
	defer e.Shutdown()
	ssd := mk(e)
	var total sim.Duration
	e.Go("t", func(p *sim.Proc) {
		pages := (size + ssd.PageSize() - 1) / ssd.PageSize()
		if pages < 1 {
			pages = 1
		}
		if err := ssd.BAPin(p, 0, 0, 0, pages); err != nil {
			panic(err)
		}
		buf := make([]byte, size)
		for i := 0; i < reps; i++ {
			start := e.Now()
			if err := ssd.Mmio().Write(p, 0, buf); err != nil {
				panic(err)
			}
			total += sim.Duration(e.Now() - start)
		}
	})
	e.Run()
	return total / sim.Duration(reps)
}

// AblationDoubleBuffering quantifies design decision 5: BA-WAL's
// double buffering overlaps logging with BA_FLUSH. The ablation runs
// the same append stream through a single pinned window.
func AblationDoubleBuffering(s Scale) *Table {
	t := &Table{
		ID: "ablation-dbuf", Title: "BA-WAL double buffering (ablation)",
		XLabel: "config", Unit: "us total for 4-segment fill",
	}
	t.Series = []string{"elapsed"}
	run := func(double bool) sim.Duration {
		st := newStack(Log2B)
		defer st.env.Shutdown()
		var elapsed sim.Duration
		st.env.Go("t", func(p *sim.Proc) {
			seg := st.ssd.Config().BABufferBytes / 4
			f, err := st.logFS.Create("log", int64(8*seg))
			if err != nil {
				panic(err)
			}
			eids := []core.EID{0}
			if double {
				eids = []core.EID{0, 1}
			}
			l, err := wal.Open(st.env, wal.Config{
				Mode: wal.BA, File: f, SegmentBytes: seg,
				SSD: st.ssd, EIDs: eids, DoubleBuffer: double,
			})
			if err != nil {
				panic(err)
			}
			payload := make([]byte, 4096)
			start := st.env.Now()
			for l.AppendOff() < int64(4*seg)-8192 {
				lsn, err := l.Append(p, payload)
				if err != nil {
					panic(err)
				}
				if err := l.Commit(p, lsn); err != nil {
					panic(err)
				}
			}
			elapsed = sim.Duration(st.env.Now() - start)
		})
		st.env.Run()
		return elapsed
	}
	vals := points(2, func(i int) sim.Duration { return run(i == 0) })
	t.AddRow("double buffer", vals[0].Micros())
	t.AddRow("single buffer", vals[1].Micros())
	return t
}

// AblationGroupCommit quantifies design decision 7: the block-WAL
// baselines get standard group commit. The ablation compares fsync
// counts and throughput at 1 versus N concurrent committers.
func AblationGroupCommit(s Scale) *Table {
	t := &Table{
		ID: "ablation-group", Title: "Group commit on the block WAL baseline (ablation)",
		XLabel: "clients", Unit: "",
		Series: []string{"commits/s", "fsyncs per commit"},
	}
	run := func(clients int) (float64, float64) {
		st := newStack(LogULL)
		defer st.env.Shutdown()
		var l *wal.Log
		st.env.Go("setup", func(p *sim.Proc) {
			f, err := st.logFS.Create("log", 8<<20)
			if err != nil {
				panic(err)
			}
			l, err = wal.Open(st.env, wal.Config{Mode: wal.Sync, File: f})
			if err != nil {
				panic(err)
			}
			for c := 0; c < clients; c++ {
				st.env.Go("client", func(w *sim.Proc) {
					for i := 0; i < 40; i++ {
						lsn, err := l.Append(w, make([]byte, 128))
						if err != nil {
							panic(err)
						}
						if err := l.Commit(w, lsn); err != nil {
							panic(err)
						}
					}
				})
			}
		})
		st.env.Run()
		stats := l.Stats()
		elapsed := sim.Duration(st.env.Now())
		return float64(stats.Commits) / elapsed.Seconds(),
			float64(stats.Flushes) / float64(stats.Commits)
	}
	counts := []int{1, 4, 16}
	t.Rows = points(len(counts), func(i int) Row {
		tput, fpc := run(counts[i])
		return Row{X: strconv.Itoa(counts[i]), Vals: []float64{tput, fpc}}
	})
	return t
}
