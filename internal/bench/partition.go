package bench

import (
	"fmt"
	"reflect"
	"sync"
	"time"

	"twobssd/internal/core"
	"twobssd/internal/sim"
	"twobssd/internal/wal"
)

// Partitioned execution of the benchmark suite.
//
// Two distinct parallel shapes show up in the experiments:
//
//   - Unlinked fleets: fig9, the crash campaigns and the fuzzer all
//     instantiate N fully independent device/engine instances. Those
//     have infinite lookahead — no instance can ever affect another —
//     so the conservative window schedule of sim.Group degenerates to
//     a single window: assign instances to shards statically and run
//     each shard to completion. points() applies exactly that schedule
//     when PartitionShards() > 1 (see parallel.go), so every
//     multi-instance experiment runs partitioned automatically under
//     the bench2b -pshards flag.
//
//   - Linked fleets: partitions that exchange messages mid-simulation
//     need the full bounded-skew lockstep of sim.Group. The pfleet
//     experiment below is that case: primary/follower replication
//     pairs joined by 5us links, byte-identical at any worker count.

var (
	shardsMu sync.Mutex
	shardsN  = 1
)

// SetPartitionShards sets the partition-shard count used by points()
// and by the linked-fleet experiments' sim.Group workers (minimum 1;
// 1 disables sharding and restores the -j semaphore executor). Like
// SetJobs it must not be called while experiments run.
func SetPartitionShards(n int) {
	if n < 1 {
		n = 1
	}
	shardsMu.Lock()
	shardsN = n
	shardsMu.Unlock()
}

// PartitionShards reports the current partition-shard count.
func PartitionShards() int {
	shardsMu.Lock()
	defer shardsMu.Unlock()
	return shardsN
}

// ---- pfleet: linked primary/follower replication fleet ----

// repMsg is one replicated commit: the record's LSN and the primary's
// commit timestamp, from which the follower derives replication lag.
type repMsg struct {
	lsn    wal.LSN
	commit sim.Time
}

// fleetNetLatency is the modeled one-way primary<->follower network
// latency; as the minimum link latency it is the group's lookahead.
const fleetNetLatency = 5 * sim.Microsecond

// fleetApplyCPU is the follower's per-record apply cost.
const fleetApplyCPU = 2 * sim.Microsecond

// pairStats is one replication pair's deterministic (virtual-time)
// outcome; fleetResult aggregates them, so equality of fleetResults is
// the byte-identity check between serial and partitioned executions.
type pairStats struct {
	Commits int
	LagSum  sim.Duration
	LagMax  sim.Duration
	RTTSum  sim.Duration
	Acks    int
	Virtual sim.Time
}

type fleetResult struct {
	Pairs  []pairStats
	Events uint64
}

// runFleet executes a fleet of primary/follower pairs. Each pair is
// two partitions of one sim.Group: the primary runs a full 2B-SSD
// BA-WAL stack committing small records, streaming each commit over a
// data link; the follower applies records and acks over a return link.
// workers only changes wall-clock speed — the result is identical.
func runFleet(pairs, records, workers int) fleetResult {
	g := sim.NewGroup()
	g.SetWorkers(workers)
	res := fleetResult{Pairs: make([]pairStats, pairs)}
	for k := 0; k < pairs; k++ {
		ps := &res.Pairs[k]
		st := newStackOn(g.NewEnv(fmt.Sprintf("primary%d", k)), Log2B)
		fenv := g.NewEnv(fmt.Sprintf("follower%d", k))
		data := sim.NewLink[repMsg](g, st.env, fenv, fmt.Sprintf("rep%d", k), fleetNetLatency)
		ack := sim.NewLink[sim.Time](g, fenv, st.env, fmt.Sprintf("ack%d", k), fleetNetLatency)
		st.env.Go("primary", func(p *sim.Proc) {
			f, err := st.logFS.Create("replog", 8<<20)
			if err != nil {
				panic(err)
			}
			l, err := wal.Open(st.env, wal.Config{
				Mode: st.mode, File: f, SSD: st.ssd,
				EIDs:         []core.EID{0, 1},
				SegmentBytes: st.ssd.Config().BABufferBytes / 2,
				DoubleBuffer: true,
			})
			if err != nil {
				panic(err)
			}
			rec := make([]byte, 128) // Append copies; reuse one buffer
			for i := 0; i < records; i++ {
				lsn, err := l.Append(p, rec)
				if err != nil {
					panic(err)
				}
				if err := l.Commit(p, lsn); err != nil {
					panic(err)
				}
				data.Send(p, repMsg{lsn: lsn, commit: st.env.Now()})
			}
			data.Close(p)
		})
		st.env.Go("ackwatch", func(p *sim.Proc) {
			for {
				t0, ok := ack.Recv(p)
				if !ok {
					ps.Virtual = st.env.Now()
					return
				}
				ps.Acks++
				ps.RTTSum += sim.Duration(st.env.Now() - t0)
			}
		})
		fenv.Go("follower", func(p *sim.Proc) {
			for {
				m, ok := data.Recv(p)
				if !ok {
					ack.Close(p)
					return
				}
				p.Sleep(fleetApplyCPU)
				lag := sim.Duration(fenv.Now() - m.commit)
				ps.Commits++
				ps.LagSum += lag
				if lag > ps.LagMax {
					ps.LagMax = lag
				}
				ack.Send(p, m.commit)
			}
		})
	}
	g.Run()
	res.Events = g.Events()
	g.Shutdown()
	return res
}

// fleetRecords sizes the per-pair commit stream for a scale.
func fleetRecords(s Scale) int {
	n := int(s.AppOps / 8)
	if n < 64 {
		n = 64
	}
	return n
}

// PartitionedFleet is the pfleet experiment: replicated BA-WAL pairs
// running under the partitioned kernel. It reports aggregate commit
// throughput and the replication lag/ack-RTT profile as the fleet
// grows — and, because every number is virtual-time arithmetic, the
// table is identical at any -pshards.
func PartitionedFleet(s Scale) *Table {
	t := &Table{
		ID: "pfleet", Title: "Replicated BA-WAL fleet under the partitioned kernel",
		XLabel: "fleet", Unit: "",
		Series: []string{"commits/s", "mean lag (us)", "max lag (us)", "mean ack RTT (us)"},
		Notes: []string{
			"each pair = 2 partitions (primary 2B-SSD stack, follower) joined",
			fmt.Sprintf("by %v links; lookahead = link latency; workers = -pshards.", sim.Duration(fleetNetLatency)),
		},
	}
	records := fleetRecords(s)
	for _, pairs := range []int{1, 2, 4} {
		r := runFleet(pairs, records, PartitionShards())
		var commits, acks int
		var lagSum, rttSum, lagMax sim.Duration
		var virt sim.Time
		for _, ps := range r.Pairs {
			commits += ps.Commits
			acks += ps.Acks
			lagSum += ps.LagSum
			rttSum += ps.RTTSum
			if ps.LagMax > lagMax {
				lagMax = ps.LagMax
			}
			if ps.Virtual > virt {
				virt = ps.Virtual
			}
		}
		rate := 0.0
		if virt > 0 {
			rate = float64(commits) / (float64(virt) / 1e9)
		}
		t.AddRow(fmt.Sprintf("%d pairs", pairs), rate,
			(lagSum / sim.Duration(commits)).Micros(),
			lagMax.Micros(),
			(rttSum / sim.Duration(acks)).Micros())
	}
	return t
}

// ---- partitioned-vs-serial speedup probe ----

// PartitionReport records the serial-vs-partitioned comparison that
// feeds -benchjson: the same linked fleet executed with one worker and
// with PartitionShards() workers, wall-clocked, and checked for
// result identity (the determinism bar for partitioned mode).
type PartitionReport struct {
	Shards            int     `json:"shards"`
	Pairs             int     `json:"pairs"`
	Events            uint64  `json:"events"`
	SerialWallNs      int64   `json:"serial_wall_ns"`
	PartitionedWallNs int64   `json:"partitioned_wall_ns"`
	Speedup           float64 `json:"speedup"`
	Identical         bool    `json:"identical"`
}

// PartitionSpeedup runs the speedup probe. With one shard configured
// it still executes both runs (workers=1 twice) so Identical is
// always a meaningful determinism check.
func PartitionSpeedup(s Scale) *PartitionReport {
	shards := PartitionShards()
	pairs := 2 * shards
	if pairs < 4 {
		pairs = 4
	}
	records := fleetRecords(s)
	t0 := time.Now()
	serial := runFleet(pairs, records, 1)
	serialWall := time.Since(t0)
	t1 := time.Now()
	part := runFleet(pairs, records, shards)
	partWall := time.Since(t1)
	rep := &PartitionReport{
		Shards:            shards,
		Pairs:             pairs,
		Events:            part.Events,
		SerialWallNs:      serialWall.Nanoseconds(),
		PartitionedWallNs: partWall.Nanoseconds(),
		Identical:         reflect.DeepEqual(serial, part),
	}
	if partWall > 0 {
		rep.Speedup = float64(serialWall) / float64(partWall)
	}
	return rep
}
