package bench

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/ftl"
	"twobssd/internal/histo"
	"twobssd/internal/jfs"
	"twobssd/internal/sim"
	"twobssd/internal/wal"
)

// TailLatency quantifies the Section IV-A claim that a single NAND
// write per log page "optimizes tail latencies": the distribution of
// per-commit latencies for concurrent committers on a block WAL versus
// BA-WAL.
func TailLatency(s Scale) *Table {
	t := &Table{
		ID: "tail", Title: "Commit latency distribution (128B records, concurrent clients)",
		XLabel: "config", Unit: "us",
		Series: []string{"mean", "p50", "p99", "p99.9", "max"},
		Notes: []string{
			"paper IV-A: one NAND write per log page optimizes tail latencies;",
			"block WAL commits queue behind fsyncs and stretch the tail.",
		},
	}
	run := func(cfg LogDevice) *histo.H {
		st := newStack(cfg)
		defer st.env.Shutdown() // release the point's grown kernel arrays
		h := &histo.H{}
		st.env.Go("setup", func(p *sim.Proc) {
			f, err := st.logFS.Create("taillog", 32<<20)
			if err != nil {
				panic(err)
			}
			wcfg := wal.Config{Mode: st.mode, File: f}
			if st.mode == wal.BA {
				wcfg.SSD = st.ssd
				wcfg.EIDs = []core.EID{0, 1}
				wcfg.SegmentBytes = st.ssd.Config().BABufferBytes / 2
				wcfg.DoubleBuffer = true
			}
			l, err := wal.Open(st.env, wcfg)
			if err != nil {
				panic(err)
			}
			// Warm up: the first append pays the one-time BA_PIN of the
			// first log segment (not steady-state commit cost).
			if lsn, err := l.Append(p, make([]byte, 128)); err != nil {
				panic(err)
			} else if err := l.Commit(p, lsn); err != nil {
				panic(err)
			}
			per := int(s.AppOps) / s.Clients
			for c := 0; c < s.Clients; c++ {
				st.env.Go(fmt.Sprintf("c%d", c), func(w *sim.Proc) {
					rec := make([]byte, 128) // Append copies; reuse per client
					for i := 0; i < per; i++ {
						start := st.env.Now()
						lsn, err := l.Append(w, rec)
						if err != nil {
							panic(err)
						}
						if err := l.Commit(w, lsn); err != nil {
							panic(err)
						}
						h.Observe(sim.Duration(st.env.Now() - start))
					}
				})
			}
		})
		st.env.Run()
		return h
	}
	cfgs := []LogDevice{LogDC, LogULL, Log2B}
	t.Rows = points(len(cfgs), func(i int) Row {
		h := run(cfgs[i])
		return Row{X: cfgs[i].String(), Vals: []float64{h.Mean().Micros(), h.P50().Micros(),
			h.P99().Micros(), h.P999().Micros(), h.Max().Micros()}}
	})
	return t
}

// SmallRead reproduces the Section VI "opposite case": bulk data is
// written with the powerful block path, preloaded (pinned) into the
// BA-buffer, and then read back in small pieces — where byte-granular
// MMIO loads avoid reading a whole 4 KB page per access.
func SmallRead(s Scale) *Table {
	t := &Table{
		ID: "smallread", Title: "Bulk write + small reads (Section VI discussion)",
		XLabel: "read size", Unit: "us",
		Series: []string{"block read", "MMIO read (pinned)"},
		Notes: []string{
			"with preloading, small reads skip the page-granular block path;",
			"applications need not read a whole page to get several bytes.",
		},
	}
	e := sim.NewEnv()
	defer e.Shutdown()
	ssd := SSD2B(e)
	type point struct {
		size        int
		block, mmio sim.Duration
	}
	sizes := []int{8, 64, 256, 1024}
	var points []point
	e.Go("t", func(p *sim.Proc) {
		// Bulk write 1 MB through the block path.
		const pages = 256
		if err := ssd.Device().WritePages(p, 0, make([]byte, pages*ssd.PageSize())); err != nil {
			panic(err)
		}
		if err := ssd.Device().Drain(p); err != nil {
			panic(err)
		}
		for _, size := range sizes {
			var blk sim.Duration
			for i := 0; i < s.LatReps; i++ {
				start := e.Now()
				if _, err := ssd.Device().ReadPages(p, ftl.LBA(i%pages), 1); err != nil {
					panic(err)
				}
				blk += sim.Duration(e.Now() - start)
			}
			blk /= sim.Duration(s.LatReps)
			// Preload: pin a slice of the bulk data.
			if err := ssd.BAPin(p, 0, 0, 0, 64); err != nil {
				panic(err)
			}
			var mm sim.Duration
			buf := make([]byte, size)
			for i := 0; i < s.LatReps; i++ {
				start := e.Now()
				if err := ssd.Mmio().Read(p, (i%64)*ssd.PageSize(), buf); err != nil {
					panic(err)
				}
				mm += sim.Duration(e.Now() - start)
			}
			mm /= sim.Duration(s.LatReps)
			if err := ssd.BAFlush(p, 0); err != nil {
				panic(err)
			}
			points = append(points, point{size: size, block: blk, mmio: mm})
		}
	})
	e.Run()
	for _, pt := range points {
		t.AddRow(sizeLabel(pt.size), pt.block.Micros(), pt.mmio.Micros())
	}
	return t
}

// PMRComparison is an extension experiment for the Section VII related
// work: the same BA-style logging on a 2B-SSD versus on an NVMe
// "Persistent Memory Region" device. Both give byte-addressable,
// capacitor-backed commits; only the 2B-SSD has an internal
// NVRAM<->NAND datapath, so the PMR device pays a host round trip
// (DMA read + block write) for every filled segment.
func PMRComparison(s Scale) *Table {
	t := &Table{
		ID: "pmr", Title: "2B-SSD vs PMR device: BA-style logging (Section VII)",
		XLabel: "device", Unit: "",
		Series: []string{"commits/s", "host bytes moved per log byte"},
		Notes: []string{
			"PMR flushes round-trip through the host (DMA read + block",
			"write); the 2B-SSD internal datapath moves the same data",
			"without touching the host interface.",
		},
	}
	run := func(mode wal.CommitMode) (float64, float64) {
		st := newStack(Log2B)
		defer st.env.Shutdown()
		var l *wal.Log
		var appended uint64
		st.env.Go("setup", func(p *sim.Proc) {
			seg := st.ssd.Config().BABufferBytes / 2
			f, err := st.logFS.Create("pmrlog", int64(8*seg))
			if err != nil {
				panic(err)
			}
			l, err = wal.Open(st.env, wal.Config{
				Mode: mode, File: f, SegmentBytes: seg,
				SSD: st.ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true,
			})
			if err != nil {
				panic(err)
			}
			for c := 0; c < s.Clients; c++ {
				st.env.Go(fmt.Sprintf("c%d", c), func(w *sim.Proc) {
					payload := make([]byte, 1024)
					for i := int64(0); i < s.AppOps/int64(s.Clients); i++ {
						lsn, err := l.Append(w, payload)
						if err != nil {
							panic(err)
						}
						if err := l.Commit(w, lsn); err != nil {
							panic(err)
						}
					}
				})
			}
		})
		st.env.Run()
		st.env.Go("drain", func(p *sim.Proc) {
			if err := l.FlushToNAND(p); err != nil {
				panic(err)
			}
		})
		st.env.Run()
		appended = l.Stats().BytesAppended
		elapsed := sim.Duration(st.env.Now())
		// Host interface traffic caused by log flushing: DMA reads of
		// the window plus block writes of the same bytes (PMR only).
		hostBytes := st.ssd.Stats().DMABytes +
			st.ssd.Device().Stats().PagesWrit*uint64(st.ssd.PageSize())
		return float64(l.Stats().Commits) / elapsed.Seconds(),
			float64(hostBytes) / float64(appended)
	}
	modes := []wal.CommitMode{wal.BA, wal.PMR}
	t.Rows = points(len(modes), func(i int) Row {
		tput, host := run(modes[i])
		x := "2B-SSD (BA-WAL)"
		if modes[i] == wal.PMR {
			x = "PMR device"
		}
		return Row{X: x, Vals: []float64{tput, host}}
	})
	return t
}

// Journaling measures the paper's other motivating workload (Section
// IV: "2B-SSD is also a good fit for file system journaling"): a
// jbd2-style metadata journal committing 1-4 block transactions, block
// WAL versus BA-WAL.
func Journaling(s Scale) *Table {
	t := &Table{
		ID: "journal", Title: "File-system journaling (jbd2-style), txns/s",
		XLabel: "config", Unit: "",
		Series: []string{"txns/s", "avg commit (us)"},
		Notes: []string{
			"whole 4KB blocks are journaled (no byte-size advantage);",
			"the BA win here is pure commit latency.",
		},
	}
	run := func(cfg LogDevice) (float64, float64) {
		st := newStack(cfg)
		defer st.env.Shutdown()
		var store *jfs.Store
		var startAt sim.Time
		st.env.Go("setup", func(p *sim.Proc) {
			home, err := st.dataFS.Create("home", 1<<20)
			if err != nil {
				panic(err)
			}
			journal, err := st.logFS.Create("journal", 16<<20)
			if err != nil {
				panic(err)
			}
			// Commit-dominated run: checkpoints are rare (jbd2 defaults
			// to a 5s commit interval; the journal holds the whole run).
			jcfg := jfs.Config{Home: home, Journal: journal, Mode: st.mode,
				CheckpointEvery: 1 << 20}
			if st.mode == wal.BA {
				jcfg.SSD = st.ssd
				jcfg.EIDs = []core.EID{0, 1}
				jcfg.SegmentBytes = st.ssd.Config().BABufferBytes / 2
			}
			store, err = jfs.Open(st.env, p, jcfg)
			if err != nil {
				panic(err)
			}
			// Warm up: the first BA commit pays the one-time segment pin.
			w := store.Begin()
			w.WriteBlock(255, []byte("warmup"))
			if err := w.Commit(p); err != nil {
				panic(err)
			}
			startAt = st.env.Now()
			per := int(s.AppOps) / s.Clients / 4
			for c := 0; c < s.Clients; c++ {
				c := c
				st.env.Go(fmt.Sprintf("c%d", c), func(w *sim.Proc) {
					for i := 0; i < per; i++ {
						tx := store.Begin()
						tx.WriteBlock(uint32((c*31+i)%200), []byte("inode"))
						tx.WriteBlock(uint32((c*17+i)%200), []byte("bitmap"))
						if err := tx.Commit(w); err != nil {
							panic(err)
						}
					}
				})
			}
		})
		st.env.Run()
		elapsed := sim.Duration(st.env.Now() - startAt)
		txns := store.Stats().Txns - 1
		return float64(txns) / elapsed.Seconds(),
			float64(elapsed.Micros()) / float64(txns)
	}
	cfgs := []LogDevice{LogDC, LogULL, Log2B}
	t.Rows = points(len(cfgs), func(i int) Row {
		tput, avg := run(cfgs[i])
		return Row{X: cfgs[i].String(), Vals: []float64{tput, avg}}
	})
	return t
}

// QueueDepth is an extension beyond the paper's QD-1 sweeps: 4 KB read
// IOPS versus queue depth on both block baselines, showing where each
// device saturates (the paper's Fig 7/8 fix QD=1).
func QueueDepth(s Scale) *Table {
	t := &Table{
		ID: "qd", Title: "4KB random-read IOPS vs queue depth (extension)",
		XLabel: "queue depth", Unit: "kIOPS",
		Series: []string{"DC-SSD", "ULL-SSD"},
		Notes: []string{
			"beyond the paper's QD-1 methodology: concurrency exposes the",
			"devices' internal parallelism until firmware cores saturate.",
		},
	}
	run := func(mk func(*sim.Env) *device.Device, qd int) float64 {
		e := sim.NewEnv()
		defer e.Shutdown()
		d := mk(e)
		const perWorker = 50
		var lastDone sim.Time
		e.Go("setup", func(p *sim.Proc) {
			if err := d.WritePages(p, 0, make([]byte, 256*d.PageSize())); err != nil {
				panic(err)
			}
			if err := d.Drain(p); err != nil {
				panic(err)
			}
			start := e.Now()
			_ = start
			for w := 0; w < qd; w++ {
				w := w
				e.Go(fmt.Sprintf("q%d", w), func(pr *sim.Proc) {
					for i := 0; i < perWorker; i++ {
						lba := ftl.LBA((w*131 + i*17) % 256)
						if _, err := d.ReadPages(pr, lba, 1); err != nil {
							panic(err)
						}
					}
					if e.Now() > lastDone {
						lastDone = e.Now()
					}
				})
			}
		})
		e.Run()
		total := float64(qd * perWorker)
		return total / sim.Duration(lastDone).Seconds() / 1e3
	}
	qds := []int{1, 2, 4, 8, 16, 32}
	// One point per (queue depth, device) cell.
	cells := points(len(qds)*2, func(i int) float64 {
		mk := DC
		if i%2 == 1 {
			mk = ULL
		}
		return run(mk, qds[i/2])
	})
	for qi, qd := range qds {
		t.AddRow(fmt.Sprintf("%d", qd), cells[2*qi], cells[2*qi+1])
	}
	return t
}
