package bench

import (
	"runtime"
	"sync"
)

// The parallel experiment runner. Every experiment data point builds
// its own sim.Env, so independent points can run on independent host
// cores — the harness exploits the machine's parallelism the way the
// modeled device exploits its channels. Points are indexed, results
// land in index order, and each point's virtual-time arithmetic is
// untouched by where or when it runs, so tables and merged metrics are
// bit-identical to a sequential run (see determinism_test.go).
//
// One package-wide semaphore gates every point, including points of
// experiments that cmd/bench2b runs concurrently, so the process never
// oversubscribes the host no matter how the work is nested.

var (
	jobsMu sync.Mutex
	jobsN  = runtime.NumCPU()
	sem    = make(chan struct{}, runtime.NumCPU())
)

// SetJobs sets the number of experiment points allowed to run
// concurrently (minimum 1). It must not be called while experiments are
// running: slots checked out of the previous semaphore would never
// return to the new one.
func SetJobs(n int) {
	if n < 1 {
		n = 1
	}
	jobsMu.Lock()
	defer jobsMu.Unlock()
	jobsN = n
	sem = make(chan struct{}, n)
}

// Jobs reports the current parallelism degree.
func Jobs() int {
	jobsMu.Lock()
	defer jobsMu.Unlock()
	return jobsN
}

// points computes fn(0..n-1) and returns the results in index order.
// With Jobs() == 1 it runs strictly sequentially on the calling
// goroutine — the exact legacy execution order. Otherwise each point
// runs on its own goroutine gated by the package semaphore; a panicking
// point re-panics on the caller after every worker has finished.
//
// When PartitionShards() > 1 the semaphore executor is replaced by the
// partitioned schedule: every point is an independent simulation
// instance (infinite lookahead), so the sim.Group window plan
// degenerates to static round-robin shard assignment — point i runs on
// shard i mod shards, each shard a single goroutine draining its
// points in order. Results land by index either way, so tables are
// identical at any shard count.
func points[T any](n int, fn func(i int) T) []T {
	if sh := PartitionShards(); sh > 1 && n > 1 {
		return pointsSharded(n, sh, fn)
	}
	out := make([]T, n)
	jobsMu.Lock()
	j, s := jobsN, sem
	jobsMu.Unlock()
	if j <= 1 || n <= 1 {
		for i := range out {
			out[i] = fn(i)
		}
		return out
	}
	var (
		wg    sync.WaitGroup
		pmu   sync.Mutex
		pval  interface{}
		pseen bool
	)
	for i := range out {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			s <- struct{}{}
			defer func() { <-s }()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if !pseen {
						pseen, pval = true, r
					}
					pmu.Unlock()
				}
			}()
			out[i] = fn(i)
		}()
	}
	wg.Wait()
	if pseen {
		panic(pval)
	}
	return out
}

// pointsSharded runs n points on sh shard goroutines with static
// round-robin assignment, mirroring sim.Group's worker-to-partition
// mapping. It bypasses the -j semaphore: under -pshards the shard
// count IS the parallelism budget for multi-instance experiments.
func pointsSharded[T any](n, sh int, fn func(i int) T) []T {
	out := make([]T, n)
	if sh > n {
		sh = n
	}
	var (
		wg    sync.WaitGroup
		pmu   sync.Mutex
		pval  interface{}
		pseen bool
	)
	wg.Add(sh)
	for k := 0; k < sh; k++ {
		k := k
		go func() {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					pmu.Lock()
					if !pseen {
						pseen, pval = true, r
					}
					pmu.Unlock()
				}
			}()
			for i := k; i < n; i += sh {
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	if pseen {
		panic(pval)
	}
	return out
}
