package bench

import (
	"bytes"
	"io"
	"testing"

	"twobssd/internal/obs"
)

// quickExperiments lists every bench2b experiment at Quick scale, in
// bench2b's print order. Kept in sync with cmd/bench2b by the ids.
func quickExperiments() []struct {
	id  string
	run func(io.Writer)
} {
	s := Quick
	return []struct {
		id  string
		run func(io.Writer)
	}{
		{"tab1", func(w io.Writer) { Spec().Print(w) }},
		{"fig7a", func(w io.Writer) { Fig7a(s).Print(w) }},
		{"fig7b", func(w io.Writer) { Fig7b(s).Print(w) }},
		{"fig8a", func(w io.Writer) { Fig8a(s).Print(w) }},
		{"fig8b", func(w io.Writer) { Fig8b(s).Print(w) }},
		{"fig9", func(w io.Writer) {
			Fig9PG(s).Print(w)
			Fig9LSM(s).Print(w)
			Fig9AOF(s).Print(w)
		}},
		{"fig10", func(w io.Writer) { Fig10(s).Print(w) }},
		{"commit", func(w io.Writer) { CommitOverhead(s).Print(w) }},
		{"waf", func(w io.Writer) { WAFReduction(s).Print(w) }},
		{"mixed", func(w io.Writer) { MixedWorkload(s).Print(w) }},
		{"recovery", func(w io.Writer) { Recovery(s).Print(w) }},
		{"tail", func(w io.Writer) { TailLatency(s).Print(w) }},
		{"smallread", func(w io.Writer) { SmallRead(s).Print(w) }},
		{"pmr", func(w io.Writer) { PMRComparison(s).Print(w) }},
		{"journal", func(w io.Writer) { Journaling(s).Print(w) }},
		{"qd", func(w io.Writer) { QueueDepth(s).Print(w) }},
		{"pfleet", func(w io.Writer) { PartitionedFleet(s).Print(w) }},
		{"probe", func(w io.Writer) { Probe(s).Print(w) }},
		{"ablations", func(w io.Writer) {
			AblationWriteCombining(s).Print(w)
			AblationDoubleBuffering(s).Print(w)
			AblationGroupCommit(s).Print(w)
		}},
	}
}

// TestExperimentsDeterministic runs every experiment twice and demands
// byte-identical table output. This is the guard that lets the sim
// kernel and the parallel runner be optimised freely: any scheduling
// or ordering leak into virtual-time results fails here.
func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short")
	}
	for _, ex := range quickExperiments() {
		ex := ex
		t.Run(ex.id, func(t *testing.T) {
			var a, b bytes.Buffer
			ex.run(&a)
			ex.run(&b)
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Fatalf("two runs of %s differ:\n--- run 1 ---\n%s--- run 2 ---\n%s",
					ex.id, a.String(), b.String())
			}
		})
	}
}

// TestJobsInvariance runs the whole experiment suite at -j 1 (strictly
// sequential, the legacy execution order) and at -j 8 and demands
// byte-identical tables AND an identical merged metrics snapshot AND an
// identical merged metric timeline. Worker parallelism must be
// invisible in every result, sampled series included.
func TestJobsInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment sweep; skipped with -short")
	}
	sweep := func(jobs int) (tables, metrics, timeline []byte) {
		old := Jobs()
		SetJobs(jobs)
		defer SetJobs(old)
		col := obs.NewCollector(false)
		col.EnableSampling(0, 0)
		col.Install()
		defer col.Uninstall()
		var out bytes.Buffer
		for _, ex := range quickExperiments() {
			ex.run(&out)
		}
		var m, tl bytes.Buffer
		if err := col.WriteMetricsJSON(&m); err != nil {
			t.Fatalf("jobs=%d: metrics snapshot: %v", jobs, err)
		}
		if err := col.WriteTimelineJSON(&tl); err != nil {
			t.Fatalf("jobs=%d: timeline: %v", jobs, err)
		}
		return out.Bytes(), m.Bytes(), tl.Bytes()
	}
	t1, m1, tl1 := sweep(1)
	t8, m8, tl8 := sweep(8)
	if !bytes.Equal(t1, t8) {
		t.Errorf("table output differs between -j 1 and -j 8")
	}
	if !bytes.Equal(m1, m8) {
		t.Errorf("merged metrics snapshot differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", m1, m8)
	}
	if !bytes.Equal(tl1, tl8) {
		t.Errorf("merged timeline differs between -j 1 and -j 8 (j1 %d bytes, j8 %d bytes)", len(tl1), len(tl8))
	}
	if len(tl1) < 100 {
		t.Errorf("merged timeline is empty: %s", tl1)
	}
}
