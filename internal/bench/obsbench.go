// The observability-overhead microbenchmark behind `bench2b -obsbench`:
// the same fixed dual-path workload run under four configurations —
// bare, sampler on, flight recorder on, both — measuring wall time,
// events/sec and allocs/event for each, so the cost of leaving the
// timeline sampler or the flight recorder on is a recorded number
// (BENCH_obs.json), not an assumption. The companion guarantee (the
// disabled sampler adds zero steady-state allocations) is asserted in
// internal/obs's tests.
package bench

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"twobssd/internal/obs"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
)

// ObsBenchResult is one configuration's measured cost.
type ObsBenchResult struct {
	Name           string  `json:"name"`
	Sampler        bool    `json:"sampler"`
	Flight         bool    `json:"flight"`
	WallNs         int64   `json:"wall_ns"`
	VirtualNs      int64   `json:"virtual_ns"`
	Events         uint64  `json:"events"`
	EventsPerSec   float64 `json:"events_per_sec"`
	AllocsPerEvent float64 `json:"allocs_per_event"`
	TimelinePoints int     `json:"timeline_points"`
	FlightEvents   int     `json:"flight_events"`
}

// ObsReport is the `bench2b -obsbench` record, the BENCH_kernel.json
// sibling for the observability layer.
type ObsReport struct {
	Schema    string           `json:"schema"`
	GoVersion string           `json:"go_version"`
	NumCPU    int              `json:"num_cpu"`
	Ops       int              `json:"ops"`
	Results   []ObsBenchResult `json:"results"`
}

// obsBenchWorkload drives one environment through a mixed block + BA
// workload sized by ops — the same shape as the observability probe,
// but tight enough to make per-event overhead visible.
func obsBenchWorkload(env *sim.Env, ops int) {
	ssd := SSD2B(env)
	fs := vfs.New(ssd.Device())
	ps := ssd.PageSize()
	env.Go("obsbench", func(p *sim.Proc) {
		f, err := fs.Create("obs.dat", int64(64*ps))
		if err != nil {
			panic(err)
		}
		pin, err := fs.Create("obs.pin", int64(8*ps))
		if err != nil {
			panic(err)
		}
		if err := ssd.BAPin(p, 0, 0, pin.LBA(0), 8); err != nil {
			panic(err)
		}
		page := make([]byte, ps)
		small := make([]byte, 256)
		for i := 0; i < ops; i++ {
			page[0] = byte(i)
			if err := f.WriteAt(p, int64((i%64)*ps), page); err != nil {
				panic(err)
			}
			if err := f.ReadAt(p, int64((i%64)*ps), page); err != nil {
				panic(err)
			}
			small[0] = byte(i)
			if err := ssd.Mmio().Write(p, (i%8)*ps, small); err != nil {
				panic(err)
			}
			if i%16 == 15 {
				if err := ssd.BASync(p, 0); err != nil {
					panic(err)
				}
			}
		}
		if err := ssd.Device().Flush(p); err != nil {
			panic(err)
		}
	})
	env.Run()
}

// ObsOverhead runs the four-configuration overhead sweep. Virtual-time
// results are identical across configurations by construction (the
// sampler and recorder only observe); wall-clock numbers measure what
// observation costs.
func ObsOverhead(s Scale) *ObsReport {
	ops := int(s.AppOps)
	if ops < 500 {
		ops = 500
	}
	rep := &ObsReport{
		Schema:    "bench2b/obs-v1",
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Ops:       ops,
	}
	configs := []struct {
		name            string
		sampler, flight bool
	}{
		{"off", false, false},
		{"sampler", true, false},
		{"flight", false, true},
		{"sampler+flight", true, true},
	}
	for _, cfg := range configs {
		env := sim.NewEnv()
		set := obs.Of(env)
		var sm *obs.Sampler
		if cfg.sampler {
			sm = set.StartSampler(100*sim.Microsecond, 0)
		}
		if cfg.flight {
			set.EnableFlightRecorder(0)
		}
		runtime.GC()
		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		t0 := time.Now()
		obsBenchWorkload(env, ops)
		wall := time.Since(t0)
		runtime.ReadMemStats(&ms1)

		r := ObsBenchResult{
			Name:      cfg.name,
			Sampler:   cfg.sampler,
			Flight:    cfg.flight,
			WallNs:    wall.Nanoseconds(),
			VirtualNs: int64(env.Now()),
			Events:    env.Events(),
		}
		if r.Events > 0 {
			r.EventsPerSec = float64(r.Events) / wall.Seconds()
			r.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(r.Events)
		}
		if sm != nil {
			r.TimelinePoints = len(sm.Timeline().Points)
		}
		if tr := set.Tracer(); tr.Ring() {
			r.FlightEvents = len(tr.Events())
		}
		env.Shutdown() // next config starts from a cold environment
		rep.Results = append(rep.Results, r)
	}
	return rep
}

// WriteText renders the sweep as a table. Wall-clock columns vary run
// to run; the virtual time and event count must not.
func (r *ObsReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== obs overhead: %d ops per config ==\n", r.Ops); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-16s %12s %12s %14s %12s %8s %8s\n",
		"config", "events", "virtual_ms", "events/sec", "allocs/ev", "points", "flight"); err != nil {
		return err
	}
	for _, res := range r.Results {
		if _, err := fmt.Fprintf(w, "%-16s %12d %12.2f %14.0f %12.3f %8d %8d\n",
			res.Name, res.Events, float64(res.VirtualNs)/1e6,
			res.EventsPerSec, res.AllocsPerEvent,
			res.TimelinePoints, res.FlightEvents); err != nil {
			return err
		}
	}
	return nil
}
