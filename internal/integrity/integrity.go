// Package integrity defines the end-to-end per-page integrity tag of
// the simulated 2B-SSD stack: a CRC computed over a page's contents at
// the host boundary (device.WritePages for the block path, BA_FLUSH and
// the recovery dump for the byte path) and carried out of band through
// ftl and nand so every read path — block reads, BA_PIN's internal
// datapath, the post-crash restore and the background scrubber — can
// verify that no layer in between silently corrupted the page.
//
// The tag is opaque to ftl and nand (they only carry it next to the
// page, the way real NAND carries host metadata in the page's spare
// area); only the layers that own the host boundary compute and check
// it, all through this package so both datapaths agree on the scheme.
package integrity

import (
	"errors"
	"fmt"
	"hash/crc32"
)

// ErrPageCorrupt reports a page whose stored CRC tag no longer matches
// its contents. Wrapped with location context by every verification
// site; match with errors.Is(err, integrity.ErrPageCorrupt).
var ErrPageCorrupt = errors.New("integrity: page CRC mismatch")

// castagnoli is the CRC-32C polynomial — the checksum real storage
// stacks (NVMe end-to-end protection, ext4 metadata_csum, Btrfs) use,
// with hardware support on every modern CPU.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// PageCRC computes the integrity tag of one page image.
func PageCRC(data []byte) uint32 {
	return crc32.Checksum(data, castagnoli)
}

// Check verifies data against the tag recorded when the page crossed
// the host boundary. The returned error wraps ErrPageCorrupt.
func Check(data []byte, tag uint32) error {
	if got := PageCRC(data); got != tag {
		return fmt.Errorf("%w: tag %08x, contents %08x", ErrPageCorrupt, tag, got)
	}
	return nil
}
