package integrity

import (
	"errors"
	"testing"
)

func TestPageCRCDetectsBitFlip(t *testing.T) {
	page := make([]byte, 4096)
	for i := range page {
		page[i] = byte(i * 7)
	}
	tag := PageCRC(page)
	if err := Check(page, tag); err != nil {
		t.Fatalf("clean page failed check: %v", err)
	}
	page[1000] ^= 0x01
	err := Check(page, tag)
	if err == nil {
		t.Fatal("single bit flip not detected")
	}
	if !errors.Is(err, ErrPageCorrupt) {
		t.Fatalf("error %v does not wrap ErrPageCorrupt", err)
	}
}

func TestPageCRCIsContentOnly(t *testing.T) {
	a := []byte{1, 2, 3}
	b := []byte{1, 2, 3}
	if PageCRC(a) != PageCRC(b) {
		t.Fatal("identical contents produced different tags")
	}
	if PageCRC([]byte{1, 2, 3}) == PageCRC([]byte{3, 2, 1}) {
		t.Fatal("reordered contents produced the same tag")
	}
}
