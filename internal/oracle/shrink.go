package oracle

import "twobssd/internal/obs"

// Shrink minimizes a diverging trace. The strategy mirrors the fault
// campaign's threshold bisection, then goes further:
//
//  1. truncate — ops after the diverging index cannot matter;
//  2. prefix bisection — find the shortest prefix that still diverges
//     (O(log n) replays for divergences triggered by a single op);
//  3. ddmin-style chunk removal — repeatedly try deleting chunks from
//     the middle of the trace, halving the chunk size whenever a full
//     sweep removes nothing, until chunks of one op survive.
//
// Every candidate replays on a fresh environment with the same seed,
// so the fault schedule is identical and results are deterministic.
// Shrink stops early when the replay budget is exhausted and returns
// the best (shortest) diverging trace found so far.
type ShrinkReport struct {
	Ops        []Op // minimal diverging trace
	Divergence *Divergence
	Replays    int // replays spent
	// Flight is the flight-recorder dump of the best (shortest)
	// diverging replay found.
	Flight *obs.FlightDump
}

// MaxShrinkReplays bounds the shrink search per divergence.
const MaxShrinkReplays = 200

// Shrink reduces ops (a trace known to diverge for seed/cfg) to a
// minimal diverging subsequence.
func Shrink(seed uint64, cfg Config, ops []Op) ShrinkReport {
	rep := ShrinkReport{Ops: ops}
	diverges := func(cand []Op) *Divergence {
		if rep.Replays >= MaxShrinkReplays {
			return nil
		}
		rep.Replays++
		res := Replay(seed, cfg, cand)
		if res.Divergence != nil {
			rep.Flight = res.Flight
		}
		return res.Divergence
	}

	// Confirm, and truncate to the diverging op: nothing after it ran.
	d := diverges(ops)
	if d == nil {
		rep.Divergence = nil
		return rep
	}
	rep.Divergence = d
	if d.OpIndex >= 0 && d.OpIndex+1 < len(ops) {
		ops = ops[:d.OpIndex+1]
		rep.Ops = ops
	}

	// Prefix bisection (the fault campaign's threshold search): the
	// shortest prefix that still diverges. Note a shorter prefix can
	// fail to diverge even though the full one does (the divergence may
	// need earlier state), so keep the best confirmed length.
	lo, hi := 1, len(ops)
	for lo < hi {
		mid := (lo + hi) / 2
		if d := diverges(ops[:mid]); d != nil {
			rep.Divergence = d
			hi = mid
			cut := mid
			if d.OpIndex >= 0 && d.OpIndex+1 < cut {
				cut = d.OpIndex + 1 // truncate inside the prefix too
			}
			ops = ops[:cut]
			if hi > cut {
				hi = cut
			}
			rep.Ops = ops
		} else {
			lo = mid + 1
		}
	}

	// ddmin-style chunk removal over what remains: delete interior ops
	// the divergence does not actually depend on.
	chunk := len(ops) / 2
	for chunk >= 1 && rep.Replays < MaxShrinkReplays {
		removed := false
		for start := 0; start+chunk <= len(ops); {
			cand := make([]Op, 0, len(ops)-chunk)
			cand = append(cand, ops[:start]...)
			cand = append(cand, ops[start+chunk:]...)
			if len(cand) == 0 {
				start += chunk
				continue
			}
			if d := diverges(cand); d != nil {
				ops = cand
				rep.Ops = ops
				rep.Divergence = d
				removed = true
				// do not advance start: the next chunk slid into place
			} else {
				start += chunk
			}
		}
		if !removed {
			chunk /= 2
		} else if chunk > len(ops) {
			chunk = len(ops)
		}
	}
	return rep
}
