package oracle

import (
	"strings"
	"testing"
)

// TestFuzzCleanSeeds is the oracle's main claim: the reference model
// and the real stack agree, op for op and state for state, across a
// batch of randomized dual-path workloads (including power cycles with
// both persisted and deliberately torn dumps).
func TestFuzzCleanSeeds(t *testing.T) {
	seeds := 24
	if testing.Short() {
		seeds = 8
	}
	var repairs, retries uint64
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		res := Run(seed, Config{})
		if res.Divergence != nil {
			t.Fatalf("seed %d diverged: %v", seed, res.Divergence)
		}
		if res.Ops == 0 {
			t.Fatalf("seed %d executed no ops", seed)
		}
		repairs += res.ScrubRepairs
		retries += res.EccRetries
	}
	// The fuzz fault plan pushes the BER just past the ECC budget, so
	// retries (and hence scrub repair work) must actually occur — a
	// zero here means the oracle is fuzzing a fault-free stack.
	if retries == 0 {
		t.Error("no ECC retries across all seeds; fuzz BER plan not biting")
	}
	if repairs == 0 {
		t.Error("no scrub repairs across all seeds; scrub path not exercised")
	}
}

// TestFuzzDeterministic replays one seed twice and demands bit-equal
// results: same op count, same counters, same (absence of) divergence.
func TestFuzzDeterministic(t *testing.T) {
	a := Run(3, Config{})
	b := Run(3, Config{})
	if a.Ops != b.Ops || a.ScrubRepairs != b.ScrubRepairs || a.EccRetries != b.EccRetries {
		t.Fatalf("replay not deterministic: %+v vs %+v", a, b)
	}
	if (a.Divergence == nil) != (b.Divergence == nil) {
		t.Fatalf("divergence not deterministic: %v vs %v", a.Divergence, b.Divergence)
	}
	ops1, ops2 := Generate(9, Config{}), Generate(9, Config{})
	if len(ops1) != len(ops2) {
		t.Fatal("generator not deterministic")
	}
	for i := range ops1 {
		if ops1[i] != ops2[i] {
			t.Fatalf("op %d differs: %v vs %v", i, ops1[i], ops2[i])
		}
	}
}

// TestBuggyCheckerCaughtAndShrunk is the oracle self-test demanded by
// the design: run the reference model with a deliberately miswired
// LBA checker (off-by-one on the pinned range's end) and verify the
// harness (a) detects the divergence and (b) shrinks it to a minimal
// op trace — a handful of ops, necessarily containing a pin.
func TestBuggyCheckerCaughtAndShrunk(t *testing.T) {
	cfg := Config{BuggyChecker: true}
	var seed uint64
	var found *Result
	for seed = 0; seed < 32; seed++ {
		res := Run(seed, cfg)
		if res.Divergence != nil {
			found = &res
			break
		}
	}
	if found == nil {
		t.Fatal("buggy checker never diverged across 32 seeds; oracle is blind")
	}
	rep := Shrink(seed, cfg, Generate(seed, cfg))
	if rep.Divergence == nil {
		t.Fatal("shrink lost the divergence")
	}
	if len(rep.Ops) > 5 {
		t.Fatalf("shrunk trace still %d ops: %v", len(rep.Ops), rep.Ops)
	}
	hasPin := false
	for _, o := range rep.Ops {
		if o.Kind == OpPin {
			hasPin = true
		}
	}
	if !hasPin {
		t.Fatalf("minimal trace %v has no pin; checker bug needs one", rep.Ops)
	}
	// The minimal trace must still reproduce on a fresh replay.
	if again := Replay(seed, cfg, rep.Ops); again.Divergence == nil {
		t.Fatal("minimal trace does not reproduce")
	}
	t.Logf("shrunk to %d ops in %d replays: %v (%v)", len(rep.Ops), rep.Replays, rep.Ops, rep.Divergence)
}

// TestDivergenceStrings keeps the human-facing formats stable enough
// to grep in CI logs.
func TestDivergenceStrings(t *testing.T) {
	d := &Divergence{Seed: 7, OpIndex: 3, Op: "pin eid=1", Detail: "boom"}
	if s := d.String(); !strings.Contains(s, "seed 7") || !strings.Contains(s, "pin") {
		t.Fatalf("divergence string %q", s)
	}
	var nilD *Divergence
	if nilD.String() != "<none>" {
		t.Fatal("nil divergence string")
	}
	if got := (Op{Kind: OpPin, EID: 2, LBA: 5, Pages: 1}).String(); !strings.Contains(got, "pin eid=2") {
		t.Fatalf("op string %q", got)
	}
}
