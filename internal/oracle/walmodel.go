// WalLifecycle is the pure reference model for the segmented WAL's
// lifecycle semantics (internal/wal.Segmented): which records exist,
// which are committed, which checkpoints were issued with which
// snapshot, and — after a crash — whether a claimed recovery outcome
// is even possible. It is driven alongside the real log by the crash
// drivers in internal/bench and consulted during recovery
// verification; it never touches the simulated stack.
//
// The model deliberately checks only "no phantoms, no impossible
// states": a recovered record must be one the driver really appended,
// byte for byte and in LSN order; a recovered checkpoint must be one
// the driver really issued (or zero); a recovered snapshot must be one
// the driver really persisted at a checkpoint at least as new as the
// recovered checkpoint LSN. Completeness — no committed record lost —
// is the campaign's committed-minus-recovered accounting, which has
// the crash timeline the model does not.
package oracle

import "fmt"

// WalRecord is one appended record in the lifecycle model.
type WalRecord struct {
	Key     string
	Payload string
	Start   int64 // LSN where the record begins
	End     int64 // LSN just past the record (the commit target)
}

// WalLifecycle models a segmented WAL stream.
type WalLifecycle struct {
	records   []WalRecord     // in append (= LSN) order
	byEnd     map[int64]int   // End LSN -> index into records
	committed int64           // highest End passed to Commit
	ckpts     map[int64]bool  // checkpoint LSNs issued
	snaps     []lifecycleSnap // snapshots persisted at checkpoints
}

type lifecycleSnap struct {
	ckpt int64
	snap map[string]string
}

// NewWalLifecycle returns an empty lifecycle model.
func NewWalLifecycle() *WalLifecycle {
	return &WalLifecycle{
		byEnd: make(map[int64]int),
		ckpts: map[int64]bool{0: true},
	}
}

// Append records a log append at [start, end).
func (m *WalLifecycle) Append(key, payload string, start, end int64) {
	m.byEnd[end] = len(m.records)
	m.records = append(m.records, WalRecord{Key: key, Payload: payload, Start: start, End: end})
}

// Commit records that the stream is durable up to end.
func (m *WalLifecycle) Commit(end int64) {
	if end > m.committed {
		m.committed = end
	}
}

// Checkpoint records that the driver durably persisted snap and then
// checkpointed the log at lsn.
func (m *WalLifecycle) Checkpoint(lsn int64, snap map[string]string) {
	m.ckpts[lsn] = true
	cp := make(map[string]string, len(snap))
	for k, v := range snap {
		cp[k] = v
	}
	m.snaps = append(m.snaps, lifecycleSnap{ckpt: lsn, snap: cp})
}

// Committed returns the highest committed End LSN.
func (m *WalLifecycle) Committed() int64 { return m.committed }

// VerifyRecovery checks a claimed recovery outcome against the model
// and returns a phantom/impossibility description per defect (empty =
// consistent). recoveredCkpt is the checkpoint LSN recovery read back,
// replayed the records it replayed in order, snapshot the driver state
// restored from its snapshot file (nil = driver keeps no snapshot).
func (m *WalLifecycle) VerifyRecovery(recoveredCkpt int64, replayed []WalRecord, snapshot map[string]string) []string {
	var phantoms []string
	if !m.ckpts[recoveredCkpt] {
		phantoms = append(phantoms, fmt.Sprintf("recovered checkpoint %d was never issued", recoveredCkpt))
	}
	prev := recoveredCkpt
	for _, r := range replayed {
		idx, ok := m.byEnd[r.End]
		if !ok {
			phantoms = append(phantoms, fmt.Sprintf("replayed record ending at %d was never appended", r.End))
			continue
		}
		want := m.records[idx]
		if r.Key != want.Key || r.Payload != want.Payload || r.Start != want.Start {
			phantoms = append(phantoms, fmt.Sprintf("replayed record at %d differs from the appended one (key %q vs %q)", r.End, r.Key, want.Key))
		}
		if r.Start < prev {
			phantoms = append(phantoms, fmt.Sprintf("replay not in LSN order: record [%d,%d) after position %d", r.Start, r.End, prev))
		}
		if r.End <= recoveredCkpt {
			phantoms = append(phantoms, fmt.Sprintf("replayed record ending at %d is below the checkpoint %d", r.End, recoveredCkpt))
		}
		prev = r.End
	}
	if snapshot != nil {
		if !m.snapshotPossible(recoveredCkpt, snapshot) {
			phantoms = append(phantoms, "recovered snapshot matches no persisted checkpoint state")
		}
	}
	return phantoms
}

// snapshotPossible reports whether snapshot equals a snapshot the
// driver persisted at a checkpoint >= recoveredCkpt (the snapshot file
// may be newer than the WAL meta page — snapshots are written first —
// but never older, and never a state that was never persisted).
func (m *WalLifecycle) snapshotPossible(recoveredCkpt int64, snapshot map[string]string) bool {
	if len(m.snaps) == 0 {
		return len(snapshot) == 0
	}
	for _, s := range m.snaps {
		if s.ckpt < recoveredCkpt || len(s.snap) != len(snapshot) {
			continue
		}
		same := true
		for k, v := range s.snap {
			if snapshot[k] != v {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	// A fresh snapshot file is only possible while the WAL meta still
	// reads checkpoint zero: snapshots are persisted before the meta
	// page, so a durable checkpoint implies a durable snapshot.
	return recoveredCkpt == 0 && len(snapshot) == 0
}
