package oracle

import (
	"strings"
	"testing"
)

func lifecycleFixture() *WalLifecycle {
	m := NewWalLifecycle()
	m.Append("a", "pay-a", 32, 64)
	m.Append("b", "pay-b", 64, 96)
	m.Commit(96)
	m.Checkpoint(96, map[string]string{"a": "pay-a", "b": "pay-b"})
	m.Append("c", "pay-c", 96, 128)
	m.Commit(128)
	return m
}

func TestWalLifecycleCleanRecovery(t *testing.T) {
	m := lifecycleFixture()
	got := m.VerifyRecovery(96,
		[]WalRecord{{Key: "c", Payload: "pay-c", Start: 96, End: 128}},
		map[string]string{"a": "pay-a", "b": "pay-b"})
	if len(got) != 0 {
		t.Fatalf("clean recovery flagged: %v", got)
	}
	// Recovery to an older durable point (meta write lost) with a fresh
	// snapshot is also possible.
	if got := NewWalLifecycle().VerifyRecovery(0, nil, map[string]string{}); len(got) != 0 {
		t.Fatalf("fresh recovery flagged: %v", got)
	}
}

func TestWalLifecyclePhantoms(t *testing.T) {
	cases := []struct {
		name string
		run  func(m *WalLifecycle) []string
		want string
	}{
		{"unissued checkpoint", func(m *WalLifecycle) []string {
			return m.VerifyRecovery(77, nil, nil)
		}, "never issued"},
		{"phantom record", func(m *WalLifecycle) []string {
			return m.VerifyRecovery(96, []WalRecord{{Key: "z", Payload: "x", Start: 96, End: 200}}, nil)
		}, "never appended"},
		{"corrupt payload", func(m *WalLifecycle) []string {
			return m.VerifyRecovery(96, []WalRecord{{Key: "c", Payload: "WRONG", Start: 96, End: 128}}, nil)
		}, "differs"},
		{"below checkpoint", func(m *WalLifecycle) []string {
			return m.VerifyRecovery(96, []WalRecord{{Key: "b", Payload: "pay-b", Start: 64, End: 96}}, nil)
		}, "below the checkpoint"},
		{"out of order", func(m *WalLifecycle) []string {
			m.Append("d", "pay-d", 128, 160)
			return m.VerifyRecovery(0, []WalRecord{
				{Key: "d", Payload: "pay-d", Start: 128, End: 160},
				{Key: "c", Payload: "pay-c", Start: 96, End: 128},
			}, nil)
		}, "not in LSN order"},
		{"impossible snapshot", func(m *WalLifecycle) []string {
			return m.VerifyRecovery(96, nil, map[string]string{"a": "forged"})
		}, "matches no persisted"},
	}
	for _, tc := range cases {
		got := tc.run(lifecycleFixture())
		found := false
		for _, p := range got {
			if strings.Contains(p, tc.want) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: want phantom containing %q, got %v", tc.name, tc.want, got)
		}
	}
}

func TestWalLifecycleNewerSnapshotAccepted(t *testing.T) {
	// The snapshot file is written before the WAL meta page, so after a
	// crash between the two it is one checkpoint ahead of the meta —
	// that must verify cleanly.
	m := lifecycleFixture()
	m.Append("d", "pay-d", 128, 160)
	m.Commit(160)
	m.Checkpoint(160, map[string]string{"a": "pay-a", "b": "pay-b", "c": "pay-c", "d": "pay-d"})
	got := m.VerifyRecovery(96, nil,
		map[string]string{"a": "pay-a", "b": "pay-b", "c": "pay-c", "d": "pay-d"})
	if len(got) != 0 {
		t.Fatalf("newer snapshot flagged: %v", got)
	}
}
