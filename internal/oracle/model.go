// Package oracle is the model-based differential-testing subsystem for
// the 2B-SSD stack: a small in-memory reference model of the paper's
// dual-path semantics, a seeded deterministic workload generator that
// drives the real simulated stack and the model through interleaved
// byte-path / block-path / pin / flush / power-cut operations, and a
// trace minimizer that shrinks any divergence to a minimal op sequence.
//
// The model is the specification: byte-window writes stage in a finite
// write-combining pool and commit on sync, read, eviction — and are
// lost on power failure; BA_PIN loads committed NAND content and gates
// the range against block I/O; BA_FLUSH moves the committed BA-buffer
// view back to the block space; the recovery dump is all-or-nothing.
// Any behavioural difference between the stack and this model is a bug
// in one of them, and either way worth a minimal reproducer.
package oracle

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/ftl"
	"twobssd/internal/pcie"
)

// ModelConfig is the slice of the stack configuration the reference
// model needs: geometry and the write-combining pool shape.
type ModelConfig struct {
	PageSize       int
	BufBytes       int    // BA-buffer capacity
	MaxEntries     int    // mapping-table size
	Pages          uint64 // exported block capacity in pages
	WCBurstBytes   int
	WCBufferBursts int
}

type mburst struct {
	off  int
	data []byte
}

type mdump struct {
	babuf []byte
	table []*core.Entry
}

// Model is the in-memory reference implementation of 2B-SSD semantics.
// All operations are instantaneous (the model specifies content and
// error behaviour, not timing).
type Model struct {
	cfg     ModelConfig
	powered bool
	babuf   []byte   // device-side committed view
	pending []mburst // WC-staged bursts, oldest first (volatile)
	table   []*core.Entry
	blocks  map[uint64][]byte // committed block content; absent = zeros
	dump    *mdump            // non-nil = a valid recovery image exists

	// BuggyChecker miswires the LBA-checker overlap comparison by one
	// page (an abutting range is treated as pinned). It exists for the
	// oracle's self-test: a deliberately wrong model must diverge from
	// the correct stack, be caught, and shrink to a tiny trace —
	// proving the harness would catch the mirror-image stack bug.
	BuggyChecker bool
}

// NewModel builds a powered-on model with an empty buffer and table.
func NewModel(cfg ModelConfig) *Model {
	return &Model{
		cfg:     cfg,
		powered: true,
		babuf:   make([]byte, cfg.BufBytes),
		table:   make([]*core.Entry, cfg.MaxEntries),
		blocks:  make(map[uint64][]byte),
	}
}

func (m *Model) checkWindow(off, n int) error {
	if off < 0 || n < 0 || off+n > len(m.babuf) {
		return pcie.ErrOutOfWindow
	}
	return nil
}

// MmioWrite mirrors pcie.Window.Write: stage per-burst copies, then
// evict the oldest bursts while the pool overflows.
func (m *Model) MmioWrite(off int, data []byte) error {
	if err := m.checkWindow(off, len(data)); err != nil {
		return err
	}
	if len(data) == 0 {
		return nil
	}
	bs := m.cfg.WCBurstBytes
	firstLine := off / bs
	lastLine := (off + len(data) - 1) / bs
	for line := firstLine; line <= lastLine; line++ {
		lo, hi := line*bs, line*bs+bs
		if lo < off {
			lo = off
		}
		if hi > off+len(data) {
			hi = off + len(data)
		}
		seg := make([]byte, hi-lo)
		copy(seg, data[lo-off:hi-off])
		m.pending = append(m.pending, mburst{off: lo, data: seg})
	}
	for len(m.pending) > m.cfg.WCBufferBursts {
		b := m.pending[0]
		m.pending = m.pending[1:]
		copy(m.babuf[b.off:], b.data)
	}
	return nil
}

func (m *Model) drainPending() {
	for _, b := range m.pending {
		copy(m.babuf[b.off:], b.data)
	}
	m.pending = m.pending[:0]
}

// MmioRead mirrors Window.Read: a load from WC memory drains this
// CPU's staged bursts first, so it sees its own prior stores.
func (m *Model) MmioRead(off, n int) ([]byte, error) {
	if err := m.checkWindow(off, n); err != nil {
		return nil, err
	}
	m.drainPending()
	out := make([]byte, n)
	copy(out, m.babuf[off:off+n])
	return out, nil
}

// MmioSync mirrors Window.Sync (clflush + mfence + write-verify read).
func (m *Model) MmioSync(off, n int) error {
	if err := m.checkWindow(off, n); err != nil {
		return err
	}
	m.drainPending()
	return nil
}

// page returns the committed block content of one logical page.
func (m *Model) page(lba ftl.LBA) []byte {
	if d, ok := m.blocks[uint64(lba)]; ok {
		return d
	}
	return make([]byte, m.cfg.PageSize)
}

// gate mirrors the LBA checker: block I/O overlapping a pinned range is
// rejected.
func (m *Model) gate(lba ftl.LBA, pages int) error {
	for _, e := range m.table {
		if e == nil {
			continue
		}
		end := e.LBA + ftl.LBA(e.Pages)
		if m.BuggyChecker {
			end++ // off-by-one: the page abutting the pin reads as pinned
		}
		if lba < end && e.LBA < lba+ftl.LBA(pages) {
			return core.ErrPinnedRange
		}
	}
	return nil
}

// Pin mirrors BA_PIN, including its exact error-check precedence:
// power, EID range, entry in use, alignment, buffer range, LBA range,
// overlap with existing mappings. On success the committed block
// content loads into the committed BA-buffer view (staged WC bursts
// are untouched — a later drain overwrites pinned-in bytes, exactly
// like the real window).
func (m *Model) Pin(eid core.EID, off int, lba ftl.LBA, pages int) error {
	if !m.powered {
		return core.ErrPowerIsOff
	}
	if int(eid) < 0 || int(eid) >= len(m.table) {
		return core.ErrBadEID
	}
	if m.table[eid] != nil {
		return core.ErrEntryInUse
	}
	ps := m.cfg.PageSize
	if off%ps != 0 || pages <= 0 {
		return core.ErrUnaligned
	}
	if off+pages*ps > len(m.babuf) {
		return core.ErrOutOfBuffer
	}
	if uint64(lba)+uint64(pages) > m.cfg.Pages {
		return core.ErrOutOfLBA
	}
	for _, e := range m.table {
		if e == nil {
			continue
		}
		bufOverlap := off < e.Offset+e.Pages*ps && e.Offset < off+pages*ps
		lbaOverlap := lba < e.LBA+ftl.LBA(e.Pages) && e.LBA < lba+ftl.LBA(pages)
		if bufOverlap || lbaOverlap {
			return core.ErrOverlap
		}
	}
	for i := 0; i < pages; i++ {
		copy(m.babuf[off+i*ps:off+(i+1)*ps], m.page(lba+ftl.LBA(i)))
	}
	m.table[eid] = &core.Entry{ID: eid, Offset: off, LBA: lba, Pages: pages}
	return nil
}

// Flush mirrors BA_FLUSH: the committed BA-buffer view of the entry
// moves to the block space and the range unpins.
func (m *Model) Flush(eid core.EID) error {
	if !m.powered {
		return core.ErrPowerIsOff
	}
	if int(eid) < 0 || int(eid) >= len(m.table) {
		return core.ErrBadEID
	}
	e := m.table[eid]
	if e == nil {
		return core.ErrNoEntry
	}
	ps := m.cfg.PageSize
	for i := 0; i < e.Pages; i++ {
		pg := make([]byte, ps)
		copy(pg, m.babuf[e.Offset+i*ps:e.Offset+(i+1)*ps])
		m.blocks[uint64(e.LBA)+uint64(i)] = pg
	}
	m.table[eid] = nil
	return nil
}

// BlockWrite mirrors device.WritePages for whole-page writes: the LBA
// checker gates first, then the capacity check. An acknowledged write
// is durable.
func (m *Model) BlockWrite(lba ftl.LBA, data []byte) error {
	ps := m.cfg.PageSize
	pages := len(data) / ps
	if err := m.gate(lba, pages); err != nil {
		return err
	}
	if uint64(lba)+uint64(pages) > m.cfg.Pages {
		return ftl.ErrLBAOutOfRange
	}
	for i := 0; i < pages; i++ {
		pg := make([]byte, ps)
		copy(pg, data[i*ps:(i+1)*ps])
		m.blocks[uint64(lba)+uint64(i)] = pg
	}
	return nil
}

// BlockRead mirrors device.ReadPages: gate first; out-of-range pages
// surface the FTL's range error; unwritten pages read as zeros.
func (m *Model) BlockRead(lba ftl.LBA, pages int) ([]byte, error) {
	if err := m.gate(lba, pages); err != nil {
		return nil, err
	}
	if uint64(lba)+uint64(pages) > m.cfg.Pages {
		return nil, ftl.ErrLBAOutOfRange
	}
	out := make([]byte, pages*m.cfg.PageSize)
	for i := 0; i < pages; i++ {
		copy(out[i*m.cfg.PageSize:], m.page(lba+ftl.LBA(i)))
	}
	return out, nil
}

// ReadDMA mirrors BA_READ_DMA: it reads the committed view of the
// entry (staged WC bursts are NOT visible — the posted-write hazard).
func (m *Model) ReadDMA(eid core.EID, n int) ([]byte, error) {
	if !m.powered {
		return nil, core.ErrPowerIsOff
	}
	if int(eid) < 0 || int(eid) >= len(m.table) {
		return nil, core.ErrBadEID
	}
	e := m.table[eid]
	if e == nil {
		return nil, core.ErrNoEntry
	}
	if max := e.Pages * m.cfg.PageSize; n > max {
		n = max
	}
	out := make([]byte, n)
	copy(out, m.babuf[e.Offset:e.Offset+n])
	return out, nil
}

// PowerCut mirrors PowerLoss. Staged WC bursts are lost (their count
// is returned — the real DumpReport.LostWCBursts must agree). Whether
// the dump image persisted is an input: the model takes the real
// stack's all-or-nothing verdict (torn or energy-starved dumps do not
// persist) and predicts the post-recovery state from it. Committed
// block data always survives — the base device drains its protected
// write buffer before the dump.
func (m *Model) PowerCut(persisted bool) (lostBursts int) {
	lostBursts = len(m.pending)
	m.pending = m.pending[:0]
	m.powered = false
	if persisted {
		d := &mdump{babuf: make([]byte, len(m.babuf)), table: make([]*core.Entry, len(m.table))}
		copy(d.babuf, m.babuf)
		copy(d.table, m.table)
		m.dump = d
	} else {
		m.dump = nil
	}
	return lostBursts
}

// PowerOn mirrors PowerOn: restore the dump image if one persisted,
// else come up with a zeroed buffer and empty table.
func (m *Model) PowerOn() {
	m.powered = true
	if m.dump != nil {
		copy(m.babuf, m.dump.babuf)
		copy(m.table, m.dump.table)
		m.dump = nil
		return
	}
	for i := range m.babuf {
		m.babuf[i] = 0
	}
	for i := range m.table {
		m.table[i] = nil
	}
}

// Entries returns the live mapping entries in EID order.
func (m *Model) Entries() []core.Entry {
	var out []core.Entry
	for _, e := range m.table {
		if e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// diffBytes renders the first difference between two byte slices.
func diffBytes(want, got []byte) string {
	if len(want) != len(got) {
		return fmt.Sprintf("length %d != %d", len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			return fmt.Sprintf("byte %d: got %02x want %02x", i, got[i], want[i])
		}
	}
	return ""
}
