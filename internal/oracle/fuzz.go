package oracle

import (
	"errors"
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/ftl"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// OpKind enumerates the generated operations.
type OpKind int

const (
	OpMmioWrite OpKind = iota
	OpMmioRead
	OpMmioSync
	OpPin
	OpFlush
	OpBlockWrite
	OpBlockRead
	OpReadDMA
	OpPowerCycle
	OpScrub
	OpDrain
)

func (k OpKind) String() string {
	switch k {
	case OpMmioWrite:
		return "mmio_write"
	case OpMmioRead:
		return "mmio_read"
	case OpMmioSync:
		return "mmio_sync"
	case OpPin:
		return "pin"
	case OpFlush:
		return "flush"
	case OpBlockWrite:
		return "block_write"
	case OpBlockRead:
		return "block_read"
	case OpReadDMA:
		return "read_dma"
	case OpPowerCycle:
		return "power_cycle"
	case OpScrub:
		return "scrub"
	case OpDrain:
		return "drain"
	}
	return fmt.Sprintf("op_%d", int(k))
}

// Op is one self-contained generated operation: every parameter is
// concrete, so any subsequence of a trace replays deterministically —
// the property the shrinker depends on.
type Op struct {
	Kind  OpKind
	EID   core.EID
	Off   int     // BA-buffer byte offset (mmio/pin)
	LBA   ftl.LBA // block address (pin / block I/O)
	Pages int     // length in pages (pin / block I/O)
	Len   int     // length in bytes (mmio / dma)
	Seed  uint64  // data-pattern seed for writes
}

func (o Op) String() string {
	switch o.Kind {
	case OpMmioWrite:
		return fmt.Sprintf("mmio_write off=%d len=%d seed=%x", o.Off, o.Len, o.Seed)
	case OpMmioRead, OpMmioSync:
		return fmt.Sprintf("%s off=%d len=%d", o.Kind, o.Off, o.Len)
	case OpPin:
		return fmt.Sprintf("pin eid=%d off=%d lba=%d pages=%d", o.EID, o.Off, o.LBA, o.Pages)
	case OpFlush:
		return fmt.Sprintf("flush eid=%d", o.EID)
	case OpBlockWrite:
		return fmt.Sprintf("block_write lba=%d pages=%d seed=%x", o.LBA, o.Pages, o.Seed)
	case OpBlockRead:
		return fmt.Sprintf("block_read lba=%d pages=%d", o.LBA, o.Pages)
	case OpReadDMA:
		return fmt.Sprintf("read_dma eid=%d len=%d", o.EID, o.Len)
	}
	return o.Kind.String()
}

// Divergence is one observed difference between stack and model.
type Divergence struct {
	Seed    uint64
	OpIndex int    // -1: found by the final-state sweep, not an op
	Op      string // the diverging op (or final-check name)
	Detail  string
}

func (d *Divergence) String() string {
	if d == nil {
		return "<none>"
	}
	return fmt.Sprintf("seed %d op %d (%s): %s", d.Seed, d.OpIndex, d.Op, d.Detail)
}

// Config tunes one fuzz run.
type Config struct {
	Ops     int // generated operations per seed (default 80)
	LBASpan int // logical pages the workload churns (default 96)
	// BuggyChecker runs the reference model with its off-by-one
	// LBA-checker miswiring — the oracle self-test.
	BuggyChecker bool
}

func (c Config) withDefaults() Config {
	if c.Ops <= 0 {
		c.Ops = 80
	}
	if c.LBASpan <= 0 {
		c.LBASpan = 96
	}
	return c
}

// Result is the outcome of one seed.
type Result struct {
	Seed         uint64
	Ops          int // operations executed (including the diverging one)
	Divergence   *Divergence
	ScrubRepairs uint64
	EccRetries   uint64

	// Flight is the flight-recorder dump captured when the seed
	// diverged: the last spans before the diverging op, plus the
	// stack's metrics at that moment.
	Flight *obs.FlightDump
}

// splitmix64 mirrors the fault injector's per-stream PRNG.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// fillPattern writes a deterministic byte pattern derived from seed.
func fillPattern(dst []byte, seed uint64) {
	r := rng{s: seed}
	var w uint64
	for i := range dst {
		if i%8 == 0 {
			w = r.next()
		}
		dst[i] = byte(w >> (8 * (i % 8)))
	}
}

// stackConfig returns the scaled-down 2B-SSD the fuzzer drives: a
// 4-die NAND array and a 64-page BA-buffer — small enough that pins,
// flushes and block I/O collide constantly, which is the point.
func stackConfig() core.Config {
	cfg := core.DefaultConfig()
	cfg.Base.Nand.Channels = 2
	cfg.Base.Nand.DiesPerChannel = 2
	cfg.Base.Nand.BlocksPerDie = 32
	cfg.Base.Nand.PagesPerBlock = 32
	cfg.Base.FTL.OverProvision = 0.2
	cfg.Base.WriteBufferPages = 64
	cfg.Base.DrainWorkers = 4
	cfg.BABufferBytes = 64 * 4096
	return cfg
}

// fuzzPlan returns the per-seed fault plan: a flat BER high enough
// that every NAND read needs exactly one correctable ECC retry (the
// scrubber's repair path runs constantly, uncorrectables never), and
// on some seeds a capacitor cut that tears every recovery dump — the
// model must then predict the all-or-nothing empty restore.
func fuzzPlan(seed uint64) fault.Plan {
	plan := fault.Plan{
		Seed: seed ^ 0x2B55D2B55D2B55D,
		BER: &fault.BERModel{
			Base:         1.28e-3, // lambda ≈ 42 bits > ECC 40 → 1 retry
			ECCBits:      40,
			RetrySteps:   4,
			RetryLatency: 60 * sim.Microsecond,
		},
	}
	if seed%5 == 3 {
		plan.CutDumpAfterPages = 1 + int(seed%40)
	}
	return plan
}

// Generate derives the deterministic op trace for one seed.
func Generate(seed uint64, cfg Config) []Op {
	cfg = cfg.withDefaults()
	sc := stackConfig()
	ps := sc.Base.Nand.PageSize
	bufPages := sc.BABufferBytes / ps
	r := rng{s: seed*0x9E3779B97F4A7C15 + 1}
	ops := make([]Op, 0, cfg.Ops)
	for i := 0; i < cfg.Ops; i++ {
		var o Op
		switch w := r.intn(100); {
		case w < 20: // mmio write
			o = Op{Kind: OpMmioWrite, Off: r.intn(sc.BABufferBytes), Len: 1 + r.intn(700), Seed: r.next()}
			if o.Off+o.Len > sc.BABufferBytes && r.intn(4) != 0 {
				o.Len = sc.BABufferBytes - o.Off // mostly in range; sometimes out-of-window
			}
		case w < 28: // mmio read
			o = Op{Kind: OpMmioRead, Off: r.intn(sc.BABufferBytes), Len: 1 + r.intn(700)}
			if o.Off+o.Len > sc.BABufferBytes && r.intn(4) != 0 {
				o.Len = sc.BABufferBytes - o.Off
			}
		case w < 36: // mmio sync
			o = Op{Kind: OpMmioSync, Off: 0, Len: sc.BABufferBytes}
		case w < 48: // pin
			o = Op{
				Kind:  OpPin,
				EID:   core.EID(r.intn(sc.MaxEntries + 1)), // +1: sometimes a bad EID
				Off:   r.intn(bufPages) * ps,
				LBA:   ftl.LBA(r.intn(cfg.LBASpan)),
				Pages: 1 + r.intn(4),
			}
			if r.intn(10) == 0 {
				o.Off++ // unaligned
			}
			if r.intn(16) == 0 {
				o.Off = sc.BABufferBytes // out of buffer
			}
		case w < 60: // flush
			o = Op{Kind: OpFlush, EID: core.EID(r.intn(sc.MaxEntries + 1))}
		case w < 75: // block write
			o = Op{Kind: OpBlockWrite, LBA: ftl.LBA(r.intn(cfg.LBASpan)), Pages: 1 + r.intn(4), Seed: r.next()}
		case w < 87: // block read
			o = Op{Kind: OpBlockRead, LBA: ftl.LBA(r.intn(cfg.LBASpan)), Pages: 1 + r.intn(4)}
		case w < 92: // read dma
			o = Op{Kind: OpReadDMA, EID: core.EID(r.intn(sc.MaxEntries)), Len: 1 + r.intn(4*ps)}
		case w < 95:
			o = Op{Kind: OpPowerCycle}
		case w < 98:
			o = Op{Kind: OpScrub}
		default:
			o = Op{Kind: OpDrain}
		}
		ops = append(ops, o)
	}
	return ops
}

// Run generates the trace for one seed and replays it against a fresh
// stack + model, returning the first divergence (if any) plus fault
// and scrub counters.
func Run(seed uint64, cfg Config) Result {
	cfg = cfg.withDefaults()
	return Replay(seed, cfg, Generate(seed, cfg))
}

// Replay executes an explicit op sequence for a seed on a fresh sim
// Env, stack and model — the entry point the shrinker re-invokes with
// candidate subsequences.
func Replay(seed uint64, cfg Config, ops []Op) Result {
	cfg = cfg.withDefaults()
	env := sim.NewEnv()
	in := fault.Install(env, fuzzPlan(seed))
	set := obs.Of(env)
	set.EnableFlightRecorder(0)
	sc := stackConfig()
	s := core.New(env, sc)
	m := NewModel(ModelConfig{
		PageSize:       s.PageSize(),
		BufBytes:       sc.BABufferBytes,
		MaxEntries:     sc.MaxEntries,
		Pages:          s.Device().Pages(),
		WCBurstBytes:   sc.MMIO.WCBurstBytes,
		WCBufferBursts: sc.MMIO.WCBufferBursts,
	})
	m.BuggyChecker = cfg.BuggyChecker

	res := Result{Seed: seed}
	env.Go("oracle.fuzz", func(p *sim.Proc) {
		for i, o := range ops {
			res.Ops = i + 1
			if d := execOp(p, s, m, o); d != nil {
				d.Seed, d.OpIndex, d.Op = seed, i, o.String()
				res.Divergence = d
				return
			}
		}
		if d := finalCheck(p, s, m, cfg); d != nil {
			d.Seed, d.OpIndex = seed, -1
			res.Divergence = d
		}
	})
	env.Run()
	_ = in
	res.ScrubRepairs = s.ScrubStats().Repaired
	res.EccRetries = set.Registry().Counter("fault.ecc_retries").Value()
	if res.Divergence != nil {
		d := set.FlightDump("oracle divergence: " + res.Divergence.String())
		res.Flight = &d
	}
	return res
}

// wantErr verifies the real error against the model's sentinel.
func wantErr(real, want error) *Divergence {
	switch {
	case want == nil && real == nil:
		return nil
	case want == nil:
		return &Divergence{Detail: fmt.Sprintf("stack errored, model did not: %v", real)}
	case real == nil:
		return &Divergence{Detail: fmt.Sprintf("model predicts %v, stack succeeded", want)}
	case !errors.Is(real, want):
		return &Divergence{Detail: fmt.Sprintf("error class mismatch: stack %v, model %v", real, want)}
	}
	return nil
}

// execOp runs one operation on both stack and model and compares.
func execOp(p *sim.Proc, s *core.TwoBSSD, m *Model, o Op) *Divergence {
	switch o.Kind {
	case OpMmioWrite:
		data := make([]byte, o.Len)
		fillPattern(data, o.Seed)
		return wantErr(s.Mmio().Write(p, o.Off, data), m.MmioWrite(o.Off, data))
	case OpMmioRead:
		buf := make([]byte, o.Len)
		rerr := s.Mmio().Read(p, o.Off, buf)
		want, werr := m.MmioRead(o.Off, o.Len)
		if d := wantErr(rerr, werr); d != nil {
			return d
		}
		if werr == nil {
			if diff := diffBytes(want, buf); diff != "" {
				return &Divergence{Detail: "mmio read content: " + diff}
			}
		}
		return nil
	case OpMmioSync:
		return wantErr(s.Mmio().Sync(p, o.Off, o.Len), m.MmioSync(o.Off, o.Len))
	case OpPin:
		return wantErr(s.BAPin(p, o.EID, o.Off, o.LBA, o.Pages), m.Pin(o.EID, o.Off, o.LBA, o.Pages))
	case OpFlush:
		return wantErr(s.BAFlush(p, o.EID), m.Flush(o.EID))
	case OpBlockWrite:
		data := make([]byte, o.Pages*s.PageSize())
		fillPattern(data, o.Seed)
		return wantErr(s.Device().WritePages(p, o.LBA, data), m.BlockWrite(o.LBA, data))
	case OpBlockRead:
		got, rerr := s.Device().ReadPages(p, o.LBA, o.Pages)
		want, werr := m.BlockRead(o.LBA, o.Pages)
		if d := wantErr(rerr, werr); d != nil {
			return d
		}
		if werr == nil {
			if diff := diffBytes(want, got); diff != "" {
				return &Divergence{Detail: "block read content: " + diff}
			}
		}
		return nil
	case OpReadDMA:
		dst := make([]byte, o.Len)
		n, rerr := s.BAReadDMA(p, o.EID, dst)
		want, werr := m.ReadDMA(o.EID, o.Len)
		if d := wantErr(rerr, werr); d != nil {
			return d
		}
		if werr == nil {
			if n != len(want) {
				return &Divergence{Detail: fmt.Sprintf("dma length: stack %d, model %d", n, len(want))}
			}
			if diff := diffBytes(want, dst[:n]); diff != "" {
				return &Divergence{Detail: "dma content: " + diff}
			}
		}
		return nil
	case OpPowerCycle:
		return powerCycle(p, s, m)
	case OpScrub:
		// Patrol reads must be content-neutral: the model does nothing.
		if err := s.ScrubPass(p); err != nil {
			return &Divergence{Detail: fmt.Sprintf("scrub pass failed: %v", err)}
		}
		return nil
	case OpDrain:
		if err := s.Device().Drain(p); err != nil {
			return &Divergence{Detail: fmt.Sprintf("drain failed: %v", err)}
		}
		return nil
	}
	return &Divergence{Detail: "unknown op kind"}
}

// powerCycle cuts power and brings the device back, feeding the real
// stack's persisted verdict into the model (torn dumps are a planned
// fault on some seeds; the model's job is predicting the consequences,
// not the capacitor physics).
func powerCycle(p *sim.Proc, s *core.TwoBSSD, m *Model) *Divergence {
	rep, lerr := s.PowerLoss(p)
	if lerr != nil && !errors.Is(lerr, core.ErrDumpTorn) && !errors.Is(lerr, core.ErrInsufficient) {
		return &Divergence{Detail: fmt.Sprintf("power loss failed: %v", lerr)}
	}
	if (lerr == nil) != rep.Persisted {
		return &Divergence{Detail: fmt.Sprintf("dump report inconsistent: persisted=%v err=%v", rep.Persisted, lerr)}
	}
	lost := m.PowerCut(rep.Persisted)
	if lost != rep.LostWCBursts {
		return &Divergence{Detail: fmt.Sprintf("lost WC bursts: stack %d, model %d", rep.LostWCBursts, lost)}
	}
	if err := s.PowerOn(p); err != nil {
		return &Divergence{Detail: fmt.Sprintf("power on failed: %v", err)}
	}
	m.PowerOn()
	return compareEntries(s, m, "post-recovery")
}

// compareEntries checks the live mapping tables agree.
func compareEntries(s *core.TwoBSSD, m *Model, when string) *Divergence {
	se, me := s.Entries(), m.Entries()
	if len(se) != len(me) {
		return &Divergence{Op: when + " entries", Detail: fmt.Sprintf("stack has %d entries, model %d", len(se), len(me))}
	}
	for i := range se {
		if se[i] != me[i] {
			return &Divergence{Op: when + " entries", Detail: fmt.Sprintf("entry %d: stack %+v, model %+v", i, se[i], me[i])}
		}
	}
	return nil
}

// finalCheck sweeps the full observable state — committed BA-buffer,
// mapping table, per-entry DMA, every block page in the span — then
// power-cycles once more and sweeps again, verifying the complete
// post-recovery state against the model.
func finalCheck(p *sim.Proc, s *core.TwoBSSD, m *Model, cfg Config) *Divergence {
	sweep := func(when string) *Divergence {
		if d := compareEntries(s, m, when); d != nil {
			return d
		}
		buf := make([]byte, m.cfg.BufBytes)
		rerr := s.Mmio().Read(p, 0, buf)
		want, werr := m.MmioRead(0, m.cfg.BufBytes)
		if rerr != nil || werr != nil {
			return &Divergence{Op: when + " buffer", Detail: fmt.Sprintf("buffer read: stack %v, model %v", rerr, werr)}
		}
		if diff := diffBytes(want, buf); diff != "" {
			return &Divergence{Op: when + " buffer", Detail: diff}
		}
		for _, e := range m.Entries() {
			dst := make([]byte, e.Pages*m.cfg.PageSize)
			n, rerr := s.BAReadDMA(p, e.ID, dst)
			wantD, werr := m.ReadDMA(e.ID, len(dst))
			if rerr != nil || werr != nil || n != len(wantD) {
				return &Divergence{Op: when + " dma", Detail: fmt.Sprintf("eid %d: stack n=%d err=%v, model n=%d err=%v", e.ID, n, rerr, len(wantD), werr)}
			}
			if diff := diffBytes(wantD, dst[:n]); diff != "" {
				return &Divergence{Op: when + " dma", Detail: fmt.Sprintf("eid %d: %s", e.ID, diff)}
			}
		}
		for lba := 0; lba < cfg.LBASpan; lba++ {
			got, rerr := s.Device().ReadPages(p, ftl.LBA(lba), 1)
			want, werr := m.BlockRead(ftl.LBA(lba), 1)
			if d := wantErr(rerr, werr); d != nil {
				d.Op = fmt.Sprintf("%s block lba=%d", when, lba)
				return d
			}
			if werr == nil {
				if diff := diffBytes(want, got); diff != "" {
					return &Divergence{Op: fmt.Sprintf("%s block lba=%d", when, lba), Detail: diff}
				}
			}
		}
		return nil
	}
	if d := sweep("final"); d != nil {
		return d
	}
	if d := powerCycle(p, s, m); d != nil {
		d.Op = "final power-cycle: " + d.Op
		return d
	}
	return sweep("recovered")
}
