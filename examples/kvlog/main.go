// kvlog runs the same LSM key-value workload twice — once with a
// conventional block WAL on the ULL-SSD and once with BA-WAL on the
// 2B-SSD — and prints the throughput and commit-cost difference the
// paper's Fig 9 reports.
package main

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/device"
	"twobssd/internal/lsm"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

const (
	nOps    = 4000
	clients = 8
	payload = 128
)

func run(mode wal.CommitMode) (opsPerSec float64) {
	env := sim.NewEnv()
	dataFS := vfs.New(device.New(env, device.ULLSSD()))

	var logFS *vfs.FS
	var ssd *core.TwoBSSD
	if mode == wal.BA {
		ssd = core.New(env, core.DefaultConfig())
		logFS = vfs.New(ssd.Device())
	} else {
		prof := device.ULLSSD()
		prof.Name = "log-" + prof.Name
		logFS = vfs.New(device.New(env, prof))
	}

	var db *lsm.DB
	env.Go("setup", func(p *sim.Proc) {
		cfg := lsm.Config{
			DataFS:        dataFS,
			LogFS:         logFS,
			WALMode:       mode,
			MemtableBytes: 1 << 20,
			WALBytes:      2 << 20,
		}
		if mode == wal.BA {
			cfg.SSD = ssd
			cfg.EIDs = []core.EID{0, 1, 2, 3}
			cfg.WALBytes = ssd.Config().BABufferBytes / 4
		}
		var err error
		db, err = lsm.Open(env, p, cfg)
		if err != nil {
			panic(err)
		}
		for c := 0; c < clients; c++ {
			c := c
			env.Go(fmt.Sprintf("client%d", c), func(w *sim.Proc) {
				val := make([]byte, payload)
				for i := 0; i < nOps/clients; i++ {
					key := []byte(fmt.Sprintf("c%d-key-%06d", c, i))
					if err := db.Put(w, key, val); err != nil {
						panic(err)
					}
				}
			})
		}
	})
	env.Run()
	elapsed := sim.Duration(env.Now())
	return float64(nOps) / elapsed.Seconds()
}

func main() {
	block := run(wal.Sync)
	ba := run(wal.BA)
	fmt.Printf("LSM store, %d puts of %dB across %d clients:\n", nOps, payload, clients)
	fmt.Printf("  block WAL (ULL-SSD, sync commit): %10.0f puts/s\n", block)
	fmt.Printf("  BA-WAL    (2B-SSD, BA commit):    %10.0f puts/s\n", ba)
	fmt.Printf("  speedup: %.2fx\n", ba/block)
}
