// crashrecovery demonstrates the 2B-SSD durability story end to end:
// commits via the BA-buffer, an abrupt power failure (the capacitor-
// backed firmware dump), recovery, and a check that every committed
// transaction survived while un-synced bytes did not.
//
// The power failure is scripted through the fault-injection layer: a
// seeded fault.Plan arms a trigger on the 10th WAL commit, the demo
// polls the injector at transaction boundaries (the sim cannot kill an
// in-flight proc), and cuts power when the trigger trips — the same
// protocol the `bench2b crash` campaigns drive at scale.
package main

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/fault"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

func main() {
	env := sim.NewEnv()
	// Install must precede the stack build: components cache the
	// injector at construction time.
	inj := fault.Install(env, fault.Plan{
		Seed:      1,
		PowerLoss: fault.Trigger{On: fault.EvWalCommit, N: 10},
	})
	ssd := core.New(env, core.DefaultConfig())
	fs := vfs.New(ssd.Device())

	env.Go("demo", func(p *sim.Proc) {
		f, err := fs.Create("txlog", 32<<20)
		if err != nil {
			panic(err)
		}
		seg := ssd.Config().BABufferBytes / 2
		log, err := wal.Open(env, wal.Config{
			Mode: wal.BA, File: f, SegmentBytes: seg,
			SSD: ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true,
		})
		if err != nil {
			panic(err)
		}

		// Commit transactions until the injected power trigger trips
		// (at the 10th commit, per the plan above).
		for i := 0; !inj.Tripped(); i++ {
			lsn, err := log.Append(p, []byte(fmt.Sprintf("txn-%02d: balance += 100", i)))
			if err != nil {
				panic(err)
			}
			if err := log.Commit(p, lsn); err != nil {
				panic(err)
			}
		}
		inj.Disarm()
		// Append one more but do NOT commit: its WC-buffered bytes are
		// allowed to vanish.
		if _, err := log.Append(p, []byte("txn-10: UNCOMMITTED")); err != nil {
			panic(err)
		}

		fmt.Println("power failure!")
		rep, err := ssd.PowerLoss(p)
		if err != nil {
			panic(err)
		}
		fmt.Printf("  firmware dump: %v on capacitor power (%.1f of %.1f mJ)\n",
			rep.DumpDuration, rep.EnergyUsedJ*1e3, rep.EnergyBudgetJ*1e3)
		fmt.Printf("  lost write-combining bursts (never synced): %d\n", rep.LostWCBursts)

		if err := ssd.PowerOn(p); err != nil {
			panic(err)
		}
		fmt.Println("power restored; BA-buffer and mapping table recovered from NAND")

		// Recover the log with a fresh handle (as a restarted DB would).
		log2, err := wal.Open(env, wal.Config{
			Mode: wal.BA, File: f, SegmentBytes: seg,
			SSD: ssd, EIDs: []core.EID{0, 1}, DoubleBuffer: true,
		})
		if err != nil {
			panic(err)
		}
		n := 0
		err = log2.Recover(p, func(_ wal.LSN, payload []byte) error {
			fmt.Printf("  replayed %q\n", payload)
			n++
			return nil
		})
		if err != nil {
			panic(err)
		}
		fmt.Printf("recovered %d committed transactions (uncommitted txn-10 correctly absent)\n", n)
	})
	env.Run()
}
