// Quickstart: open a simulated 2B-SSD and use both of its faces on the
// same file — byte-addressable MMIO through the BA-buffer, and
// conventional block I/O — exactly the dual view of the paper's title.
package main

import (
	"fmt"

	"twobssd"
)

func main() {
	env := twobssd.NewEnv()
	ssd := twobssd.New(env, twobssd.DefaultConfig())
	fs := twobssd.NewFS(ssd.Device())

	env.Go("quickstart", func(p *twobssd.Proc) {
		// A regular file on the block device.
		f, err := fs.Create("hello.dat", 64<<10)
		if err != nil {
			panic(err)
		}

		// 1. Write through the BLOCK path, like any SSD.
		blockData := []byte("written via NVMe block I/O")
		if err := f.WriteAt(p, 0, blockData); err != nil {
			panic(err)
		}

		// 2. Pin the file's first pages into the BA-buffer: from now on
		//    the same bytes are reachable with memory instructions.
		const eid = twobssd.EID(0)
		if err := ssd.BAPin(p, eid, 0, f.LBA(0), 4); err != nil {
			panic(err)
		}
		buf := make([]byte, len(blockData))
		if err := ssd.Mmio().Read(p, 0, buf); err != nil {
			panic(err)
		}
		fmt.Printf("MMIO read of block-written data: %q\n", buf)

		// 3. Append via MMIO with a DRAM-like latency, then make it
		//    durable with the paper's protocol (clflush+mfence+
		//    write-verify read == BA_SYNC).
		note := []byte(" ... and appended via MMIO")
		start := env.Now()
		if err := ssd.Mmio().Write(p, len(blockData), note); err != nil {
			panic(err)
		}
		wrote := twobssd.Duration(env.Now() - start)
		if err := ssd.BASync(p, eid); err != nil {
			panic(err)
		}
		persisted := twobssd.Duration(env.Now() - start)
		fmt.Printf("MMIO write took %v; durable after %v\n", wrote, persisted)

		// 4. While pinned, the LBA checker gates block I/O to the range.
		if err := f.WriteAt(p, 0, []byte("x")); err != nil {
			fmt.Printf("block write while pinned correctly rejected: %v\n", err)
		}

		// 5. BA_FLUSH moves the buffer to NAND and unpins; the block
		//    path sees the merged bytes.
		if err := ssd.BAFlush(p, eid); err != nil {
			panic(err)
		}
		got := make([]byte, len(blockData)+len(note))
		if err := f.ReadAt(p, 0, got); err != nil {
			panic(err)
		}
		fmt.Printf("block read after BA_FLUSH: %q\n", got)
	})
	env.Run()
}
