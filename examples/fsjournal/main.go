// fsjournal demonstrates the paper's other motivating workload
// (Section IV): file-system metadata journaling. A jbd2-style journal
// commits block transactions through BA-WAL on the 2B-SSD, survives a
// crash before checkpoint, and replays on mount.
package main

import (
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/jfs"
	"twobssd/internal/sim"
	"twobssd/internal/vfs"
	"twobssd/internal/wal"
)

func main() {
	env := sim.NewEnv()
	ssd := core.New(env, core.DefaultConfig())
	fs := vfs.New(ssd.Device())

	open := func(p *sim.Proc) *jfs.Store {
		home, err := openOrCreate(fs, "fs.img", 256*jfs.BlockSize)
		if err != nil {
			panic(err)
		}
		journal, err := openOrCreate(fs, "fs.journal", 8<<20)
		if err != nil {
			panic(err)
		}
		s, err := jfs.Open(env, p, jfs.Config{
			Home: home, Journal: journal,
			Mode: wal.BA, SSD: ssd,
			EIDs:         []core.EID{0, 1},
			SegmentBytes: ssd.Config().BABufferBytes / 2,
		})
		if err != nil {
			panic(err)
		}
		return s
	}

	env.Go("demo", func(p *sim.Proc) {
		s := open(p)
		// Warm up: the first commit pays the one-time BA_PIN of the
		// journal segment.
		w := s.Begin()
		w.WriteBlock(0, []byte("superblock"))
		if err := w.Commit(p); err != nil {
			panic(err)
		}
		// A metadata update: allocate an inode — touches the inode
		// table block and the block bitmap, atomically.
		start := env.Now()
		tx := s.Begin()
		tx.WriteBlock(5, []byte("inode 1042: file.txt, size=0"))
		tx.WriteBlock(1, []byte("bitmap: block 1042 allocated"))
		if err := tx.Commit(p); err != nil {
			panic(err)
		}
		fmt.Printf("journaled 2-block metadata txn in %v (BA commit)\n",
			sim.Duration(env.Now()-start))

		// Crash before any checkpoint: the home image is still stale.
		fmt.Println("power failure before checkpoint!")
		if _, err := ssd.PowerLoss(p); err != nil {
			panic(err)
		}
		if err := ssd.PowerOn(p); err != nil {
			panic(err)
		}

		// Remount: the journal replays into the pending set.
		s2 := open(p)
		fmt.Printf("remount replayed %d journal transactions\n", s2.Stats().Replayed)
		got, err := s2.ReadBlock(p, 5)
		if err != nil {
			panic(err)
		}
		fmt.Printf("inode block after recovery: %q\n", got[:28])

		// Checkpoint writes it home for good.
		if err := s2.Checkpoint(p); err != nil {
			panic(err)
		}
		fmt.Println("checkpoint complete; journal truncated")
	})
	env.Run()
}

func openOrCreate(fs *vfs.FS, name string, capacity int64) (*vfs.File, error) {
	if fs.Exists(name) {
		return fs.Open(name)
	}
	return fs.Create(name, capacity)
}
