// dualpath demonstrates the consistency machinery between the two
// datapaths: the LBA checker gating block I/O to pinned ranges, the
// write-verify-read durability protocol, and the read DMA engine for
// bulk reads of BA-buffer contents.
package main

import (
	"errors"
	"fmt"

	"twobssd/internal/core"
	"twobssd/internal/sim"
)

func main() {
	env := sim.NewEnv()
	ssd := core.New(env, core.DefaultConfig())

	env.Go("demo", func(p *sim.Proc) {
		ps := ssd.PageSize()

		// Put recognizable data on NAND through the block path.
		if err := ssd.Device().WritePages(p, 100, make([]byte, 8*ps)); err != nil {
			panic(err)
		}

		// Pin LBAs [100,108) to the BA-buffer.
		if err := ssd.BAPin(p, 0, 0, 100, 8); err != nil {
			panic(err)
		}
		ent, _ := ssd.BAGetEntryInfo(p, 0)
		fmt.Printf("entry %d: BA-buffer [%d,%d) <-> LBA [%d,%d)\n",
			ent.ID, ent.Offset, ent.Offset+ent.Pages*ps, ent.LBA, ent.LBA+8)

		// The LBA checker rejects block I/O that overlaps the pin.
		err := ssd.Device().WritePages(p, 103, make([]byte, ps))
		fmt.Printf("block write into pinned range: %v\n", err)
		if !errors.Is(err, core.ErrPinnedRange) {
			panic("LBA checker failed to gate")
		}
		_, err = ssd.Device().ReadPages(p, 99, 2)
		fmt.Printf("block read overlapping pinned range: %v\n", err)

		// Posted MMIO writes are invisible to the DMA engine until the
		// write-verify read commits them — the hazard the durability
		// protocol exists for.
		ssd.Mmio().Write(p, 0, []byte("hello"))
		dst := make([]byte, 5)
		ssd.BAReadDMA(p, 0, dst)
		fmt.Printf("DMA before BA_SYNC sees: %q (stale, still in WC buffer)\n", dst)
		ssd.BASync(p, 0)
		ssd.BAReadDMA(p, 0, dst)
		fmt.Printf("DMA after  BA_SYNC sees: %q\n", dst)

		// Bulk read comparison: plain MMIO loads vs the read DMA engine.
		buf := make([]byte, 4*ps)
		start := env.Now()
		ssd.Mmio().Read(p, 0, buf)
		mmio := sim.Duration(env.Now() - start)
		start = env.Now()
		ssd.BAReadDMA(p, 0, buf)
		dma := sim.Duration(env.Now() - start)
		fmt.Printf("16KB bulk read: MMIO %v vs readDMA %v (%.1fx)\n",
			mmio, dma, float64(mmio)/float64(dma))

		// Flush releases the gate.
		if err := ssd.BAFlush(p, 0); err != nil {
			panic(err)
		}
		if err := ssd.Device().WritePages(p, 103, make([]byte, ps)); err != nil {
			panic(err)
		}
		fmt.Println("after BA_FLUSH the block path owns the range again")
	})
	env.Run()
}
