// Command bench2b regenerates the paper's tables and figures on the
// simulated 2B-SSD stack.
//
// Usage:
//
//	bench2b [-full] [-metrics m.json] [-trace out.trace.json] [experiment ...]
//
// Experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf
// mixed recovery probe ablations all (default: all).
//
// -metrics writes a merged snapshot of every counter, gauge and latency
// histogram the run's environments recorded. -trace writes Chrome
// trace-event JSON of the virtual-time spans (open in Perfetto or
// chrome://tracing); each simulated environment is one trace process.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"twobssd/internal/bench"
	"twobssd/internal/obs"
)

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's run lengths)")
	metricsPath := flag.String("metrics", "", "write merged metrics snapshot JSON to this file")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench2b [-full] [-metrics m.json] [-trace out.trace.json] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf mixed recovery tail smallread pmr journal qd probe ablations all\n")
	}
	flag.Parse()
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	// Open the report files before running anything: a bad path should
	// fail now, not after minutes of experiments.
	var col *obs.Collector
	var metricsFile, traceFile *os.File
	if *metricsPath != "" || *tracePath != "" {
		if *metricsPath != "" {
			metricsFile = createReport(*metricsPath)
		}
		if *tracePath != "" {
			traceFile = createReport(*tracePath)
		}
		col = obs.NewCollector(traceFile != nil)
		col.Install()
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	runners := map[string]func(){
		"tab1":  func() { bench.Spec().Print(os.Stdout) },
		"fig7a": func() { bench.Fig7a(scale).Print(os.Stdout) },
		"fig7b": func() { bench.Fig7b(scale).Print(os.Stdout) },
		"fig8a": func() { bench.Fig8a(scale).Print(os.Stdout) },
		"fig8b": func() { bench.Fig8b(scale).Print(os.Stdout) },
		"fig9": func() {
			bench.Fig9PG(scale).Print(os.Stdout)
			bench.Fig9LSM(scale).Print(os.Stdout)
			bench.Fig9AOF(scale).Print(os.Stdout)
		},
		"fig10":     func() { bench.Fig10(scale).Print(os.Stdout) },
		"commit":    func() { bench.CommitOverhead(scale).Print(os.Stdout) },
		"waf":       func() { bench.WAFReduction(scale).Print(os.Stdout) },
		"mixed":     func() { bench.MixedWorkload(scale).Print(os.Stdout) },
		"recovery":  func() { bench.Recovery(scale).Print(os.Stdout) },
		"tail":      func() { bench.TailLatency(scale).Print(os.Stdout) },
		"smallread": func() { bench.SmallRead(scale).Print(os.Stdout) },
		"pmr":       func() { bench.PMRComparison(scale).Print(os.Stdout) },
		"journal":   func() { bench.Journaling(scale).Print(os.Stdout) },
		"qd":        func() { bench.QueueDepth(scale).Print(os.Stdout) },
		"probe":     func() { bench.Probe(scale).Print(os.Stdout) },
		"ablations": func() {
			bench.AblationWriteCombining(scale).Print(os.Stdout)
			bench.AblationDoubleBuffering(scale).Print(os.Stdout)
			bench.AblationGroupCommit(scale).Print(os.Stdout)
		},
	}
	order := []string{"tab1", "fig7a", "fig7b", "fig8a", "fig8b", "fig9",
		"fig10", "commit", "waf", "mixed", "recovery", "tail", "smallread",
		"pmr", "journal", "qd", "probe", "ablations"}

	for _, arg := range args {
		if arg == "all" {
			for _, id := range order {
				runners[id]()
			}
			continue
		}
		run, ok := runners[arg]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2b: unknown experiment %q\n", arg)
			flag.Usage()
			os.Exit(2)
		}
		run()
	}

	if col != nil {
		col.Uninstall()
		if metricsFile != nil {
			writeReport(metricsFile, col.WriteMetricsJSON)
		}
		if traceFile != nil {
			writeReport(traceFile, col.WriteTraceJSON)
		}
	}
}

func createReport(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
	return f
}

func writeReport(f *os.File, emit func(io.Writer) error) {
	if err := emit(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench2b: writing %s: %v\n", f.Name(), err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
}
