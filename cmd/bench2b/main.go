// Command bench2b regenerates the paper's tables and figures on the
// simulated 2B-SSD stack.
//
// Usage:
//
//	bench2b [-full] [-j N] [-metrics m.json] [-trace out.trace.json] [-benchjson b.json] [experiment ...]
//
// Experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf
// mixed recovery tail smallread pmr journal qd probe ablations all
// (default: all).
//
// Four reliability artifacts run only when named explicitly (they are
// not part of "all"): "crash" sweeps 128 deterministic power-loss
// points per workload across every storage engine (640 total) and
// "crash-smoke" is the 64-point CI variant over lsm + pglite. Both
// exit non-zero when any crash point violates the durability contract
// (a committed record lost despite a persisted dump, or a phantom
// record recovered). "fuzz" replays -seeds randomized dual-path
// workloads (default 256) against the internal/oracle reference model
// and "fuzz-smoke" is the 32-seed CI variant; both exit non-zero on
// any stack/model divergence, after shrinking it to a minimal op
// trace.
//
// -j fans the independent simulation environments behind each
// experiment data point — and the experiments themselves — out across N
// workers (default: the number of CPUs). Every environment's virtual
// clock is its own; results and reports are bit-identical at any -j.
//
// -metrics writes a merged snapshot of every counter, gauge and latency
// histogram the run's environments recorded. -trace writes Chrome
// trace-event JSON of the virtual-time spans (open in Perfetto or
// chrome://tracing); each simulated environment is one trace process.
//
// -benchjson records the wall-clock performance of the simulator itself
// — events/sec, allocs/event, per-experiment wall time — so kernel
// speedups and regressions are measured run over run, not asserted.
// -obsbench records the observability layer's own overhead (sampler
// and flight recorder on/off) in the same spirit (BENCH_obs.json).
//
// -sample enables virtual-time metric timelines: every environment's
// registry is snapshotted at the given virtual cadence into
// delta-encoded windows. -timeline writes the merged timeline (JSON,
// or CSV when the path ends in .csv); like every other artifact it is
// byte-identical at any -j.
//
// -listen serves the run live over HTTP: Prometheus text exposition at
// /metrics, the merged timeline at /timeline (and /timeline.csv), and
// Server-Sent-Events batch progress at /progress. The server keeps
// serving after the experiments finish, until interrupted (SIGINT),
// so the final state can still be scraped.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sync/atomic"
	"syscall"
	"time"

	"twobssd/internal/bench"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// experiment is one runnable paper artifact; run writes its tables to w.
type experiment struct {
	id  string
	run func(w io.Writer)
}

// experiments returns the full artifact list in canonical print order.
func experiments(scale bench.Scale) []experiment {
	return []experiment{
		{"tab1", func(w io.Writer) { bench.Spec().Print(w) }},
		{"fig7a", func(w io.Writer) { bench.Fig7a(scale).Print(w) }},
		{"fig7b", func(w io.Writer) { bench.Fig7b(scale).Print(w) }},
		{"fig8a", func(w io.Writer) { bench.Fig8a(scale).Print(w) }},
		{"fig8b", func(w io.Writer) { bench.Fig8b(scale).Print(w) }},
		{"fig9", func(w io.Writer) {
			bench.Fig9PG(scale).Print(w)
			bench.Fig9LSM(scale).Print(w)
			bench.Fig9AOF(scale).Print(w)
		}},
		{"fig10", func(w io.Writer) { bench.Fig10(scale).Print(w) }},
		{"commit", func(w io.Writer) { bench.CommitOverhead(scale).Print(w) }},
		{"waf", func(w io.Writer) { bench.WAFReduction(scale).Print(w) }},
		{"mixed", func(w io.Writer) { bench.MixedWorkload(scale).Print(w) }},
		{"recovery", func(w io.Writer) { bench.Recovery(scale).Print(w) }},
		{"tail", func(w io.Writer) { bench.TailLatency(scale).Print(w) }},
		{"smallread", func(w io.Writer) { bench.SmallRead(scale).Print(w) }},
		{"pmr", func(w io.Writer) { bench.PMRComparison(scale).Print(w) }},
		{"journal", func(w io.Writer) { bench.Journaling(scale).Print(w) }},
		{"qd", func(w io.Writer) { bench.QueueDepth(scale).Print(w) }},
		{"probe", func(w io.Writer) { bench.Probe(scale).Print(w) }},
		{"ablations", func(w io.Writer) {
			bench.AblationWriteCombining(scale).Print(w)
			bench.AblationDoubleBuffering(scale).Print(w)
			bench.AblationGroupCommit(scale).Print(w)
		}},
	}
}

// crashExperiments returns the reliability artifacts. They are
// requested by name, never by "all": a full sweep crash-cycles the
// simulated device hundreds of times, which is a reliability gate, not
// a paper figure. A durability violation flips failed so main can exit
// non-zero after the reports print.
func crashExperiments(failed *atomic.Bool) []experiment {
	run := func(w io.Writer, names []string, pointsPer int) {
		if err := bench.RunCrash(w, names, pointsPer); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"crash", func(w io.Writer) { run(w, nil, 128) }},
		{"crash-smoke", func(w io.Writer) { run(w, []string{"lsm", "pglite"}, 32) }},
	}
}

// fuzzExperiments returns the oracle fuzzing artifacts; like the crash
// campaigns they run only when named. A divergence between the stack
// and the reference model flips failed so main exits non-zero after
// the shrunk trace prints.
func fuzzExperiments(failed *atomic.Bool, seeds int) []experiment {
	run := func(w io.Writer, n int) {
		if _, err := bench.RunFuzz(w, n); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"fuzz", func(w io.Writer) { run(w, seeds) }},
		{"fuzz-smoke", func(w io.Writer) { run(w, 32) }},
	}
}

// expReport is one experiment's wall-clock cost in the -benchjson
// report. Under -j > 1 experiments overlap, so their wall times can sum
// past the run's total.
type expReport struct {
	ID     string `json:"id"`
	WallNs int64  `json:"wall_ns"`
}

// kernelReport is the -benchjson wall-clock performance record.
type kernelReport struct {
	Schema         string      `json:"schema"`
	Scale          string      `json:"scale"`
	GoVersion      string      `json:"go_version"`
	NumCPU         int         `json:"num_cpu"`
	Jobs           int         `json:"jobs"`
	Experiments    []expReport `json:"experiments"`
	WallNs         int64       `json:"wall_ns"`
	VirtualNs      int64       `json:"virtual_ns"`
	Events         uint64      `json:"events"`
	EventsPerSec   float64     `json:"events_per_sec"`
	AllocsPerEvent float64     `json:"allocs_per_event"`
}

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's run lengths)")
	jobs := flag.Int("j", runtime.NumCPU(), "experiment worker parallelism (results identical at any value)")
	metricsPath := flag.String("metrics", "", "write merged metrics snapshot JSON to this file")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	benchPath := flag.String("benchjson", "", "write wall-clock kernel benchmark JSON to this file")
	obsbenchPath := flag.String("obsbench", "", "write observability-overhead benchmark JSON to this file")
	samplePeriod := flag.Duration("sample", 0, "virtual-time cadence for metric timelines (default 1ms when -timeline/-listen is given)")
	timelinePath := flag.String("timeline", "", "write the merged metric timeline to this file (.csv extension selects CSV, else JSON)")
	listenAddr := flag.String("listen", "", "serve /metrics, /timeline and /progress on this address; keeps serving after the run until interrupted")
	seeds := flag.Int("seeds", 256, "seed count for the fuzz experiment")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench2b [-full] [-j N] [-seeds N] [-metrics m.json] [-trace out.trace.json] [-benchjson b.json] [-obsbench o.json] [-sample D] [-timeline t.json] [-listen addr] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf mixed recovery tail smallread pmr journal qd probe ablations all\n")
		fmt.Fprintf(os.Stderr, "reliability (not in \"all\"): crash crash-smoke fuzz fuzz-smoke\n")
	}
	flag.Parse()
	scale, scaleName := bench.Quick, "quick"
	if *full {
		scale, scaleName = bench.Full, "full"
	}
	bench.SetJobs(*jobs)

	sampling := *samplePeriod > 0 || *timelinePath != "" || *listenAddr != ""

	// Open the report files before running anything: a bad path should
	// fail now, not after minutes of experiments.
	var col *obs.Collector
	var metricsFile, traceFile, benchFile, timelineFile, obsbenchFile *os.File
	if *obsbenchPath != "" {
		obsbenchFile = createReport(*obsbenchPath)
	}
	if *metricsPath != "" || *tracePath != "" || *benchPath != "" || sampling {
		if *metricsPath != "" {
			metricsFile = createReport(*metricsPath)
		}
		if *tracePath != "" {
			traceFile = createReport(*tracePath)
		}
		if *benchPath != "" {
			benchFile = createReport(*benchPath)
		}
		if *timelinePath != "" {
			timelineFile = createReport(*timelinePath)
		}
		col = obs.NewCollector(traceFile != nil)
		if sampling {
			col.EnableSampling(sim.Duration(samplePeriod.Nanoseconds()), 0)
		}
	}

	// Serve mode: bind before running so a bad address fails fast and
	// the endpoints are live while the experiments execute.
	var live *obs.LiveServer
	var srv *http.Server
	if *listenAddr != "" {
		live = obs.NewLiveServer()
		live.Attach(col)
		ln, err := net.Listen("tcp", *listenAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
		srv = &http.Server{Handler: live.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "bench2b: serve: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "bench2b: serving observability on http://%s (interrupt to stop)\n", ln.Addr())
	}
	if col != nil {
		col.Install()
	}

	var gateFailed atomic.Bool
	all := experiments(scale)
	byID := make(map[string]experiment, len(all))
	for _, ex := range all {
		byID[ex.id] = ex
	}
	for _, ex := range crashExperiments(&gateFailed) {
		byID[ex.id] = ex
	}
	for _, ex := range fuzzExperiments(&gateFailed, *seeds) {
		byID[ex.id] = ex
	}
	var selected []experiment
	args := flag.Args()
	if len(args) == 0 {
		if *obsbenchPath != "" {
			// An explicit -obsbench with no experiment list runs just
			// the overhead sweep, mirroring a targeted -benchjson run.
			args = nil
		} else {
			args = []string{"all"}
		}
	}
	for _, arg := range args {
		if arg == "all" {
			selected = append(selected, all...)
			continue
		}
		ex, ok := byID[arg]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2b: unknown experiment %q\n", arg)
			flag.Usage()
			os.Exit(2)
		}
		selected = append(selected, ex)
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	walls := runAll(selected, *jobs, live)
	wallTotal := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	if obsbenchFile != nil {
		rep := bench.ObsOverhead(scale)
		if err := rep.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
		writeReport(obsbenchFile, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
	}

	if col != nil {
		col.Uninstall()
		if metricsFile != nil {
			writeReport(metricsFile, col.WriteMetricsJSON)
		}
		if traceFile != nil {
			writeReport(traceFile, col.WriteTraceJSON)
		}
		if timelineFile != nil {
			emit := col.WriteTimelineJSON
			if len(*timelinePath) > 4 && (*timelinePath)[len(*timelinePath)-4:] == ".csv" {
				emit = col.WriteTimelineCSV
			}
			writeReport(timelineFile, emit)
		}
		if benchFile != nil {
			rep := kernelReport{
				Schema:    "bench2b/kernel-v1",
				Scale:     scaleName,
				GoVersion: runtime.Version(),
				NumCPU:    runtime.NumCPU(),
				Jobs:      *jobs,
				WallNs:    wallTotal.Nanoseconds(),
				VirtualNs: int64(col.TotalVirtual()),
				Events:    col.TotalEvents(),
			}
			for i, ex := range selected {
				rep.Experiments = append(rep.Experiments, expReport{ID: ex.id, WallNs: walls[i].Nanoseconds()})
			}
			if rep.Events > 0 {
				rep.EventsPerSec = float64(rep.Events) / wallTotal.Seconds()
				rep.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(rep.Events)
			}
			writeReport(benchFile, func(w io.Writer) error {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				return enc.Encode(rep)
			})
		}
	}
	if srv != nil {
		// Keep serving the finished run until interrupted, then shut
		// down gracefully (lets in-flight scrapes and the final SSE
		// events complete).
		live.Finish()
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		<-ctx.Done()
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
	}
	if gateFailed.Load() {
		fmt.Fprintln(os.Stderr, "bench2b: reliability campaign failed (durability violation or model divergence)")
		os.Exit(1)
	}
}

// runAll executes the selected experiments and streams their output to
// stdout in selection order. At -j 1 everything runs sequentially on
// this goroutine (the legacy behavior); otherwise experiments run
// concurrently, each into its own buffer, and buffers are printed as
// their turn comes — output order never depends on scheduling. Returns
// each experiment's wall time. When live is non-nil, batch progress
// (done/total, current experiment) feeds the /progress stream.
func runAll(selected []experiment, jobs int, live *obs.LiveServer) []time.Duration {
	if live != nil {
		live.SetTotal(len(selected))
	}
	step := func(ex experiment, w io.Writer) time.Duration {
		if live != nil {
			live.SetLabel(ex.id)
		}
		t0 := time.Now()
		ex.run(w)
		if live != nil {
			live.StepDone()
		}
		return time.Since(t0)
	}
	walls := make([]time.Duration, len(selected))
	if jobs <= 1 || len(selected) == 1 {
		for i, ex := range selected {
			walls[i] = step(ex, os.Stdout)
		}
		return walls
	}
	type slot struct {
		buf  bytes.Buffer
		done chan struct{}
	}
	slots := make([]*slot, len(selected))
	for i, ex := range selected {
		i, ex := i, ex
		slots[i] = &slot{done: make(chan struct{})}
		go func() {
			defer close(slots[i].done)
			walls[i] = step(ex, &slots[i].buf)
		}()
	}
	for _, s := range slots {
		<-s.done
		if _, err := io.Copy(os.Stdout, &s.buf); err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
	}
	return walls
}

func createReport(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
	return f
}

func writeReport(f *os.File, emit func(io.Writer) error) {
	if err := emit(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench2b: writing %s: %v\n", f.Name(), err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
}
