// Command bench2b regenerates the paper's tables and figures on the
// simulated 2B-SSD stack.
//
// Usage:
//
//	bench2b [-full] [-j N] [-metrics m.json] [-trace out.trace.json] [-benchjson b.json] [experiment ...]
//
// Experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf
// mixed recovery tail smallread pmr journal qd pfleet probe ablations
// all (default: all).
//
// Eight reliability artifacts run only when named explicitly (they
// are not part of "all"): "crash" sweeps 128 deterministic power-loss
// points per workload across every storage engine (768 total,
// including the segmented-WAL lifecycle engine) and "crash-smoke" is
// the 96-point CI variant over lsm, pglite + walseg. Both exit
// non-zero when any crash point violates the durability contract (a
// committed record lost despite a persisted dump, or a phantom record
// recovered). "fuzz" replays -seeds randomized dual-path workloads
// (default 256) against the internal/oracle reference model and
// "fuzz-smoke" is the 32-seed CI variant; both exit non-zero on any
// stack/model divergence, after shrinking it to a minimal op trace.
// "fleet" runs the multi-device scenario family (a 4-device, 8-tenant
// fleet with tail-streamed segmented-WAL replication under steady,
// bursty, diurnal and saturating tenant traffic, plus an injected
// primary power loss with follower takeover) and "fleet-smoke" is the
// 2-device CI variant; both exit non-zero on any lost or phantom
// record, missed failover, or worker-count determinism divergence.
// "wal-life" is the segmented-WAL lifecycle evaluation: a feature
// table timing commit/group-commit/rotation/checkpoint/tail/recovery
// on the BA byte path vs the block+flush baseline, then 128 crash
// points per mode with rotation/checkpoint/truncation-instant
// triggers and torn-tail repair; "wal-life-smoke" is the 32-point CI
// variant, which additionally runs the sweep twice and fails on any
// byte-level nondeterminism.
//
// -j fans the independent simulation environments behind each
// experiment data point — and the experiments themselves — out across N
// workers (default: the number of CPUs). Every environment's virtual
// clock is its own; results and reports are bit-identical at any -j.
//
// -metrics writes a merged snapshot of every counter, gauge and latency
// histogram the run's environments recorded. -trace writes Chrome
// trace-event JSON of the virtual-time spans (open in Perfetto or
// chrome://tracing); each simulated environment is one trace process.
//
// -pshards runs the experiments under the partitioned executor:
// multi-instance experiments (fig9, the crash campaigns, the fuzzer,
// every points()-driven sweep) assign their independent instances to N
// statically-scheduled shard workers, and linked fleets (pfleet) run
// their sim.Group with N workers. Results are identical at any value.
//
// -benchjson records the wall-clock performance of the simulator itself
// — events/sec, allocs/event, per-experiment wall time and event
// attribution (at -j 1), and the partitioned-vs-serial speedup probe —
// so kernel speedups and regressions are measured run over run, not
// asserted. -benchgate compares the run against a committed baseline
// (BENCH_kernel.json) and exits non-zero on a >20% events/sec drop or
// an allocs/event increase: the CI regression gate.
// -obsbench records the observability layer's own overhead (sampler
// and flight recorder on/off) in the same spirit (BENCH_obs.json).
//
// -sample enables virtual-time metric timelines: every environment's
// registry is snapshotted at the given virtual cadence into
// delta-encoded windows. -timeline writes the merged timeline (JSON,
// or CSV when the path ends in .csv); like every other artifact it is
// byte-identical at any -j.
//
// -listen serves the run live over HTTP: Prometheus text exposition at
// /metrics, the merged timeline at /timeline (and /timeline.csv), and
// Server-Sent-Events batch progress at /progress. The server keeps
// serving after the experiments finish, until interrupted (SIGINT),
// so the final state can still be scraped.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"sync/atomic"
	"syscall"
	"time"

	"twobssd/internal/bench"
	"twobssd/internal/obs"
	"twobssd/internal/sim"
)

// experiment is one runnable paper artifact; run writes its tables to w.
type experiment struct {
	id  string
	run func(w io.Writer)
}

// experiments returns the full artifact list in canonical print order.
func experiments(scale bench.Scale) []experiment {
	return []experiment{
		{"tab1", func(w io.Writer) { bench.Spec().Print(w) }},
		{"fig7a", func(w io.Writer) { bench.Fig7a(scale).Print(w) }},
		{"fig7b", func(w io.Writer) { bench.Fig7b(scale).Print(w) }},
		{"fig8a", func(w io.Writer) { bench.Fig8a(scale).Print(w) }},
		{"fig8b", func(w io.Writer) { bench.Fig8b(scale).Print(w) }},
		{"fig9", func(w io.Writer) {
			bench.Fig9PG(scale).Print(w)
			bench.Fig9LSM(scale).Print(w)
			bench.Fig9AOF(scale).Print(w)
		}},
		{"fig10", func(w io.Writer) { bench.Fig10(scale).Print(w) }},
		{"commit", func(w io.Writer) { bench.CommitOverhead(scale).Print(w) }},
		{"waf", func(w io.Writer) { bench.WAFReduction(scale).Print(w) }},
		{"mixed", func(w io.Writer) { bench.MixedWorkload(scale).Print(w) }},
		{"recovery", func(w io.Writer) { bench.Recovery(scale).Print(w) }},
		{"tail", func(w io.Writer) { bench.TailLatency(scale).Print(w) }},
		{"smallread", func(w io.Writer) { bench.SmallRead(scale).Print(w) }},
		{"pmr", func(w io.Writer) { bench.PMRComparison(scale).Print(w) }},
		{"journal", func(w io.Writer) { bench.Journaling(scale).Print(w) }},
		{"qd", func(w io.Writer) { bench.QueueDepth(scale).Print(w) }},
		{"pfleet", func(w io.Writer) { bench.PartitionedFleet(scale).Print(w) }},
		{"probe", func(w io.Writer) { bench.Probe(scale).Print(w) }},
		{"ablations", func(w io.Writer) {
			bench.AblationWriteCombining(scale).Print(w)
			bench.AblationDoubleBuffering(scale).Print(w)
			bench.AblationGroupCommit(scale).Print(w)
		}},
	}
}

// crashExperiments returns the reliability artifacts. They are
// requested by name, never by "all": a full sweep crash-cycles the
// simulated device hundreds of times, which is a reliability gate, not
// a paper figure. A durability violation flips failed so main can exit
// non-zero after the reports print.
func crashExperiments(failed *atomic.Bool) []experiment {
	run := func(w io.Writer, names []string, pointsPer int) {
		if err := bench.RunCrash(w, names, pointsPer); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"crash", func(w io.Writer) { run(w, nil, 128) }},
		{"crash-smoke", func(w io.Writer) { run(w, []string{"lsm", "pglite", "walseg"}, 32) }},
	}
}

// walLifeExperiments returns the segmented-WAL lifecycle artifacts:
// "wal-life" is the full evaluation (feature table + 128 crash points
// per commit mode) and "wal-life-smoke" the 32-point CI variant with a
// byte-identity determinism check. Any durability or repair violation
// — or smoke-run nondeterminism — flips failed so main exits non-zero.
func walLifeExperiments(failed *atomic.Bool) []experiment {
	return []experiment{
		{"wal-life", func(w io.Writer) {
			if err := bench.RunWalLife(w, 128); err != nil {
				fmt.Fprintf(w, "FAIL: %v\n", err)
				failed.Store(true)
			}
		}},
		{"wal-life-smoke", func(w io.Writer) {
			if err := bench.RunWalLifeSmoke(w, 32); err != nil {
				fmt.Fprintf(w, "FAIL: %v\n", err)
				failed.Store(true)
			}
		}},
	}
}

// fuzzExperiments returns the oracle fuzzing artifacts; like the crash
// campaigns they run only when named. A divergence between the stack
// and the reference model flips failed so main exits non-zero after
// the shrunk trace prints.
func fuzzExperiments(failed *atomic.Bool, seeds int) []experiment {
	run := func(w io.Writer, n int) {
		if _, err := bench.RunFuzz(w, n); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"fuzz", func(w io.Writer) { run(w, seeds) }},
		{"fuzz-smoke", func(w io.Writer) { run(w, 32) }},
	}
}

// fleetExperiments returns the fleet-scale artifacts: "fleet" runs the
// full multi-device scenario family (steady/bursty/diurnal/saturation
// traffic plus an injected primary power loss on a 4-device, 8-tenant
// fleet) and "fleet-smoke" is the CI variant (2 devices, 2 tenants,
// one crash with follower takeover, plus a worker-count determinism
// probe). Any lost or phantom record, missed failover, or determinism
// divergence flips failed so main exits non-zero.
func fleetExperiments(failed *atomic.Bool, scale bench.Scale) []experiment {
	run := func(w io.Writer, smoke bool) {
		if err := bench.RunFleet(w, scale, smoke); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"fleet", func(w io.Writer) { run(w, false) }},
		{"fleet-smoke", func(w io.Writer) { run(w, true) }},
	}
}

// expReport is one experiment's cost in the -benchjson report. Under
// -j > 1 experiments overlap, so their wall times can sum past the
// run's total — and the per-experiment event/alloc attribution
// (schema v2) is only recorded at -j 1, where the deltas between
// experiments are unambiguous.
type expReport struct {
	ID             string  `json:"id"`
	WallNs         int64   `json:"wall_ns"`
	Events         uint64  `json:"events,omitempty"`
	EventsPerSec   float64 `json:"events_per_sec,omitempty"`
	AllocsPerEvent float64 `json:"allocs_per_event,omitempty"`
}

// kernelReport is the -benchjson wall-clock performance record.
type kernelReport struct {
	Schema         string                 `json:"schema"`
	Scale          string                 `json:"scale"`
	GoVersion      string                 `json:"go_version"`
	NumCPU         int                    `json:"num_cpu"`
	Jobs           int                    `json:"jobs"`
	Pshards        int                    `json:"pshards"`
	Experiments    []expReport            `json:"experiments"`
	WallNs         int64                  `json:"wall_ns"`
	VirtualNs      int64                  `json:"virtual_ns"`
	Events         uint64                 `json:"events"`
	EventsPerSec   float64                `json:"events_per_sec"`
	AllocsPerEvent float64                `json:"allocs_per_event"`
	Partition      *bench.PartitionReport `json:"partition,omitempty"`
	Steady         *bench.SteadyReport    `json:"steady_state,omitempty"`
}

// gate compares this run against a committed baseline report and
// returns an error on a kernel performance regression: a >20% drop in
// events/sec, an allocs/event increase beyond measurement noise (10%
// relative plus 0.02 absolute), or a partition-probe speedup that
// collapsed versus the baseline. The speedup comparison only makes
// sense between like hosts: when the baseline was recorded on a
// machine with a different CPU count it is skipped with a notice,
// so a multi-core runner doesn't false-fail against a 1-CPU baseline
// (or vice versa).
func gate(cur kernelReport, basePath string) error {
	data, err := os.ReadFile(basePath)
	if err != nil {
		return err
	}
	var base kernelReport
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing %s: %w", basePath, err)
	}
	if base.Partition != nil && cur.Partition != nil && base.Partition.Speedup > 1 {
		switch {
		case base.NumCPU != runtime.NumCPU():
			fmt.Printf("benchgate: skipping partition-speedup check: baseline recorded on %d CPUs, host has %d\n",
				base.NumCPU, runtime.NumCPU())
		case base.Partition.Shards != cur.Partition.Shards:
			fmt.Printf("benchgate: skipping partition-speedup check: baseline ran %d shards, this run %d\n",
				base.Partition.Shards, cur.Partition.Shards)
		case cur.Partition.Speedup < 0.75*base.Partition.Speedup:
			return fmt.Errorf("partition speedup regressed: %.2fx vs baseline %.2fx",
				cur.Partition.Speedup, base.Partition.Speedup)
		}
	}
	if base.EventsPerSec > 0 && cur.EventsPerSec < 0.8*base.EventsPerSec {
		return fmt.Errorf("events/sec regressed: %.0f vs baseline %.0f (-%.1f%%)",
			cur.EventsPerSec, base.EventsPerSec,
			100*(1-cur.EventsPerSec/base.EventsPerSec))
	}
	if base.AllocsPerEvent > 0 && cur.AllocsPerEvent > 1.1*base.AllocsPerEvent+0.02 {
		return fmt.Errorf("allocs/event regressed: %.4f vs baseline %.4f",
			cur.AllocsPerEvent, base.AllocsPerEvent)
	}
	if base.Steady != nil && cur.Steady != nil &&
		cur.Steady.AllocsPerEvent > 1.1*base.Steady.AllocsPerEvent+0.02 {
		return fmt.Errorf("steady-state allocs/event regressed: %.4f vs baseline %.4f",
			cur.Steady.AllocsPerEvent, base.Steady.AllocsPerEvent)
	}
	return nil
}

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's run lengths)")
	jobs := flag.Int("j", runtime.NumCPU(), "experiment worker parallelism (results identical at any value)")
	metricsPath := flag.String("metrics", "", "write merged metrics snapshot JSON to this file")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	benchPath := flag.String("benchjson", "", "write wall-clock kernel benchmark JSON to this file")
	obsbenchPath := flag.String("obsbench", "", "write observability-overhead benchmark JSON to this file")
	samplePeriod := flag.Duration("sample", 0, "virtual-time cadence for metric timelines (default 1ms when -timeline/-listen is given)")
	timelinePath := flag.String("timeline", "", "write the merged metric timeline to this file (.csv extension selects CSV, else JSON)")
	listenAddr := flag.String("listen", "", "serve /metrics, /timeline and /progress on this address; keeps serving after the run until interrupted")
	seeds := flag.Int("seeds", 256, "seed count for the fuzz experiment")
	pshards := flag.Int("pshards", 1, "partition shards: multi-instance experiments run on N statically-assigned shard workers and linked fleets use N sim.Group workers (results identical at any value; 1 = off)")
	benchGate := flag.String("benchgate", "", "compare this run against a baseline kernel benchmark JSON; exit non-zero on >20% events/sec drop or an allocs/event increase")
	cpuProfile := flag.String("cpuprofile", "", "write a host CPU profile (pprof) of the run to this file")
	memProfile := flag.String("memprofile", "", "write a host allocation profile (pprof, alloc_space) to this file after the run")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench2b [-full] [-j N] [-pshards N] [-seeds N] [-metrics m.json] [-trace out.trace.json] [-benchjson b.json] [-benchgate base.json] [-obsbench o.json] [-sample D] [-timeline t.json] [-listen addr] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf mixed recovery tail smallread pmr journal qd pfleet probe ablations all\n")
		fmt.Fprintf(os.Stderr, "reliability (not in \"all\"): crash crash-smoke fuzz fuzz-smoke fleet fleet-smoke wal-life wal-life-smoke\n")
	}
	flag.Parse()
	scale, scaleName := bench.Quick, "quick"
	if *full {
		scale, scaleName = bench.Full, "full"
	}
	bench.SetJobs(*jobs)
	bench.SetPartitionShards(*pshards)

	// Host-side profiling: the kernel's wall-clock performance is a
	// first-class artifact (BENCH_kernel.json), so regressions must be
	// diagnosable from the shipped binary without code edits.
	var cpuFile *os.File
	if *cpuProfile != "" {
		cpuFile = createReport(*cpuProfile)
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: cpuprofile: %v\n", err)
			os.Exit(1)
		}
	}
	finishProfiles := func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
				os.Exit(1)
			}
		}
		if *memProfile != "" {
			f := createReport(*memProfile)
			runtime.GC() // flush recent frees so alloc_space is settled
			writeReport(f, func(w io.Writer) error {
				return pprof.Lookup("allocs").WriteTo(w, 0)
			})
		}
	}

	sampling := *samplePeriod > 0 || *timelinePath != "" || *listenAddr != ""

	// Open the report files before running anything: a bad path should
	// fail now, not after minutes of experiments.
	var col *obs.Collector
	var metricsFile, traceFile, benchFile, timelineFile, obsbenchFile *os.File
	if *obsbenchPath != "" {
		obsbenchFile = createReport(*obsbenchPath)
	}
	if *metricsPath != "" || *tracePath != "" || *benchPath != "" || *benchGate != "" || sampling {
		if *metricsPath != "" {
			metricsFile = createReport(*metricsPath)
		}
		if *tracePath != "" {
			traceFile = createReport(*tracePath)
		}
		if *benchPath != "" {
			benchFile = createReport(*benchPath)
		}
		if *timelinePath != "" {
			timelineFile = createReport(*timelinePath)
		}
		col = obs.NewCollector(traceFile != nil)
		if sampling {
			col.EnableSampling(sim.Duration(samplePeriod.Nanoseconds()), 0)
		}
	}

	// Serve mode: bind before running so a bad address fails fast and
	// the endpoints are live while the experiments execute.
	var live *obs.LiveServer
	var srv *http.Server
	if *listenAddr != "" {
		live = obs.NewLiveServer()
		live.Attach(col)
		ln, err := net.Listen("tcp", *listenAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
		srv = &http.Server{Handler: live.Handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && err != http.ErrServerClosed {
				fmt.Fprintf(os.Stderr, "bench2b: serve: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "bench2b: serving observability on http://%s (interrupt to stop)\n", ln.Addr())
	}
	if col != nil {
		col.Install()
	}

	var gateFailed atomic.Bool
	all := experiments(scale)
	byID := make(map[string]experiment, len(all))
	for _, ex := range all {
		byID[ex.id] = ex
	}
	for _, ex := range crashExperiments(&gateFailed) {
		byID[ex.id] = ex
	}
	for _, ex := range fuzzExperiments(&gateFailed, *seeds) {
		byID[ex.id] = ex
	}
	for _, ex := range fleetExperiments(&gateFailed, scale) {
		byID[ex.id] = ex
	}
	for _, ex := range walLifeExperiments(&gateFailed) {
		byID[ex.id] = ex
	}
	var selected []experiment
	args := flag.Args()
	if len(args) == 0 {
		if *obsbenchPath != "" {
			// An explicit -obsbench with no experiment list runs just
			// the overhead sweep, mirroring a targeted -benchjson run.
			args = nil
		} else {
			args = []string{"all"}
		}
	}
	for _, arg := range args {
		if arg == "all" {
			selected = append(selected, all...)
			continue
		}
		ex, ok := byID[arg]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2b: unknown experiment %q\n", arg)
			flag.Usage()
			os.Exit(2)
		}
		selected = append(selected, ex)
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	walls, expEvents, expMallocs := runAll(selected, *jobs, live, col)
	wallTotal := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	if obsbenchFile != nil {
		rep := bench.ObsOverhead(scale)
		if err := rep.WriteText(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
		writeReport(obsbenchFile, func(w io.Writer) error {
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		})
	}

	if col != nil {
		col.Uninstall()
		if metricsFile != nil {
			writeReport(metricsFile, col.WriteMetricsJSON)
		}
		if traceFile != nil {
			writeReport(traceFile, col.WriteTraceJSON)
		}
		if timelineFile != nil {
			emit := col.WriteTimelineJSON
			if len(*timelinePath) > 4 && (*timelinePath)[len(*timelinePath)-4:] == ".csv" {
				emit = col.WriteTimelineCSV
			}
			writeReport(timelineFile, emit)
		}
		if benchFile != nil || *benchGate != "" {
			rep := kernelReport{
				Schema:    "bench2b/kernel-v2",
				Scale:     scaleName,
				GoVersion: runtime.Version(),
				NumCPU:    runtime.NumCPU(),
				Jobs:      *jobs,
				Pshards:   *pshards,
				WallNs:    wallTotal.Nanoseconds(),
				VirtualNs: int64(col.TotalVirtual()),
				Events:    col.TotalEvents(),
			}
			for i, ex := range selected {
				er := expReport{ID: ex.id, WallNs: walls[i].Nanoseconds()}
				if expEvents != nil {
					er.Events = expEvents[i]
					if er.Events > 0 {
						er.EventsPerSec = float64(er.Events) / walls[i].Seconds()
						er.AllocsPerEvent = float64(expMallocs[i]) / float64(er.Events)
					}
				}
				rep.Experiments = append(rep.Experiments, er)
			}
			if rep.Events > 0 {
				rep.EventsPerSec = float64(rep.Events) / wallTotal.Seconds()
				rep.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(rep.Events)
			}
			// Partitioned-vs-serial speedup probe: the same linked fleet
			// wall-clocked at one worker and at -pshards workers, with a
			// result-identity check (the determinism bar).
			rep.Partition = bench.PartitionSpeedup(scale)
			fmt.Printf("partition probe: %d shards, %d pairs, speedup %.2fx, identical=%v\n",
				rep.Partition.Shards, rep.Partition.Pairs, rep.Partition.Speedup, rep.Partition.Identical)
			// Steady-state allocation probe: a sustained BA-WAL commit
			// stream on a warmed stack. The aggregate allocs/event above
			// includes per-experiment construction; this is the long-run
			// rate the allocation work targets.
			rep.Steady = bench.SteadyStateAllocs(scale)
			fmt.Printf("steady-state probe: %d events, %.4f allocs/event\n",
				rep.Steady.Events, rep.Steady.AllocsPerEvent)
			if benchFile != nil {
				writeReport(benchFile, func(w io.Writer) error {
					enc := json.NewEncoder(w)
					enc.SetIndent("", "  ")
					return enc.Encode(rep)
				})
			}
			if *benchGate != "" {
				if err := gate(rep, *benchGate); err != nil {
					fmt.Fprintf(os.Stderr, "bench2b: benchgate: %v\n", err)
					gateFailed.Store(true)
				} else {
					fmt.Printf("benchgate: ok (%.0f events/sec, %.4f allocs/event vs %s)\n",
						rep.EventsPerSec, rep.AllocsPerEvent, *benchGate)
				}
			}
			if !rep.Partition.Identical {
				fmt.Fprintln(os.Stderr, "bench2b: partition probe: partitioned result diverged from serial")
				gateFailed.Store(true)
			}
		}
	}
	finishProfiles()
	if srv != nil {
		// Keep serving the finished run until interrupted, then shut
		// down gracefully (lets in-flight scrapes and the final SSE
		// events complete).
		live.Finish()
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		<-ctx.Done()
		stop()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			srv.Close()
		}
	}
	if gateFailed.Load() {
		fmt.Fprintln(os.Stderr, "bench2b: gate failed (durability violation, model divergence, or kernel performance regression)")
		os.Exit(1)
	}
}

// runAll executes the selected experiments and streams their output to
// stdout in selection order. At -j 1 everything runs sequentially on
// this goroutine (the legacy behavior); otherwise experiments run
// concurrently, each into its own buffer, and buffers are printed as
// their turn comes — output order never depends on scheduling. Returns
// each experiment's wall time, plus — sequentially only, where the
// deltas are unambiguous — each experiment's simulation events and
// host allocations (nil slices under -j > 1, or without a collector
// for the event counts). When live is non-nil, batch progress
// (done/total, current experiment) feeds the /progress stream.
func runAll(selected []experiment, jobs int, live *obs.LiveServer, col *obs.Collector) ([]time.Duration, []uint64, []uint64) {
	if live != nil {
		live.SetTotal(len(selected))
	}
	step := func(ex experiment, w io.Writer) time.Duration {
		if live != nil {
			live.SetLabel(ex.id)
		}
		t0 := time.Now()
		ex.run(w)
		if live != nil {
			live.StepDone()
		}
		return time.Since(t0)
	}
	walls := make([]time.Duration, len(selected))
	if jobs <= 1 || len(selected) == 1 {
		events := make([]uint64, len(selected))
		mallocs := make([]uint64, len(selected))
		var ms0, ms1 runtime.MemStats
		for i, ex := range selected {
			var ev0 uint64
			if col != nil {
				ev0 = col.TotalEvents()
			}
			runtime.ReadMemStats(&ms0)
			walls[i] = step(ex, os.Stdout)
			runtime.ReadMemStats(&ms1)
			if col != nil {
				events[i] = col.TotalEvents() - ev0
			}
			mallocs[i] = ms1.Mallocs - ms0.Mallocs
		}
		if col == nil {
			events = nil
		}
		return walls, events, mallocs
	}
	type slot struct {
		buf  bytes.Buffer
		done chan struct{}
	}
	slots := make([]*slot, len(selected))
	for i, ex := range selected {
		i, ex := i, ex
		slots[i] = &slot{done: make(chan struct{})}
		go func() {
			defer close(slots[i].done)
			walls[i] = step(ex, &slots[i].buf)
		}()
	}
	for _, s := range slots {
		<-s.done
		if _, err := io.Copy(os.Stdout, &s.buf); err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
	}
	return walls, nil, nil
}

func createReport(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
	return f
}

func writeReport(f *os.File, emit func(io.Writer) error) {
	if err := emit(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench2b: writing %s: %v\n", f.Name(), err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
}
