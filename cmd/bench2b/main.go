// Command bench2b regenerates the paper's tables and figures on the
// simulated 2B-SSD stack.
//
// Usage:
//
//	bench2b [-full] [experiment ...]
//
// Experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf
// mixed recovery ablations all (default: all).
package main

import (
	"flag"
	"fmt"
	"os"

	"twobssd/internal/bench"
)

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's run lengths)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench2b [-full] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf mixed recovery tail smallread pmr journal qd ablations all\n")
	}
	flag.Parse()
	scale := bench.Quick
	if *full {
		scale = bench.Full
	}

	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}

	runners := map[string]func(){
		"tab1":  func() { bench.Spec().Print(os.Stdout) },
		"fig7a": func() { bench.Fig7a(scale).Print(os.Stdout) },
		"fig7b": func() { bench.Fig7b(scale).Print(os.Stdout) },
		"fig8a": func() { bench.Fig8a(scale).Print(os.Stdout) },
		"fig8b": func() { bench.Fig8b(scale).Print(os.Stdout) },
		"fig9": func() {
			bench.Fig9PG(scale).Print(os.Stdout)
			bench.Fig9LSM(scale).Print(os.Stdout)
			bench.Fig9AOF(scale).Print(os.Stdout)
		},
		"fig10":     func() { bench.Fig10(scale).Print(os.Stdout) },
		"commit":    func() { bench.CommitOverhead(scale).Print(os.Stdout) },
		"waf":       func() { bench.WAFReduction(scale).Print(os.Stdout) },
		"mixed":     func() { bench.MixedWorkload(scale).Print(os.Stdout) },
		"recovery":  func() { bench.Recovery(scale).Print(os.Stdout) },
		"tail":      func() { bench.TailLatency(scale).Print(os.Stdout) },
		"smallread": func() { bench.SmallRead(scale).Print(os.Stdout) },
		"pmr":       func() { bench.PMRComparison(scale).Print(os.Stdout) },
		"journal":   func() { bench.Journaling(scale).Print(os.Stdout) },
		"qd":        func() { bench.QueueDepth(scale).Print(os.Stdout) },
		"ablations": func() {
			bench.AblationWriteCombining(scale).Print(os.Stdout)
			bench.AblationDoubleBuffering(scale).Print(os.Stdout)
			bench.AblationGroupCommit(scale).Print(os.Stdout)
		},
	}
	order := []string{"tab1", "fig7a", "fig7b", "fig8a", "fig8b", "fig9",
		"fig10", "commit", "waf", "mixed", "recovery", "tail", "smallread",
		"pmr", "journal", "qd", "ablations"}

	for _, arg := range args {
		if arg == "all" {
			for _, id := range order {
				runners[id]()
			}
			continue
		}
		run, ok := runners[arg]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2b: unknown experiment %q\n", arg)
			flag.Usage()
			os.Exit(2)
		}
		run()
	}
}
