// Command bench2b regenerates the paper's tables and figures on the
// simulated 2B-SSD stack.
//
// Usage:
//
//	bench2b [-full] [-j N] [-metrics m.json] [-trace out.trace.json] [-benchjson b.json] [experiment ...]
//
// Experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf
// mixed recovery tail smallread pmr journal qd probe ablations all
// (default: all).
//
// Four reliability artifacts run only when named explicitly (they are
// not part of "all"): "crash" sweeps 128 deterministic power-loss
// points per workload across every storage engine (640 total) and
// "crash-smoke" is the 64-point CI variant over lsm + pglite. Both
// exit non-zero when any crash point violates the durability contract
// (a committed record lost despite a persisted dump, or a phantom
// record recovered). "fuzz" replays -seeds randomized dual-path
// workloads (default 256) against the internal/oracle reference model
// and "fuzz-smoke" is the 32-seed CI variant; both exit non-zero on
// any stack/model divergence, after shrinking it to a minimal op
// trace.
//
// -j fans the independent simulation environments behind each
// experiment data point — and the experiments themselves — out across N
// workers (default: the number of CPUs). Every environment's virtual
// clock is its own; results and reports are bit-identical at any -j.
//
// -metrics writes a merged snapshot of every counter, gauge and latency
// histogram the run's environments recorded. -trace writes Chrome
// trace-event JSON of the virtual-time spans (open in Perfetto or
// chrome://tracing); each simulated environment is one trace process.
//
// -benchjson records the wall-clock performance of the simulator itself
// — events/sec, allocs/event, per-experiment wall time — so kernel
// speedups and regressions are measured run over run, not asserted.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sync/atomic"
	"time"

	"twobssd/internal/bench"
	"twobssd/internal/obs"
)

// experiment is one runnable paper artifact; run writes its tables to w.
type experiment struct {
	id  string
	run func(w io.Writer)
}

// experiments returns the full artifact list in canonical print order.
func experiments(scale bench.Scale) []experiment {
	return []experiment{
		{"tab1", func(w io.Writer) { bench.Spec().Print(w) }},
		{"fig7a", func(w io.Writer) { bench.Fig7a(scale).Print(w) }},
		{"fig7b", func(w io.Writer) { bench.Fig7b(scale).Print(w) }},
		{"fig8a", func(w io.Writer) { bench.Fig8a(scale).Print(w) }},
		{"fig8b", func(w io.Writer) { bench.Fig8b(scale).Print(w) }},
		{"fig9", func(w io.Writer) {
			bench.Fig9PG(scale).Print(w)
			bench.Fig9LSM(scale).Print(w)
			bench.Fig9AOF(scale).Print(w)
		}},
		{"fig10", func(w io.Writer) { bench.Fig10(scale).Print(w) }},
		{"commit", func(w io.Writer) { bench.CommitOverhead(scale).Print(w) }},
		{"waf", func(w io.Writer) { bench.WAFReduction(scale).Print(w) }},
		{"mixed", func(w io.Writer) { bench.MixedWorkload(scale).Print(w) }},
		{"recovery", func(w io.Writer) { bench.Recovery(scale).Print(w) }},
		{"tail", func(w io.Writer) { bench.TailLatency(scale).Print(w) }},
		{"smallread", func(w io.Writer) { bench.SmallRead(scale).Print(w) }},
		{"pmr", func(w io.Writer) { bench.PMRComparison(scale).Print(w) }},
		{"journal", func(w io.Writer) { bench.Journaling(scale).Print(w) }},
		{"qd", func(w io.Writer) { bench.QueueDepth(scale).Print(w) }},
		{"probe", func(w io.Writer) { bench.Probe(scale).Print(w) }},
		{"ablations", func(w io.Writer) {
			bench.AblationWriteCombining(scale).Print(w)
			bench.AblationDoubleBuffering(scale).Print(w)
			bench.AblationGroupCommit(scale).Print(w)
		}},
	}
}

// crashExperiments returns the reliability artifacts. They are
// requested by name, never by "all": a full sweep crash-cycles the
// simulated device hundreds of times, which is a reliability gate, not
// a paper figure. A durability violation flips failed so main can exit
// non-zero after the reports print.
func crashExperiments(failed *atomic.Bool) []experiment {
	run := func(w io.Writer, names []string, pointsPer int) {
		if err := bench.RunCrash(w, names, pointsPer); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"crash", func(w io.Writer) { run(w, nil, 128) }},
		{"crash-smoke", func(w io.Writer) { run(w, []string{"lsm", "pglite"}, 32) }},
	}
}

// fuzzExperiments returns the oracle fuzzing artifacts; like the crash
// campaigns they run only when named. A divergence between the stack
// and the reference model flips failed so main exits non-zero after
// the shrunk trace prints.
func fuzzExperiments(failed *atomic.Bool, seeds int) []experiment {
	run := func(w io.Writer, n int) {
		if _, err := bench.RunFuzz(w, n); err != nil {
			fmt.Fprintf(w, "FAIL: %v\n", err)
			failed.Store(true)
		}
	}
	return []experiment{
		{"fuzz", func(w io.Writer) { run(w, seeds) }},
		{"fuzz-smoke", func(w io.Writer) { run(w, 32) }},
	}
}

// expReport is one experiment's wall-clock cost in the -benchjson
// report. Under -j > 1 experiments overlap, so their wall times can sum
// past the run's total.
type expReport struct {
	ID     string `json:"id"`
	WallNs int64  `json:"wall_ns"`
}

// kernelReport is the -benchjson wall-clock performance record.
type kernelReport struct {
	Schema         string      `json:"schema"`
	Scale          string      `json:"scale"`
	GoVersion      string      `json:"go_version"`
	NumCPU         int         `json:"num_cpu"`
	Jobs           int         `json:"jobs"`
	Experiments    []expReport `json:"experiments"`
	WallNs         int64       `json:"wall_ns"`
	VirtualNs      int64       `json:"virtual_ns"`
	Events         uint64      `json:"events"`
	EventsPerSec   float64     `json:"events_per_sec"`
	AllocsPerEvent float64     `json:"allocs_per_event"`
}

func main() {
	full := flag.Bool("full", false, "run at full scale (slower, closer to the paper's run lengths)")
	jobs := flag.Int("j", runtime.NumCPU(), "experiment worker parallelism (results identical at any value)")
	metricsPath := flag.String("metrics", "", "write merged metrics snapshot JSON to this file")
	tracePath := flag.String("trace", "", "write Chrome trace-event JSON (Perfetto) to this file")
	benchPath := flag.String("benchjson", "", "write wall-clock kernel benchmark JSON to this file")
	seeds := flag.Int("seeds", 256, "seed count for the fuzz experiment")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: bench2b [-full] [-j N] [-seeds N] [-metrics m.json] [-trace out.trace.json] [-benchjson b.json] [experiment ...]\n")
		fmt.Fprintf(os.Stderr, "experiments: tab1 fig7a fig7b fig8a fig8b fig9 fig10 commit waf mixed recovery tail smallread pmr journal qd probe ablations all\n")
		fmt.Fprintf(os.Stderr, "reliability (not in \"all\"): crash crash-smoke fuzz fuzz-smoke\n")
	}
	flag.Parse()
	scale, scaleName := bench.Quick, "quick"
	if *full {
		scale, scaleName = bench.Full, "full"
	}
	bench.SetJobs(*jobs)

	// Open the report files before running anything: a bad path should
	// fail now, not after minutes of experiments.
	var col *obs.Collector
	var metricsFile, traceFile, benchFile *os.File
	if *metricsPath != "" || *tracePath != "" || *benchPath != "" {
		if *metricsPath != "" {
			metricsFile = createReport(*metricsPath)
		}
		if *tracePath != "" {
			traceFile = createReport(*tracePath)
		}
		if *benchPath != "" {
			benchFile = createReport(*benchPath)
		}
		col = obs.NewCollector(traceFile != nil)
		col.Install()
	}

	var gateFailed atomic.Bool
	all := experiments(scale)
	byID := make(map[string]experiment, len(all))
	for _, ex := range all {
		byID[ex.id] = ex
	}
	for _, ex := range crashExperiments(&gateFailed) {
		byID[ex.id] = ex
	}
	for _, ex := range fuzzExperiments(&gateFailed, *seeds) {
		byID[ex.id] = ex
	}
	var selected []experiment
	args := flag.Args()
	if len(args) == 0 {
		args = []string{"all"}
	}
	for _, arg := range args {
		if arg == "all" {
			selected = append(selected, all...)
			continue
		}
		ex, ok := byID[arg]
		if !ok {
			fmt.Fprintf(os.Stderr, "bench2b: unknown experiment %q\n", arg)
			flag.Usage()
			os.Exit(2)
		}
		selected = append(selected, ex)
	}

	var ms0 runtime.MemStats
	runtime.ReadMemStats(&ms0)
	start := time.Now()
	walls := runAll(selected, *jobs)
	wallTotal := time.Since(start)
	var ms1 runtime.MemStats
	runtime.ReadMemStats(&ms1)

	if col != nil {
		col.Uninstall()
		if metricsFile != nil {
			writeReport(metricsFile, col.WriteMetricsJSON)
		}
		if traceFile != nil {
			writeReport(traceFile, col.WriteTraceJSON)
		}
		if benchFile != nil {
			rep := kernelReport{
				Schema:    "bench2b/kernel-v1",
				Scale:     scaleName,
				GoVersion: runtime.Version(),
				NumCPU:    runtime.NumCPU(),
				Jobs:      *jobs,
				WallNs:    wallTotal.Nanoseconds(),
				VirtualNs: int64(col.TotalVirtual()),
				Events:    col.TotalEvents(),
			}
			for i, ex := range selected {
				rep.Experiments = append(rep.Experiments, expReport{ID: ex.id, WallNs: walls[i].Nanoseconds()})
			}
			if rep.Events > 0 {
				rep.EventsPerSec = float64(rep.Events) / wallTotal.Seconds()
				rep.AllocsPerEvent = float64(ms1.Mallocs-ms0.Mallocs) / float64(rep.Events)
			}
			writeReport(benchFile, func(w io.Writer) error {
				enc := json.NewEncoder(w)
				enc.SetIndent("", "  ")
				return enc.Encode(rep)
			})
		}
	}
	if gateFailed.Load() {
		fmt.Fprintln(os.Stderr, "bench2b: reliability campaign failed (durability violation or model divergence)")
		os.Exit(1)
	}
}

// runAll executes the selected experiments and streams their output to
// stdout in selection order. At -j 1 everything runs sequentially on
// this goroutine (the legacy behavior); otherwise experiments run
// concurrently, each into its own buffer, and buffers are printed as
// their turn comes — output order never depends on scheduling. Returns
// each experiment's wall time.
func runAll(selected []experiment, jobs int) []time.Duration {
	walls := make([]time.Duration, len(selected))
	if jobs <= 1 || len(selected) == 1 {
		for i, ex := range selected {
			t0 := time.Now()
			ex.run(os.Stdout)
			walls[i] = time.Since(t0)
		}
		return walls
	}
	type slot struct {
		buf  bytes.Buffer
		done chan struct{}
	}
	slots := make([]*slot, len(selected))
	for i, ex := range selected {
		i, ex := i, ex
		slots[i] = &slot{done: make(chan struct{})}
		go func() {
			defer close(slots[i].done)
			t0 := time.Now()
			ex.run(&slots[i].buf)
			walls[i] = time.Since(t0)
		}()
	}
	for _, s := range slots {
		<-s.done
		if _, err := io.Copy(os.Stdout, &s.buf); err != nil {
			fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
			os.Exit(1)
		}
	}
	return walls
}

func createReport(path string) *os.File {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
	return f
}

func writeReport(f *os.File, emit func(io.Writer) error) {
	if err := emit(f); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "bench2b: writing %s: %v\n", f.Name(), err)
		os.Exit(1)
	}
	if err := f.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "bench2b: %v\n", err)
		os.Exit(1)
	}
}
